package gpm_test

// Tests of the public facade: everything a downstream user touches should
// be reachable through the root package alone.

import (
	"testing"

	gpm "github.com/gpm-sim/gpm"
)

func TestFacadeQuickstart(t *testing.T) {
	ctx := gpm.NewDefaultContext()
	m, err := ctx.Map("/pm/facade", 64*64, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx.PersistBegin()
	res := ctx.Launch("facade", 1, 64, func(th *gpm.Thread) {
		th.StoreU64(m.Addr+uint64(th.GlobalID())*64, uint64(th.GlobalID()))
		gpm.Persist(th)
	})
	ctx.PersistEnd()
	if res.Crashed || res.Elapsed <= 0 {
		t.Fatalf("kernel result %+v", res)
	}
	ctx.Crash()
	for i := 0; i < 64; i++ {
		if got := ctx.Space.ReadU64(m.Addr + uint64(i)*64); got != uint64(i) {
			t.Fatalf("slot %d = %d after crash", i, got)
		}
	}
}

func TestFacadeLoggingAndCheckpoint(t *testing.T) {
	ctx := gpm.NewDefaultContext()
	log, err := ctx.LogCreateHCL("/pm/facade-log", 1<<20, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctx.PersistBegin()
	ctx.Launch("log", 2, 64, func(th *gpm.Thread) {
		if err := log.Insert(th, []byte{1, 2, 3, 4}, -1); err != nil {
			t.Error(err)
		}
	})
	ctx.PersistEnd()
	if log.HostTail(0) != 1 {
		t.Error("facade log insert missing")
	}

	src := ctx.Space.AllocHBM(4096)
	cp, err := ctx.CPCreate("/pm/facade-cp", 4096, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Register(src, 4096, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	if cp.Seq(0) != 1 {
		t.Error("facade checkpoint sequence wrong")
	}
}

func TestFacadeParams(t *testing.T) {
	p := gpm.DefaultParams()
	if p.WarpSize != 32 || p.PMSeqAlignedBW != 12.5e9 {
		t.Error("default params drifted from Table 3 constants")
	}
	ctx := gpm.NewContext(
		gpm.WithParams(p),
		gpm.WithMemConfig(gpm.MemConfig{HBMSize: 1 << 20, DRAMSize: 1 << 20, PMSize: 1 << 20}),
	)
	ctx.RunCPU("noop", 2, func(th *gpm.CPUThread) {
		th.Compute(gpm.Duration(100))
	})
	if ctx.Timeline.Total() <= 0 {
		t.Error("CPU phase not accounted")
	}
}

// TestFacadeOptions exercises every NewContext option and checks that the
// options are observable: telemetry receives kernel metrics, and a
// worker-bounded context produces the same simulated time as the default.
func TestFacadeOptions(t *testing.T) {
	run := func(workers int, tel *gpm.Telemetry) gpm.Duration {
		opts := []gpm.ContextOption{gpm.WithWorkers(workers)}
		if tel != nil {
			opts = append(opts, gpm.WithTelemetry(tel, "facade-test"))
		}
		ctx := gpm.NewContext(opts...)
		m, err := ctx.Map("/pm/facade-opt", 64*64, true)
		if err != nil {
			t.Fatal(err)
		}
		ctx.PersistBegin()
		ctx.Launch("opt", 4, 64, func(th *gpm.Thread) {
			th.StoreU64(m.Addr+uint64(th.GlobalID()%64)*64, uint64(th.GlobalID()))
			gpm.Persist(th)
		})
		ctx.PersistEnd()
		return ctx.Timeline.Total()
	}
	tel := gpm.NewTelemetry()
	serial := run(1, tel)
	parallel := run(8, nil)
	if serial != parallel {
		t.Fatalf("simulated time depends on workers: 1 -> %v, 8 -> %v", serial, parallel)
	}
	if tsv := tel.Registry().TSV(); len(tsv) <= len("metric\ttype\tvalue\n") {
		t.Error("telemetry option attached but no metrics recorded")
	}
}

// TestFacadeCrashExports checks the crash-study surface is reachable from
// the root package alone: fault models resolve by name and a Campaign sweep
// runs through the re-exported types.
func TestFacadeCrashExports(t *testing.T) {
	models := gpm.FaultModels()
	if len(models) == 0 {
		t.Fatal("no fault models exported")
	}
	m, err := gpm.FaultModelByName(models[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	var plan gpm.CrashPlan
	plan.Fault = m
	if plan.FaultName() != models[0].Name() {
		t.Fatalf("CrashPlan fault name %q != %q", plan.FaultName(), models[0].Name())
	}
	var c gpm.Campaign
	if c.Workers != 0 {
		t.Fatal("zero Campaign should default Workers to GOMAXPROCS")
	}
}
