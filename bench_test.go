package gpm_test

// One benchmark per table and figure of the paper's evaluation (§6). Each
// bench runs the corresponding experiment end to end on the simulated node
// and reports the figure's headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every result in one sweep.
// (cmd/gpmbench produces the full TSV reports at the larger default scale.)

import (
	"strconv"
	"testing"

	"github.com/gpm-sim/gpm/internal/experiments"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func cell(b *testing.B, t *experiments.Table, key string, col int) float64 {
	b.Helper()
	row := t.FindRow(key)
	if row == nil {
		b.Fatalf("row %q missing", key)
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		b.Fatalf("cell %q[%d] = %q", key, col, row[col])
	}
	return v
}

// BenchmarkFigure1a: pKVS throughput — CPU PM stores vs gpKVS on GPM.
func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure1a(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "GPM-KVS", 1), "gpm_mops")
		b.ReportMetric(cell(b, t, "pmemKV", 2), "speedup_vs_pmemkv")
		b.ReportMetric(cell(b, t, "RocksDB-pmem", 2), "speedup_vs_rocksdb")
		b.ReportMetric(cell(b, t, "MatrixKV", 2), "speedup_vs_matrixkv")
	}
}

// BenchmarkFigure1b: GPM speedup over CPU PM apps (BFS, SRAD, PS).
func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure1b(workloads.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "BFS", 1), "bfs_x")
		b.ReportMetric(cell(b, t, "SRAD", 1), "srad_x")
		b.ReportMetric(cell(b, t, "PS", 1), "ps_x")
	}
}

// BenchmarkFigure3: scaling of persistence — CAP-mm thread plateau vs GPM
// GPU-thread scaling.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure3(8 << 20)
		if err != nil {
			b.Fatal(err)
		}
		var capPlateau, gpmPeak float64
		for _, r := range t.Rows {
			v, _ := strconv.ParseFloat(r[2], 64)
			if r[0] == "CAP-mm" && v > capPlateau {
				capPlateau = v
			}
			if r[0] == "GPM" && v > gpmPeak {
				gpmPeak = v
			}
		}
		b.ReportMetric(capPlateau, "cap_plateau_x")
		b.ReportMetric(gpmPeak, "gpm_peak_x")
	}
}

// BenchmarkFigure9: speedups over CAP-fs across all GPMbench workloads.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure9(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "gpKVS", 3), "gpkvs_gpm_x")
		b.ReportMetric(cell(b, t, "HS", 3), "hs_gpm_x")
		b.ReportMetric(cell(b, t, "BFS", 3), "bfs_gpm_x")
		b.ReportMetric(cell(b, t, "PS", 3), "ps_gpm_x")
	}
}

// BenchmarkTable4: write amplification of CAP over GPM.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "gpKVS", 2), "gpkvs_wa")
		b.ReportMetric(cell(b, t, "gpDB(I)", 2), "gpdbI_wa")
		b.ReportMetric(cell(b, t, "gpDB(U)", 2), "gpdbU_wa")
		b.ReportMetric(cell(b, t, "PS", 2), "ps_wa")
	}
}

// BenchmarkFigure10: GPM-NDP / GPM / GPM-eADR / CAP-eADR projections.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure10(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "gpKVS", 3), "gpkvs_gpm_x")
		b.ReportMetric(cell(b, t, "gpKVS", 4), "gpkvs_eadr_x")
		b.ReportMetric(cell(b, t, "HS", 2), "hs_ndp_x")
		b.ReportMetric(cell(b, t, "HS", 3), "hs_gpm_x")
	}
}

// BenchmarkFigure11a: HCL vs conventional logging inside gpKVS / gpDB(U).
func BenchmarkFigure11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure11a(workloads.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "gpKVS", 1), "gpkvs_hcl_x")
		b.ReportMetric(cell(b, t, "gpDB(U)", 1), "gpdbU_hcl_x")
	}
}

// BenchmarkFigure11b: log-insert latency vs thread count.
func BenchmarkFigure11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure11b(16384)
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		hcl, _ := strconv.ParseFloat(last[1], 64)
		conv, _ := strconv.ParseFloat(last[2], 64)
		b.ReportMetric(hcl, "hcl_us_at_16k")
		b.ReportMetric(conv, "conv_us_at_16k")
		b.ReportMetric(conv/hcl, "hcl_advantage_x")
	}
}

// BenchmarkFigure12: PM write bandwidth per workload under GPM.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure12(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "gpKVS", 1), "gpkvs_gbps")
		b.ReportMetric(cell(b, t, "gpDB(I)", 1), "gpdbI_gbps")
		b.ReportMetric(cell(b, t, "HS", 1), "hs_gbps")
	}
}

// BenchmarkTable5: restoration latency as % of operation time.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table5(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "gpKVS", 2), "gpkvs_restore_pct")
		b.ReportMetric(cell(b, t, "gpDB(I)", 2), "gpdbI_restore_pct")
		b.ReportMetric(cell(b, t, "gpDB(U)", 2), "gpdbU_restore_pct")
		b.ReportMetric(cell(b, t, "DNN", 2), "dnn_restore_pct")
	}
}

// BenchmarkDNNFrequency: the §6.1 checkpoint-frequency study.
func BenchmarkDNNFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.DNNFrequency(workloads.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		v, _ := strconv.ParseFloat(t.Rows[0][2], 64)
		b.ReportMetric(v, "overhead_pct_freq_hi")
	}
}

// BenchmarkOptanePattern: the §6.1 pattern-dependent bandwidth microbench.
func BenchmarkOptanePattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.OptanePattern(4 << 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, "seq-aligned", 1), "seq_aligned_gbps")
		b.ReportMetric(cell(b, t, "seq-unaligned", 1), "seq_unaligned_gbps")
		b.ReportMetric(cell(b, t, "random", 1), "random_gbps")
	}
}
