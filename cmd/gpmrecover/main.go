// Command gpmrecover is the crash-injection stress tool (§6.2, the NVBitFI
// analog) grown into a recovery auditor: it aborts the GPU mid-execution,
// simulates the power failure under an adversarial persistence fault model
// (clean rollback, torn lines, torn 8-byte words, reordered persists),
// optionally fails the power again while recovery runs, drives the
// workload's recovery procedure, and verifies the result byte-exactly.
//
//	gpmrecover -runs 5                      # random crash points, every mode
//	gpmrecover -workload gpKVS              # stress one workload
//	gpmrecover -sweep                       # deterministic campaign: all
//	                                        # models x swept crash points
//	gpmrecover -sweep -recrash-depth 2      # also re-crash during recovery
//	gpmrecover -sweep -json                 # machine-readable records
//	gpmrecover -sweep -workers 8            # parallel sweep (same verdicts)
//	gpmrecover -bench BENCH_parallel.json   # serial vs parallel wall-clock
//	gpmrecover -workload gpKVS -mode GPM -faultmodel torn-lines \
//	    -crashat 1234 -faultseed 99         # replay one shrunk failure
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/gpm-sim/gpm/internal/crash"
	"github.com/gpm-sim/gpm/internal/experiments"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// cliOptions mirrors the flag set for upfront validation: every rejection
// happens before any simulation work, with exit 2 + usage, instead of a
// silent fall-back to defaults mid-run.
type cliOptions struct {
	runs, points, depth, workers, faultLim int
	stride, every, crashAt                 int64
	models, mode                           string
	sweep, bench                           bool
}

// validateCLI checks cross-flag consistency and value ranges. Notably:
// unknown -faultmodel names are rejected in every execution path (the
// legacy stress path used to ignore the flag entirely, so a typo silently
// ran the clean model), and a -faultmodel or -mode that the selected path
// would ignore is an error rather than a no-op.
func validateCLI(o cliOptions) error {
	if o.workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d (1 = serial reference; default = GOMAXPROCS)", o.workers)
	}
	if o.workers > workloads.MaxWorkers {
		return fmt.Errorf("-workers must be <= %d, got %d (results are identical for every value; more workers than runs buys nothing)", workloads.MaxWorkers, o.workers)
	}
	if o.runs < 1 {
		return fmt.Errorf("-runs must be >= 1, got %d", o.runs)
	}
	if o.points < 1 {
		return fmt.Errorf("-maxpoints must be >= 1, got %d", o.points)
	}
	if o.stride < 0 {
		return fmt.Errorf("-stride must be >= 0, got %d", o.stride)
	}
	if o.depth < 0 {
		return fmt.Errorf("-recrash-depth must be >= 0, got %d", o.depth)
	}
	if o.every < 0 {
		return fmt.Errorf("-recrash-every must be >= 0, got %d", o.every)
	}
	if o.faultLim < 0 {
		return fmt.Errorf("-faultlimit must be >= 0, got %d", o.faultLim)
	}
	if _, err := parseModels(o.models); err != nil {
		return fmt.Errorf("-faultmodel: %w (valid: %s)", err, strings.Join(modelNames(), ", "))
	}
	replaying := o.crashAt >= 0
	if o.models != "" && !o.sweep && !o.bench && !replaying {
		return fmt.Errorf("-faultmodel only applies with -sweep, -bench, or -crashat replay (legacy stress always uses the clean model)")
	}
	if o.mode != "" {
		if !replaying {
			return fmt.Errorf("-mode only applies to -crashat replay")
		}
		if _, err := crash.ModeByName(o.mode); err != nil {
			return err
		}
	}
	if replaying && strings.Contains(o.models, ",") {
		return fmt.Errorf("-crashat replay takes exactly one -faultmodel, got %q", o.models)
	}
	return nil
}

// modelNames lists the valid -faultmodel arguments.
func modelNames() []string {
	var names []string
	for _, m := range pmem.Models() {
		names = append(names, m.Name())
	}
	return names
}

func main() {
	var (
		runs      = flag.Int("runs", 3, "random crash points per workload (legacy stress mode)")
		only      = flag.String("workload", "", "restrict to one workload name")
		seed      = flag.Uint64("seed", 7, "campaign / crash-point generator seed")
		quick     = flag.Bool("quick", true, "use the smaller test-scale configuration")
		sweep     = flag.Bool("sweep", false, "run the deterministic campaign instead of random stress")
		models    = flag.String("faultmodel", "", "fault model(s), comma-separated (clean, torn-lines, torn-words, reorder); empty = all in -sweep, clean otherwise")
		points    = flag.Int("maxpoints", crash.DefaultPoints, "swept crash points per (mode, model) pair")
		stride    = flag.Int64("stride", 0, "crash at every stride-th op (0 = derive from -maxpoints)")
		depth     = flag.Int("recrash-depth", 0, "nested crashes injected during recovery")
		every     = flag.Int64("recrash-every", 0, "base op budget between nested recovery crashes (0 = default)")
		shrink    = flag.Bool("shrink", false, "shrink the first failure per workload to a minimal replayable triple")
		asJSON    = flag.Bool("json", false, "emit campaign results as JSON")
		metricsTo = flag.String("metrics", "", "write the telemetry metrics registry (crash/fault counters included) as TSV to this file")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent campaign runs and GPU block goroutines (1 = serial reference; results are identical for every value)")
		benchTo   = flag.String("bench", "", "benchmark the campaign serially vs with -workers, verify identical verdicts, and write the wall-clock comparison as JSON to this file")

		// Replay flags (the shrinker's Replay string uses these).
		modeName  = flag.String("mode", "", "persistence mode for -crashat replay (e.g. GPM)")
		crashAt   = flag.Int64("crashat", -1, "replay a single crash at this op index")
		faultSeed = flag.Uint64("faultseed", 0, "fault-model seed for -crashat replay")
		faultLim  = flag.Int("faultlimit", 0, "fault only the first N dirty lines (0 = all)")
	)
	flag.Parse()

	if err := validateCLI(cliOptions{
		runs: *runs, points: *points, depth: *depth, workers: *workers, faultLim: *faultLim,
		stride: *stride, every: *every, crashAt: *crashAt,
		models: *models, mode: *modeName,
		sweep: *sweep, bench: *benchTo != "",
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gpmrecover:", err)
		flag.Usage()
		os.Exit(2)
	}

	cfg := workloads.DefaultConfig()
	if *quick {
		cfg = workloads.QuickConfig()
	}
	cfg.Workers = *workers
	var tel *telemetry.Telemetry
	if *metricsTo != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
	}

	mks := selectWorkloads(*only)
	if len(mks) == 0 {
		var names []string
		for _, mk := range append(experiments.Crashers(), experiments.NativeCrashers()...) {
			names = append(names, mk().Name())
		}
		fmt.Fprintf(os.Stderr, "gpmrecover: unknown workload %q (valid: %s)\n", *only, strings.Join(names, ", "))
		flag.Usage()
		os.Exit(2)
	}

	var code int
	switch {
	case *benchTo != "":
		code = bench(mks, cfg, *seed, *stride, *points, *models, *depth, *every, *workers, *benchTo)
	case *crashAt >= 0:
		code = replay(mks, cfg, *modeName, *models, *crashAt, *faultSeed, *faultLim, *depth, *every)
	case *sweep:
		code = campaign(mks, cfg, *seed, *stride, *points, *models, *depth, *every, *workers, *shrink, *asJSON)
	default:
		code = stress(mks, cfg, *seed, *runs)
	}
	if tel != nil {
		if err := os.WriteFile(*metricsTo, []byte(tel.Metrics.TSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
			if code == 0 {
				code = 2
			}
		} else {
			fmt.Fprintf(os.Stderr, "metrics -> %s\n", *metricsTo)
		}
	}
	os.Exit(code)
}

// selectWorkloads returns the recoverable workload constructors, optionally
// filtered by name.
func selectWorkloads(only string) []func() workloads.Crasher {
	var out []func() workloads.Crasher
	for _, mk := range append(experiments.Crashers(), experiments.NativeCrashers()...) {
		if only == "" || mk().Name() == only {
			out = append(out, mk)
		}
	}
	return out
}

// parseModels resolves a comma-separated model list; empty means all.
func parseModels(spec string) ([]pmem.FaultModel, error) {
	if spec == "" || spec == "all" {
		return nil, nil // campaign default: every model
	}
	var out []pmem.FaultModel
	for _, name := range strings.Split(spec, ",") {
		m, err := pmem.ModelByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// stress is the legacy mode: random second-half crash points under the
// clean fault model, every crash-study mode the workload supports.
func stress(mks []func() workloads.Crasher, cfg workloads.Config, seed uint64, runs int) int {
	injector := crash.NewInjector(seed)
	failures, total := 0, 0
	for _, mk := range mks {
		name := mk().Name()
		for i := 0; i < runs; i++ {
			results, err := injector.StressAll(mk, cfg)
			total += len(results)
			if err != nil {
				total++
				failures++
				fmt.Printf("FAIL %-12s run %d: %v\n", name, i, err)
			}
			for _, res := range results {
				fmt.Printf("ok   %-12s run %d: %-9s crashed@op %d, restored in %v (%.2f%% of op time)\n",
					name, i, res.Mode, res.CrashAt, res.Report.Restore, res.Report.RestoreFraction()*100)
			}
		}
	}
	fmt.Printf("\n%d/%d crash-recovery runs verified\n", total-failures, total)
	if failures > 0 {
		return 1
	}
	return 0
}

// campaign runs the deterministic sweep.
func campaign(mks []func() workloads.Crasher, cfg workloads.Config, seed uint64, stride int64, points int, modelSpec string, depth int, every int64, workers int, shrink, asJSON bool) int {
	models, err := parseModels(modelSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
		return 2
	}
	c := &crash.Campaign{
		Seed:         seed,
		Stride:       stride,
		MaxPoints:    points,
		Models:       models,
		RecrashDepth: depth,
		RecrashEvery: every,
		Workers:      workers,
	}
	results, err := c.RunAll(mks, cfg, shrink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
			return 2
		}
	}
	failures, total := 0, 0
	for _, wc := range results {
		total += len(wc.Runs)
		failures += wc.Failures
		if asJSON {
			continue
		}
		fmt.Printf("%-8s %d ops, %d runs, %d failures\n", wc.Workload, wc.TotalOps, len(wc.Runs), wc.Failures)
		for _, r := range wc.Runs {
			if r.Err != "" {
				fmt.Printf("  FAIL %s/%s@%d seed=%d: %s\n", r.Mode, r.Model, r.CrashAt, r.FaultSeed, r.Err)
			}
		}
		if wc.Shrunk != nil {
			fmt.Printf("  shrunk: %s\n", wc.Shrunk.Replay)
		}
	}
	if !asJSON {
		fmt.Printf("\n%d/%d campaign runs verified\n", total-failures, total)
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// replay re-executes one (seed, schedule, model) triple, typically pasted
// from a shrunk failure report.
func replay(mks []func() workloads.Crasher, cfg workloads.Config, modeName, modelSpec string, crashAt int64, faultSeed uint64, faultLim, depth int, every int64) int {
	if len(mks) != 1 {
		fmt.Fprintf(os.Stderr, "gpmrecover: -crashat replay needs -workload naming exactly one workload\n")
		return 2
	}
	mode := workloads.GPM
	if modeName != "" {
		m, err := crash.ModeByName(modeName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
			return 2
		}
		mode = m
	}
	var model pmem.FaultModel
	if modelSpec != "" {
		m, err := pmem.ModelByName(modelSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
			return 2
		}
		model = m
	}
	if faultLim > 0 {
		if model == nil {
			model = pmem.Clean{}
		}
		model = pmem.Subset{Base: model, Limit: faultLim}
	}
	rep, err := workloads.RunWithPlan(mks[0](), mode, cfg, workloads.CrashPlan{
		AbortAfterOps: crashAt,
		Fault:         model,
		FaultSeed:     faultSeed,
		RecrashDepth:  depth,
		RecrashEvery:  every,
	})
	name := mks[0]().Name()
	if err != nil {
		fmt.Printf("FAIL %s/%s@%d seed=%d: %v\n", name, mode, crashAt, faultSeed, err)
		return 1
	}
	fmt.Printf("ok   %s/%s@%d seed=%d: restored in %v (%.2f%% of op time)\n",
		name, mode, crashAt, faultSeed, rep.Restore, rep.RestoreFraction()*100)
	return 0
}

// benchReport is the BENCH_parallel.json schema: one campaign sweep run
// serially and again with the worker pool, plus the verdict-identity check
// that makes the speedup claim honest.
type benchReport struct {
	Workers        int     `json:"workers"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NumCPU         int     `json:"numcpu"`
	Runs           int     `json:"runs"`
	SerialWallMS   float64 `json:"serial_wall_ms"`
	ParallelWallMS float64 `json:"parallel_wall_ms"`
	// Speedup is serial/parallel wall-clock. It is only a meaningful
	// parallelism measurement when both GOMAXPROCS and the physical core
	// count exceed 1; with a single scheduler thread (or a single core
	// under an inflated GOMAXPROCS) the two sweeps interleave on one core
	// and the ratio is noise.
	Speedup         float64 `json:"speedup"`
	SpeedupMeasured bool    `json:"speedup_measured"` // false when GOMAXPROCS==1 or NumCPU==1
	Identical       bool    `json:"identical_results"`
}

// checkBaselineDowngrade guards the committed bench artifact: a baseline
// whose speedup was actually measured (multi-core run) must not be silently
// replaced by an unmeasured single-core run — that is exactly how the stale
// "0.78x" headline survived several PRs. Corrupt or missing baselines don't
// block: only a verified measured -> unmeasured downgrade does.
func checkBaselineDowngrade(outPath string, rep *benchReport) error {
	if rep.SpeedupMeasured {
		return nil
	}
	prev, err := os.ReadFile(outPath)
	if err != nil {
		return nil // no baseline to protect
	}
	var old benchReport
	if json.Unmarshal(prev, &old) != nil || !old.SpeedupMeasured {
		return nil
	}
	return fmt.Errorf("refusing to overwrite %s: existing baseline has speedup_measured=true (%.2fx on %d CPUs) but this run cannot measure speedup (GOMAXPROCS=%d, NumCPU=%d); rerun on a multi-core box or pick another -bench path",
		outPath, old.Speedup, old.NumCPU, rep.GOMAXPROCS, rep.NumCPU)
}

// bench times the campaign sweep twice — workers=1, then the requested pool
// size — checks both produce byte-identical reports, and writes the
// comparison as JSON. Speedup is wall-clock only; simulated results never
// depend on workers (that is the point of the comparison).
func bench(mks []func() workloads.Crasher, cfg workloads.Config, seed uint64, stride int64, points int, modelSpec string, depth int, every int64, workers int, outPath string) int {
	models, err := parseModels(modelSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
		return 2
	}
	par := workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sweep := func(w int) ([]byte, float64, error) {
		c := &crash.Campaign{
			Seed:         seed,
			Stride:       stride,
			MaxPoints:    points,
			Models:       models,
			RecrashDepth: depth,
			RecrashEvery: every,
			Workers:      w,
		}
		runCfg := cfg
		runCfg.Workers = w
		start := time.Now()
		results, err := c.RunAll(mks, runCfg, false)
		wall := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		blob, err := json.Marshal(results)
		return blob, float64(wall.Nanoseconds()) / 1e6, err
	}
	serialBlob, serialMS, err := sweep(1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: serial sweep: %v\n", err)
		return 2
	}
	parBlob, parMS, err := sweep(par)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: parallel sweep: %v\n", err)
		return 2
	}
	rep := benchReport{
		Workers:        par,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		SerialWallMS:   serialMS,
		ParallelWallMS: parMS,
		Identical:      bytes.Equal(serialBlob, parBlob),
	}
	var results []*crash.WorkloadCampaign
	if err := json.Unmarshal(serialBlob, &results); err == nil {
		for _, wc := range results {
			rep.Runs += len(wc.Runs)
		}
	}
	if parMS > 0 {
		rep.Speedup = serialMS / parMS
	}
	rep.SpeedupMeasured = rep.GOMAXPROCS > 1 && rep.NumCPU > 1 && par > 1
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
		return 2
	}
	if err := checkBaselineDowngrade(outPath, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
		return 1
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gpmrecover: %v\n", err)
		return 2
	}
	if rep.SpeedupMeasured {
		fmt.Printf("campaign: %d runs, serial %.0f ms, %d workers %.0f ms, %.2fx, identical=%v -> %s\n",
			rep.Runs, serialMS, par, parMS, rep.Speedup, rep.Identical, outPath)
	} else {
		// One scheduler thread: the pool interleaves, so a speedup headline
		// would be noise. Report the correctness half of the comparison only.
		fmt.Printf("campaign: %d runs, serial %.0f ms, %d workers %.0f ms (GOMAXPROCS=%d, speedup not measured), identical=%v -> %s\n",
			rep.Runs, serialMS, par, parMS, rep.GOMAXPROCS, rep.Identical, outPath)
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "gpmrecover: parallel sweep diverged from serial reference")
		return 1
	}
	return 0
}
