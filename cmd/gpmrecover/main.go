// Command gpmrecover is the crash-injection stress tool (§6.2, the NVBitFI
// analog): it runs each recoverable GPMbench workload repeatedly, aborting
// the GPU at random points mid-execution, simulating a power failure,
// running the workload's recovery procedure, and verifying that the
// recovered state is byte-correct.
//
//	gpmrecover -runs 5              # 5 random crash points per workload
//	gpmrecover -workload gpKVS      # stress one workload
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gpm-sim/gpm/internal/crash"
	"github.com/gpm-sim/gpm/internal/experiments"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	var (
		runs  = flag.Int("runs", 3, "crash points injected per workload")
		only  = flag.String("workload", "", "restrict to one workload name")
		seed  = flag.Uint64("seed", 7, "crash-point generator seed")
		quick = flag.Bool("quick", true, "use the smaller test-scale configuration")
	)
	flag.Parse()

	cfg := workloads.DefaultConfig()
	if *quick {
		cfg = workloads.QuickConfig()
	}

	injector := crash.NewInjector(*seed)
	failures := 0
	total := 0
	stress := func(mk func() workloads.Crasher) {
		name := mk().Name()
		if *only != "" && *only != name {
			return
		}
		for i := 0; i < *runs; i++ {
			total++
			res, err := injector.Stress(mk, cfg)
			if err != nil {
				failures++
				fmt.Printf("FAIL %-12s run %d: %v\n", name, i, err)
				continue
			}
			fmt.Printf("ok   %-12s run %d: crashed@op %d, restored in %v (%.2f%% of op time)\n",
				name, i, res.CrashAt, res.Report.Restore, res.Report.RestoreFraction()*100)
		}
	}
	for _, mk := range experiments.Crashers() {
		stress(mk)
	}
	for _, mk := range experiments.NativeCrashers() {
		stress(mk)
	}
	fmt.Printf("\n%d/%d crash-recovery runs verified\n", total-failures, total)
	if failures > 0 {
		os.Exit(1)
	}
}
