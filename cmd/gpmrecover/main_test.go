package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

// base returns a valid option set; cases mutate one field at a time.
func base() cliOptions {
	return cliOptions{runs: 3, points: 4, workers: 2, crashAt: -1}
}

// Flag validation must reject values that previously fell back to defaults
// silently — most importantly an unknown or ignored -faultmodel, which the
// legacy stress path used to drop on the floor.
func TestValidateCLI(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliOptions)
		wantErr string // "" = valid
	}{
		{"defaults", func(o *cliOptions) {}, ""},
		{"sweep with models", func(o *cliOptions) { o.sweep = true; o.models = "torn-lines,reorder" }, ""},
		{"bench with model", func(o *cliOptions) { o.bench = true; o.models = "clean" }, ""},
		{"replay", func(o *cliOptions) { o.crashAt = 100; o.mode = "GPM"; o.models = "torn-words" }, ""},
		{"workers zero", func(o *cliOptions) { o.workers = 0 }, "-workers"},
		{"workers negative", func(o *cliOptions) { o.workers = -1 }, "-workers"},
		{"workers absurd", func(o *cliOptions) { o.workers = 1 << 20 }, "-workers"},
		{"workers at cap", func(o *cliOptions) { o.workers = workloads.MaxWorkers }, ""},
		{"runs zero", func(o *cliOptions) { o.runs = 0 }, "-runs"},
		{"maxpoints zero", func(o *cliOptions) { o.points = 0 }, "-maxpoints"},
		{"negative stride", func(o *cliOptions) { o.stride = -5 }, "-stride"},
		{"negative depth", func(o *cliOptions) { o.depth = -1 }, "-recrash-depth"},
		{"negative every", func(o *cliOptions) { o.every = -1 }, "-recrash-every"},
		{"negative faultlimit", func(o *cliOptions) { o.faultLim = -2 }, "-faultlimit"},
		{"unknown model in sweep", func(o *cliOptions) { o.sweep = true; o.models = "torn-pages" }, "-faultmodel"},
		{"unknown model in stress", func(o *cliOptions) { o.models = "bogus" }, "-faultmodel"},
		{"valid model ignored by stress", func(o *cliOptions) { o.models = "torn-lines" }, "only applies"},
		{"mode without replay", func(o *cliOptions) { o.mode = "GPM" }, "-mode"},
		{"unknown mode in replay", func(o *cliOptions) { o.crashAt = 5; o.mode = "TURBO" }, "unknown mode"},
		{"model list in replay", func(o *cliOptions) { o.crashAt = 5; o.models = "clean,reorder" }, "exactly one"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base()
			c.mutate(&o)
			err := validateCLI(o)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateCLI(%+v) = %v, want nil", o, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateCLI(%+v) = nil, want error containing %q", o, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// The unknown-model error must list valid model names so the usage message
// is actionable.
func TestValidateCLIListsModels(t *testing.T) {
	o := base()
	o.sweep = true
	o.models = "nope"
	err := validateCLI(o)
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range []string{"clean", "torn-lines", "torn-words", "reorder"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list model %q", err, name)
		}
	}
}

// A measured multi-core baseline must never be silently replaced by an
// unmeasured single-core run — that is how the stale 0.78x headline
// survived several PRs. Unmeasured-over-unmeasured, measured-over-anything,
// and corrupt/missing baselines all write through.
func TestCheckBaselineDowngrade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	unmeasured := &benchReport{GOMAXPROCS: 1, NumCPU: 1}
	measured := &benchReport{GOMAXPROCS: 4, NumCPU: 4, SpeedupMeasured: true, Speedup: 2.5}

	if err := checkBaselineDowngrade(path, unmeasured); err != nil {
		t.Fatalf("missing baseline must not block: %v", err)
	}

	os.WriteFile(path, []byte(`{"speedup_measured": false, "speedup": 0.78}`), 0o644)
	if err := checkBaselineDowngrade(path, unmeasured); err != nil {
		t.Fatalf("unmeasured baseline must not block an unmeasured run: %v", err)
	}

	os.WriteFile(path, []byte(`{"speedup_measured": true, "speedup": 2.31, "numcpu": 4}`), 0o644)
	err := checkBaselineDowngrade(path, unmeasured)
	if err == nil {
		t.Fatal("measured baseline + unmeasured run must refuse to overwrite")
	}
	if !strings.Contains(err.Error(), "speedup_measured=true") {
		t.Errorf("refusal should explain the baseline state, got: %v", err)
	}

	if err := checkBaselineDowngrade(path, measured); err != nil {
		t.Fatalf("a measured run may always overwrite: %v", err)
	}

	os.WriteFile(path, []byte(`not json`), 0o644)
	if err := checkBaselineDowngrade(path, unmeasured); err != nil {
		t.Fatalf("corrupt baseline must not block: %v", err)
	}
}
