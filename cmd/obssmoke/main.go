// Command obssmoke is the end-to-end observability smoke test (make
// obs-smoke): it builds and starts a real gpmserve process with the admin
// endpoint, audit trail, and metrics flush enabled, drives pipelined load
// over TCP plus multi-key transactions through the client package
// (including a deliberate write-write conflict), asserts the admin
// surfaces (/healthz, /metrics, /statusz with its txn section,
// /debug/trace) are well-formed and show the load, then SIGTERMs the
// server and checks the drain left a metrics snapshot and a parseable
// audit trail on disk.
//
//	obssmoke            # defaults: 2 shards, 5000 ops
//	obssmoke -ops 20000 -shards 4
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/serve"
	"github.com/gpm-sim/gpm/internal/serve/client"
)

func main() {
	ops := flag.Int64("ops", 5000, "client operations to drive through the server")
	shards := flag.Int("shards", 2, "server shards")
	flag.Parse()
	if err := run(*ops, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

var (
	listenRE = regexp.MustCompile(`listening on (\S+)`)
	adminRE  = regexp.MustCompile(`admin endpoint on http://(\S+)`)
)

func run(ops int64, shards int) error {
	tmp, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "gpmserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/gpmserve").CombinedOutput(); err != nil {
		return fmt.Errorf("build gpmserve: %v\n%s", err, out)
	}

	metricsPath := filepath.Join(tmp, "metrics.tsv")
	auditPath := filepath.Join(tmp, "audit.jsonl")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-shards", strconv.Itoa(shards),
		"-metrics", metricsPath, "-audit", auditPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start gpmserve: %w", err)
	}
	defer cmd.Process.Kill() // no-op if the graceful path already reaped it

	// Scrape the serving and admin addresses from the server's own startup
	// lines (both listeners bind :0), echoing them for CI logs.
	addrCh, adminCh := make(chan string, 1), make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [gpmserve]", line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				addrCh <- m[1]
			}
			if m := adminRE.FindStringSubmatch(line); m != nil {
				adminCh <- m[1]
			}
		}
	}()
	var addr, admin string
	for addr == "" || admin == "" {
		select {
		case addr = <-addrCh:
		case admin = <-adminCh:
		case <-time.After(15 * time.Second):
			return fmt.Errorf("server did not announce addresses (serve=%q admin=%q)", addr, admin)
		}
	}

	// Healthy before any load.
	if code, body, err := get("http://" + admin + "/healthz"); err != nil || code != 200 || !strings.Contains(string(body), "ok") {
		return fmt.Errorf("/healthz = %d %q (%v), want 200 ok", code, body, err)
	}

	load, err := serve.RunLoad(serve.LoadConfig{
		Addr: addr, Ops: ops, Conns: 4, Window: 16,
		GetFraction: 0.5, DelFraction: 0.05, Seed: 1,
	})
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if load.Ops != ops || load.Errors > 0 {
		return fmt.Errorf("load did %d/%d ops with %d errors", load.Ops, ops, load.Errors)
	}
	fmt.Printf("load: %d ops, %.0f ops/s, p99 %.0fµs\n", load.Ops, load.Throughput, load.P99US)

	commits, aborts, err := exerciseTxns(addr)
	if err != nil {
		return fmt.Errorf("txn exercise: %w", err)
	}
	fmt.Printf("txns: %d committed, %d conflict-aborted over protocol v2\n", commits, aborts)

	if err := checkMetrics(admin, ops); err != nil {
		return err
	}
	if err := checkStatusz(admin, shards, ops, commits, aborts); err != nil {
		return err
	}
	if err := checkTraces(admin); err != nil {
		return err
	}

	// Graceful SIGTERM drain: exit 0, metrics snapshot on disk, audit trail
	// recording the drain.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("gpmserve exit after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("gpmserve did not exit within 30s of SIGTERM")
	}

	mblob, err := os.ReadFile(metricsPath)
	if err != nil {
		return fmt.Errorf("metrics file after drain: %w", err)
	}
	if !bytes.Contains(mblob, []byte("serve.shard0.ops")) {
		return fmt.Errorf("metrics file missing serve.shard0.ops:\n%s", mblob)
	}
	ablob, err := os.ReadFile(auditPath)
	if err != nil {
		return fmt.Errorf("audit file after drain: %w", err)
	}
	drains := 0
	for _, line := range bytes.Split(bytes.TrimSpace(ablob), []byte("\n")) {
		var ev obs.AuditEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("audit line %q: %w", line, err)
		}
		if ev.Type == obs.AuditDrain {
			drains++
		}
	}
	if drains == 0 {
		return fmt.Errorf("audit trail has no drain event:\n%s", ablob)
	}
	fmt.Printf("drain: clean exit, metrics snapshot + %d-line audit trail\n",
		bytes.Count(bytes.TrimSpace(ablob), []byte("\n"))+1)
	return nil
}

// exerciseTxns drives multi-key transactions through the first-class
// client package against the live server: read-modify-write increments
// that must commit, then a deliberate write-write conflict whose loser
// must abort with the conflicting key named. Keys sit far above the plain
// load's keyspace so the two workloads never share dedup or slot state.
func exerciseTxns(addr string) (commits, aborts int64, err error) {
	cl, err := client.Dial(client.Config{
		Addr: addr, Timeout: 10 * time.Second,
		Proto:    client.MaxProto,
		Reliable: true, CID: 9001,
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	if cl.Proto() != 2 {
		return 0, 0, fmt.Errorf("negotiated protocol v%d, want v2", cl.Proto())
	}
	// A transaction's write set must stay on one shard: step keys by the
	// negotiated shard count so they agree mod shards.
	const base = uint64(1) << 21
	stride := uint64(cl.Shards())
	for i := uint64(0); i < 3; i++ {
		txn, err := cl.Begin()
		if err != nil {
			return commits, aborts, err
		}
		for _, k := range []uint64{base, base + stride} {
			v, _, err := txn.Get(k)
			if err != nil {
				return commits, aborts, fmt.Errorf("txn get %d: %w", k, err)
			}
			txn.Set(k, v+1)
		}
		res, err := txn.Commit()
		if err != nil {
			return commits, aborts, fmt.Errorf("txn commit: %w", err)
		}
		if !res.Committed {
			return commits, aborts, fmt.Errorf("uncontended transaction %d aborted on key %d", i, res.ConflictKey)
		}
		commits++
	}
	// Write-write conflict: t2's snapshot predates t1's commit, so t2's
	// write on the shared key must lose commit-window validation.
	t1, err := cl.Begin()
	if err != nil {
		return commits, aborts, err
	}
	t2, err := cl.Begin()
	if err != nil {
		return commits, aborts, err
	}
	t1.Set(base, 100)
	if res, err := t1.Commit(); err != nil || !res.Committed {
		return commits, aborts, fmt.Errorf("conflict winner: committed=%v err=%v", res.Committed, err)
	}
	commits++
	t2.Set(base, 200)
	res, err := t2.Commit()
	if err != nil {
		return commits, aborts, fmt.Errorf("conflict loser commit: %w", err)
	}
	if res.Committed {
		return commits, aborts, fmt.Errorf("conflicting transaction committed — write-write conflict not detected")
	}
	if res.ConflictKey != base {
		return commits, aborts, fmt.Errorf("abort named key %d, conflict was on %d", res.ConflictKey, base)
	}
	aborts++
	return commits, aborts, nil
}

// checkMetrics asserts /metrics renders Prometheus text whose shard-0 ops
// counter accounts for a plausible share of the driven load.
func checkMetrics(admin string, ops int64) error {
	code, body, err := get("http://" + admin + "/metrics")
	if err != nil || code != 200 {
		return fmt.Errorf("/metrics = %d (%v)", code, err)
	}
	re := regexp.MustCompile(`(?m)^serve_shard0_ops (\d+)`)
	m := re.FindSubmatch(body)
	if m == nil {
		return fmt.Errorf("/metrics missing serve_shard0_ops:\n%.2000s", body)
	}
	n, _ := strconv.ParseInt(string(m[1]), 10, 64)
	if n < 1 || n > ops {
		return fmt.Errorf("serve_shard0_ops = %d, want within [1, %d]", n, ops)
	}
	fmt.Printf("/metrics: ok (shard0 ops %d)\n", n)
	return nil
}

// checkStatusz asserts the /statusz JSON document is well-formed, its
// per-shard rows account for every driven op (transactions ride separate
// counters), and the txn section shows the transactions just driven.
func checkStatusz(admin string, shards int, ops, txnCommits, txnAborts int64) error {
	code, body, err := get("http://" + admin + "/statusz")
	if err != nil || code != 200 {
		return fmt.Errorf("/statusz = %d (%v)", code, err)
	}
	var doc struct {
		UptimeS   float64 `json:"uptime_s"`
		Shards    int     `json:"shards"`
		Draining  bool    `json:"draining"`
		Windows   []any   `json:"windows"`
		ShardRows []struct {
			Ops        int64 `json:"ops"`
			CacheHits  int64 `json:"cache_hits"`
			TxnCommits int64 `json:"txn_commits"`
			TxnAborts  int64 `json:"txn_aborts"`
		} `json:"shard_status"`
		Txn struct {
			ActiveSnapshots int      `json:"active_snapshots"`
			OracleTS        uint64   `json:"oracle_ts"`
			StableFloor     uint64   `json:"stable_floor"`
			MVCCFloors      []uint64 `json:"mvcc_floor_by_shard"`
		} `json:"txn"`
		Traces struct {
			Captured int64 `json:"captured"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("/statusz parse: %w\n%.2000s", err, body)
	}
	// Batched ops plus hot-key cache hits (answered at admission, so they
	// never reach the shard op counters) must account for every driven op.
	// Transaction commits ride the same epochs but tally separately.
	var rowOps, rowCommits, rowAborts int64
	for _, r := range doc.ShardRows {
		rowOps += r.Ops + r.CacheHits
		rowCommits += r.TxnCommits
		rowAborts += r.TxnAborts
	}
	rowOps -= rowCommits // committed txns ride epochs, so they count as ops
	switch {
	case doc.Shards != shards || len(doc.ShardRows) != shards:
		return fmt.Errorf("/statusz shards = %d with %d rows, want %d", doc.Shards, len(doc.ShardRows), shards)
	case doc.UptimeS <= 0 || doc.Draining:
		return fmt.Errorf("/statusz uptime %.3fs draining %v", doc.UptimeS, doc.Draining)
	case rowOps != ops:
		return fmt.Errorf("/statusz shard rows account for %d ops, want %d", rowOps, ops)
	case len(doc.Windows) == 0:
		return fmt.Errorf("/statusz has no rolling windows")
	case doc.Traces.Captured < 1:
		return fmt.Errorf("/statusz shows no captured traces")
	case rowCommits != txnCommits || rowAborts != txnAborts:
		return fmt.Errorf("/statusz txn rows show %d commits / %d aborts, drove %d / %d",
			rowCommits, rowAborts, txnCommits, txnAborts)
	case doc.Txn.OracleTS == 0 || doc.Txn.StableFloor > doc.Txn.OracleTS:
		return fmt.Errorf("/statusz txn oracle ts %d, stable floor %d — not a monotone oracle",
			doc.Txn.OracleTS, doc.Txn.StableFloor)
	case doc.Txn.ActiveSnapshots != 0:
		return fmt.Errorf("/statusz shows %d active snapshots after all txns resolved", doc.Txn.ActiveSnapshots)
	case len(doc.Txn.MVCCFloors) != shards:
		return fmt.Errorf("/statusz mvcc floors cover %d shards, want %d", len(doc.Txn.MVCCFloors), shards)
	}
	fmt.Printf("/statusz: ok (%d shards, %d ops, %d txn commits / %d aborts, oracle ts %d, %d traces)\n",
		doc.Shards, rowOps, rowCommits, rowAborts, doc.Txn.OracleTS, doc.Traces.Captured)
	return nil
}

// checkTraces asserts /debug/trace returns a JSON array of sampled request
// traces with staged timelines.
func checkTraces(admin string) error {
	code, body, err := get("http://" + admin + "/debug/trace?n=8")
	if err != nil || code != 200 {
		return fmt.Errorf("/debug/trace = %d (%v)", code, err)
	}
	var traces []obs.ReqTrace
	if err := json.Unmarshal(body, &traces); err != nil {
		return fmt.Errorf("/debug/trace parse: %w\n%.2000s", err, body)
	}
	if len(traces) == 0 {
		return fmt.Errorf("/debug/trace returned no traces")
	}
	for _, tr := range traces {
		if tr.ID == 0 || len(tr.Stages) == 0 {
			return fmt.Errorf("/debug/trace has a malformed trace: %+v", tr)
		}
	}
	fmt.Printf("/debug/trace: ok (%d traces)\n", len(traces))
	return nil
}

// get fetches a URL with a bounded client and returns status + body.
func get(url string) (int, []byte, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
