package main

import (
	"strings"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/workloads"
)

// okOptions is a baseline that must validate; each case mutates one field.
func okOptions() cliOptions {
	return cliOptions{
		addr: "127.0.0.1:7070", mode: "GPM", dist: "uniform",
		shards: 2, sets: 64, batch: 16, queue: 64, hotKeys: 128,
		workers: 0, capThreads: 16, conns: 4, window: 8,
		ops: 100, batchWait: time.Millisecond, drain: time.Second,
		getFrac: 0.5, delFrac: 0.05, txnSize: 2,
	}
}

func TestValidateCLI(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliOptions)
		wantErr string // empty = valid
	}{
		{"baseline", func(o *cliOptions) {}, ""},
		{"empty addr", func(o *cliOptions) { o.addr = "" }, "-addr"},
		{"unknown mode", func(o *cliOptions) { o.mode = "bogus" }, "unsupported mode"},
		{"unservable mode", func(o *cliOptions) { o.mode = "GPUfs" }, "unsupported mode"},
		{"zero shards", func(o *cliOptions) { o.shards = 0 }, "-shards"},
		{"zero sets", func(o *cliOptions) { o.sets = 0 }, "-sets"},
		{"zero batch", func(o *cliOptions) { o.batch = 0 }, "-batch"},
		{"negative wait", func(o *cliOptions) { o.batchWait = -time.Second }, "-batch-wait"},
		{"zero queue", func(o *cliOptions) { o.queue = 0 }, "-queue"},
		{"negative workers", func(o *cliOptions) { o.workers = -1 }, "-workers"},
		{"zero capthreads", func(o *cliOptions) { o.capThreads = 0 }, "-capthreads"},
		{"zero drain", func(o *cliOptions) { o.drain = 0 }, "-drain-timeout"},
		{"zero ops", func(o *cliOptions) { o.ops = 0 }, "-ops"},
		{"zero conns", func(o *cliOptions) { o.conns = 0 }, "-conns"},
		{"zero window", func(o *cliOptions) { o.window = 0 }, "-window"},
		{"fractions over 1", func(o *cliOptions) { o.getFrac, o.delFrac = 0.8, 0.3 }, "fractions"},
		{"negative get", func(o *cliOptions) { o.getFrac = -0.1 }, "fractions"},
		{"zero hotkeys", func(o *cliOptions) { o.hotKeys = 0 }, "-hotkeys"},
		{"unknown dist", func(o *cliOptions) { o.dist = "pareto" }, "-dist"},
		{"theta without zipf", func(o *cliOptions) { o.theta = 0.9 }, "-theta"},
		{"zipf theta ok", func(o *cliOptions) { o.dist, o.theta = "zipf", 0.9 }, ""},
		{"zipf theta out of range", func(o *cliOptions) { o.dist, o.theta = "zipf", 1.2 }, "-theta"},
		{"zero txn-size", func(o *cliOptions) { o.txnSize = 0 }, "-txn-size"},
		{"negative txns", func(o *cliOptions) { o.txns = -1 }, "-txns"},
		{"txns default ok", func(o *cliOptions) { o.txns = 0 }, ""},
		{"modes without selftest", func(o *cliOptions) { o.modes = "GPM" }, "-modes only applies"},
		{"shard-counts without selftest", func(o *cliOptions) { o.shardCounts = "1,2" }, "-shard-counts only applies"},
		{"baseline without selftest", func(o *cliOptions) { o.baseline = "BENCH_serve.json" }, "-baseline only applies"},
		{"selftest with baseline", func(o *cliOptions) { o.selftest = true; o.baseline = "BENCH_serve.json" }, ""},
		{"fixed-wait ok", func(o *cliOptions) { o.fixedWait = true }, ""},
		{"selftest with modes", func(o *cliOptions) { o.selftest = true; o.modes = "GPM,CAP-fs" }, ""},
		{"selftest bad mode list", func(o *cliOptions) { o.selftest = true; o.modes = "GPM,nope" }, "-modes"},
		{"selftest bad counts", func(o *cliOptions) { o.selftest = true; o.shardCounts = "2,0" }, "-shard-counts"},
		{"selftest counts junk", func(o *cliOptions) { o.selftest = true; o.shardCounts = "two" }, "-shard-counts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := okOptions()
			tc.mutate(&o)
			err := validateCLI(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateCLI: %v, want ok", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateCLI = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseModes(t *testing.T) {
	modes, err := parseModes(" GPM , CAP-fs ")
	if err != nil {
		t.Fatal(err)
	}
	want := []workloads.Mode{workloads.GPM, workloads.CAPfs}
	if len(modes) != 2 || modes[0] != want[0] || modes[1] != want[1] {
		t.Fatalf("parseModes = %v, want %v", modes, want)
	}
	if m, err := parseModes(""); err != nil || m != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", m, err)
	}
	if _, err := parseModes("GPUfs"); err == nil {
		t.Fatal("GPUfs should be rejected as unservable")
	}
}

func TestParseShardCounts(t *testing.T) {
	counts, err := parseShardCounts("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 2 || counts[2] != 8 {
		t.Fatalf("parseShardCounts = %v, want [1 2 8]", counts)
	}
	for _, bad := range []string{"0", "-1", "x", "2,,4"} {
		if _, err := parseShardCounts(bad); err == nil {
			t.Errorf("parseShardCounts(%q) should fail", bad)
		}
	}
}
