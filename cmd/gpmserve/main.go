// Command gpmserve is the batched network KVS front-end over the simulated
// gpKVS store (§6.1): a TCP server that accumulates GET/SET/DEL requests
// into admission-controlled batches, dispatches each batch as the same GPU
// kernel transactions the gpKVS workload runs (HCL undo logging under GPM,
// CAP-fs/CAP-mm persistence as baselines), and replies only after the
// batch's persistence path completes. The keyspace partitions across
// -shards independent simulated nodes.
//
//	gpmserve -addr :7070 -mode GPM -shards 4      # serve until SIGTERM
//	gpmserve -selftest                            # in-process smoke: load,
//	                                              # kill-and-recover, verify,
//	                                              # write BENCH_serve.json
//	gpmserve -selftest -modes GPM,CAP-fs -shard-counts 1,2,4 -ops 20000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/gpm-sim/gpm/internal/serve"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// cliOptions mirrors the flag set for upfront validation: every rejection
// happens before a listener or shard exists, with exit 2 + usage.
type cliOptions struct {
	addr, mode, modes, shardCounts, out string
	dist, baseline                      string
	adminAddr, audit                    string
	shards, sets, batch, queue          int
	hotKeys                             int
	workers, capThreads, conns, window  int
	ops, txns                           int64
	txnSize                             int
	batchWait, drain                    time.Duration
	getFrac, delFrac, theta             float64
	selftest, noRecover, fixedWait      bool
	retryPass, txnPass                  bool
}

// validateCLI checks value ranges and cross-flag consistency. Mode names
// are resolved against the servable set, so a typo (or a mode like GPUfs
// that cannot serve) fails here rather than mid-listen.
func validateCLI(o cliOptions) error {
	if o.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if _, err := serve.ModeByName(o.mode); err != nil {
		return fmt.Errorf("-mode: %w", err)
	}
	if o.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", o.shards)
	}
	if o.sets < 1 {
		return fmt.Errorf("-sets must be >= 1, got %d", o.sets)
	}
	if o.batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", o.batch)
	}
	if o.batchWait < 0 {
		return fmt.Errorf("-batch-wait must be >= 0, got %s", o.batchWait)
	}
	if o.queue < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", o.queue)
	}
	if err := workloads.ValidateWorkers(o.workers); err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	if o.capThreads < 1 {
		return fmt.Errorf("-capthreads must be >= 1, got %d", o.capThreads)
	}
	if o.drain <= 0 {
		return fmt.Errorf("-drain-timeout must be > 0, got %s", o.drain)
	}
	if o.ops < 1 {
		return fmt.Errorf("-ops must be >= 1, got %d", o.ops)
	}
	if o.conns < 1 {
		return fmt.Errorf("-conns must be >= 1, got %d", o.conns)
	}
	if o.window < 1 {
		return fmt.Errorf("-window must be >= 1, got %d", o.window)
	}
	if o.getFrac < 0 || o.delFrac < 0 || o.getFrac+o.delFrac > 1 {
		return fmt.Errorf("-get/-del fractions must be >= 0 and sum to <= 1, got %g + %g", o.getFrac, o.delFrac)
	}
	if o.hotKeys < 1 {
		return fmt.Errorf("-hotkeys must be >= 1, got %d", o.hotKeys)
	}
	switch o.dist {
	case serve.DistUniform:
		if o.theta != 0 {
			return fmt.Errorf("-theta only applies with -dist zipf")
		}
	case serve.DistZipf:
		if o.theta < 0 || o.theta >= 1 {
			return fmt.Errorf("-theta must be in (0, 1) (0 = 0.99 default), got %g", o.theta)
		}
	default:
		return fmt.Errorf("-dist must be %q or %q, got %q", serve.DistUniform, serve.DistZipf, o.dist)
	}
	if o.txns < 0 {
		return fmt.Errorf("-txns must be >= 0 (0 = ops/8), got %d", o.txns)
	}
	if o.txnSize < 1 {
		return fmt.Errorf("-txn-size must be >= 1, got %d", o.txnSize)
	}
	if o.selftest && o.adminAddr != "" {
		return fmt.Errorf("-admin-addr only applies when serving (selftest probes an ephemeral admin endpoint itself)")
	}
	if !o.selftest {
		if o.modes != "" {
			return fmt.Errorf("-modes only applies with -selftest (use -mode to pick the serving mode)")
		}
		if o.shardCounts != "" {
			return fmt.Errorf("-shard-counts only applies with -selftest (use -shards)")
		}
		if o.baseline != "" {
			return fmt.Errorf("-baseline only applies with -selftest")
		}
	}
	if _, err := parseModes(o.modes); err != nil {
		return fmt.Errorf("-modes: %w", err)
	}
	if _, err := parseShardCounts(o.shardCounts); err != nil {
		return fmt.Errorf("-shard-counts: %w", err)
	}
	return nil
}

// parseModes resolves a comma-separated servable mode list; empty = nil
// (SelfTest defaults to GPM).
func parseModes(spec string) ([]workloads.Mode, error) {
	if spec == "" {
		return nil, nil
	}
	var out []workloads.Mode
	for _, name := range strings.Split(spec, ",") {
		m, err := serve.ModeByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// parseShardCounts parses a comma-separated list of shard counts; empty =
// nil (SelfTest defaults to 2).
func parseShardCounts(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("shard count %q must be an integer >= 1", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		modeName   = flag.String("mode", "GPM", "persistence mode to serve under (GPM, GPM-eADR, GPM-NDP, CAP-fs, CAP-mm, CAP-eADR)")
		shards     = flag.Int("shards", 2, "keyspace partitions, each an independent simulated GPU+PM node")
		sets       = flag.Int("sets", 1<<10, "hash sets per shard (8 ways each)")
		batch      = flag.Int("batch", 256, "max client ops per kernel batch")
		batchWait  = flag.Duration("batch-wait", 500*time.Microsecond, "max wall-clock wait before a partial batch dispatches (adaptive: upper bound on the starvation grace)")
		fixedWait  = flag.Bool("fixed-wait", false, "disable adaptive batch sizing; always hold partial batches for -batch-wait")
		hotKeys    = flag.Int("hotkeys", 128, "per-shard hot-key sketch capacity for the eADR read cache")
		queue      = flag.Int("queue", 1024, "per-shard admission queue depth (requests)")
		workers    = flag.Int("workers", 0, "GPU block goroutines per shard (0 = GOMAXPROCS; simulated results are identical for every value)")
		capThreads = flag.Int("capthreads", 16, "host threads for CAP-mode persistence")
		seed       = flag.Uint64("seed", 1, "shard RNG seed base")
		drain      = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget: pending batches flush, then stragglers are cut")
		metricsTo  = flag.String("metrics", "", "write the telemetry metrics registry as TSV to this file on shutdown (flushed once when SIGTERM lands and again with final counts at exit)")
		adminAddr  = flag.String("admin-addr", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/trace (empty = disabled)")
		auditPath  = flag.String("audit", "", "append recovery audit events (crash/restart/verify/drain) as JSONL to this file")

		selftest   = flag.Bool("selftest", false, "run the in-process smoke test (load, kill-and-recover, verify) instead of serving")
		modesSpec  = flag.String("modes", "", "selftest: comma-separated modes (default GPM)")
		countsSpec = flag.String("shard-counts", "", "selftest: comma-separated shard counts (default 2)")
		ops        = flag.Int64("ops", 10000, "selftest: total client operations per (mode, shards) run")
		conns      = flag.Int("conns", 8, "selftest: concurrent client connections")
		window     = flag.Int("window", 16, "selftest: pipelined requests per connection")
		getFrac    = flag.Float64("get", 0.5, "selftest: GET fraction of the op mix")
		delFrac    = flag.Float64("del", 0.05, "selftest: DEL fraction of the op mix")
		distFlag   = flag.String("dist", serve.DistUniform, "selftest: key distribution (uniform or zipf)")
		theta      = flag.Float64("theta", 0, "selftest: zipf skew in (0, 1); 0 = 0.99; requires -dist zipf")
		noRecover  = flag.Bool("no-recover", false, "selftest: skip the kill-and-recover pass")
		out        = flag.String("out", "BENCH_serve.json", "selftest: write the benchmark report here")
		baseline   = flag.String("baseline", "", "selftest: perf gate — fail unless ops/s >= 0.9x and p99 <= 1.1x this committed report")
		retryPass  = flag.Bool("retry-pass", true, "selftest: also measure each config with the exactly-once retry client; its throughput must stay >= 0.9x of the retry-off pass")
		txnPass    = flag.Bool("txn-pass", true, "selftest: also measure each config under zipf hot-key RMW transactions (protocol v2, SI ledger verified) and gate conflict epoch fill >= 2x the chained-epoch baseline")
		txns       = flag.Int64("txns", 0, "selftest: transactions per txn pass (0 = ops/8)")
		txnSize    = flag.Int("txn-size", 2, "selftest: keys per transaction in the txn pass")
	)
	flag.Parse()

	o := cliOptions{
		addr: *addr, mode: *modeName, modes: *modesSpec, shardCounts: *countsSpec, out: *out,
		dist: *distFlag, baseline: *baseline,
		adminAddr: *adminAddr, audit: *auditPath,
		shards: *shards, sets: *sets, batch: *batch, queue: *queue, hotKeys: *hotKeys,
		workers: *workers, capThreads: *capThreads, conns: *conns, window: *window,
		ops: *ops, txns: *txns, txnSize: *txnSize, batchWait: *batchWait, drain: *drain,
		getFrac: *getFrac, delFrac: *delFrac, theta: *theta,
		selftest: *selftest, noRecover: *noRecover, fixedWait: *fixedWait,
		retryPass: *retryPass, txnPass: *txnPass,
	}
	if err := validateCLI(o); err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		flag.Usage()
		os.Exit(2)
	}
	mode, _ := serve.ModeByName(*modeName)

	if *selftest {
		os.Exit(runSelfTest(o, mode, *seed))
	}
	os.Exit(runServer(o, mode, *seed, *metricsTo))
}

// runServer serves until SIGINT/SIGTERM, then drains gracefully. The
// observability plane (admin endpoint, rolling windows, request tracing,
// audit trail) comes up with the listener and dies with the process.
func runServer(o cliOptions, mode workloads.Mode, seed uint64, metricsTo string) int {
	tel := telemetry.New()
	plane, err := serve.NewObsPlane(serve.ObsConfig{
		AdminAddr: o.adminAddr,
		AuditPath: o.audit,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 2
	}
	defer plane.Stop()
	cfg := serve.Config{
		Mode:       mode,
		Shards:     o.shards,
		Sets:       o.sets,
		MaxBatch:   o.batch,
		BatchWait:  o.batchWait,
		FixedWait:  o.fixedWait,
		QueueDepth: o.queue,
		HotKeys:    o.hotKeys,
		Workers:    o.workers,
		CAPThreads: o.capThreads,
		Seed:       seed,
		Telemetry:  tel,
	}
	plane.Apply(&cfg)
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 2
	}
	laddr, err := srv.Listen(o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "gpmserve: %s, %d shards, batch %d/%s, listening on %s\n",
		mode, o.shards, o.batch, o.batchWait, laddr)
	if boundAdmin, err := plane.Start(srv); err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve: admin:", err)
		return 2
	} else if boundAdmin != "" {
		fmt.Fprintf(os.Stderr, "gpmserve: admin endpoint on http://%s\n", boundAdmin)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "gpmserve: %s — draining (budget %s)\n", sig, o.drain)
		// Flush a metrics snapshot before draining so the counters survive
		// even if the drain stalls and the process is killed.
		flushMetrics(tel, metricsTo, " (pre-drain)")
		srv.Shutdown(o.drain)
		close(done)
	}()

	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 1
	}
	<-done

	code := 0
	for _, sh := range srv.Shards() {
		if err := sh.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "gpmserve: shard %d failed post-drain verification: %v\n", sh.ID(), err)
			code = 1
		}
	}
	if err := flushMetrics(tel, metricsTo, ""); err != nil && code == 0 {
		code = 2
	}
	return code
}

// flushMetrics writes the registry as TSV to path ("" = disabled). Called
// twice on a signalled shutdown: once the moment the signal lands, and
// again after the drain with final counts.
func flushMetrics(tel *telemetry.Telemetry, path, note string) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, []byte(tel.Metrics.TSV()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return err
	}
	fmt.Fprintf(os.Stderr, "metrics -> %s%s\n", path, note)
	return nil
}

// runSelfTest drives the whole serving path in-process and writes
// BENCH_serve.json. Any verification or recovery failure is fatal.
func runSelfTest(o cliOptions, mode workloads.Mode, seed uint64) int {
	modes, _ := parseModes(o.modes)
	if len(modes) == 0 {
		modes = []workloads.Mode{mode}
	}
	counts, _ := parseShardCounts(o.shardCounts)
	if len(counts) == 0 {
		counts = []int{o.shards}
	}
	rep, err := serve.SelfTest(serve.SelfTestOptions{
		Modes:          modes,
		ShardCounts:    counts,
		Ops:            o.ops,
		Conns:          o.conns,
		Window:         o.window,
		Sets:           o.sets,
		MaxBatch:       o.batch,
		BatchWait:      o.batchWait,
		FixedWait:      o.fixedWait,
		QueueDepth:     o.queue,
		HotKeys:        o.hotKeys,
		Workers:        o.workers,
		Seed:           seed,
		GetFraction:    o.getFrac,
		DelFraction:    o.delFrac,
		Dist:           o.dist,
		Theta:          o.theta,
		KillAndRecover: !o.noRecover,
		Admin:          true,
		AuditPath:      o.audit,
		RetryPass:      o.retryPass,
		TxnPass:        o.txnPass,
		Txns:           o.txns,
		TxnSize:        o.txnSize,
	})
	for _, e := range rep.Entries {
		if e.Txn {
			fmt.Printf("%-8s x%d [txn]: %d txns (%d committed, %d dropped, %d conflict retries), %.0f txns/s, p50 %.0fµs p99 %.0fµs, %d batches (fill %.1f), SI ledger %d keys, conflict fill %.1f vs chained %.1f (%.1fx)\n",
				e.Mode, e.Shards, e.Ops, e.TxnCommitted, e.TxnDropped, e.TxnConflictRetries,
				e.Throughput, e.P50US, e.P99US, e.Batches, e.MeanFill, e.SILedgerKeys,
				e.ConflictFill, e.ChainedFill, e.FillGain)
			continue
		}
		tag := ""
		if e.Retry {
			tag = " [retry]"
		}
		fmt.Printf("%-8s x%d%s: %d ops, %.0f ops/s, p50 %.0fµs p99 %.0fµs, %d batches (fill %.1f), %d cache hits, recovered=%v verified=%v, %d traces, %d audit events (consistent=%v)\n",
			e.Mode, e.Shards, tag, e.Ops, e.Throughput, e.P50US, e.P99US, e.Batches, e.MeanFill, e.CacheHits, e.Recovered, e.Verified,
			e.TracesCaptured, e.AuditEvents, e.AuditConsistent)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 1
	}
	if err := gateRetryOverhead(rep); err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve: retry gate:", err)
		return 1
	}
	if o.baseline != "" {
		if err := gateAgainstBaseline(rep, o.baseline); err != nil {
			fmt.Fprintln(os.Stderr, "gpmserve: perf gate:", err)
			return 1
		}
		fmt.Printf("perf gate: within 0.9x ops / 1.1x p99 of %s\n", o.baseline)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 2
	}
	if err := os.WriteFile(o.out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gpmserve:", err)
		return 2
	}
	fmt.Printf("report -> %s\n", o.out)
	return 0
}

// Perf-gate tolerances: a run may lose at most 10% throughput and gain at
// most 10% p99 latency against the committed baseline before failing.
const (
	gateMinOpsFrac = 0.9
	gateMaxP99Frac = 1.1
)

// gateAgainstBaseline compares every (mode, shards) entry of rep against
// the committed baseline report at path. Entries missing from the baseline
// are skipped (new configurations set their own floor when committed); a
// gate run that matches nothing is an error, not a pass.
func gateAgainstBaseline(rep *serve.BenchReport, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base serve.BenchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseBy := make(map[string]serve.BenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseBy[fmt.Sprintf("%s/%d/retry=%v/txn=%v", e.Mode, e.Shards, e.Retry, e.Txn)] = e
	}
	matched := 0
	for _, e := range rep.Entries {
		b, ok := baseBy[fmt.Sprintf("%s/%d/retry=%v/txn=%v", e.Mode, e.Shards, e.Retry, e.Txn)]
		if !ok {
			continue
		}
		matched++
		if e.Throughput < b.Throughput*gateMinOpsFrac {
			return fmt.Errorf("%s x%d: %.0f ops/s < %.0f (%.0f%% of baseline %.0f)",
				e.Mode, e.Shards, e.Throughput, b.Throughput*gateMinOpsFrac,
				100*e.Throughput/b.Throughput, b.Throughput)
		}
		// Txn-pass p99 embeds a run-dependent number of conflict re-runs
		// (the tail is "how many times the hottest key lost validation"),
		// so only throughput is latency-gated for txn entries.
		if !e.Txn && b.P99US > 0 && e.P99US > b.P99US*gateMaxP99Frac {
			return fmt.Errorf("%s x%d: p99 %.0fµs > %.0fµs (%.0f%% of baseline %.0fµs)",
				e.Mode, e.Shards, e.P99US, b.P99US*gateMaxP99Frac,
				100*e.P99US/b.P99US, b.P99US)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no (mode, shards) entries in common with %s", path)
	}
	return nil
}

// gateRetryOverhead compares retry-on against retry-off entries within one
// report. The real regression gate for both passes is the committed
// baseline (gateAgainstBaseline keys entries by retry flag); two sequential
// passes of one run are too noise-coupled for a tight relative bound, so
// this only prints the observed overhead and trips on a catastrophic
// (>2x) collapse that no scheduler noise explains. No retry entries
// (e.g. -retry-pass=false) means nothing to compare.
func gateRetryOverhead(rep *serve.BenchReport) error {
	off := make(map[string]serve.BenchEntry, len(rep.Entries))
	for _, e := range rep.Entries {
		if !e.Retry {
			off[fmt.Sprintf("%s/%d", e.Mode, e.Shards)] = e
		}
	}
	for _, e := range rep.Entries {
		if !e.Retry || e.Txn {
			// Txn entries carry Retry (transactions ride the exactly-once
			// client) but measure txns/s, not ops/s — not comparable here.
			continue
		}
		b, ok := off[fmt.Sprintf("%s/%d", e.Mode, e.Shards)]
		if !ok {
			continue
		}
		fmt.Printf("retry overhead: %s x%d exactly-once client ran at %.0f%% of the retry-off pass\n",
			e.Mode, e.Shards, 100*e.Throughput/b.Throughput)
		if e.Throughput < b.Throughput*0.5 {
			return fmt.Errorf("%s x%d: retry client %.0f ops/s is under half the %.0f retry-off pass",
				e.Mode, e.Shards, e.Throughput, b.Throughput)
		}
	}
	return nil
}
