// Command gpmbench regenerates the paper's evaluation tables and figures
// (§6) as tab-separated reports, mirroring the artifact's `make figure_9`
// style interface (Appendix A):
//
//	gpmbench -experiment all            # everything, reports/ directory
//	gpmbench -experiment figure9        # one experiment to stdout + file
//	gpmbench -experiment table5 -quick  # smaller inputs, faster
//
// Experiments: figure1a figure1b figure3 figure9 figure10 figure11a
// figure11b figure12 table4 table5 dnnfreq optane breakdown all.
//
// Observability (see README "Observability"): -trace out.json writes a
// Chrome trace-event file of every simulated run (load it in Perfetto or
// chrome://tracing), -metrics out.tsv dumps the cross-subsystem metrics
// registry, and -timebreakdown out.tsv writes the per-run span time
// breakdown (the Fig 12-style table). All timestamps are simulated time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/gpm-sim/gpm/internal/experiments"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// experimentNames are the valid -experiment values, kept alongside the
// runner map in main (newExperimentRunners) — validation and dispatch must
// agree, so both derive from the same table.
func experimentRunners(cfg workloads.Config) map[string]func() (*experiments.Table, error) {
	return map[string]func() (*experiments.Table, error){
		"figure1a":  func() (*experiments.Table, error) { return experiments.Figure1a(cfg) },
		"figure1b":  func() (*experiments.Table, error) { return experiments.Figure1b(cfg) },
		"figure3":   func() (*experiments.Table, error) { return experiments.Figure3(8 << 20) },
		"figure9":   func() (*experiments.Table, error) { return experiments.Figure9(cfg) },
		"figure10":  func() (*experiments.Table, error) { return experiments.Figure10(cfg) },
		"figure11a": func() (*experiments.Table, error) { return experiments.Figure11a(cfg) },
		"figure11b": func() (*experiments.Table, error) { return experiments.Figure11b(32768) },
		"figure12":  func() (*experiments.Table, error) { return experiments.Figure12(cfg) },
		"table4":    func() (*experiments.Table, error) { return experiments.Table4(cfg) },
		"table5":    func() (*experiments.Table, error) { return experiments.Table5(cfg) },
		"dnnfreq":   func() (*experiments.Table, error) { return experiments.DNNFrequency(cfg) },
		"optane":    func() (*experiments.Table, error) { return experiments.OptanePattern(8 << 20) },
		"breakdown": func() (*experiments.Table, error) { return experiments.Breakdown(cfg) },
		"cpudb":     func() (*experiments.Table, error) { return experiments.CPUDatabase(cfg) },
		"ckptfreq":  func() (*experiments.Table, error) { return experiments.CheckpointFrequency(cfg) },
	}
}

// validateFlags rejects flag values that previously fell back to defaults
// silently (or crashed deep inside a run). experiment must name a known
// experiment or "all"; workers must be positive (1 = serial reference).
func validateFlags(experiment string, workers int, known []string) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d (1 = serial reference; default = GOMAXPROCS)", workers)
	}
	if workers > workloads.MaxWorkers {
		return fmt.Errorf("-workers must be <= %d, got %d (results are identical for every value; more workers than blocks buys nothing)", workloads.MaxWorkers, workers)
	}
	if experiment == "all" {
		return nil
	}
	for _, n := range known {
		if n == experiment {
			return nil
		}
	}
	sorted := append([]string(nil), known...)
	sort.Strings(sorted)
	return fmt.Errorf("unknown experiment %q (valid: %s, all)", experiment, strings.Join(sorted, " "))
}

func main() {
	var (
		name      = flag.String("experiment", "all", "experiment to run (figure1a..figure12, table4, table5, dnnfreq, optane, all)")
		out       = flag.String("out", "reports", "output directory for TSV reports")
		quick     = flag.Bool("quick", false, "use the smaller test-scale configuration")
		seed      = flag.Uint64("seed", 42, "workload generator seed")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of all runs to this file")
		metricsTo = flag.String("metrics", "", "write the telemetry metrics registry as TSV to this file")
		brkTo     = flag.String("timebreakdown", "", "write the per-run span time breakdown as TSV to this file")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "GPU block goroutines per kernel (1 = serial reference; reports are bit-identical for every value)")
	)
	flag.Parse()

	cfg := workloads.DefaultConfig()
	if *quick {
		cfg = workloads.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	var tel *telemetry.Telemetry
	if *traceOut != "" || *metricsTo != "" || *brkTo != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
	}

	runners := experimentRunners(cfg)
	known := make([]string, 0, len(runners))
	for n := range runners {
		known = append(known, n)
	}
	if err := validateFlags(*name, *workers, known); err != nil {
		usage(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	var names []string
	if *name == "all" {
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
	} else {
		names = []string{*name}
	}

	for _, n := range names {
		start := time.Now()
		tab, err := runners[n]()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", n, err))
		}
		path := filepath.Join(*out, "out_"+n+".txt")
		if err := os.WriteFile(path, []byte(tab.TSV()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("== %s (%.1fs) -> %s\n%s\n", n, time.Since(start).Seconds(), path, tab.TSV())
	}

	if tel != nil {
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, tel.Trace.ChromeTrace(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trace: %d spans over %s of simulated time -> %s\n",
				tel.Trace.Len(), tel.Trace.SimTotal().Format(1), *traceOut)
		}
		if *metricsTo != "" {
			if err := os.WriteFile(*metricsTo, []byte(tel.Metrics.TSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics -> %s\n", *metricsTo)
		}
		if *brkTo != "" {
			if err := os.WriteFile(*brkTo, []byte(tel.Trace.BreakdownTSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("time breakdown -> %s\n", *brkTo)
		}
	}
}

// usage reports a flag-validation error with the full flag help and exits 2
// (distinct from exit 1, a run that executed and failed).
func usage(err error) {
	fmt.Fprintln(os.Stderr, "gpmbench:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpmbench:", err)
	os.Exit(1)
}
