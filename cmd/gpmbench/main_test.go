package main

import (
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

// Flag validation must reject values that previously fell through to
// defaults silently: non-positive -workers and unknown -experiment names.
func TestValidateFlags(t *testing.T) {
	known := make([]string, 0, 16)
	for n := range experimentRunners(workloads.QuickConfig()) {
		known = append(known, n)
	}
	cases := []struct {
		name       string
		experiment string
		workers    int
		wantErr    string // "" = valid
	}{
		{"all experiments", "all", 1, ""},
		{"known experiment", "figure9", 4, ""},
		{"another known experiment", "table5", 2, ""},
		{"workers zero", "all", 0, "-workers"},
		{"workers negative", "figure9", -3, "-workers"},
		{"unknown experiment", "figure99", 1, "unknown experiment"},
		{"empty experiment", "", 1, "unknown experiment"},
		{"case sensitive", "Figure9", 1, "unknown experiment"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.experiment, c.workers, known)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%q, %d) = %v, want nil", c.experiment, c.workers, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%q, %d) = nil, want error containing %q", c.experiment, c.workers, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// The unknown-experiment message must list the valid names so the usage is
// actionable.
func TestValidateFlagsListsExperiments(t *testing.T) {
	err := validateFlags("bogus", 1, []string{"figure9", "table5"})
	if err == nil {
		t.Fatal("want error")
	}
	for _, n := range []string{"figure9", "table5", "all"} {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q should list %q", err, n)
		}
	}
}
