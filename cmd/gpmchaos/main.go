// Command gpmchaos drives the serve-level chaos harness: deterministic
// crash campaigns over the whole serving stack — network fault injection,
// exactly-once retries, and shard power failures — with shrinking and
// single-tuple replay.
//
//	gpmchaos -serve                          # full sweep: every mode x net
//	                                         # schedule x PM fault model x
//	                                         # crash point x apply index
//	gpmchaos -serve -json                    # machine-readable report
//	gpmchaos -serve -schedule chaos          # one network schedule only
//	gpmchaos -serve -txn                     # + snapshot-isolation txn
//	                                         # clients and SI invariants
//	gpmchaos -serve -break-dedup             # negative control: MUST fail
//	gpmchaos -serve -txn -break-si           # negative control: lost
//	                                         # updates MUST be caught
//	gpmchaos -serve -mode GPM -schedule clean -model clean \
//	    -point before-reply -apply-index 2 -ops 32 -seed 9   # replay one
//	                                         # shrunk failure tuple
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/gpm-sim/gpm/internal/crash"
	"github.com/gpm-sim/gpm/internal/faultnet"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/serve"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func main() {
	var (
		serveStack = flag.Bool("serve", false, "chaos the serving stack (required; the only chaos surface today)")
		seed       = flag.Uint64("seed", 7, "campaign seed; equal seeds replay identically")
		ops        = flag.Int64("ops", 0, "client ops per run (0 = campaign default)")
		conns      = flag.Int("conns", 0, "client connections per run (0 = campaign default)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent runs (1 = serial reference; report identical for every value)")
		depth      = flag.Int("recrash-depth", 0, "nested power failures injected during each recovery")
		shrink     = flag.Bool("shrink", true, "shrink the first failure to a minimal replayable tuple")
		asJSON     = flag.Bool("json", false, "emit the campaign report as JSON")
		breakDedup = flag.Bool("break-dedup", false, "negative control: disable PM dedup persistence (the campaign MUST catch it)")
		txn        = flag.Bool("txn", false, "also drive snapshot-isolation transaction clients each run and judge the SI invariants")
		txns       = flag.Int64("txns", 0, "transactions per run (0 = campaign default; requires -txn)")
		breakSI    = flag.Bool("break-si", false, "negative control: disable commit conflict validation (the campaign MUST catch lost updates; requires -txn)")

		// Axis filters; also the replay coordinates when -point is given.
		modeSpec  = flag.String("mode", "", "persistence mode(s), comma-separated (empty = campaign default)")
		schedSpec = flag.String("schedule", "", "network fault schedule(s), comma-separated (empty = all; valid: "+strings.Join(faultnet.ScheduleNames(), ", ")+")")
		modelSpec = flag.String("model", "", "PM fault model(s), comma-separated (empty = all)")
		pointSpec = flag.String("point", "", "crash point; with -apply-index this replays ONE tuple instead of sweeping")
		applyIdx  = flag.Int64("apply-index", 0, "1-based mutation-apply the crash fires on (replay mode; 0 = sweep)")
	)
	flag.Parse()

	if !*serveStack {
		fmt.Fprintln(os.Stderr, "gpmchaos: -serve is required (the serving stack is the only chaos surface)")
		flag.Usage()
		os.Exit(2)
	}
	if !*txn && (*breakSI || *txns != 0) {
		fmt.Fprintln(os.Stderr, "gpmchaos: -break-si/-txns require -txn")
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 1 || *workers > workloads.MaxWorkers {
		fmt.Fprintf(os.Stderr, "gpmchaos: -workers must be in [1, %d], got %d (1 = serial reference; default = GOMAXPROCS)\n", workloads.MaxWorkers, *workers)
		flag.Usage()
		os.Exit(2)
	}

	c := &crash.ServeCampaign{
		Seed:         *seed,
		Ops:          *ops,
		Conns:        *conns,
		Workers:      *workers,
		RecrashDepth: *depth,
		BreakDedup:   *breakDedup,
		Txn:          *txn,
		Txns:         *txns,
		BreakSI:      *breakSI,
	}
	var err error
	if c.Modes, err = parseModes(*modeSpec); err != nil {
		fail(err)
	}
	if c.Schedules, err = parseSchedules(*schedSpec); err != nil {
		fail(err)
	}
	if c.Models, err = parseModels(*modelSpec); err != nil {
		fail(err)
	}

	if *pointSpec != "" || *applyIdx > 0 {
		os.Exit(replayOne(c, *modeSpec, *schedSpec, *modelSpec, *pointSpec, *applyIdx, *ops, *breakDedup))
	}
	os.Exit(sweep(c, *shrink, *asJSON))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gpmchaos:", err)
	os.Exit(2)
}

// parseModes resolves a comma-separated mode list; empty means default.
func parseModes(spec string) ([]workloads.Mode, error) {
	if spec == "" {
		return nil, nil
	}
	var out []workloads.Mode
	for _, name := range strings.Split(spec, ",") {
		m, err := serve.ModeByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// parseSchedules resolves a comma-separated schedule list; empty means all.
func parseSchedules(spec string) ([]faultnet.Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	var out []faultnet.Schedule
	for _, name := range strings.Split(spec, ",") {
		s, err := faultnet.ScheduleByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// parseModels resolves a comma-separated fault-model list; empty means all.
func parseModels(spec string) ([]pmem.FaultModel, error) {
	if spec == "" {
		return nil, nil
	}
	var out []pmem.FaultModel
	for _, name := range strings.Split(spec, ",") {
		m, err := pmem.ModelByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// sweep runs the campaign and prints either the human summary or the JSON
// report. Exit 0 = every invariant held; 1 = failures (with the shrunk
// replay command when shrinking found one); 2 = the harness itself broke.
func sweep(c *crash.ServeCampaign, shrink, asJSON bool) int {
	rep, err := c.Run(shrink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmchaos:", err)
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "gpmchaos:", err)
			return 2
		}
	} else {
		fired, notReached := 0, 0
		for _, r := range rep.Runs {
			switch r.Verdict {
			case crash.ServeVerdictOK:
				fired++
			case crash.ServeVerdictNotReached:
				notReached++
			case crash.ServeVerdictFail:
				fmt.Printf("FAIL %s/%s/%s/%s@%d seed=%d: %s\n",
					r.Mode, r.Schedule, r.Model, r.Point, r.ApplyIndex, r.FaultSeed, r.Err)
			}
		}
		fmt.Printf("\nserve campaign: %d runs, %d crash plans fired, %d not reached, %d failures (identity %s)\n",
			len(rep.Runs), fired, notReached, rep.Failures, rep.Identity)
		if rep.Shrunk != nil {
			fmt.Printf("shrunk: %s\n  replay: %s\n", rep.Shrunk.Err, rep.Shrunk.Replay)
		}
	}
	if rep.Failures > 0 {
		return 1
	}
	return 0
}

// replayOne re-executes a single shrunk tuple, the coordinates pasted from
// a report's Replay line.
func replayOne(c *crash.ServeCampaign, mode, sched, model, point string, idx, ops int64, breakDedup bool) int {
	for name, v := range map[string]string{"-mode": mode, "-schedule": sched, "-model": model, "-point": point} {
		if v == "" {
			fmt.Fprintf(os.Stderr, "gpmchaos: replay needs %s (plus -apply-index)\n", name)
			return 2
		}
		if strings.Contains(v, ",") {
			fmt.Fprintf(os.Stderr, "gpmchaos: replay takes exactly one %s, got %q\n", name, v)
			return 2
		}
	}
	if idx < 1 {
		fmt.Fprintln(os.Stderr, "gpmchaos: replay needs -apply-index >= 1")
		return 2
	}
	if ops == 0 {
		ops = 32
	}
	rec, err := c.ReplayServe(&crash.ServeShrunk{
		Mode: mode, Schedule: sched, Model: model, Point: point,
		ApplyIndex: idx, Ops: ops, Seed: c.Seed, BreakDedup: breakDedup,
		Txn: c.Txn, BreakSI: c.BreakSI,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmchaos:", err)
		return 2
	}
	switch rec.Verdict {
	case crash.ServeVerdictFail:
		fmt.Printf("FAIL %s/%s/%s/%s@%d seed=%d: %s\n",
			rec.Mode, rec.Schedule, rec.Model, rec.Point, rec.ApplyIndex, rec.FaultSeed, rec.Err)
		return 1
	case crash.ServeVerdictNotReached:
		fmt.Printf("warn %s/%s/%s/%s@%d: crash plan never fired (invariants held)\n",
			rec.Mode, rec.Schedule, rec.Model, rec.Point, rec.ApplyIndex)
		return 0
	default:
		fmt.Printf("ok   %s/%s/%s/%s@%d seed=%d: invariants held through crash and recovery\n",
			rec.Mode, rec.Schedule, rec.Model, rec.Point, rec.ApplyIndex, rec.FaultSeed)
		return 0
	}
}
