package main

import (
	"strings"
	"testing"
	"time"
)

func okOptions() cliOptions {
	return cliOptions{
		addr: "127.0.0.1:7070", dist: "uniform", ops: 100, conns: 4, window: 8,
		getFrac: 0.5, delFrac: 0.05, keySpace: 512, timeout: time.Second,
	}
}

func TestValidateCLI(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliOptions)
		wantErr string // empty = valid
	}{
		{"baseline", func(o *cliOptions) {}, ""},
		{"empty addr", func(o *cliOptions) { o.addr = "" }, "-addr"},
		{"zero ops", func(o *cliOptions) { o.ops = 0 }, "-ops"},
		{"zero conns", func(o *cliOptions) { o.conns = 0 }, "-conns"},
		{"zero window", func(o *cliOptions) { o.window = 0 }, "-window"},
		{"fractions over 1", func(o *cliOptions) { o.getFrac, o.delFrac = 0.9, 0.2 }, "fractions"},
		{"negative del", func(o *cliOptions) { o.delFrac = -0.1 }, "fractions"},
		{"zero keyspace", func(o *cliOptions) { o.keySpace = 0 }, "-keyspace"},
		{"zero timeout", func(o *cliOptions) { o.timeout = 0 }, "-timeout"},
		{"zipf defaults", func(o *cliOptions) { o.dist = "zipf" }, ""},
		{"zipf theta", func(o *cliOptions) { o.dist, o.theta = "zipf", 0.8 }, ""},
		{"unknown dist", func(o *cliOptions) { o.dist = "pareto" }, "-dist"},
		{"theta without zipf", func(o *cliOptions) { o.theta = 0.9 }, "-theta"},
		{"theta out of range", func(o *cliOptions) { o.dist, o.theta = "zipf", 1.0 }, "-theta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := okOptions()
			tc.mutate(&o)
			err := validateCLI(o)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateCLI: %v, want ok", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateCLI = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
