// Command gpmload is the closed-loop load generator for gpmserve: -conns
// connections each keep -window requests pipelined, sending a seeded
// deterministic GET/SET/DEL mix, and report client-observed throughput and
// latency percentiles.
//
//	gpmload -addr 127.0.0.1:7070 -ops 100000 -conns 8
//	gpmload -addr 127.0.0.1:7070 -ops 10000 -get 0.9 -json
//	gpmload -addr 127.0.0.1:7070 -dist zipf -theta 0.99 -json
//	gpmload -addr 127.0.0.1:7070 -ops 1000000 -progress 1s   # live status
//	gpmload -addr 127.0.0.1:7070 -retry                      # exactly-once client
//	gpmload -addr 127.0.0.1:7070 -txn -txn-size 4            # RMW transactions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/serve"
)

// cliOptions mirrors the flag set for upfront validation (exit 2 + usage on
// any bad value, before a single connection is dialed).
type cliOptions struct {
	addr, dist       string
	ops              int64
	conns, window    int
	getFrac, delFrac float64
	theta            float64
	keySpace         uint64
	timeout          time.Duration
	progress         time.Duration
	retry            bool
	maxRetries       int
	retryBackoff     time.Duration
	txn              bool
	txnSize          int
}

func validateCLI(o cliOptions) error {
	if o.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if o.ops < 1 {
		return fmt.Errorf("-ops must be >= 1, got %d", o.ops)
	}
	if o.conns < 1 {
		return fmt.Errorf("-conns must be >= 1, got %d", o.conns)
	}
	if o.window < 1 {
		return fmt.Errorf("-window must be >= 1, got %d", o.window)
	}
	if o.getFrac < 0 || o.delFrac < 0 || o.getFrac+o.delFrac > 1 {
		return fmt.Errorf("-get/-del fractions must be >= 0 and sum to <= 1, got %g + %g", o.getFrac, o.delFrac)
	}
	if o.keySpace < 1 {
		return fmt.Errorf("-keyspace must be >= 1, got %d", o.keySpace)
	}
	if o.timeout <= 0 {
		return fmt.Errorf("-timeout must be > 0, got %s", o.timeout)
	}
	if o.progress < 0 {
		return fmt.Errorf("-progress must be >= 0 (0 = off), got %s", o.progress)
	}
	if o.maxRetries < 0 {
		return fmt.Errorf("-max-retries must be >= 0 (0 = default), got %d", o.maxRetries)
	}
	if o.retryBackoff < 0 {
		return fmt.Errorf("-retry-backoff must be >= 0 (0 = default), got %s", o.retryBackoff)
	}
	if !o.retry && (o.maxRetries != 0 || o.retryBackoff != 0) {
		return fmt.Errorf("-max-retries/-retry-backoff require -retry")
	}
	if o.txnSize < 0 || (!o.txn && o.txnSize != 0) {
		return fmt.Errorf("-txn-size requires -txn and must be >= 1, got %d", o.txnSize)
	}
	if o.txn && (o.getFrac != 0.5 || o.delFrac != 0.05) {
		return fmt.Errorf("-get/-del do not apply with -txn (transactions are RMW increments)")
	}
	switch o.dist {
	case serve.DistUniform:
		if o.theta != 0 {
			return fmt.Errorf("-theta only applies with -dist zipf")
		}
	case serve.DistZipf:
		if o.theta < 0 || o.theta >= 1 {
			return fmt.Errorf("-theta must be in (0, 1) (0 = 0.99 default), got %g", o.theta)
		}
	default:
		return fmt.Errorf("-dist must be %q or %q, got %q", serve.DistUniform, serve.DistZipf, o.dist)
	}
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "gpmserve address")
		ops      = flag.Int64("ops", 10000, "total operations across connections")
		conns    = flag.Int("conns", 8, "concurrent client connections")
		window   = flag.Int("window", 16, "pipelined outstanding requests per connection")
		getFrac  = flag.Float64("get", 0.5, "GET fraction of the op mix")
		delFrac  = flag.Float64("del", 0.05, "DEL fraction of the op mix")
		keySpace = flag.Uint64("keyspace", 4096, "keys drawn from [1, keyspace]")
		dist     = flag.String("dist", serve.DistUniform, "key distribution: uniform or zipf")
		theta    = flag.Float64("theta", 0, "zipf skew in (0, 1); 0 = 0.99 (YCSB default); requires -dist zipf")
		seed     = flag.Uint64("seed", 1, "op-mix RNG seed base (per-connection streams derive from it)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-connection dial/IO deadline")
		progress = flag.Duration("progress", 0, "print a status line to stderr this often while running (0 = off)")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
		retry    = flag.Bool("retry", false, "exactly-once client: tag requests with IDs, resend on RETRY, reconnect on transport failure")
		maxRetry = flag.Int("max-retries", 0, "resend attempts per op and per reconnect (0 = 8; requires -retry)")
		backoff  = flag.Duration("retry-backoff", 0, "retry backoff base, doubles per attempt (0 = 2ms; requires -retry)")
		txn      = flag.Bool("txn", false, "drive snapshot-isolation RMW increment transactions instead of plain ops (-ops counts transactions)")
		txnSize  = flag.Int("txn-size", 0, "keys per transaction (0 = 2; requires -txn)")
	)
	flag.Parse()

	o := cliOptions{
		addr: *addr, dist: *dist, ops: *ops, conns: *conns, window: *window,
		getFrac: *getFrac, delFrac: *delFrac, theta: *theta,
		keySpace: *keySpace, timeout: *timeout, progress: *progress,
		retry: *retry, maxRetries: *maxRetry, retryBackoff: *backoff,
		txn: *txn, txnSize: *txnSize,
	}
	if err := validateCLI(o); err != nil {
		fmt.Fprintln(os.Stderr, "gpmload:", err)
		flag.Usage()
		os.Exit(2)
	}
	if o.txn {
		runTxn(o, *seed, *asJSON)
		return
	}

	res, err := serve.RunLoad(serve.LoadConfig{
		Addr:         o.addr,
		Conns:        o.conns,
		Ops:          o.ops,
		Window:       o.window,
		GetFraction:  o.getFrac,
		DelFraction:  o.delFrac,
		KeySpace:     o.keySpace,
		Dist:         o.dist,
		Theta:        o.theta,
		Seed:         *seed,
		Timeout:      o.timeout,
		Progress:     o.progress,
		OnProgress:   printProgress,
		Retry:        o.retry,
		MaxRetries:   o.maxRetries,
		RetryBackoff: o.retryBackoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmload:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "gpmload:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("%d ops in %v: %.0f ops/s, p50 %v p95 %v p99 %v, %d hits %d misses %d errors\n",
			res.Ops, res.Elapsed.Round(time.Millisecond), res.Throughput,
			res.P50, res.P95, res.P99, res.Hits, res.Misses, res.Errors)
		if o.retry {
			fmt.Printf("exactly-once: %d retries, %d reconnects, %d gave up\n",
				res.Retries, res.Reconnects, res.GaveUp)
		}
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

// printProgress renders one -progress status line: cumulative completion,
// plus rate and p99 over just the last interval (a rolling window).
func printProgress(p serve.LoadProgress) {
	fmt.Fprintf(os.Stderr, "gpmload: %8s  %d/%d ops  %s ops/s  %d inflight  p99 %.0fµs\n",
		p.Elapsed.Round(100*time.Millisecond), p.Done, p.Total,
		obs.FormatRate(p.OpsPerSec), p.Inflight, p.P99US)
}

// runTxn drives the transaction generator: -ops closed-loop RMW increment
// transactions of -txn-size keys, reporting the commit/abort/retry ledger.
func runTxn(o cliOptions, seed uint64, asJSON bool) {
	res, err := serve.RunTxnLoad(serve.TxnLoadConfig{
		Addr:         o.addr,
		Conns:        o.conns,
		Txns:         o.ops,
		TxnSize:      o.txnSize,
		KeySpace:     o.keySpace,
		Dist:         o.dist,
		Theta:        o.theta,
		Seed:         seed,
		Timeout:      o.timeout,
		Retry:        o.retry,
		MaxRetries:   o.maxRetries,
		RetryBackoff: o.retryBackoff,
		Progress:     o.progress,
		OnProgress:   printTxnProgress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpmload:", err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "gpmload:", err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("%d txns in %v: %.0f txns/s, p50 %v p95 %v p99 %v\n",
			res.Txns, res.Elapsed.Round(time.Millisecond), res.Throughput,
			res.P50, res.P95, res.P99)
		fmt.Printf("conflicts: %d aborts, %d retried, %d dropped; %d unresolved, %d snapshots lost, %d read anomalies\n",
			res.Aborts, res.ConflictRetries, res.AbortedForGood, res.GaveUp, res.SnapshotsLost, res.ReadAnomalies)
		if o.retry {
			fmt.Printf("exactly-once: %d retries, %d reconnects\n", res.Retries, res.Reconnects)
		}
	}
	if res.Errors > 0 || res.ReadAnomalies > 0 {
		os.Exit(1)
	}
}

// printTxnProgress renders one -progress line for a transaction run.
func printTxnProgress(p serve.LoadProgress) {
	fmt.Fprintf(os.Stderr, "gpmload: %8s  %d/%d txns  %s txns/s  p99 %.0fµs  %d retries\n",
		p.Elapsed.Round(100*time.Millisecond), p.Done, p.Total,
		obs.FormatRate(p.OpsPerSec), p.P99US, p.Retries)
}
