package workloads

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/pmem"
)

// CrashPlan is one adversarial crash-recovery schedule: where the power
// fails, what the failure does to unpersisted writes, and whether the power
// fails again while recovery is running. A zero plan (beyond AbortAfterOps)
// reproduces the original §6.2 methodology: one clean crash, one recovery.
type CrashPlan struct {
	// AbortAfterOps is the GPU device-operation index at which the crash
	// fires. 0 crashes at the first operation; a value past the workload's
	// total op count means the run completes and the crash hits whatever
	// is left unpersisted at the end.
	AbortAfterOps int64

	// Fault selects the persistence fault model applied at every crash in
	// this plan (primary and nested). nil means pmem.Clean: all unpersisted
	// lines roll back whole.
	Fault pmem.FaultModel

	// FaultSeed makes the fault model deterministic; nested crashes derive
	// their streams from it so the whole run replays from one seed.
	FaultSeed uint64

	// RecrashDepth injects that many additional crashes while Recover is
	// running (the power failing again mid-recovery). Each nested crash
	// fires after the recovery has executed its re-crash budget of GPU
	// operations; after RecrashDepth crashes, the final recovery runs to
	// completion.
	RecrashDepth int

	// RecrashEvery is the re-crash budget: GPU operations a recovery may
	// execute before the next nested crash fires. <=0 selects a small
	// default. The budget grows with each nested crash so recovery always
	// makes progress (no livelock at a fixed op index).
	RecrashEvery int64
}

// FaultName is the plan's fault model name ("clean" when Fault is nil).
func (p CrashPlan) FaultName() string {
	if p.Fault == nil {
		return "clean"
	}
	return p.Fault.Name()
}

// defaultRecrashEvery is small enough that even the near-free recovery
// paths (a single undo kernel, a checkpoint restore) get interrupted.
const defaultRecrashEvery = 48

// RunWithPlan executes a Crasher under an adversarial crash plan: run until
// the planned crash point, fail the power under the plan's fault model,
// then drive recovery — re-failing the power mid-recovery RecrashDepth
// times — and finally verify the recovered state (§6.2 hardened with the
// torn-line/torn-word/reordering semantics of real ADR hardware).
//
// Nested crashes reuse the GPU's abort-check hook: recovery runs with a
// budget of GPU operations, and the moment the budget is exceeded the
// space's persist paths shut off (power has failed), so not even host-side
// recovery code that keeps executing can make state durable after the
// failure instant.
//
// Deprecated: use Run/RunWorkload with WithCrashPlan.
func RunWithPlan(w Crasher, mode Mode, cfg Config, plan CrashPlan) (*Report, error) {
	return RunWorkload(w, WithMode(mode), WithConfig(cfg), WithCrashPlan(plan))
}

func runWithPlan(w Crasher, mode Mode, cfg Config, plan CrashPlan) (*Report, error) {
	if !w.Supports(mode) {
		return nil, fmt.Errorf("workloads: %s does not support %s", w.Name(), mode)
	}
	env := NewEnv(mode, cfg)
	if cfg.Telemetry != nil {
		env.Ctx.AttachTelemetry(cfg.Telemetry, w.Name()+"/"+mode.String()+"/crash")
	}
	if err := w.Setup(env); err != nil {
		return nil, fmt.Errorf("%s setup: %w", w.Name(), err)
	}
	env.BeginOps()
	if err := w.RunUntilCrash(env, plan.AbortAfterOps); err != nil {
		return nil, fmt.Errorf("%s crash run: %w", w.Name(), err)
	}
	env.Ctx.CrashWith(plan.Fault, plan.FaultSeed)
	env.countCrash(cfg, false)

	every := plan.RecrashEvery
	if every <= 0 {
		every = defaultRecrashEvery
	}
	dev := env.Ctx.Dev
	recovered := false
	for depth := 0; depth < plan.RecrashDepth && !recovered; depth++ {
		// Growing budget: depth d may execute (d+1)×every ops, so each
		// retry gets strictly further than the last.
		budget := every * int64(depth+1)
		dev.SetAbortCheck(func(op int64) bool { return op >= budget })
		dev.SetPowerFailOnAbort(true)
		err := w.Recover(env)
		aborted := dev.Aborted()
		dev.SetPowerFailOnAbort(false)
		dev.SetAbortCheck(nil)
		env.countRecovery(cfg)
		if !aborted {
			// Recovery finished inside the budget; its error (if any) is
			// real, not an artifact of the injected crash.
			if err != nil {
				return nil, fmt.Errorf("%s recover (re-crash depth %d): %w", w.Name(), depth, err)
			}
			recovered = true
			break
		}
		// The power failed mid-recovery: whatever Recover did (or returned)
		// after the abort instant is void. Crash again and retry.
		env.Ctx.CrashWith(plan.Fault, nestedSeed(plan.FaultSeed, depth))
		env.countCrash(cfg, true)
	}
	if !recovered {
		if err := w.Recover(env); err != nil {
			return nil, fmt.Errorf("%s recover: %w", w.Name(), err)
		}
		env.countRecovery(cfg)
	}
	rep := report(w, env)
	if err := w.Verify(env); err != nil {
		return nil, fmt.Errorf("%s verify after recovery: %w", w.Name(), err)
	}
	return rep, nil
}

// nestedSeed derives the fault stream for the depth-th nested crash
// (SplitMix-style step so streams don't collide across depths).
func nestedSeed(seed uint64, depth int) uint64 {
	return seed + (uint64(depth)+1)*0x9e3779b97f4a7c15
}

// countCrash bumps the campaign-facing crash counters when telemetry is
// attached (the per-fault line/word counters live on the PM device itself).
func (e *Env) countCrash(cfg Config, nested bool) {
	if cfg.Telemetry == nil {
		return
	}
	r := cfg.Telemetry.Registry()
	r.Counter("crash.injected").Inc()
	if nested {
		r.Counter("crash.recrashes").Inc()
	}
}

// countRecovery bumps the recovery-attempt counter.
func (e *Env) countRecovery(cfg Config) {
	if cfg.Telemetry == nil {
		return
	}
	cfg.Telemetry.Registry().Counter("crash.recovery_attempts").Inc()
}
