package workloads_test

import (
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/scan"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// TestCrashPointEdges drives RunWithCrash at the degenerate schedule points:
// the very first device operation, one op in, and a point far past the total
// op count (the run completes; the crash hits whatever is left unpersisted).
func TestCrashPointEdges(t *testing.T) {
	cases := []struct {
		name string
		mk   func() workloads.Crasher
	}{
		{"gpKVS", func() workloads.Crasher { return kvstore.New() }},
		{"PS", func() workloads.Crasher { return scan.New() }},
	}
	points := []int64{0, 1, 1 << 40}
	for _, tc := range cases {
		for _, pt := range points {
			tc, pt := tc, pt
			t.Run(tc.name, func(t *testing.T) {
				t.Parallel()
				rep, err := workloads.RunWithCrash(tc.mk(), workloads.GPM, workloads.QuickConfig(), pt)
				if err != nil {
					t.Fatalf("crash@%d: %v", pt, err)
				}
				if rep.Restore < 0 {
					t.Errorf("crash@%d: negative restore time %v", pt, rep.Restore)
				}
			})
		}
	}
}

func TestRunWithPlanRejectsUnsupportedMode(t *testing.T) {
	_, err := workloads.RunWithCrash(kvstore.New(), workloads.CPUOnly, workloads.QuickConfig(), 10)
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("want unsupported-mode error, got %v", err)
	}
}

// TestCrashTelemetryCounters checks that an adversarial run surfaces the
// fault-injection counters in the metrics registry TSV (the same registry
// gpmbench/gpmrecover dump via -metrics).
func TestCrashTelemetryCounters(t *testing.T) {
	cfg := workloads.QuickConfig()
	tel := telemetry.New()
	cfg.Telemetry = tel
	_, err := workloads.RunWithPlan(kvstore.New(), workloads.GPM, cfg, workloads.CrashPlan{
		AbortAfterOps: 200,
		Fault:         pmem.TornLines{},
		FaultSeed:     42,
		RecrashDepth:  2,
	})
	if err != nil {
		t.Fatalf("plan run: %v", err)
	}
	tsv := tel.Metrics.TSV()
	for _, name := range []string{
		"crash.injected",
		"crash.recovery_attempts",
		"pmem.crashes",
		"pmem.crash_lines_rolled_back",
	} {
		if !strings.Contains(tsv, name) {
			t.Errorf("metrics TSV missing %s:\n%s", name, tsv)
		}
	}
}
