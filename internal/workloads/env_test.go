package workloads

import (
	"fmt"
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		GPM: "GPM", CAPfs: "CAP-fs", CAPmm: "CAP-mm", GPUfs: "GPUfs",
		GPMNDP: "GPM-NDP", GPMeADR: "GPM-eADR", CAPeADR: "CAP-eADR", CPUOnly: "CPU",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Mode(99).String() != "unknown" {
		t.Error("unknown mode string")
	}
}

func TestModePredicates(t *testing.T) {
	if !GPM.UsesGPM() || !GPMeADR.UsesGPM() || GPMNDP.UsesGPM() {
		t.Error("UsesGPM wrong")
	}
	for _, m := range []Mode{CAPfs, CAPmm, CAPeADR, GPMNDP} {
		if !m.UsesCAP() {
			t.Errorf("%v should use CAP", m)
		}
	}
	if GPM.UsesCAP() || GPUfs.UsesCAP() {
		t.Error("UsesCAP wrong")
	}
	if !GPMeADR.EADR() || !CAPeADR.EADR() || GPM.EADR() {
		t.Error("EADR wrong")
	}
}

func TestEnvEADRWiring(t *testing.T) {
	if !NewEnv(GPMeADR, QuickConfig()).Ctx.Space.EADR() {
		t.Error("eADR mode did not enable eADR on the space")
	}
	if NewEnv(GPM, QuickConfig()).Ctx.Space.EADR() {
		t.Error("GPM mode should not enable eADR")
	}
}

func TestPersistKernelBeginOnlyForGPM(t *testing.T) {
	e := NewEnv(GPM, QuickConfig())
	e.PersistKernelBegin()
	if !e.Ctx.Space.DDIOOff() {
		t.Error("GPM should disable DDIO")
	}
	e.PersistKernelEnd()
	if e.Ctx.Space.DDIOOff() {
		t.Error("DDIO not restored")
	}
	e2 := NewEnv(GPMeADR, QuickConfig())
	e2.PersistKernelBegin()
	if e2.Ctx.Space.DDIOOff() {
		t.Error("eADR mode must keep DDIO on")
	}
}

func TestEnvMetrics(t *testing.T) {
	e := NewEnv(GPM, QuickConfig())
	e.Ctx.Timeline.Add("setup", 10*sim.Microsecond)
	e.BeginOps()
	e.Ctx.Timeline.Add("kernel", 30*sim.Microsecond)
	e.CountOps(100)
	e.AddRestore(3 * sim.Microsecond)
	e.AddCheckpoint(5 * sim.Microsecond)
	if e.OpTime() != 30*sim.Microsecond {
		t.Errorf("OpTime = %v (setup must be excluded)", e.OpTime())
	}
	w := &fakeWorkload{}
	r, err := RunOne(w, GPM, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "fake" || r.Class != "native" || r.Mode != GPM {
		t.Errorf("report identity: %+v", r)
	}
	if r.Ops != 42 || r.Throughput() <= 0 {
		t.Errorf("ops = %d", r.Ops)
	}
}

func TestRestoreFraction(t *testing.T) {
	r := &Report{OpTime: 110, Restore: 10, SetupTime: 0}
	if got := r.RestoreFraction(); got != 0.1 {
		t.Errorf("RestoreFraction = %v", got)
	}
	zero := &Report{}
	if zero.RestoreFraction() != 0 || zero.Throughput() != 0 {
		t.Error("zero report should not divide by zero")
	}
}

type fakeWorkload struct{ setup, run, verify bool }

func (f *fakeWorkload) Name() string            { return "fake" }
func (f *fakeWorkload) Class() string           { return "native" }
func (f *fakeWorkload) Supports(mode Mode) bool { return mode == GPM }
func (f *fakeWorkload) Setup(env *Env) error    { f.setup = true; return nil }
func (f *fakeWorkload) Run(env *Env) error {
	f.run = true
	env.Ctx.Timeline.Add("work", sim.Microsecond)
	env.CountOps(42)
	return nil
}
func (f *fakeWorkload) Verify(env *Env) error { f.verify = true; return nil }

func TestRunOneLifecycle(t *testing.T) {
	w := &fakeWorkload{}
	if _, err := RunOne(w, GPM, QuickConfig()); err != nil {
		t.Fatal(err)
	}
	if !w.setup || !w.run || !w.verify {
		t.Error("lifecycle incomplete")
	}
	if _, err := RunOne(&fakeWorkload{}, CAPfs, QuickConfig()); err == nil {
		t.Error("unsupported mode should error")
	}
}

type failingWorkload struct {
	fakeWorkload
	failAt string
}

func (f *failingWorkload) Setup(env *Env) error {
	if f.failAt == "setup" {
		return fmt.Errorf("boom")
	}
	return nil
}
func (f *failingWorkload) Run(env *Env) error {
	if f.failAt == "run" {
		return fmt.Errorf("boom")
	}
	return nil
}
func (f *failingWorkload) Verify(env *Env) error {
	if f.failAt == "verify" {
		return fmt.Errorf("boom")
	}
	return nil
}

func TestRunOnePropagatesErrors(t *testing.T) {
	for _, at := range []string{"setup", "run", "verify"} {
		if _, err := RunOne(&failingWorkload{failAt: at}, GPM, QuickConfig()); err == nil {
			t.Errorf("error in %s not propagated", at)
		}
	}
}

func TestPersistBufferModes(t *testing.T) {
	for _, m := range []Mode{CAPfs, CAPmm, CAPeADR, GPMNDP} {
		env := NewEnv(m, QuickConfig())
		f, err := env.Ctx.FS.Create("/pm/pb", 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		src := env.Ctx.Space.AllocHBM(4096)
		env.Ctx.Space.WriteCPU(src, []byte{1, 2, 3, 4})
		if err := PersistBuffer(env, f, 0, src, 4096); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		env.Ctx.Crash()
		got := make([]byte, 4)
		env.Ctx.Space.Read(f.Mmap(), got)
		if got[0] != 1 || got[3] != 4 {
			t.Errorf("%v: data lost (%v)", m, got)
		}
	}
	// GPM-class modes are no-ops (the kernel persisted already).
	env := NewEnv(GPM, QuickConfig())
	f, _ := env.Ctx.FS.Create("/pm/pb2", 4096, 0)
	if err := PersistBuffer(env, f, 0, env.Ctx.Space.AllocHBM(64), 64); err != nil {
		t.Fatal(err)
	}
}
