package workloads

import (
	"strings"
	"testing"
)

// Worker bounds outside [0, MaxWorkers] used to be accepted silently (a
// negative value fell back to GOMAXPROCS deep inside the device; an absurd
// one allocated that many spawn-window slots). Both must now fail upfront.
func TestValidateWorkers(t *testing.T) {
	for _, n := range []int{0, 1, 8, MaxWorkers} {
		if err := ValidateWorkers(n); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{-1, -100, MaxWorkers + 1, 1 << 30} {
		if err := ValidateWorkers(n); err == nil {
			t.Errorf("ValidateWorkers(%d) = nil, want error", n)
		}
	}
}

// Run must reject an invalid Config.Workers before any simulation work.
func TestRunRejectsInvalidWorkers(t *testing.T) {
	if _, err := RunWorkload(&fakeWorkload{}, WithWorkers(-3)); err == nil ||
		!strings.Contains(err.Error(), "workers") {
		t.Fatalf("RunWorkload with workers=-3: err = %v, want workers validation error", err)
	}
	if _, err := RunWorkload(&fakeWorkload{}, WithWorkers(MaxWorkers+5)); err == nil ||
		!strings.Contains(err.Error(), "workers") {
		t.Fatalf("RunWorkload with workers=%d: err = %v, want workers validation error", MaxWorkers+5, err)
	}
}
