package workloads

import (
	"bytes"
	"testing"
)

func TestGWriteBufferPersistsThroughGPUfs(t *testing.T) {
	env := NewEnv(GPUfs, QuickConfig())
	f, err := env.Ctx.FS.Create("/pm/gwb", 1<<18, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := env.Ctx.Space.AllocHBM(1 << 18)
	want := bytes.Repeat([]byte{0x42}, 1<<18)
	env.Ctx.Space.WriteCPU(src, want)
	if err := GWriteBuffer(env, f, src, 0, 1<<18); err != nil {
		t.Fatal(err)
	}
	env.Ctx.Crash()
	got := make([]byte, 1<<18)
	env.Ctx.Space.Read(f.Mmap(), got)
	if !bytes.Equal(got, want) {
		t.Error("GPUfs-written data not durable after gfsync")
	}
}

func TestGWriteBufferRejectsOversizeFile(t *testing.T) {
	cfg := QuickConfig()
	env := NewEnv(GPUfs, cfg)
	env.Ctx.Params.GPUFSMaxFileSize = 1 << 10
	f, err := env.Ctx.FS.Create("/pm/gwb2", 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := env.Ctx.Space.AllocHBM(1 << 16)
	if err := GWriteBuffer(env, f, src, 0, 1<<16); err == nil {
		t.Error("oversize file accepted by GPUfs")
	}
}

func TestGWriteBufferSerializesOnDaemon(t *testing.T) {
	env := NewEnv(GPUfs, QuickConfig())
	f, _ := env.Ctx.FS.Create("/pm/gwb3", 1<<20, 0)
	src := env.Ctx.Space.AllocHBM(1 << 20)
	before := env.Ctx.Timeline.Total()
	if err := GWriteBuffer(env, f, src, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	elapsed := env.Ctx.Timeline.Total() - before
	// 16 chunk RPCs at ≥18µs each, serialized: the daemon is the
	// bottleneck the paper blames for GPUfs's slowdowns (§6.1).
	if elapsed < 16*env.Ctx.Params.GPUFSCallOverhead {
		t.Errorf("GPUfs write of 1MB took only %v; RPC serialization missing", elapsed)
	}
}

type crashingWorkload struct {
	fakeWorkload
	recovered bool
}

func (c *crashingWorkload) Supports(mode Mode) bool { return mode == GPM }
func (c *crashingWorkload) RunUntilCrash(env *Env, abortAfterOps int64) error {
	env.Ctx.Timeline.Add("work", 100)
	return nil
}
func (c *crashingWorkload) Recover(env *Env) error {
	c.recovered = true
	env.AddRestore(10)
	return nil
}

func TestRunWithCrashLifecycle(t *testing.T) {
	w := &crashingWorkload{}
	r, err := RunWithCrash(w, GPM, QuickConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !w.recovered {
		t.Error("Recover never ran")
	}
	if r.Restore != 10 {
		t.Errorf("restore = %v", r.Restore)
	}
	if _, err := RunWithCrash(&crashingWorkload{}, CAPfs, QuickConfig(), 5); err == nil {
		t.Error("unsupported mode accepted")
	}
}
