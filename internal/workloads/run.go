package workloads

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Option configures one Run invocation. Options compose left to right:
// later options override earlier ones where they overlap (WithConfig
// replaces the whole Config, so place it before field-level options like
// WithTelemetry or WithWorkers).
type Option func(*runOptions)

type runOptions struct {
	mode Mode
	cfg  Config
	plan *CrashPlan
}

// WithMode selects the persistence mode (default GPM).
func WithMode(m Mode) Option {
	return func(o *runOptions) { o.mode = m }
}

// WithConfig replaces the whole workload configuration (default
// DefaultConfig).
func WithConfig(cfg Config) Option {
	return func(o *runOptions) { o.cfg = cfg }
}

// WithTelemetry attaches a telemetry sink: the run gets its own trace
// process lane and its metrics aggregate into the sink's registry.
func WithTelemetry(tel *telemetry.Telemetry) Option {
	return func(o *runOptions) { o.cfg.Telemetry = tel }
}

// MaxWorkers is the largest accepted Config.Workers value. Each worker is
// a spawn-window slot backed by real goroutines; anything past a few
// thousand is certainly a typo'd or miscomputed value (e.g. a byte size
// landing in a worker flag), and silently accepting it used to burn memory
// on goroutine stacks without changing any result.
const MaxWorkers = 4096

// ValidateWorkers checks a worker-bound value: 0 means GOMAXPROCS,
// 1..MaxWorkers are explicit bounds, anything else is an error. Run applies
// it to Config.Workers; CLIs call it directly so flag errors surface as
// exit 2 + usage before any simulation work.
func ValidateWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("workers must be >= 0, got %d (0 = GOMAXPROCS; 1 = serial reference)", n)
	}
	if n > MaxWorkers {
		return fmt.Errorf("workers must be <= %d, got %d (results are identical for every value; more workers than blocks buys nothing)", MaxWorkers, n)
	}
	return nil
}

// WithWorkers bounds how many GPU threadblocks execute on real goroutines
// at once (0 = GOMAXPROCS). Simulated results are identical for every
// value; workers trade wall-clock time only.
func WithWorkers(n int) Option {
	return func(o *runOptions) { o.cfg.Workers = n }
}

// WithCrashPlan turns the run into a crash-recovery study under the given
// adversarial plan (the workload must implement Crasher).
func WithCrashPlan(p CrashPlan) Option {
	return func(o *runOptions) { o.plan = &p }
}

// WithCrashAt is shorthand for a clean single-crash plan at the given
// canonical device-operation index (the original §6.2 methodology).
func WithCrashAt(abortAfterOps int64) Option {
	return WithCrashPlan(CrashPlan{AbortAfterOps: abortAfterOps})
}

// WithFaultModel sets the persistence fault model applied at every crash of
// the run's plan (installing a default single-crash plan if none is set).
// nil means pmem.Clean.
func WithFaultModel(m pmem.FaultModel) Option {
	return func(o *runOptions) {
		if o.plan == nil {
			o.plan = &CrashPlan{}
		}
		o.plan.Fault = m
	}
}

// WithFaultSeed sets the fault model's deterministic seed on the run's plan
// (installing a default plan if none is set).
func WithFaultSeed(seed uint64) Option {
	return func(o *runOptions) {
		if o.plan == nil {
			o.plan = &CrashPlan{}
		}
		o.plan.FaultSeed = seed
	}
}

// ---- Name registry ----

var (
	regMu    sync.Mutex
	registry = map[string]func() Workload{}
)

// Register adds a workload constructor to the name registry under
// mk().Name(), replacing any previous registration. The experiments catalog
// registers the whole GPMbench suite; importing that package (directly or
// via a cmd/ binary) makes every workload reachable through Run by name.
func Register(mk func() Workload) {
	name := mk().Name()
	regMu.Lock()
	registry[name] = mk
	regMu.Unlock()
}

// Names lists the registered workload names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New instantiates a registered workload by name.
func New(name string) (Workload, error) {
	regMu.Lock()
	mk, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (is the experiments catalog imported?)", name)
	}
	return mk(), nil
}

// ---- Unified entry point ----

// Run executes a registered workload by name on a fresh simulated node and
// returns its report. With no options it runs under GPM with the default
// configuration; options select the mode, configuration, telemetry, worker
// bound, and (for Crasher workloads) an adversarial crash plan:
//
//	rep, err := workloads.Run("gpKVS",
//	    workloads.WithMode(workloads.CAPmm),
//	    workloads.WithConfig(cfg))
//
//	rep, err := workloads.Run("gpKVS",
//	    workloads.WithCrashAt(30000),
//	    workloads.WithFaultModel(pmem.TornLines{}))
//
// Run replaces RunOne, RunWithCrash, and RunWithPlan, which remain as thin
// deprecated wrappers.
func Run(name string, opts ...Option) (*Report, error) {
	w, err := New(name)
	if err != nil {
		return nil, err
	}
	return RunWorkload(w, opts...)
}

// RunWorkload is Run for an already-constructed Workload instance (callers
// holding custom-configured workloads, e.g. variants not in the registry).
func RunWorkload(w Workload, opts ...Option) (*Report, error) {
	o := runOptions{mode: GPM, cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	if err := ValidateWorkers(o.cfg.Workers); err != nil {
		return nil, fmt.Errorf("workloads: %w", err)
	}
	if o.plan != nil {
		cr, ok := w.(Crasher)
		if !ok {
			return nil, fmt.Errorf("workloads: %s does not support crash injection", w.Name())
		}
		return runWithPlan(cr, o.mode, o.cfg, *o.plan)
	}
	return runOne(w, o.mode, o.cfg)
}
