package workloads

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/cap"
	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Env is one workload execution environment: a fresh simulated node, the
// selected persistence mode, and metric bookkeeping.
type Env struct {
	Ctx  *gpm.Context
	Cap  *cap.Engine
	Mode Mode
	Cfg  Config
	RNG  *sim.RNG

	opStart   sim.Duration
	pmStart   int64
	statStart sim.AccessSnapshot
	opsDone   int64
	restore   sim.Duration
	ckpt      sim.Duration
	setupTime sim.Duration
}

// NewEnv builds a fresh node for one run.
func NewEnv(mode Mode, cfg Config) *Env {
	params := sim.Default()
	mcfg := memsys.Config{HBMSize: cfg.HBMSize, DRAMSize: cfg.DRAMSize, PMSize: cfg.PMSize}
	if mcfg.HBMSize <= 0 || mcfg.DRAMSize <= 0 || mcfg.PMSize <= 0 {
		mcfg = memsys.DefaultConfig()
	}
	ctx := gpm.NewContext(params, mcfg)
	ctx.SetWorkers(cfg.Workers)
	if mode.EADR() {
		ctx.Space.SetEADR(true)
	}
	return &Env{
		Ctx:  ctx,
		Cap:  cap.New(ctx, cfg.CAPThreads),
		Mode: mode,
		Cfg:  cfg,
		RNG:  sim.NewRNG(cfg.Seed),
	}
}

// BeginOps marks the start of the measured operation region (after setup:
// input generation, one-time loads of read-only data into HBM).
func (e *Env) BeginOps() {
	e.setupTime = e.Ctx.Timeline.Total()
	e.opStart = e.Ctx.Timeline.Total()
	e.pmStart = e.Ctx.Space.PM.BytesWritten()
	e.statStart = e.Ctx.Space.PM.WriteStats.Snapshot()
}

// OpTime is the simulated time spent since BeginOps.
func (e *Env) OpTime() sim.Duration { return e.Ctx.Timeline.Total() - e.opStart }

// PMBytes is the data written to PM since BeginOps (the write-amplification
// numerator/denominator of Table 4).
func (e *Env) PMBytes() int64 { return e.Ctx.Space.PM.BytesWritten() - e.pmStart }

// CountOps adds completed application operations (for throughput).
func (e *Env) CountOps(n int64) { e.opsDone += n }

// AddRestore accounts simulated time spent in recovery (Table 5).
func (e *Env) AddRestore(d sim.Duration) { e.restore += d }

// AddCheckpoint accounts simulated time spent persisting checkpoints (the
// Fig 9 metric for the checkpointing class).
func (e *Env) AddCheckpoint(d sim.Duration) { e.ckpt += d }

// PersistKernelBegin prepares the node for a kernel that persists in-place:
// under GPM this disables DDIO; under GPM-eADR DDIO stays on because the
// LLC is in the persistence domain.
func (e *Env) PersistKernelBegin() {
	if e.Mode == GPM {
		e.Ctx.PersistBegin()
	}
}

// PersistKernelEnd is the matching epilogue.
func (e *Env) PersistKernelEnd() {
	if e.Mode == GPM {
		e.Ctx.PersistEnd()
	}
}

// Report summarizes one run.
type Report struct {
	Workload string
	Class    string
	Mode     Mode

	OpTime    sim.Duration // the measured operation region
	SetupTime sim.Duration // input generation + staging before BeginOps
	TotalTime sim.Duration // including setup
	CkptTime  sim.Duration // time spent persisting checkpoints
	Restore   sim.Duration // recovery time, if a crash was injected
	PMBytes   int64        // bytes written to PM during the op region
	Ops       int64        // application operations completed

	// PMWriteBW is the realized PM write bandwidth over the op region in
	// bytes/second (Fig 12).
	PMWriteBW float64
	// SeqFrac / AlignedFrac describe the PM write access pattern.
	SeqFrac, AlignedFrac float64
}

// Throughput returns operations per second of simulated time.
func (r *Report) Throughput() float64 {
	if r.OpTime <= 0 {
		return 0
	}
	return float64(r.Ops) / r.OpTime.Seconds()
}

// RestoreFraction is restoration latency as a fraction of operation time.
// Following Table 5's definition, operation time includes recurring work
// such as loading data (here: the setup/staging phase) but the restore
// itself is excluded from the denominator.
func (r *Report) RestoreFraction() float64 {
	op := r.OpTime - r.Restore + r.SetupTime
	if op <= 0 {
		return 0
	}
	return float64(r.Restore) / float64(op)
}

// Workload is one GPMbench application.
type Workload interface {
	// Name is the paper's short name (gpKVS, gpDB(I), ..., PS).
	Name() string
	// Class is "transactional", "checkpointing", or "native".
	Class() string
	// Supports reports whether the workload can execute under mode
	// (e.g. most workloads cannot run on GPUfs, §6.1).
	Supports(mode Mode) bool
	// Setup generates inputs and loads read-only data.
	Setup(env *Env) error
	// Run executes the measured operation region under env.Mode.
	Run(env *Env) error
	// Verify functionally checks the results (and, for persistent modes,
	// that the required structures are durable).
	Verify(env *Env) error
}

// Crasher is implemented by workloads that support the §6.2 crash-injection
// study: RunUntilCrash executes with the fault injector armed, Recover runs
// the recovery procedure after Env.Ctx.Crash, and both leave the workload
// in a state Verify accepts.
type Crasher interface {
	Workload
	RunUntilCrash(env *Env, abortAfterOps int64) error
	Recover(env *Env) error
}

// RunOne executes a workload under a mode on a fresh environment and
// returns its report.
//
// Deprecated: use Run (by name) or RunWorkload with WithMode/WithConfig.
func RunOne(w Workload, mode Mode, cfg Config) (*Report, error) {
	return RunWorkload(w, WithMode(mode), WithConfig(cfg))
}

func runOne(w Workload, mode Mode, cfg Config) (*Report, error) {
	if !w.Supports(mode) {
		return nil, fmt.Errorf("workloads: %s does not support %s", w.Name(), mode)
	}
	env := NewEnv(mode, cfg)
	if cfg.Telemetry != nil {
		env.Ctx.AttachTelemetry(cfg.Telemetry, w.Name()+"/"+mode.String())
	}
	if err := w.Setup(env); err != nil {
		return nil, fmt.Errorf("%s/%s setup: %w", w.Name(), mode, err)
	}
	env.BeginOps()
	if err := w.Run(env); err != nil {
		return nil, fmt.Errorf("%s/%s run: %w", w.Name(), mode, err)
	}
	// Snapshot metrics before Verify: verification may itself restore
	// checkpoints or scan PM, which is not part of the measured run.
	rep := report(w, env)
	if err := w.Verify(env); err != nil {
		return nil, fmt.Errorf("%s/%s verify: %w", w.Name(), mode, err)
	}
	return rep, nil
}

func report(w Workload, env *Env) *Report {
	r := &Report{
		Workload:  w.Name(),
		Class:     w.Class(),
		Mode:      env.Mode,
		OpTime:    env.OpTime(),
		SetupTime: env.setupTime,
		TotalTime: env.Ctx.Timeline.Total(),
		CkptTime:  env.ckpt,
		Restore:   env.restore,
		PMBytes:   env.PMBytes(),
		Ops:       env.opsDone,
	}
	if r.OpTime > 0 {
		r.PMWriteBW = float64(r.PMBytes) / r.OpTime.Seconds()
	}
	// Pattern fractions over the op region only (setup writes excluded).
	snap := env.Ctx.Space.PM.WriteStats.Snapshot()
	delta := sim.AccessSnapshot{
		Txns:       snap.Txns - env.statStart.Txns,
		Bytes:      snap.Bytes - env.statStart.Bytes,
		Sequential: snap.Sequential - env.statStart.Sequential,
		Aligned256: snap.Aligned256 - env.statStart.Aligned256,
	}
	r.SeqFrac = delta.SeqFraction()
	r.AlignedFrac = delta.AlignedFraction()
	return r
}

// RunWithCrash executes a Crasher with a fault injected after roughly
// abortAfterOps memory operations inside the op region, simulates a clean
// power failure, recovers, re-runs to completion, verifies, and reports
// (the §6.2 / Table 5 methodology). It is RunWithPlan under the friendliest
// plan: one crash, clean rollback, no nested recovery crashes.
//
// Deprecated: use Run/RunWorkload with WithCrashAt.
func RunWithCrash(w Crasher, mode Mode, cfg Config, abortAfterOps int64) (*Report, error) {
	return RunWorkload(w, WithMode(mode), WithConfig(cfg), WithCrashAt(abortAfterOps))
}

// copyKernelGPU moves n bytes from src to dst with a grid of 16B-chunk
// copy threads (no fences — persistence is the caller's problem).
func copyKernelGPU(env *Env, dst, src uint64, n int64) {
	const chunk = 16
	threads := int((n + chunk - 1) / chunk)
	tpb := 256
	blocks := (threads + tpb - 1) / tpb
	env.Ctx.Launch("ndp-copy", blocks, tpb, func(t *gpu.Thread) {
		off := int64(t.GlobalID()) * chunk
		if off >= n {
			return
		}
		c := int64(chunk)
		if off+c > n {
			c = n - off
		}
		var tmp [chunk]byte
		t.LoadBytes(src+uint64(off), tmp[:c])
		t.StoreBytes(dst+uint64(off), tmp[:c])
	})
}

// GWriteBuffer persists an HBM buffer through the GPUfs path: each block's
// leader gwrite()s a page-aligned chunk, then the file is gfsync()ed.
func GWriteBuffer(env *Env, f *fsim.File, devSrc uint64, fileOff, n int64) error {
	gfs := env.Ctx.GFS
	if _, err := gfs.GOpen(f.Name()); err != nil {
		return err
	}
	const chunk = 1 << 16
	blocks := int((n + chunk - 1) / chunk)
	var gerr error
	env.Ctx.Launch("gpufs-write", blocks, 32, func(t *gpu.Thread) {
		t.SyncBlock() // GPUfs requires block-wide invocation
		if t.ID() != 0 {
			return
		}
		off := int64(t.Block().ID()) * chunk
		c := n - off
		if c > chunk {
			c = chunk
		}
		buf := make([]byte, c)
		for p := int64(0); p < c; p += 4096 {
			q := c - p
			if q > 4096 {
				q = 4096
			}
			t.LoadBytes(devSrc+uint64(off+p), buf[p:p+q])
		}
		if err := gfs.GWrite(t, f, fileOff+off, buf); err != nil {
			gerr = err
		}
	})
	if gerr != nil {
		return gerr
	}
	env.Ctx.Launch("gpufs-sync", 1, 32, func(t *gpu.Thread) {
		t.SyncBlock()
		if t.ID() == 0 {
			gfs.GFsync(t, f)
		}
	})
	return nil
}

// PersistBuffer persists an HBM result buffer to its PM home under any
// CAP-class mode (the post-kernel persistence step that GPM eliminates).
// Under GPM-class modes it is a no-op: the kernel already persisted.
func PersistBuffer(env *Env, f *fsim.File, fileOff int64, devSrc uint64, n int64) error {
	switch env.Mode {
	case CAPfs:
		return env.Cap.PersistFS(f, fileOff, devSrc, n)
	case CAPmm, CAPeADR:
		env.Cap.PersistMM(f.Mmap()+uint64(fileOff), devSrc, n)
		return nil
	case GPMNDP:
		// GPM-NDP: the GPU stores to PM directly (DDIO on), then the CPU
		// flushes. If the data is not already PM-resident, a plain copy
		// kernel moves it first.
		dst := f.Mmap() + uint64(fileOff)
		if devSrc != dst {
			copyKernelGPU(env, dst, devSrc, n)
		}
		env.Cap.FlushOnly(dst, n)
		return nil
	case GPUfs:
		return GWriteBuffer(env, f, devSrc, fileOff, n)
	default:
		return nil
	}
}
