package workloads

import "github.com/gpm-sim/gpm/internal/telemetry"

// Config holds the scaled workload sizes. The paper's inputs are GB-scale
// (Table 1); these defaults shrink them ~64× so the whole suite runs in
// seconds of wall-clock time while keeping every ratio
// bandwidth/latency-model driven (DESIGN.md §5).
type Config struct {
	Seed uint64

	// Telemetry, when non-nil, receives spans and metrics from every run
	// started through RunOne/RunWithCrash. Each run gets its own trace
	// process lane named "workload/mode"; metrics aggregate across runs.
	Telemetry *telemetry.Telemetry
	// CAPThreads is the CPU thread count for CAP-mm persist phases (the
	// paper uses the best of 2–32 per application).
	CAPThreads int

	// Workers bounds how many GPU threadblocks execute on real goroutines
	// at once (0 = GOMAXPROCS). Simulated results are bit-identical for
	// every value — Workers trades host wall-clock time only, and 1 is the
	// determinism reference. Run rejects values outside [0, MaxWorkers];
	// see ValidateWorkers.
	Workers int

	// Simulated memory region sizes (bytes). Sized to the scaled
	// workloads rather than the paper's hardware so that allocating a
	// fresh node per run stays cheap.
	HBMSize, DRAMSize, PMSize int64

	// gpKVS (paper: 25 batches of 2M SETs; 100 batches of 95:5 GET:SET
	// over a 4.1 GB store).
	KVSSets        int // 8-way sets in the store
	KVSBatches     int
	KVSOpsPerBatch int

	// gpDB (paper: 50M-row table, 2.5M-row updates).
	DBRows       int
	DBCols       int
	DBInsertRows int
	DBUpdateRows int

	// DNN training (LeNet-style MLP on synthetic MNIST).
	DNNInputs   int
	DNNHidden   int
	DNNClasses  int
	DNNBatch    int
	DNNIters    int
	DNNCkptEach int

	// CFD (structured Euler grid solver).
	CFDCells    int
	CFDIters    int
	CFDCkptEach int

	// Black-Scholes (paper: 256M options).
	BLKOptions  int
	BLKIters    int
	BLKCkptEach int

	// Hotspot (paper: 16K×16K grid).
	HSDim      int
	HSIters    int
	HSCkptEach int

	// BFS (paper: USA road network — high diameter; here a 2-D grid with
	// shortcut edges, which preserves the many-iteration structure).
	BFSWidth, BFSHeight int
	BFSShortcuts        int

	// SRAD (paper: 128K×1K image).
	SRADRows, SRADCols int
	SRADIters          int

	// Prefix sum (paper: 1K arrays of 1M integers).
	PSElems int
}

// DefaultConfig returns the scaled GPMbench configuration.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		CAPThreads: 16,

		HBMSize:  64 << 20,
		DRAMSize: 48 << 20,
		PMSize:   96 << 20,

		KVSSets:        1 << 15, // 32K sets × 8 ways × 16B = 4 MB store
		KVSBatches:     4,
		KVSOpsPerBatch: 1 << 11,

		DBRows:       60000,
		DBCols:       8,
		DBInsertRows: 2000,
		DBUpdateRows: 1 << 12,

		DNNInputs:   196, // 14×14 synthetic MNIST
		DNNHidden:   64,
		DNNClasses:  10,
		DNNBatch:    64,
		DNNIters:    30,
		DNNCkptEach: 10,

		CFDCells:    1 << 16,
		CFDIters:    12,
		CFDCkptEach: 4,

		BLKOptions:  1 << 18,
		BLKIters:    8,
		BLKCkptEach: 4,

		HSDim:      224,
		HSIters:    24,
		HSCkptEach: 6,

		BFSWidth:     96,
		BFSHeight:    256,
		BFSShortcuts: 512,

		SRADRows:  192,
		SRADCols:  256,
		SRADIters: 4,

		PSElems: 1 << 18,
	}
}

// QuickConfig returns an even smaller configuration for unit tests.
func QuickConfig() Config {
	c := DefaultConfig()
	c.HBMSize = 12 << 20
	c.DRAMSize = 8 << 20
	c.PMSize = 16 << 20
	c.KVSSets = 1 << 10
	c.KVSBatches = 2
	c.KVSOpsPerBatch = 1 << 9
	c.DBRows = 4000
	c.DBInsertRows = 500
	c.DBUpdateRows = 1 << 8
	c.DNNIters = 12
	c.DNNCkptEach = 5
	c.CFDCells = 1 << 12
	c.CFDIters = 6
	c.CFDCkptEach = 3
	c.BLKOptions = 1 << 13
	c.BLKIters = 4
	c.BLKCkptEach = 2
	c.HSDim = 64
	c.HSIters = 6
	c.HSCkptEach = 3
	c.BFSWidth = 32
	c.BFSHeight = 64
	c.BFSShortcuts = 64
	c.SRADRows = 48
	c.SRADCols = 64
	c.SRADIters = 2
	c.PSElems = 1 << 14
	return c
}
