// Package workloads contains GPMbench (§4, Table 1): nine GPU-accelerated
// workloads in three classes — transactional (gpKVS, gpDB), iterative
// checkpointing (DNN, CFD, BLK, HS), and native persistence (BFS, SRAD,
// PS) — each runnable under every persistence system the paper evaluates,
// plus the CPU-only PM baselines of Fig 1.
package workloads

// Mode selects the persistence system a workload runs under (§6.1).
type Mode int

// Persistence modes.
const (
	// GPM: in-kernel byte-grained persistence; DDIO disabled around
	// persistent kernels; system-scoped fences persist.
	GPM Mode = iota
	// CAPfs: GPU computes, CPU persists via write(2)+fsync on ext4-DAX.
	CAPfs
	// CAPmm: GPU computes, CPU persists via mmap+CLFLUSHOPT+SFENCE on
	// the best-performing thread count.
	CAPmm
	// GPUfs: in-kernel file syscalls serviced by the CPU (block-granular,
	// CPU-persisted; many workloads cannot run, §6.1).
	GPUfs
	// GPMNDP: GPM without direct persistence — kernels load/store PM
	// directly but the CPU guarantees persistence (ablation, Fig 10).
	GPMNDP
	// GPMeADR: GPM on projected eADR hardware — fences complete at the
	// LLC, DDIO stays on (Fig 10).
	GPMeADR
	// CAPeADR: CAP-mm on eADR hardware — no CPU flushes needed (Fig 10).
	CAPeADR
	// CPUOnly: the whole application runs multi-threaded on the CPU with
	// PM persistence (Fig 1 baselines).
	CPUOnly
)

var modeNames = map[Mode]string{
	GPM:     "GPM",
	CAPfs:   "CAP-fs",
	CAPmm:   "CAP-mm",
	GPUfs:   "GPUfs",
	GPMNDP:  "GPM-NDP",
	GPMeADR: "GPM-eADR",
	CAPeADR: "CAP-eADR",
	CPUOnly: "CPU",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return "unknown"
}

// UsesGPM reports whether kernels persist in-place from the GPU.
func (m Mode) UsesGPM() bool { return m == GPM || m == GPMeADR }

// UsesCAP reports whether the CPU persists results after kernels finish.
func (m Mode) UsesCAP() bool {
	return m == CAPfs || m == CAPmm || m == CAPeADR || m == GPMNDP
}

// EADR reports whether the mode models eADR hardware.
func (m Mode) EADR() bool { return m == GPMeADR || m == CAPeADR }
