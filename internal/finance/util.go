package finance

import (
	"encoding/binary"
	"math"

	"github.com/gpm-sim/gpm/internal/memsys"
)

func writeF32Slice(sp *memsys.Space, addr uint64, vals []float32) {
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	sp.WriteCPU(addr, buf)
}

func readF32Slice(sp *memsys.Space, addr uint64, n int) []float32 {
	buf := make([]byte, n*4)
	sp.Read(addr, buf)
	return f32FromBytes(buf)
}

func f32FromBytes(buf []byte) []float32 {
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}
