// Package finance implements the financial GPMbench workloads:
// Black-Scholes option pricing (BLK — checkpointing class, §4.2) and the
// binomial options model, the paper's example of a workload that fits GPM
// poorly because one thread per block writes the result, leaving no
// parallelism for persistence (§4.3).
package finance

import (
	"fmt"
	"math"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

const blkGPUCost = 40 * sim.Nanosecond

// BlackScholes (BLK) prices a large pool of European call options in
// batches, checkpointing the predicted prices after every few batches.
type BlackScholes struct {
	options, iters, ckptEach int
	perIter                  int

	spot, strike, years uint64 // HBM read-only inputs
	prices              uint64 // HBM output prices

	cp     *gpm.Checkpoint
	cpFile *fsim.File

	expect     []float32
	expectCkpt []float32
	ckpts      int
	resumeIter int

	// Host copies of the read-only inputs, restaged on recovery.
	hostS, hostK, hostY []float32
}

// NewBlackScholes returns the BLK workload.
func NewBlackScholes() *BlackScholes { return &BlackScholes{} }

// Name implements workloads.Workload.
func (b *BlackScholes) Name() string { return "BLK" }

// Class implements workloads.Workload.
func (b *BlackScholes) Class() string { return "checkpointing" }

// Supports implements workloads.Workload: like HS, BLK's checkpoint file
// exceeds GPUfs's file-size limit in the paper (§6.1), and checkpointing
// workloads have no CPU-only counterpart.
func (b *BlackScholes) Supports(mode workloads.Mode) bool {
	return mode != workloads.GPUfs && mode != workloads.CPUOnly
}

// cnd is the cumulative normal distribution (Abramowitz–Stegun polynomial),
// in float32 to match the kernel bit-for-bit.
func cnd(x float32) float32 {
	const (
		a1 = float32(0.31938153)
		a2 = float32(-0.356563782)
		a3 = float32(1.781477937)
		a4 = float32(-1.821255978)
		a5 = float32(1.330274429)
	)
	l := x
	if l < 0 {
		l = -l
	}
	k := 1 / (1 + 0.2316419*l)
	w := 1 - 1/float32(math.Sqrt(2*math.Pi))*expf(-l*l/2)*
		(a1*k+a2*k*k+a3*k*k*k+a4*k*k*k*k+a5*k*k*k*k*k)
	if x < 0 {
		return 1 - w
	}
	return w
}

func expf(x float32) float32  { return float32(math.Exp(float64(x))) }
func logf(x float32) float32  { return float32(math.Log(float64(x))) }
func sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// price is the Black-Scholes call price with fixed rate and volatility.
func price(s, k, t float32) float32 {
	const r, v = float32(0.02), float32(0.30)
	sqrtT := sqrtf(t)
	d1 := (logf(s/k) + (r+v*v/2)*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	return s*cnd(d1) - k*expf(-r*t)*cnd(d2)
}

// Setup implements workloads.Workload.
func (b *BlackScholes) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	b.options, b.iters, b.ckptEach = cfg.BLKOptions, cfg.BLKIters, cfg.BLKCkptEach
	b.perIter = (b.options + b.iters - 1) / b.iters
	n := b.options
	sp := env.Ctx.Space
	b.spot = sp.AllocHBM(int64(n) * 4)
	b.strike = sp.AllocHBM(int64(n) * 4)
	b.years = sp.AllocHBM(int64(n) * 4)
	b.prices = sp.AllocHBM(int64(n) * 4)

	s := make([]float32, n)
	k := make([]float32, n)
	y := make([]float32, n)
	b.expect = make([]float32, n)
	for i := 0; i < n; i++ {
		s[i] = 10 + 90*float32(env.RNG.Float64())
		k[i] = 10 + 90*float32(env.RNG.Float64())
		y[i] = 0.25 + 2*float32(env.RNG.Float64())
		b.expect[i] = price(s[i], k[i], y[i])
	}
	b.hostS, b.hostK, b.hostY = s, k, y
	writeF32Slice(sp, b.spot, s)
	writeF32Slice(sp, b.strike, k)
	writeF32Slice(sp, b.years, y)
	env.Ctx.Timeline.Add("setup", sp.DMA.TransferDown(3*int64(n)*4))

	lastCkptIter := b.iters / b.ckptEach * b.ckptEach
	b.expectCkpt = make([]float32, n)
	copy(b.expectCkpt, b.expect[:minInt(lastCkptIter*b.perIter, n)])

	var err error
	if env.Mode.UsesGPM() {
		if b.cp, err = env.Ctx.CPCreate("/pm/blk.cp", int64(n)*4, 1, 1); err != nil {
			return err
		}
		return b.cp.Register(b.prices, int64(n)*4, 0)
	}
	b.cpFile, err = env.Ctx.FS.Create("/pm/blk.cp", int64(n)*4, 0)
	return err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

const blkTPB = 256

// priceKernel prices options [lo, hi).
func (b *BlackScholes) priceKernel(env *workloads.Env, lo, hi int) {
	spot, strike, years, prices := b.spot, b.strike, b.years, b.prices
	count := hi - lo
	blocks := (count + blkTPB - 1) / blkTPB
	env.Ctx.Launch("blk-price", blocks, blkTPB, func(t *gpu.Thread) {
		i := lo + t.GlobalID()
		if i >= hi {
			return
		}
		s := t.LoadF32(spot + uint64(i)*4)
		k := t.LoadF32(strike + uint64(i)*4)
		y := t.LoadF32(years + uint64(i)*4)
		t.Compute(blkGPUCost)
		t.StoreF32(prices+uint64(i)*4, price(s, k, y))
	})
}

func (b *BlackScholes) checkpoint(env *workloads.Env) error {
	start := env.Ctx.Timeline.Total()
	defer func() { env.AddCheckpoint(env.Ctx.Timeline.Total() - start) }()
	b.ckpts++
	if env.Mode.UsesGPM() {
		_, err := b.cp.CheckpointGroup(0)
		return err
	}
	return workloads.PersistBuffer(env, b.cpFile, 0, b.prices, int64(b.options)*4)
}

// Run implements workloads.Workload.
func (b *BlackScholes) Run(env *workloads.Env) error {
	for it := b.resumeIter + 1; it <= b.iters; it++ {
		lo := (it - 1) * b.perIter
		hi := minInt(lo+b.perIter, b.options)
		if lo < hi {
			b.priceKernel(env, lo, hi)
		}
		if it%b.ckptEach == 0 {
			if err := b.checkpoint(env); err != nil {
				return err
			}
		}
	}
	env.CountOps(int64(b.options))
	return nil
}

// Verify implements workloads.Workload.
func (b *BlackScholes) Verify(env *workloads.Env) error {
	n := b.options
	got := readF32Slice(env.Ctx.Space, b.prices, n)
	for i := range got {
		if got[i] != b.expect[i] {
			return fmt.Errorf("blk: price[%d] = %v, want %v", i, got[i], b.expect[i])
		}
	}
	if b.ckpts == 0 {
		return fmt.Errorf("blk: no checkpoints taken")
	}
	// The durable checkpoint holds prices as of the last checkpoint.
	var snap []float32
	if env.Mode.UsesGPM() {
		sp := env.Ctx.Space
		scratch := sp.AllocHBM(int64(n) * 4)
		cp2, err := env.Ctx.CPOpen("/pm/blk.cp")
		if err != nil {
			return err
		}
		if err := cp2.Register(scratch, int64(n)*4, 0); err != nil {
			return err
		}
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
		snap = readF32Slice(sp, scratch, n)
	} else {
		raw := env.Ctx.Space.SnapshotPersistent(b.cpFile.Mmap(), n*4)
		snap = f32FromBytes(raw)
	}
	for i := range b.expectCkpt {
		if b.expectCkpt[i] != 0 && snap[i] != b.expectCkpt[i] {
			return fmt.Errorf("blk: durable ckpt[%d] = %v, want %v", i, snap[i], b.expectCkpt[i])
		}
	}
	return nil
}
