package finance

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// RunUntilCrash implements workloads.Crasher.
func (b *BlackScholes) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("blk: crash study requires a GPM mode")
	}
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := b.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	if err == gpu.ErrCrashed {
		return nil
	}
	return err
}

// Recover implements workloads.Crasher: restore the checkpointed prices,
// restage the read-only option parameters, and resume pricing at the
// checkpointed batch.
func (b *BlackScholes) Recover(env *workloads.Env) error {
	restoreStart := env.Ctx.Timeline.Total()
	cp2, err := env.Ctx.CPOpen("/pm/blk.cp")
	if err != nil {
		return err
	}
	if err := cp2.Register(b.prices, int64(b.options)*4, 0); err != nil {
		return err
	}
	// A crash before the first checkpoint restarts pricing from batch 0:
	// the prices array is recomputed batch by batch, so no restore is
	// needed, only the read-only parameters below.
	if cp2.Seq(0) > 0 {
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
	}
	env.AddRestore(env.Ctx.Timeline.Total() - restoreStart)
	b.cp = cp2
	b.ckpts = int(cp2.Seq(0))
	sp := env.Ctx.Space
	writeF32Slice(sp, b.spot, b.hostS)
	writeF32Slice(sp, b.strike, b.hostK)
	writeF32Slice(sp, b.years, b.hostY)
	env.Ctx.Timeline.Add("reload", sp.DMA.TransferDown(3*int64(b.options)*4))
	b.resumeIter = int(cp2.Seq(0)) * b.ckptEach
	err = b.Run(env)
	b.resumeIter = 0
	return err
}
