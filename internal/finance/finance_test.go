package finance

import (
	"math"
	"testing"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func TestBLKModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR,
	} {
		t.Run(m.String(), func(t *testing.T) {
			r, err := workloads.RunOne(NewBlackScholes(), m, workloads.QuickConfig())
			if err != nil {
				t.Fatal(err)
			}
			if r.CkptTime <= 0 {
				t.Error("no checkpoint time")
			}
			if r.Ops == 0 {
				t.Error("no ops counted")
			}
		})
	}
}

func TestBLKUnsupportedModes(t *testing.T) {
	for _, m := range []workloads.Mode{workloads.GPUfs, workloads.CPUOnly} {
		if _, err := workloads.RunOne(NewBlackScholes(), m, workloads.QuickConfig()); err == nil {
			t.Errorf("BLK should not run on %v", m)
		}
	}
}

func TestBLKCheckpointGPMFaster(t *testing.T) {
	cfg := workloads.QuickConfig()
	g, err := workloads.RunOne(NewBlackScholes(), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := workloads.RunOne(NewBlackScholes(), workloads.CAPmm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.CkptTime >= mm.CkptTime {
		t.Errorf("GPM ckpt %v not faster than CAP-mm %v", g.CkptTime, mm.CkptTime)
	}
}

func TestBlackScholesSanity(t *testing.T) {
	// Deep in-the-money call with ~zero time value approaches S-K.
	p := price(100, 50, 0.25)
	if p < 49 || p > 55 {
		t.Errorf("ITM call price %v out of range", p)
	}
	// Far out-of-the-money call is nearly worthless.
	if p := price(10, 100, 0.25); p > 0.5 {
		t.Errorf("OTM call price %v too high", p)
	}
	// CND is a CDF: monotone, 0..1, symmetric.
	if cnd(0) < 0.49 || cnd(0) > 0.51 {
		t.Errorf("cnd(0) = %v", cnd(0))
	}
	if cnd(3) < 0.99 || cnd(-3) > 0.01 {
		t.Error("cnd tails wrong")
	}
	if math.Abs(float64(cnd(1.5)+cnd(-1.5)-1)) > 1e-5 {
		t.Error("cnd not symmetric")
	}
}

func TestBinomialConvergesTowardBlackScholes(t *testing.T) {
	// With many steps the binomial price approaches Black-Scholes.
	bs := price(100, 95, 1.0)
	bin := binomialPrice(100, 95, 1.0, 256)
	if math.Abs(float64(bs-bin)) > 0.5 {
		t.Errorf("binomial %v vs black-scholes %v", bin, bs)
	}
}

func TestBinomialPoorPersistParallelism(t *testing.T) {
	// The paper's §4.3 point: per-persisted-byte, the binomial pattern
	// (one persisting thread per block) is far slower than BLK's
	// all-threads-persist pattern.
	env := workloads.NewEnv(workloads.GPM, workloads.QuickConfig())
	bi := &Binomial{Steps: 32}
	n := 8192
	s := make([]float32, n)
	k := make([]float32, n)
	y := make([]float32, n)
	for i := range s {
		s[i], k[i], y[i] = 100, 95, 1
	}
	elapsed, out, err := bi.PriceOptions(env, s, k, y)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Ctx.Space.Persisted(out, n*4) {
		t.Fatal("binomial results not durable")
	}
	perByte := float64(elapsed) / float64(n*4)
	// BLK-style fully-parallel persistence of the same bytes:
	env2 := workloads.NewEnv(workloads.GPM, workloads.QuickConfig())
	f, _ := env2.Ctx.FS.Create("/pm/flat.out", int64(n)*4, 0)
	env2.Ctx.PersistBegin()
	res := env2.Ctx.Launch("flat", (n+255)/256, 256, func(th *gpu.Thread) {
		i := th.GlobalID()
		if i >= n {
			return
		}
		th.StoreF32(f.Mmap()+uint64(i)*4, 1)
		th.FenceSystem()
	})
	env2.Ctx.PersistEnd()
	flatPerByte := float64(res.Elapsed) / float64(n*4)
	if perByte < 2*flatPerByte {
		t.Errorf("binomial persist cost/byte (%.1f) should far exceed flat pattern (%.1f)",
			perByte, flatPerByte)
	}
}
