package finance

import (
	"math"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Binomial is the paper's poor-fit example (§4.3): in GPU binomial option
// pricing, a whole threadblock cooperates on ONE option and a single thread
// writes (and would persist) the result. GPM needs parallelism in the
// persist path for good performance; with one persisting thread per block
// there is almost none. PriceOptions exposes the per-option persist pattern
// so the ablation bench can quantify it against Black-Scholes.
type Binomial struct {
	Steps int // binomial tree depth
}

// binomialPrice computes one option's value on the host (float32,
// mirroring the kernel).
func binomialPrice(s, k, t float32, steps int) float32 {
	const r, v = float32(0.02), float32(0.30)
	dt := t / float32(steps)
	u := expf(v * sqrtf(dt))
	d := 1 / u
	p := (expf(r*dt) - d) / (u - d)
	disc := expf(-r * dt)
	vals := make([]float32, steps+1)
	for i := 0; i <= steps; i++ {
		sp := s * float32(math.Pow(float64(u), float64(i))) * float32(math.Pow(float64(d), float64(steps-i)))
		if sp > k {
			vals[i] = sp - k
		}
	}
	for step := steps; step > 0; step-- {
		for i := 0; i < step; i++ {
			vals[i] = disc * (p*vals[i+1] + (1-p)*vals[i])
		}
	}
	return vals[0]
}

// PriceOptions prices n options under GPM, one threadblock per option:
// the block's threads evaluate tree leaves in parallel, but only thread 0
// performs the backward induction, writes, and persists — the pattern that
// leaves no persist parallelism. It returns the kernel duration and the
// computed prices' PM address.
func (bi *Binomial) PriceOptions(env *workloads.Env, spots, strikes, yearsv []float32) (sim.Duration, uint64, error) {
	n := len(spots)
	sp := env.Ctx.Space
	sAddr := sp.AllocHBM(int64(n) * 4)
	kAddr := sp.AllocHBM(int64(n) * 4)
	yAddr := sp.AllocHBM(int64(n) * 4)
	writeF32Slice(sp, sAddr, spots)
	writeF32Slice(sp, kAddr, strikes)
	writeF32Slice(sp, yAddr, yearsv)
	out, err := env.Ctx.FS.OpenOrCreate("/pm/binomial.out", int64(n)*4, 0)
	if err != nil {
		return 0, 0, err
	}
	steps := bi.Steps
	if steps <= 0 {
		steps = 64
	}
	env.PersistKernelBegin()
	res := env.Ctx.Launch("binomial", n, 64, func(t *gpu.Thread) {
		opt := t.Block().ID()
		// All threads share leaf evaluation (parallel compute)...
		t.Compute(sim.Duration(steps) * 2 * sim.Nanosecond)
		t.SyncBlock()
		// ...but only thread 0 runs the induction, writes, and persists.
		if t.ID() != 0 {
			return
		}
		s := t.LoadF32(sAddr + uint64(opt)*4)
		k := t.LoadF32(kAddr + uint64(opt)*4)
		y := t.LoadF32(yAddr + uint64(opt)*4)
		t.Compute(sim.Duration(steps*steps) * sim.Nanosecond / 2)
		t.StoreF32(out.Mmap()+uint64(opt)*4, binomialPrice(s, k, y, steps))
		gpm.Persist(t)
	})
	env.PersistKernelEnd()
	return res.Elapsed, out.Mmap(), nil
}
