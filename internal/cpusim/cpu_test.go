package cpusim

import (
	"bytes"
	"testing"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 8 << 20, PMSize: 8 << 20})
	return NewHost(sp)
}

func TestRunExecutesAllThreads(t *testing.T) {
	h := newHost(t)
	seen := make([]bool, 8)
	h.Run(8, func(th *Thread) {
		if th.N != 8 {
			t.Errorf("N = %d", th.N)
		}
		seen[th.ID] = true
	})
	for i, ok := range seen {
		if !ok {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestWritePersistCrash(t *testing.T) {
	h := newHost(t)
	addr := h.Space.AllocPM(128, 0)
	h.Run(1, func(th *Thread) {
		th.WriteU64(addr, 7)
		th.PersistRange(addr, 8)
		th.WriteU64(addr+64, 9) // never flushed
	})
	h.Space.Crash()
	if h.Space.ReadU64(addr) != 7 {
		t.Error("persisted write lost")
	}
	if h.Space.ReadU64(addr+64) != 0 {
		t.Error("unflushed write survived")
	}
}

func TestFlushWithoutDrainNotDurable(t *testing.T) {
	h := newHost(t)
	addr := h.Space.AllocPM(64, 0)
	h.Run(1, func(th *Thread) {
		th.WriteU64(addr, 5)
		th.FlushRange(addr, 8)
		// no Drain: CLFLUSHOPT without SFENCE gives no guarantee
	})
	h.Space.Crash()
	if h.Space.ReadU64(addr) != 0 {
		t.Error("flush without drain should not guarantee durability")
	}
}

func TestFlushWritesTracksOwnStores(t *testing.T) {
	h := newHost(t)
	a := h.Space.AllocPM(64, 0)
	b := h.Space.AllocPM(64, 0)
	h.Run(1, func(th *Thread) {
		th.WriteU64(a, 1)
		th.WriteU64(b, 2)
		th.FlushWrites()
		th.Drain()
	})
	h.Space.Crash()
	if h.Space.ReadU64(a) != 1 || h.Space.ReadU64(b) != 2 {
		t.Error("FlushWrites+Drain did not persist both stores")
	}
}

func TestMemcpyMovesData(t *testing.T) {
	h := newHost(t)
	src := h.Space.AllocDRAM(1 << 17)
	dst := h.Space.AllocPM(1<<17, 0)
	want := bytes.Repeat([]byte{0xab}, 1<<17)
	h.Space.WriteCPU(src, want)
	h.Run(1, func(th *Thread) {
		th.Memcpy(dst, src, 1<<17)
		th.PersistRange(dst, 1<<17)
	})
	h.Space.Crash()
	got := make([]byte, 1<<17)
	h.Space.Read(dst, got)
	if !bytes.Equal(got, want) {
		t.Error("memcpy data mismatch after crash")
	}
}

func TestPhaseTimeBoundedByPMBandwidth(t *testing.T) {
	h := newHost(t)
	n := int64(4 << 20)
	src := h.Space.AllocDRAM(n)
	dst := h.Space.AllocPM(n, 0)
	one := h.Run(1, func(th *Thread) {
		th.Memcpy(dst, src, n)
		th.PersistRange(dst, n)
	})
	many := h.Run(16, func(th *Thread) {
		part := n / 16
		off := uint64(th.ID) * uint64(part)
		th.Memcpy(dst+off, src+off, part)
		th.PersistRange(dst+off, part)
	})
	speedup := float64(one) / float64(many)
	// The Fig 3a plateau: threads cannot beat the aggregate PM bandwidth.
	if speedup > 1.8 {
		t.Errorf("16 CPU threads sped persistence %.2fx; plateau should cap it", speedup)
	}
	if speedup < 1.05 {
		t.Errorf("16 threads gave no speedup at all (%.2fx)", speedup)
	}
}

func TestSmallAccessLatency(t *testing.T) {
	h := newHost(t)
	addr := h.Space.AllocPM(1<<16, 0)
	// 1024 scattered 8-byte writes must cost at least the media latency
	// each, far more than 8KB/bandwidth.
	d := h.Run(1, func(th *Thread) {
		for i := 0; i < 1024; i++ {
			th.WriteU64(addr+uint64(i*64), uint64(i))
		}
	})
	if d < 1024*h.Params.PMReadLatency {
		t.Errorf("scattered small writes too cheap: %v", d)
	}
}

func TestFlushForeignCountsPMTraffic(t *testing.T) {
	h := newHost(t)
	addr := h.Space.AllocPM(1<<20, 0)
	own := h.Run(4, func(th *Thread) {
		th.PersistRange(addr, 1<<20) // own-flush: no PM byte accounting
	})
	foreign := h.Run(4, func(th *Thread) {
		th.PersistForeignRange(addr, 1<<20)
	})
	if foreign <= own {
		t.Errorf("foreign flush (%v) should cost more than own flush (%v): it drains LLC->PM", foreign, own)
	}
}

func TestEADRSkipsFlushes(t *testing.T) {
	h := newHost(t)
	h.Space.SetEADR(true)
	addr := h.Space.AllocPM(1<<20, 0)
	d := h.Run(1, func(th *Thread) {
		th.Write(addr, make([]byte, 1<<20))
		th.PersistRange(addr, 1<<20)
	})
	h.Space.SetEADR(false)
	h2 := newHost(t)
	addr2 := h2.Space.AllocPM(1<<20, 0)
	d2 := h2.Run(1, func(th *Thread) {
		th.Write(addr2, make([]byte, 1<<20))
		th.PersistRange(addr2, 1<<20)
	})
	if d >= d2 {
		t.Errorf("eADR persist (%v) should be cheaper than flush+drain (%v)", d, d2)
	}
}

func TestTypedAccessors(t *testing.T) {
	h := newHost(t)
	a := h.Space.AllocDRAM(64)
	h.Run(1, func(th *Thread) {
		th.WriteU32(a, 0xfeed)
		th.WriteF32(a+8, 2.5)
		th.WriteF64(a+16, -1.25)
		if th.ReadU32(a) != 0xfeed || th.ReadF32(a+8) != 2.5 || th.ReadF64(a+16) != -1.25 {
			t.Error("typed round trip failed")
		}
		if th.Clock() <= 0 {
			t.Error("clock did not advance")
		}
		if th.Host() != h || th.Space() != h.Space {
			t.Error("accessors broken")
		}
	})
}

func TestComputeScales(t *testing.T) {
	h := newHost(t)
	d := h.Run(1, func(th *Thread) { th.Compute(time100us()) })
	if d != time100us() {
		t.Errorf("compute = %v", d)
	}
}

func time100us() sim.Duration { return 100 * sim.Microsecond }
