// Package cpusim models multi-threaded CPU execution phases: per-thread
// simulated clocks, stores with CLFLUSHOPT/SFENCE persistence, memcpy, and
// the aggregate-PM-bandwidth bound that makes CPU-side persistence plateau
// (the paper's Fig 3a: 64 threads reach only 1.47× one thread). It is the
// substrate for the CAP baselines and for the CPU-only PM applications in
// Fig 1.
package cpusim

import (
	"encoding/binary"
	"math"
	"sync"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Host is the CPU side of the simulated node.
type Host struct {
	Params *sim.Params
	Space  *memsys.Space
}

// NewHost returns a host executing against space.
func NewHost(space *memsys.Space) *Host {
	return &Host{Params: space.Params, Space: space}
}

// Thread is one CPU worker inside a phase.
type Thread struct {
	host *Host
	// ID is the thread index within the phase; N is the phase width.
	ID, N int

	clock     sim.Duration
	pmBytes   int64
	unflushed []uint64 // PM lines stored but not yet flushed
	flushed   []uint64 // PM lines flushed but not yet drained

	// seqBase/opIdx give every persistence-relevant operation a canonical
	// sequence number (round-robin interleaved across the phase's threads)
	// so the dirty-line ordering is the same no matter how the OS
	// scheduled the goroutines. pmStats accumulates this thread's PM write
	// pattern; Run merges the per-thread stats in thread-ID order.
	seqBase uint64
	opIdx   int64
	pmStats sim.AccessStats
}

// nextSeq allocates the canonical sequence for this thread's next op.
func (t *Thread) nextSeq() uint64 {
	t.opIdx++
	return t.seqBase + uint64((t.opIdx-1)*int64(t.N)+int64(t.ID)) + 1
}

// Host returns the owning host.
func (t *Thread) Host() *Host { return t.host }

// Space returns the unified memory space.
func (t *Thread) Space() *memsys.Space { return t.host.Space }

// Clock returns the thread's accumulated simulated time in this phase.
func (t *Thread) Clock() sim.Duration { return t.clock }

// Compute accounts d of computation.
func (t *Thread) Compute(d sim.Duration) {
	t.clock += sim.Duration(float64(d) * t.host.Params.CPUComputeScale)
}

// Write stores p at addr. PM stores land in the CPU caches: volatile until
// FlushRange+Drain (or durable immediately under eADR). Small scattered
// stores pay a cache-miss latency (write-allocate on PM reads the line
// from Optane first); bulk stores stream at the store bandwidth.
func (t *Thread) Write(addr uint64, p []byte) {
	sp := t.host.Space
	lines := sp.WriteCPUSeq(addr, p, t.nextSeq())
	t.unflushed = append(t.unflushed, lines...)
	par := t.host.Params
	kind := sp.KindOf(addr)
	switch kind {
	case memsys.KindPM:
		t.pmBytes += int64(len(p))
		cost := sim.DurationOfBytes(int64(len(p)), par.CPUStoreBandwidth)
		if len(p) <= par.LineSize() {
			cost = sim.MaxDuration(cost, par.PMReadLatency) // write-allocate miss
		}
		t.clock += cost
		t.recordPM(addr, len(p))
	default:
		cost := sim.DurationOfBytes(int64(len(p)), par.DRAMBandwidth)
		if len(p) <= par.LineSize() {
			cost = sim.MaxDuration(cost, par.DRAMLatency/2)
		}
		t.clock += cost
	}
}

// Read loads len(p) bytes at addr. Small scattered reads pay the media
// latency; bulk reads stream at bandwidth.
func (t *Thread) Read(addr uint64, p []byte) {
	sp := t.host.Space
	sp.Read(addr, p)
	par := t.host.Params
	switch sp.KindOf(addr) {
	case memsys.KindPM:
		cost := sim.DurationOfBytes(int64(len(p)), par.PMReadBandwidth)
		if len(p) <= par.LineSize() {
			cost = sim.MaxDuration(cost, par.PMReadLatency)
		}
		t.clock += cost
	default:
		cost := sim.DurationOfBytes(int64(len(p)), par.DRAMBandwidth)
		if len(p) <= par.LineSize() {
			cost = sim.MaxDuration(cost, par.DRAMLatency)
		}
		t.clock += cost
	}
}

// Memcpy copies n bytes from src to dst through the CPU in chunks,
// accounting both the read and the write sides.
func (t *Thread) Memcpy(dst, src uint64, n int64) {
	const chunk = 1 << 16
	buf := make([]byte, chunk)
	for off := int64(0); off < n; off += chunk {
		c := n - off
		if c > chunk {
			c = chunk
		}
		t.Read(src+uint64(off), buf[:c])
		t.Write(dst+uint64(off), buf[:c])
	}
}

// FlushRange issues CLFLUSHOPT for every line overlapping [addr, addr+n):
// the lines become durable once the following Drain completes.
func (t *Thread) FlushRange(addr uint64, n int64) {
	if n <= 0 {
		return
	}
	p := t.host.Params
	line := uint64(p.LineSize())
	first := addr / line * line
	last := (addr + uint64(n) - 1) / line * line
	nl := int64((last-first)/line + 1)
	t.clock += sim.Duration(nl) * p.CPUFlushCost
	for la := first; la <= last; la += line {
		t.flushed = append(t.flushed, la)
	}
	// Lines covered by this flush are no longer merely "unflushed".
	t.unflushed = t.unflushed[:0]
}

// FlushWrites issues CLFLUSHOPT for exactly the lines this thread has
// stored to since its last flush, regardless of where they are.
func (t *Thread) FlushWrites() {
	p := t.host.Params
	t.clock += sim.Duration(len(t.unflushed)) * p.CPUFlushCost
	t.flushed = append(t.flushed, t.unflushed...)
	t.unflushed = t.unflushed[:0]
}

// Drain is SFENCE: it waits for pending flushes to complete, making the
// flushed lines durable.
func (t *Thread) Drain() {
	t.clock += t.host.Params.CPUDrainCost
	t.host.Space.PersistLinesSeq(t.flushed, t.nextSeq())
	t.flushed = t.flushed[:0]
}

// FlushForeignRange flushes lines that some OTHER agent (the GPU, via
// DDIO) wrote: unlike flushing one's own stores, the data still has to
// drain from the LLC into PM, so the bytes count against the CPU→PM
// bandwidth. This is GPM-NDP's persistence path (§6.1: "CPU threads have
// to flush individual cache lines", adding significant serialization).
func (t *Thread) FlushForeignRange(addr uint64, n int64) {
	if n <= 0 {
		return
	}
	p := t.host.Params
	line := uint64(p.LineSize())
	first := addr / line * line
	last := (addr + uint64(n) - 1) / line * line
	nl := int64((last-first)/line + 1)
	t.clock += sim.Duration(nl) * p.CPUFlushCost
	t.pmBytes += nl * int64(line)
	for la := first; la <= last; la += line {
		t.flushed = append(t.flushed, la)
	}
}

// PersistForeignRange is FlushForeignRange followed by Drain.
func (t *Thread) PersistForeignRange(addr uint64, n int64) {
	if t.host.Space.EADR() {
		t.clock += t.host.Params.CPUDrainCost
		return
	}
	t.FlushForeignRange(addr, n)
	t.Drain()
}

// PersistRange is the common flush-then-drain idiom.
func (t *Thread) PersistRange(addr uint64, n int64) {
	if t.host.Space.EADR() {
		// Under eADR stores are already in the persistence domain; only
		// the ordering fence remains (§3.3).
		t.clock += t.host.Params.CPUDrainCost
		return
	}
	t.FlushRange(addr, n)
	t.Drain()
}

// ---- Typed helpers ----

// WriteU32 stores a little-endian uint32.
func (t *Thread) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	t.Write(addr, b[:])
}

// ReadU32 loads a little-endian uint32.
func (t *Thread) ReadU32(addr uint64) uint32 {
	var b [4]byte
	t.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU64 stores a little-endian uint64.
func (t *Thread) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Write(addr, b[:])
}

// ReadU64 loads a little-endian uint64.
func (t *Thread) ReadU64(addr uint64) uint64 {
	var b [8]byte
	t.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteF32 stores a float32.
func (t *Thread) WriteF32(addr uint64, v float32) { t.WriteU32(addr, math.Float32bits(v)) }

// ReadF32 loads a float32.
func (t *Thread) ReadF32(addr uint64) float32 { return math.Float32frombits(t.ReadU32(addr)) }

// WriteF64 stores a float64.
func (t *Thread) WriteF64(addr uint64, v float64) { t.WriteU64(addr, math.Float64bits(v)) }

// ReadF64 loads a float64.
func (t *Thread) ReadF64(addr uint64) float64 { return math.Float64frombits(t.ReadU64(addr)) }

// recordPM feeds the thread's write-pattern statistics, chunked at Optane's
// 256B internal granularity so sequentiality is observable. Stats stay
// thread-local until Run merges them in thread-ID order — recording into
// the shared device stats from concurrent threads would make the
// sequential/random classification depend on goroutine scheduling.
func (t *Thread) recordPM(addr uint64, n int) {
	local := addr - memsys.PMBase
	for n > 0 {
		c := 256 - int(local%256)
		if c > n {
			c = n
		}
		t.pmStats.Record(local, c)
		local += uint64(c)
		n -= c
	}
}

// Run executes fn on n concurrent CPU threads and returns the phase's
// simulated duration: the slowest thread's clock, bounded below by the
// aggregate CPU→PM bandwidth for the phase's total persistent traffic.
func (h *Host) Run(n int, fn func(*Thread)) sim.Duration {
	if n < 1 {
		n = 1
	}
	seqBase := h.Space.SeqMark()
	threads := make([]*Thread, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		threads[i] = &Thread{host: h, ID: i, N: n, seqBase: seqBase}
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			fn(t)
		}(threads[i])
	}
	wg.Wait()
	var crit sim.Duration
	var pmBytes int64
	var maxOps int64
	for _, t := range threads {
		if t.clock > crit {
			crit = t.clock
		}
		pmBytes += t.pmBytes
		if t.opIdx > maxOps {
			maxOps = t.opIdx
		}
		// Thread-ID order: deterministic regardless of scheduling.
		h.Space.PM.WriteStats.Merge(&t.pmStats)
	}
	h.Space.SeqAdvance(seqBase + uint64(maxOps)*uint64(n))
	h.Space.DrainPersistence()
	bound := sim.DurationOfBytes(pmBytes, h.Params.CPUPMBandwidth(n))
	return sim.MaxDuration(crit, bound)
}
