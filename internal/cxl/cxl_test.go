package cxl

import (
	"encoding/binary"
	"testing"

	gpm "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func ctxWithLLC(t *testing.T, llcBytes int64) *gpm.Context {
	t.Helper()
	p := sim.Default()
	p.LLCCapacity = llcBytes
	return gpm.NewContext(p, memsys.Config{HBMSize: 2 << 20, DRAMSize: 2 << 20, PMSize: 8 << 20})
}

func TestGPFPersistsEverything(t *testing.T) {
	c := ctxWithLLC(t, 1<<20)
	addr := c.Space.AllocPM(4096, 0)
	// CXL-style: device stores land in caches (DDIO analog stays on).
	c.Launch("cxl-write", 1, 64, func(th *gpu.Thread) {
		th.StoreU64(addr+uint64(th.GlobalID())*8, uint64(th.GlobalID())+1)
	})
	if c.Space.Persisted(addr, 512) {
		t.Fatal("writes durable before GPF?")
	}
	d := GPF(c)
	if d < GPFBase {
		t.Errorf("GPF cost %v below base", d)
	}
	c.Crash()
	for i := 0; i < 64; i++ {
		if got := c.Space.ReadU64(addr + uint64(i)*8); got != uint64(i)+1 {
			t.Fatalf("slot %d = %d after GPF+crash", i, got)
		}
	}
}

func TestGPFCostScalesWithDirtyFootprint(t *testing.T) {
	small := ctxWithLLC(t, 4<<20)
	big := ctxWithLLC(t, 4<<20)
	a1 := small.Space.AllocPM(64<<10, 0)
	a2 := big.Space.AllocPM(1<<20, 0)
	small.Launch("w", 1, 256, func(th *gpu.Thread) {
		for i := th.GlobalID(); i < 1<<10; i += 256 {
			th.StoreU64(a1+uint64(i)*64, 1)
		}
	})
	big.Launch("w", 4, 256, func(th *gpu.Thread) {
		for i := th.GlobalID(); i < 1<<14; i += 1024 {
			th.StoreU64(a2+uint64(i)*64, 1)
		}
	})
	if GPF(small) >= GPF(big) {
		t.Error("GPF of a small dirty footprint should cost less than a large one")
	}
}

// TestCXLTornWriteAheadLog reproduces §3.3's core argument mechanically:
// under CXL-attached PM with GPF as the only persist, a write-ahead-logged
// update can become torn — cache evictions persist DATA lines while the
// log's tail line (hot, constantly rewritten) stays cached, so after a
// crash the durable image contains new data with no log entry to undo it.
// The identical kernel under GPM (explicit in-kernel persist ordering)
// recovers exactly.
func TestCXLTornWriteAheadLog(t *testing.T) {
	const k = 24 // sequential logged updates by one thread
	run := func(gpmMode bool) (torn bool) {
		// A tiny LLC (8 lines) forces natural evictions mid-transaction.
		c := ctxWithLLC(t, 8*64)
		data, err := c.Map("/pm/cxl-data", k*64, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			c.Space.WriteU64(data.Addr+uint64(i)*64, uint64(i))
		}
		c.Space.PersistRange(data.Addr, k*64)
		log, err := c.LogCreateHCL("/pm/cxl-log", 1<<18, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if gpmMode {
			c.PersistBegin()
		}
		c.Launch("tx", 1, 1, func(th *gpu.Thread) {
			for i := 0; i < k; i++ {
				addr := data.Addr + uint64(i)*64
				var e [8]byte
				binary.LittleEndian.PutUint64(e[:], th.LoadU64(addr))
				if err := log.Insert(th, e[:], -1); err != nil {
					t.Error(err)
					return
				}
				th.StoreU64(addr, 0xbad0000+uint64(i))
				if gpmMode {
					gpm.Persist(th)
				}
				// Under CXL there is no in-kernel persist: ordering is
				// whatever the cache replacement policy does.
			}
		})
		if gpmMode {
			c.PersistEnd()
		}
		// Power fails before any GPF / commit.
		c.Crash()
		// Recovery: undo whatever the durable log contains.
		l2, err := c.LogOpen("/pm/cxl-log")
		if err != nil {
			t.Fatal(err)
		}
		if gpmMode {
			c.PersistBegin()
		}
		c.Launch("undo", 1, 1, func(th *gpu.Thread) {
			var e [8]byte
			for l2.Read(th, e[:], -1) == nil {
				// The log records old values newest-first; we only know
				// the value, not the slot, in this simplified demo — undo
				// by value scan.
				old := binary.LittleEndian.Uint64(e[:])
				if old < k {
					th.StoreU64(data.Addr+old*64, old)
					gpm.Persist(th)
				}
				if err := l2.Remove(th, 8, -1); err != nil {
					break
				}
			}
		})
		if gpmMode {
			c.PersistEnd()
		}
		c.Crash()
		for i := 0; i < k; i++ {
			if c.Space.ReadU64(data.Addr+uint64(i)*64) != uint64(i) {
				return true // durable new data the log could not undo
			}
		}
		return false
	}

	if !run(false) {
		t.Error("CXL-GPF run recovered cleanly; expected a torn write-ahead log (the §3.3 hazard)")
	}
	if run(true) {
		t.Error("GPM run tore; explicit in-kernel persist ordering must recover exactly")
	}
}

// TestGPFCoarseCheckpointWorks shows the flip side the paper concedes:
// coarse-grained uses (checkpoint-like whole-structure persists at known
// quiesce points) are expressible with GPF alone.
func TestGPFCoarseCheckpointWorks(t *testing.T) {
	c := ctxWithLLC(t, 1<<20)
	n := int64(64 << 10)
	src := c.Space.AllocHBM(n)
	dst := c.Space.AllocPM(n, 0)
	c.Space.WriteCPU(src, make([]byte, n))
	c.Launch("ckpt", int(n/16/256), 256, func(th *gpu.Thread) {
		off := uint64(th.GlobalID()) * 16
		var tmp [16]byte
		th.LoadBytes(src+off, tmp[:])
		th.StoreBytes(dst+off, tmp[:])
	})
	GPF(c)
	if !c.Space.Persisted(dst, int(n)) {
		t.Error("GPF checkpoint not durable")
	}
}
