// Package cxl models the paper's §3.3 discussion of CXL 2.0-attached
// persistent memory as a forward-looking extension: devices get coherent
// load/store access to PM, and the host can issue a Global Persistent Flush
// (GPF) that drains ALL device caches into the persistence domain.
//
// The paper's argument — reproduced mechanically by this package and its
// tests — is that CXL-attached PM alone cannot substitute for GPM: GPF is
// host-issued and global, so a kernel cannot order its log entry ahead of
// its data update. Between GPFs, cache evictions persist lines in an order
// the program does not control, so write-ahead logging's invariant (log
// durable before data) silently breaks. GPM's in-kernel, thread-scoped
// persist is precisely what GPF does not provide; GPM's design principles
// would need to be extended to CXL-attached PM (§3.3).
package cxl

import (
	gpm "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/sim"
)

// GPFBase is the fixed cost of issuing the Global Persistent Flush from
// the host (instruction + protocol handshake across the hierarchy).
const GPFBase = 3 * sim.Microsecond

// GPF issues a Global Persistent Flush: every dirty line cached anywhere in
// the coherence domain drains to PM. It is host-issued, global (it cannot
// name a structure or a thread), and its cost scales with the total dirty
// footprint — all three properties are what make it unsuitable as a
// fine-grained persist primitive. The simulated duration is accounted on
// the context timeline under "gpf" and returned.
func GPF(ctx *gpm.Context) sim.Duration {
	lines := ctx.Space.LLC.ResidentLines()
	ctx.Space.LLC.FlushAll()
	d := GPFBase + sim.DurationOfBytes(int64(lines)*int64(ctx.Params.LineSize()), ctx.Params.PMSeqAlignedBW)
	ctx.Timeline.Add("gpf", d)
	return d
}
