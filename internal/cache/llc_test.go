package cache

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
)

func newDomain(t *testing.T, llcBytes int64) (*Domain, *pmem.Device) {
	t.Helper()
	p := sim.Default()
	p.LLCCapacity = llcBytes
	dev := pmem.New(p, 1<<20)
	return NewDomain(p, dev), dev
}

func TestCachedLinesStayVolatile(t *testing.T) {
	d, dev := newDomain(t, 1<<16)
	lines := dev.Write(0, []byte{1})
	d.CacheLines(lines, 1)
	d.Drain()
	if dev.Persisted(0, 1) {
		t.Error("DDIO-cached write must not be durable")
	}
	if !d.Resident(0) {
		t.Error("line not resident")
	}
}

func TestFlushPersists(t *testing.T) {
	d, dev := newDomain(t, 1<<16)
	lines := dev.Write(0, []byte{1})
	d.CacheLines(lines, 1)
	d.FlushLines(lines, 2)
	d.Drain()
	if !dev.Persisted(0, 1) {
		t.Error("flushed line not durable")
	}
	if d.Resident(0) {
		t.Error("flushed line still resident")
	}
}

func TestFlushBeforeRewriteLeavesLineDirty(t *testing.T) {
	// A flush sequenced BEFORE the line's most recent write must not
	// persist that newer write: the line stays dirty.
	d, dev := newDomain(t, 1<<16)
	d.CacheLines(dev.WriteSeq(0, []byte{1}, 1), 1)
	d.CacheLines(dev.WriteSeq(0, []byte{2}, 3), 3)
	d.FlushLines([]uint64{0}, 2)
	d.Drain()
	if dev.Persisted(0, 1) {
		t.Error("flush persisted a write sequenced after it")
	}
}

func TestNaturalEvictionPersists(t *testing.T) {
	// Capacity of 4 lines: the 5th insert evicts the 1st, persisting it.
	d, dev := newDomain(t, 4*64)
	for i := 0; i < 5; i++ {
		lines := dev.Write(uint64(i)*64, []byte{byte(i + 1)})
		d.CacheLines(lines, uint64(i+1))
	}
	d.Drain()
	if !dev.Persisted(0, 1) {
		t.Error("evicted line should be durable")
	}
	if dev.Persisted(4*64, 1) {
		t.Error("most recent line should still be volatile")
	}
	if d.Evictions() != 1 {
		t.Errorf("evictions = %d", d.Evictions())
	}
	if d.ResidentLines() != 4 {
		t.Errorf("resident = %d", d.ResidentLines())
	}
}

func TestRewriteDoesNotDoubleEvict(t *testing.T) {
	d, dev := newDomain(t, 4*64)
	for i := 0; i < 8; i++ {
		lines := dev.Write(0, []byte{byte(i)}) // same line over and over
		d.CacheLines(lines, uint64(i+1))
	}
	if d.Evictions() != 0 {
		t.Errorf("rewriting one line caused %d evictions", d.Evictions())
	}
	if d.ResidentLines() != 1 {
		t.Errorf("resident = %d", d.ResidentLines())
	}
}

func TestEADRPersistsImmediately(t *testing.T) {
	d, dev := newDomain(t, 1<<16)
	d.SetEADR(true)
	if !d.EADR() {
		t.Error("EADR not set")
	}
	lines := dev.Write(0, []byte{1})
	d.CacheLines(lines, 1)
	d.Drain()
	if !dev.Persisted(0, 1) {
		t.Error("eADR write must be durable at the LLC")
	}
}

func TestFlushAll(t *testing.T) {
	d, dev := newDomain(t, 1<<16)
	for i := 0; i < 10; i++ {
		d.CacheLines(dev.Write(uint64(i)*64, []byte{1}), uint64(i+1))
	}
	d.FlushAll()
	if d.ResidentLines() != 0 {
		t.Error("FlushAll left residents")
	}
	if !dev.Persisted(0, 640) {
		t.Error("FlushAll did not persist")
	}
}

func TestCrashDiscardsResidency(t *testing.T) {
	d, dev := newDomain(t, 1<<16)
	d.CacheLines(dev.Write(0, []byte{1}), 1)
	d.Crash()
	dev.Crash()
	if d.ResidentLines() != 0 {
		t.Error("crash left residency")
	}
	got := make([]byte, 1)
	dev.Read(0, got)
	if got[0] != 0 {
		t.Error("LLC-resident write survived crash")
	}
}

func TestUndrainedEventsDieWithCrash(t *testing.T) {
	// Buffered (never-drained) traffic is in flight at the failure instant:
	// a crash discards it before it can influence residency or durability.
	d, dev := newDomain(t, 1<<16)
	d.CacheLines(dev.Write(0, []byte{1}), 1)
	d.FlushLines([]uint64{0}, 2)
	d.Crash()
	if dev.Persisted(0, 1) {
		t.Error("in-flight flush persisted across a crash")
	}
}
