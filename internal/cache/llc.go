// Package cache models the volatile cache domain in front of persistent
// memory: the Xeon last-level cache that absorbs inbound I/O writes when
// Data Direct I/O (DDIO) is enabled, the CPU caches that hold ordinary
// stores until CLFLUSHOPT, and the eADR variant in which the whole cache
// hierarchy joins the persistence domain.
//
// The domain does not hold data — the pmem.Device's contents are always
// current. It tracks *which* dirty lines are cache-resident, evicts them
// FIFO when capacity is exceeded (a natural eviction writes the line back
// to media, making it durable), and translates flushes into persists.
package cache

import (
	"sync"

	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Domain is the volatile cache domain over one PM device.
type Domain struct {
	params *sim.Params
	dev    *pmem.Device

	mu       sync.Mutex
	resident map[uint64]uint64 // line -> generation
	queue    []fifoEntry
	capLines int
	gen      uint64

	eADR      bool
	evictions int64

	// Telemetry mirrors; nil (no-op) until AttachTelemetry.
	telEvictions *telemetry.Counter
	telFlushed   *telemetry.Counter
	telResident  *telemetry.Gauge
}

// AttachTelemetry mirrors eviction/flush activity into the registry under
// the llc.* namespace. Passing a nil registry detaches.
func (d *Domain) AttachTelemetry(r *telemetry.Registry) {
	d.telEvictions = r.Counter("llc.evictions")
	d.telFlushed = r.Counter("llc.flushed_lines")
	d.telResident = r.Gauge("llc.resident_lines")
}

type fifoEntry struct {
	line uint64
	gen  uint64
}

// NewDomain returns a cache domain over dev sized from params.LLCCapacity.
func NewDomain(params *sim.Params, dev *pmem.Device) *Domain {
	capLines := int(params.LLCCapacity) / params.LineSize()
	if capLines < 1 {
		capLines = 1
	}
	return &Domain{
		params:   params,
		dev:      dev,
		resident: make(map[uint64]uint64),
		capLines: capLines,
	}
}

// SetEADR switches the domain into eADR mode: cached lines are inside the
// persistence domain, so caching a line immediately makes it durable.
func (d *Domain) SetEADR(on bool) {
	d.mu.Lock()
	d.eADR = on
	d.mu.Unlock()
}

// EADR reports whether eADR mode is enabled.
func (d *Domain) EADR() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eADR
}

// CacheLines records that the given dirty PM lines are now cache-resident.
// Under eADR they are persisted instantly; otherwise they stay volatile
// until flushed or naturally evicted. Lines evicted to make room are written
// back to media (persisted).
func (d *Domain) CacheLines(lines []uint64) {
	d.mu.Lock()
	if d.eADR {
		d.mu.Unlock()
		d.dev.PersistLines(lines)
		return
	}
	var evicted []uint64
	for _, la := range lines {
		d.gen++
		d.resident[la] = d.gen
		d.queue = append(d.queue, fifoEntry{la, d.gen})
		for len(d.resident) > d.capLines && len(d.queue) > 0 {
			e := d.queue[0]
			d.queue = d.queue[1:]
			if g, ok := d.resident[e.line]; ok && g == e.gen {
				delete(d.resident, e.line)
				evicted = append(evicted, e.line)
				d.evictions++
			}
		}
	}
	nResident := len(d.resident)
	d.mu.Unlock()
	d.telEvictions.Add(int64(len(evicted)))
	d.telResident.Set(int64(nResident))
	d.dev.PersistLines(evicted)
}

// FlushLines writes the given lines back to media (CLFLUSHOPT semantics):
// they become durable and leave the cache.
func (d *Domain) FlushLines(lines []uint64) {
	d.mu.Lock()
	for _, la := range lines {
		delete(d.resident, la)
	}
	nResident := len(d.resident)
	d.mu.Unlock()
	d.telFlushed.Add(int64(len(lines)))
	d.telResident.Set(int64(nResident))
	d.dev.PersistLines(lines)
}

// FlushAll writes back every resident line (wbinvd-scale flush, used by
// eADR power-fail drain modeling and tests).
func (d *Domain) FlushAll() {
	d.mu.Lock()
	lines := make([]uint64, 0, len(d.resident))
	for la := range d.resident {
		lines = append(lines, la)
	}
	d.resident = make(map[uint64]uint64)
	d.queue = nil
	d.mu.Unlock()
	d.telFlushed.Add(int64(len(lines)))
	d.telResident.Set(0)
	d.dev.PersistLines(lines)
}

// Resident reports whether the line containing addr is cache-resident.
func (d *Domain) Resident(addr uint64) bool {
	la := addr / uint64(d.params.LineSize()) * uint64(d.params.LineSize())
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.resident[la]
	return ok
}

// ResidentLines returns the number of dirty lines currently held.
func (d *Domain) ResidentLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.resident)
}

// Evictions returns the number of natural (capacity) evictions so far.
func (d *Domain) Evictions() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.evictions
}

// Crash discards all cache-resident state. The underlying device's own
// Crash must be invoked separately; this only clears residency tracking.
func (d *Domain) Crash() {
	d.mu.Lock()
	d.resident = make(map[uint64]uint64)
	d.queue = nil
	d.mu.Unlock()
	d.telResident.Set(0)
}
