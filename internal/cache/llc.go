// Package cache models the volatile cache domain in front of persistent
// memory: the Xeon last-level cache that absorbs inbound I/O writes when
// Data Direct I/O (DDIO) is enabled, the CPU caches that hold ordinary
// stores until CLFLUSHOPT, and the eADR variant in which the whole cache
// hierarchy joins the persistence domain.
//
// The domain does not hold data — the pmem.Device's contents are always
// current. It tracks *which* dirty lines are cache-resident, evicts them
// FIFO when capacity is exceeded (a natural eviction writes the line back
// to media, making it durable), and translates flushes into persists.
//
// Cache/flush traffic arrives concurrently from many worker goroutines when
// the parallel execution engine is active, so the domain is event-sourced:
// CacheLines/FlushLines only append an event stamped with the access's
// canonical sequence number, and Drain replays the buffered events in
// sequence order at a quiescent point (kernel exit, CPU phase exit, crash,
// or any state query). FIFO insertion order, eviction decisions, and the
// resulting durable set are therefore identical no matter how the OS
// scheduled the workers.
package cache

import (
	"sort"
	"sync"

	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Domain is the volatile cache domain over one PM device.
type Domain struct {
	params *sim.Params
	dev    *pmem.Device

	mu       sync.Mutex
	events   []domainEvent
	resident map[uint64]uint64 // line -> generation
	queue    []fifoEntry
	capLines int
	gen      uint64

	eADR      bool
	evictions int64
	flushed   int64

	// Telemetry mirrors; nil (no-op) until AttachTelemetry.
	telEvictions *telemetry.Counter
	telFlushed   *telemetry.Counter
	telResident  *telemetry.Gauge
}

// AttachTelemetry mirrors eviction/flush activity into the registry under
// the llc.* namespace. Passing a nil registry detaches.
func (d *Domain) AttachTelemetry(r *telemetry.Registry) {
	d.telEvictions = r.Counter("llc.evictions")
	d.telFlushed = r.Counter("llc.flushed_lines")
	d.telResident = r.Gauge("llc.resident_lines")
}

type domainEvent struct {
	flush bool
	lines []uint64
	seq   uint64
}

type fifoEntry struct {
	line uint64
	gen  uint64
}

// NewDomain returns a cache domain over dev sized from params.LLCCapacity.
func NewDomain(params *sim.Params, dev *pmem.Device) *Domain {
	capLines := int(params.LLCCapacity) / params.LineSize()
	if capLines < 1 {
		capLines = 1
	}
	return &Domain{
		params:   params,
		dev:      dev,
		resident: make(map[uint64]uint64),
		capLines: capLines,
	}
}

// SetEADR switches the domain into eADR mode: cached lines are inside the
// persistence domain, so caching a line immediately makes it durable.
func (d *Domain) SetEADR(on bool) {
	d.mu.Lock()
	d.eADR = on
	d.mu.Unlock()
}

// EADR reports whether eADR mode is enabled.
func (d *Domain) EADR() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.eADR
}

// CacheLines records that the given dirty PM lines became cache-resident by
// the write with canonical sequence seq. The event is buffered; Drain
// applies it. The domain takes ownership of lines.
func (d *Domain) CacheLines(lines []uint64, seq uint64) {
	if len(lines) == 0 {
		return
	}
	d.mu.Lock()
	d.events = append(d.events, domainEvent{flush: false, lines: lines, seq: seq})
	d.mu.Unlock()
}

// FlushLines records a CLFLUSHOPT of the given lines at canonical sequence
// seq: when drained, they leave the cache and persist — unless a line was
// re-dirtied by a write that canonically follows the flush, in which case it
// stays dirty. The domain takes ownership of lines.
func (d *Domain) FlushLines(lines []uint64, seq uint64) {
	if len(lines) == 0 {
		return
	}
	d.mu.Lock()
	d.events = append(d.events, domainEvent{flush: true, lines: lines, seq: seq})
	d.mu.Unlock()
}

// Drain replays all buffered cache/flush events in canonical sequence
// order. It must be called at a quiescent point: no concurrent writers may
// be appending events while the drain runs (kernel launches and CPU phases
// drain on exit; queries drain on entry).
func (d *Domain) Drain() {
	d.mu.Lock()
	d.drainLocked()
	d.mu.Unlock()
}

func (d *Domain) drainLocked() {
	if len(d.events) == 0 {
		return
	}
	events := d.events
	d.events = nil
	// Canonical sequences are unique per access; SliceStable keeps the
	// replay deterministic even if a caller ever reused one.
	sort.SliceStable(events, func(i, j int) bool { return events[i].seq < events[j].seq })

	var persisted []persistReq
	var evictedNow, flushedNow int64
	for _, ev := range events {
		if ev.flush {
			for _, la := range ev.lines {
				delete(d.resident, la)
				persisted = append(persisted, persistReq{la, ev.seq})
			}
			d.flushed += int64(len(ev.lines))
			flushedNow += int64(len(ev.lines))
			continue
		}
		if d.eADR {
			// Inside the persistence domain: the write is durable the
			// instant it is cached. The seq guard keeps canonically
			// later (still-buffered) writes to the same line dirty.
			for _, la := range ev.lines {
				persisted = append(persisted, persistReq{la, ev.seq})
			}
			continue
		}
		for _, la := range ev.lines {
			d.gen++
			d.resident[la] = d.gen
			d.queue = append(d.queue, fifoEntry{la, d.gen})
			for len(d.resident) > d.capLines && len(d.queue) > 0 {
				e := d.queue[0]
				d.queue = d.queue[1:]
				if g, ok := d.resident[e.line]; ok && g == e.gen {
					delete(d.resident, e.line)
					persisted = append(persisted, persistReq{e.line, ev.seq})
					d.evictions++
					evictedNow++
				}
			}
		}
	}
	d.telEvictions.Add(evictedNow)
	d.telFlushed.Add(flushedNow)
	d.telResident.Set(int64(len(d.resident)))
	for _, pr := range persisted {
		d.dev.PersistLineBefore(pr.line, pr.seq)
	}
}

type persistReq struct {
	line uint64
	seq  uint64
}

// FlushAll writes back every resident line (wbinvd-scale flush, used by
// eADR power-fail drain modeling and tests).
func (d *Domain) FlushAll() {
	d.mu.Lock()
	d.drainLocked()
	lines := make([]uint64, 0, len(d.resident))
	for la := range d.resident {
		lines = append(lines, la)
	}
	d.resident = make(map[uint64]uint64)
	d.queue = nil
	d.flushed += int64(len(lines))
	d.mu.Unlock()
	d.telFlushed.Add(int64(len(lines)))
	d.telResident.Set(0)
	// Deterministic write-back order for the fault models downstream.
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	d.dev.PersistLines(lines)
}

// Resident reports whether the line containing addr is cache-resident.
func (d *Domain) Resident(addr uint64) bool {
	la := addr / uint64(d.params.LineSize()) * uint64(d.params.LineSize())
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainLocked()
	_, ok := d.resident[la]
	return ok
}

// ResidentLines returns the number of dirty lines currently held.
func (d *Domain) ResidentLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainLocked()
	return len(d.resident)
}

// Evictions returns the number of natural (capacity) evictions so far.
func (d *Domain) Evictions() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainLocked()
	return d.evictions
}

// Crash discards all cache-resident state, including buffered events that
// were never drained — they are in-flight traffic lost with the power. The
// underlying device's own Crash must be invoked separately; this only
// clears residency tracking.
func (d *Domain) Crash() {
	d.mu.Lock()
	d.events = nil
	d.resident = make(map[uint64]uint64)
	d.queue = nil
	d.mu.Unlock()
	d.telResident.Set(0)
}
