package pcie

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

func TestTransferTime(t *testing.T) {
	p := sim.Default()
	l := NewLink(p)
	// 13 GB at 13 GB/s = 1 s.
	if got := l.TransferTime(13e9); got != sim.Second {
		t.Errorf("TransferTime = %v", got)
	}
	if l.TransferTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
}

func TestConcurrencyBound(t *testing.T) {
	p := sim.Default()
	l := NewLink(p)
	one := l.ConcurrencyBound(int64(p.PCIeMaxInflight))
	if one != p.PCIeRTT {
		t.Errorf("inflight-many txns should take one RTT, got %v", one)
	}
	if l.ConcurrencyBound(0) != 0 {
		t.Error("zero txns should be free")
	}
	// Degenerate params must not divide by zero.
	z := &sim.Params{PCIeRTT: 100}
	lz := NewLink(z)
	if lz.ConcurrencyBound(10) <= 0 {
		t.Error("zero inflight should clamp to 1")
	}
}

func TestTrafficAccounting(t *testing.T) {
	l := NewLink(sim.Default())
	l.RecordUp(1000, 10)
	l.RecordDown(500, 5)
	if l.BytesUp() != 1000 || l.BytesDown() != 500 {
		t.Errorf("traffic = %d up, %d down", l.BytesUp(), l.BytesDown())
	}
	l.Reset()
	if l.BytesUp() != 0 || l.BytesDown() != 0 {
		t.Error("reset failed")
	}
}

func TestDMAIncludesInitOverhead(t *testing.T) {
	p := sim.Default()
	l := NewLink(p)
	d := NewDMA(l)
	small := d.TransferUp(64)
	if small < p.DMAInit {
		t.Errorf("tiny DMA (%v) must pay initiation (%v)", small, p.DMAInit)
	}
	big := d.TransferUp(64 << 20)
	if big <= small {
		t.Error("larger transfers must take longer")
	}
	if l.BytesUp() != 64+(64<<20) {
		t.Errorf("DMA traffic not recorded: %d", l.BytesUp())
	}
	down := d.TransferDown(1 << 20)
	if down <= 0 || l.BytesDown() != 1<<20 {
		t.Error("down transfer not accounted")
	}
	if d.TransferUp(0) != 0 {
		t.Error("empty DMA should be free")
	}
}
