// Package pcie models the PCIe 3.0 ×16 interconnect between the GPU and the
// host memory system: an ~13 GB/s link with per-transaction latency, a
// bounded number of outstanding operations, and a DMA engine with a fixed
// initiation cost. These three properties drive the paper's core trade-off:
// a single GPU store+fence is slower than a CPU flush+drain, but thousands
// of concurrent warps hide the latency until the link or the PM device
// saturates (§3.2, Fig 3).
package pcie

import (
	"sync"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Link models the shared GPU<->host interconnect.
type Link struct {
	params *sim.Params

	mu        sync.Mutex
	bytesUp   int64 // device -> host (writes to system memory)
	bytesDown int64 // host -> device
	txns      int64

	// Telemetry mirrors; nil (no-op) until AttachTelemetry.
	telBytesUp   *telemetry.Counter
	telBytesDown *telemetry.Counter
	telTxns      *telemetry.Counter
	telDMAs      *telemetry.Counter
}

// AttachTelemetry mirrors link traffic into the registry under the pcie.*
// namespace. Passing a nil registry detaches.
func (l *Link) AttachTelemetry(r *telemetry.Registry) {
	l.telBytesUp = r.Counter("pcie.bytes_up")
	l.telBytesDown = r.Counter("pcie.bytes_down")
	l.telTxns = r.Counter("pcie.txns")
	l.telDMAs = r.Counter("pcie.dma_transfers")
}

// NewLink returns a link model using the bandwidth/latency in params.
func NewLink(params *sim.Params) *Link {
	return &Link{params: params}
}

// RecordUp accounts bytes moving from the GPU toward host memory in txns
// link transactions.
func (l *Link) RecordUp(bytes, txns int64) {
	l.mu.Lock()
	l.bytesUp += bytes
	l.txns += txns
	l.mu.Unlock()
	l.telBytesUp.Add(bytes)
	l.telTxns.Add(txns)
}

// RecordDown accounts bytes moving from host memory toward the GPU.
func (l *Link) RecordDown(bytes, txns int64) {
	l.mu.Lock()
	l.bytesDown += bytes
	l.txns += txns
	l.mu.Unlock()
	l.telBytesDown.Add(bytes)
	l.telTxns.Add(txns)
}

// BytesUp returns total device->host bytes recorded.
func (l *Link) BytesUp() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesUp
}

// BytesDown returns total host->device bytes recorded.
func (l *Link) BytesDown() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesDown
}

// Reset clears the traffic counters.
func (l *Link) Reset() {
	l.mu.Lock()
	l.bytesUp, l.bytesDown, l.txns = 0, 0, 0
	l.mu.Unlock()
}

// TransferTime is the bandwidth-limited time to move n bytes.
func (l *Link) TransferTime(n int64) sim.Duration {
	return sim.DurationOfBytes(n, l.params.PCIeBandwidth)
}

// ConcurrencyBound is the minimum time needed to issue txns transactions
// given the link's round-trip latency and bounded outstanding operations:
// with at most PCIeMaxInflight in flight, throughput cannot exceed
// inflight/RTT transactions per second.
func (l *Link) ConcurrencyBound(txns int64) sim.Duration {
	if txns <= 0 {
		return 0
	}
	inflight := l.params.PCIeMaxInflight
	if inflight < 1 {
		inflight = 1
	}
	return sim.Duration(txns * int64(l.params.PCIeRTT) / int64(inflight))
}

// DMA models the copy engine used by cudaMemcpy-style transfers.
type DMA struct {
	link *Link
}

// NewDMA returns a DMA engine on link.
func NewDMA(link *Link) *DMA {
	return &DMA{link: link}
}

// TransferUp returns the time for one DMA transfer of n bytes from device
// memory to host memory and records the traffic: fixed initiation overhead
// plus the bandwidth term.
func (d *DMA) TransferUp(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	d.link.RecordUp(n, n/int64(d.link.params.CoalesceBytes)+1)
	d.link.telDMAs.Inc()
	return d.link.params.DMAInit + d.link.TransferTime(n)
}

// TransferDown returns the time for one DMA transfer of n bytes from host
// memory to device memory and records the traffic.
func (d *DMA) TransferDown(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	d.link.RecordDown(n, n/int64(d.link.params.CoalesceBytes)+1)
	d.link.telDMAs.Inc()
	return d.link.params.DMAInit + d.link.TransferTime(n)
}
