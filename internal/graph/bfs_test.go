package graph

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func TestBFSModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR, workloads.CPUOnly,
	} {
		t.Run(m.String(), func(t *testing.T) {
			if _, err := workloads.RunOne(New(), m, workloads.QuickConfig()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBFSGPUfsUnsupported(t *testing.T) {
	if _, err := workloads.RunOne(New(), workloads.GPUfs, workloads.QuickConfig()); err == nil {
		t.Error("BFS should not run on GPUfs")
	}
}

func TestBFSGPMLargestNativeGain(t *testing.T) {
	// The paper's standout result: iterative BFS pays CAP's DMA+persist
	// cost every level, so GPM's advantage is largest here (85× vs
	// CAP-fs in the paper).
	cfg := workloads.QuickConfig()
	g, err := workloads.RunOne(New(), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := workloads.RunOne(New(), workloads.CAPfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(fs.OpTime) / float64(g.OpTime)
	if speedup < 2.5 { // the gap widens with graph scale; see Figure 9 bench
		t.Errorf("BFS GPM speedup over CAP-fs = %.1fx, want >2.5x", speedup)
	}
}

func TestBFSCrashResume(t *testing.T) {
	cfg := workloads.QuickConfig()
	env := workloads.NewEnv(workloads.GPM, cfg)
	b := New()
	if err := b.Setup(env); err != nil {
		t.Fatal(err)
	}
	env.BeginOps()
	if err := b.RunUntilCrash(env, 100000); err != nil {
		t.Fatal(err)
	}
	env.Ctx.Crash()
	lvl := b.DurableLevel(env)
	if err := b.Recover(env); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(env); err != nil {
		t.Fatal(err)
	}
	if lvl == 0 {
		t.Skip("crash landed before first level persisted; resume still verified")
	}
	t.Logf("resumed from durable level %d of graph with %d nodes", lvl, b.Nodes())
}

func TestBFSCrashResumeViaHarness(t *testing.T) {
	r, err := workloads.RunWithCrash(New(), workloads.GPM, workloads.QuickConfig(), 150000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restore time recorded")
	}
}
