// Package graph implements the GPMbench BFS workload (§4.3): a
// level-synchronous breadth-first search over a high-diameter road-network-
// like graph (a 2-D grid with shortcut edges), persisting the cost array
// and the node search sequence (the frontier queues) to PM every iteration.
// After a crash the traversal RESUMES from the last persisted level instead
// of restarting — the paper's marquee native-persistence example (85× over
// CAP-fs, Fig 9).
package graph

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Unreached marks an unvisited node.
const Unreached = 0xffffffff

const bfsTPB = 128

// BFS is the workload.
type BFS struct {
	n int // nodes
	m int // directed edges

	// Read-only CSR in device memory (§4.3: the input graph is read onto
	// HBM once, without affecting recoverability).
	rowPtr, col uint64
	csrBytes    []byte // durable source for reload on recovery

	costHBM uint64 // working cost array (atomics live here)
	queueA  uint64 // HBM working queues (ping-pong)
	queueB  uint64
	tail    uint64 // HBM atomic tail for the next frontier

	costFile  *fsim.File // PM durable cost
	queueFile *fsim.File // PM durable search sequence (2 slots)
	metaFile  *fsim.File // PM level/slot/qlen word

	src    int
	expect []uint32
}

// New returns the BFS workload.
func New() *BFS { return &BFS{} }

// Name implements workloads.Workload.
func (b *BFS) Name() string { return "BFS" }

// Class implements workloads.Workload.
func (b *BFS) Class() string { return "native" }

// Supports implements workloads.Workload: per-thread fine-grained writes
// deadlock GPUfs (§6.1).
func (b *BFS) Supports(mode workloads.Mode) bool { return mode != workloads.GPUfs }

// Setup implements workloads.Workload.
func (b *BFS) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	w, h := cfg.BFSWidth, cfg.BFSHeight
	b.n = w * h
	b.src = 0

	// Build the grid + shortcuts graph.
	adj := make([][]uint32, b.n)
	addEdge := func(u, v int) {
		adj[u] = append(adj[u], uint32(v))
		adj[v] = append(adj[v], uint32(u))
	}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			u := r*w + c
			if c+1 < w {
				addEdge(u, u+1)
			}
			if r+1 < h {
				addEdge(u, u+w)
			}
		}
	}
	for i := 0; i < cfg.BFSShortcuts; i++ {
		addEdge(env.RNG.Intn(b.n), env.RNG.Intn(b.n))
	}
	rowPtr := make([]uint32, b.n+1)
	var cols []uint32
	for u := 0; u < b.n; u++ {
		rowPtr[u] = uint32(len(cols))
		cols = append(cols, adj[u]...)
	}
	rowPtr[b.n] = uint32(len(cols))
	b.m = len(cols)

	sp := env.Ctx.Space
	b.rowPtr = sp.AllocHBM(int64(len(rowPtr)) * 4)
	b.col = sp.AllocHBM(int64(len(cols)) * 4)
	b.csrBytes = append(u32Bytes(rowPtr), u32Bytes(cols)...)
	sp.WriteCPU(b.rowPtr, u32Bytes(rowPtr))
	sp.WriteCPU(b.col, u32Bytes(cols))
	env.Ctx.Timeline.Add("setup", sp.DMA.TransferDown(int64(len(b.csrBytes))))

	// Queues are sized by edge count: a recovery pass may enqueue
	// duplicates (one per relaxed edge in the worst case).
	b.costHBM = sp.AllocHBM(int64(b.n) * 4)
	b.queueA = sp.AllocHBM(int64(b.m) * 4)
	b.queueB = sp.AllocHBM(int64(b.m) * 4)
	b.tail = sp.AllocHBM(64)

	var err error
	if b.costFile, err = env.Ctx.FS.OpenOrCreate("/pm/bfs.cost", int64(b.n)*4, 0); err != nil {
		return err
	}
	if b.queueFile, err = env.Ctx.FS.OpenOrCreate("/pm/bfs.queue", 2*int64(b.m)*4, 0); err != nil {
		return err
	}
	if b.metaFile, err = env.Ctx.FS.OpenOrCreate("/pm/bfs.meta", 64, 0); err != nil {
		return err
	}

	// Initialize durable state: all costs unreached except the source;
	// queue slot 0 holds the source; meta = level 0, slot 0, length 1.
	unreached := make([]byte, b.n*4)
	for i := 0; i < b.n; i++ {
		binary.LittleEndian.PutUint32(unreached[i*4:], Unreached)
	}
	binary.LittleEndian.PutUint32(unreached[b.src*4:], 0)
	sp.WriteCPU(b.costFile.Mmap(), unreached)
	sp.PersistRange(b.costFile.Mmap(), len(unreached))
	sp.WriteU32(b.queueFile.Mmap(), uint32(b.src))
	sp.PersistRange(b.queueFile.Mmap(), 4)
	sp.WriteU64(b.metaFile.Mmap(), packMeta(0, 0, 1))
	sp.PersistRange(b.metaFile.Mmap(), 8)
	env.Ctx.Timeline.Add("setup", sim.DurationOfBytes(int64(b.n)*4, env.Ctx.Params.CPUPMBandwidth(cfg.CAPThreads)))

	// Working copies.
	sp.WriteCPU(b.costHBM, unreached)

	b.expect = hostBFS(rowPtr, cols, b.n, b.src)
	return nil
}

func packMeta(level, slot int, qlen uint32) uint64 {
	return uint64(level)<<48 | uint64(slot)<<32 | uint64(qlen)
}

func unpackMeta(v uint64) (level, slot int, qlen uint32) {
	return int(v >> 48), int(v >> 32 & 0xffff), uint32(v)
}

func u32Bytes(vals []uint32) []byte {
	out := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// hostBFS computes reference distances.
func hostBFS(rowPtr, cols []uint32, n, src int) []uint32 {
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src] = 0
	queue := []uint32{uint32(src)}
	for len(queue) > 0 {
		var next []uint32
		for _, u := range queue {
			for _, v := range cols[rowPtr[u]:rowPtr[u+1]] {
				if dist[v] == Unreached {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		queue = next
	}
	return dist
}

// relaxKernel processes one frontier: every thread takes one queued node,
// relaxes its edges via atomics on the working cost array, enqueues newly
// discovered nodes, and — in persistent modes — writes and persists the new
// cost and the queue entry to PM (the in-kernel byte-grained persistence
// CAP cannot express).
func (b *BFS) relaxKernel(env *workloads.Env, curQ, nextQ uint64, qlen int, level uint32, pmSlot int, direct, persist, recovery bool) gpu.Result {
	rowPtr, col, cost, tail := b.rowPtr, b.col, b.costHBM, b.tail
	pmCost := b.costFile.Mmap()
	pmQueue := b.queueFile.Mmap() + uint64(pmSlot)*uint64(b.m)*4
	blocks := (qlen + bfsTPB - 1) / bfsTPB
	return env.Ctx.Launch("bfs-relax", blocks, bfsTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= qlen {
			return
		}
		u := t.LoadU32(curQ + uint64(i)*4)
		lo := t.LoadU32(rowPtr + uint64(u)*4)
		hi := t.LoadU32(rowPtr + uint64(u+1)*4)
		newCost := level + 1
		for e := lo; e < hi; e++ {
			v := t.LoadU32(col + uint64(e)*4)
			t.Compute(4 * sim.Nanosecond)
			old := t.AtomicMin32(cost+uint64(v)*4, newCost)
			enqueue := old > newCost
			if recovery && old == newCost {
				// A pre-crash partial write already set this cost but
				// the node never made it into a durable queue; enqueue
				// it again (duplicates are benign for one level).
				enqueue = true
			}
			if !enqueue {
				continue
			}
			slot := t.AtomicAdd32(tail, 1)
			t.StoreU32(nextQ+uint64(slot)*4, v)
			if direct {
				t.StoreU32(pmCost+uint64(v)*4, newCost)
				t.StoreU32(pmQueue+uint64(slot)*4, v)
				if persist {
					gpm.Persist(t)
				}
			}
		}
	})
}

// commitLevel persists the level metadata. The iteration loop already runs
// on the CPU (kernel launches), so the 8-byte level word is persisted from
// the host — no data crosses the PCIe, and the kernel's in-place persists
// ordered before it.
func (b *BFS) commitLevel(env *workloads.Env, level, slot int, qlen uint32) {
	meta := b.metaFile.Mmap()
	env.Ctx.RunCPU("bfs-meta", 1, func(t *cpusim.Thread) {
		t.WriteU64(meta, packMeta(level, slot, qlen))
		t.PersistRange(meta, 8)
	})
}

func (b *BFS) durableMeta(env *workloads.Env) (level, slot int, qlen uint32) {
	snap := env.Ctx.Space.SnapshotPersistent(b.metaFile.Mmap(), 8)
	return unpackMeta(binary.LittleEndian.Uint64(snap))
}

// Run implements workloads.Workload.
func (b *BFS) Run(env *workloads.Env) error {
	if env.Mode == workloads.CPUOnly {
		return b.runCPU(env)
	}
	return b.run(env, false)
}

func (b *BFS) run(env *workloads.Env, recovery bool) error {
	sp := env.Ctx.Space
	direct := env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP
	persist := env.Mode.UsesGPM()

	level, slot, qlen := 0, 0, uint32(1)
	if direct {
		level, slot, qlen = b.durableMeta(env)
	}
	// Stage the current frontier into the working queue.
	q := make([]byte, int(qlen)*4)
	sp.Read(b.queueFile.Mmap()+uint64(slot)*uint64(b.m)*4, q)
	sp.WriteCPU(b.queueA, q)
	curQ, nextQ := b.queueA, b.queueB

	env.PersistKernelBegin()
	for qlen > 0 {
		sp.WriteU32(b.tail, 0)
		res := b.relaxKernel(env, curQ, nextQ, int(qlen), uint32(level), 1-slot, direct, persist, recovery)
		if res.Crashed {
			// A power failure takes the host down too: no further
			// orchestration (in particular, no metadata commit for this
			// partially-relaxed level).
			env.PersistKernelEnd()
			return nil
		}
		recovery = false
		nextLen := sp.ReadU32(b.tail)
		level++
		slot = 1 - slot
		if direct {
			if persist {
				b.commitLevel(env, level, slot, nextLen)
			}
		} else if env.Mode.UsesCAP() && env.Mode != workloads.GPMNDP {
			// CAP: the kernel computed in device memory; every iteration
			// the new frontier and its cost updates must be DMA-ed out
			// and persisted by the CPU — the per-iteration DMA initiation
			// and CPU persists are what GPM's advantage comes from
			// (§6.1). The queue tells the CPU which cost entries changed,
			// so the data volume matches GPM (write amplification 1.0,
			// Table 4); only the overheads differ.
			env.PersistKernelEnd()
			if err := b.capPersistLevel(env, nextQ, int(nextLen), slot, uint32(level)); err != nil {
				return err
			}
			env.PersistKernelBegin()
		}
		if env.Mode == workloads.GPMNDP {
			// NDP: stores went to PM directly (via the LLC), but the CPU
			// cannot know which entries changed, so it flushes the whole
			// cost array every iteration.
			env.Cap.FlushOnly(b.costFile.Mmap(), int64(b.n)*4)
			if nextLen > 0 {
				env.Cap.FlushOnly(b.queueFile.Mmap()+uint64(slot)*uint64(b.m)*4, int64(nextLen)*4)
			}
		}
		curQ, nextQ = nextQ, curQ
		qlen = nextLen
	}
	env.PersistKernelEnd()
	env.CountOps(int64(b.n))
	return nil
}

// capPersistLevel ships one iteration's frontier queue and cost updates to
// the CPU and persists them (CAP-fs via write+fsync, CAP-mm/eADR via
// mmap+flush). level is the post-increment level: the frontier's cost.
func (b *BFS) capPersistLevel(env *workloads.Env, nextQ uint64, nextLen, slot int, level uint32) error {
	if nextLen == 0 {
		return nil
	}
	sp := env.Ctx.Space
	// The CPU cannot initiate efficient fine-grained transfers (§3.2
	// [61]), so the whole cost array ships every iteration alongside the
	// frontier; the CPU then persists only the changed entries, which it
	// learns from the queue (write amplification stays ~1, Table 4, but
	// the transfer amplification is the per-iteration cost GPM avoids).
	nodes := make([]byte, nextLen*4)
	sp.Read(nextQ, nodes)
	env.Ctx.Timeline.Add("dma", sp.DMA.TransferUp(int64(b.n)*4+int64(nextLen)*4))

	pmCost := b.costFile.Mmap()
	pmQueue := b.queueFile.Mmap() + uint64(slot)*uint64(b.m)*4
	if env.Mode == workloads.CAPfs {
		var ferr error
		env.Ctx.RunCPU("cap-fs", 1, func(t *cpusim.Thread) {
			if err := b.queueFile.WriteAt(t, int64(slot)*int64(b.m)*4, nodes); err != nil {
				ferr = err
				return
			}
			// Scattered cost updates go through the file interface too.
			var val [4]byte
			for i := 0; i < nextLen; i++ {
				v := binary.LittleEndian.Uint32(nodes[i*4:])
				binary.LittleEndian.PutUint32(val[:], level)
				if err := b.costFile.WriteAt(t, int64(v)*4, val[:]); err != nil {
					ferr = err
					return
				}
			}
			b.queueFile.Fsync(t)
			b.costFile.Fsync(t)
		})
		return ferr
	}
	threads := env.Cfg.CAPThreads
	env.Ctx.RunCPU("cap-mm", threads, func(t *cpusim.Thread) {
		chunk := (nextLen + t.N - 1) / t.N
		lo, hi := t.ID*chunk, (t.ID+1)*chunk
		if lo > nextLen {
			lo = nextLen
		}
		if hi > nextLen {
			hi = nextLen
		}
		if lo >= hi {
			return
		}
		t.Write(pmQueue+uint64(lo)*4, nodes[lo*4:hi*4])
		for i := lo; i < hi; i++ {
			v := binary.LittleEndian.Uint32(nodes[i*4:])
			t.WriteU32(pmCost+uint64(v)*4, level)
		}
		t.FlushWrites()
		t.Drain()
	})
	return nil
}

// runCPU is the Fig 1b baseline: multi-threaded level-synchronous CPU BFS
// persisting cost updates each level.
func (b *BFS) runCPU(env *workloads.Env) error {
	sp := env.Ctx.Space
	threads := env.Cfg.CAPThreads
	pmCost := b.costFile.Mmap()
	rowPtr := u32sOf(b.csrBytes[:(b.n+1)*4])
	cols := u32sOf(b.csrBytes[(b.n+1)*4:])
	dist := make([]uint32, b.n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[b.src] = 0
	frontier := []uint32{uint32(b.src)}
	level := uint32(0)
	for len(frontier) > 0 {
		nexts := make([][]uint32, threads)
		env.Ctx.RunCPU("cpu-bfs", threads, func(t *cpusim.Thread) {
			chunk := (len(frontier) + t.N - 1) / t.N
			lo, hi := t.ID*chunk, (t.ID+1)*chunk
			if lo > len(frontier) {
				lo = len(frontier)
			}
			if hi > len(frontier) {
				hi = len(frontier)
			}
			var local []uint32
			var count int64
			for _, u := range frontier[lo:hi] {
				for _, v := range cols[rowPtr[u]:rowPtr[u+1]] {
					t.Compute(300 * sim.Nanosecond) // PM-resident graph: random reads pay media latency
					// Atomic claim: racers would all write the same level,
					// but only the winner persists and enqueues.
					if atomic.CompareAndSwapUint32(&dist[v], Unreached, level+1) {
						local = append(local, v)
						t.WriteU32(pmCost+uint64(v)*4, level+1)
						count++
					}
				}
			}
			if count > 0 {
				t.FlushWrites()
				t.Drain()
			}
			nexts[t.ID] = local
		})
		frontier = frontier[:0]
		for _, l := range nexts {
			frontier = append(frontier, l...)
		}
		level++
	}
	_ = sp
	env.CountOps(int64(b.n))
	return nil
}

func u32sOf(buf []byte) []uint32 {
	out := make([]uint32, len(buf)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return out
}

// Verify implements workloads.Workload: the DURABLE cost array must match
// the reference distances.
func (b *BFS) Verify(env *workloads.Env) error {
	snap := env.Ctx.Space.SnapshotPersistent(b.costFile.Mmap(), b.n*4)
	for i := 0; i < b.n; i++ {
		if got := binary.LittleEndian.Uint32(snap[i*4:]); got != b.expect[i] {
			return fmt.Errorf("bfs: durable cost[%d] = %d, want %d", i, got, b.expect[i])
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher.
func (b *BFS) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("bfs: crash study requires a GPM mode")
	}
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := b.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	if err == gpu.ErrCrashed {
		return nil
	}
	return err
}

// Recover implements workloads.Crasher: reload the read-only graph, restore
// the working cost array from durable state, and RESUME the traversal from
// the persisted level (§4.3) — the recovery pass re-relaxes the persisted
// frontier to absorb partially persisted cost writes.
func (b *BFS) Recover(env *workloads.Env) error {
	sp := env.Ctx.Space
	start := env.Ctx.Timeline.Total()
	// Reload read-only CSR (lost with device memory).
	sp.WriteCPU(b.rowPtr, b.csrBytes[:(b.n+1)*4])
	sp.WriteCPU(b.col, b.csrBytes[(b.n+1)*4:])
	env.Ctx.Timeline.Add("reload", sp.DMA.TransferDown(int64(len(b.csrBytes))))
	// Restore the working cost array from the durable copy.
	cost := sp.SnapshotPersistent(b.costFile.Mmap(), b.n*4)
	sp.WriteCPU(b.costHBM, cost)
	env.Ctx.Timeline.Add("reload", sp.DMA.TransferDown(int64(b.n)*4))
	err := b.run(env, true)
	env.AddRestore(env.Ctx.Timeline.Total() - start)
	return err
}

// DurableLevel reports the persisted BFS level (test hook).
func (b *BFS) DurableLevel(env *workloads.Env) int {
	level, _, _ := b.durableMeta(env)
	return level
}

// Nodes returns the node count (test hook).
func (b *BFS) Nodes() int { return b.n }
