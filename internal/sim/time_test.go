package sim

import "testing"

func TestDurationFormat(t *testing.T) {
	cases := []struct {
		d    Duration
		prec int
		want string
	}{
		{500 * Nanosecond, 3, "500ns"},
		{0, 3, "0ns"},
		{Microsecond, 0, "1µs"},
		{1500 * Nanosecond, 1, "1.5µs"},
		{2500 * Microsecond, 2, "2.50ms"},
		{3 * Second, 1, "3.0s"},
		{-1500 * Nanosecond, 1, "-1.5µs"},
		{1500 * Nanosecond, -1, "2µs"}, // negative precision clamps to 0
	}
	for _, c := range cases {
		if got := c.d.Format(c.prec); got != c.want {
			t.Errorf("Format(%d ns, %d) = %q, want %q", int64(c.d), c.prec, got, c.want)
		}
	}
	if got := (1500 * Microsecond).String(); got != "1.500ms" {
		t.Errorf("String() = %q", got)
	}
}

// Edge cases of Format: zero, negatives in every unit branch, exact unit
// boundaries, and sub-unit rounding (including fmt's round-half-to-even and
// rounding that crosses a unit boundary without promoting the unit).
func TestDurationFormatEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		d    Duration
		prec int
		want string
	}{
		{"zero prec 0", 0, 0, "0ns"},
		{"just below µs", 999 * Nanosecond, 3, "999ns"},
		{"negative ns branch", -999 * Nanosecond, 3, "-999ns"},
		{"exact µs boundary", Microsecond, 3, "1.000µs"},
		{"negative exact µs", -Microsecond, 0, "-1µs"},
		{"exact ms boundary", Millisecond, 3, "1.000ms"},
		{"exact s boundary", Second, 0, "1s"},
		{"negative seconds", -3 * Second, 0, "-3s"},
		{"negative ms", -2500 * Microsecond, 2, "-2.50ms"},
		// fmt rounds half to even: 1.5 -> "2" but 2.5 -> "2".
		{"round half up to even", 1500 * Nanosecond, 0, "2µs"},
		{"round half down to even", 2500 * Nanosecond, 0, "2µs"},
		{"negative round half", -1500 * Nanosecond, 0, "-2µs"},
		// Rounding can cross the unit boundary without promoting the unit:
		// the unit is chosen from the raw magnitude, then the value rounds.
		{"round crosses µs boundary", 999_999 * Nanosecond, 0, "1000µs"},
		{"round crosses ms boundary", Second - Nanosecond, 0, "1000ms"},
		{"large precision", 1500 * Nanosecond, 6, "1.500000µs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.d.Format(c.prec); got != c.want {
				t.Errorf("Format(%d ns, %d) = %q, want %q", int64(c.d), c.prec, got, c.want)
			}
		})
	}
	if got := Duration(0).String(); got != "0ns" {
		t.Errorf("Duration(0).String() = %q, want 0ns", got)
	}
}
