package sim

import "testing"

func TestDurationFormat(t *testing.T) {
	cases := []struct {
		d    Duration
		prec int
		want string
	}{
		{500 * Nanosecond, 3, "500ns"},
		{0, 3, "0ns"},
		{Microsecond, 0, "1µs"},
		{1500 * Nanosecond, 1, "1.5µs"},
		{2500 * Microsecond, 2, "2.50ms"},
		{3 * Second, 1, "3.0s"},
		{-1500 * Nanosecond, 1, "-1.5µs"},
		{1500 * Nanosecond, -1, "2µs"}, // negative precision clamps to 0
	}
	for _, c := range cases {
		if got := c.d.Format(c.prec); got != c.want {
			t.Errorf("Format(%d ns, %d) = %q, want %q", int64(c.d), c.prec, got, c.want)
		}
	}
	if got := (1500 * Microsecond).String(); got != "1.500ms" {
		t.Errorf("String() = %q", got)
	}
}
