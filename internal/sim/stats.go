package sim

import "sync"

// AccessStats classifies a stream of memory transactions to persistent
// memory. Optane's effective bandwidth depends strongly on the access
// pattern (§6.1: 12.5 GB/s sequential 256B-aligned, 3.13 GB/s sequential
// unaligned, 0.72 GB/s random): internally the device buffers writes in
// 256-byte blocks, so writes that fill aligned blocks — whether via one
// long stream or scattered block-sized bursts — run at full speed, unaligned
// streams pay read-modify-write at the block seams, and small scattered
// writes pay it on every access.
//
// Each recorded transaction's bytes are binned into one of three classes:
//
//   - fast: part of a 256B-aligned run (a sequential run that began on a
//     block boundary, or a standalone block-aligned transaction of at
//     least half a block — the coalescer's 128B unit — which its warp's
//     neighbor completes).
//   - seqUnaligned: contiguous with the previous transaction but in a run
//     that began off a block boundary.
//   - random: everything else.
type AccessStats struct {
	mu sync.Mutex

	Txns       int64 // number of transactions observed
	Bytes      int64 // total bytes moved
	Sequential int64 // transactions contiguous with the previous one
	Aligned256 int64 // transactions starting on a 256B boundary

	bytesFast   int64
	bytesSeqUna int64
	bytesRandom int64

	lastEnd    uint64
	runAligned bool
	seeded     bool
}

// Record adds one transaction at addr of n bytes.
func (s *AccessStats) Record(addr uint64, n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.Txns++
	s.Bytes += int64(n)
	seq := s.seeded && addr == s.lastEnd
	if seq {
		s.Sequential++
	} else {
		s.runAligned = addr%256 == 0
	}
	if addr%256 == 0 {
		s.Aligned256++
	}
	switch {
	case seq && s.runAligned:
		s.bytesFast += int64(n)
	case seq:
		s.bytesSeqUna += int64(n)
	case addr%256 == 0 && n >= 128:
		// A block-aligned burst: Optane's internal buffer absorbs it at
		// full speed (its partner half-block typically follows).
		s.bytesFast += int64(n)
	default:
		s.bytesRandom += int64(n)
	}
	s.lastEnd = addr + uint64(n)
	s.seeded = true
	s.mu.Unlock()
}

// Merge folds o into s. Merging loses cross-stream sequentiality, which is
// the conservative choice: independent streams do not combine into one
// sequential stream at the device.
func (s *AccessStats) Merge(o *AccessStats) {
	o.mu.Lock()
	snap := AccessSnapshot{
		Txns: o.Txns, Bytes: o.Bytes, Sequential: o.Sequential, Aligned256: o.Aligned256,
		BytesFast: o.bytesFast, BytesSeqUnaligned: o.bytesSeqUna, BytesRandom: o.bytesRandom,
	}
	o.mu.Unlock()
	s.mu.Lock()
	s.Txns += snap.Txns
	s.Bytes += snap.Bytes
	s.Sequential += snap.Sequential
	s.Aligned256 += snap.Aligned256
	s.bytesFast += snap.BytesFast
	s.bytesSeqUna += snap.BytesSeqUnaligned
	s.bytesRandom += snap.BytesRandom
	s.mu.Unlock()
}

// Reset clears the stats.
func (s *AccessStats) Reset() {
	s.mu.Lock()
	s.Txns, s.Bytes, s.Sequential, s.Aligned256 = 0, 0, 0, 0
	s.bytesFast, s.bytesSeqUna, s.bytesRandom = 0, 0, 0
	s.lastEnd, s.runAligned, s.seeded = 0, false, false
	s.mu.Unlock()
}

// AccessSnapshot is an immutable copy of AccessStats counters.
type AccessSnapshot struct {
	Txns       int64
	Bytes      int64
	Sequential int64
	Aligned256 int64

	BytesFast         int64
	BytesSeqUnaligned int64
	BytesRandom       int64
}

// SeqFraction is the fraction of transactions contiguous with their
// predecessor.
func (s AccessSnapshot) SeqFraction() float64 {
	if s.Txns == 0 {
		return 0
	}
	return float64(s.Sequential) / float64(s.Txns)
}

// AlignedFraction is the fraction of transactions that are 256B-aligned.
func (s AccessSnapshot) AlignedFraction() float64 {
	if s.Txns == 0 {
		return 0
	}
	return float64(s.Aligned256) / float64(s.Txns)
}

// FastFraction is the fraction of bytes moved at the full block rate.
func (s AccessSnapshot) FastFraction() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.BytesFast) / float64(s.Bytes)
}

// EffectiveBandwidth blends the three Optane regimes by the byte-weighted
// class mix: block-aligned traffic at PMSeqAlignedBW, unaligned streams at
// PMSeqUnalignedBW, small scattered writes at PMRandomBW.
func (s AccessSnapshot) EffectiveBandwidth(p *Params) float64 {
	total := s.BytesFast + s.BytesSeqUnaligned + s.BytesRandom
	if total == 0 {
		return p.PMSeqAlignedBW
	}
	return (float64(s.BytesFast)*p.PMSeqAlignedBW +
		float64(s.BytesSeqUnaligned)*p.PMSeqUnalignedBW +
		float64(s.BytesRandom)*p.PMRandomBW) / float64(total)
}

// Snapshot returns an immutable copy safe to read without locking.
func (s *AccessStats) Snapshot() AccessSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return AccessSnapshot{
		Txns: s.Txns, Bytes: s.Bytes, Sequential: s.Sequential, Aligned256: s.Aligned256,
		BytesFast: s.bytesFast, BytesSeqUnaligned: s.bytesSeqUna, BytesRandom: s.bytesRandom,
	}
}

// SeqFraction is the fraction of transactions contiguous with their
// predecessor.
func (s *AccessStats) SeqFraction() float64 { return s.Snapshot().SeqFraction() }

// AlignedFraction is the fraction of transactions that are 256B-aligned.
func (s *AccessStats) AlignedFraction() float64 { return s.Snapshot().AlignedFraction() }

// EffectiveBandwidth blends the three Optane bandwidth regimes by the
// observed byte-weighted access mix.
func (s *AccessStats) EffectiveBandwidth(p *Params) float64 {
	return s.Snapshot().EffectiveBandwidth(p)
}
