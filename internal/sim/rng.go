package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64). The
// workloads and the fault injector use it so that every run of the suite is
// reproducible without importing math/rand state into model packages.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit pseudo-random value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns an approximately normally distributed value with mean
// 0 and standard deviation 1 (sum of 12 uniforms, Irwin–Hall).
func (r *RNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
