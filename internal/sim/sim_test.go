package sim

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationOfBytes(t *testing.T) {
	// 13 GB at 13 GB/s should be one second.
	if got := DurationOfBytes(13e9, 13e9); got != Second {
		t.Errorf("DurationOfBytes(13e9, 13e9) = %v, want 1s", got)
	}
	if got := DurationOfBytes(0, 13e9); got != 0 {
		t.Errorf("zero bytes should take zero time, got %v", got)
	}
	if got := DurationOfBytes(100, 0); got != 0 {
		t.Errorf("zero bandwidth should yield zero (guard), got %v", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.AdvanceTo(5) // must not go backwards
	if got := c.Now(); got != 10 {
		t.Errorf("clock went backwards: %d", got)
	}
	c.AdvanceTo(50)
	if got := c.Now(); got != 50 {
		t.Errorf("AdvanceTo(50) = %d", got)
	}
	if c.Advance(-3); c.Now() != 50 {
		t.Errorf("negative advance must clamp, now=%d", c.Now())
	}
}

func TestMaxMinDuration(t *testing.T) {
	if MaxDuration(1, 2) != 2 || MaxDuration(2, 1) != 2 {
		t.Error("MaxDuration wrong")
	}
	if MinDuration(1, 2) != 1 || MinDuration(2, 1) != 1 {
		t.Error("MinDuration wrong")
	}
}

func TestAccessStatsSequentialAligned(t *testing.T) {
	p := Default()
	var s AccessStats
	for i := 0; i < 100; i++ {
		s.Record(uint64(i)*256, 256)
	}
	if f := s.SeqFraction(); f < 0.98 {
		t.Errorf("sequential stream classified %.2f sequential", f)
	}
	if f := s.AlignedFraction(); f != 1 {
		t.Errorf("aligned stream classified %.2f aligned", f)
	}
	bw := s.EffectiveBandwidth(p)
	if bw < 12e9 {
		t.Errorf("seq-aligned bandwidth = %.2f GB/s, want ~12.5", bw/1e9)
	}
}

func TestAccessStatsRandom(t *testing.T) {
	p := Default()
	var s AccessStats
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		s.Record(uint64(rng.Intn(1<<20))*64+32, 64)
	}
	bw := s.EffectiveBandwidth(p)
	if bw > 1.5e9 {
		t.Errorf("random stream bandwidth = %.2f GB/s, want near 0.72", bw/1e9)
	}
}

func TestAccessStatsSequentialUnaligned(t *testing.T) {
	p := Default()
	var s AccessStats
	for i := 0; i < 1000; i++ {
		s.Record(uint64(i)*128+32, 128) // contiguous but never 256B-aligned
	}
	bw := s.EffectiveBandwidth(p)
	if bw < 2.5e9 || bw > 4e9 {
		t.Errorf("seq-unaligned bandwidth = %.2f GB/s, want ~3.13", bw/1e9)
	}
}

func TestAccessStatsMergeAndReset(t *testing.T) {
	var a, b AccessStats
	a.Record(0, 64)
	b.Record(64, 64)
	b.Record(128, 64)
	a.Merge(&b)
	snap := a.Snapshot()
	if snap.Txns != 3 || snap.Bytes != 192 {
		t.Errorf("merge: txns=%d bytes=%d", snap.Txns, snap.Bytes)
	}
	a.Reset()
	if s := a.Snapshot(); s.Txns != 0 || s.Bytes != 0 {
		t.Errorf("reset did not clear: %+v", s)
	}
}

func TestEffectiveBandwidthBounds(t *testing.T) {
	// Property: blended bandwidth always lies within [random, seq-aligned].
	p := Default()
	f := func(addrs []uint32) bool {
		var s AccessStats
		for _, a := range addrs {
			s.Record(uint64(a), 64)
		}
		bw := s.EffectiveBandwidth(p)
		return bw >= p.PMRandomBW-1 && bw <= p.PMSeqAlignedBW+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline()
	tl.Add("kernel", 10*Microsecond)
	tl.Add("kernel", 5*Microsecond)
	tl.Add("checkpoint", 2*Microsecond)
	if got := tl.Segment("kernel"); got != 15*Microsecond {
		t.Errorf("kernel segment = %v", got)
	}
	if got := tl.Total(); got != 17*Microsecond {
		t.Errorf("total = %v", got)
	}
	segs := tl.Segments()
	if len(segs) != 2 || segs[0] != "kernel" || segs[1] != "checkpoint" {
		t.Errorf("segments = %v", segs)
	}
	if tl.String() == "" {
		t.Error("empty String()")
	}
	tl.Reset()
	if tl.Total() != 0 {
		t.Error("reset failed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(9)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 50 {
		t.Errorf("shuffle lost elements: %d distinct", len(seen))
	}
}

func TestCPUPMBandwidthCurve(t *testing.T) {
	p := Default()
	one := p.CPUPMBandwidth(1)
	plateau := p.CPUPMBandwidth(64)
	ratio := plateau / one
	// Fig 3a: 64 threads reach ~1.47× a single thread.
	if ratio < 1.40 || ratio > 1.55 {
		t.Errorf("CPU PM scaling plateau = %.3f, want ~1.47", ratio)
	}
	if p.CPUPMBandwidth(2) <= one {
		t.Error("bandwidth must grow with threads")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Default()
	if p.MaxConcurrentBlocks() != p.NumSMs*p.MaxBlocksPerSM {
		t.Error("MaxConcurrentBlocks")
	}
	if p.LineSize() != 64 {
		t.Error("LineSize default")
	}
	var z Params
	if z.MaxConcurrentBlocks() != 1 || z.LineSize() != 64 {
		t.Error("zero params should degrade gracefully")
	}
}

func TestAccessClassFastBlocks(t *testing.T) {
	p := Default()
	var s AccessStats
	// Scattered but block-aligned 128B bursts: Optane absorbs them at
	// full speed (its internal 256B buffer).
	rng := NewRNG(3)
	for i := 0; i < 500; i++ {
		s.Record(uint64(rng.Intn(1<<14))*256, 128)
	}
	snap := s.Snapshot()
	if snap.FastFraction() < 0.99 {
		t.Errorf("aligned bursts fast fraction = %.2f", snap.FastFraction())
	}
	if bw := snap.EffectiveBandwidth(p); bw < 12e9 {
		t.Errorf("aligned bursts bandwidth = %.2f GB/s", bw/1e9)
	}
}

func TestAccessClassSmallScattered(t *testing.T) {
	p := Default()
	var s AccessStats
	rng := NewRNG(4)
	for i := 0; i < 500; i++ {
		s.Record(uint64(rng.Intn(1<<14))*64+16, 16)
	}
	if bw := s.EffectiveBandwidth(p); bw > 0.8e9 {
		t.Errorf("small scattered writes bandwidth = %.2f GB/s, want ~0.72", bw/1e9)
	}
}

func TestAccessClassUnalignedRun(t *testing.T) {
	p := Default()
	var s AccessStats
	base := uint64(68) // off a 256B boundary
	for i := 0; i < 500; i++ {
		s.Record(base, 128)
		base += 128
	}
	bw := s.EffectiveBandwidth(p)
	if bw < 2.8e9 || bw > 3.5e9 {
		t.Errorf("unaligned run bandwidth = %.2f GB/s, want ~3.13", bw/1e9)
	}
}

func TestAccessClassAlignedRunAfterSplit(t *testing.T) {
	p := Default()
	var s AccessStats
	// An aligned run stays fast even when recorded as 128B halves.
	for i := 0; i < 500; i++ {
		s.Record(uint64(i)*128, 128)
	}
	if bw := s.EffectiveBandwidth(p); bw < 12e9 {
		t.Errorf("aligned run bandwidth = %.2f GB/s", bw/1e9)
	}
}
