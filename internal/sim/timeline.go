package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Timeline accumulates named segments of simulated time for one run of a
// workload. The workload harness uses it both for the total runtime and for
// per-phase breakdowns (e.g. restoration latency as a fraction of operation
// time, Table 5).
type Timeline struct {
	mu       sync.Mutex
	clock    Clock
	segments map[string]Duration
	order    []string
}

// NewTimeline returns an empty timeline starting at time zero.
func NewTimeline() *Timeline {
	return &Timeline{segments: make(map[string]Duration)}
}

// Add appends d of simulated time under the given segment name and advances
// the global clock.
func (tl *Timeline) Add(segment string, d Duration) {
	if d < 0 {
		d = 0
	}
	tl.clock.Advance(d)
	tl.mu.Lock()
	if _, ok := tl.segments[segment]; !ok {
		tl.order = append(tl.order, segment)
	}
	tl.segments[segment] += d
	tl.mu.Unlock()
}

// Now returns the current simulated time on this timeline.
func (tl *Timeline) Now() Time { return tl.clock.Now() }

// Total returns the sum of all segments.
func (tl *Timeline) Total() Duration {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var t Duration
	for _, d := range tl.segments {
		t += d
	}
	return t
}

// Segment returns the accumulated time under the given name.
func (tl *Timeline) Segment(name string) Duration {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.segments[name]
}

// Segments returns the segment names in first-use order.
func (tl *Timeline) Segments() []string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]string, len(tl.order))
	copy(out, tl.order)
	return out
}

// Reset clears all segments and rewinds the clock reference (the clock
// itself is monotonic; totals restart from zero).
func (tl *Timeline) Reset() {
	tl.mu.Lock()
	tl.segments = make(map[string]Duration)
	tl.order = nil
	tl.mu.Unlock()
}

// String renders the timeline as a sorted breakdown, largest first.
func (tl *Timeline) String() string {
	tl.mu.Lock()
	type seg struct {
		name string
		d    Duration
	}
	segs := make([]seg, 0, len(tl.segments))
	for n, d := range tl.segments {
		segs = append(segs, seg{n, d})
	}
	tl.mu.Unlock()
	sort.Slice(segs, func(i, j int) bool { return segs[i].d > segs[j].d })
	var b strings.Builder
	for _, s := range segs {
		fmt.Fprintf(&b, "%-24s %s\n", s.name, s.d)
	}
	return b.String()
}
