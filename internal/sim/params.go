package sim

// Params collects every hardware constant used by the timing models. The
// defaults approximate the paper's evaluation platform (Table 3): 4× Xeon
// Gold 6242, NVIDIA Titan RTX, 8×128 GB Optane DCPMM, PCIe 3.0 ×16.
//
// Constants that the paper reports directly (Optane's pattern-dependent
// bandwidth, PCIe peak, SM count, warp size, coalesce granularity) are taken
// verbatim; the rest are calibrated so the benchmark harness reproduces the
// paper's relative results (see EXPERIMENTS.md).
type Params struct {
	// ---- PCIe 3.0 x16 interconnect ----

	// PCIeBandwidth is the achievable link bandwidth in bytes/second
	// (~13 GB/s per §6.1).
	PCIeBandwidth float64
	// PCIeRTT is the round-trip time for a single transaction to host
	// memory and back; a system-scoped fence from the GPU pays at least
	// this much.
	PCIeRTT Duration
	// PCIeMaxInflight bounds the number of concurrent outstanding
	// operations the GPU can keep on the link (§3.2: "it typically
	// supports a limited number of concurrent operations on the PCIe").
	PCIeMaxInflight int
	// DMAInit is the fixed software cost of initiating one DMA transfer
	// (driver + engine programming).
	DMAInit Duration

	// ---- Intel Optane DC PMM ----

	// PMSeqAlignedBW is write bandwidth for sequential 256B-aligned
	// access (12.5 GB/s, §6.1).
	PMSeqAlignedBW float64
	// PMSeqUnalignedBW is write bandwidth for sequential but unaligned
	// access (3.13 GB/s, §6.1).
	PMSeqUnalignedBW float64
	// PMRandomBW is write bandwidth for random access (0.72 GB/s, §6.1).
	PMRandomBW float64
	// PMReadBandwidth is the aggregate read bandwidth of the interleaved
	// DIMMs (reads are much faster than writes on Optane).
	PMReadBandwidth float64
	// PMReadLatency is the media read latency (~3× DRAM, §2).
	PMReadLatency Duration
	// PMWriteLatency is the media write latency as observed when the WPQ
	// cannot hide it.
	PMWriteLatency Duration
	// WPQEntries is the depth of the ADR write-pending queue in 64B
	// entries; writes are durable once buffered (§2).
	WPQEntries int
	// PMDrainPerLine is the marginal fence cost per dirty line drained
	// into the ADR domain (WPQ-pipelined).
	PMDrainPerLine Duration
	// LLCFenceRTT is the cost of a system-scoped fence that only has to
	// reach the LLC (DDIO enabled, or eADR): no media drain is needed.
	LLCFenceRTT Duration
	// PMInternalBlock is Optane's internal buffering granularity (256B).
	PMInternalBlock int

	// ---- Host DRAM ----

	DRAMBandwidth float64  // bytes/second
	DRAMLatency   Duration // load-to-use

	// ---- CPU LLC / DDIO ----

	// LLCCapacity is the last-level cache capacity available to DDIO
	// (Intel reserves a slice of LLC for inbound I/O).
	LLCCapacity int64
	// LLCLineSize is the CPU cache line size (64B).
	LLCLineSize int

	// ---- GPU (Titan RTX-like) ----

	NumSMs          int // streaming multiprocessors (72)
	WarpSize        int // threads per warp (32)
	MaxBlocksPerSM  int // concurrently resident blocks per SM
	CoalesceBytes   int // HW coalescer granularity (128B, §2)
	HBMBandwidth    float64
	HBMLatency      Duration
	GPUIssueCost    Duration // warp-clock cost to issue one coalesced store
	GPUComputeScale float64  // multiplier on Compute() durations on the GPU
	KernelLaunch    Duration // fixed launch overhead per kernel
	// GPULoadStall is the warp-visible stall for a load that misses to
	// host memory, after occupancy-based latency hiding.
	GPULoadStall Duration

	// ---- CPU execution ----

	CPUComputeScale float64 // multiplier on Compute() durations on the CPU
	// CPUFlushCost is the per-line cost of CLFLUSHOPT as seen by the
	// issuing thread (they pipeline, so this is throughput not latency).
	CPUFlushCost Duration
	// CPUDrainCost is the cost of SFENCE waiting for pending flushes.
	CPUDrainCost Duration
	// CPUStoreBandwidth is a single CPU thread's sustainable copy
	// bandwidth into PM (store + flush path).
	CPUStoreBandwidth float64
	// CPUPMAggregateBW caps the total CPU-side flush bandwidth into PM
	// regardless of thread count; the small headroom over a single
	// thread's bandwidth produces CAP-mm's 1.47× scaling plateau (Fig 3a).
	CPUPMAggregateBW float64
	// CPUPMScaleK shapes how quickly CPU threads approach the aggregate
	// cap: effective bandwidth with n threads is
	// CPUPMAggregateBW·n/(n+CPUPMScaleK).
	CPUPMScaleK float64

	// ---- Filesystem (ext4-DAX-like) ----

	SyscallOverhead Duration // fixed per-syscall cost
	FsyncBase       Duration // fixed fsync cost on a DAX file
	// FSWriteBandwidth is the effective bandwidth of write(2) into a
	// DAX file (copy through the kernel).
	FSWriteBandwidth float64

	// ---- GPUfs-like layer ----

	GPUFSCallOverhead Duration // per in-kernel file call (CPU RPC)
	GPUFSPageSize     int      // transfer granularity
	GPUFSMaxFileSize  int64    // 2 GB limit (§6.1), scaled
}

// Default returns the calibrated parameter set approximating Table 3.
func Default() *Params {
	return &Params{
		PCIeBandwidth:   13e9,
		PCIeRTT:         900 * Nanosecond,
		PCIeMaxInflight: 52,
		DMAInit:         12 * Microsecond,

		PMSeqAlignedBW:   12.5e9,
		PMSeqUnalignedBW: 3.13e9,
		PMRandomBW:       0.72e9,
		PMReadBandwidth:  30e9,
		PMReadLatency:    300 * Nanosecond,
		PMWriteLatency:   100 * Nanosecond,
		WPQEntries:       64,
		PMDrainPerLine:   20 * Nanosecond,
		LLCFenceRTT:      180 * Nanosecond,
		PMInternalBlock:  256,

		DRAMBandwidth: 60e9,
		DRAMLatency:   90 * Nanosecond,

		LLCCapacity: 8 << 20, // DDIO-visible slice
		LLCLineSize: 64,

		NumSMs:          72,
		WarpSize:        32,
		MaxBlocksPerSM:  4,
		CoalesceBytes:   128,
		HBMBandwidth:    450e9,
		HBMLatency:      6 * Nanosecond,
		GPUIssueCost:    4 * Nanosecond,
		GPUComputeScale: 1.0,
		KernelLaunch:    5 * Microsecond,
		GPULoadStall:    60 * Nanosecond,

		CPUComputeScale:   1.0,
		CPUFlushCost:      22 * Nanosecond,
		CPUDrainCost:      200 * Nanosecond,
		CPUStoreBandwidth: 8e9,
		CPUPMAggregateBW:  3.3e9,
		CPUPMScaleK:       0.5,

		SyscallOverhead:  1200 * Nanosecond,
		FsyncBase:        9 * Microsecond,
		FSWriteBandwidth: 1.1e9,

		GPUFSCallOverhead: 18 * Microsecond,
		GPUFSPageSize:     4096,
		GPUFSMaxFileSize:  2 << 30,
	}
}

// MaxConcurrentBlocks is the number of threadblocks the GPU can have
// resident at once; grids larger than this execute in waves.
func (p *Params) MaxConcurrentBlocks() int {
	n := p.NumSMs * p.MaxBlocksPerSM
	if n < 1 {
		return 1
	}
	return n
}

// CPUPMBandwidth returns the effective aggregate CPU store+flush bandwidth
// into PM with n concurrent threads: a saturating curve that matches the
// paper's Fig 3a plateau (1.47× over one thread at 64 threads).
func (p *Params) CPUPMBandwidth(n int) float64 {
	if n < 1 {
		n = 1
	}
	return p.CPUPMAggregateBW * float64(n) / (float64(n) + p.CPUPMScaleK)
}

// LineSize returns the persistence-domain tracking granularity.
func (p *Params) LineSize() int {
	if p.LLCLineSize <= 0 {
		return 64
	}
	return p.LLCLineSize
}
