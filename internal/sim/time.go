// Package sim provides the simulated-time substrate shared by every model in
// gpm-go: a nanosecond-resolution clock, the hardware parameter set, access
// pattern statistics, and the latency-hiding arithmetic used to convert
// recorded memory traffic into elapsed simulated time.
//
// Everything above this package (PM device, LLC, PCIe link, GPU, CPU) is
// functional — real bytes move — while time is accounted analytically and
// deterministically: a run with the same inputs always reports the same
// simulated duration.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration semantics but is kept distinct so wall-clock time can never
// be mixed into the simulation by accident.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of µs.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating-point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string { return d.Format(3) }

// Format renders the duration with an auto-scaled unit (ns, µs, ms, or s)
// and prec fractional digits. Negative durations keep their sign; the unit
// is chosen from the magnitude.
func (d Duration) Format(prec int) string {
	if prec < 0 {
		prec = 0
	}
	mag := d
	if mag < 0 {
		mag = -mag
	}
	switch {
	case mag >= Second:
		return fmt.Sprintf("%.*fs", prec, d.Seconds())
	case mag >= Millisecond:
		return fmt.Sprintf("%.*fms", prec, d.Milliseconds())
	case mag >= Microsecond:
		return fmt.Sprintf("%.*fµs", prec, d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// DurationOfBytes returns the time to move n bytes at bw bytes/second.
func DurationOfBytes(n int64, bw float64) Duration {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return Duration(float64(n) / bw * float64(Second))
}

// Clock is a monotonically advancing simulated clock. It is safe for
// concurrent use; Advance returns the new time.
type Clock struct {
	now atomic.Int64
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		d = 0
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock to at least t (it never goes backwards).
func (c *Clock) AdvanceTo(t Time) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinDuration returns the smaller of a and b.
func MinDuration(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}
