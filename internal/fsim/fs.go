// Package fsim is a PM-backed file layer modeled on ext4-DAX: files are
// extents of the PM device mapped straight into the unified address space.
// It provides the write()+fsync() path used by the CAP-fs baseline, the
// mmap path used by CAP-mm, and a GPUfs-like in-kernel file API (§6.1).
package fsim

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Errors returned by the file layer.
var (
	ErrNotExist = errors.New("fsim: file does not exist")
	ErrExist    = errors.New("fsim: file already exists")
	ErrTooLarge = errors.New("fsim: file exceeds supported size")
)

// FS is a flat namespace of PM-resident files.
type FS struct {
	space *memsys.Space

	mu    sync.Mutex
	files map[string]*File
}

// New returns an empty filesystem over space.
func New(space *memsys.Space) *FS {
	return &FS{space: space, files: make(map[string]*File)}
}

// File is one PM-resident file. Its extent is preallocated at creation and
// mapped at a stable virtual address (DAX).
type File struct {
	fs   *FS
	name string
	addr uint64
	size int64

	mu    sync.Mutex
	dirty []span // byte ranges written via WriteAt since the last Fsync
}

type span struct{ off, n int64 }

// Create allocates a file of the given size. Alignment 0 means 256B.
func (fs *FS) Create(name string, size int64, align uint64) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	f := &File{fs: fs, name: name, addr: fs.space.AllocPM(size, align), size: size}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, nil
}

// OpenOrCreate opens name, creating it at size if absent.
func (fs *FS) OpenOrCreate(name string, size int64, align uint64) (*File, error) {
	fs.mu.Lock()
	if f, ok := fs.files[name]; ok {
		fs.mu.Unlock()
		return f, nil
	}
	fs.mu.Unlock()
	return fs.Create(name, size, align)
}

// Remove deletes a file's directory entry (the extent is not reclaimed; the
// simulated PM allocator is bump-only).
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(fs.files, name)
	return nil
}

// Space returns the underlying memory space.
func (fs *FS) Space() *memsys.Space { return fs.space }

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Mmap returns the file's stable virtual base address (DAX mmap: no copy,
// no page cache). Stores through this address follow normal CPU/GPU
// persistence rules.
func (f *File) Mmap() uint64 { return f.addr }

// WriteAt is the write(2) path used by CAP-fs: a syscall that copies p into
// the file through the kernel. The data is volatile until Fsync. Timing is
// charged to the calling CPU thread.
func (f *File) WriteAt(t *cpusim.Thread, off int64, p []byte) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("fsim: write beyond EOF in %s (off=%d n=%d size=%d)", f.name, off, len(p), f.size)
	}
	par := t.Host().Params
	t.Compute(par.SyscallOverhead)
	// The kernel's copy path is slower than a user-space store stream.
	t.Compute(sim.DurationOfBytes(int64(len(p)), par.FSWriteBandwidth))
	t.Write(f.addr+uint64(off), p)
	f.mu.Lock()
	f.dirty = append(f.dirty, span{off, int64(len(p))})
	f.mu.Unlock()
	return nil
}

// ReadAt is the read(2) path.
func (f *File) ReadAt(t *cpusim.Thread, off int64, p []byte) error {
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("fsim: read beyond EOF in %s", f.name)
	}
	par := t.Host().Params
	t.Compute(par.SyscallOverhead)
	t.Read(f.addr+uint64(off), p)
	return nil
}

// Fsync persists every range written via WriteAt since the last Fsync.
func (f *File) Fsync(t *cpusim.Thread) {
	par := t.Host().Params
	t.Compute(par.SyscallOverhead + par.FsyncBase)
	f.mu.Lock()
	dirty := f.dirty
	f.dirty = nil
	f.mu.Unlock()
	for _, s := range dirty {
		t.PersistRange(f.addr+uint64(s.off), s.n)
	}
}

// PersistUserRange persists part of a mmapped file from user space (the
// CAP-mm flush path), charged to the calling thread.
func (f *File) PersistUserRange(t *cpusim.Thread, off, n int64) {
	t.PersistRange(f.addr+uint64(off), n)
}
