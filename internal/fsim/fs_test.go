package fsim

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func newFS(t *testing.T) (*FS, *cpusim.Host, *gpu.Device) {
	t.Helper()
	sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 4 << 20, PMSize: 8 << 20})
	return New(sp), cpusim.NewHost(sp), gpu.New(sp)
}

func TestCreateOpenRemove(t *testing.T) {
	fs, _, _ := newFS(t)
	f, err := fs.Create("/a", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "/a" || f.Size() != 4096 {
		t.Error("metadata wrong")
	}
	if _, err := fs.Create("/a", 4096, 0); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := fs.Open("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing open: %v", err)
	}
	f2, err := fs.OpenOrCreate("/a", 0, 0)
	if err != nil || f2 != f {
		t.Error("OpenOrCreate should return existing")
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/a"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove: %v", err)
	}
}

func TestWriteFsyncCrash(t *testing.T) {
	fs, host, _ := newFS(t)
	f, _ := fs.Create("/data", 8192, 0)
	payload := bytes.Repeat([]byte{0x5a}, 1024)
	host.Run(1, func(th *cpusim.Thread) {
		if err := f.WriteAt(th, 100, payload); err != nil {
			t.Error(err)
		}
		f.Fsync(th)
		if err := f.WriteAt(th, 4096, payload); err != nil { // never fsynced
			t.Error(err)
		}
	})
	fs.Space().Crash()
	got := make([]byte, 1024)
	host.Run(1, func(th *cpusim.Thread) {
		if err := f.ReadAt(th, 100, got); err != nil {
			t.Error(err)
		}
	})
	if !bytes.Equal(got, payload) {
		t.Error("fsynced data lost")
	}
	fs.Space().Read(f.Mmap()+4096, got)
	if bytes.Equal(got, payload) {
		t.Error("un-fsynced write survived crash")
	}
}

func TestWriteBeyondEOF(t *testing.T) {
	fs, host, _ := newFS(t)
	f, _ := fs.Create("/small", 128, 0)
	host.Run(1, func(th *cpusim.Thread) {
		if err := f.WriteAt(th, 100, make([]byte, 100)); err == nil {
			t.Error("write past EOF should fail")
		}
		if err := f.ReadAt(th, 120, make([]byte, 100)); err == nil {
			t.Error("read past EOF should fail")
		}
	})
}

func TestFsyncCostsMoreThanNothing(t *testing.T) {
	fs, host, _ := newFS(t)
	f, _ := fs.Create("/timing", 1<<20, 0)
	buf := make([]byte, 1<<20)
	withSync := host.Run(1, func(th *cpusim.Thread) {
		_ = f.WriteAt(th, 0, buf)
		f.Fsync(th)
	})
	plain := host.Run(1, func(th *cpusim.Thread) {
		th.Write(f.Mmap(), buf)
	})
	if withSync <= plain {
		t.Errorf("fs path (%v) should cost more than raw stores (%v)", withSync, plain)
	}
}

func TestGPUFSWholeBlockRule(t *testing.T) {
	fs, _, dev := newFS(t)
	g := NewGPUFS(fs)
	f, _ := fs.Create("/g", 1<<16, 0)
	if _, err := g.GOpen("/g"); err != nil {
		t.Fatal(err)
	}
	dev.Launch("divergent", 1, 32, func(th *gpu.Thread) {
		if th.ID() == 1 {
			if err := g.GWrite(th, f, 0, []byte{1}); !errors.Is(err, ErrDivergentCall) {
				t.Errorf("divergent gwrite: %v", err)
			}
		}
	})
}

func TestGPUFSWriteAndFsync(t *testing.T) {
	fs, _, dev := newFS(t)
	g := NewGPUFS(fs)
	f, _ := fs.Create("/g2", 1<<16, 0)
	payload := bytes.Repeat([]byte{7}, 4096)
	dev.Launch("gwrite", 1, 32, func(th *gpu.Thread) {
		th.SyncBlock()
		if th.ID() != 0 {
			return
		}
		if err := g.GWrite(th, f, 0, payload); err != nil {
			t.Error(err)
		}
		g.GFsync(th, f)
	})
	fs.Space().Crash()
	got := make([]byte, 4096)
	fs.Space().Read(f.Mmap(), got)
	if !bytes.Equal(got, payload) {
		t.Error("gfsynced data lost on crash")
	}
}

func TestGPUFSFileSizeLimit(t *testing.T) {
	sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 1 << 20, DRAMSize: 1 << 20, PMSize: 4 << 20})
	sp.Params.GPUFSMaxFileSize = 1 << 10
	fs := New(sp)
	g := NewGPUFS(fs)
	if _, err := fs.Create("/big", 1<<20, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.GOpen("/big"); !errors.Is(err, ErrFileTooLarge) {
		t.Errorf("oversize gopen: %v", err)
	}
}

func TestGPUFSRead(t *testing.T) {
	fs, _, dev := newFS(t)
	g := NewGPUFS(fs)
	f, _ := fs.Create("/g3", 8192, 0)
	fs.Space().WriteCPU(f.Mmap(), []byte("hello gpufs"))
	dev.Launch("gread", 1, 32, func(th *gpu.Thread) {
		th.SyncBlock()
		if th.ID() != 0 {
			return
		}
		buf := make([]byte, 11)
		if err := g.GRead(th, f, 0, buf); err != nil {
			t.Error(err)
		} else if string(buf) != "hello gpufs" {
			t.Errorf("gread = %q", buf)
		}
	})
}

func TestPersistUserRange(t *testing.T) {
	fs, host, _ := newFS(t)
	f, _ := fs.Create("/mm", 4096, 0)
	host.Run(1, func(th *cpusim.Thread) {
		th.WriteU64(f.Mmap(), 99)
		f.PersistUserRange(th, 0, 8)
	})
	fs.Space().Crash()
	if fs.Space().ReadU64(f.Mmap()) != 99 {
		t.Error("PersistUserRange did not persist")
	}
}
