package fsim

import (
	"errors"
	"fmt"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
)

// GPUfs-layer errors mirroring the failure modes the paper reports (§6.1):
// most GPMbench workloads cannot run on GPUfs at all.
var (
	// ErrDivergentCall is returned when a single thread (not a whole
	// threadblock) invokes the API; on real GPUfs this deadlocks.
	ErrDivergentCall = errors.New("gpufs: file API must be invoked by a full threadblock")
	// ErrFileTooLarge is returned for files beyond the 2 GB limit.
	ErrFileTooLarge = errors.New("gpufs: file exceeds 2 GB limit")
)

// GPUFS is the GPUfs analog: gread/gwrite-style file calls from inside a
// GPU kernel, serviced by the CPU and the filesystem. Persistence still
// happens on the CPU (it is a CAP-class design); the in-kernel calls buy
// convenience, not byte-grained persistence.
type GPUFS struct {
	fs *FS
}

// NewGPUFS layers the in-kernel API over fs.
func NewGPUFS(fs *FS) *GPUFS {
	return &GPUFS{fs: fs}
}

// GOpen checks that a file is usable from a kernel.
func (g *GPUFS) GOpen(name string) (*File, error) {
	f, err := g.fs.Open(name)
	if err != nil {
		return nil, err
	}
	if f.size > g.fs.space.Params.GPUFSMaxFileSize {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrFileTooLarge, name, f.size)
	}
	return f, nil
}

// GWrite writes p at off from inside a kernel. It must be called by the
// block's thread 0 with the whole block at a barrier (CUDA-side GPUfs
// requires block-wide invocation; divergent calls deadlock). Each call is
// an RPC to the CPU: it serializes on the GPUfs request channel and moves
// data at page granularity over PCIe. Data is volatile until GFsync.
func (g *GPUFS) GWrite(t *gpu.Thread, f *File, off int64, p []byte) error {
	if t.ID() != 0 {
		return ErrDivergentCall
	}
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("gpufs: write beyond EOF in %s", f.name)
	}
	par := t.Device().Params
	pages := (int64(len(p)) + int64(par.GPUFSPageSize) - 1) / int64(par.GPUFSPageSize)
	// One RPC per call plus per-page staging costs, serialized on the
	// single CPU-side GPUfs daemon.
	t.Serialize("gpufs-rpc", par.GPUFSCallOverhead+sim.Duration(pages)*par.SyscallOverhead)
	t.Compute(sim.DurationOfBytes(int64(len(p)), par.PCIeBandwidth))
	// The daemon's copy lands in the file's pages; it does NOT persist.
	// The write is proxied through the calling thread so it carries that
	// thread's canonical sequence (ambient writes from inside a kernel
	// would be ordered by goroutine scheduling).
	t.HostWriteBytes(f.addr+uint64(off), p)
	f.mu.Lock()
	f.dirty = append(f.dirty, span{off, int64(len(p))})
	f.mu.Unlock()
	return nil
}

// GRead reads len(p) bytes at off from inside a kernel, with the same
// block-wide invocation rule and RPC costs as GWrite.
func (g *GPUFS) GRead(t *gpu.Thread, f *File, off int64, p []byte) error {
	if t.ID() != 0 {
		return ErrDivergentCall
	}
	if off < 0 || off+int64(len(p)) > f.size {
		return fmt.Errorf("gpufs: read beyond EOF in %s", f.name)
	}
	par := t.Device().Params
	pages := (int64(len(p)) + int64(par.GPUFSPageSize) - 1) / int64(par.GPUFSPageSize)
	t.Serialize("gpufs-rpc", par.GPUFSCallOverhead+sim.Duration(pages)*par.SyscallOverhead)
	t.Compute(sim.DurationOfBytes(int64(len(p)), par.PCIeBandwidth))
	t.Space().Read(f.addr+uint64(off), p)
	return nil
}

// GFsync asks the CPU to persist the file's dirty ranges, serialized on the
// daemon like every other call.
func (g *GPUFS) GFsync(t *gpu.Thread, f *File) {
	par := t.Device().Params
	f.mu.Lock()
	dirty := f.dirty
	f.dirty = nil
	f.mu.Unlock()
	var lines int64
	for _, s := range dirty {
		t.HostPersistRange(f.addr+uint64(s.off), int(s.n))
		lines += (s.n + int64(par.LineSize()) - 1) / int64(par.LineSize())
	}
	t.Serialize("gpufs-rpc", par.GPUFSCallOverhead+par.FsyncBase+
		sim.Duration(lines)*par.CPUFlushCost+par.CPUDrainCost)
}
