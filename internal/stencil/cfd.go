package stencil

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

const cfdGPUCost = 16 * sim.Nanosecond

// CFD is the Euler grid-solver checkpointing workload (§4.2, Rodinia's cfd
// analog reduced to a 1-D finite-volume form): density, momentum, and
// energy evolve over many timesteps via upwind fluxes; the three state
// arrays are checkpointed together as one group — semantically related
// structures restore together (§5.3).
type CFD struct {
	cells, iters, ckptEach int

	// HBM state (ping-pong ×3 variables).
	rhoA, rhoB, momA, momB, eneA, eneB uint64

	cp     *gpm.Checkpoint
	cpFile *fsim.File

	expect     [3][]float32
	expectCkpt [3][]float32
	init       [3][]float32 // initial state, for crashes before any checkpoint
	curIsA     bool
	ckpts      int
}

// NewCFD returns the CFD workload.
func NewCFD() *CFD { return &CFD{} }

// Name implements workloads.Workload.
func (c *CFD) Name() string { return "CFD" }

// Class implements workloads.Workload.
func (c *CFD) Class() string { return "checkpointing" }

// Supports implements workloads.Workload: CFD checkpoints whole arrays at
// iteration boundaries, so the coarse-grained GPUfs API can express it
// (§6.1 reports checkpointing workloads run on GPUfs, slowly).
func (c *CFD) Supports(mode workloads.Mode) bool { return mode != workloads.CPUOnly }

func cfdStep(rho, mom, ene []float32, i int) (float32, float32, float32) {
	n := len(rho)
	l := i - 1
	if l < 0 {
		l = 0
	}
	r := i + 1
	if r >= n {
		r = n - 1
	}
	// Upwind flux differences with a diffusive term.
	const dt = float32(0.05)
	fRho := (rho[r] - 2*rho[i] + rho[l]) * 0.25
	fMom := (mom[r]-2*mom[i]+mom[l])*0.25 - (rho[r]-rho[l])*0.1
	fEne := (ene[r]-2*ene[i]+ene[l])*0.25 - (mom[r]-mom[l])*0.05
	return rho[i] + dt*fRho, mom[i] + dt*fMom, ene[i] + dt*fEne
}

// Setup implements workloads.Workload.
func (c *CFD) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	c.cells, c.iters, c.ckptEach = cfg.CFDCells, cfg.CFDIters, cfg.CFDCkptEach
	n := c.cells
	sp := env.Ctx.Space
	alloc := func() uint64 { return sp.AllocHBM(int64(n) * 4) }
	c.rhoA, c.rhoB, c.momA, c.momB, c.eneA, c.eneB = alloc(), alloc(), alloc(), alloc(), alloc(), alloc()

	rho := make([]float32, n)
	mom := make([]float32, n)
	ene := make([]float32, n)
	for i := range rho {
		rho[i] = 1 + 0.1*float32(env.RNG.Float64())
		mom[i] = 0.5 * float32(env.RNG.Float64())
		ene[i] = 2 + 0.2*float32(env.RNG.Float64())
	}
	writeF32s(sp, c.rhoA, rho)
	writeF32s(sp, c.momA, mom)
	writeF32s(sp, c.eneA, ene)
	c.init = [3][]float32{
		append([]float32(nil), rho...),
		append([]float32(nil), mom...),
		append([]float32(nil), ene...),
	}
	env.Ctx.Timeline.Add("setup", sp.DMA.TransferDown(3*int64(n)*4))
	c.curIsA = true

	var err error
	if env.Mode.UsesGPM() {
		if c.cp, err = env.Ctx.CPCreate("/pm/cfd.cp", 3*int64(n)*4, 3, 1); err != nil {
			return err
		}
		for _, a := range []uint64{c.rhoA, c.momA, c.eneA} {
			if err = c.cp.Register(a, int64(n)*4, 0); err != nil {
				return err
			}
		}
	} else {
		if c.cpFile, err = env.Ctx.FS.Create("/pm/cfd.cp", 3*int64(n)*4, 0); err != nil {
			return err
		}
	}

	// Host reference.
	r2, m2, e2 := make([]float32, n), make([]float32, n), make([]float32, n)
	for it := 1; it <= c.iters; it++ {
		for i := 0; i < n; i++ {
			r2[i], m2[i], e2[i] = cfdStep(rho, mom, ene, i)
		}
		rho, r2 = r2, rho
		mom, m2 = m2, mom
		ene, e2 = e2, ene
		if it%c.ckptEach == 0 {
			c.expectCkpt = [3][]float32{
				append([]float32(nil), rho...),
				append([]float32(nil), mom...),
				append([]float32(nil), ene...),
			}
		}
	}
	c.expect = [3][]float32{rho, mom, ene}
	return nil
}

const cfdTPB = 256

func (c *CFD) stepKernel(env *workloads.Env, sr, sm, se, dr, dm, de uint64) {
	n := c.cells
	blocks := (n + cfdTPB - 1) / cfdTPB
	env.Ctx.Launch("cfd-step", blocks, cfdTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		l := i - 1
		if l < 0 {
			l = 0
		}
		r := i + 1
		if r >= n {
			r = n - 1
		}
		rhoL, rhoI, rhoR := t.LoadF32(sr+uint64(l)*4), t.LoadF32(sr+uint64(i)*4), t.LoadF32(sr+uint64(r)*4)
		momL, momI, momR := t.LoadF32(sm+uint64(l)*4), t.LoadF32(sm+uint64(i)*4), t.LoadF32(sm+uint64(r)*4)
		eneL, eneI, eneR := t.LoadF32(se+uint64(l)*4), t.LoadF32(se+uint64(i)*4), t.LoadF32(se+uint64(r)*4)
		const dt = float32(0.05)
		fRho := (rhoR - 2*rhoI + rhoL) * 0.25
		fMom := (momR-2*momI+momL)*0.25 - (rhoR-rhoL)*0.1
		fEne := (eneR-2*eneI+eneL)*0.25 - (momR-momL)*0.05
		t.Compute(cfdGPUCost)
		t.StoreF32(dr+uint64(i)*4, rhoI+dt*fRho)
		t.StoreF32(dm+uint64(i)*4, momI+dt*fMom)
		t.StoreF32(de+uint64(i)*4, eneI+dt*fEne)
	})
}

func (c *CFD) cur() (uint64, uint64, uint64) {
	if c.curIsA {
		return c.rhoA, c.momA, c.eneA
	}
	return c.rhoB, c.momB, c.eneB
}

func (c *CFD) alt() (uint64, uint64, uint64) {
	if c.curIsA {
		return c.rhoB, c.momB, c.eneB
	}
	return c.rhoA, c.momA, c.eneA
}

func (c *CFD) checkpoint(env *workloads.Env) error {
	start := env.Ctx.Timeline.Total()
	defer func() { env.AddCheckpoint(env.Ctx.Timeline.Total() - start) }()
	c.ckpts++
	r, m, e := c.cur()
	n := int64(c.cells) * 4
	if env.Mode.UsesGPM() {
		// The group was registered against the A buffers.
		if !c.curIsA {
			c.copyKernel(env, c.rhoA, r)
			c.copyKernel(env, c.momA, m)
			c.copyKernel(env, c.eneA, e)
			c.curIsA = true
		}
		_, err := c.cp.CheckpointGroup(0)
		return err
	}
	if err := workloads.PersistBuffer(env, c.cpFile, 0, r, n); err != nil {
		return err
	}
	if err := workloads.PersistBuffer(env, c.cpFile, n, m, n); err != nil {
		return err
	}
	return workloads.PersistBuffer(env, c.cpFile, 2*n, e, n)
}

func (c *CFD) copyKernel(env *workloads.Env, dst, src uint64) {
	n := c.cells
	blocks := (n + cfdTPB - 1) / cfdTPB
	env.Ctx.Launch("cfd-copy", blocks, cfdTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		t.StoreU32(dst+uint64(i)*4, t.LoadU32(src+uint64(i)*4))
	})
}

// Run implements workloads.Workload.
func (c *CFD) Run(env *workloads.Env) error {
	for it := 1; it <= c.iters; it++ {
		sr, sm, se := c.cur()
		dr, dm, de := c.alt()
		c.stepKernel(env, sr, sm, se, dr, dm, de)
		c.curIsA = !c.curIsA
		if it%c.ckptEach == 0 {
			if err := c.checkpoint(env); err != nil {
				return err
			}
		}
	}
	env.CountOps(int64(c.iters) * int64(c.cells))
	return nil
}

// Verify implements workloads.Workload.
func (c *CFD) Verify(env *workloads.Env) error {
	n := c.cells
	r, m, e := c.cur()
	for vi, addr := range []uint64{r, m, e} {
		got := readF32s(env.Ctx.Space, addr, n)
		for i := range got {
			if got[i] != c.expect[vi][i] {
				return fmt.Errorf("cfd: var %d cell %d = %v, want %v", vi, i, got[i], c.expect[vi][i])
			}
		}
	}
	if c.ckpts == 0 {
		return fmt.Errorf("cfd: no checkpoints taken")
	}
	// Durable checkpoint check.
	if env.Mode.UsesGPM() {
		sp := env.Ctx.Space
		scratch := [3]uint64{sp.AllocHBM(int64(n) * 4), sp.AllocHBM(int64(n) * 4), sp.AllocHBM(int64(n) * 4)}
		cp2, err := env.Ctx.CPOpen("/pm/cfd.cp")
		if err != nil {
			return err
		}
		for _, a := range scratch {
			if err := cp2.Register(a, int64(n)*4, 0); err != nil {
				return err
			}
		}
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
		for vi, a := range scratch {
			got := readF32s(sp, a, n)
			for i := range got {
				if got[i] != c.expectCkpt[vi][i] {
					return fmt.Errorf("cfd: restored var %d cell %d = %v, want %v", vi, i, got[i], c.expectCkpt[vi][i])
				}
			}
		}
		return nil
	}
	for vi := 0; vi < 3; vi++ {
		snap := env.Ctx.Space.SnapshotPersistent(c.cpFile.Mmap()+uint64(vi*n*4), n*4)
		got := readF32sBytes(snap)
		for i := range got {
			if got[i] != c.expectCkpt[vi][i] {
				return fmt.Errorf("cfd: durable var %d cell %d = %v, want %v", vi, i, got[i], c.expectCkpt[vi][i])
			}
		}
	}
	return nil
}
