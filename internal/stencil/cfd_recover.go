package stencil

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// RunUntilCrash implements workloads.Crasher.
func (c *CFD) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("cfd: crash study requires a GPM mode")
	}
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := c.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	if err == gpu.ErrCrashed {
		return nil
	}
	return err
}

// Recover implements workloads.Crasher: restore all three state arrays from
// the group's consistent checkpoint (they restore together, §5.3) and
// resume at the checkpointed timestep.
func (c *CFD) Recover(env *workloads.Env) error {
	restoreStart := env.Ctx.Timeline.Total()
	cp2, err := env.Ctx.CPOpen("/pm/cfd.cp")
	if err != nil {
		return err
	}
	n := int64(c.cells) * 4
	for _, a := range []uint64{c.rhoA, c.momA, c.eneA} {
		if err := cp2.Register(a, n, 0); err != nil {
			return err
		}
	}
	if cp2.Seq(0) > 0 {
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
	} else {
		// Crash landed before the first checkpoint: restart from the
		// initial conditions (a durable input in the paper's setting,
		// kept host-side here).
		sp := env.Ctx.Space
		writeF32s(sp, c.rhoA, c.init[0])
		writeF32s(sp, c.momA, c.init[1])
		writeF32s(sp, c.eneA, c.init[2])
		env.Ctx.Timeline.Add("reload", sp.DMA.TransferDown(3*n))
	}
	env.AddRestore(env.Ctx.Timeline.Total() - restoreStart)
	c.cp = cp2
	c.ckpts = int(cp2.Seq(0))
	c.curIsA = true
	startIt := int(cp2.Seq(0)) * c.ckptEach
	for it := startIt + 1; it <= c.iters; it++ {
		sr, sm, se := c.cur()
		dr, dm, de := c.alt()
		c.stepKernel(env, sr, sm, se, dr, dm, de)
		c.curIsA = !c.curIsA
		if it%c.ckptEach == 0 {
			if err := c.checkpoint(env); err != nil {
				return err
			}
		}
	}
	return nil
}
