// Package stencil implements the three grid-based GPMbench workloads: SRAD
// (speckle-reducing anisotropic diffusion — native persistence, §4.3),
// Hotspot (thermal simulation — checkpointing, §4.2), and CFD (an Euler
// grid solver — checkpointing, §4.2).
package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

const (
	sradLambda = float32(0.125)
	// Per-element costs of SRAD's gradient/exponential math.
	sradGPUCost = 20 * sim.Nanosecond
	sradCPUCost = 150 * sim.Nanosecond
)

// SRAD is the SRAD workload: each iteration computes a diffusion
// coefficient matrix from the image, then diffuses the image; both are
// persisted in place from the kernel under GPM. The paper notes its PM
// writes are streaming but NOT 256B-aligned (§6.1), which this
// implementation reproduces by deliberately misaligning the PM arrays.
type SRAD struct {
	rows, cols, iters int

	imgHBM uint64 // working image (device)
	cHBM   uint64 // working coefficients (device)

	// imgFile holds two image slots: iteration k's durable image lives
	// in slot k%2, so a crash mid-iteration never tears the image the
	// persisted counter points at.
	imgFile  *fsim.File
	cFile    *fsim.File // PM: durable coefficient matrix (recomputable)
	iterFile *fsim.File // PM: completed-iteration counter

	capImg, capC uint64 // CAP-mode staging (device) — same as working copies

	expect []float32
}

// NewSRAD returns the SRAD workload.
func NewSRAD() *SRAD { return &SRAD{} }

// Name implements workloads.Workload.
func (s *SRAD) Name() string { return "SRAD" }

// Class implements workloads.Workload.
func (s *SRAD) Class() string { return "native" }

// Supports implements workloads.Workload: SRAD persists whole matrices at
// iteration boundaries, which GPUfs can express (§6.1 reports it runs).
func (s *SRAD) Supports(mode workloads.Mode) bool { return true }

func (s *SRAD) n() int { return s.rows * s.cols }

// Setup implements workloads.Workload.
func (s *SRAD) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	s.rows, s.cols, s.iters = cfg.SRADRows, cfg.SRADCols, cfg.SRADIters
	n := s.n()
	sp := env.Ctx.Space

	s.imgHBM = sp.AllocHBM(int64(n) * 4)
	s.cHBM = sp.AllocHBM(int64(n) * 4)
	s.capImg, s.capC = s.imgHBM, s.cHBM

	// Deliberately misalign the PM files: streaming-but-unaligned writes
	// are SRAD's signature access pattern (Fig 12 discussion).
	sp.AllocPM(68, 1)
	var err error
	if s.imgFile, err = env.Ctx.FS.Create("/pm/srad.img", 2*int64(n)*4, 1); err != nil {
		return err
	}
	sp.AllocPM(36, 1)
	if s.cFile, err = env.Ctx.FS.Create("/pm/srad.c", int64(n)*4, 1); err != nil {
		return err
	}
	if s.iterFile, err = env.Ctx.FS.Create("/pm/srad.iter", 64, 0); err != nil {
		return err
	}

	img := make([]float32, n)
	for i := range img {
		img[i] = float32(math.Exp(env.RNG.Float64())) // noisy positive image
	}
	writeF32s(sp, s.imgHBM, img)
	env.Ctx.Timeline.Add("setup", sp.DMA.TransferDown(int64(n)*4))
	// Slot 0 durably holds the initial image (the state "after iteration
	// 0"), so recovery from a crash before the first markIter restarts
	// from durable state, not from a reconstructed input.
	writeF32s(sp, s.imgSlot(0), img)
	sp.PersistRange(s.imgSlot(0), n*4)
	env.Ctx.Timeline.Add("setup", sim.DurationOfBytes(int64(n)*4, env.Ctx.Params.CPUPMBandwidth(cfg.CAPThreads)))
	s.expect = s.reference(img)
	return nil
}

// imgSlot returns the PM address of image slot k%2.
func (s *SRAD) imgSlot(k int) uint64 {
	return s.imgFile.Mmap() + uint64(k%2)*uint64(s.n())*4
}

// reference computes the expected final image on the host, mirroring the
// kernel arithmetic exactly (same float32 operation order).
func (s *SRAD) reference(img []float32) []float32 {
	n := s.n()
	cur := make([]float32, n)
	copy(cur, img)
	c := make([]float32, n)
	for it := 0; it < s.iters; it++ {
		for i := 0; i < n; i++ {
			c[i] = sradCoeff(cur, s.rows, s.cols, i)
		}
		next := make([]float32, n)
		for i := 0; i < n; i++ {
			next[i] = sradUpdate(cur, c, s.rows, s.cols, i)
		}
		copy(cur, next)
	}
	return cur
}

func idx2(r, c, cols int) int { return r*cols + c }

// clampSub returns max(i-1, 0); clampAdd returns min(i+1, n-1).
func clampSub(i, n int) int {
	if i > 0 {
		return i - 1
	}
	return 0
}

func clampAdd(i, n int) int {
	if i < n-1 {
		return i + 1
	}
	return n - 1
}

// sradCoeff is the (simplified) diffusion coefficient at flat index i.
func sradCoeff(img []float32, rows, cols, i int) float32 {
	r, c := i/cols, i%cols
	v := img[i]
	up, down, left, right := v, v, v, v
	if r > 0 {
		up = img[idx2(r-1, c, cols)]
	}
	if r < rows-1 {
		down = img[idx2(r+1, c, cols)]
	}
	if c > 0 {
		left = img[idx2(r, c-1, cols)]
	}
	if c < cols-1 {
		right = img[idx2(r, c+1, cols)]
	}
	g2 := (up-v)*(up-v) + (down-v)*(down-v) + (left-v)*(left-v) + (right-v)*(right-v)
	q := g2 / ((v*v)*4 + 1e-6)
	return 1 / (1 + q)
}

// sradUpdate diffuses pixel i using the coefficient matrix.
func sradUpdate(img, coeff []float32, rows, cols, i int) float32 {
	r, c := i/cols, i%cols
	v := img[i]
	var div float32
	if r > 0 {
		div += coeff[i] * (img[idx2(r-1, c, cols)] - v)
	}
	if r < rows-1 {
		div += coeff[idx2(r+1, c, cols)] * (img[idx2(r+1, c, cols)] - v)
	}
	if c > 0 {
		div += coeff[i] * (img[idx2(r, c-1, cols)] - v)
	}
	if c < cols-1 {
		div += coeff[idx2(r, c+1, cols)] * (img[idx2(r, c+1, cols)] - v)
	}
	return v + sradLambda*div
}

const sradTPB = 128

// coeffKernel computes the coefficient matrix from the working image. In
// persist mode every thread also writes its value to the PM copy and
// persists it natively.
func (s *SRAD) coeffKernel(env *workloads.Env, persist bool) {
	rows, cols, n := s.rows, s.cols, s.n()
	img, c := s.imgHBM, s.cHBM
	pmC := s.cFile.Mmap()
	direct := env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP
	blocks := (n + sradTPB - 1) / sradTPB
	env.Ctx.Launch("srad-coeff", blocks, sradTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		r, cc := i/cols, i%cols
		// Clamped unconditional loads keep the warp's lanes step-aligned
		// (predicated SIMT execution): a clamped neighbor loads the pixel
		// itself, contributing a zero gradient exactly like the guarded
		// form.
		v := t.LoadF32(img + uint64(i)*4)
		up := t.LoadF32(img + uint64(idx2(clampSub(r, rows), cc, cols))*4)
		down := t.LoadF32(img + uint64(idx2(clampAdd(r, rows), cc, cols))*4)
		left := t.LoadF32(img + uint64(idx2(r, clampSub(cc, cols), cols))*4)
		right := t.LoadF32(img + uint64(idx2(r, clampAdd(cc, cols), cols))*4)
		g2 := (up-v)*(up-v) + (down-v)*(down-v) + (left-v)*(left-v) + (right-v)*(right-v)
		q := g2 / ((v*v)*4 + 1e-6)
		val := 1 / (1 + q)
		t.Compute(sradGPUCost)
		t.StoreF32(c+uint64(i)*4, val)
		if direct {
			t.StoreF32(pmC+uint64(i)*4, val)
			if persist {
				gpm.Persist(t)
			}
		}
	})
}

// diffuseKernel updates the image in place (double-buffered through a
// device scratch handled by ping-pong on the same array after a barrier is
// unnecessary here: updates read coeff and OLD image values, so the kernel
// writes to a fresh array and the harness swaps).
func (s *SRAD) diffuseKernel(env *workloads.Env, dstHBM, pmImg uint64, persist bool) {
	rows, cols, n := s.rows, s.cols, s.n()
	img, c := s.imgHBM, s.cHBM
	direct := env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP
	blocks := (n + sradTPB - 1) / sradTPB
	env.Ctx.Launch("srad-diffuse", blocks, sradTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		r, cc := i/cols, i%cols
		v := t.LoadF32(img + uint64(i)*4)
		ci := t.LoadF32(c + uint64(i)*4)
		// Clamped loads (see coeffKernel): a clamped neighbor equals v,
		// so its term vanishes exactly as in the guarded reference.
		down := clampAdd(r, rows)
		right := clampAdd(cc, cols)
		var div float32
		div += ci * (t.LoadF32(img+uint64(idx2(clampSub(r, rows), cc, cols))*4) - v)
		div += t.LoadF32(c+uint64(idx2(down, cc, cols))*4) * (t.LoadF32(img+uint64(idx2(down, cc, cols))*4) - v)
		div += ci * (t.LoadF32(img+uint64(idx2(r, clampSub(cc, cols), cols))*4) - v)
		div += t.LoadF32(c+uint64(idx2(r, right, cols))*4) * (t.LoadF32(img+uint64(idx2(r, right, cols))*4) - v)
		val := v + sradLambda*div
		t.Compute(sradGPUCost)
		t.StoreF32(dstHBM+uint64(i)*4, val)
		if direct {
			t.StoreF32(pmImg+uint64(i)*4, val)
			if persist {
				gpm.Persist(t)
			}
		}
	})
}

// markIter persists the completed-iteration counter from the GPU.
func (s *SRAD) markIter(env *workloads.Env, it int) {
	addr := s.iterFile.Mmap()
	env.Ctx.Launch("srad-meta", 1, 1, func(t *gpu.Thread) {
		t.StoreU32(addr, uint32(it))
		gpm.Persist(t)
	})
}

func (s *SRAD) persistedIter(env *workloads.Env) int {
	snap := env.Ctx.Space.SnapshotPersistent(s.iterFile.Mmap(), 4)
	return int(binary.LittleEndian.Uint32(snap))
}

// Run implements workloads.Workload.
func (s *SRAD) Run(env *workloads.Env) error {
	if env.Mode == workloads.CPUOnly {
		return s.runCPU(env)
	}
	n := s.n()
	scratch := env.Ctx.Space.AllocHBM(int64(n) * 4)
	persist := env.Mode.UsesGPM()
	start := s.persistedIter(env)
	env.PersistKernelBegin()
	for it := start; it < s.iters; it++ {
		s.coeffKernel(env, persist)
		s.diffuseKernel(env, scratch, s.imgSlot(it+1), persist)
		// Swap working image.
		s.imgHBM, scratch = scratch, s.imgHBM
		if persist {
			s.markIter(env, it+1)
		} else if env.Mode.UsesCAP() || env.Mode == workloads.GPUfs {
			env.PersistKernelEnd()
			if err := workloads.PersistBuffer(env, s.cFile, 0, s.cHBM, int64(n)*4); err != nil {
				return err
			}
			off := int64(s.imgSlot(it+1) - s.imgFile.Mmap())
			if err := workloads.PersistBuffer(env, s.imgFile, off, s.imgHBM, int64(n)*4); err != nil {
				return err
			}
			env.PersistKernelBegin()
		}
	}
	env.PersistKernelEnd()
	env.CountOps(int64(s.iters) * int64(n))
	return nil
}

// runCPU is the Fig 1b baseline: multi-threaded SRAD persisting the
// coefficient matrix and image to PM each iteration.
func (s *SRAD) runCPU(env *workloads.Env) error {
	n := s.n()
	threads := env.Cfg.CAPThreads
	pmImg, pmC := s.imgFile.Mmap(), s.cFile.Mmap()
	cur := readF32s(env.Ctx.Space, s.imgHBM, n)
	c := make([]float32, n)
	next := make([]float32, n)
	_ = pmImg
	for it := 0; it < s.iters; it++ {
		slot := s.imgSlot(it + 1)
		env.Ctx.RunCPU("cpu-srad", threads, func(t *cpusim.Thread) {
			chunk := (n + t.N - 1) / t.N
			lo, hi := t.ID*chunk, (t.ID+1)*chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				c[i] = sradCoeff(cur, s.rows, s.cols, i)
				t.WriteF32(pmC+uint64(i)*4, c[i])
				t.Compute(sradCPUCost)
			}
			if lo < hi {
				t.PersistRange(pmC+uint64(lo)*4, int64(hi-lo)*4)
			}
		})
		env.Ctx.RunCPU("cpu-srad", threads, func(t *cpusim.Thread) {
			chunk := (n + t.N - 1) / t.N
			lo, hi := t.ID*chunk, (t.ID+1)*chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				next[i] = sradUpdate(cur, c, s.rows, s.cols, i)
				t.WriteF32(slot+uint64(i)*4, next[i])
				t.Compute(sradCPUCost)
			}
			if lo < hi {
				t.PersistRange(slot+uint64(lo)*4, int64(hi-lo)*4)
			}
		})
		cur, next = next, cur
	}
	env.CountOps(int64(s.iters) * int64(n))
	return nil
}

// Verify implements workloads.Workload: the DURABLE image must equal the
// reference.
func (s *SRAD) Verify(env *workloads.Env) error {
	n := s.n()
	snap := env.Ctx.Space.SnapshotPersistent(s.imgSlot(s.iters), n*4)
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(snap[i*4:]))
		if got != s.expect[i] {
			return fmt.Errorf("srad: durable img[%d] = %v, want %v", i, got, s.expect[i])
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher.
func (s *SRAD) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("srad: crash study requires a GPM mode")
	}
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := s.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	return err
}

// Recover implements workloads.Crasher: reload the durable image slot the
// persisted counter points at and resume from that iteration.
func (s *SRAD) Recover(env *workloads.Env) error {
	n := s.n()
	sp := env.Ctx.Space
	start := env.Ctx.Timeline.Total()
	it := s.persistedIter(env)
	img := sp.SnapshotPersistent(s.imgSlot(it), n*4)
	sp.WriteCPU(s.imgHBM, img)
	env.Ctx.Timeline.Add("reload", sp.DMA.TransferDown(int64(n)*4))
	err := s.Run(env)
	env.AddRestore(env.Ctx.Timeline.Total() - start)
	return err
}

// ---- helpers shared by the stencil workloads ----

func writeF32s(sp interface {
	WriteCPU(uint64, []byte) []uint64
}, addr uint64, vals []float32) {
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	sp.WriteCPU(addr, buf)
}

func readF32s(sp interface{ Read(uint64, []byte) }, addr uint64, n int) []float32 {
	buf := make([]byte, n*4)
	sp.Read(addr, buf)
	return readF32sBytes(buf)
}

func readF32sBytes(buf []byte) []float32 {
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}
