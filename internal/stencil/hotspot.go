package stencil

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

const (
	hsGPUCost = 12 * sim.Nanosecond
	hsCap     = float32(0.5)
)

// Hotspot (HS) is the thermal-simulation checkpointing workload (§4.2): an
// iterative 5-point stencil over a temperature grid driven by a static
// power map, checkpointing the temperatures every few timesteps. On real
// GPUfs the paper's 2 GB input makes HS fail (§6.1); the scaled model
// preserves that by comparing the checkpoint file size against the scaled
// GPUfs file-size limit.
type Hotspot struct {
	dim, iters, ckptEach int

	tempA, tempB uint64 // HBM ping-pong temperature grids
	power        uint64 // HBM read-only power map

	cp     *gpm.Checkpoint // GPM checkpoint facility
	cpFile *fsim.File      // CAP/GPUfs checkpoint home

	expect      []float32 // final temperatures
	expectCkpt  []float32 // temperatures at the last checkpoint
	lastCkptIt  int
	checkpoints int
	finalHBM    uint64 // where the final temperatures ended up
}

// NewHotspot returns the HS workload.
func NewHotspot() *Hotspot { return &Hotspot{} }

// Name implements workloads.Workload.
func (h *Hotspot) Name() string { return "HS" }

// Class implements workloads.Workload.
func (h *Hotspot) Class() string { return "checkpointing" }

// Supports implements workloads.Workload: HS runs everywhere except GPUfs,
// where its checkpoint exceeds the (scaled) file-size limit — mirroring the
// paper's ">2 GB" failure.
func (h *Hotspot) Supports(mode workloads.Mode) bool { return mode != workloads.GPUfs }

func (h *Hotspot) n() int { return h.dim * h.dim }

// Setup implements workloads.Workload.
func (h *Hotspot) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	h.dim, h.iters, h.ckptEach = cfg.HSDim, cfg.HSIters, cfg.HSCkptEach
	n := h.n()
	sp := env.Ctx.Space
	h.tempA = sp.AllocHBM(int64(n) * 4)
	h.tempB = sp.AllocHBM(int64(n) * 4)
	h.power = sp.AllocHBM(int64(n) * 4)

	temp := make([]float32, n)
	power := make([]float32, n)
	for i := range temp {
		temp[i] = 320 + 10*float32(env.RNG.Float64())
		power[i] = float32(env.RNG.Float64())
	}
	writeF32s(sp, h.tempA, temp)
	writeF32s(sp, h.power, power)
	env.Ctx.Timeline.Add("setup", sp.DMA.TransferDown(2*int64(n)*4))

	var err error
	switch {
	case env.Mode.UsesGPM():
		if h.cp, err = env.Ctx.CPCreate("/pm/hs.cp", int64(n)*4, 1, 1); err != nil {
			return err
		}
		if err = h.cp.Register(h.tempA, int64(n)*4, 0); err != nil {
			return err
		}
	default:
		if h.cpFile, err = env.Ctx.FS.Create("/pm/hs.cp", int64(n)*4, 0); err != nil {
			return err
		}
	}

	// Host reference, mirroring kernel arithmetic.
	cur := make([]float32, n)
	copy(cur, temp)
	next := make([]float32, n)
	for it := 1; it <= h.iters; it++ {
		for i := 0; i < n; i++ {
			next[i] = hsStep(cur, power, h.dim, i)
		}
		cur, next = next, cur
		if it%h.ckptEach == 0 {
			h.expectCkpt = append([]float32(nil), cur...)
			h.lastCkptIt = it
		}
	}
	h.expect = cur
	return nil
}

// hsStep advances one cell of the temperature grid.
func hsStep(temp, power []float32, dim, i int) float32 {
	r, c := i/dim, i%dim
	v := temp[i]
	up, down, left, right := v, v, v, v
	if r > 0 {
		up = temp[(r-1)*dim+c]
	}
	if r < dim-1 {
		down = temp[(r+1)*dim+c]
	}
	if c > 0 {
		left = temp[r*dim+c-1]
	}
	if c < dim-1 {
		right = temp[r*dim+c+1]
	}
	return v + hsCap*(power[i]+(up+down-2*v)*0.1+(left+right-2*v)*0.1+(80-v)*0.05)
}

const hsTPB = 128

func (h *Hotspot) stepKernel(env *workloads.Env, src, dst uint64) {
	dim, n := h.dim, h.n()
	power := h.power
	blocks := (n + hsTPB - 1) / hsTPB
	env.Ctx.Launch("hs-step", blocks, hsTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		r, c := i/dim, i%dim
		v := t.LoadF32(src + uint64(i)*4)
		// Clamped unconditional loads keep warp lanes step-aligned; a
		// clamped neighbor loads v itself, matching the reference's
		// boundary handling exactly.
		up := t.LoadF32(src + uint64(clampSub(r, dim)*dim+c)*4)
		down := t.LoadF32(src + uint64(clampAdd(r, dim)*dim+c)*4)
		left := t.LoadF32(src + uint64(r*dim+clampSub(c, dim))*4)
		right := t.LoadF32(src + uint64(r*dim+clampAdd(c, dim))*4)
		p := t.LoadF32(power + uint64(i)*4)
		t.Compute(hsGPUCost)
		t.StoreF32(dst+uint64(i)*4, v+hsCap*(p+(up+down-2*v)*0.1+(left+right-2*v)*0.1+(80-v)*0.05))
	})
}

// checkpoint persists the current temperatures under the active mode and
// accounts the time under the env's checkpoint meter.
func (h *Hotspot) checkpoint(env *workloads.Env, cur uint64) error {
	start := env.Ctx.Timeline.Total()
	defer func() { env.AddCheckpoint(env.Ctx.Timeline.Total() - start) }()
	h.checkpoints++
	if env.Mode.UsesGPM() {
		// The checkpoint facility copies from the registered address;
		// re-register is not allowed to move, so copy into tempA's role:
		// registration tracked h.tempA; ensure cur is tempA by kernel
		// copy if the ping-pong landed on tempB.
		if cur != h.tempA {
			h.copyKernel(env, h.tempA, cur)
		}
		_, err := h.cp.CheckpointGroup(0)
		return err
	}
	return workloads.PersistBuffer(env, h.cpFile, 0, cur, int64(h.n())*4)
}

func (h *Hotspot) copyKernel(env *workloads.Env, dst, src uint64) {
	n := h.n()
	blocks := (n + hsTPB - 1) / hsTPB
	env.Ctx.Launch("hs-copy", blocks, hsTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= n {
			return
		}
		t.StoreU32(dst+uint64(i)*4, t.LoadU32(src+uint64(i)*4))
	})
}

// Run implements workloads.Workload.
func (h *Hotspot) Run(env *workloads.Env) error {
	if env.Mode == workloads.CPUOnly {
		return fmt.Errorf("hotspot: checkpointing workloads have no meaningful CPU-only counterpart (§6.1)")
	}
	src, dst := h.tempA, h.tempB
	for it := 1; it <= h.iters; it++ {
		h.stepKernel(env, src, dst)
		src, dst = dst, src
		if it%h.ckptEach == 0 {
			if err := h.checkpoint(env, src); err != nil {
				return err
			}
		}
	}
	h.finalHBM = src
	env.CountOps(int64(h.iters) * int64(h.n()))
	return nil
}

// Verify implements workloads.Workload: the in-memory result must match
// the reference and the DURABLE checkpoint must equal the state at the
// last checkpointed iteration.
func (h *Hotspot) Verify(env *workloads.Env) error {
	n := h.n()
	got := readF32s(env.Ctx.Space, h.finalHBM, n)
	for i := range got {
		if got[i] != h.expect[i] {
			return fmt.Errorf("hotspot: temp[%d] = %v, want %v", i, got[i], h.expect[i])
		}
	}
	if h.checkpoints == 0 {
		return fmt.Errorf("hotspot: no checkpoints taken")
	}
	var snap []byte
	if env.Mode.UsesGPM() {
		// Restore into a scratch buffer and compare.
		scratch := env.Ctx.Space.AllocHBM(int64(n) * 4)
		cp2, err := env.Ctx.CPOpen("/pm/hs.cp")
		if err != nil {
			return err
		}
		if err := cp2.Register(scratch, int64(n)*4, 0); err != nil {
			return err
		}
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
		snap = make([]byte, n*4)
		env.Ctx.Space.Read(scratch, snap)
	} else {
		snap = env.Ctx.Space.SnapshotPersistent(h.cpFile.Mmap(), n*4)
	}
	for i := 0; i < n; i++ {
		gotc := math.Float32frombits(binary.LittleEndian.Uint32(snap[i*4:]))
		if gotc != h.expectCkpt[i] {
			return fmt.Errorf("hotspot: durable checkpoint[%d] = %v, want %v (iteration %d)",
				i, gotc, h.expectCkpt[i], h.lastCkptIt)
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher.
func (h *Hotspot) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("hotspot: crash study requires a GPM mode")
	}
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := h.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	if err == gpu.ErrCrashed {
		return nil
	}
	return err
}

// Recover implements workloads.Crasher: restore the last checkpoint and
// recompute from that iteration.
func (h *Hotspot) Recover(env *workloads.Env) error {
	n := h.n()
	restoreStart := env.Ctx.Timeline.Total()
	cp2, err := env.Ctx.CPOpen("/pm/hs.cp")
	if err != nil {
		return err
	}
	if err := cp2.Register(h.tempA, int64(n)*4, 0); err != nil {
		return err
	}
	startIt := 0
	if cp2.Seq(0) > 0 {
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
		startIt = int(cp2.Seq(0)) * h.ckptEach
	}
	env.AddRestore(env.Ctx.Timeline.Total() - restoreStart)
	h.cp = cp2
	h.checkpoints = int(cp2.Seq(0))
	// The read-only power map must be re-staged from its durable source
	// (regenerated from the same seed here).
	power := make([]float32, n)
	rng := sim.NewRNG(env.Cfg.Seed)
	tmp := make([]float32, n)
	for i := range tmp {
		tmp[i] = 320 + 10*float32(rng.Float64())
		power[i] = float32(rng.Float64())
	}
	writeF32s(env.Ctx.Space, h.power, power)
	if startIt == 0 {
		// Crash landed before the first checkpoint: restart the whole
		// simulation from the regenerated initial temperatures.
		writeF32s(env.Ctx.Space, h.tempA, tmp)
		env.Ctx.Timeline.Add("reload", env.Ctx.Space.DMA.TransferDown(int64(n)*4))
	}
	env.Ctx.Timeline.Add("reload", env.Ctx.Space.DMA.TransferDown(int64(n)*4))

	src, dst := h.tempA, h.tempB
	for it := startIt + 1; it <= h.iters; it++ {
		h.stepKernel(env, src, dst)
		src, dst = dst, src
		if it%h.ckptEach == 0 {
			if err := h.checkpoint(env, src); err != nil {
				return err
			}
		}
	}
	h.finalHBM = src
	return nil
}
