package stencil

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func run(t *testing.T, w workloads.Workload, mode workloads.Mode) *workloads.Report {
	t.Helper()
	r, err := workloads.RunOne(w, mode, workloads.QuickConfig())
	if err != nil {
		t.Fatalf("%s/%v: %v", w.Name(), mode, err)
	}
	return r
}

func TestSRADAllModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm, workloads.GPUfs,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR, workloads.CPUOnly,
	} {
		t.Run(m.String(), func(t *testing.T) { run(t, NewSRAD(), m) })
	}
}

func TestSRADUnalignedPattern(t *testing.T) {
	// SRAD's PM writes are streaming but NOT 256B-aligned (§6.1).
	r := run(t, NewSRAD(), workloads.GPM)
	if r.AlignedFrac > 0.35 {
		t.Errorf("SRAD writes are %.0f%% aligned; misalignment lost", r.AlignedFrac*100)
	}
	if r.SeqFrac < 0.5 {
		t.Errorf("SRAD writes only %.0f%% sequential; streaming lost", r.SeqFrac*100)
	}
}

func TestSRADGPMBeatsCAPAndCPU(t *testing.T) {
	g := run(t, NewSRAD(), workloads.GPM)
	fs := run(t, NewSRAD(), workloads.CAPfs)
	cpu := run(t, NewSRAD(), workloads.CPUOnly)
	if g.OpTime >= fs.OpTime {
		t.Errorf("GPM %v vs CAP-fs %v", g.OpTime, fs.OpTime)
	}
	if g.OpTime >= cpu.OpTime {
		t.Errorf("GPM %v vs CPU %v", g.OpTime, cpu.OpTime)
	}
}

func TestSRADCrashRecovery(t *testing.T) {
	r, err := workloads.RunWithCrash(NewSRAD(), workloads.GPM, workloads.QuickConfig(), 30000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restore time recorded")
	}
}

func TestHotspotModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR,
	} {
		t.Run(m.String(), func(t *testing.T) {
			r := run(t, NewHotspot(), m)
			if r.CkptTime <= 0 {
				t.Error("no checkpoint time recorded")
			}
		})
	}
}

func TestHotspotRejectsGPUfsAndCPU(t *testing.T) {
	if _, err := workloads.RunOne(NewHotspot(), workloads.GPUfs, workloads.QuickConfig()); err == nil {
		t.Error("HS must fail on GPUfs (file too large in the paper)")
	}
	if _, err := workloads.RunOne(NewHotspot(), workloads.CPUOnly, workloads.QuickConfig()); err == nil {
		t.Error("HS has no CPU-only counterpart")
	}
}

func TestHotspotCheckpointFasterOnGPM(t *testing.T) {
	g := run(t, NewHotspot(), workloads.GPM)
	fs := run(t, NewHotspot(), workloads.CAPfs)
	mm := run(t, NewHotspot(), workloads.CAPmm)
	if g.CkptTime >= mm.CkptTime {
		t.Errorf("GPM ckpt %v not faster than CAP-mm %v", g.CkptTime, mm.CkptTime)
	}
	if mm.CkptTime >= fs.CkptTime {
		t.Errorf("CAP-mm ckpt %v not faster than CAP-fs %v", mm.CkptTime, fs.CkptTime)
	}
}

func TestHotspotCrashRecovery(t *testing.T) {
	// Crash late enough that at least one checkpoint is durable.
	r, err := workloads.RunWithCrash(NewHotspot(), workloads.GPM, workloads.QuickConfig(), 140000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restore latency recorded")
	}
	// Table 5: checkpoint restoration is a small fraction of op time.
	if r.RestoreFraction() > 0.5 {
		t.Errorf("restore fraction %.2f implausibly large", r.RestoreFraction())
	}
}

func TestCFDModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm, workloads.GPUfs,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR,
	} {
		t.Run(m.String(), func(t *testing.T) {
			r := run(t, NewCFD(), m)
			if r.CkptTime <= 0 {
				t.Error("no checkpoint time recorded")
			}
		})
	}
}

func TestCFDCheckpointGroupsRestoreTogether(t *testing.T) {
	// Covered by Verify (restores all three arrays from one group); this
	// test just pins the GPM mode end to end.
	run(t, NewCFD(), workloads.GPM)
}

func TestCheckpointEADRBenefit(t *testing.T) {
	// eADR checkpointing is at most modestly better: a single persist
	// at the end means checkpointing is "mostly agnostic to eADR" (§6.1).
	g := run(t, NewHotspot(), workloads.GPM)
	e := run(t, NewHotspot(), workloads.GPMeADR)
	if e.CkptTime > g.CkptTime {
		t.Errorf("eADR ckpt (%v) slower than GPM (%v)", e.CkptTime, g.CkptTime)
	}
	ratio := float64(g.CkptTime) / float64(e.CkptTime)
	if ratio > 3 {
		t.Errorf("checkpointing should be mostly eADR-agnostic; got %.1fx", ratio)
	}
}
