package crash

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// ShrunkFailure is a minimized, replayable recovery failure: the earliest
// crash point found to still fail, and the smallest prefix of faulted dirty
// lines (FaultLimit; 0 = every dirty line) that still breaks verification
// under the same seed. Replay is the gpmrecover invocation reproducing it.
type ShrunkFailure struct {
	Workload     string `json:"workload"`
	Mode         string `json:"mode"`
	Model        string `json:"model"`
	CrashAt      int64  `json:"crash_at"`
	FaultSeed    uint64 `json:"fault_seed"`
	FaultLimit   int    `json:"fault_limit"`
	RecrashDepth int    `json:"recrash_depth"`
	Replay       string `json:"replay"`
}

// shrinkLimitCap bounds the fault-subset search; campaigns at test scale
// dirty far fewer lines than this.
const shrinkLimitCap = 1 << 12

// Shrink minimizes a failing run record. It binary-searches the smallest
// crash point that still fails verification, then the smallest fault subset
// (a prefix of the dirty lines in write order, via pmem.Subset) that still
// fails at that point. Failure is not guaranteed to be monotone in either
// axis, so the result is best-effort minimal: every reported value was
// re-executed and confirmed failing.
func (c *Campaign) Shrink(mk func() workloads.Crasher, cfg workloads.Config, rec RunRecord) *ShrunkFailure {
	mode, err := ModeByName(rec.Mode)
	if err != nil {
		return nil
	}
	base, err := pmem.ModelByName(rec.Model)
	if err != nil {
		return nil
	}
	fails := func(crashAt int64, limit int) bool {
		model := base
		if limit > 0 {
			model = pmem.Subset{Base: base, Limit: limit}
		}
		_, runErr := workloads.RunWithPlan(mk(), mode, cfg, workloads.CrashPlan{
			AbortAfterOps: crashAt,
			Fault:         model,
			FaultSeed:     rec.FaultSeed,
			RecrashDepth:  rec.RecrashDepth,
			RecrashEvery:  c.RecrashEvery,
		})
		return runErr != nil
	}

	// Phase 1: earliest failing crash point at full fault strength.
	lo, hi := int64(1), rec.CrashAt
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fails(mid, 0) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	crashAt := lo
	if !fails(crashAt, 0) {
		crashAt = rec.CrashAt // non-monotone search missed; keep the known-bad point
	}

	// Phase 2: smallest faulted-line prefix that still fails there.
	limit := 0
	if fails(crashAt, shrinkLimitCap) {
		l, h := 1, shrinkLimitCap
		for l < h {
			m := l + (h-l)/2
			if fails(crashAt, m) {
				h = m
			} else {
				l = m + 1
			}
		}
		if fails(crashAt, l) {
			limit = l
		}
	}

	s := &ShrunkFailure{
		Workload:     rec.Workload,
		Mode:         rec.Mode,
		Model:        rec.Model,
		CrashAt:      crashAt,
		FaultSeed:    rec.FaultSeed,
		FaultLimit:   limit,
		RecrashDepth: rec.RecrashDepth,
	}
	s.Replay = fmt.Sprintf(
		"gpmrecover -quick -workload %q -mode %s -faultmodel %s -crashat %d -faultseed %d -faultlimit %d -recrash-depth %d",
		s.Workload, s.Mode, s.Model, s.CrashAt, s.FaultSeed, s.FaultLimit, s.RecrashDepth)
	return s
}
