package crash

import (
	"sync"
	"testing"
)

// A plain value copy of WorkloadCampaign aliases Runs and Shrunk; Clone
// must not. The goroutine makes the aliasing visible to the race detector:
// under -race a shallow copy turns the concurrent reads below into a
// reported data race.
func TestWorkloadCampaignCloneIndependence(t *testing.T) {
	orig := &WorkloadCampaign{
		Workload: "kvs",
		TotalOps: 4096,
		Runs: []RunRecord{
			{Workload: "kvs", Mode: "GPM", Model: "torn-lines", CrashAt: 100, FaultSeed: 7},
			{Workload: "kvs", Mode: "GPM", Model: "reorder", CrashAt: 200, Err: "verify: slot 3 mismatch"},
		},
		Failures: 1,
		Shrunk:   &ShrunkFailure{Workload: "kvs", CrashAt: 150, FaultSeed: 7, Replay: "gpmrecover ..."},
	}

	clone := orig.Clone()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			clone.Runs[0].CrashAt++
			clone.Runs[1].Err = "mutated"
			clone.Shrunk.CrashAt++
			clone.Failures++
		}
		clone.Runs = append(clone.Runs, RunRecord{Workload: "extra"})
	}()
	for i := 0; i < 1000; i++ {
		if orig.Runs[0].CrashAt != 100 {
			t.Errorf("clone mutation leaked into original Runs: CrashAt = %d", orig.Runs[0].CrashAt)
			break
		}
		if orig.Shrunk.CrashAt != 150 {
			t.Errorf("clone mutation leaked into original Shrunk: CrashAt = %d", orig.Shrunk.CrashAt)
			break
		}
	}
	wg.Wait()

	if orig.Runs[1].Err != "verify: slot 3 mismatch" {
		t.Errorf("original Err changed: %q", orig.Runs[1].Err)
	}
	if len(orig.Runs) != 2 {
		t.Errorf("append to clone grew original: len = %d", len(orig.Runs))
	}
	if orig.Failures != 1 {
		t.Errorf("original Failures changed: %d", orig.Failures)
	}
}

// Clone must preserve nil-ness (nil receiver, nil Runs, nil Shrunk) so
// JSON output of a clone matches the original.
func TestWorkloadCampaignCloneNil(t *testing.T) {
	var nilWC *WorkloadCampaign
	if nilWC.Clone() != nil {
		t.Error("Clone of nil receiver should be nil")
	}
	wc := &WorkloadCampaign{Workload: "empty"}
	c := wc.Clone()
	if c.Runs != nil {
		t.Error("Clone of nil Runs should stay nil")
	}
	if c.Shrunk != nil {
		t.Error("Clone of nil Shrunk should stay nil")
	}
	if c == wc {
		t.Error("Clone returned the receiver itself")
	}
}
