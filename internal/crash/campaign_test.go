package crash

import (
	"reflect"
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/experiments"
	"github.com/gpm-sim/gpm/internal/gpdb"
	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// TestCampaignAllWorkloads is the acceptance sweep: every recoverable
// GPMbench workload must survive all four fault models at crash points
// strided across the whole execution, with the power failing twice more
// during each recovery. Any record with a non-empty Err is a recovery bug.
func TestCampaignAllWorkloads(t *testing.T) {
	cfg := workloads.QuickConfig()
	for _, mk := range append(experiments.Crashers(), experiments.NativeCrashers()...) {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			t.Parallel()
			// GPM only: adding GPM-eADR doubles the sweep, and the eADR
			// regression this campaign once caught (the power-fail latch
			// bypass) is guarded by TestCampaignEADRTransactional below.
			c := &Campaign{
				Seed:         3,
				MaxPoints:    3,
				RecrashDepth: 2,
				Modes:        []workloads.Mode{workloads.GPM},
			}
			wc, err := c.Run(mk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(wc.Runs) == 0 {
				t.Fatal("campaign produced no runs")
			}
			for _, r := range wc.Runs {
				if r.Err != "" {
					t.Errorf("%s/%s/%s@%d seed=%d: %s",
						r.Workload, r.Mode, r.Model, r.CrashAt, r.FaultSeed, r.Err)
				}
			}
		})
	}
}

// TestCampaignEADRTransactional sweeps the transactional workloads under
// GPM-eADR. eADR persists LLC lines the instant they are written, so a
// power-fail latch that only guards explicit flush paths lets post-failure
// recovery writes (e.g. a tx-flag clear) become durable — exactly the bug
// this campaign caught in the seed. Kept separate from the all-workloads
// sweep so the full matrix stays affordable under -race.
func TestCampaignEADRTransactional(t *testing.T) {
	cfg := workloads.QuickConfig()
	mks := []func() workloads.Crasher{
		func() workloads.Crasher { return kvstore.New() },
		func() workloads.Crasher { return gpdb.New(gpdb.Update) },
	}
	for _, mk := range mks {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			t.Parallel()
			c := &Campaign{
				Seed:         11,
				MaxPoints:    2,
				RecrashDepth: 2,
				Modes:        []workloads.Mode{workloads.GPMeADR},
			}
			wc, err := c.Run(mk, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(wc.Runs) == 0 {
				t.Fatal("campaign produced no runs")
			}
			for _, r := range wc.Runs {
				if r.Err != "" {
					t.Errorf("%s/%s/%s@%d seed=%d: %s",
						r.Workload, r.Mode, r.Model, r.CrashAt, r.FaultSeed, r.Err)
				}
			}
		})
	}
}

// TestCampaignDeterministic replays the same campaign twice and demands
// byte-identical records (same crash points, same seeds, same outcomes).
func TestCampaignDeterministic(t *testing.T) {
	cfg := workloads.QuickConfig()
	mk := func() workloads.Crasher { return kvstore.New() }
	run := func() []RunRecord {
		c := &Campaign{
			Seed:      19,
			MaxPoints: 2,
			Models:    []pmem.FaultModel{pmem.TornLines{}, pmem.Reorder{}},
			Modes:     []workloads.Mode{workloads.GPM},
		}
		wc, err := c.Run(mk, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return wc.Runs
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same campaign differed:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSweepPoints(t *testing.T) {
	pts := sweepPoints(100, 0, 4)
	want := []int64{25, 50, 75, 100}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("sweepPoints(100,0,4) = %v, want %v", pts, want)
	}
	pts = sweepPoints(10, 3, 10)
	want = []int64{3, 6, 9}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("sweepPoints(10,3,10) = %v, want %v", pts, want)
	}
	if got := sweepPoints(1000, 1, 5); len(got) != 5 {
		t.Errorf("downsample kept %d points, want 5", len(got))
	}
	if got := sweepPoints(2, 0, 4); len(got) == 0 {
		t.Error("tiny run produced no crash points")
	}
}

// TestNegativeControlCaught proves the campaign has teeth: the deliberately
// unlogged, unfenced workload must fail verification under the torn models
// but pass under clean rollback (where its bug is invisible).
func TestNegativeControlCaught(t *testing.T) {
	cfg := workloads.QuickConfig()
	c := &Campaign{
		Seed:      5,
		MaxPoints: 3,
		Models:    []pmem.FaultModel{pmem.TornLines{}, pmem.TornWords{}},
	}
	wc, err := c.Run(newBroken, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Failures == 0 {
		t.Fatal("torn-model campaign did not catch the broken workload")
	}
	for _, r := range wc.Runs {
		if r.Err != "" && !strings.Contains(r.Err, "neg:") {
			t.Errorf("unexpected failure kind: %s", r.Err)
		}
	}

	clean := &Campaign{
		Seed:      5,
		MaxPoints: 3,
		Models:    []pmem.FaultModel{pmem.Clean{}},
	}
	wcc, err := clean.Run(newBroken, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wcc.Failures != 0 {
		t.Errorf("clean rollback should mask the missing fences, got %d failures: %+v",
			wcc.Failures, wcc.Runs)
	}
}

// TestShrinkNegativeControl shrinks a negative-control failure and replays
// the minimized triple to confirm it still fails.
func TestShrinkNegativeControl(t *testing.T) {
	cfg := workloads.QuickConfig()
	c := &Campaign{
		Seed:      7,
		MaxPoints: 2,
		Models:    []pmem.FaultModel{pmem.TornLines{}},
	}
	results, err := c.RunAll([]func() workloads.Crasher{newBroken}, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Failures == 0 {
		t.Fatalf("expected failures to shrink, got %+v", results)
	}
	s := results[0].Shrunk
	if s == nil {
		t.Fatal("no shrunk failure reported")
	}
	if s.CrashAt <= 0 || !strings.Contains(s.Replay, "-crashat") {
		t.Errorf("malformed shrunk failure: %+v", s)
	}
	// The minimized triple must still reproduce the failure.
	mode, err := ModeByName(s.Mode)
	if err != nil {
		t.Fatal(err)
	}
	model, err := pmem.ModelByName(s.Model)
	if err != nil {
		t.Fatal(err)
	}
	var fault pmem.FaultModel = model
	if s.FaultLimit > 0 {
		fault = pmem.Subset{Base: model, Limit: s.FaultLimit}
	}
	_, runErr := workloads.RunWithPlan(newBroken(), mode, cfg, workloads.CrashPlan{
		AbortAfterOps: s.CrashAt,
		Fault:         fault,
		FaultSeed:     s.FaultSeed,
		RecrashDepth:  s.RecrashDepth,
	})
	if runErr == nil {
		t.Error("shrunk triple no longer reproduces the failure")
	}
}
