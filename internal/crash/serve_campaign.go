package crash

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpm-sim/gpm/internal/faultnet"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/serve"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// ServeCampaign sweeps the crash surface of the whole serving stack, not
// just a workload: each run boots an isolated one-shard serve.Server on an
// in-memory pipe, arms a shard crash plan (pipeline crash point x PM fault
// model x nested re-crashes), fronts the server with a fault-injecting
// network schedule, and drives it with the exactly-once retry client. The
// run passes only if the end-to-end contract held through the power
// failure AND the network faults:
//
//   - accounting: every client op either resolved or was explicitly given
//     up (none vanished),
//   - exactly-once: no request ID was applied to the committed store more
//     than once (the lost-ack retry after CrashBeforeReply must be absorbed
//     by the PM-recovered dedup marks),
//   - consistency: the durable store image still matches the committed
//     oracle after recovery,
//   - snapshot isolation (Txn runs): transaction accounting, repeatable
//     reads inside open snapshots, and the per-key commit ledger all hold
//     for the v2 transaction clients sharing the run.
//
// Every run is precomputed into a descriptor before execution and fully
// isolated (its own simulated node, server, and pipe), so records commit by
// descriptor index and the report's Identity is the same for every Workers
// value. Identity hashes only stable run coordinates and the verdict class
// — never timing-dependent counters like retries or batch composition.
type ServeCampaign struct {
	// Seed anchors every derived fault and load seed; equal campaigns
	// replay identically.
	Seed uint64

	// Sweep axes; nil takes the default for each.
	Modes     []workloads.Mode    // nil = ServeStudyModes
	Schedules []faultnet.Schedule // nil = faultnet.Schedules()
	Models    []pmem.FaultModel   // nil = pmem.Models()
	Points    []serve.CrashPoint  // nil = serve.CrashPoints()

	// ApplyIndices selects which mutation-bearing applies the crash plan
	// fires on (1-based; see serve.ShardCrashPlan); nil = {1, 2}.
	ApplyIndices []int64

	// Ops is the client op count per run (0 = 32); Conns the client
	// connection count (0 = 1).
	Ops   int64
	Conns int

	// RecrashDepth injects that many nested power failures during each
	// run's recovery replay.
	RecrashDepth int

	// Workers bounds concurrent runs (0 = GOMAXPROCS, 1 = the serial
	// determinism reference).
	Workers int

	// BreakDedup disables the shard's PM dedup persistence in every run —
	// the negative control proving the exactly-once invariant checker
	// catches a real lost-marks bug.
	BreakDedup bool

	// Txn additionally drives snapshot-isolation transactions during every
	// run: v2 transaction clients run closed-loop RMW increment
	// transactions over a key range disjoint from the plain load, sharing
	// the server (and its faults and crashes) with the v1 retry clients.
	// The run must then also hold the SI contract: every issued
	// transaction accounted for, zero repeatable-read anomalies inside
	// open snapshots, and for every transaction key owning its store slot
	// alone, the durable increment count within
	// [Committed[k], Committed[k]+Unresolved[k]].
	Txn bool

	// Txns is the transaction count per run when Txn is set (0 = 24).
	Txns int64

	// BreakSI disables commit-time conflict validation in every run's
	// server — the negative control proving the SI ledger checker catches
	// lost updates from unvalidated concurrent commits.
	BreakSI bool
}

// Transaction-load shape for Txn runs. The key range sits far above the
// plain load's [1, servePlainKeys] and the client IDs far above the plain
// workers', so the two traffic classes share the server but never a dedup
// identity — and only collide on store slots by hash accident, which the
// ledger check excludes per key.
const (
	servePlainKeys   = 48
	serveTxnKeyBase  = 1 << 20
	serveTxnKeySpace = 16
	serveTxnSize     = 2
	serveTxnConns    = 2
	serveTxnCIDBase  = 64
)

// ServeStudyModes are the persistence modes the serve campaign sweeps by
// default: the paper's GPM plus the projected-hardware eADR variant, the
// same pair the workload-level crash study uses.
var ServeStudyModes = []workloads.Mode{workloads.GPM, workloads.GPMeADR}

// Serve campaign verdict classes. NotReached means the armed crash plan
// never fired (the run saw fewer mutation applies than ApplyIndex) — the
// invariants still held, but the crash path went unexercised.
const (
	ServeVerdictOK         = "ok"
	ServeVerdictNotReached = "not-reached"
	ServeVerdictFail       = "fail"
)

// ServeRunRecord is one (mode, net schedule, fault model, crash point,
// apply index) execution. The first six fields plus Verdict are the stable
// coordinates Identity hashes; the counters after them are informational
// and may legitimately vary with scheduling (batch composition decides
// which ops ride the crashed epoch).
type ServeRunRecord struct {
	Mode       string `json:"mode"`
	Schedule   string `json:"schedule"`
	Model      string `json:"model"`
	Point      string `json:"point"`
	ApplyIndex int64  `json:"apply_index"`
	FaultSeed  uint64 `json:"fault_seed"`
	Verdict    string `json:"verdict"`
	Err        string `json:"error,omitempty"`

	Ops        int64 `json:"ops"`     // client ops resolved
	GaveUp     int64 `json:"gave_up"` // client ops abandoned after retry caps
	Errors     int64 `json:"errors"`  // ERR replies observed by the client
	Retries    int64 `json:"retries"`
	Reconnects int64 `json:"reconnects"`
	Restarts   int64 `json:"restarts"`   // shard crash-recovery cycles
	NetResets  int64 `json:"net_resets"` // injected connection resets
	NetDups    int64 `json:"net_dups"`   // injected duplicate lines

	// Transaction-load tallies; only set when the campaign drives Txn.
	TxnCommits   int64 `json:"txn_commits,omitempty"`
	TxnAborts    int64 `json:"txn_aborts,omitempty"`
	TxnGaveUp    int64 `json:"txn_gave_up,omitempty"`
	TxnSnapsLost int64 `json:"txn_snapshots_lost,omitempty"`
}

// ServeCampaignReport aggregates one sweep. Identity is the hex FNV-64a of
// every run's stable coordinates and verdict, in descriptor order — equal
// reports from different Workers values hash identically.
type ServeCampaignReport struct {
	Runs     []ServeRunRecord `json:"runs"`
	Failures int              `json:"failures"`
	Identity string           `json:"identity"`
	Shrunk   *ServeShrunk     `json:"shrunk,omitempty"`
}

// ServeShrunk is a minimized, replayable serve-campaign failure: the
// mildest network schedule, fault model, apply index, and op count that
// still violate an invariant under the same seed. Replay is the gpmchaos
// invocation reproducing it.
type ServeShrunk struct {
	Mode       string `json:"mode"`
	Schedule   string `json:"schedule"`
	Model      string `json:"model"`
	Point      string `json:"point"`
	ApplyIndex int64  `json:"apply_index"`
	Ops        int64  `json:"ops"`
	Seed       uint64 `json:"seed"`
	BreakDedup bool   `json:"break_dedup,omitempty"`
	Txn        bool   `json:"txn,omitempty"`
	BreakSI    bool   `json:"break_si,omitempty"`
	Err        string `json:"error"`
	Replay     string `json:"replay"`
}

func (c *ServeCampaign) modes() []workloads.Mode {
	if len(c.Modes) > 0 {
		return c.Modes
	}
	return ServeStudyModes
}

func (c *ServeCampaign) schedules() []faultnet.Schedule {
	if len(c.Schedules) > 0 {
		return c.Schedules
	}
	return faultnet.Schedules()
}

func (c *ServeCampaign) serveModels() []pmem.FaultModel {
	if len(c.Models) > 0 {
		return c.Models
	}
	return pmem.Models()
}

func (c *ServeCampaign) points() []serve.CrashPoint {
	if len(c.Points) > 0 {
		return c.Points
	}
	return serve.CrashPoints()
}

func (c *ServeCampaign) indices() []int64 {
	if len(c.ApplyIndices) > 0 {
		return c.ApplyIndices
	}
	return []int64{1, 2}
}

func (c *ServeCampaign) ops() int64 {
	if c.Ops > 0 {
		return c.Ops
	}
	return 32
}

func (c *ServeCampaign) conns() int {
	if c.Conns > 0 {
		return c.Conns
	}
	return 1
}

func (c *ServeCampaign) txns() int64 {
	if c.Txns > 0 {
		return c.Txns
	}
	return 24
}

// serveDesc is one precomputed campaign run; executing it cannot be
// influenced by any other run.
type serveDesc struct {
	mode  workloads.Mode
	sched faultnet.Schedule
	model pmem.FaultModel
	point serve.CrashPoint
	index int64
	ops   int64
	rec   ServeRunRecord // pre-filled coordinates; outcome set by runOne
}

// descs expands the sweep axes into the flat descriptor list, in a fixed
// nesting order (mode, schedule, model, point, index) so run numbering is
// part of the campaign's contract.
func (c *ServeCampaign) descs() []serveDesc {
	var out []serveDesc
	for _, mode := range c.modes() {
		for _, sched := range c.schedules() {
			for _, model := range c.serveModels() {
				for _, point := range c.points() {
					for _, idx := range c.indices() {
						fs := faultSeed(c.Seed, "gpmserve",
							mode.String()+"|"+sched.Name, model.Name(),
							idx*64+int64(point))
						out = append(out, serveDesc{
							mode: mode, sched: sched, model: model,
							point: point, index: idx, ops: c.ops(),
							rec: ServeRunRecord{
								Mode:       mode.String(),
								Schedule:   sched.Name,
								Model:      model.Name(),
								Point:      point.String(),
								ApplyIndex: idx,
								FaultSeed:  fs,
							},
						})
					}
				}
			}
		}
	}
	return out
}

// Run executes the sweep and, when shrink is true and a run failed,
// reduces the first failure to a minimal replayable tuple.
func (c *ServeCampaign) Run(shrink bool) (*ServeCampaignReport, error) {
	descs := c.descs()
	if len(descs) == 0 {
		return nil, fmt.Errorf("crash: serve campaign has empty sweep axes")
	}
	recs := make([]ServeRunRecord, len(descs))
	n := c.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(descs) {
		n = len(descs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < n; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(descs) {
					return
				}
				recs[i] = c.runOne(descs[i])
			}
		}()
	}
	wg.Wait()

	rep := &ServeCampaignReport{Runs: recs}
	h := fnv.New64a()
	for _, r := range recs {
		if r.Verdict == ServeVerdictFail {
			rep.Failures++
		}
		fmt.Fprintf(h, "%s|%s|%s|%s|%d|%d|%s\n",
			r.Mode, r.Schedule, r.Model, r.Point, r.ApplyIndex, r.FaultSeed, r.Verdict)
	}
	rep.Identity = fmt.Sprintf("%016x", h.Sum64())
	if shrink && rep.Failures > 0 {
		for _, r := range rep.Runs {
			if r.Verdict == ServeVerdictFail {
				rep.Shrunk = c.ShrinkServe(r)
				break
			}
		}
	}
	return rep, nil
}

// runOne executes one descriptor: boot, arm, serve over a faulted pipe,
// drive with the retry client, drain, and judge the invariants.
func (c *ServeCampaign) runOne(d serveDesc) ServeRunRecord {
	rec := d.rec
	fail := func(format string, args ...any) ServeRunRecord {
		rec.Verdict = ServeVerdictFail
		rec.Err = fmt.Sprintf(format, args...)
		return rec
	}
	srv, err := serve.NewServer(serve.Config{
		Mode: d.mode, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
		DedupWindow: 64, Seed: rec.FaultSeed, BreakSI: c.BreakSI,
	})
	if err != nil {
		return fail("boot: %v", err)
	}
	sh := srv.Shards()[0]
	if c.BreakDedup {
		sh.DisableDedupPersist()
	}
	sh.SetCrashPlan(&serve.ShardCrashPlan{
		ApplyIndex:   d.index,
		Point:        d.point,
		Model:        d.model,
		FaultSeed:    rec.FaultSeed,
		RecrashDepth: c.RecrashDepth,
	})

	pl := faultnet.NewPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeOn(pl) }()

	// Faults ride the client side of the pipe: request lines get torn,
	// reset, and duplicated on their way in; replies get stalled on their
	// way back. That is the direction exactly-once retries must survive.
	dialer := faultnet.NewDialer(pl.Dial, d.sched, rec.FaultSeed^0xfa1c0de)
	var tres *serve.TxnLoadResult
	var tErr error
	txnDone := make(chan struct{})
	if c.Txn {
		// Transactions run concurrently with the plain load: v2 commits
		// and v1 writes share epochs, faults, and the crash plan.
		go func() {
			defer close(txnDone)
			tres, tErr = serve.RunTxnLoad(serve.TxnLoadConfig{
				Dial: dialer.Dial, Conns: serveTxnConns, Txns: c.txns(),
				TxnSize: serveTxnSize, KeyBase: serveTxnKeyBase,
				KeySpace: serveTxnKeySpace, CIDBase: serveTxnCIDBase,
				Seed:    rec.FaultSeed ^ 0x5bd1e9955bd1e995,
				Timeout: 10 * time.Second,
				Retry:   true, MaxRetries: 12, RetryBackoff: 200 * time.Microsecond,
				MaxAttempts: 16,
			})
		}()
	} else {
		close(txnDone)
	}
	res, loadErr := serve.RunLoad(serve.LoadConfig{
		Conns: c.conns(), Ops: d.ops, Window: 4,
		GetFraction: 0.25, DelFraction: 0.125, KeySpace: servePlainKeys,
		Seed:    rec.FaultSeed ^ 0x1c3a5e7d9bfd1357,
		Timeout: 10 * time.Second,
		Retry:   true, MaxRetries: 12, RetryBackoff: 200 * time.Microsecond,
		Dial: dialer.Dial,
	})
	<-txnDone
	srv.Shutdown(5 * time.Second)
	<-serveDone

	if res != nil {
		rec.Ops, rec.GaveUp, rec.Errors = res.Ops, res.GaveUp, res.Errors
		rec.Retries, rec.Reconnects = res.Retries, res.Reconnects
	}
	if tres != nil {
		rec.TxnCommits, rec.TxnAborts = tres.Txns, tres.Aborts
		rec.TxnGaveUp, rec.TxnSnapsLost = tres.GaveUp, tres.SnapshotsLost
		rec.Retries += tres.Retries
		rec.Reconnects += tres.Reconnects
	}
	rec.Restarts = srv.Status()[0].Restarts
	st := dialer.Stats()
	rec.NetResets, rec.NetDups = st.Resets(), st.Dups()

	var probs []string
	if loadErr != nil {
		probs = append(probs, fmt.Sprintf("client transport gave out: %v", loadErr))
	}
	if res != nil && res.Ops+res.GaveUp != d.ops {
		probs = append(probs, fmt.Sprintf(
			"accounting: %d resolved + %d given up != %d issued", res.Ops, res.GaveUp, d.ops))
	}
	if v := sh.TallyViolations(); len(v) > 0 {
		probs = append(probs, fmt.Sprintf("exactly-once violated: IDs %v applied more than once", v))
	}
	if v := srv.AckViolations(); len(v) > 0 {
		probs = append(probs, fmt.Sprintf("lost update: IDs %v acked from high-water marks without exactly one apply", v))
	}
	if err := sh.Verify(); err != nil {
		probs = append(probs, fmt.Sprintf("store verify: %v", err))
	}
	if c.Txn {
		probs = append(probs, c.txnProbs(tres, tErr, sh)...)
	}
	if len(probs) > 0 {
		return fail("%s", strings.Join(probs, "; "))
	}
	if !sh.PlanFired() {
		rec.Verdict = ServeVerdictNotReached
	} else {
		rec.Verdict = ServeVerdictOK
	}
	return rec
}

// txnProbs judges the snapshot-isolation contract after a Txn run:
// transaction accounting, repeatable reads, and the per-key SI ledger.
// The ledger compares each transaction key's durable increment count
// (every committed transaction read-modify-wrote exactly +1) against the
// client-side tally: at least every acknowledged commit, at most that
// plus the commits whose outcome stayed unknown. Keys sharing a store
// slot with any other key — plain or transactional — are excluded, since
// a colliding SET legally evicts the incumbent's value.
func (c *ServeCampaign) txnProbs(tres *serve.TxnLoadResult, tErr error, sh *serve.Shard) []string {
	var probs []string
	if tErr != nil {
		probs = append(probs, fmt.Sprintf("txn client gave out: %v", tErr))
	}
	if tres == nil {
		return probs
	}
	if tErr == nil {
		if got := tres.Txns + tres.AbortedForGood + tres.GaveUp; got != c.txns() {
			probs = append(probs, fmt.Sprintf(
				"txn accounting: %d committed + %d dropped + %d unknown != %d issued",
				tres.Txns, tres.AbortedForGood, tres.GaveUp, c.txns()))
		}
	}
	if tres.ReadAnomalies > 0 {
		probs = append(probs, fmt.Sprintf(
			"repeatable read violated %d times inside open snapshots", tres.ReadAnomalies))
	}
	owners := make(map[int]int)
	for k := uint64(1); k <= servePlainKeys; k++ {
		owners[sh.SlotOf(k)]++
	}
	for k := uint64(0); k < serveTxnKeySpace; k++ {
		owners[sh.SlotOf(serveTxnKeyBase+k)]++
	}
	for k := uint64(0); k < serveTxnKeySpace; k++ {
		key := serveTxnKeyBase + k
		if owners[sh.SlotOf(key)] != 1 {
			continue
		}
		lo := tres.Committed[key]
		hi := lo + tres.Unresolved[key]
		v, _ := sh.MVCCLatest(key) // absent reads as 0
		if int64(v) < lo || int64(v) > hi {
			probs = append(probs, fmt.Sprintf(
				"si ledger: key %d durable count %d outside [%d, %d] (%d commits acked, %d unknown)",
				key, v, lo, hi, tres.Committed[key], tres.Unresolved[key]))
		}
	}
	return probs
}

// ShrinkServe minimizes a failing serve run along four axes in severity
// order — network schedule to clean, PM fault model to clean, apply index
// down, op count down — re-executing every candidate and keeping only
// reductions that still fail. The result is a replayable tuple; failure is
// not guaranteed monotone, so it is best-effort minimal but always
// re-confirmed.
func (c *ServeCampaign) ShrinkServe(rec ServeRunRecord) *ServeShrunk {
	mode, err := serve.ModeByName(rec.Mode)
	if err != nil {
		return nil
	}
	sched, err := faultnet.ScheduleByName(rec.Schedule)
	if err != nil {
		return nil
	}
	model, err := pmem.ModelByName(rec.Model)
	if err != nil {
		return nil
	}
	point, err := ServePointByName(rec.Point)
	if err != nil {
		return nil
	}
	// reseed re-derives the candidate's fault seed from its (possibly
	// reduced) coordinates, exactly as descs and ReplayServe do — so every
	// reduction we confirm is the run the replay command will execute.
	reseed := func(d serveDesc) serveDesc {
		d.rec.FaultSeed = faultSeed(c.Seed, "gpmserve",
			d.mode.String()+"|"+d.sched.Name, d.model.Name(),
			d.index*64+int64(d.point))
		return d
	}
	cur := reseed(serveDesc{
		mode: mode, sched: sched, model: model, point: point,
		index: rec.ApplyIndex, ops: c.ops(), rec: rec,
	})
	cur.rec.Err, cur.rec.Verdict = "", ""
	fails := func(d serveDesc) (bool, string) {
		r := c.runOne(d)
		return r.Verdict == ServeVerdictFail, r.Err
	}
	ok, lastErr := fails(cur)
	if !ok {
		return nil // not reproducible in isolation; nothing to shrink
	}

	if cur.sched.Name != "clean" {
		cand := cur
		cand.sched, _ = faultnet.ScheduleByName("clean")
		cand.rec.Schedule = "clean"
		cand = reseed(cand)
		if ok, e := fails(cand); ok {
			cur, lastErr = cand, e
		}
	}
	if cur.model.Name() != "clean" {
		cand := cur
		cand.model = pmem.Clean{}
		cand.rec.Model = "clean"
		cand = reseed(cand)
		if ok, e := fails(cand); ok {
			cur, lastErr = cand, e
		}
	}
	// Smallest apply index that still fails (binary search toward 1).
	lo, hi := int64(1), cur.index
	for lo < hi {
		mid := lo + (hi-lo)/2
		cand := cur
		cand.index, cand.rec.ApplyIndex = mid, mid
		cand = reseed(cand)
		if ok, e := fails(cand); ok {
			hi, cur, lastErr = mid, cand, e
		} else {
			lo = mid + 1
		}
	}
	// Halve the op count while the failure survives.
	for cur.ops > 8 {
		cand := cur
		cand.ops = cur.ops / 2
		ok, e := fails(cand)
		if !ok {
			break
		}
		cur, lastErr = cand, e
	}

	s := &ServeShrunk{
		Mode:       cur.rec.Mode,
		Schedule:   cur.rec.Schedule,
		Model:      cur.rec.Model,
		Point:      cur.rec.Point,
		ApplyIndex: cur.index,
		Ops:        cur.ops,
		Seed:       c.Seed,
		BreakDedup: c.BreakDedup,
		Txn:        c.Txn,
		BreakSI:    c.BreakSI,
		Err:        lastErr,
	}
	s.Replay = fmt.Sprintf(
		"gpmchaos -serve -mode %s -schedule %s -model %s -point %s -apply-index %d -ops %d -seed %d",
		s.Mode, s.Schedule, s.Model, s.Point, s.ApplyIndex, s.Ops, s.Seed)
	if s.BreakDedup {
		s.Replay += " -break-dedup"
	}
	if s.Txn {
		s.Replay += " -txn"
	}
	if s.BreakSI {
		s.Replay += " -break-si"
	}
	return s
}

// ReplayServe re-executes a shrunk tuple as a single campaign run and
// returns its record — the round trip gpmchaos uses to confirm a shrunk
// failure still reproduces.
func (c *ServeCampaign) ReplayServe(s *ServeShrunk) (ServeRunRecord, error) {
	mode, err := serve.ModeByName(s.Mode)
	if err != nil {
		return ServeRunRecord{}, err
	}
	sched, err := faultnet.ScheduleByName(s.Schedule)
	if err != nil {
		return ServeRunRecord{}, err
	}
	model, err := pmem.ModelByName(s.Model)
	if err != nil {
		return ServeRunRecord{}, err
	}
	point, err := ServePointByName(s.Point)
	if err != nil {
		return ServeRunRecord{}, err
	}
	fs := faultSeed(c.Seed, "gpmserve", mode.String()+"|"+sched.Name,
		model.Name(), s.ApplyIndex*64+int64(point))
	// The shrunk tuple carries its break switches and txn flag so a
	// JSON-driven replay reproduces them even on a fresh campaign value.
	cc := *c
	cc.BreakDedup = cc.BreakDedup || s.BreakDedup
	cc.Txn = cc.Txn || s.Txn
	cc.BreakSI = cc.BreakSI || s.BreakSI
	return cc.runOne(serveDesc{
		mode: mode, sched: sched, model: model, point: point,
		index: s.ApplyIndex, ops: s.Ops,
		rec: ServeRunRecord{
			Mode: s.Mode, Schedule: s.Schedule, Model: s.Model,
			Point: s.Point, ApplyIndex: s.ApplyIndex, FaultSeed: fs,
		},
	}), nil
}

// ServePointByName resolves a serve.CrashPoint from its String form.
func ServePointByName(name string) (serve.CrashPoint, error) {
	var valid []string
	for _, p := range serve.CrashPoints() {
		if p.String() == name {
			return p, nil
		}
		valid = append(valid, p.String())
	}
	return 0, fmt.Errorf("crash: unknown crash point %q (valid: %s)", name, strings.Join(valid, ", "))
}
