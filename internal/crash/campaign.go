package crash

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Campaign sweeps a workload's crash-schedule space deterministically:
// crash points strided across the whole execution (not just the second
// half), every fault model, every supported crash-study mode, and nested
// crashes injected during recovery. The same Campaign fields + Seed always
// produce the same runs, so any failure is replayable from its record.
type Campaign struct {
	// Seed anchors every derived fault seed; two campaigns with equal
	// fields replay identically.
	Seed uint64

	// Stride crashes at every Stride-th device operation (1, 1+Stride,
	// ...). <=0 derives a stride that yields DefaultPoints evenly spaced
	// crash points from the workload's calibrated op count.
	Stride int64

	// MaxPoints caps the swept crash points per (mode, model) pair; when a
	// stride produces more, the sweep samples them evenly. 0 means
	// DefaultPoints.
	MaxPoints int

	// Models are the fault models to sweep; nil means all of pmem.Models.
	Models []pmem.FaultModel

	// Modes restricts the sweep; nil means every CrashStudyModes entry the
	// workload Supports.
	Modes []workloads.Mode

	// RecrashDepth and RecrashEvery configure nested crashes during
	// recovery (see workloads.CrashPlan).
	RecrashDepth int
	RecrashEvery int64

	// Workers bounds how many campaign runs execute concurrently
	// (0 = GOMAXPROCS, 1 = the serial determinism reference). Every run is
	// fully isolated — its own pmem.Device, core.Context, and (when the
	// Config carries telemetry) its own metrics registry — and results are
	// committed by precomputed run index, so the report, verdicts, and
	// merged metrics are byte-identical for every Workers value.
	Workers int

	calib calibCache // memoized CountOps per (workload, mode); see inject.go
}

// DefaultPoints is the crash-point budget when Stride/MaxPoints are unset.
const DefaultPoints = 4

// RunRecord is one (workload, mode, model, crash point) execution. Err is
// empty for a verified recovery; otherwise the triple (CrashAt, FaultSeed,
// Model) plus the campaign's re-crash settings replays the failure exactly.
type RunRecord struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	Model        string  `json:"model"`
	CrashAt      int64   `json:"crash_at"`
	FaultSeed    uint64  `json:"fault_seed"`
	RecrashDepth int     `json:"recrash_depth"`
	RestoreUS    float64 `json:"restore_us"`
	Err          string  `json:"error,omitempty"`
}

// WorkloadCampaign aggregates one workload's sweep.
//
// Ownership: a plain value copy aliases the Runs slice and the Shrunk
// pointer — `b := *a` shares both with a. Use Clone for an independent
// copy before mutating or retaining a campaign that others may also hold
// (RunRecord and ShrunkFailure themselves are pure value structs, so
// copying the elements is enough).
type WorkloadCampaign struct {
	Workload string         `json:"workload"`
	TotalOps int64          `json:"total_ops"` // calibrated op count under the first swept mode
	Runs     []RunRecord    `json:"runs"`
	Failures int            `json:"failures"`
	Shrunk   *ShrunkFailure `json:"shrunk,omitempty"`
}

// Clone returns a deep copy of wc: the Runs slice and Shrunk pointer are
// duplicated so mutating the clone (or the original) cannot affect the
// other. A nil receiver returns nil.
func (wc *WorkloadCampaign) Clone() *WorkloadCampaign {
	if wc == nil {
		return nil
	}
	out := *wc
	if wc.Runs != nil {
		out.Runs = make([]RunRecord, len(wc.Runs))
		copy(out.Runs, wc.Runs)
	}
	if wc.Shrunk != nil {
		s := *wc.Shrunk
		out.Shrunk = &s
	}
	return &out
}

func (c *Campaign) models() []pmem.FaultModel {
	if len(c.Models) > 0 {
		return c.Models
	}
	return pmem.Models()
}

func (c *Campaign) modesFor(w workloads.Workload) []workloads.Mode {
	candidates := c.Modes
	if len(candidates) == 0 {
		candidates = CrashStudyModes
	}
	var out []workloads.Mode
	for _, m := range candidates {
		if w.Supports(m) {
			out = append(out, m)
		}
	}
	return out
}

// sweepPoints returns the deterministic crash points for a run of total
// ops: every stride-th op, evenly downsampled to at most max points.
func sweepPoints(total, stride int64, max int) []int64 {
	if total <= 0 {
		return nil
	}
	if max <= 0 {
		max = DefaultPoints
	}
	if stride <= 0 {
		stride = total / int64(max)
		if stride < 1 {
			stride = 1
		}
	}
	var pts []int64
	for p := stride; p <= total; p += stride {
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		pts = []int64{total / 2}
	}
	if len(pts) > max {
		sampled := make([]int64, 0, max)
		for i := 0; i < max; i++ {
			sampled = append(sampled, pts[i*len(pts)/max])
		}
		pts = sampled
	}
	return pts
}

// faultSeed derives a stable per-run seed from the campaign seed and the
// run's coordinates, so each run's fault stream is independent yet
// replayable from the record alone.
func faultSeed(base uint64, workload, mode, model string, crashAt int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d", workload, mode, model, crashAt)
	return base ^ h.Sum64()
}

// runDesc is one precomputed campaign run: everything needed to execute it
// is decided up front, so execution order cannot influence the report.
type runDesc struct {
	mode workloads.Mode
	plan workloads.CrashPlan
	rec  RunRecord // pre-filled coordinates; outcome fields set by execute
}

// Run sweeps one workload and returns its campaign report. Calibration
// errors (the workload cannot even run under a mode) are returned as
// errors; recovery failures are recorded in the report.
//
// The sweep runs in two phases. Planning is serial: each mode is calibrated
// once (memoized — crash points never re-run the op census), and one base
// plan per (mode, model) pair is specialized per crash point into a flat
// descriptor list. Execution fans the descriptors over Workers goroutines;
// every run builds a fresh isolated node and commits its record by
// descriptor index, so the report is identical for any Workers value.
func (c *Campaign) Run(mk func() workloads.Crasher, cfg workloads.Config) (*WorkloadCampaign, error) {
	w := mk()
	wc := &WorkloadCampaign{Workload: w.Name()}
	modes := c.modesFor(w)
	if len(modes) == 0 {
		return nil, fmt.Errorf("%s supports no crash-study mode", w.Name())
	}
	var descs []runDesc
	for mi, mode := range modes {
		total, err := c.calib.countOps(mk, w.Name(), mode, cfg)
		if err != nil {
			return nil, fmt.Errorf("calibrate %s/%s: %w", w.Name(), mode, err)
		}
		if mi == 0 {
			wc.TotalOps = total
		}
		points := sweepPoints(total, c.Stride, c.MaxPoints)
		for _, model := range c.models() {
			// One base plan per (mode, model); each crash point only
			// specializes the abort index and fault seed.
			base := workloads.CrashPlan{
				Fault:        model,
				RecrashDepth: c.RecrashDepth,
				RecrashEvery: c.RecrashEvery,
			}
			for _, pt := range points {
				plan := base
				plan.AbortAfterOps = pt
				plan.FaultSeed = faultSeed(c.Seed, w.Name(), mode.String(), model.Name(), pt)
				descs = append(descs, runDesc{
					mode: mode,
					plan: plan,
					rec: RunRecord{
						Workload:     w.Name(),
						Mode:         mode.String(),
						Model:        model.Name(),
						CrashAt:      pt,
						FaultSeed:    plan.FaultSeed,
						RecrashDepth: c.RecrashDepth,
					},
				})
			}
		}
	}
	runs, err := c.execute(mk, cfg, descs)
	if err != nil {
		return nil, err
	}
	wc.Runs = runs
	for _, r := range wc.Runs {
		if r.Err != "" {
			wc.Failures++
		}
	}
	return wc, nil
}

// workers resolves the campaign's worker-pool size. The CLIs validate
// their -workers flags upfront; library callers setting Campaign.Workers
// directly get the same bound (a pool larger than MaxWorkers is certainly
// a miscomputed value, and buys nothing — runs beyond the descriptor count
// just idle).
func (c *Campaign) workers() int {
	if c.Workers > workloads.MaxWorkers {
		return workloads.MaxWorkers
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// execute fans the descriptor list over a bounded worker pool. Each run is a
// fully isolated simulated node (NewEnv inside RunWorkload builds a private
// pmem.Device and core.Context), so runs share no mutable state; records
// land at their descriptor index, keeping report order deterministic.
//
// When cfg carries telemetry, each run writes to a private registry and the
// registries merge into the campaign registry in descriptor order after the
// pool drains — counters and histograms sum and the merge order fixes gauge
// last-writer, so the aggregate is byte-identical to a serial sweep.
// Campaign telemetry is metrics-only: per-run trace spans are discarded
// (interleaved traces from concurrent runs would not be meaningful).
func (c *Campaign) execute(mk func() workloads.Crasher, cfg workloads.Config, descs []runDesc) ([]RunRecord, error) {
	recs := make([]RunRecord, len(descs))
	tels := make([]*telemetry.Telemetry, len(descs))
	n := c.workers()
	if n > len(descs) {
		n = len(descs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < n; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(descs) {
					return
				}
				d := descs[i]
				runCfg := cfg
				if cfg.Telemetry != nil {
					tels[i] = telemetry.New()
					runCfg.Telemetry = tels[i]
				}
				rec := d.rec
				rep, err := workloads.RunWorkload(mk(),
					workloads.WithMode(d.mode),
					workloads.WithConfig(runCfg),
					workloads.WithCrashPlan(d.plan))
				if err != nil {
					rec.Err = err.Error()
				} else {
					rec.RestoreUS = rep.Restore.Seconds() * 1e6
				}
				recs[i] = rec
			}
		}()
	}
	wg.Wait()
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry.Registry()
		for _, t := range tels {
			if err := reg.Merge(t.Registry()); err != nil {
				// Every run instruments the same metrics with the same
				// bounds, so a mismatch means the aggregate is corrupt —
				// refuse to report rather than publish bad numbers.
				return nil, fmt.Errorf("crash: merging per-run metrics: %w", err)
			}
		}
	}
	return recs, nil
}

// RunAll sweeps every workload and, when shrink is true, reduces the first
// failure of each failing workload to a minimal replayable triple.
func (c *Campaign) RunAll(mks []func() workloads.Crasher, cfg workloads.Config, shrink bool) ([]*WorkloadCampaign, error) {
	var out []*WorkloadCampaign
	for _, mk := range mks {
		wc, err := c.Run(mk, cfg)
		if err != nil {
			return out, err
		}
		if shrink && wc.Failures > 0 {
			for _, r := range wc.Runs {
				if r.Err != "" {
					wc.Shrunk = c.Shrink(mk, cfg, r)
					break
				}
			}
		}
		out = append(out, wc)
	}
	return out, nil
}

// ModeByName resolves a workloads.Mode from its String form.
func ModeByName(name string) (workloads.Mode, error) {
	for m := workloads.GPM; m <= workloads.CPUOnly; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("crash: unknown mode %q", name)
}
