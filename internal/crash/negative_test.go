package crash

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// brokenStore is a deliberately incorrect Crasher: it updates pairs of
// PM-resident records in place with no logging and no fencing, violating
// the undo-log discipline every real GPMbench workload follows. Under the
// clean fault model a crash rolls every unpersisted write back and the
// initial state verifies fine — the bug is invisible. The torn models must
// catch it: each record pair spans two cache lines, so a torn crash strands
// half-updated pairs that Verify rejects. It exists to prove the campaign
// has teeth (a negative control).
type brokenStore struct {
	pairs int
	file  uint64 // PM base: pair i is (a_i @ i*128, b_i @ i*128+64)
}

const (
	brokenPairs   = 64
	brokenStride  = 128 // a and b on separate 64B lines
	brokenInitVal = 1
	brokenNewVal  = 2
)

func newBroken() workloads.Crasher { return &brokenStore{pairs: brokenPairs} }

func (b *brokenStore) Name() string  { return "NEG" }
func (b *brokenStore) Class() string { return "negative-control" }

// Supports restricts the control to plain GPM: under eADR every write is
// instantly durable, so the missing fences are not a bug there.
func (b *brokenStore) Supports(mode workloads.Mode) bool { return mode == workloads.GPM }

func (b *brokenStore) Setup(env *workloads.Env) error {
	f, err := env.Ctx.FS.Create("/pm/neg.store", int64(b.pairs)*brokenStride, 0)
	if err != nil {
		return err
	}
	b.file = f.Mmap()
	sp := env.Ctx.Space
	for i := 0; i < b.pairs; i++ {
		sp.WriteU64(b.file+uint64(i)*brokenStride, brokenInitVal)
		sp.WriteU64(b.file+uint64(i)*brokenStride+64, brokenInitVal)
	}
	sp.PersistRange(b.file, b.pairs*brokenStride)
	return nil
}

// Run updates every pair in place: a_i then b_i, no log entry, no fence.
func (b *brokenStore) Run(env *workloads.Env) error {
	env.PersistKernelBegin()
	base := b.file
	pairs := b.pairs
	env.Ctx.Launch("neg-update", 1, pairs, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= pairs {
			return
		}
		t.StoreU64(base+uint64(i)*brokenStride, brokenNewVal)
		t.Compute(10 * sim.Nanosecond)
		t.StoreU64(base+uint64(i)*brokenStride+64, brokenNewVal)
	})
	env.PersistKernelEnd()
	env.CountOps(int64(pairs))
	return nil
}

func (b *brokenStore) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := b.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	if err == gpu.ErrCrashed {
		return nil
	}
	return err
}

// Recover is a no-op: with no log there is nothing to undo — which is
// exactly the defect.
func (b *brokenStore) Recover(env *workloads.Env) error { return nil }

// Verify demands pair consistency: a_i == b_i, both either the initial or
// the updated value. A crash that strands one side of a pair fails here.
func (b *brokenStore) Verify(env *workloads.Env) error {
	sp := env.Ctx.Space
	for i := 0; i < b.pairs; i++ {
		a := sp.ReadU64(b.file + uint64(i)*brokenStride)
		c := sp.ReadU64(b.file + uint64(i)*brokenStride + 64)
		if a != c {
			return fmt.Errorf("neg: pair %d torn: a=%d b=%d", i, a, c)
		}
		if a != brokenInitVal && a != brokenNewVal {
			return fmt.Errorf("neg: pair %d corrupt value %d", i, a)
		}
	}
	return nil
}
