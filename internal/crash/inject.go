// Package crash is the NVBitFI analog (§6.2) grown into a recovery
// auditor: it injects crashes at chosen or pseudo-random points during GPU
// execution, simulates the power failure under an adversarial persistence
// fault model (torn lines, torn words, reordered persists), optionally
// fails the power again while recovery is running, drives the workload's
// recovery procedure, and verifies the result. Campaign sweeps the whole
// schedule space deterministically; Shrink reduces a failing run to a
// minimal replayable (seed, schedule, model) triple.
package crash

import (
	"fmt"
	"sync"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// CrashStudyModes are the persistence modes under which the recovery study
// runs: §6.2 evaluates GPM, and GPM-eADR is the projected-hardware variant
// whose drained caches make every crash friendly (a useful control).
var CrashStudyModes = []workloads.Mode{workloads.GPM, workloads.GPMeADR}

// Injector drives randomized crash-recovery stress runs.
type Injector struct {
	rng   *sim.RNG
	calib calibCache
}

// NewInjector returns an injector with a deterministic crash-point stream.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: sim.NewRNG(seed)}
}

// calibCache memoizes CountOps results per (workload, mode). The op count is
// a function of (workload, mode, cfg); the cache lives inside one Injector or
// Campaign, which by construction runs with a single Config, so the key can
// omit it. This hoists the sacrificial calibration run out of sweep loops:
// one run per (workload, mode) instead of one per crash point or per Stress
// call.
type calibCache struct {
	mu sync.Mutex
	m  map[string]int64
}

func (c *calibCache) countOps(mk func() workloads.Crasher, name string, mode workloads.Mode, cfg workloads.Config) (int64, error) {
	key := name + "|" + mode.String()
	c.mu.Lock()
	if n, ok := c.m[key]; ok {
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	n, err := CountOps(mk(), mode, cfg)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[key] = n
	c.mu.Unlock()
	return n, nil
}

// Result reports one stress run.
type Result struct {
	Mode    workloads.Mode
	CrashAt int64 // device-operation index of the injected fault
	Report  *workloads.Report
}

// Stress measures a workload's operation count on a sacrificial instance
// (memoized per (workload, mode) across calls, so repeated stress runs pay
// for calibration once), crashes a fresh instance at a random point in the
// second half of
// execution (so recovery has real state to work with), recovers, verifies,
// and reports. An error means recovery produced incorrect state — the §6.2
// experiment failing.
func (in *Injector) Stress(mk func() workloads.Crasher, mode workloads.Mode, cfg workloads.Config) (*Result, error) {
	total, err := in.calib.countOps(mk, mk().Name(), mode, cfg)
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	if total < 4 {
		return nil, fmt.Errorf("workload too small to crash (only %d ops)", total)
	}
	// Crash in the second half: late enough that transactional workloads
	// are mid-batch and checkpointing ones have a checkpoint to restore.
	crashAt := total/2 + in.rng.Int63n(total/2-1) + 1
	rep, err := workloads.RunWithCrash(mk(), mode, cfg, crashAt)
	if err != nil {
		return nil, err
	}
	return &Result{Mode: mode, CrashAt: crashAt, Report: rep}, nil
}

// StressAll stresses the workload under every crash-study mode it Supports
// and returns one result per mode. The first recovery failure aborts the
// sweep and is returned alongside the results collected so far.
func (in *Injector) StressAll(mk func() workloads.Crasher, cfg workloads.Config) ([]*Result, error) {
	var out []*Result
	w := mk()
	for _, mode := range CrashStudyModes {
		if !w.Supports(mode) {
			continue
		}
		res, err := in.Stress(mk, mode, cfg)
		if err != nil {
			return out, fmt.Errorf("%s under %s: %w", w.Name(), mode, err)
		}
		out = append(out, res)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s supports no crash-study mode", w.Name())
	}
	return out, nil
}

// CountOps runs the workload once under mode with a never-firing abort
// check to learn its total device-operation count (the crash-point space).
func CountOps(w workloads.Crasher, mode workloads.Mode, cfg workloads.Config) (int64, error) {
	if !w.Supports(mode) {
		return 0, fmt.Errorf("workloads: %s does not support %s", w.Name(), mode)
	}
	env := workloads.NewEnv(mode, cfg)
	if err := w.Setup(env); err != nil {
		return 0, err
	}
	env.Ctx.Dev.SetAbortCheck(func(int64) bool { return false })
	env.BeginOps()
	if err := w.Run(env); err != nil {
		return 0, err
	}
	n := env.Ctx.Dev.ObservedOps()
	env.Ctx.Dev.SetAbortCheck(nil)
	return n, nil
}
