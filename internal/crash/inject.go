// Package crash is the NVBitFI analog (§6.2): it injects crashes at
// pseudo-random points during GPU execution, simulates the power failure,
// drives the workload's recovery procedure, and verifies the result.
package crash

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Injector drives randomized crash-recovery stress runs.
type Injector struct {
	rng *sim.RNG
}

// NewInjector returns an injector with a deterministic crash-point stream.
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: sim.NewRNG(seed)}
}

// Result reports one stress run.
type Result struct {
	CrashAt int64 // device-operation index of the injected fault
	Report  *workloads.Report
}

// Stress measures a workload's operation count on a sacrificial instance,
// crashes a fresh instance at a random point in the second half of
// execution (so recovery has real state to work with), recovers, verifies,
// and reports. An error means recovery produced incorrect state — the §6.2
// experiment failing.
func (in *Injector) Stress(mk func() workloads.Crasher, cfg workloads.Config) (*Result, error) {
	total, err := in.countOps(mk(), cfg)
	if err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	if total < 4 {
		return nil, fmt.Errorf("workload too small to crash (only %d ops)", total)
	}
	// Crash in the second half: late enough that transactional workloads
	// are mid-batch and checkpointing ones have a checkpoint to restore.
	crashAt := total/2 + in.rng.Int63n(total/2-1) + 1
	rep, err := workloads.RunWithCrash(mk(), workloads.GPM, cfg, crashAt)
	if err != nil {
		return nil, err
	}
	return &Result{CrashAt: crashAt, Report: rep}, nil
}

// countOps runs the workload once with a never-firing abort check to learn
// its total device-operation count.
func (in *Injector) countOps(w workloads.Crasher, cfg workloads.Config) (int64, error) {
	env := workloads.NewEnv(workloads.GPM, cfg)
	if err := w.Setup(env); err != nil {
		return 0, err
	}
	env.Ctx.Dev.SetAbortCheck(func(int64) bool { return false })
	env.BeginOps()
	if err := w.Run(env); err != nil {
		return 0, err
	}
	n := env.Ctx.Dev.ObservedOps()
	env.Ctx.Dev.SetAbortCheck(nil)
	return n, nil
}
