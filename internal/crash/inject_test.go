package crash

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/gpdb"
	"github.com/gpm-sim/gpm/internal/graph"
	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/scan"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func TestStressKVS(t *testing.T) {
	in := NewInjector(11)
	for i := 0; i < 3; i++ {
		res, err := in.Stress(func() workloads.Crasher { return kvstore.New() }, workloads.GPM, workloads.QuickConfig())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.CrashAt <= 0 || res.Report.Restore < 0 {
			t.Errorf("run %d: odd result %+v", i, res)
		}
	}
}

func TestStressGpDBUpdate(t *testing.T) {
	in := NewInjector(13)
	if _, err := in.Stress(func() workloads.Crasher { return gpdb.New(gpdb.Update) }, workloads.GPM, workloads.QuickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestStressNativeWorkloads(t *testing.T) {
	in := NewInjector(17)
	for name, mk := range map[string]func() workloads.Crasher{
		"bfs": func() workloads.Crasher { return graph.New() },
		"ps":  func() workloads.Crasher { return scan.New() },
	} {
		if _, err := in.Stress(mk, workloads.GPM, workloads.QuickConfig()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDeterministicCrashPoints(t *testing.T) {
	a, b := NewInjector(5), NewInjector(5)
	ra, err := a.Stress(func() workloads.Crasher { return kvstore.New() }, workloads.GPM, workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Stress(func() workloads.Crasher { return kvstore.New() }, workloads.GPM, workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ra.CrashAt != rb.CrashAt {
		t.Errorf("same seed picked different crash points: %d vs %d", ra.CrashAt, rb.CrashAt)
	}
}
