package crash

import (
	"reflect"
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/faultnet"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/serve"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// The default sweep — every mode x network schedule x PM fault model x
// crash point x apply index — holds the end-to-end serving contract:
// accounting, exactly-once, store/oracle consistency. This is the
// ISSUE-level acceptance run (>= 200 runs).
func TestServeCampaignDefaultSweepHolds(t *testing.T) {
	t.Parallel()
	c := &ServeCampaign{Seed: 42}
	rep, err := c.Run(true)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Runs) < 200 {
		t.Fatalf("default sweep is %d runs, want >= 200", len(rep.Runs))
	}
	if rep.Failures != 0 {
		t.Errorf("failures = %d, want 0 (shrunk: %+v)", rep.Failures, rep.Shrunk)
		for _, r := range rep.Runs {
			if r.Verdict == ServeVerdictFail {
				t.Errorf("  %s/%s/%s/%s@%d: %s", r.Mode, r.Schedule, r.Model, r.Point, r.ApplyIndex, r.Err)
			}
		}
	}
	fired := 0
	for _, r := range rep.Runs {
		if r.Verdict == ServeVerdictOK {
			fired++
		}
	}
	if fired < len(rep.Runs)*3/4 {
		t.Errorf("only %d/%d runs reached their crash plan", fired, len(rep.Runs))
	}
	if rep.Identity == "" {
		t.Error("report has no identity hash")
	}
}

// The report is bit-identical regardless of worker count: runs are fully
// isolated, commit by descriptor index, and the identity hashes only
// stable coordinates.
func TestServeCampaignDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	slow, _ := faultnet.ScheduleByName("slow")
	chaos, _ := faultnet.ScheduleByName("chaos")
	sub := func(workers int) *ServeCampaign {
		return &ServeCampaign{
			Seed:      7,
			Modes:     []workloads.Mode{workloads.GPM},
			Schedules: []faultnet.Schedule{slow, chaos},
			Models:    []pmem.FaultModel{pmem.Clean{}, pmem.TornLines{}},
			Points:    []serve.CrashPoint{serve.CrashBeforeKernel, serve.CrashBeforeReply},
			Workers:   workers,
		}
	}
	serial, err := sub(1).Run(false)
	if err != nil {
		t.Fatalf("serial Run: %v", err)
	}
	fanned, err := sub(4).Run(false)
	if err != nil {
		t.Fatalf("fanned Run: %v", err)
	}
	if serial.Identity != fanned.Identity {
		t.Errorf("identity differs across workers: %s vs %s", serial.Identity, fanned.Identity)
	}
	if len(serial.Runs) != len(fanned.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(fanned.Runs))
	}
	for i := range serial.Runs {
		a, b := serial.Runs[i], fanned.Runs[i]
		// Only the stable coordinates must match; counters like retries
		// legitimately vary with scheduling.
		a.Ops, a.GaveUp, a.Errors, a.Retries, a.Reconnects = 0, 0, 0, 0, 0
		a.Restarts, a.NetResets, a.NetDups = 0, 0, 0
		b.Ops, b.GaveUp, b.Errors, b.Retries, b.Reconnects = 0, 0, 0, 0, 0
		b.Restarts, b.NetResets, b.NetDups = 0, 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("run %d differs across workers:\n  serial: %+v\n  fanned: %+v", i, a, b)
		}
	}
}

// Transactions ride the chaos surface: v2 snapshot-isolation clients
// share every run with the v1 plain retry load, and the SI contract —
// accounting, repeatable reads, per-key commit ledger — holds through
// network faults and power failures.
func TestServeCampaignTxnSweepHolds(t *testing.T) {
	t.Parallel()
	clean, _ := faultnet.ScheduleByName("clean")
	chaos, _ := faultnet.ScheduleByName("chaos")
	c := &ServeCampaign{
		Seed:      11,
		Txn:       true,
		Modes:     []workloads.Mode{workloads.GPM},
		Schedules: []faultnet.Schedule{clean, chaos},
		Models:    []pmem.FaultModel{pmem.Clean{}, pmem.TornLines{}},
		Points:    []serve.CrashPoint{serve.CrashBeforeKernel, serve.CrashBeforeReply},
	}
	rep, err := c.Run(true)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failures != 0 {
		t.Errorf("failures = %d, want 0 (shrunk: %+v)", rep.Failures, rep.Shrunk)
		for _, r := range rep.Runs {
			if r.Verdict == ServeVerdictFail {
				t.Errorf("  %s/%s/%s/%s@%d: %s", r.Mode, r.Schedule, r.Model, r.Point, r.ApplyIndex, r.Err)
			}
		}
	}
	var commits int64
	for _, r := range rep.Runs {
		commits += r.TxnCommits
	}
	if commits == 0 {
		t.Error("no transactions committed anywhere in the sweep")
	}
}

// Negative control: breaking dedup persistence makes the lost-ack retry
// after CrashBeforeReply re-apply, the campaign must catch it, shrink it
// to a replayable tuple, and the replay must still reproduce it.
func TestServeCampaignNegativeControlCaught(t *testing.T) {
	t.Parallel()
	clean, _ := faultnet.ScheduleByName("clean")
	c := &ServeCampaign{
		Seed:         9,
		Modes:        []workloads.Mode{workloads.GPM},
		Schedules:    []faultnet.Schedule{clean},
		Models:       []pmem.FaultModel{pmem.Clean{}},
		Points:       []serve.CrashPoint{serve.CrashBeforeReply},
		ApplyIndices: []int64{2},
		BreakDedup:   true,
	}
	rep, err := c.Run(true)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failures == 0 {
		t.Fatal("broken dedup persistence was not caught")
	}
	if rep.Shrunk == nil {
		t.Fatal("caught failure was not shrunk")
	}
	if !strings.Contains(rep.Shrunk.Err, "applied more than once") &&
		!strings.Contains(rep.Shrunk.Err, "acked from high-water marks") {
		t.Errorf("shrunk error %q does not name an exactly-once violation", rep.Shrunk.Err)
	}
	if !strings.Contains(rep.Shrunk.Replay, "-break-dedup") {
		t.Errorf("replay command %q lacks -break-dedup", rep.Shrunk.Replay)
	}
	if !strings.HasPrefix(rep.Shrunk.Replay, "gpmchaos -serve") {
		t.Errorf("replay command %q is not a gpmchaos -serve invocation", rep.Shrunk.Replay)
	}
	rec, err := c.ReplayServe(rep.Shrunk)
	if err != nil {
		t.Fatalf("ReplayServe: %v", err)
	}
	if rec.Verdict != ServeVerdictFail {
		t.Errorf("replayed shrunk tuple verdict = %s, want fail (%+v)", rec.Verdict, rec)
	}
}

// Negative control for snapshot isolation: with commit-time conflict
// validation disabled, concurrent RMW increments lose updates. The SI
// ledger must catch it, shrink it to a replayable tuple whose command
// carries -txn -break-si, and the replay must still reproduce it.
func TestServeCampaignBreakSICaught(t *testing.T) {
	t.Parallel()
	clean, _ := faultnet.ScheduleByName("clean")
	c := &ServeCampaign{
		Seed:         13,
		Txn:          true,
		Txns:         64,
		BreakSI:      true,
		Modes:        []workloads.Mode{workloads.GPM},
		Schedules:    []faultnet.Schedule{clean},
		Models:       []pmem.FaultModel{pmem.Clean{}},
		Points:       []serve.CrashPoint{serve.CrashBeforeKernel},
		ApplyIndices: []int64{2},
	}
	rep, err := c.Run(true)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failures == 0 {
		t.Fatal("broken conflict validation was not caught")
	}
	if rep.Shrunk == nil {
		t.Fatal("caught failure was not shrunk")
	}
	if !strings.Contains(rep.Shrunk.Err, "si ledger") {
		t.Errorf("shrunk error %q does not name an SI ledger violation", rep.Shrunk.Err)
	}
	for _, want := range []string{"-txn", "-break-si"} {
		if !strings.Contains(rep.Shrunk.Replay, want) {
			t.Errorf("replay command %q lacks %s", rep.Shrunk.Replay, want)
		}
	}
	rec, err := c.ReplayServe(rep.Shrunk)
	if err != nil {
		t.Fatalf("ReplayServe: %v", err)
	}
	if rec.Verdict != ServeVerdictFail {
		t.Errorf("replayed shrunk tuple verdict = %s, want fail (%+v)", rec.Verdict, rec)
	}
}
