package dnn

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func TestDNNModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm, workloads.GPUfs,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR,
	} {
		t.Run(m.String(), func(t *testing.T) {
			r, err := workloads.RunOne(New(), m, workloads.QuickConfig())
			if err != nil {
				t.Fatal(err)
			}
			if r.CkptTime <= 0 {
				t.Error("no checkpoint time")
			}
		})
	}
}

func TestDNNLearnsAndCheckpointFaster(t *testing.T) {
	cfg := workloads.QuickConfig()
	g, err := workloads.RunOne(New(), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := workloads.RunOne(New(), workloads.CAPmm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.CkptTime >= mm.CkptTime {
		t.Errorf("GPM ckpt %v not faster than CAP-mm %v", g.CkptTime, mm.CkptTime)
	}
}

func TestDNNCrashRecovery(t *testing.T) {
	// Crash well into training, after at least one checkpoint.
	r, err := workloads.RunWithCrash(New(), workloads.GPM, workloads.QuickConfig(), 1200000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restore time recorded")
	}
	// Table 5: DNN restoration is a tiny fraction of operation time
	// (0.12% in the paper; allow a loose bound here).
	if r.RestoreFraction() > 0.2 {
		t.Errorf("restore fraction %.3f too large", r.RestoreFraction())
	}
}

func TestDNNNoCPUMode(t *testing.T) {
	if _, err := workloads.RunOne(New(), workloads.CPUOnly, workloads.QuickConfig()); err == nil {
		t.Error("DNN training has no CPU-only counterpart in the suite")
	}
}
