package dnn

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// macCost is the per fused-multiply-add cost on a GPU thread.
const macCost = 1 * sim.Nanosecond

func f32Bytes(vals []float32) []byte {
	buf := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	return buf
}

func f32sOf(buf []byte) []float32 {
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

// loadRow loads n contiguous float32s starting at addr (one wide memory
// operation, like a vectorized row fetch).
func loadRow(t *gpu.Thread, addr uint64, n int) []float32 {
	buf := make([]byte, n*4)
	t.LoadBytes(addr, buf)
	return f32sOf(buf)
}

const dnnTPB = 128

func gridFor(n int) (blocks, tpb int) {
	tpb = dnnTPB
	if n < tpb {
		tpb = n
	}
	return (n + tpb - 1) / tpb, tpb
}

// forward1: hid[b][j] = relu(W1[j]·x[batchRow b] + b1[j]).
func (d *DNN) forward1(env *workloads.Env, b0 int) {
	n := d.batch * d.hidden
	blocks, tpb := gridFor(n)
	env.Ctx.Launch("dnn-fwd1", blocks, tpb, func(t *gpu.Thread) {
		id := t.GlobalID()
		if id >= n {
			return
		}
		b, j := id/d.hidden, id%d.hidden
		row := loadRow(t, d.wBlock+uint64(j*d.inputs)*4, d.inputs)
		xv := loadRow(t, d.x+uint64((b0+b)*d.inputs)*4, d.inputs)
		acc := t.LoadF32(d.wBlock + uint64(d.b1Off()+j)*4)
		for i := range row {
			acc += row[i] * xv[i]
		}
		if acc < 0 {
			acc = 0
		}
		t.Compute(sim.Duration(d.inputs) * macCost)
		t.StoreF32(d.hid+uint64(id)*4, acc)
	})
}

// forward2: logits[b][c] = W2[c]·hid[b] + b2[c].
func (d *DNN) forward2(env *workloads.Env) {
	n := d.batch * d.classes
	blocks, tpb := gridFor(n)
	env.Ctx.Launch("dnn-fwd2", blocks, tpb, func(t *gpu.Thread) {
		id := t.GlobalID()
		if id >= n {
			return
		}
		b, c := id/d.classes, id%d.classes
		w := loadRow(t, d.wBlock+uint64(d.w2Off()+c*d.hidden)*4, d.hidden)
		h := loadRow(t, d.hid+uint64(b*d.hidden)*4, d.hidden)
		acc := t.LoadF32(d.wBlock + uint64(d.b2Off()+c)*4)
		for j := range w {
			acc += w[j] * h[j]
		}
		t.Compute(sim.Duration(d.hidden) * macCost)
		t.StoreF32(d.logits+uint64(id)*4, acc)
	})
}

// gradKernel: grad[b][c] = (softmax(logits[b])[c] - onehot(label))/batch.
func (d *DNN) gradKernel(env *workloads.Env, b0 int) {
	blocks, tpb := gridFor(d.batch)
	env.Ctx.Launch("dnn-grad", blocks, tpb, func(t *gpu.Thread) {
		b := t.GlobalID()
		if b >= d.batch {
			return
		}
		lg := loadRow(t, d.logits+uint64(b*d.classes)*4, d.classes)
		label := t.LoadU32(d.labels + uint64(b0+b)*4)
		maxv := lg[0]
		for _, v := range lg {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		exps := make([]float32, d.classes)
		for c, v := range lg {
			exps[c] = expf32(v - maxv)
			sum += exps[c]
		}
		out := make([]float32, d.classes)
		for c := range out {
			p := exps[c] / sum
			if uint32(c) == label {
				p -= 1
			}
			out[c] = p / float32(d.batch)
		}
		t.Compute(sim.Duration(4*d.classes) * macCost)
		t.StoreBytes(d.grad+uint64(b*d.classes)*4, f32Bytes(out))
	})
}

func expf32(x float32) float32 { return float32(math.Exp(float64(x))) }

// transpose: dst[j][i] = src[i][j] for an rows×cols source.
func (d *DNN) transpose(env *workloads.Env, name string, dst, src uint64, rows, cols int) {
	n := rows * cols
	blocks, tpb := gridFor(n)
	env.Ctx.Launch(name, blocks, tpb, func(t *gpu.Thread) {
		id := t.GlobalID()
		if id >= n {
			return
		}
		r, c := id/cols, id%cols
		t.StoreU32(dst+uint64(c*rows+r)*4, t.LoadU32(src+uint64(id)*4))
	})
}

// updateW2: W2[c][j] -= lr · gradT[c]·hidT[j]; b2[c] -= lr · Σ gradT[c].
func (d *DNN) updateW2(env *workloads.Env) {
	n := d.classes * d.hidden
	blocks, tpb := gridFor(n)
	env.Ctx.Launch("dnn-dw2", blocks, tpb, func(t *gpu.Thread) {
		id := t.GlobalID()
		if id >= n {
			return
		}
		c, j := id/d.hidden, id%d.hidden
		g := loadRow(t, d.gradT+uint64(c*d.batch)*4, d.batch)
		h := loadRow(t, d.hidT+uint64(j*d.batch)*4, d.batch)
		var dw float32
		for b := range g {
			dw += g[b] * h[b]
		}
		t.Compute(sim.Duration(d.batch) * macCost)
		addr := d.wBlock + uint64(d.w2Off()+id)*4
		t.StoreF32(addr, t.LoadF32(addr)-dnnLR*dw)
		if j == 0 {
			var db float32
			for b := range g {
				db += g[b]
			}
			baddr := d.wBlock + uint64(d.b2Off()+c)*4
			t.StoreF32(baddr, t.LoadF32(baddr)-dnnLR*db)
		}
	})
}

// dhidKernel: dhid[b][j] = 1[hid>0] · Σ_c W2[c][j]·grad[b][c].
func (d *DNN) dhidKernel(env *workloads.Env) {
	n := d.batch * d.hidden
	blocks, tpb := gridFor(n)
	env.Ctx.Launch("dnn-dhid", blocks, tpb, func(t *gpu.Thread) {
		id := t.GlobalID()
		if id >= n {
			return
		}
		b, j := id/d.hidden, id%d.hidden
		g := loadRow(t, d.grad+uint64(b*d.classes)*4, d.classes)
		var acc float32
		for c := 0; c < d.classes; c++ {
			acc += t.LoadF32(d.wBlock+uint64(d.w2Off()+c*d.hidden+j)*4) * g[c]
		}
		if t.LoadF32(d.hid+uint64(id)*4) <= 0 {
			acc = 0
		}
		t.Compute(sim.Duration(d.classes) * macCost)
		t.StoreF32(d.dhid+uint64(id)*4, acc)
	})
}

// updateW1: W1[j][i] -= lr · dhidT[j]·xT[i][b0:b0+B]; b1[j] -= lr·Σ dhidT[j].
func (d *DNN) updateW1(env *workloads.Env, b0 int) {
	n := d.hidden * d.inputs
	blocks, tpb := gridFor(n)
	env.Ctx.Launch("dnn-dw1", blocks, tpb, func(t *gpu.Thread) {
		id := t.GlobalID()
		if id >= n {
			return
		}
		j, i := id/d.inputs, id%d.inputs
		g := loadRow(t, d.dhidT+uint64(j*d.batch)*4, d.batch)
		xc := loadRow(t, d.xT+uint64(i*dnnDataset+b0)*4, d.batch)
		var dw float32
		for b := range g {
			dw += g[b] * xc[b]
		}
		t.Compute(sim.Duration(d.batch) * macCost)
		addr := d.wBlock + uint64(id)*4
		t.StoreF32(addr, t.LoadF32(addr)-dnnLR*dw)
		if i == 0 {
			var db float32
			for b := range g {
				db += g[b]
			}
			baddr := d.wBlock + uint64(d.b1Off()+j)*4
			t.StoreF32(baddr, t.LoadF32(baddr)-dnnLR*db)
		}
	})
}

// trainIteration runs one forward+backward pass over batch `it`.
func (d *DNN) trainIteration(env *workloads.Env, it int) {
	b0 := ((it - 1) * d.batch) % dnnDataset
	if b0+d.batch > dnnDataset {
		b0 = 0
	}
	d.forward1(env, b0)
	d.forward2(env)
	d.gradKernel(env, b0)
	d.transpose(env, "dnn-tr-grad", d.gradT, d.grad, d.batch, d.classes)
	d.transpose(env, "dnn-tr-hid", d.hidT, d.hid, d.batch, d.hidden)
	d.dhidKernel(env)
	d.transpose(env, "dnn-tr-dhid", d.dhidT, d.dhid, d.batch, d.hidden)
	d.updateW2(env)
	d.updateW1(env, b0)
}

func (d *DNN) checkpoint(env *workloads.Env) error {
	start := env.Ctx.Timeline.Total()
	defer func() { env.AddCheckpoint(env.Ctx.Timeline.Total() - start) }()
	d.ckpts++
	var err error
	if env.Mode.UsesGPM() {
		_, err = d.cp.CheckpointGroup(0)
	} else {
		err = workloads.PersistBuffer(env, d.cpFile, 0, d.wBlock, int64(d.wLen())*4)
	}
	if err != nil {
		return err
	}
	d.ckptWts = d.readWeights(env)
	return nil
}

func (d *DNN) readWeights(env *workloads.Env) []float32 {
	buf := make([]byte, d.wLen()*4)
	env.Ctx.Space.Read(d.wBlock, buf)
	return f32sOf(buf)
}

// Run implements workloads.Workload.
func (d *DNN) Run(env *workloads.Env) error {
	for it := d.resumeIter + 1; it <= d.iters; it++ {
		d.trainIteration(env, it)
		if it%d.ckptEach == 0 {
			if err := d.checkpoint(env); err != nil {
				return err
			}
		}
	}
	env.CountOps(int64(d.iters-d.resumeIter) * int64(d.batch))
	return nil
}

// Verify implements workloads.Workload: training must reduce the loss, and
// the durable checkpoint must hold the weights captured at the last
// checkpoint.
func (d *DNN) Verify(env *workloads.Env) error {
	final := d.readWeights(env)
	loss := d.hostLoss(final)
	if loss >= d.initLoss*0.97 {
		return fmt.Errorf("dnn: loss did not improve (%.4f -> %.4f)", d.initLoss, loss)
	}
	if d.ckpts == 0 {
		return fmt.Errorf("dnn: no checkpoints taken")
	}
	var durable []float32
	if env.Mode.UsesGPM() {
		sp := env.Ctx.Space
		scratch := sp.AllocHBM(int64(d.wLen()) * 4)
		cp2, err := env.Ctx.CPOpen("/pm/dnn.cp")
		if err != nil {
			return err
		}
		var off uint64
		for _, r := range d.regions() {
			if err := cp2.Register(scratch+off, r.n, 0); err != nil {
				return err
			}
			off += uint64(r.n)
		}
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
		buf := make([]byte, d.wLen()*4)
		sp.Read(scratch, buf)
		durable = f32sOf(buf)
	} else {
		durable = f32sOf(env.Ctx.Space.SnapshotPersistent(d.cpFile.Mmap(), d.wLen()*4))
	}
	for i := range durable {
		if durable[i] != d.ckptWts[i] {
			return fmt.Errorf("dnn: durable weight[%d] = %v, want %v", i, durable[i], d.ckptWts[i])
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher.
func (d *DNN) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("dnn: crash study requires a GPM mode")
	}
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	err := d.Run(env)
	env.Ctx.Dev.SetAbortCheck(nil)
	if err == gpu.ErrCrashed {
		return nil
	}
	return err
}

// Recover implements workloads.Crasher: restore weights from the durable
// checkpoint (§5.3 recovery mode), restage the dataset, and resume
// training at the checkpointed iteration.
func (d *DNN) Recover(env *workloads.Env) error {
	restoreStart := env.Ctx.Timeline.Total()
	cp2, err := env.Ctx.CPOpen("/pm/dnn.cp")
	if err != nil {
		return err
	}
	for _, r := range d.regions() {
		if err := cp2.Register(r.addr, r.n, 0); err != nil {
			return err
		}
	}
	if cp2.Seq(0) > 0 {
		if _, err := cp2.RestoreGroup(0); err != nil {
			return err
		}
	} else {
		// Crash landed before the first checkpoint: restart training from
		// the initial weights (a durable input in the paper's setting,
		// kept host-side here).
		env.Ctx.Space.WriteCPU(d.wBlock, f32Bytes(d.initWts))
	}
	env.AddRestore(env.Ctx.Timeline.Total() - restoreStart)
	d.cp = cp2
	d.ckpts = int(cp2.Seq(0))
	d.resumeIter = int(cp2.Seq(0)) * d.ckptEach
	d.stageData(env, f32sOf(d.dataBytes))
	err = d.Run(env)
	d.resumeIter = 0
	return err
}
