// Package dnn implements the GPMbench DNN-training workload (§4.2): a
// LeNet-class MLP trained on synthetic MNIST-like data with forward and
// backward kernels on the GPU, checkpointing the weights and biases every
// few iterations (the paper uses every 10th pass) through libGPM's
// checkpoint facility, CAP, or GPUfs.
package dnn

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

const (
	dnnDataset = 256 // synthetic samples
	dnnLR      = float32(0.5)
)

// DNN is the training workload.
type DNN struct {
	inputs, hidden, classes, batch, iters, ckptEach int

	// HBM addresses.
	x, xT  uint64 // dataset [DS][in] and its transpose [in][DS]
	labels uint64 // [DS] u32
	wBlock uint64 // contiguous weight block: W1 | b1 | W2 | b2
	hid    uint64 // [B][hidden]
	hidT   uint64 // [hidden][B]
	logits uint64 // [B][classes]
	grad   uint64 // [B][classes]
	gradT  uint64 // [classes][B]
	dhid   uint64 // [B][hidden]
	dhidT  uint64 // [hidden][B]

	cp     *gpm.Checkpoint
	cpFile *fsim.File

	dataBytes  []byte    // durable source of the dataset
	cachedX    []float32 // host copy of the dataset for loss evaluation
	labelVals  []uint32
	initLoss   float64
	initWts    []float32 // initial weights, for crashes before any checkpoint
	ckptWts    []float32 // weights captured at the last checkpoint
	ckpts      int
	resumeIter int
}

// New returns the DNN workload.
func New() *DNN { return &DNN{} }

// Name implements workloads.Workload.
func (d *DNN) Name() string { return "DNN" }

// Class implements workloads.Workload.
func (d *DNN) Class() string { return "checkpointing" }

// Supports implements workloads.Workload: the weight checkpoint is small,
// so DNN is one of the coarse-grained workloads GPUfs CAN run (§6.1).
func (d *DNN) Supports(mode workloads.Mode) bool { return mode != workloads.CPUOnly }

// Weight block offsets (in floats).
func (d *DNN) w1Len() int { return d.hidden * d.inputs }
func (d *DNN) b1Off() int { return d.w1Len() }
func (d *DNN) w2Off() int { return d.b1Off() + d.hidden }
func (d *DNN) b2Off() int { return d.w2Off() + d.classes*d.hidden }
func (d *DNN) wLen() int  { return d.b2Off() + d.classes }

// Setup implements workloads.Workload.
func (d *DNN) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	d.inputs, d.hidden, d.classes = cfg.DNNInputs, cfg.DNNHidden, cfg.DNNClasses
	d.batch, d.iters, d.ckptEach = cfg.DNNBatch, cfg.DNNIters, cfg.DNNCkptEach
	if d.batch > dnnDataset {
		return fmt.Errorf("dnn: batch %d exceeds dataset %d", d.batch, dnnDataset)
	}
	sp := env.Ctx.Space
	f4 := func(n int) uint64 { return sp.AllocHBM(int64(n) * 4) }
	d.x = f4(dnnDataset * d.inputs)
	d.xT = f4(d.inputs * dnnDataset)
	d.labels = f4(dnnDataset)
	d.wBlock = f4(d.wLen())
	d.hid = f4(d.batch * d.hidden)
	d.hidT = f4(d.hidden * d.batch)
	d.logits = f4(d.batch * d.classes)
	d.grad = f4(d.batch * d.classes)
	d.gradT = f4(d.classes * d.batch)
	d.dhid = f4(d.batch * d.hidden)
	d.dhidT = f4(d.hidden * d.batch)

	// Synthetic MNIST-like data: the label is the argmax of the first
	// `classes` features, a pattern the MLP can learn quickly.
	xs := make([]float32, dnnDataset*d.inputs)
	d.labelVals = make([]uint32, dnnDataset)
	for s := 0; s < dnnDataset; s++ {
		best, bestV := 0, float32(-1)
		for i := 0; i < d.inputs; i++ {
			v := float32(env.RNG.Float64())
			xs[s*d.inputs+i] = v
			if i < d.classes && v > bestV {
				best, bestV = i, v
			}
		}
		d.labelVals[s] = uint32(best)
	}
	d.dataBytes = f32Bytes(xs)
	d.cachedX = xs
	d.stageData(env, xs)

	// Initialize weights deterministically.
	w := make([]float32, d.wLen())
	for i := range w {
		w[i] = float32(env.RNG.NormFloat64()) * 0.08
	}
	sp.WriteCPU(d.wBlock, f32Bytes(w))
	d.initWts = append([]float32(nil), w...)
	d.initLoss = d.hostLoss(w)

	var err error
	wBytes := int64(d.wLen()) * 4
	if env.Mode.UsesGPM() {
		if d.cp, err = env.Ctx.CPCreate("/pm/dnn.cp", wBytes, 4, 1); err != nil {
			return err
		}
		// Register weights and biases in a fixed order (§5.3: restore
		// follows registration order).
		for _, r := range d.regions() {
			if err = d.cp.Register(r.addr, r.n, 0); err != nil {
				return err
			}
		}
		return nil
	}
	d.cpFile, err = env.Ctx.FS.Create("/pm/dnn.cp", wBytes, 0)
	return err
}

type region struct {
	addr uint64
	n    int64
}

func (d *DNN) regions() []region {
	return []region{
		{d.wBlock, int64(d.w1Len()) * 4},
		{d.wBlock + uint64(d.b1Off())*4, int64(d.hidden) * 4},
		{d.wBlock + uint64(d.w2Off())*4, int64(d.classes*d.hidden) * 4},
		{d.wBlock + uint64(d.b2Off())*4, int64(d.classes) * 4},
	}
}

func (d *DNN) stageData(env *workloads.Env, xs []float32) {
	sp := env.Ctx.Space
	sp.WriteCPU(d.x, f32Bytes(xs))
	xt := make([]float32, len(xs))
	for s := 0; s < dnnDataset; s++ {
		for i := 0; i < d.inputs; i++ {
			xt[i*dnnDataset+s] = xs[s*d.inputs+i]
		}
	}
	sp.WriteCPU(d.xT, f32Bytes(xt))
	lb := make([]byte, dnnDataset*4)
	for s, l := range d.labelVals {
		binary.LittleEndian.PutUint32(lb[s*4:], l)
	}
	sp.WriteCPU(d.labels, lb)
	env.Ctx.Timeline.Add("setup", sp.DMA.TransferDown(int64(len(xs)*8+dnnDataset*4)))
}

// hostLoss computes mean cross-entropy over the dataset for the given
// weight block (float64 host math; used only for relative comparisons).
func (d *DNN) hostLoss(w []float32) float64 {
	var total float64
	for s := 0; s < dnnDataset; s++ {
		logits := d.hostForward(w, s)
		var maxv float64
		for _, v := range logits {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range logits {
			sum += math.Exp(v - maxv)
		}
		total += -(logits[d.labelVals[s]] - maxv - math.Log(sum))
	}
	return total / dnnDataset
}

func (d *DNN) hostForward(w []float32, s int) []float64 {
	hid := make([]float64, d.hidden)
	base := s * d.inputs
	xs := d.cachedX
	for j := 0; j < d.hidden; j++ {
		acc := float64(w[d.b1Off()+j])
		for i := 0; i < d.inputs; i++ {
			acc += float64(w[j*d.inputs+i]) * float64(xs[base+i])
		}
		if acc < 0 {
			acc = 0
		}
		hid[j] = acc
	}
	out := make([]float64, d.classes)
	for c := 0; c < d.classes; c++ {
		acc := float64(w[d.b2Off()+c])
		for j := 0; j < d.hidden; j++ {
			acc += float64(w[d.w2Off()+c*d.hidden+j]) * hid[j]
		}
		out[c] = acc
	}
	return out
}
