package gpu

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// forceSpawnRun drives the quiescence force-spawn path: 8 blocks whose
// threads all park at atomics almost immediately, with a spawn window
// (workers) smaller than the wave. Quiescence is reached while the wave is
// partially spawned, so the engine must force-spawn the remaining blocks
// before committing a round. Two atomics per thread make whole-wave rounds
// observable: round one's old values are 0..gridThreads-1 in canonical
// (block, thread) order, round two's continue at gridThreads — a round
// committed over a partial wave would break the second round's values for
// the early blocks.
func forceSpawnRun(t *testing.T, workers int) (olds1, olds2, seqs []uint32, elapsed sim.Duration, seqBase uint64) {
	t.Helper()
	d := newDev(t)
	d.SetWorkers(workers)
	const blocks, tpb = 8, 32
	grid := blocks * tpb
	addr := memsys.PMBase
	olds1 = make([]uint32, grid)
	olds2 = make([]uint32, grid)
	seqs = make([]uint32, 2*grid)
	seqBase = d.Space.SeqMark()
	res := d.Launch("forcespawn", blocks, tpb, func(th *Thread) {
		g := th.GlobalID()
		olds1[g] = th.AtomicAdd32(addr, 1)
		seqs[g] = uint32(th.curSeq - seqBase)
		olds2[g] = th.AtomicAdd32(addr, 1)
		seqs[grid+g] = uint32(th.curSeq - seqBase)
	})
	elapsed = res.Elapsed
	if got := d.Space.ReadU32(addr); got != uint32(2*grid) {
		t.Fatalf("workers=%d: counter = %d, want %d", workers, got, 2*grid)
	}
	return olds1, olds2, seqs, elapsed, seqBase
}

// TestForceSpawnQuiescenceDeterminism checks the non-negotiable invariant
// on the force-spawn path at workers 1, 2, and 8: atomic commit order is
// canonical (block ID, thread ID) over the WHOLE wave, and every atomic's
// PM write sequence number is its canonical program position — identical
// for every worker count.
func TestForceSpawnQuiescenceDeterminism(t *testing.T) {
	const grid = 8 * 32
	var ref1, ref2, refSeqs []uint32
	var refElapsed sim.Duration
	for _, workers := range []int{1, 2, 8} {
		olds1, olds2, seqs, elapsed, _ := forceSpawnRun(t, workers)
		for g := 0; g < grid; g++ {
			// Round one commits all gridThreads adds in canonical order, so
			// thread g observes exactly g; round two continues at grid+g.
			if olds1[g] != uint32(g) {
				t.Fatalf("workers=%d: round-1 old for thread %d = %d, want %d (commit order not canonical whole-wave)",
					workers, g, olds1[g], g)
			}
			if olds2[g] != uint32(grid+g) {
				t.Fatalf("workers=%d: round-2 old for thread %d = %d, want %d (round committed over a partial wave?)",
					workers, g, olds2[g], grid+g)
			}
			// The atomic is thread g's op 1 (index opBase+g+1) and op 2
			// (index opBase+grid+g+1); PM sequences must match those
			// canonical positions, not any scheduling order.
			if want := uint32(g + 1); seqs[g] != want {
				t.Fatalf("workers=%d: round-1 seq for thread %d = %d, want %d", workers, g, seqs[g], want)
			}
			if want := uint32(grid + g + 1); seqs[grid+g] != want {
				t.Fatalf("workers=%d: round-2 seq for thread %d = %d, want %d", workers, g, seqs[grid+g], want)
			}
		}
		if ref1 == nil {
			ref1, ref2, refSeqs, refElapsed = olds1, olds2, seqs, elapsed
			continue
		}
		for g := range ref1 {
			if olds1[g] != ref1[g] || olds2[g] != ref2[g] {
				t.Fatalf("workers=%d: old values diverge from workers=1 at thread %d", workers, g)
			}
		}
		for i := range refSeqs {
			if seqs[i] != refSeqs[i] {
				t.Fatalf("workers=%d: PM write sequences diverge from workers=1 at %d", workers, i)
			}
		}
		if elapsed != refElapsed {
			t.Fatalf("workers=%d: elapsed %v != workers=1 elapsed %v", workers, elapsed, refElapsed)
		}
	}
}

// TestForceSpawnWithStoresBetweenRounds interleaves per-thread PM stores
// with the atomics so force-spawned rounds run against threads at different
// program positions; the counter totals and store contents must still be
// exact at every worker count.
func TestForceSpawnWithStoresBetweenRounds(t *testing.T) {
	const blocks, tpb = 8, 32
	grid := blocks * tpb
	for _, workers := range []int{1, 2, 8} {
		d := newDev(t)
		d.SetWorkers(workers)
		ctr := memsys.PMBase
		data := memsys.PMBase + 64
		d.Launch("forcespawn-stores", blocks, tpb, func(th *Thread) {
			g := th.GlobalID()
			old := th.AtomicAdd32(ctr, 1)
			th.StoreU32(data+uint64(4*g), old)
			th.AtomicAdd32(ctr, 1)
			th.FenceSystem()
		})
		for g := 0; g < grid; g++ {
			if got := d.Space.ReadU32(data + uint64(4*g)); got != uint32(g) {
				t.Fatalf("workers=%d: stored old for thread %d = %d, want %d", workers, g, got, g)
			}
		}
		if got := d.Space.ReadU32(ctr); got != uint32(2*grid) {
			t.Fatalf("workers=%d: counter = %d, want %d", workers, got, 2*grid)
		}
	}
}
