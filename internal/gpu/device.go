// Package gpu is a functional model of a CUDA-class GPU: grids of
// threadblocks of 32-lane warps, a hardware write coalescer, block barriers,
// scoped memory fences, and device memory, executing real Go code per thread
// while a deterministic timing engine accounts simulated time.
//
// Execution model. The execution unit is the threadblock: each block runs
// on (at most) one goroutine at a time, executing its threads as an inner
// loop in ascending thread-ID order between synchronization points, and
// lazily materializing goroutines only for threads that park at a barrier
// or atomic (see Block). Blocks are scheduled over a worker window and
// grouped into waves of at most NumSMs×MaxBlocksPerSM resident blocks, like
// hardware occupancy. Every
// thread records its memory operations into a per-lane log; at each block
// barrier and at block exit the warp logs are replayed in SIMT lockstep
// order (the i-th operation of every lane forms one step), which is where
// the 128-byte hardware coalescer merges per-lane stores into transactions
// and where per-warp simulated clocks advance. A kernel's elapsed time is
// the maximum of its critical path (slowest warp, summed over waves), the
// bandwidth bounds of PM/PCIe/HBM, the PCIe outstanding-transaction bound,
// and any software serialization (e.g. lock-based logging).
package gpu

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// ErrCrashed is the panic value used internally to unwind kernel threads
// when the fault injector fires; Launch recovers it and reports
// Result.Crashed.
var ErrCrashed = fmt.Errorf("gpu: kernel aborted by injected crash")

// Device is one simulated GPU attached to a memory space.
type Device struct {
	Params *sim.Params
	Space  *memsys.Space

	resMu    sync.Mutex
	resNames []string
	resIDs   map[string]uint32

	// blockPool recycles Block execution units (threads, warps, scratch
	// buffers, channels) within and across launches. Pool order is
	// nondeterministic, but acquireBlock resets every simulation-visible
	// field, so which physical Block serves which block ID cannot affect
	// results.
	blockPool sync.Pool

	// workers bounds how many blocks execute on real goroutines at once;
	// 0 means GOMAXPROCS. Simulated results are identical for every value
	// (see engine.go); workers affects wall-clock time only.
	workers int

	abortEnabled atomic.Bool
	abortCheck   func(op int64) bool
	aborted      atomic.Bool

	// opBase/opHigh track canonical operation indices across launches:
	// every thread operation gets the index
	//
	//	opBase + (localOp-1)*gridThreads + globalID + 1
	//
	// — a deterministic function of program position, not of scheduling.
	// opBase advances by maxLocalOps*gridThreads per launch; opHigh is the
	// highest index any thread actually executed (ObservedOps). Host-serial
	// access only.
	opBase int64
	opHigh int64

	// powerFailOnAbort makes the abort instant authoritative: the moment
	// the check fires, the space's power-failure latch is set so that no
	// code — GPU threads racing to their next crash check, or host code
	// that is unaware it is "dead" — can persist anything afterwards. Used
	// for crashes injected during recovery, where the recovery procedures
	// are not written to be abort-aware.
	powerFailOnAbort atomic.Bool

	// Telemetry sinks; nil (no-op) until AttachTelemetry. They observe the
	// already-computed kernel results, so attaching them cannot perturb
	// simulated time (see determinism_test.go).
	telKernels      *telemetry.Counter
	telKernelUS     *telemetry.Histogram
	telPMWriteBytes *telemetry.Counter
	telPMReadBytes  *telemetry.Counter
	telHostBytes    *telemetry.Counter
	telHBMBytes     *telemetry.Counter
	telFences       *telemetry.Counter
}

// AttachTelemetry mirrors per-kernel aggregate traffic into the registry
// under the gpu.* namespace. Passing a nil registry detaches.
func (d *Device) AttachTelemetry(r *telemetry.Registry) {
	d.telKernels = r.Counter("gpu.kernels")
	d.telKernelUS = r.Histogram("gpu.kernel_us", telemetry.LatencyBucketsUS)
	d.telPMWriteBytes = r.Counter("gpu.pm_write_bytes")
	d.telPMReadBytes = r.Counter("gpu.pm_read_bytes")
	d.telHostBytes = r.Counter("gpu.host_bytes")
	d.telHBMBytes = r.Counter("gpu.hbm_bytes")
	d.telFences = r.Counter("gpu.fences")
}

// New returns a device over the given space.
func New(space *memsys.Space) *Device {
	return &Device{
		Params: space.Params,
		Space:  space,
		resIDs: make(map[string]uint32),
	}
}

// ResourceID interns a serialization resource name (see Thread.Serialize).
func (d *Device) ResourceID(name string) uint32 {
	d.resMu.Lock()
	defer d.resMu.Unlock()
	if id, ok := d.resIDs[name]; ok {
		return id
	}
	id := uint32(len(d.resNames))
	d.resNames = append(d.resNames, name)
	d.resIDs[name] = id
	return id
}

func (d *Device) resourceName(id uint32) string {
	d.resMu.Lock()
	defer d.resMu.Unlock()
	if int(id) < len(d.resNames) {
		return d.resNames[id]
	}
	return fmt.Sprintf("resource-%d", id)
}

// SetWorkers bounds the number of blocks executing on real goroutines at
// once; n <= 0 restores the default (GOMAXPROCS). The worker count never
// affects simulated results — -workers 1 is the determinism reference and
// higher counts must reproduce it bit-identically.
func (d *Device) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	d.workers = n
}

// Workers returns the configured worker bound (0 = GOMAXPROCS).
func (d *Device) Workers() int { return d.workers }

func (d *Device) effectiveWorkers() int {
	if d.workers > 0 {
		return d.workers
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// SetAbortCheck installs a fault-injection hook: check is called with each
// operation's canonical index — a deterministic function of the operation's
// program position, identical for every worker count — and a true return
// aborts that thread at that operation (the NVBitFI analog, §6.2). Checks
// are expected to be monotone thresholds (op >= K): each thread then
// executes exactly its operations with index < K, so the crash lands at the
// same canonical instant on every run. check must be safe for concurrent
// use. Pass nil to disable. Installing a hook also clears any previous
// aborted state and restarts the canonical index space.
func (d *Device) SetAbortCheck(check func(op int64) bool) {
	d.abortCheck = check
	d.opBase = 0
	d.opHigh = 0
	d.aborted.Store(false)
	d.abortEnabled.Store(check != nil)
}

// ObservedOps returns the highest canonical operation index executed since
// the last SetAbortCheck (used to pick crash points: install a never-firing
// check, run once, and read the total).
func (d *Device) ObservedOps() int64 { return d.opHigh }

// Aborted reports whether the abort check has fired since the last
// SetAbortCheck. Campaign drivers use it to distinguish "recovery finished
// before the re-crash budget" from "the injected crash fired".
func (d *Device) Aborted() bool { return d.aborted.Load() }

// SetPowerFailOnAbort arms (or disarms) power-failure semantics for the
// next abort: when the check fires, the memory space's persist paths shut
// off until the crash is simulated, so nothing issued after the failure
// instant can become durable.
func (d *Device) SetPowerFailOnAbort(on bool) { d.powerFailOnAbort.Store(on) }

// blockOutcome is what Launch needs from a retired block. finish writes it
// before recycling the Block, so outcomes survive pooling.
type blockOutcome struct {
	crit     sim.Duration
	maxLocal int64 // highest per-thread operation count
	maxExec  int64 // highest canonical index executed
	minAbort int64 // lowest canonical index aborted at; 0 = none
}

// acquireBlock readies a Block execution unit for one (launch, block ID)
// assignment, recycling a pooled Block when its geometry matches. Every
// simulation-visible field is reset; shared memory is dropped (not reused)
// so kernels observe the same zeroed arena a fresh Block would give them.
func (d *Device) acquireBlock(eng *engine, id, grid, tpb int, kern func(*Thread),
	st *kernelStats, out *blockOutcome, wg *sync.WaitGroup) *Block {
	var b *Block
	if v := d.blockPool.Get(); v != nil {
		b = v.(*Block)
		if b.nthreads != tpb {
			b = nil // wrong geometry; rebuild
		}
	}
	if b == nil {
		b = d.newBlock(tpb)
	}
	b.eng, b.id, b.grid, b.kern = eng, id, grid, kern
	b.stats, b.out, b.wg = st, out, wg
	b.live, b.arrived, b.nAtomic = tpb, 0, 0
	b.shared = nil
	b.batch.reset()
	b.ready = b.ready[:0]
	b.readyHead = 0
	for i := 0; i < tpb; i++ {
		b.ready = append(b.ready, int32(i))
	}
	for _, w := range b.warps {
		w.clock = 0 // lane logs and positions are reset by replay itself
	}
	for _, t := range b.threads {
		t.state = tsNew
		t.started = false
		t.opIdx, t.lastExec, t.abortedAt = 0, 0, 0
		t.curSeq = 0
		t.dirty = t.dirty[:0]
	}
	return b
}

// newBlock builds a Block with its threads and warps for one geometry.
func (d *Device) newBlock(tpb int) *Block {
	ws := d.Params.WarpSize
	if ws <= 0 {
		ws = 32
	}
	nWarps := (tpb + ws - 1) / ws
	b := &Block{
		dev:      d,
		nthreads: tpb,
		warps:    make([]*warp, nWarps),
		threads:  make([]*Thread, tpb),
		wake:     make(chan struct{}, 1),
	}
	for i := range b.warps {
		width := ws
		if i == nWarps-1 && tpb%ws != 0 {
			width = tpb % ws
		}
		b.warps[i] = newWarp(width)
	}
	for tid := 0; tid < tpb; tid++ {
		b.threads[tid] = &Thread{
			blk:  b,
			id:   tid,
			warp: b.warps[tid/ws],
			lane: tid % ws,
		}
	}
	return b
}

// Result reports one kernel execution.
type Result struct {
	// Elapsed is the simulated kernel duration.
	Elapsed sim.Duration
	// Crashed reports that the fault injector aborted the kernel.
	Crashed bool
	// Stats are the kernel's aggregate memory statistics.
	Stats Stats
}

// Launch runs a 1-D grid of blocks×threadsPerBlock threads, executing kern
// for every thread, and returns the simulated execution result. It blocks
// until the kernel completes (cudaDeviceSynchronize semantics).
func (d *Device) Launch(name string, blocks, threadsPerBlock int, kern func(*Thread)) Result {
	if blocks <= 0 || threadsPerBlock <= 0 {
		panic(fmt.Sprintf("gpu: invalid grid %dx%d for kernel %s", blocks, threadsPerBlock, name))
	}
	if threadsPerBlock > 1024 {
		panic(fmt.Sprintf("gpu: threadsPerBlock %d exceeds 1024 for kernel %s", threadsPerBlock, name))
	}
	tpb := threadsPerBlock
	eng := newEngine(d, blocks*tpb)

	concurrent := d.Params.MaxConcurrentBlocks()
	waves := (blocks + concurrent - 1) / concurrent
	window := d.effectiveWorkers()
	if window > concurrent {
		window = concurrent
	}

	blockStats := make([]*kernelStats, blocks)
	outcomes := make([]blockOutcome, blocks)

	// Blocks execute one wave of resident blocks at a time (hardware
	// occupancy), each block on its own scheduler goroutine; the spawn
	// window bounds how many run at once. The engine's quiescence protocol
	// keeps atomics and fault injection deterministic for any window size;
	// everything below the wave loop is a serial reduction in block-ID
	// order.
	for w := 0; w < waves; w++ {
		lo, hi := w*concurrent, (w+1)*concurrent
		if hi > blocks {
			hi = blocks
		}
		eng.beginWave(hi - lo)
		var wg sync.WaitGroup
		for b := lo; b < hi; b++ {
			eng.awaitSpawnSlot(window)
			blockStats[b] = newStats()
			blk := d.acquireBlock(eng, b, blocks, tpb, kern, blockStats[b], &outcomes[b], &wg)
			wg.Add(1)
			go blk.runScheduler(nil)
		}
		wg.Wait()
	}

	agg := newStats()
	for _, st := range blockStats {
		agg.mergeFrom(st)
	}
	crit := d.Params.KernelLaunch
	for w := 0; w < waves; w++ {
		lo, hi := w*concurrent, (w+1)*concurrent
		if hi > blocks {
			hi = blocks
		}
		var waveMax sim.Duration
		for b := lo; b < hi; b++ {
			if outcomes[b].crit > waveMax {
				waveMax = outcomes[b].crit
			}
		}
		crit += waveMax
	}

	// Canonical-index bookkeeping: advance the op and PM-sequence windows
	// past everything this launch could have issued, and pin the
	// power-failure instant (if armed) to the first aborted operation.
	var maxLocal, maxExec int64
	minAbort := int64(math.MaxInt64)
	for i := range outcomes {
		o := &outcomes[i]
		if o.maxLocal > maxLocal {
			maxLocal = o.maxLocal
		}
		if o.maxExec > maxExec {
			maxExec = o.maxExec
		}
		if o.minAbort != 0 && o.minAbort < minAbort {
			minAbort = o.minAbort
		}
	}
	d.opBase = eng.opBase + maxLocal*eng.gridThreads
	if maxExec > d.opHigh {
		d.opHigh = maxExec
	}
	d.Space.SeqAdvance(eng.seqBase + uint64(maxLocal)*uint64(eng.gridThreads))
	if minAbort != math.MaxInt64 && d.powerFailOnAbort.Load() && !d.Space.PowerFailed() {
		// The latch must precede the exit drain: the buffered LLC events
		// span the whole kernel, and only those sequenced at or before the
		// failure instant may persist. Every executed operation has
		// canonical index < minAbort, hence sequence <= cut: legitimate
		// pre-crash writes stay eligible for the fault models, everything
		// after the failure instant rolls back unconditionally.
		d.Space.PowerFailAtSeq(eng.seqBase + uint64(minAbort-eng.opBase) - 1)
	}
	d.Space.DrainPersistence()

	res := Result{Stats: agg.snapshot(d)}
	res.Crashed = d.aborted.Load()
	res.Elapsed = d.elapsed(crit, &res.Stats)

	// Merge kernel PM write pattern/traffic into the device-wide stats
	// used for Fig 12 and the PCIe counters.
	d.Space.PM.WriteStats.Merge(&agg.pmWrites)
	d.Space.Link.RecordUp(res.Stats.PMWriteBytes+res.Stats.HostWriteBytes,
		res.Stats.PMWriteTxns+res.Stats.HostTxns)
	d.Space.Link.RecordDown(res.Stats.PMReadBytes+res.Stats.HostReadBytes, res.Stats.PMReadTxns)

	d.telKernels.Inc()
	d.telKernelUS.ObserveMicros(res.Elapsed)
	d.telPMWriteBytes.Add(res.Stats.PMWriteBytes)
	d.telPMReadBytes.Add(res.Stats.PMReadBytes)
	d.telHostBytes.Add(res.Stats.HostWriteBytes + res.Stats.HostReadBytes)
	d.telHBMBytes.Add(res.Stats.HBMBytes)
	d.telFences.Add(res.Stats.Fences)
	return res
}

// elapsed combines the critical path with the bandwidth and concurrency
// bounds into the kernel's simulated duration.
func (d *Device) elapsed(crit sim.Duration, st *Stats) sim.Duration {
	p := d.Params
	pmWriteBW := st.pmPattern.EffectiveBandwidth(p)
	e := crit
	e = sim.MaxDuration(e, sim.DurationOfBytes(st.PMWriteBytes, pmWriteBW))
	e = sim.MaxDuration(e, sim.DurationOfBytes(st.PMReadBytes, p.PMReadBandwidth))
	pcieBytes := st.PMWriteBytes + st.PMReadBytes + st.HostWriteBytes + st.HostReadBytes
	e = sim.MaxDuration(e, sim.DurationOfBytes(pcieBytes, p.PCIeBandwidth))
	e = sim.MaxDuration(e, sim.DurationOfBytes(st.HBMBytes, p.HBMBandwidth))
	e = sim.MaxDuration(e, d.Space.Link.ConcurrencyBound(st.PMWriteTxns+st.PMReadTxns+st.HostTxns))
	for _, dur := range st.Serial {
		e = sim.MaxDuration(e, dur)
	}
	return e
}
