// Package gpu is a functional model of a CUDA-class GPU: grids of
// threadblocks of 32-lane warps, a hardware write coalescer, block barriers,
// scoped memory fences, and device memory, executing real Go code per thread
// while a deterministic timing engine accounts simulated time.
//
// Execution model. Each threadblock runs its threads as goroutines; blocks
// are scheduled over a worker pool and grouped into waves of at most
// NumSMs×MaxBlocksPerSM resident blocks, like hardware occupancy. Every
// thread records its memory operations into a per-lane log; at each block
// barrier and at block exit the warp logs are replayed in SIMT lockstep
// order (the i-th operation of every lane forms one step), which is where
// the 128-byte hardware coalescer merges per-lane stores into transactions
// and where per-warp simulated clocks advance. A kernel's elapsed time is
// the maximum of its critical path (slowest warp, summed over waves), the
// bandwidth bounds of PM/PCIe/HBM, the PCIe outstanding-transaction bound,
// and any software serialization (e.g. lock-based logging).
package gpu

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// ErrCrashed is the panic value used internally to unwind kernel threads
// when the fault injector fires; Launch recovers it and reports
// Result.Crashed.
var ErrCrashed = fmt.Errorf("gpu: kernel aborted by injected crash")

// Device is one simulated GPU attached to a memory space.
type Device struct {
	Params *sim.Params
	Space  *memsys.Space

	resMu    sync.Mutex
	resNames []string
	resIDs   map[string]uint32

	abortEnabled atomic.Bool
	abortCheck   func(op int64) bool
	opCounter    atomic.Int64
	aborted      atomic.Bool

	// powerFailOnAbort makes the abort instant authoritative: the moment
	// the check fires, the space's power-failure latch is set so that no
	// code — GPU threads racing to their next crash check, or host code
	// that is unaware it is "dead" — can persist anything afterwards. Used
	// for crashes injected during recovery, where the recovery procedures
	// are not written to be abort-aware.
	powerFailOnAbort atomic.Bool

	// Telemetry sinks; nil (no-op) until AttachTelemetry. They observe the
	// already-computed kernel results, so attaching them cannot perturb
	// simulated time (see determinism_test.go).
	telKernels      *telemetry.Counter
	telKernelUS     *telemetry.Histogram
	telPMWriteBytes *telemetry.Counter
	telPMReadBytes  *telemetry.Counter
	telHostBytes    *telemetry.Counter
	telHBMBytes     *telemetry.Counter
	telFences       *telemetry.Counter
}

// AttachTelemetry mirrors per-kernel aggregate traffic into the registry
// under the gpu.* namespace. Passing a nil registry detaches.
func (d *Device) AttachTelemetry(r *telemetry.Registry) {
	d.telKernels = r.Counter("gpu.kernels")
	d.telKernelUS = r.Histogram("gpu.kernel_us", telemetry.LatencyBucketsUS)
	d.telPMWriteBytes = r.Counter("gpu.pm_write_bytes")
	d.telPMReadBytes = r.Counter("gpu.pm_read_bytes")
	d.telHostBytes = r.Counter("gpu.host_bytes")
	d.telHBMBytes = r.Counter("gpu.hbm_bytes")
	d.telFences = r.Counter("gpu.fences")
}

// New returns a device over the given space.
func New(space *memsys.Space) *Device {
	return &Device{
		Params: space.Params,
		Space:  space,
		resIDs: make(map[string]uint32),
	}
}

// ResourceID interns a serialization resource name (see Thread.Serialize).
func (d *Device) ResourceID(name string) uint32 {
	d.resMu.Lock()
	defer d.resMu.Unlock()
	if id, ok := d.resIDs[name]; ok {
		return id
	}
	id := uint32(len(d.resNames))
	d.resNames = append(d.resNames, name)
	d.resIDs[name] = id
	return id
}

func (d *Device) resourceName(id uint32) string {
	d.resMu.Lock()
	defer d.resMu.Unlock()
	if int(id) < len(d.resNames) {
		return d.resNames[id]
	}
	return fmt.Sprintf("resource-%d", id)
}

// SetAbortCheck installs a fault-injection hook: check is called with a
// monotonically increasing operation index for every thread memory
// operation, and the first true return aborts the running kernel (the
// NVBitFI analog, §6.2). check must be safe for concurrent use. Pass nil to
// disable. Installing a hook also clears any previous aborted state.
func (d *Device) SetAbortCheck(check func(op int64) bool) {
	d.abortCheck = check
	d.opCounter.Store(0)
	d.aborted.Store(false)
	d.abortEnabled.Store(check != nil)
}

// ObservedOps returns the number of operations counted since the last
// SetAbortCheck (used to pick crash points: install a never-firing check,
// run once, and read the total).
func (d *Device) ObservedOps() int64 { return d.opCounter.Load() }

// Aborted reports whether the abort check has fired since the last
// SetAbortCheck. Campaign drivers use it to distinguish "recovery finished
// before the re-crash budget" from "the injected crash fired".
func (d *Device) Aborted() bool { return d.aborted.Load() }

// SetPowerFailOnAbort arms (or disarms) power-failure semantics for the
// next abort: when the check fires, the memory space's persist paths shut
// off until the crash is simulated, so nothing issued after the failure
// instant can become durable.
func (d *Device) SetPowerFailOnAbort(on bool) { d.powerFailOnAbort.Store(on) }

// noteOp advances the fault-injection counter; it reports true if the
// kernel must abort.
func (d *Device) noteOp() bool {
	if !d.abortEnabled.Load() {
		return false
	}
	if d.aborted.Load() {
		return true
	}
	if d.abortCheck(d.opCounter.Add(1)) {
		if d.aborted.CompareAndSwap(false, true) && d.powerFailOnAbort.Load() {
			d.Space.SetPowerFailed(true)
		}
		return true
	}
	return false
}

// Result reports one kernel execution.
type Result struct {
	// Elapsed is the simulated kernel duration.
	Elapsed sim.Duration
	// Crashed reports that the fault injector aborted the kernel.
	Crashed bool
	// Stats are the kernel's aggregate memory statistics.
	Stats Stats
}

// Launch runs a 1-D grid of blocks×threadsPerBlock threads, executing kern
// for every thread, and returns the simulated execution result. It blocks
// until the kernel completes (cudaDeviceSynchronize semantics).
func (d *Device) Launch(name string, blocks, threadsPerBlock int, kern func(*Thread)) Result {
	if blocks <= 0 || threadsPerBlock <= 0 {
		panic(fmt.Sprintf("gpu: invalid grid %dx%d for kernel %s", blocks, threadsPerBlock, name))
	}
	if threadsPerBlock > 1024 {
		panic(fmt.Sprintf("gpu: threadsPerBlock %d exceeds 1024 for kernel %s", threadsPerBlock, name))
	}
	agg := newStats()
	concurrent := d.Params.MaxConcurrentBlocks()
	waves := (blocks + concurrent - 1) / concurrent
	waveCrit := make([]sim.Duration, waves)
	var critMu sync.Mutex

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(b int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			crit := d.runBlock(b, blocks, threadsPerBlock, kern, agg)
			w := b / concurrent
			critMu.Lock()
			if crit > waveCrit[w] {
				waveCrit[w] = crit
			}
			critMu.Unlock()
		}(b)
	}
	wg.Wait()

	crit := d.Params.KernelLaunch
	for _, c := range waveCrit {
		crit += c
	}
	res := Result{Stats: agg.snapshot(d)}
	res.Crashed = d.aborted.Load()
	res.Elapsed = d.elapsed(crit, &res.Stats)

	// Merge kernel PM write pattern/traffic into the device-wide stats
	// used for Fig 12 and the PCIe counters.
	d.Space.PM.WriteStats.Merge(&agg.pmWrites)
	d.Space.Link.RecordUp(res.Stats.PMWriteBytes+res.Stats.HostWriteBytes,
		res.Stats.PMWriteTxns+res.Stats.HostTxns)
	d.Space.Link.RecordDown(res.Stats.PMReadBytes+res.Stats.HostReadBytes, res.Stats.PMReadTxns)

	d.telKernels.Inc()
	d.telKernelUS.ObserveMicros(res.Elapsed)
	d.telPMWriteBytes.Add(res.Stats.PMWriteBytes)
	d.telPMReadBytes.Add(res.Stats.PMReadBytes)
	d.telHostBytes.Add(res.Stats.HostWriteBytes + res.Stats.HostReadBytes)
	d.telHBMBytes.Add(res.Stats.HBMBytes)
	d.telFences.Add(res.Stats.Fences)
	return res
}

// elapsed combines the critical path with the bandwidth and concurrency
// bounds into the kernel's simulated duration.
func (d *Device) elapsed(crit sim.Duration, st *Stats) sim.Duration {
	p := d.Params
	pmWriteBW := st.pmPattern.EffectiveBandwidth(p)
	e := crit
	e = sim.MaxDuration(e, sim.DurationOfBytes(st.PMWriteBytes, pmWriteBW))
	e = sim.MaxDuration(e, sim.DurationOfBytes(st.PMReadBytes, p.PMReadBandwidth))
	pcieBytes := st.PMWriteBytes + st.PMReadBytes + st.HostWriteBytes + st.HostReadBytes
	e = sim.MaxDuration(e, sim.DurationOfBytes(pcieBytes, p.PCIeBandwidth))
	e = sim.MaxDuration(e, sim.DurationOfBytes(st.HBMBytes, p.HBMBandwidth))
	e = sim.MaxDuration(e, d.Space.Link.ConcurrencyBound(st.PMWriteTxns+st.PMReadTxns+st.HostTxns))
	for _, dur := range st.Serial {
		e = sim.MaxDuration(e, dur)
	}
	return e
}
