package gpu

import (
	"encoding/binary"
	"math"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Thread is the per-thread execution context handed to a kernel function.
// It provides CUDA-thread semantics: identity within the execution
// hierarchy, typed loads and stores into the unified address space, scoped
// fences, a block barrier, and atomics.
//
// Threads of a block never execute concurrently (see Block): a thread runs
// on its block's baton until it parks at a synchronization point, so all
// per-thread and block-local state below is unlocked.
type Thread struct {
	blk  *Block
	warp *warp
	id   int // thread index within the block
	lane int // lane within the warp

	dirty []uint64 // virtual PM lines written since the last system fence

	// Cooperative-scheduling state (owned by the block's baton holder; the
	// engine reads the atomic operand fields under its round mutex while
	// the block is quiescent).
	state   threadState
	started bool
	resume  chan struct{} // baton handoff; allocated at first park

	// Pending-atomic operands and results, staged across the park.
	aAddr  uint64
	aSeq   uint64
	aFn    func(uint32) uint32
	aOld   uint32
	aLines []uint64

	lineScratch []uint64            // reused dirty-line buffer for stores
	seenLines   map[uint64]struct{} // reused dedupe scratch

	// Canonical-index state (see engine.go). opIdx counts this thread's
	// operations; each gets the launch-wide canonical index
	// opBase + (opIdx-1)*gridThreads + globalID + 1 and the PM sequence
	// seqBase + (index - opBase). lastExec is the highest index executed,
	// abortedAt the index at which the fault injector unwound the thread
	// (0 = none). Harvested by Block.finish.
	opIdx     int64
	lastExec  int64
	abortedAt int64
	curSeq    uint64
}

// ---- Identity ----

// ID returns the thread index within its block (threadIdx).
func (t *Thread) ID() int { return t.id }

// Lane returns the lane index within the warp.
func (t *Thread) Lane() int { return t.lane }

// WarpID returns the warp index within the block.
func (t *Thread) WarpID() int { return t.id / t.blk.dev.Params.WarpSize }

// Block returns the enclosing threadblock.
func (t *Thread) Block() *Block { return t.blk }

// GlobalID returns blockIdx*blockDim + threadIdx.
func (t *Thread) GlobalID() int { return t.blk.id*t.blk.nthreads + t.id }

// GridThreads returns the total number of threads in the grid.
func (t *Thread) GridThreads() int { return t.blk.grid * t.blk.nthreads }

// Device returns the executing device.
func (t *Thread) Device() *Device { return t.blk.dev }

// Space returns the unified memory space.
func (t *Thread) Space() *memsys.Space { return t.blk.dev.Space }

// ---- Logging helpers ----

func (t *Thread) log(op laneOp) {
	t.warp.lanes[t.lane] = append(t.warp.lanes[t.lane], op)
}

// checkCrash advances this thread's canonical operation index and runs the
// fault-injection check against it. With the monotone checks the campaign
// uses (op >= K), every thread executes exactly its operations with index
// below K and unwinds at its first index at or past K — the same canonical
// crash instant for every worker count.
func (t *Thread) checkCrash() {
	eng := t.blk.eng
	t.opIdx++
	idx := eng.opBase + (t.opIdx-1)*eng.gridThreads + int64(t.GlobalID()) + 1
	t.curSeq = eng.seqBase + uint64(idx-eng.opBase)
	if eng.abortEnabled && (eng.alreadyAborted || eng.abortCheck(idx)) {
		t.abortedAt = idx
		t.blk.dev.aborted.Store(true)
		panic(ErrCrashed)
	}
	t.lastExec = idx
}

func (t *Thread) trackDirty(lines []uint64) {
	if len(lines) == 0 {
		return
	}
	t.dirty = append(t.dirty, lines...)
	if len(t.dirty) > 1<<16 {
		t.dirty = t.dedupeLines(t.dirty)
	}
}

// dedupeLines removes duplicates in place, preserving first-occurrence
// order (the order fault models observe). The scratch map is reused across
// calls so the fence path allocates nothing in steady state.
func (t *Thread) dedupeLines(lines []uint64) []uint64 {
	if t.seenLines == nil {
		t.seenLines = make(map[uint64]struct{}, len(lines))
	} else {
		clear(t.seenLines)
	}
	out := lines[:0]
	for _, la := range lines {
		if _, ok := t.seenLines[la]; ok {
			continue
		}
		t.seenLines[la] = struct{}{}
		out = append(out, la)
	}
	return out
}

// ---- Raw and typed memory access ----

// StoreBytes writes p at addr.
func (t *Thread) StoreBytes(addr uint64, p []byte) {
	t.checkCrash()
	lines := t.Space().WriteGPUSeqInto(t.lineScratch[:0], addr, p, t.curSeq)
	t.trackDirty(lines)
	t.lineScratch = lines[:0]
	t.log(laneOp{kind: opStore, addr: addr, size: uint32(len(p)), space: t.Space().KindOf(addr)})
}

// LoadBytes reads len(p) bytes at addr into p.
func (t *Thread) LoadBytes(addr uint64, p []byte) {
	t.checkCrash()
	t.Space().Read(addr, p)
	t.log(laneOp{kind: opLoad, addr: addr, size: uint32(len(p)), space: t.Space().KindOf(addr)})
}

// StoreU32 writes a little-endian uint32.
func (t *Thread) StoreU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	t.StoreBytes(addr, b[:])
}

// LoadU32 reads a little-endian uint32.
func (t *Thread) LoadU32(addr uint64) uint32 {
	var b [4]byte
	t.LoadBytes(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// StoreU64 writes a little-endian uint64.
func (t *Thread) StoreU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.StoreBytes(addr, b[:])
}

// LoadU64 reads a little-endian uint64.
func (t *Thread) LoadU64(addr uint64) uint64 {
	var b [8]byte
	t.LoadBytes(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StoreF32 writes a float32.
func (t *Thread) StoreF32(addr uint64, v float32) { t.StoreU32(addr, math.Float32bits(v)) }

// LoadF32 reads a float32.
func (t *Thread) LoadF32(addr uint64) float32 { return math.Float32frombits(t.LoadU32(addr)) }

// StoreF64 writes a float64.
func (t *Thread) StoreF64(addr uint64, v float64) { t.StoreU64(addr, math.Float64bits(v)) }

// LoadF64 reads a float64.
func (t *Thread) LoadF64(addr uint64) float64 { return math.Float64frombits(t.LoadU64(addr)) }

// ---- Fences, barrier, compute, serialization ----

// FenceSystem is __threadfence_system(): it waits until this thread's prior
// writes are visible to the whole system. With DDIO disabled the writes
// drain into the ADR persistence domain, so the fence doubles as a persist
// (gpm_persist); with DDIO enabled the fence completes once the writes
// reach the (volatile) LLC, and durability is NOT guaranteed — exactly the
// pitfall GPM's persist_begin/persist_end exists to avoid (§3.1).
func (t *Thread) FenceSystem() {
	t.checkCrash()
	sp := t.Space()
	ddioOff := sp.DDIOOff()
	lines := t.dedupeLines(t.dirty)
	if ddioOff {
		sp.PersistLinesSeq(lines, t.curSeq)
	}
	t.dirty = t.dirty[:0]
	t.log(laneOp{kind: opFence, aux: uint32(len(lines)), flag: ddioOff})
}

// FenceDevice is __threadfence(): device-scope ordering only. In this model
// writes are immediately visible, so only the timing cost is recorded.
func (t *Thread) FenceDevice() {
	t.checkCrash()
	t.log(laneOp{kind: opCompute, dur: 40 * sim.Nanosecond})
}

// FenceBlock is __threadfence_block().
func (t *Thread) FenceBlock() {
	t.checkCrash()
	t.log(laneOp{kind: opCompute, dur: 10 * sim.Nanosecond})
}

// SyncBlock is __syncthreads(): all live threads of the block rendezvous.
// The arriving thread parks; the barrier releases block-locally once every
// live thread has arrived (threads parked at atomics count as "on their
// way": the barrier waits through the atomic round).
func (t *Thread) SyncBlock() {
	t.checkCrash()
	b := t.blk
	b.arrived++
	t.state = tsBarrier
	b.park(t)
}

// Compute accounts d of pure computation on this thread.
func (t *Thread) Compute(d sim.Duration) {
	t.log(laneOp{kind: opCompute, dur: d})
}

// Serialize accounts d of simulated time on a named serial software
// resource (such as a lock-protected log partition). Unlike Compute, the
// cost does not parallelize: the kernel cannot finish before the sum of all
// time serialized on any single resource.
func (t *Thread) Serialize(resource string, d sim.Duration) {
	id := t.blk.dev.ResourceID(resource)
	t.log(laneOp{kind: opSerial, aux: id, dur: d})
}

// ---- Host-proxy operations (GPUfs daemon writes) ----

// HostWriteBytes performs a CPU-daemon store on behalf of this GPU thread
// (the GPUfs RPC path): the payload lands in the CPU caches with this
// operation's canonical sequence, so its durability ordering is
// schedule-independent. Timing is accounted separately by the caller
// (Serialize/Compute); no warp-log entry is recorded.
func (t *Thread) HostWriteBytes(addr uint64, p []byte) {
	t.checkCrash()
	t.Space().WriteCPUSeq(addr, p, t.curSeq)
}

// HostPersistRange is the daemon-side fsync analog of HostWriteBytes: it
// flushes the virtual PM range at this operation's canonical sequence.
func (t *Thread) HostPersistRange(addr uint64, n int) {
	t.checkCrash()
	t.Space().PersistRangeSeq(addr, n, t.curSeq)
}

// ---- Atomics ----

// atomicApply32 parks the thread at its block. The read-modify-write
// executes when every runnable thread of the wave has parked or exited, in
// canonical (block, thread) order — so the value each thread observes is
// identical for every worker count. The timing model is unchanged: the
// operation is logged and costed at warp replay, exactly as when atomics
// executed inline.
func (t *Thread) atomicApply32(addr uint64, f func(uint32) uint32) (old uint32) {
	t.checkCrash()
	b := t.blk
	t.aAddr, t.aFn, t.aSeq = addr, f, t.curSeq
	t.state = tsAtomic
	b.nAtomic++
	b.park(t)
	t.aFn = nil
	t.trackDirty(t.aLines)
	t.log(laneOp{kind: opAtomic, addr: addr, size: 4, space: t.Space().KindOf(addr)})
	return t.aOld
}

// AtomicAdd32 atomically adds delta at addr and returns the old value.
func (t *Thread) AtomicAdd32(addr uint64, delta uint32) uint32 {
	return t.atomicApply32(addr, func(v uint32) uint32 { return v + delta })
}

// AtomicMin32 atomically stores min(old, v) and returns the old value.
func (t *Thread) AtomicMin32(addr uint64, v uint32) uint32 {
	return t.atomicApply32(addr, func(old uint32) uint32 {
		if v < old {
			return v
		}
		return old
	})
}

// AtomicMax32 atomically stores max(old, v) and returns the old value.
func (t *Thread) AtomicMax32(addr uint64, v uint32) uint32 {
	return t.atomicApply32(addr, func(old uint32) uint32 {
		if v > old {
			return v
		}
		return old
	})
}

// AtomicExch32 atomically swaps in v and returns the old value.
func (t *Thread) AtomicExch32(addr uint64, v uint32) uint32 {
	return t.atomicApply32(addr, func(uint32) uint32 { return v })
}

// AtomicCAS32 atomically replaces expected with v; it returns the value
// observed (CUDA atomicCAS semantics: success iff the return equals
// expected).
func (t *Thread) AtomicCAS32(addr uint64, expected, v uint32) uint32 {
	return t.atomicApply32(addr, func(old uint32) uint32 {
		if old == expected {
			return v
		}
		return old
	})
}

// AtomicOr32 atomically ORs v at addr and returns the old value.
func (t *Thread) AtomicOr32(addr uint64, v uint32) uint32 {
	return t.atomicApply32(addr, func(old uint32) uint32 { return old | v })
}
