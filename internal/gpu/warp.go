package gpu

import (
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

type opKind uint8

const (
	opStore opKind = iota
	opLoad
	opFence
	opCompute
	opAtomic
	opSerial
)

// laneOp is one recorded thread operation, replayed later in SIMT order.
type laneOp struct {
	addr  uint64
	dur   sim.Duration // compute/serial duration
	size  uint32
	aux   uint32 // fence: dirty-line count; serial: resource id
	kind  opKind
	space memsys.Kind
	flag  bool // fence: DDIO was off (must drain to ADR domain)
}

// warp models 32 lanes executing in lockstep with a shared clock.
type warp struct {
	lanes [][]laneOp
	pos   []int
	clock sim.Duration

	step []laneOp // scratch: memory ops of the current SIMT step
}

func newWarp(width int) *warp {
	return &warp{
		lanes: make([][]laneOp, width),
		pos:   make([]int, width),
	}
}

// replayBatch accumulates one replay's traffic before merging into the
// kernel totals. Blocks embed one and reuse it across flushes (reset), so
// the replay hot path allocates nothing in steady state.
type replayBatch struct {
	pmWriteBytes, pmWriteTxns int64
	pmReadBytes, pmReadTxns   int64
	hostWriteBytes            int64
	hostReadBytes             int64
	hostTxns                  int64
	hbmBytes                  int64
	fences                    int64
	serial                    []sim.Duration // dense, indexed by resource id
	pmWrites                  sim.AccessStats
}

// reset clears the batch for reuse, keeping the serial slice's capacity.
func (b *replayBatch) reset() {
	serial := b.serial
	for i := range serial {
		serial[i] = 0
	}
	*b = replayBatch{serial: serial}
}

// addSerial accumulates serialized time for a resource id, growing the
// dense slice on first sight of a new id.
func (b *replayBatch) addSerial(id uint32, d sim.Duration) {
	for int(id) >= len(b.serial) {
		b.serial = append(b.serial, 0)
	}
	b.serial[id] += d
}

// replay drains the lane logs in lockstep order: step i pairs the i-th
// pending operation of every lane, coalesces its memory accesses at 128B
// granularity, and advances the warp clock by the step's cost.
func (w *warp) replay(p *sim.Params, batch *replayBatch) {
	for {
		active := false
		var stepDur sim.Duration
		w.step = w.step[:0]
		for lane := range w.lanes {
			ops := w.lanes[lane]
			if w.pos[lane] >= len(ops) {
				continue
			}
			op := ops[w.pos[lane]]
			w.pos[lane]++
			active = true
			switch op.kind {
			case opCompute:
				d := sim.Duration(float64(op.dur) * p.GPUComputeScale)
				stepDur = sim.MaxDuration(stepDur, d)
			case opSerial:
				batch.addSerial(op.aux, op.dur)
			case opFence:
				batch.fences++
				var c sim.Duration
				if op.flag {
					c = p.PCIeRTT + sim.Duration(op.aux)*p.PMDrainPerLine
				} else {
					c = p.LLCFenceRTT
				}
				stepDur = sim.MaxDuration(stepDur, c)
			default:
				w.step = append(w.step, op)
			}
		}
		if !active {
			break
		}
		if len(w.step) > 0 {
			stepDur = sim.MaxDuration(stepDur, w.coalesce(p, batch))
		}
		w.clock += stepDur
	}
	for lane := range w.lanes {
		w.lanes[lane] = w.lanes[lane][:0]
		w.pos[lane] = 0
	}
}

// coalesce groups the current step's memory operations by access class and
// 128-byte block, accounts the resulting transactions, and returns the
// step's latency contribution.
func (w *warp) coalesce(p *sim.Params, batch *replayBatch) sim.Duration {
	cb := uint64(p.CoalesceBytes)
	sortStepOps(w.step)
	var stepDur sim.Duration
	i := 0
	for i < len(w.step) {
		first := w.step[i]
		blk := first.addr / cb
		var bytes int64
		end := first.addr
		j := i
		for ; j < len(w.step); j++ {
			op := w.step[j]
			if op.kind != first.kind || op.space != first.space || op.addr/cb != blk {
				break
			}
			bytes += int64(op.size)
			if e := op.addr + uint64(op.size); e > end {
				end = e
			}
		}
		span := int(end - first.addr)
		switch first.kind {
		case opStore:
			switch first.space {
			case memsys.KindPM:
				batch.pmWriteTxns++
				batch.pmWriteBytes += bytes
				batch.pmWrites.Record(first.addr, span)
				stepDur = sim.MaxDuration(stepDur, p.GPUIssueCost)
			case memsys.KindDRAM:
				batch.hostTxns++
				batch.hostWriteBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPUIssueCost)
			default:
				batch.hbmBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPUIssueCost)
			}
		case opLoad:
			switch first.space {
			case memsys.KindPM:
				batch.pmReadTxns++
				batch.pmReadBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPULoadStall+p.PMReadLatency)
			case memsys.KindDRAM:
				batch.hostTxns++
				batch.hostReadBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPULoadStall)
			default:
				batch.hbmBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.HBMLatency)
			}
		case opAtomic:
			switch first.space {
			case memsys.KindPM:
				batch.pmWriteTxns++
				batch.pmWriteBytes += bytes
				batch.pmWrites.Record(first.addr, span)
				stepDur = sim.MaxDuration(stepDur, p.PCIeRTT)
			case memsys.KindDRAM:
				batch.hostTxns++
				batch.hostWriteBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.PCIeRTT)
			default:
				batch.hbmBytes += bytes
				stepDur = sim.MaxDuration(stepDur, 4*p.HBMLatency)
			}
		}
		i = j
	}
	return stepDur
}

// stepLess is the coalescer's canonical (kind, space, addr) ordering.
func stepLess(a, b *laneOp) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.space != b.space {
		return a.space < b.space
	}
	return a.addr < b.addr
}

// sortStepOps orders a step's memory operations by (kind, space, addr).
// Lane ops are generated near-sorted (ascending lane, usually ascending
// address) and a step holds at most a warp's width of them, so insertion
// sort beats sort.Slice here: linear on the common case and free of the
// closure/interface overhead. The grouping pass only depends on the sorted
// key order — equal-key ties carry identical (kind, space, addr) and
// contribute the same bytes/span regardless of relative order — so the
// outcome is identical to the previous sort.Slice.
func sortStepOps(step []laneOp) {
	for i := 1; i < len(step); i++ {
		op := step[i]
		j := i - 1
		for j >= 0 && stepLess(&op, &step[j]) {
			step[j+1] = step[j]
			j--
		}
		step[j+1] = op
	}
}
