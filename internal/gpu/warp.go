package gpu

import (
	"sort"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

type opKind uint8

const (
	opStore opKind = iota
	opLoad
	opFence
	opCompute
	opAtomic
	opSerial
)

// laneOp is one recorded thread operation, replayed later in SIMT order.
type laneOp struct {
	addr  uint64
	dur   sim.Duration // compute/serial duration
	size  uint32
	aux   uint32 // fence: dirty-line count; serial: resource id
	kind  opKind
	space memsys.Kind
	flag  bool // fence: DDIO was off (must drain to ADR domain)
}

// warp models 32 lanes executing in lockstep with a shared clock.
type warp struct {
	lanes [][]laneOp
	pos   []int
	clock sim.Duration

	step []laneOp // scratch: memory ops of the current SIMT step
}

func newWarp(width int) *warp {
	return &warp{
		lanes: make([][]laneOp, width),
		pos:   make([]int, width),
	}
}

// replayBatch accumulates one replay's traffic before merging into the
// kernel totals.
type replayBatch struct {
	pmWriteBytes, pmWriteTxns int64
	pmReadBytes, pmReadTxns   int64
	hostWriteBytes            int64
	hostReadBytes             int64
	hostTxns                  int64
	hbmBytes                  int64
	fences                    int64
	serial                    map[uint32]sim.Duration
	pmWrites                  sim.AccessStats
}

func newReplayBatch() *replayBatch {
	return &replayBatch{serial: make(map[uint32]sim.Duration)}
}

// replay drains the lane logs in lockstep order: step i pairs the i-th
// pending operation of every lane, coalesces its memory accesses at 128B
// granularity, and advances the warp clock by the step's cost.
func (w *warp) replay(p *sim.Params, batch *replayBatch) {
	for {
		active := false
		var stepDur sim.Duration
		w.step = w.step[:0]
		for lane := range w.lanes {
			ops := w.lanes[lane]
			if w.pos[lane] >= len(ops) {
				continue
			}
			op := ops[w.pos[lane]]
			w.pos[lane]++
			active = true
			switch op.kind {
			case opCompute:
				d := sim.Duration(float64(op.dur) * p.GPUComputeScale)
				stepDur = sim.MaxDuration(stepDur, d)
			case opSerial:
				batch.serial[op.aux] += op.dur
			case opFence:
				batch.fences++
				var c sim.Duration
				if op.flag {
					c = p.PCIeRTT + sim.Duration(op.aux)*p.PMDrainPerLine
				} else {
					c = p.LLCFenceRTT
				}
				stepDur = sim.MaxDuration(stepDur, c)
			default:
				w.step = append(w.step, op)
			}
		}
		if !active {
			break
		}
		if len(w.step) > 0 {
			stepDur = sim.MaxDuration(stepDur, w.coalesce(p, batch))
		}
		w.clock += stepDur
	}
	for lane := range w.lanes {
		w.lanes[lane] = w.lanes[lane][:0]
		w.pos[lane] = 0
	}
}

// coalesce groups the current step's memory operations by access class and
// 128-byte block, accounts the resulting transactions, and returns the
// step's latency contribution.
func (w *warp) coalesce(p *sim.Params, batch *replayBatch) sim.Duration {
	cb := uint64(p.CoalesceBytes)
	sort.Slice(w.step, func(i, j int) bool {
		a, b := &w.step[i], &w.step[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.space != b.space {
			return a.space < b.space
		}
		return a.addr < b.addr
	})
	var stepDur sim.Duration
	i := 0
	for i < len(w.step) {
		first := w.step[i]
		blk := first.addr / cb
		var bytes int64
		end := first.addr
		j := i
		for ; j < len(w.step); j++ {
			op := w.step[j]
			if op.kind != first.kind || op.space != first.space || op.addr/cb != blk {
				break
			}
			bytes += int64(op.size)
			if e := op.addr + uint64(op.size); e > end {
				end = e
			}
		}
		span := int(end - first.addr)
		switch first.kind {
		case opStore:
			switch first.space {
			case memsys.KindPM:
				batch.pmWriteTxns++
				batch.pmWriteBytes += bytes
				batch.pmWrites.Record(first.addr, span)
				stepDur = sim.MaxDuration(stepDur, p.GPUIssueCost)
			case memsys.KindDRAM:
				batch.hostTxns++
				batch.hostWriteBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPUIssueCost)
			default:
				batch.hbmBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPUIssueCost)
			}
		case opLoad:
			switch first.space {
			case memsys.KindPM:
				batch.pmReadTxns++
				batch.pmReadBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPULoadStall+p.PMReadLatency)
			case memsys.KindDRAM:
				batch.hostTxns++
				batch.hostReadBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.GPULoadStall)
			default:
				batch.hbmBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.HBMLatency)
			}
		case opAtomic:
			switch first.space {
			case memsys.KindPM:
				batch.pmWriteTxns++
				batch.pmWriteBytes += bytes
				batch.pmWrites.Record(first.addr, span)
				stepDur = sim.MaxDuration(stepDur, p.PCIeRTT)
			case memsys.KindDRAM:
				batch.hostTxns++
				batch.hostWriteBytes += bytes
				stepDur = sim.MaxDuration(stepDur, p.PCIeRTT)
			default:
				batch.hbmBytes += bytes
				stepDur = sim.MaxDuration(stepDur, 4*p.HBMLatency)
			}
		}
		i = j
	}
	return stepDur
}
