package gpu

import (
	"encoding/binary"
	"sort"
	"sync"
)

// engine coordinates one kernel launch across a bounded pool of real
// goroutines while keeping every simulated outcome schedule-independent.
//
// The determinism argument has three parts:
//
//  1. Between synchronization points (atomics, barriers, exit) kernel code
//     is race-free — the repo runs under -race — so each thread's execution
//     segment depends only on values committed by earlier rounds, never on
//     how the OS interleaved the segments.
//
//  2. Atomics do not execute inline. A thread reaching an atomic parks;
//     when every runnable thread of the wave has parked or exited
//     (quiescence), the engine commits all pending atomics in canonical
//     (block ID, thread ID) order and wakes the waiters. The quiescent
//     state — who is parked where, with which operands — is therefore the
//     unique fixed point of "run every thread to its next synchronization
//     point", independent of scheduling and of the worker count.
//
//  3. Rounds never commit while the wave is partially spawned: if the
//     spawn window (the -workers bound) is full and the wave still has
//     unspawned blocks, quiescence force-spawns the next block instead.
//     Every round therefore sees the whole wave's threads, so the window
//     size affects wall-clock time only.
//
// Every thread additionally derives a canonical operation index from its
// position in the program (see Thread.checkCrash), which feeds the
// fault-injection abort check, the canonical PM write sequence numbers,
// and the power-failure cut — all schedule-independent.
type engine struct {
	dev *Device

	// Launch-wide canonical constants, captured while the host is serial.
	opBase         int64  // device op-index base for this launch
	gridThreads    int64  // total threads in the grid
	seqBase        uint64 // PM sequence window base for this launch
	abortEnabled   bool
	abortCheck     func(op int64) bool
	alreadyAborted bool // a previous launch aborted; every op aborts

	mu        sync.Mutex
	spawnCond *sync.Cond

	active    int  // spawned threads neither parked nor exited
	inFlight  int  // spawned, unfinished blocks
	unspawned int  // blocks of the current wave not yet spawned
	force     bool // quiescence hit with a partially spawned wave

	pending []*atomicWait
}

// atomicWait is one thread parked at an atomic read-modify-write.
type atomicWait struct {
	t     *Thread
	addr  uint64
	f     func(uint32) uint32
	seq   uint64 // canonical sequence of the atomic's write
	old   uint32
	lines []uint64
	wake  chan struct{}
}

func newEngine(d *Device, gridThreads int) *engine {
	e := &engine{
		dev:            d,
		opBase:         d.opBase,
		gridThreads:    int64(gridThreads),
		seqBase:        d.Space.SeqMark(),
		abortEnabled:   d.abortEnabled.Load(),
		abortCheck:     d.abortCheck,
		alreadyAborted: d.aborted.Load(),
	}
	e.spawnCond = sync.NewCond(&e.mu)
	return e
}

// beginWave registers a new wave's block count.
func (e *engine) beginWave(blocks int) {
	e.mu.Lock()
	e.unspawned = blocks
	e.mu.Unlock()
}

// awaitSpawnSlot blocks until the spawner may launch the next block of the
// wave (window has room, or quiescence demands progress), then registers
// the block's threads as runnable.
func (e *engine) awaitSpawnSlot(window, tpb int) {
	e.mu.Lock()
	for e.inFlight >= window && !e.force {
		e.spawnCond.Wait()
	}
	e.force = false
	e.inFlight++
	e.unspawned--
	e.active += tpb
	e.mu.Unlock()
}

// blockDone retires a finished block, freeing a window slot.
func (e *engine) blockDone() {
	e.mu.Lock()
	e.inFlight--
	e.spawnCond.Signal()
	e.mu.Unlock()
}

// exitThread removes an exiting (returned or crash-unwound) thread from the
// runnable set.
func (e *engine) exitThread() {
	e.mu.Lock()
	e.active--
	e.maybeTrigger()
	e.mu.Unlock()
}

// parkBarrier removes a thread that is about to wait on its block barrier
// from the runnable set. Called with the barrier's mutex held; the
// bar.mu → eng.mu lock order is the only compound order in the engine.
func (e *engine) parkBarrier() {
	e.mu.Lock()
	e.active--
	e.maybeTrigger()
	e.mu.Unlock()
}

// unpark re-registers n threads that a barrier release is about to wake.
// The accounting must precede the wake: a woken thread could otherwise
// observe a stale quiescent state.
func (e *engine) unpark(n int) {
	if n <= 0 {
		return
	}
	e.mu.Lock()
	e.active += n
	e.mu.Unlock()
}

// parkAtomic parks the calling thread at an atomic; the caller then blocks
// on w.wake until a round commits it.
func (e *engine) parkAtomic(w *atomicWait) {
	e.mu.Lock()
	e.pending = append(e.pending, w)
	e.active--
	e.maybeTrigger()
	e.mu.Unlock()
}

// maybeTrigger runs on every transition that can reach quiescence
// (active == 0). Policy, in order: finish spawning the wave, then commit
// the pending atomic round. Called with e.mu held.
func (e *engine) maybeTrigger() {
	if e.active != 0 {
		return
	}
	if e.unspawned > 0 {
		e.force = true
		e.spawnCond.Signal()
		return
	}
	if len(e.pending) > 0 {
		e.runRound()
	}
}

// runRound commits every pending atomic in canonical (block, thread) order
// and wakes the waiters. All other threads of the wave are parked or
// exited, so the reads and writes below are the only accesses in flight.
// Called with e.mu held.
func (e *engine) runRound() {
	sort.Slice(e.pending, func(i, j int) bool {
		a, b := e.pending[i].t, e.pending[j].t
		if a.blk.id != b.blk.id {
			return a.blk.id < b.blk.id
		}
		return a.id < b.id
	})
	sp := e.dev.Space
	for _, w := range e.pending {
		w.old = sp.ReadU32(w.addr)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], w.f(w.old))
		w.lines = sp.WriteGPUSeq(w.addr, b[:], w.seq)
	}
	e.active += len(e.pending)
	for _, w := range e.pending {
		close(w.wake)
	}
	e.pending = nil
}
