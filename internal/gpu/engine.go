package gpu

import (
	"encoding/binary"
	"sync"
)

// engine coordinates one kernel launch across block-granularity execution
// units while keeping every simulated outcome schedule-independent.
//
// Execution units are threadblocks, not threads: each block owns a single
// scheduling "baton" and runs its threads as an inner loop in canonical
// thread-ID order between synchronization points (see block.go). The engine
// therefore only has to arbitrate *between* blocks, and its mutex is taken
// once per block state transition (spawn, quiescence, retire) instead of
// once per thread park — the change that makes host parallelism pay.
//
// The determinism argument has three parts:
//
//  1. Between synchronization points kernel code is race-free — the repo
//     runs under -race — so each thread's execution segment depends only on
//     values committed by earlier rounds, never on the order segments ran
//     in. Within a block the order is in fact fixed (ascending thread ID);
//     across blocks it is whatever the host scheduler does, which by the
//     race-freedom contract cannot be observed.
//
//  2. Atomics do not execute inline. A thread reaching an atomic parks
//     inside its block; when every live thread of a block is parked the
//     block reports quiescent, and when every spawned block of the wave is
//     quiescent or retired (activeBlocks == 0), the engine commits all
//     pending atomics in canonical (block ID, thread ID) order and wakes
//     the blocks. The quiescent state — who is parked where, with which
//     operands — is the unique fixed point of "run every thread to its
//     next synchronization point", independent of scheduling and of the
//     worker count.
//
//  3. Rounds never commit while the wave is partially spawned: if the
//     spawn window (the -workers bound) is full and the wave still has
//     unspawned blocks, quiescence force-spawns the next block instead.
//     Every round therefore sees the whole wave's threads, so the window
//     size affects wall-clock time only.
//
// Every thread additionally derives a canonical operation index from its
// position in the program (see Thread.checkCrash), which feeds the
// fault-injection abort check, the canonical PM write sequence numbers,
// and the power-failure cut — all schedule-independent.
type engine struct {
	dev *Device

	// Launch-wide canonical constants, captured while the host is serial.
	opBase         int64  // device op-index base for this launch
	gridThreads    int64  // total threads in the grid
	seqBase        uint64 // PM sequence window base for this launch
	abortEnabled   bool
	abortCheck     func(op int64) bool
	alreadyAborted bool // a previous launch aborted; every op aborts

	mu        sync.Mutex
	spawnCond *sync.Cond

	activeBlocks int  // spawned blocks neither quiescent nor retired
	inFlight     int  // spawned, unfinished blocks (window occupancy)
	unspawned    int  // blocks of the current wave not yet spawned
	force        bool // quiescence hit with a partially spawned wave

	// waiting holds blocks parked at quiescence with pending atomics. They
	// arrive roughly in spawn (block ID) order, so the round sort is an
	// insertion sort over a near-sorted list.
	waiting []*Block
}

func newEngine(d *Device, gridThreads int) *engine {
	e := &engine{
		dev:            d,
		opBase:         d.opBase,
		gridThreads:    int64(gridThreads),
		seqBase:        d.Space.SeqMark(),
		abortEnabled:   d.abortEnabled.Load(),
		abortCheck:     d.abortCheck,
		alreadyAborted: d.aborted.Load(),
	}
	e.spawnCond = sync.NewCond(&e.mu)
	return e
}

// beginWave registers a new wave's block count.
func (e *engine) beginWave(blocks int) {
	e.mu.Lock()
	e.unspawned = blocks
	e.mu.Unlock()
}

// awaitSpawnSlot blocks until the spawner may launch the next block of the
// wave (window has room, or quiescence demands progress), then registers
// the block as active.
func (e *engine) awaitSpawnSlot(window int) {
	e.mu.Lock()
	for e.inFlight >= window && !e.force {
		e.spawnCond.Wait()
	}
	e.force = false
	e.inFlight++
	e.unspawned--
	e.activeBlocks++
	e.mu.Unlock()
}

// blockDone retires a finished block, freeing a window slot. The retiring
// block may have been the last active one, unblocking a pending round.
func (e *engine) blockDone() {
	e.mu.Lock()
	e.inFlight--
	e.activeBlocks--
	e.spawnCond.Signal()
	e.maybeTrigger()
	e.mu.Unlock()
}

// blockQuiescent records that every live thread of b is parked and at least
// one is waiting on an atomic. The caller (b's baton holder) must block on
// b.wake immediately after; the engine owns b's parked thread records until
// it sends the wake token.
func (e *engine) blockQuiescent(b *Block) {
	e.mu.Lock()
	e.waiting = append(e.waiting, b)
	e.activeBlocks--
	e.maybeTrigger()
	e.mu.Unlock()
}

// maybeTrigger runs on every transition that can reach quiescence
// (activeBlocks == 0). Policy, in order: finish spawning the wave, then
// commit the pending atomic round. Called with e.mu held.
func (e *engine) maybeTrigger() {
	if e.activeBlocks != 0 {
		return
	}
	if e.unspawned > 0 {
		e.force = true
		e.spawnCond.Signal()
		return
	}
	if len(e.waiting) > 0 {
		e.runRound()
	}
}

// runRound commits every pending atomic in canonical (block, thread) order
// and wakes the waiting blocks. All other blocks of the wave have retired,
// so the reads and writes below are the only accesses in flight. Called
// with e.mu held; the mutex is also what publishes the per-thread operand
// fields each block wrote before parking.
func (e *engine) runRound() {
	// Blocks quiesce roughly in spawn order, so the list is near-sorted:
	// insertion sort is O(n) here and skips sort.Slice's closure overhead.
	sortBlocksByID(e.waiting)
	sp := e.dev.Space
	for _, b := range e.waiting {
		for _, t := range b.threads {
			if t.state != tsAtomic {
				continue
			}
			t.aOld = sp.ReadU32(t.aAddr)
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], t.aFn(t.aOld))
			t.aLines = sp.WriteGPUSeqInto(t.aLines[:0], t.aAddr, buf[:], t.aSeq)
		}
	}
	e.activeBlocks += len(e.waiting)
	for _, b := range e.waiting {
		b.wake <- struct{}{} // buffered; the baton holder is (or will be) receiving
	}
	e.waiting = e.waiting[:0]
}

// sortBlocksByID sorts a near-sorted block list by block ID (insertion
// sort: linear on the already-ordered common case).
func sortBlocksByID(bs []*Block) {
	for i := 1; i < len(bs); i++ {
		b := bs[i]
		j := i - 1
		for j >= 0 && bs[j].id > b.id {
			bs[j+1] = bs[j]
			j--
		}
		bs[j+1] = b
	}
}
