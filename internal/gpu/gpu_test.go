package gpu

import (
	"sync/atomic"
	"testing"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func newDev(t *testing.T) *Device {
	t.Helper()
	sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 4 << 20, PMSize: 8 << 20})
	return New(sp)
}

func TestEveryThreadRuns(t *testing.T) {
	d := newDev(t)
	var count atomic.Int64
	res := d.Launch("count", 7, 65, func(th *Thread) {
		count.Add(1)
	})
	if count.Load() != 7*65 {
		t.Errorf("ran %d threads, want %d", count.Load(), 7*65)
	}
	if res.Elapsed < d.Params.KernelLaunch {
		t.Errorf("elapsed %v below launch overhead", res.Elapsed)
	}
}

func TestThreadIdentity(t *testing.T) {
	d := newDev(t)
	seen := make([]atomic.Bool, 4*64)
	d.Launch("ids", 4, 64, func(th *Thread) {
		g := th.GlobalID()
		if g != th.Block().ID()*64+th.ID() {
			t.Errorf("global id mismatch")
		}
		if th.Lane() != th.ID()%32 || th.WarpID() != th.ID()/32 {
			t.Errorf("lane/warp mismatch")
		}
		if th.GridThreads() != 4*64 || th.Block().Grid() != 4 || th.Block().Threads() != 64 {
			t.Errorf("grid shape mismatch")
		}
		if seen[g].Swap(true) {
			t.Errorf("thread %d ran twice", g)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestHBMStoreLoadRoundTrip(t *testing.T) {
	d := newDev(t)
	buf := d.Space.AllocHBM(4 * 256)
	d.Launch("write", 1, 256, func(th *Thread) {
		th.StoreU32(buf+uint64(4*th.GlobalID()), uint32(th.GlobalID()*3))
	})
	d.Launch("read", 1, 256, func(th *Thread) {
		if v := th.LoadU32(buf + uint64(4*th.GlobalID())); v != uint32(th.GlobalID()*3) {
			t.Errorf("thread %d read %d", th.GlobalID(), v)
		}
	})
}

func TestSyncBlockOrdersPhases(t *testing.T) {
	d := newDev(t)
	buf := d.Space.AllocHBM(4 * 128)
	ok := atomic.Bool{}
	ok.Store(true)
	d.Launch("sync", 1, 128, func(th *Thread) {
		th.StoreU32(buf+uint64(4*th.ID()), 7)
		th.SyncBlock()
		// After the barrier every other thread's store must be visible.
		peer := (th.ID() + 37) % 128
		if th.LoadU32(buf+uint64(4*peer)) != 7 {
			ok.Store(false)
		}
	})
	if !ok.Load() {
		t.Error("stores before barrier not visible after it")
	}
}

func TestFencePersistsWithDDIOOff(t *testing.T) {
	d := newDev(t)
	addr := d.Space.AllocPM(64, 0)
	d.Space.SetDDIOOff(true)
	d.Launch("persist", 1, 1, func(th *Thread) {
		th.StoreU32(addr, 42)
		th.FenceSystem()
	})
	d.Space.Crash()
	if got := d.Space.ReadU32(addr); got != 42 {
		t.Errorf("fenced store lost: %d", got)
	}
}

func TestFenceDoesNotPersistWithDDIOOn(t *testing.T) {
	d := newDev(t)
	addr := d.Space.AllocPM(64, 0)
	d.Launch("nopersist", 1, 1, func(th *Thread) {
		th.StoreU32(addr, 42)
		th.FenceSystem() // completes at the LLC; not durable
	})
	d.Space.Crash()
	if got := d.Space.ReadU32(addr); got != 0 {
		t.Errorf("DDIO-on fence persisted data: %d", got)
	}
}

func TestUnfencedWriteLost(t *testing.T) {
	d := newDev(t)
	addr := d.Space.AllocPM(64, 0)
	d.Space.SetDDIOOff(true)
	d.Launch("nofence", 1, 1, func(th *Thread) {
		th.StoreU32(addr, 42)
	})
	d.Space.Crash()
	if got := d.Space.ReadU32(addr); got != 0 {
		t.Errorf("unfenced store survived: %d", got)
	}
}

func TestCoalescingOneTxnPerWarpLine(t *testing.T) {
	d := newDev(t)
	d.Space.SetDDIOOff(true)
	addr := d.Space.AllocPM(4*64, 0)
	// 32 lanes × 4B contiguous = 128B = exactly one coalesced transaction.
	res := d.Launch("coalesced", 1, 32, func(th *Thread) {
		th.StoreU32(addr+uint64(4*th.Lane()), 1)
	})
	if res.Stats.PMWriteTxns != 1 {
		t.Errorf("coalesced warp store = %d txns, want 1", res.Stats.PMWriteTxns)
	}
	if res.Stats.PMWriteBytes != 128 {
		t.Errorf("bytes = %d", res.Stats.PMWriteBytes)
	}
}

func TestScatteredStoresDoNotCoalesce(t *testing.T) {
	d := newDev(t)
	d.Space.SetDDIOOff(true)
	addr := d.Space.AllocPM(32*256, 0)
	res := d.Launch("scattered", 1, 32, func(th *Thread) {
		th.StoreU32(addr+uint64(256*th.Lane()), 1) // each lane on its own 128B block
	})
	if res.Stats.PMWriteTxns != 32 {
		t.Errorf("scattered warp store = %d txns, want 32", res.Stats.PMWriteTxns)
	}
}

func TestCoalescedFasterThanScattered(t *testing.T) {
	d := newDev(t)
	d.Space.SetDDIOOff(true)
	n := 1 << 14
	a := d.Space.AllocPM(int64(n)*4, 0)
	b := d.Space.AllocPM(int64(n)*256, 0)
	co := d.Launch("co", n/256, 256, func(th *Thread) {
		th.StoreU32(a+uint64(4*th.GlobalID()), 1)
		th.FenceSystem()
	})
	sc := d.Launch("sc", n/256, 256, func(th *Thread) {
		th.StoreU32(b+uint64(256*th.GlobalID()), 1)
		th.FenceSystem()
	})
	if co.Elapsed >= sc.Elapsed {
		t.Errorf("coalesced (%v) not faster than scattered (%v)", co.Elapsed, sc.Elapsed)
	}
}

func TestFenceCostSerializesWarp(t *testing.T) {
	d := newDev(t)
	d.Space.SetDDIOOff(true)
	addr := d.Space.AllocPM(1<<20, 0)
	noFence := d.Launch("nf", 1, 32, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.StoreU32(addr+uint64(i*128+4*th.Lane()), 1)
		}
	})
	withFence := d.Launch("wf", 1, 32, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.StoreU32(addr+uint64(i*128+4*th.Lane()), 1)
			th.FenceSystem()
		}
	})
	if withFence.Elapsed < noFence.Elapsed+90*sim.Microsecond/2 {
		t.Errorf("100 fences cost too little: %v vs %v", withFence.Elapsed, noFence.Elapsed)
	}
	if withFence.Stats.Fences != 100*32 {
		t.Errorf("fences = %d", withFence.Stats.Fences)
	}
}

func TestParallelismHidesFenceLatency(t *testing.T) {
	// More warps persisting the same total data should be faster, up to
	// the bandwidth bound (Fig 3b's mechanism).
	d := newDev(t)
	d.Space.SetDDIOOff(true)
	total := 1 << 18
	a := d.Space.AllocPM(int64(total), 0)
	run := func(threads int) sim.Duration {
		per := total / 4 / threads
		blocks := (threads + 255) / 256
		tpb := threads
		if tpb > 256 {
			tpb = 256
		}
		res := d.Launch("scale", blocks, tpb, func(th *Thread) {
			base := a + uint64(th.GlobalID()*per*4)
			for i := 0; i < per; i++ {
				th.StoreU32(base+uint64(4*i), 1)
				th.FenceSystem()
			}
		})
		return res.Elapsed
	}
	t32, t1024 := run(32), run(1024)
	if t1024 >= t32 {
		t.Errorf("1024 threads (%v) not faster than 32 (%v)", t1024, t32)
	}
}

func TestSerializeBindsKernelTime(t *testing.T) {
	d := newDev(t)
	res := d.Launch("serial", 4, 64, func(th *Thread) {
		th.Serialize("lock", sim.Microsecond)
	})
	want := sim.Duration(4*64) * sim.Microsecond
	if res.Elapsed < want {
		t.Errorf("serialized time not honored: %v < %v", res.Elapsed, want)
	}
	if res.Stats.Serial["lock"] != want {
		t.Errorf("serial accounting = %v", res.Stats.Serial["lock"])
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	d := newDev(t)
	quick := d.Launch("q", 1, 32, func(th *Thread) { th.Compute(sim.Microsecond) })
	slow := d.Launch("s", 1, 32, func(th *Thread) { th.Compute(sim.Millisecond) })
	if slow.Elapsed <= quick.Elapsed {
		t.Errorf("compute not accounted: %v vs %v", slow.Elapsed, quick.Elapsed)
	}
}

func TestWavesScaleElapsed(t *testing.T) {
	d := newDev(t)
	one := d.Launch("w1", d.Params.MaxConcurrentBlocks(), 32, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
	})
	four := d.Launch("w4", 4*d.Params.MaxConcurrentBlocks(), 32, func(th *Thread) {
		th.Compute(100 * sim.Microsecond)
	})
	ratio := float64(four.Elapsed) / float64(one.Elapsed)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4 waves / 1 wave = %.2f, want ~4", ratio)
	}
}

func TestAtomicAdd(t *testing.T) {
	d := newDev(t)
	addr := d.Space.AllocHBM(4)
	d.Launch("atomic", 8, 128, func(th *Thread) {
		th.AtomicAdd32(addr, 1)
	})
	if got := d.Space.ReadU32(addr); got != 8*128 {
		t.Errorf("atomic sum = %d, want %d", got, 8*128)
	}
}

func TestAtomicMinMaxCASExchOr(t *testing.T) {
	d := newDev(t)
	base := d.Space.AllocHBM(64)
	d.Space.WriteU32(base, 1000)
	d.Launch("min", 1, 64, func(th *Thread) {
		th.AtomicMin32(base, uint32(500+th.ID()))
	})
	if got := d.Space.ReadU32(base); got != 500 {
		t.Errorf("atomic min = %d", got)
	}
	d.Launch("max", 1, 64, func(th *Thread) {
		th.AtomicMax32(base+4, uint32(th.ID()))
	})
	if got := d.Space.ReadU32(base + 4); got != 63 {
		t.Errorf("atomic max = %d", got)
	}
	var wins atomic.Int32
	d.Launch("cas", 1, 64, func(th *Thread) {
		if th.AtomicCAS32(base+8, 0, uint32(th.ID()+1)) == 0 {
			wins.Add(1)
		}
	})
	if wins.Load() != 1 {
		t.Errorf("CAS winners = %d, want 1", wins.Load())
	}
	d.Launch("or", 1, 32, func(th *Thread) {
		th.AtomicOr32(base+12, 1<<uint(th.ID()))
	})
	if got := d.Space.ReadU32(base + 12); got != 0xffffffff {
		t.Errorf("atomic or = %#x", got)
	}
	d.Launch("exch", 1, 1, func(th *Thread) {
		if old := th.AtomicExch32(base+16, 9); old != 0 {
			t.Errorf("exch old = %d", old)
		}
	})
	if got := d.Space.ReadU32(base + 16); got != 9 {
		t.Errorf("exch = %d", got)
	}
}

func TestSharedMemory(t *testing.T) {
	d := newDev(t)
	sum := d.Space.AllocHBM(4 * 8)
	d.Launch("shared", 8, 64, func(th *Thread) {
		sh := th.Block().Shared(64 * 4)
		sh[th.ID()*4] = byte(1)
		th.SyncBlock()
		if th.ID() == 0 {
			total := uint32(0)
			for i := 0; i < 64; i++ {
				total += uint32(sh[i*4])
			}
			th.StoreU32(sum+uint64(4*th.Block().ID()), total)
		}
	})
	for b := 0; b < 8; b++ {
		if got := d.Space.ReadU32(sum + uint64(4*b)); got != 64 {
			t.Errorf("block %d shared sum = %d", b, got)
		}
	}
}

func TestAbortCheckCrashesKernel(t *testing.T) {
	d := newDev(t)
	addr := d.Space.AllocPM(1<<19, 0)
	d.Space.SetDDIOOff(true)
	d.SetAbortCheck(func(op int64) bool { return op >= 1000 })
	res := d.Launch("doomed", 8, 128, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.StoreU32(addr+uint64(th.GlobalID()*100+i)*4, 1)
		}
	})
	if !res.Crashed {
		t.Fatal("kernel did not crash")
	}
	d.SetAbortCheck(nil)
	res2 := d.Launch("fine", 1, 32, func(th *Thread) { th.StoreU32(addr, 1) })
	if res2.Crashed {
		t.Error("crash state leaked into next kernel")
	}
}

func TestCrashWithBarriersDoesNotDeadlock(t *testing.T) {
	d := newDev(t)
	addr := d.Space.AllocPM(1<<16, 0)
	d.Space.SetDDIOOff(true)
	d.SetAbortCheck(func(op int64) bool { return op >= 50 })
	res := d.Launch("barriered", 2, 64, func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.StoreU32(addr+uint64(th.GlobalID()*4), uint32(i))
			th.SyncBlock()
		}
	})
	if !res.Crashed {
		t.Fatal("expected crash")
	}
	d.SetAbortCheck(nil)
}

func TestLoadStoreTypes(t *testing.T) {
	d := newDev(t)
	a := d.Space.AllocHBM(64)
	d.Launch("types", 1, 1, func(th *Thread) {
		th.StoreU64(a, 1<<40)
		th.StoreF32(a+8, 1.5)
		th.StoreF64(a+16, -0.25)
		if th.LoadU64(a) != 1<<40 || th.LoadF32(a+8) != 1.5 || th.LoadF64(a+16) != -0.25 {
			t.Error("typed round trip failed")
		}
	})
}

func TestFenceScopesCost(t *testing.T) {
	d := newDev(t)
	res := d.Launch("scopes", 1, 32, func(th *Thread) {
		th.FenceBlock()
		th.FenceDevice()
	})
	if res.Elapsed <= d.Params.KernelLaunch {
		t.Error("scoped fences cost nothing")
	}
}

func TestPMPatternClassification(t *testing.T) {
	d := newDev(t)
	d.Space.SetDDIOOff(true)
	a := d.Space.AllocPM(1<<20, 0)
	res := d.Launch("seq", 32, 256, func(th *Thread) {
		th.StoreU32(a+uint64(4*th.GlobalID()), 1)
	})
	pat := res.Stats.PMPattern()
	if pat.SeqFraction() < 0.5 {
		t.Errorf("grid-sequential store stream seq fraction = %.2f", pat.SeqFraction())
	}
}

func TestInvalidLaunchPanics(t *testing.T) {
	d := newDev(t)
	for _, c := range []struct{ b, t int }{{0, 32}, {1, 0}, {1, 2048}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("launch %dx%d did not panic", c.b, c.t)
				}
			}()
			d.Launch("bad", c.b, c.t, func(*Thread) {})
		}()
	}
}
