package gpu

import (
	"sync"

	"github.com/gpm-sim/gpm/internal/sim"
)

// threadState is a thread's position in its block's cooperative schedule.
type threadState uint8

const (
	tsNew     threadState = iota // never run; executes inline on a scheduler goroutine
	tsReady                      // runnable, queued in canonical order
	tsRunning                    // holds the block's baton
	tsBarrier                    // parked at the block barrier
	tsAtomic                     // parked at an atomic, operands staged for the engine
	tsExited                     // returned or crash-unwound
)

// Block is one resident threadblock: the block-granularity execution unit.
//
// A block owns a single scheduling "baton": at any instant exactly one
// goroutine — the baton holder — is executing kernel code or scheduling on
// the block's behalf. Threads run as an inner loop in ascending thread-ID
// order between synchronization points; a thread that parks (barrier,
// atomic) hands the baton to the next runnable thread, lazily materializing
// a goroutine only for threads that actually park. Kernels that never
// synchronize execute on the block's bootstrap goroutine alone, with zero
// thread goroutines, zero channel operations, and zero locking.
//
// Because threads of a block never run concurrently, all block-local state
// (shared memory, warp logs, barrier counts, stats) is mutex-free; the
// happens-before edges are the baton handoffs themselves (channel sends,
// goroutine spawns, and the engine's round mutex).
type Block struct {
	dev      *Device
	eng      *engine
	id       int
	grid     int // number of blocks in the grid
	nthreads int
	kern     func(*Thread)
	warps    []*warp
	threads  []*Thread
	stats    *kernelStats
	shared   []byte

	live    int // threads not yet exited
	arrived int // threads parked at the current barrier generation
	nAtomic int // threads parked at atomics

	// ready is the canonical run queue. It is refilled only at block-local
	// quiescence (when it is empty) in ascending thread-ID order, so FIFO
	// consumption is canonical order.
	ready     []int32
	readyHead int

	wake  chan struct{} // engine -> baton holder: atomic round committed
	batch replayBatch   // reused across warp-log flushes

	out *blockOutcome // finish results, read by Launch after the wave joins
	wg  *sync.WaitGroup
}

// ID returns the block index within the grid.
func (b *Block) ID() int { return b.id }

// Threads returns the number of threads in the block (blockDim).
func (b *Block) Threads() int { return b.nthreads }

// Grid returns the number of blocks in the grid (gridDim).
func (b *Block) Grid() int { return b.grid }

// Shared returns the block's shared-memory arena, allocating it at the
// requested size on first use (CUDA __shared__ analog). All threads in the
// block see the same arena; callers synchronize with SyncBlock as they
// would on hardware. Threads of a block never run concurrently, so the
// arena needs no lock.
func (b *Block) Shared(n int) []byte {
	if len(b.shared) < n {
		grown := make([]byte, n)
		copy(grown, b.shared)
		b.shared = grown
	}
	return b.shared[:n]
}

// ---- Cooperative scheduler ----

// popReady dequeues the next runnable thread in canonical order.
func (b *Block) popReady() *Thread {
	if b.readyHead >= len(b.ready) {
		return nil
	}
	t := b.threads[b.ready[b.readyHead]]
	b.readyHead++
	return t
}

// refill restarts the run queue from empty; push order must be ascending
// thread ID so FIFO consumption stays canonical.
func (b *Block) refill() {
	b.ready = b.ready[:0]
	b.readyHead = 0
}

// next returns the lowest-ID runnable thread, resolving block-local
// quiescence on the calling goroutine: releasable barriers release here,
// and when every live thread is parked at an atomic (or behind a barrier an
// atomic is holding up) the block reports quiescent to the engine and
// sleeps until the round commits. Returns nil once every thread has exited.
func (b *Block) next() *Thread {
	for {
		if t := b.popReady(); t != nil {
			return t
		}
		if b.live == 0 {
			return nil
		}
		if b.arrived == b.live {
			b.releaseBarrier()
			continue
		}
		if b.nAtomic == 0 {
			panic("gpu: block quiescent with no pending atomics") // scheduler invariant
		}
		b.eng.blockQuiescent(b)
		<-b.wake
		b.roundCommitted()
	}
}

// releaseBarrier runs when every live thread has arrived: flush the warp
// logs (aligning warp clocks to the block maximum) and requeue the waiters
// in canonical order.
func (b *Block) releaseBarrier() {
	b.flushAndSync()
	b.refill()
	for _, t := range b.threads {
		if t.state == tsBarrier {
			t.state = tsReady
			b.ready = append(b.ready, int32(t.id))
		}
	}
	b.arrived = 0
}

// roundCommitted requeues the atomic waiters after the engine committed
// their operations (results are staged in each thread's aOld/aLines).
func (b *Block) roundCommitted() {
	b.refill()
	for _, t := range b.threads {
		if t.state == tsAtomic {
			t.state = tsReady
			b.ready = append(b.ready, int32(t.id))
		}
	}
	b.nAtomic = 0
}

// runScheduler drives runnable threads in canonical order on the calling
// goroutine, which must carry no kernel frames: new threads execute inline
// on its stack. It returns after handing the baton to a parked thread's
// goroutine, or after retiring the block. first, if non-nil, is a thread
// already dequeued by the spawning parker.
func (b *Block) runScheduler(first *Thread) {
	t := first
	for {
		if t == nil {
			if t = b.next(); t == nil {
				b.finish()
				return
			}
		}
		if t.started {
			t.state = tsRunning
			t.resume <- struct{}{}
			return
		}
		b.exec(t)
		t = nil
	}
}

// exec runs one new thread's kernel function inline. If the thread parks,
// the baton moves elsewhere and this call does not return until the thread
// is resumed and its kernel completes; either way, when exec returns the
// calling goroutine holds the baton again.
func (b *Block) exec(t *Thread) {
	t.started = true
	t.state = tsRunning
	defer func() {
		t.state = tsExited
		b.live--
		if r := recover(); r != nil && r != ErrCrashed {
			panic(r)
		}
	}()
	b.kern(t)
}

// park suspends t — already marked tsBarrier or tsAtomic by the caller —
// and moves the baton onward; it returns once t is resumed. The calling
// goroutine carries t's kernel frames, so a tsNew successor needs a fresh
// scheduler goroutine (this is the lazy materialization point: kernels
// whose threads never park never reach it).
func (b *Block) park(t *Thread) {
	u := b.next() // never nil: t itself is live and parked
	if u == t {
		// t's own park resolved the quiescence (last to a barrier, or a
		// round committed and t is first in canonical order): baton returns
		// straight to t with no channel traffic.
		t.state = tsRunning
		return
	}
	if t.resume == nil {
		t.resume = make(chan struct{}, 1)
	}
	if u.started {
		u.state = tsRunning
		u.resume <- struct{}{}
	} else {
		go b.runScheduler(u)
	}
	<-t.resume
}

// finish retires the block: replay remaining warp logs, harvest the results
// Launch reads after the join, recycle the Block, and free the window slot.
// Runs on the final baton holder. The harvest must complete before the pool
// Put — a concurrent spawner may reuse the Block the moment it is pooled —
// and the Put must precede blockDone so a spawner unblocked by the freed
// window slot finds the Block available.
func (b *Block) finish() {
	out := b.out
	out.crit = b.flushFinal()
	for _, t := range b.threads {
		if t.opIdx > out.maxLocal {
			out.maxLocal = t.opIdx
		}
		if t.lastExec > out.maxExec {
			out.maxExec = t.lastExec
		}
		if t.abortedAt != 0 && (out.minAbort == 0 || t.abortedAt < out.minAbort) {
			out.minAbort = t.abortedAt
		}
	}
	eng, wg, dev := b.eng, b.wg, b.dev
	dev.blockPool.Put(b)
	eng.blockDone()
	wg.Done()
}

// flushAndSync replays every warp's pending operations and, because it runs
// at a block-wide barrier, aligns all warp clocks to the block maximum.
func (b *Block) flushAndSync() {
	b.batch.reset()
	var maxClock sim.Duration
	for _, w := range b.warps {
		w.replay(b.dev.Params, &b.batch)
		if w.clock > maxClock {
			maxClock = w.clock
		}
	}
	for _, w := range b.warps {
		w.clock = maxClock
	}
	b.stats.merge(&b.batch)
}

// flushFinal replays any remaining operations at block exit and returns the
// block's critical path.
func (b *Block) flushFinal() sim.Duration {
	b.batch.reset()
	var maxClock sim.Duration
	for _, w := range b.warps {
		w.replay(b.dev.Params, &b.batch)
		if w.clock > maxClock {
			maxClock = w.clock
		}
	}
	b.stats.merge(&b.batch)
	return maxClock
}
