package gpu

import (
	"sync"

	"github.com/gpm-sim/gpm/internal/sim"
)

// Block is one resident threadblock.
type Block struct {
	dev      *Device
	eng      *engine
	id       int
	grid     int // number of blocks in the grid
	nthreads int
	warps    []*warp
	bar      barrier
	stats    *kernelStats

	sharedMu sync.Mutex
	shared   []byte
}

// ID returns the block index within the grid.
func (b *Block) ID() int { return b.id }

// Threads returns the number of threads in the block (blockDim).
func (b *Block) Threads() int { return b.nthreads }

// Grid returns the number of blocks in the grid (gridDim).
func (b *Block) Grid() int { return b.grid }

// Shared returns the block's shared-memory arena, allocating it at the
// requested size on first use (CUDA __shared__ analog). All threads in the
// block see the same arena; callers synchronize with SyncBlock as they
// would on hardware.
func (b *Block) Shared(n int) []byte {
	b.sharedMu.Lock()
	defer b.sharedMu.Unlock()
	if len(b.shared) < n {
		grown := make([]byte, n)
		copy(grown, b.shared)
		b.shared = grown
	}
	return b.shared[:n]
}

// flushAndSync replays every warp's pending operations and, because it runs
// at a block-wide barrier, aligns all warp clocks to the block maximum.
func (b *Block) flushAndSync() {
	batch := newReplayBatch()
	var maxClock sim.Duration
	for _, w := range b.warps {
		w.replay(b.dev.Params, batch)
		if w.clock > maxClock {
			maxClock = w.clock
		}
	}
	for _, w := range b.warps {
		w.clock = maxClock
	}
	b.stats.merge(batch)
}

// flushFinal replays any remaining operations at block exit and returns the
// block's critical path.
func (b *Block) flushFinal() sim.Duration {
	batch := newReplayBatch()
	var maxClock sim.Duration
	for _, w := range b.warps {
		w.replay(b.dev.Params, batch)
		if w.clock > maxClock {
			maxClock = w.clock
		}
	}
	b.stats.merge(batch)
	return maxClock
}

func (d *Device) runBlock(eng *engine, id, grid, tpb int, kern func(*Thread), st *kernelStats) (sim.Duration, []*Thread) {
	ws := d.Params.WarpSize
	if ws <= 0 {
		ws = 32
	}
	nWarps := (tpb + ws - 1) / ws
	blk := &Block{
		dev:      d,
		eng:      eng,
		id:       id,
		grid:     grid,
		nthreads: tpb,
		warps:    make([]*warp, nWarps),
		stats:    st,
	}
	for i := range blk.warps {
		width := ws
		if i == nWarps-1 && tpb%ws != 0 {
			width = tpb % ws
		}
		blk.warps[i] = newWarp(width)
	}
	blk.bar.init(tpb, blk.flushAndSync, eng)

	threads := make([]*Thread, tpb)
	var wg sync.WaitGroup
	for tid := 0; tid < tpb; tid++ {
		t := &Thread{
			blk:  blk,
			id:   tid,
			warp: blk.warps[tid/ws],
			lane: tid % ws,
		}
		threads[tid] = t
		wg.Add(1)
		go func(t *Thread) {
			defer wg.Done()
			defer func() {
				// Order matters: deregister from the barrier first (it may
				// release stragglers, re-registering them with the engine),
				// then leave the engine's runnable set — which may trigger
				// a spawn or an atomic round.
				blk.bar.done()
				eng.exitThread()
				if r := recover(); r != nil && r != ErrCrashed {
					panic(r)
				}
			}()
			kern(t)
		}(t)
	}
	wg.Wait()
	return blk.flushFinal(), threads
}

// barrier is a reusable block-wide barrier that tolerates threads leaving
// (thread exit deregisters via done) and runs a callback — the warp-log
// flush — exactly once per release, while all threads are quiescent. It
// reports parked/woken threads to the launch engine so quiescence detection
// sees barrier waiters as not-runnable. Lock order: bar.mu → eng.mu.
type barrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	total     int
	count     int
	gen       uint64
	onRelease func()
	eng       *engine
}

func (b *barrier) init(total int, onRelease func(), eng *engine) {
	b.total = total
	b.onRelease = onRelease
	b.eng = eng
	b.cond = sync.NewCond(&b.mu)
}

// wait blocks until all live threads of the block have arrived.
func (b *barrier) wait() {
	b.mu.Lock()
	b.count++
	if b.count >= b.total {
		// The arriving thread never parked, so it wakes count-1 waiters.
		b.release(b.count - 1)
		b.mu.Unlock()
		return
	}
	gen := b.gen
	// Park before sleeping; releasing requires b.mu, so a release cannot
	// slip between the park and the cond.Wait below.
	b.eng.parkBarrier()
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// done deregisters an exiting thread; if it was the last straggler holding
// up a barrier, the barrier releases. All count arrived threads are parked.
func (b *barrier) done() {
	b.mu.Lock()
	b.total--
	if b.count > 0 && b.count >= b.total {
		b.release(b.count)
	}
	b.mu.Unlock()
}

// release must be called with b.mu held; woken is the number of parked
// threads this release wakes. They re-enter the engine's runnable set
// before the broadcast so quiescence is never observed mid-release.
func (b *barrier) release(woken int) {
	if b.onRelease != nil {
		b.onRelease()
	}
	b.eng.unpark(woken)
	b.count = 0
	b.gen++
	b.cond.Broadcast()
}
