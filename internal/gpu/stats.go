package gpu

import (
	"github.com/gpm-sim/gpm/internal/sim"
)

// Stats aggregates a kernel's memory traffic. Byte counts are payload
// bytes; transaction counts are post-coalescer (one per unique 128B block
// per SIMT step).
type Stats struct {
	PMWriteBytes int64 // GPU stores landing on PM
	PMWriteTxns  int64
	PMReadBytes  int64 // GPU loads from PM
	PMReadTxns   int64

	HostWriteBytes int64 // GPU stores to host DRAM
	HostReadBytes  int64 // GPU loads from host DRAM
	HostTxns       int64

	HBMBytes int64 // device-memory traffic

	Fences int64 // system-scoped fences executed

	// Serial is simulated time spent serialized on named software
	// resources (e.g. conventional-log partition locks), keyed by name.
	//
	// Ownership: Launch returns a Stats whose Serial map is freshly
	// allocated and owned by the caller, but Go's value-copy semantics
	// still alias it — `b := a` shares a.Serial. Use Clone for an
	// independent copy before mutating or retaining a Stats that others
	// may also hold.
	Serial map[string]sim.Duration

	pmPattern sim.AccessSnapshot
}

// Clone returns a deep copy of s: the Serial map is duplicated so mutating
// the clone (or the original) cannot affect the other. All other fields are
// plain values and copy by assignment.
func (s *Stats) Clone() Stats {
	out := *s
	if s.Serial != nil {
		out.Serial = make(map[string]sim.Duration, len(s.Serial))
		for name, d := range s.Serial {
			out.Serial[name] = d
		}
	}
	return out
}

// kernelStats accumulates one block's traffic. Each block owns its own
// instance and is driven by a single baton holder at a time (see Block), so
// no locking is needed; Launch folds the per-block instances together in
// block-ID order after the wave joins.
type kernelStats struct {
	pmWriteBytes, pmWriteTxns int64
	pmReadBytes, pmReadTxns   int64
	hostWriteBytes            int64
	hostReadBytes             int64
	hostTxns                  int64
	hbmBytes                  int64
	fences                    int64

	serial []sim.Duration // dense, indexed by resource id

	pmWrites sim.AccessStats
}

func newStats() *kernelStats {
	return &kernelStats{}
}

// addSerial accumulates serialized time for a resource id.
func (k *kernelStats) addSerial(id uint32, d sim.Duration) {
	for int(id) >= len(k.serial) {
		k.serial = append(k.serial, 0)
	}
	k.serial[id] += d
}

// merge folds one warp-replay batch into the block totals. Single-threaded:
// only the block's baton holder calls it.
func (k *kernelStats) merge(b *replayBatch) {
	k.pmWriteBytes += b.pmWriteBytes
	k.pmWriteTxns += b.pmWriteTxns
	k.pmReadBytes += b.pmReadBytes
	k.pmReadTxns += b.pmReadTxns
	k.hostWriteBytes += b.hostWriteBytes
	k.hostReadBytes += b.hostReadBytes
	k.hostTxns += b.hostTxns
	k.hbmBytes += b.hbmBytes
	k.fences += b.fences
	for id, d := range b.serial {
		if d != 0 {
			k.addSerial(uint32(id), d)
		}
	}
	k.pmWrites.Merge(&b.pmWrites)
}

// mergeFrom folds another block's totals into k. It runs in Launch's serial
// reduction phase (block-ID order), after all block goroutines have joined,
// so no locking is needed; every term is a commutative sum, but the fixed
// order keeps the AccessStats sequential/random classification — which is
// order-sensitive — deterministic.
func (k *kernelStats) mergeFrom(o *kernelStats) {
	k.pmWriteBytes += o.pmWriteBytes
	k.pmWriteTxns += o.pmWriteTxns
	k.pmReadBytes += o.pmReadBytes
	k.pmReadTxns += o.pmReadTxns
	k.hostWriteBytes += o.hostWriteBytes
	k.hostReadBytes += o.hostReadBytes
	k.hostTxns += o.hostTxns
	k.hbmBytes += o.hbmBytes
	k.fences += o.fences
	for id, d := range o.serial {
		if d != 0 {
			k.addSerial(uint32(id), d)
		}
	}
	k.pmWrites.Merge(&o.pmWrites)
}

// snapshot converts the folded totals to the public Stats form. Runs after
// the wave joins, on Launch's goroutine.
func (k *kernelStats) snapshot(d *Device) Stats {
	st := Stats{
		PMWriteBytes:   k.pmWriteBytes,
		PMWriteTxns:    k.pmWriteTxns,
		PMReadBytes:    k.pmReadBytes,
		PMReadTxns:     k.pmReadTxns,
		HostWriteBytes: k.hostWriteBytes,
		HostReadBytes:  k.hostReadBytes,
		HostTxns:       k.hostTxns,
		HBMBytes:       k.hbmBytes,
		Fences:         k.fences,
		Serial:         make(map[string]sim.Duration, len(k.serial)),
	}
	for id, dur := range k.serial {
		if dur != 0 {
			st.Serial[d.resourceName(uint32(id))] += dur
		}
	}
	st.pmPattern = k.pmWrites.Snapshot()
	return st
}

// PMPattern exposes the kernel's PM write pattern statistics.
func (s *Stats) PMPattern() sim.AccessSnapshot { return s.pmPattern }
