package gpu

import (
	"testing"
	"testing/quick"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Property: simulated time is deterministic — the same kernel on a fresh
// device always reports the same elapsed duration, regardless of goroutine
// scheduling.
func TestQuickElapsedDeterministic(t *testing.T) {
	run := func(seed uint64) sim.Duration {
		sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 2 << 20, DRAMSize: 1 << 20, PMSize: 4 << 20})
		d := New(sp)
		sp.SetDDIOOff(true)
		pm := sp.AllocPM(1<<20, 0)
		res := d.Launch("det", 8, 128, func(th *Thread) {
			rng := sim.NewRNG(seed ^ uint64(th.GlobalID()))
			for i := 0; i < 16; i++ {
				th.StoreU32(pm+uint64(th.GlobalID()*64+(i%16)*4), rng.Uint32())
				if i%4 == 0 {
					th.FenceSystem()
				}
			}
			th.SyncBlock()
			th.Compute(sim.Duration(rng.Intn(100)) * sim.Nanosecond)
		})
		return res.Elapsed
	}
	f := func(seed uint64) bool {
		a := run(seed)
		for i := 0; i < 3; i++ {
			if run(seed) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// Property: transaction counts never exceed one per access and never fall
// below accesses/warpSize — the coalescer merges, it never invents or
// loses traffic.
func TestQuickCoalescerBounds(t *testing.T) {
	f := func(stride uint8) bool {
		st := int(stride)%512 + 1
		sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 1 << 20, DRAMSize: 1 << 20, PMSize: 8 << 20})
		d := New(sp)
		sp.SetDDIOOff(true)
		pm := sp.AllocPM(6<<20, 0)
		res := d.Launch("co", 1, 32, func(th *Thread) {
			th.StoreU32(pm+uint64(th.Lane()*st*4), 1)
		})
		txns := res.Stats.PMWriteTxns
		return txns >= 1 && txns <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every byte a kernel writes with DDIO off and fences is durable,
// and a crash after the kernel is the identity on that range.
func TestQuickFencedWritesDurable(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 256 {
			vals = vals[:256]
		}
		sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 1 << 20, DRAMSize: 1 << 20, PMSize: 4 << 20})
		d := New(sp)
		sp.SetDDIOOff(true)
		pm := sp.AllocPM(int64(len(vals))*4+256, 0)
		n := len(vals)
		tpb := n
		if tpb > 256 {
			tpb = 256
		}
		blocks := (n + tpb - 1) / tpb
		d.Launch("w", blocks, tpb, func(th *Thread) {
			i := th.GlobalID()
			if i >= n {
				return
			}
			th.StoreU32(pm+uint64(i)*4, vals[i])
			th.FenceSystem()
		})
		sp.Crash()
		for i, v := range vals {
			if sp.ReadU32(pm+uint64(i)*4) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
