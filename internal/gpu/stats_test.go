package gpu

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// A plain value copy of Stats aliases the Serial map; Clone must not.
func TestStatsCloneIndependence(t *testing.T) {
	orig := Stats{
		PMWriteBytes: 128,
		Serial:       map[string]sim.Duration{"lock": sim.Microsecond},
	}

	aliased := orig // the footgun Clone exists for
	aliased.Serial["lock"] = 2 * sim.Microsecond
	if orig.Serial["lock"] != 2*sim.Microsecond {
		t.Fatal("expected value copy to alias the Serial map (documented behavior)")
	}

	clone := orig.Clone()
	clone.Serial["lock"] = 9 * sim.Microsecond
	clone.Serial["extra"] = sim.Nanosecond
	if orig.Serial["lock"] != 2*sim.Microsecond {
		t.Errorf("mutating clone changed original: %v", orig.Serial)
	}
	if _, ok := orig.Serial["extra"]; ok {
		t.Error("new key in clone leaked into original")
	}
	if clone.PMWriteBytes != orig.PMWriteBytes {
		t.Error("scalar fields not copied")
	}

	var empty Stats
	if c := empty.Clone(); c.Serial != nil {
		t.Error("clone of nil Serial should stay nil")
	}
}

// Under -race, a shallow Serial copy turns this concurrent clone mutation
// into a reported data race; Clone's deep copy keeps it silent.
func TestStatsCloneConcurrentMutation(t *testing.T) {
	orig := Stats{
		PMWriteBytes: 64,
		Serial: map[string]sim.Duration{
			"lock-a": sim.Microsecond,
			"lock-b": 2 * sim.Microsecond,
		},
	}
	clone := orig.Clone()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			clone.Serial["lock-a"] += sim.Nanosecond
			clone.Serial["new"] = sim.Duration(i)
		}
	}()
	for i := 0; i < 1000; i++ {
		if orig.Serial["lock-a"] != sim.Microsecond {
			t.Error("clone mutation leaked into original Serial map")
			break
		}
	}
	<-done
	if _, ok := orig.Serial["new"]; ok {
		t.Error("new key in clone leaked into original")
	}
}

// Attaching telemetry must not change simulated time: the tracer and
// counters observe results, they never advance clocks.
func TestTelemetryDoesNotPerturbElapsed(t *testing.T) {
	run := func(r *telemetry.Registry) sim.Duration {
		sp := memsys.New(sim.Default(), memsys.Config{HBMSize: 2 << 20, DRAMSize: 1 << 20, PMSize: 4 << 20})
		d := New(sp)
		d.AttachTelemetry(r)
		sp.SetDDIOOff(true)
		pm := sp.AllocPM(1<<20, 0)
		res := d.Launch("det", 4, 128, func(th *Thread) {
			th.StoreU32(pm+uint64(th.GlobalID())*4, uint32(th.GlobalID()))
			if th.GlobalID()%8 == 0 {
				th.FenceSystem()
			}
		})
		return res.Elapsed
	}

	bare := run(nil)
	reg := telemetry.NewRegistry()
	instrumented := run(reg)
	if bare != instrumented {
		t.Errorf("telemetry changed elapsed time: %v != %v", instrumented, bare)
	}
	if got := reg.Counter("gpu.kernels").Value(); got != 1 {
		t.Errorf("gpu.kernels = %d, want 1", got)
	}
	if reg.Counter("gpu.pm_write_bytes").Value() == 0 {
		t.Error("gpu.pm_write_bytes not recorded")
	}
	if reg.Histogram("gpu.kernel_us", telemetry.LatencyBucketsUS).Count() != 1 {
		t.Error("gpu.kernel_us histogram not recorded")
	}
}
