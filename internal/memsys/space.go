// Package memsys composes the hardware models — GPU device memory (HBM),
// host DRAM, the PM device, the LLC/DDIO domain, and the PCIe link — into a
// single virtual address space, mirroring CUDA's Unified Virtual Addressing:
// once a PM range is mapped, the same pointer works from GPU kernels and CPU
// code (§3.1).
package memsys

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/cache"
	"github.com/gpm-sim/gpm/internal/pcie"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Region bases in the unified virtual address space. Address 0 is reserved
// so that 0 can serve as a null pointer.
const (
	HBMBase  uint64 = 0x1000_0000_0000
	DRAMBase uint64 = 0x2000_0000_0000
	PMBase   uint64 = 0x3000_0000_0000
)

// Kind identifies which physical region a virtual address resolves to.
type Kind int

// Address kinds.
const (
	KindInvalid Kind = iota
	KindHBM          // GPU device memory: fast, volatile, local to the GPU
	KindDRAM         // host DRAM: volatile, behind PCIe from the GPU
	KindPM           // persistent memory: durable once persisted, behind PCIe
)

func (k Kind) String() string {
	switch k {
	case KindHBM:
		return "HBM"
	case KindDRAM:
		return "DRAM"
	case KindPM:
		return "PM"
	default:
		return "invalid"
	}
}

const atomicStripes = 256

// Space is the unified virtual address space of one simulated node.
type Space struct {
	Params *sim.Params
	PM     *pmem.Device
	LLC    *cache.Domain
	Link   *pcie.Link
	DMA    *pcie.DMA

	hbm  region
	dram region

	pmNext atomic.Uint64

	// seqNext allocates ambient (host-serial) canonical sequence numbers
	// for PM traffic. GPU kernels and CPU phases instead reserve a window
	// with SeqMark/SeqAdvance and stamp each access with a sequence derived
	// from its program position, so the ordering that the LLC drain and the
	// crash fault models observe is schedule-independent.
	seqNext atomic.Uint64

	ddioOff atomic.Bool
	eADR    atomic.Bool

	locks [atomicStripes]sync.Mutex
}

type region struct {
	data []byte
	next atomic.Uint64
}

// Config sizes the three regions.
type Config struct {
	HBMSize  int64
	DRAMSize int64
	PMSize   int64
}

// DefaultConfig returns region sizes adequate for the scaled-down GPMbench
// suite (the paper's GB-scale inputs are scaled to MBs; see DESIGN.md §5).
// Allocating a fresh node is common in tests, so the regions stay modest.
func DefaultConfig() Config {
	return Config{
		HBMSize:  64 << 20,
		DRAMSize: 64 << 20,
		PMSize:   128 << 20,
	}
}

// New builds a Space with the given parameters and region sizes.
func New(params *sim.Params, cfg Config) *Space {
	dev := pmem.New(params, cfg.PMSize)
	link := pcie.NewLink(params)
	s := &Space{
		Params: params,
		PM:     dev,
		LLC:    cache.NewDomain(params, dev),
		Link:   link,
		DMA:    pcie.NewDMA(link),
	}
	s.hbm.data = make([]byte, cfg.HBMSize)
	s.dram.data = make([]byte, cfg.DRAMSize)
	return s
}

// AttachTelemetry mirrors the PM device, LLC, and PCIe link counters into
// the registry (pmem.*, llc.*, pcie.*). Passing nil detaches all three.
func (s *Space) AttachTelemetry(r *telemetry.Registry) {
	s.PM.AttachTelemetry(r)
	s.LLC.AttachTelemetry(r)
	s.Link.AttachTelemetry(r)
}

// KindOf classifies a virtual address.
func (s *Space) KindOf(addr uint64) Kind {
	switch {
	case addr >= PMBase && addr < PMBase+uint64(s.PM.Size()):
		return KindPM
	case addr >= DRAMBase && addr < DRAMBase+uint64(len(s.dram.data)):
		return KindDRAM
	case addr >= HBMBase && addr < HBMBase+uint64(len(s.hbm.data)):
		return KindHBM
	default:
		return KindInvalid
	}
}

// ---- Allocation ----

func alignUp(x uint64, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	return (x + align - 1) / align * align
}

func (r *region) alloc(n int64, align uint64, base uint64, name string) uint64 {
	for {
		cur := r.next.Load()
		start := alignUp(cur, align)
		end := start + uint64(n)
		if end > uint64(len(r.data)) {
			panic(fmt.Sprintf("memsys: %s out of memory (want %d, used %d of %d)", name, n, cur, len(r.data)))
		}
		if r.next.CompareAndSwap(cur, end) {
			return base + start
		}
	}
}

// AllocHBM reserves n bytes of GPU device memory, 256B-aligned.
func (s *Space) AllocHBM(n int64) uint64 { return s.hbm.alloc(n, 256, HBMBase, "HBM") }

// AllocDRAM reserves n bytes of host DRAM, 256B-aligned.
func (s *Space) AllocDRAM(n int64) uint64 { return s.dram.alloc(n, 256, DRAMBase, "DRAM") }

// AllocPM reserves n bytes of persistent memory with the given alignment
// (0 means 256, Optane's internal block; pass 1 to get deliberately
// unaligned allocations for the pattern experiments).
func (s *Space) AllocPM(n int64, align uint64) uint64 {
	if align == 0 {
		align = 256
	}
	for {
		cur := s.pmNext.Load()
		start := alignUp(cur, align)
		end := start + uint64(n)
		if end > uint64(s.PM.Size()) {
			panic(fmt.Sprintf("memsys: PM out of memory (want %d, used %d of %d)", n, cur, s.PM.Size()))
		}
		if s.pmNext.CompareAndSwap(cur, end) {
			return PMBase + start
		}
	}
}

// PMUsed returns the bytes of PM allocated so far.
func (s *Space) PMUsed() int64 { return int64(s.pmNext.Load()) }

// ---- Mode switches (DDIO / eADR) ----

// SetDDIOOff disables DDIO for inbound I/O writes: GPU stores to PM bypass
// the LLC, so a system-scoped fence drains them into the ADR persistence
// domain (gpm_persist_begin). SetDDIOOff(false) re-enables DDIO
// (gpm_persist_end).
func (s *Space) SetDDIOOff(off bool) { s.ddioOff.Store(off) }

// DDIOOff reports whether DDIO is currently disabled.
func (s *Space) DDIOOff() bool { return s.ddioOff.Load() }

// SetEADR enables eADR: the cache hierarchy joins the persistence domain,
// so reaching the LLC suffices for durability.
func (s *Space) SetEADR(on bool) {
	s.eADR.Store(on)
	s.LLC.SetEADR(on)
}

// EADR reports whether eADR is enabled.
func (s *Space) EADR() bool { return s.eADR.Load() }

// ---- Canonical write sequencing ----

// NextSeq allocates one ambient canonical sequence number. Ambient traffic
// (host code running serially between kernel launches and CPU phases) is
// already deterministically ordered, so a shared counter suffices for it.
func (s *Space) NextSeq() uint64 { return s.seqNext.Add(1) }

// SeqMark returns the current sequence high-water mark. A kernel launch or
// CPU phase captures it as the base of its canonical sequence window.
func (s *Space) SeqMark() uint64 { return s.seqNext.Load() }

// SeqAdvance moves the sequence allocator past a window reserved with
// SeqMark. Called at kernel/phase exit while the host is serial.
func (s *Space) SeqAdvance(to uint64) {
	if to > s.seqNext.Load() {
		s.seqNext.Store(to)
	}
}

// DrainPersistence replays buffered LLC cache/flush events in canonical
// order. Called at quiescent points: kernel launch exit, CPU phase exit.
func (s *Space) DrainPersistence() { s.LLC.Drain() }

// ---- Data movement ----

func (s *Space) resolve(addr uint64, n int) (Kind, uint64) {
	switch {
	case addr >= PMBase:
		off := addr - PMBase
		if off+uint64(n) > uint64(s.PM.Size()) {
			panic(fmt.Sprintf("memsys: PM access out of range addr=%#x n=%d", addr, n))
		}
		return KindPM, off
	case addr >= DRAMBase:
		off := addr - DRAMBase
		if off+uint64(n) > uint64(len(s.dram.data)) {
			panic(fmt.Sprintf("memsys: DRAM access out of range addr=%#x n=%d", addr, n))
		}
		return KindDRAM, off
	case addr >= HBMBase:
		off := addr - HBMBase
		if off+uint64(n) > uint64(len(s.hbm.data)) {
			panic(fmt.Sprintf("memsys: HBM access out of range addr=%#x n=%d", addr, n))
		}
		return KindHBM, off
	default:
		panic(fmt.Sprintf("memsys: invalid address %#x", addr))
	}
}

// Read copies n=len(p) bytes at addr into p. Readers always observe the
// latest write regardless of durability.
func (s *Space) Read(addr uint64, p []byte) {
	kind, off := s.resolve(addr, len(p))
	switch kind {
	case KindPM:
		s.PM.Read(off, p)
	case KindDRAM:
		copy(p, s.dram.data[off:])
	case KindHBM:
		copy(p, s.hbm.data[off:])
	}
}

// WriteGPU performs a store issued by a GPU thread. Writes to PM follow the
// DDIO setting: with DDIO on they are absorbed by the LLC (volatile, subject
// to natural eviction, durable immediately under eADR); with DDIO off they
// are in flight toward the ADR domain and become durable at the issuing
// thread's next system-scoped fence. The returned line addresses (virtual)
// are what that fence must persist; nil for non-PM targets.
// Ambient (host-serial) callers use the seq-less wrappers below. They drain
// the LLC event buffer immediately after each access: ambient code is
// already deterministically ordered, and eager application preserves exact
// store→flush→store semantics on a line (the deferred drain keeps only the
// newest contents, so it cannot persist an intermediate version — that
// deferral is reserved for kernel/phase windows, where it is documented).
func (s *Space) WriteGPU(addr uint64, p []byte) []uint64 {
	lines := s.WriteGPUSeq(addr, p, s.NextSeq())
	s.LLC.Drain()
	return lines
}

// WriteGPUSeq is WriteGPU with a caller-supplied canonical sequence number
// (GPU threads stamp each store with its program position).
func (s *Space) WriteGPUSeq(addr uint64, p []byte, seq uint64) []uint64 {
	return s.WriteGPUSeqInto(nil, addr, p, seq)
}

// WriteGPUSeqInto is WriteGPUSeq appending the to-persist line addresses to
// dst, so the GPU store hot path can reuse one scratch slice per thread.
// The DDIO-on PM path still allocates fresh lines: the LLC event buffer
// takes ownership of the slice it is handed, so scratch must not reach it.
func (s *Space) WriteGPUSeqInto(dst []uint64, addr uint64, p []byte, seq uint64) []uint64 {
	kind, off := s.resolve(addr, len(p))
	switch kind {
	case KindPM:
		if !s.ddioOff.Load() {
			s.LLC.CacheLines(s.PM.WriteSeq(off, p, seq), seq)
			return dst // the fence cannot persist LLC-resident lines
		}
		base := len(dst)
		lines := s.PM.WriteSeqInto(dst, off, p, seq)
		for i := base; i < len(lines); i++ {
			lines[i] += PMBase
		}
		return lines
	case KindDRAM:
		copy(s.dram.data[off:], p)
	case KindHBM:
		copy(s.hbm.data[off:], p)
	}
	return dst
}

// WriteCPU performs a store issued by a CPU thread. PM stores land in the
// CPU caches (volatile until CLFLUSHOPT+SFENCE, or durable at once under
// eADR); the returned virtual line addresses are what a flush must cover.
func (s *Space) WriteCPU(addr uint64, p []byte) []uint64 {
	lines := s.WriteCPUSeq(addr, p, s.NextSeq())
	s.LLC.Drain()
	return lines
}

// WriteCPUSeq is WriteCPU with a caller-supplied canonical sequence number
// (cpusim threads stamp each store with its phase position).
func (s *Space) WriteCPUSeq(addr uint64, p []byte, seq uint64) []uint64 {
	kind, off := s.resolve(addr, len(p))
	switch kind {
	case KindPM:
		lines := s.PM.WriteSeq(off, p, seq)
		// The LLC event takes ownership of its slice; copy because the
		// non-eADR return value below rebases the same lines to virtual.
		cached := make([]uint64, len(lines))
		copy(cached, lines)
		s.LLC.CacheLines(cached, seq)
		if s.eADR.Load() {
			return nil
		}
		for i := range lines {
			lines[i] += PMBase
		}
		return lines
	case KindDRAM:
		copy(s.dram.data[off:], p)
	case KindHBM:
		copy(s.hbm.data[off:], p)
	}
	return nil
}

// SetPowerFailed latches (or clears) the power-failure instant. The latch
// lives on the PM device, where every durability path (fence flush, DDIO
// write-back, eADR instant persist) terminates — so code that keeps running
// after an injected mid-recovery crash cannot retroactively make state
// durable through any route. Buffered cache events drain first: traffic
// issued before the failure instant still reaches the persistence domain.
func (s *Space) SetPowerFailed(v bool) {
	if v {
		s.LLC.Drain()
	}
	s.PM.SetPowerFailed(v)
}

// PowerFailAtSeq latches the power failure at an explicit canonical
// sequence cut: pre-cut traffic drains into the persistence domain, and
// writes sequenced after the cut unconditionally roll back at the next
// crash. The parallel engine uses this to pin a mid-kernel failure to the
// canonical instant of the first aborted operation. The latch is set before
// the drain: the buffered events span the whole kernel window, and the
// replay must persist only those sequenced at or before the cut.
func (s *Space) PowerFailAtSeq(cut uint64) {
	s.PM.SetPowerFailedAt(cut)
	s.LLC.Drain()
}

// PowerFailed reports whether the power-failure latch is set.
func (s *Space) PowerFailed() bool { return s.PM.PowerFailed() }

// PersistLines makes the given virtual PM lines durable (fence with DDIO
// off, or an explicit CPU flush).
func (s *Space) PersistLines(lines []uint64) {
	s.PersistLinesSeq(lines, s.NextSeq())
	s.LLC.Drain()
}

// PersistLinesSeq is PersistLines stamped with the canonical sequence of
// the fence that issued it.
func (s *Space) PersistLinesSeq(lines []uint64, seq uint64) {
	if len(lines) == 0 {
		return
	}
	local := make([]uint64, 0, len(lines))
	for _, la := range lines {
		if la >= PMBase {
			local = append(local, la-PMBase)
		}
	}
	s.LLC.FlushLines(local, seq)
}

// PersistRange makes every line overlapping the virtual PM range durable.
func (s *Space) PersistRange(addr uint64, n int) {
	s.PersistRangeSeq(addr, n, s.NextSeq())
	s.LLC.Drain()
}

// PersistRangeSeq is PersistRange stamped with the canonical sequence of
// the flush that issued it.
func (s *Space) PersistRangeSeq(addr uint64, n int, seq uint64) {
	if n <= 0 {
		return
	}
	kind, off := s.resolve(addr, n)
	if kind != KindPM {
		return
	}
	line := uint64(s.Params.LineSize())
	first := off / line * line
	last := (off + uint64(n) - 1) / line * line
	lines := make([]uint64, 0, (last-first)/line+1)
	for la := first; la <= last; la += line {
		lines = append(lines, la)
	}
	s.LLC.FlushLines(lines, seq)
}

// Persisted reports whether the virtual PM range is fully durable.
func (s *Space) Persisted(addr uint64, n int) bool {
	kind, off := s.resolve(addr, n)
	if kind != KindPM {
		return false
	}
	s.LLC.Drain()
	return s.PM.Persisted(off, n)
}

// SnapshotPersistent returns the durable image of a virtual PM range.
func (s *Space) SnapshotPersistent(addr uint64, n int) []byte {
	kind, off := s.resolve(addr, n)
	if kind != KindPM {
		panic("memsys: SnapshotPersistent on non-PM address")
	}
	s.LLC.Drain()
	return s.PM.SnapshotPersistent(off, n)
}

// Crash simulates a power failure: volatile regions (HBM, DRAM) are wiped,
// caches are discarded, and PM rolls back to its durable image. Under eADR
// the cache contents drain first (§3.3), so everything written survives.
func (s *Space) Crash() {
	s.CrashWith(nil, 0)
}

// CrashWith is Crash under an adversarial fault model (see pmem.FaultModel):
// the model decides which unpersisted PM writes survive. Under eADR the
// caches are in the persistence domain, so the drain happens first and the
// model sees nothing dirty. The power-failure latch is cleared: the failure
// instant has passed and the node is rebooting.
func (s *Space) CrashWith(model pmem.FaultModel, seed uint64) pmem.CrashStats {
	// Apply buffered cache traffic first: it was issued before this crash
	// instant. (Under a power-fail latch the persists inside the drain are
	// no-ops, which is exactly right — that traffic died with the power.)
	s.LLC.Drain()
	if s.eADR.Load() {
		s.LLC.FlushAll()
	}
	s.LLC.Crash()
	st := s.PM.CrashWith(model, seed)
	for i := range s.hbm.data {
		s.hbm.data[i] = 0
	}
	for i := range s.dram.data {
		s.dram.data[i] = 0
	}
	return st
}

// ---- Typed accessors (host-side convenience; GPU threads use gpu.Thread) ----

// ReadU32 loads a little-endian uint32 at addr.
func (s *Space) ReadU32(addr uint64) uint32 {
	var b [4]byte
	s.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// ReadU64 loads a little-endian uint64 at addr.
func (s *Space) ReadU64(addr uint64) uint64 {
	var b [8]byte
	s.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// ReadF32 loads a float32 at addr.
func (s *Space) ReadF32(addr uint64) float32 {
	return math.Float32frombits(s.ReadU32(addr))
}

// ReadF64 loads a float64 at addr.
func (s *Space) ReadF64(addr uint64) float64 {
	return math.Float64frombits(s.ReadU64(addr))
}

// WriteU32 stores v at addr from the CPU and returns the dirty lines.
func (s *Space) WriteU32(addr uint64, v uint32) []uint64 {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return s.WriteCPU(addr, b[:])
}

// WriteU64 stores v at addr from the CPU and returns the dirty lines.
func (s *Space) WriteU64(addr uint64, v uint64) []uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.WriteCPU(addr, b[:])
}

// WriteF32 stores v at addr from the CPU and returns the dirty lines.
func (s *Space) WriteF32(addr uint64, v float32) []uint64 {
	return s.WriteU32(addr, math.Float32bits(v))
}

// WriteF64 stores v at addr from the CPU and returns the dirty lines.
func (s *Space) WriteF64(addr uint64, v float64) []uint64 {
	return s.WriteU64(addr, math.Float64bits(v))
}

// LockFor returns the striped mutex guarding atomic operations on addr.
func (s *Space) LockFor(addr uint64) *sync.Mutex {
	return &s.locks[(addr>>2)%atomicStripes]
}
