package memsys

import (
	"bytes"
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

func newSpace(t *testing.T) *Space {
	t.Helper()
	return New(sim.Default(), Config{HBMSize: 1 << 20, DRAMSize: 1 << 20, PMSize: 1 << 20})
}

func TestAllocAndKinds(t *testing.T) {
	s := newSpace(t)
	h := s.AllocHBM(100)
	d := s.AllocDRAM(100)
	p := s.AllocPM(100, 0)
	if s.KindOf(h) != KindHBM || s.KindOf(d) != KindDRAM || s.KindOf(p) != KindPM {
		t.Errorf("kinds: %v %v %v", s.KindOf(h), s.KindOf(d), s.KindOf(p))
	}
	if s.KindOf(0x999) != KindInvalid {
		t.Error("bogus address should be invalid")
	}
	if p%256 != 0 {
		t.Error("PM allocation not 256B aligned")
	}
	u := s.AllocPM(100, 1)
	_ = u
	if s.PMUsed() <= 0 {
		t.Error("PMUsed not tracking")
	}
}

func TestKindString(t *testing.T) {
	if KindHBM.String() != "HBM" || KindDRAM.String() != "DRAM" || KindPM.String() != "PM" || KindInvalid.String() != "invalid" {
		t.Error("Kind.String broken")
	}
}

func TestReadWriteAllRegions(t *testing.T) {
	s := newSpace(t)
	for _, addr := range []uint64{s.AllocHBM(64), s.AllocDRAM(64), s.AllocPM(64, 0)} {
		want := []byte{1, 2, 3, 4}
		s.WriteCPU(addr, want)
		got := make([]byte, 4)
		s.Read(addr, got)
		if !bytes.Equal(got, want) {
			t.Errorf("region %v: got %v", s.KindOf(addr), got)
		}
	}
}

func TestGPUWritePMWithDDIOOn(t *testing.T) {
	s := newSpace(t)
	addr := s.AllocPM(64, 0)
	lines := s.WriteGPU(addr, []byte{1})
	if lines != nil {
		t.Error("DDIO-on GPU write should return no fence-persistable lines")
	}
	if !s.LLC.Resident(addr - PMBase) {
		t.Error("DDIO-on write not in LLC")
	}
	s.Crash()
	got := make([]byte, 1)
	s.Read(addr, got)
	if got[0] != 0 {
		t.Error("LLC-cached write survived crash")
	}
}

func TestGPUWritePMWithDDIOOff(t *testing.T) {
	s := newSpace(t)
	addr := s.AllocPM(64, 0)
	s.SetDDIOOff(true)
	if !s.DDIOOff() {
		t.Error("DDIO flag")
	}
	lines := s.WriteGPU(addr, []byte{7})
	if len(lines) != 1 {
		t.Fatalf("expected 1 dirty line, got %v", lines)
	}
	if s.Persisted(addr, 1) {
		t.Error("in-flight write already durable")
	}
	s.PersistLines(lines)
	if !s.Persisted(addr, 1) {
		t.Error("fence-persisted line not durable")
	}
	s.Crash()
	got := make([]byte, 1)
	s.Read(addr, got)
	if got[0] != 7 {
		t.Error("persisted write lost")
	}
}

func TestEADRGPUWriteDurable(t *testing.T) {
	s := newSpace(t)
	s.SetEADR(true)
	if !s.EADR() {
		t.Error("eADR flag")
	}
	addr := s.AllocPM(64, 0)
	s.WriteGPU(addr, []byte{3}) // DDIO on + eADR: durable at LLC
	if !s.Persisted(addr, 1) {
		t.Error("eADR write not durable")
	}
}

func TestCrashWipesVolatileRegions(t *testing.T) {
	s := newSpace(t)
	h := s.AllocHBM(64)
	d := s.AllocDRAM(64)
	s.WriteCPU(h, []byte{1})
	s.WriteCPU(d, []byte{2})
	s.Crash()
	got := make([]byte, 1)
	s.Read(h, got)
	if got[0] != 0 {
		t.Error("HBM survived crash")
	}
	s.Read(d, got)
	if got[0] != 0 {
		t.Error("DRAM survived crash")
	}
}

func TestCPUWritePMVolatileUntilPersist(t *testing.T) {
	s := newSpace(t)
	addr := s.AllocPM(64, 0)
	lines := s.WriteCPU(addr, []byte{5})
	if len(lines) == 0 {
		t.Fatal("CPU PM write returned no lines")
	}
	s.Crash()
	got := make([]byte, 1)
	s.Read(addr, got)
	if got[0] != 0 {
		t.Error("unflushed CPU write survived")
	}
}

func TestTypedAccessors(t *testing.T) {
	s := newSpace(t)
	addr := s.AllocPM(64, 0)
	s.WriteU32(addr, 0xdeadbeef)
	if s.ReadU32(addr) != 0xdeadbeef {
		t.Error("u32")
	}
	s.WriteU64(addr+8, 0x0123456789abcdef)
	if s.ReadU64(addr+8) != 0x0123456789abcdef {
		t.Error("u64")
	}
	s.WriteF32(addr+16, 3.5)
	if s.ReadF32(addr+16) != 3.5 {
		t.Error("f32")
	}
	s.WriteF64(addr+24, -2.25)
	if s.ReadF64(addr+24) != -2.25 {
		t.Error("f64")
	}
}

func TestSnapshotPersistentVirtual(t *testing.T) {
	s := newSpace(t)
	addr := s.AllocPM(64, 0)
	s.WriteU32(addr, 11)
	s.PersistRange(addr, 4)
	s.WriteU32(addr, 22)
	snap := s.SnapshotPersistent(addr, 4)
	if snap[0] != 11 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestPersistRangeNonPMIsNoop(t *testing.T) {
	s := newSpace(t)
	h := s.AllocHBM(64)
	s.PersistRange(h, 64) // must not panic
	if s.Persisted(h, 1) {
		t.Error("HBM cannot be persisted")
	}
}

func TestLockForStable(t *testing.T) {
	s := newSpace(t)
	a := s.AllocPM(64, 0)
	if s.LockFor(a) != s.LockFor(a) {
		t.Error("LockFor not stable for same address")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := newSpace(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Read(PMBase+uint64(s.PM.Size()), make([]byte, 1))
}
