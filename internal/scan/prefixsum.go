// Package scan implements the GPMbench prefix-sum workload (PS, §4.3 and
// Fig 8): a block-partitioned parallel scan whose per-thread partial sums
// are natively persisted to PM. The last thread of each block persists its
// partial sum only after the whole block has persisted, so the last slot
// acts as a per-block completion sentinel: after a crash the kernel resumes
// by skipping completed blocks instead of restarting.
package scan

import (
	"encoding/binary"
	"fmt"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Empty is the sentinel marking a slot not yet computed. Inputs are kept
// small so no real prefix sum collides with it.
const Empty = 0xffffffff

const tpb = 256

// PrefixSum is the PS workload.
type PrefixSum struct {
	n      int
	blocks int

	input              uint64 // read-only input (HBM; DRAM for CPU-only)
	inputBytes         []byte // durable source of the input, for reload on recovery
	scratchA, scratchB uint64 // HBM: scan ping-pong buffers

	psumFile *fsim.File // PM: per-thread partial (block-local inclusive) sums
	outFile  *fsim.File // PM: final prefix sums
	psumHBM  uint64     // CAP-mode home of partial sums
	outHBM   uint64     // CAP-mode home of final sums

	offsets   uint64 // HBM: per-block offsets (recomputable)
	blockSums uint64 // HBM: per-block totals for the offsets pass

	expect []uint32
}

// New returns the PS workload.
func New() *PrefixSum { return &PrefixSum{} }

// Name implements workloads.Workload.
func (p *PrefixSum) Name() string { return "PS" }

// Class implements workloads.Workload.
func (p *PrefixSum) Class() string { return "native" }

// Supports implements workloads.Workload. Fine-grained per-thread file
// writes deadlock GPUfs (§6.1), so PS cannot run there.
func (p *PrefixSum) Supports(mode workloads.Mode) bool {
	return mode != workloads.GPUfs
}

// Setup implements workloads.Workload.
func (p *PrefixSum) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	p.n = cfg.PSElems / tpb * tpb
	if p.n == 0 {
		return fmt.Errorf("scan: PSElems %d too small", cfg.PSElems)
	}
	p.blocks = p.n / tpb
	sp := env.Ctx.Space

	if env.Mode == workloads.CPUOnly {
		p.input = sp.AllocDRAM(int64(p.n) * 4)
	} else {
		p.input = sp.AllocHBM(int64(p.n) * 4)
	}
	p.scratchA = sp.AllocHBM(int64(p.n) * 4)
	p.scratchB = sp.AllocHBM(int64(p.n) * 4)
	p.offsets = sp.AllocHBM(int64(p.blocks) * 4)
	p.blockSums = sp.AllocHBM(int64(p.blocks) * 4)

	vals := make([]byte, p.n*4)
	p.expect = make([]uint32, p.n)
	var running uint32
	for i := 0; i < p.n; i++ {
		v := uint32(env.RNG.Intn(100) + 1)
		binary.LittleEndian.PutUint32(vals[i*4:], v)
		running += v
		p.expect[i] = running // inclusive prefix sum
	}
	p.inputBytes = vals
	// The input is read onto device memory once (§4.3).
	sp.WriteCPU(p.input, vals)
	env.Ctx.Timeline.Add("setup", env.Ctx.Space.DMA.TransferDown(int64(len(vals))))

	var err error
	if p.psumFile, err = env.Ctx.FS.OpenOrCreate("/pm/ps.psums", int64(p.n)*4, 0); err != nil {
		return err
	}
	if p.outFile, err = env.Ctx.FS.OpenOrCreate("/pm/ps.out", int64(p.n)*4, 0); err != nil {
		return err
	}
	if env.Mode.UsesCAP() || env.Mode == workloads.CPUOnly {
		p.psumHBM = sp.AllocHBM(int64(p.n) * 4)
		p.outHBM = sp.AllocHBM(int64(p.n) * 4)
	}
	// Initialize the persistent partial sums to the sentinel.
	empty := make([]byte, p.n*4)
	for i := 0; i < p.n; i++ {
		binary.LittleEndian.PutUint32(empty[i*4:], Empty)
	}
	sp.WriteCPU(p.psumFile.Mmap(), empty)
	sp.PersistRange(p.psumFile.Mmap(), len(empty))
	env.Ctx.Timeline.Add("setup", sim.DurationOfBytes(int64(len(empty)), env.Ctx.Params.CPUPMBandwidth(cfg.CAPThreads)))
	return nil
}

// psumAddr returns the mode-appropriate home of the partial-sum array.
func (p *PrefixSum) psumAddr(env *workloads.Env) uint64 {
	if env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP {
		return p.psumFile.Mmap()
	}
	return p.psumHBM
}

func (p *PrefixSum) outAddr(env *workloads.Env) uint64 {
	if env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP {
		return p.outFile.Mmap()
	}
	return p.outHBM
}

// blockScanKernel is Fig 8: a Hillis–Steele scan per block; all threads but
// the last persist their partial sum, a block barrier, then the last thread
// persists — the completion sentinel.
func (p *PrefixSum) blockScanKernel(env *workloads.Env, psums uint64, persist bool) {
	input, a, b := p.input, p.scratchA, p.scratchB
	env.Ctx.Launch("ps-scan", p.blocks, tpb, func(t *gpu.Thread) {
		gid := t.GlobalID()
		blockLast := uint64((t.Block().ID()+1)*tpb-1) * 4
		// Resume check: if the block's sentinel slot is set, the whole
		// block already persisted its sums (Fig 8 line 3). The last
		// thread republishes the block total for the offsets pass.
		if persist && t.LoadU32(psums+blockLast) != Empty {
			if t.ID() == tpb-1 {
				t.StoreU32(p.blockSums+uint64(t.Block().ID())*4, t.LoadU32(psums+blockLast))
			}
			return
		}
		v := t.LoadU32(input + uint64(gid)*4)
		t.StoreU32(a+uint64(gid)*4, v)
		t.SyncBlock()
		src, dst := a, b
		for stride := 1; stride < tpb; stride *= 2 {
			x := t.LoadU32(src + uint64(gid)*4)
			if t.ID() >= stride {
				x += t.LoadU32(src + uint64(gid-stride)*4)
			}
			t.StoreU32(dst+uint64(gid)*4, x)
			t.SyncBlock()
			src, dst = dst, src
		}
		sum := t.LoadU32(src + uint64(gid)*4)
		t.Compute(4 * sim.Nanosecond)
		if t.ID() != tpb-1 {
			t.StoreU32(psums+uint64(gid)*4, sum)
			if persist {
				gpm.Persist(t)
			}
		}
		t.SyncBlock()
		if t.ID() == tpb-1 {
			t.StoreU32(psums+uint64(gid)*4, sum)
			if persist {
				gpm.Persist(t)
			}
			// Publish the block total in device memory so the offsets
			// pass reads fast HBM instead of PM (§4.3: avoid unnecessary
			// PM accesses).
			t.StoreU32(p.blockSums+uint64(t.Block().ID())*4, sum)
		}
	})
}

// offsetsKernel turns per-block totals into exclusive per-block offsets
// (single block; blocks ≤ 1024 after scaling).
func (p *PrefixSum) offsetsKernel(env *workloads.Env, psums uint64) {
	blocks, offsets, sums := p.blocks, p.offsets, p.blockSums
	env.Ctx.Launch("ps-offsets", 1, 1, func(t *gpu.Thread) {
		var running uint32
		for b := 0; b < blocks; b++ {
			t.StoreU32(offsets+uint64(b)*4, running)
			running += t.LoadU32(sums + uint64(b)*4)
			t.Compute(2 * sim.Nanosecond)
		}
	})
	_ = psums
}

// finalKernel adds block offsets to the block-local sums and writes the
// final prefix sums.
func (p *PrefixSum) finalKernel(env *workloads.Env, psums, out uint64, persist bool) {
	offsets := p.offsets
	env.Ctx.Launch("ps-final", p.blocks, tpb, func(t *gpu.Thread) {
		gid := t.GlobalID()
		v := t.LoadU32(psums+uint64(gid)*4) + t.LoadU32(offsets+uint64(t.Block().ID())*4)
		t.StoreU32(out+uint64(gid)*4, v)
		if persist {
			gpm.Persist(t)
		}
	})
}

// Run implements workloads.Workload.
func (p *PrefixSum) Run(env *workloads.Env) error {
	if env.Mode == workloads.CPUOnly {
		return p.runCPU(env)
	}
	persist := env.Mode.UsesGPM()
	psums, out := p.psumAddr(env), p.outAddr(env)

	env.PersistKernelBegin()
	p.blockScanKernel(env, psums, persist)
	p.offsetsKernel(env, psums)
	p.finalKernel(env, psums, out, persist)
	env.PersistKernelEnd()

	if env.Mode.UsesCAP() {
		// The whole result must be shipped to the CPU and persisted
		// (write-amplification 1.0 — the full output is the result).
		if err := workloads.PersistBuffer(env, p.psumFile, 0, psums, int64(p.n)*4); err != nil {
			return err
		}
		if err := workloads.PersistBuffer(env, p.outFile, 0, out, int64(p.n)*4); err != nil {
			return err
		}
	}
	env.CountOps(int64(p.n))
	return nil
}

// runCPU is the Fig 1b baseline: a multi-threaded CPU prefix sum persisting
// partial and final sums to PM.
func (p *PrefixSum) runCPU(env *workloads.Env) error {
	n := p.n
	threads := env.Cfg.CAPThreads
	psums, out := p.psumFile.Mmap(), p.outFile.Mmap()
	input := p.input // CPU reads the same input array
	// Pass 1: chunk-local scans persisted to PM.
	env.Ctx.RunCPU("cpu-scan", threads, func(t *cpusim.Thread) {
		chunk := (n + t.N - 1) / t.N
		lo := t.ID * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var running uint32
		buf := make([]byte, 4)
		for i := lo; i < hi; i++ {
			t.Read(input+uint64(i)*4, buf)
			running += binary.LittleEndian.Uint32(buf)
			t.WriteU32(psums+uint64(i)*4, running)
			t.Compute(2 * sim.Nanosecond)
		}
		t.PersistRange(psums+uint64(lo)*4, int64(hi-lo)*4)
	})
	// Pass 2: sequential chunk offsets, then parallel fix-up + persist.
	chunk := (n + threads - 1) / threads
	offsets := make([]uint32, threads)
	env.Ctx.RunCPU("cpu-offsets", 1, func(t *cpusim.Thread) {
		var running uint32
		for c := 0; c < threads; c++ {
			offsets[c] = running
			last := (c+1)*chunk - 1
			if last >= n {
				last = n - 1
			}
			if last >= c*chunk {
				running += t.ReadU32(psums + uint64(last)*4)
			}
		}
	})
	env.Ctx.RunCPU("cpu-final", threads, func(t *cpusim.Thread) {
		lo := t.ID * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			t.WriteU32(out+uint64(i)*4, t.ReadU32(psums+uint64(i)*4)+offsets[t.ID])
			t.Compute(2 * sim.Nanosecond)
		}
		t.PersistRange(out+uint64(lo)*4, int64(hi-lo)*4)
	})
	env.CountOps(int64(n))
	return nil
}

// Verify implements workloads.Workload: the final prefix sums must be
// DURABLE (crash-surviving) and correct.
func (p *PrefixSum) Verify(env *workloads.Env) error {
	snap := env.Ctx.Space.SnapshotPersistent(p.outFile.Mmap(), p.n*4)
	for i := 0; i < p.n; i++ {
		if got := binary.LittleEndian.Uint32(snap[i*4:]); got != p.expect[i] {
			return fmt.Errorf("scan: durable out[%d] = %d, want %d", i, got, p.expect[i])
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher: crash mid block-scan.
func (p *PrefixSum) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("scan: crash study requires a GPM mode")
	}
	env.PersistKernelBegin()
	env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	p.blockScanKernel(env, p.psumFile.Mmap(), true)
	env.Ctx.Dev.SetAbortCheck(nil)
	env.PersistKernelEnd()
	return nil
}

// Recover implements workloads.Crasher: native persistence means recovery
// is simply re-running the kernels — completed blocks are skipped via the
// sentinel (§5.4). The read-only input is reloaded first (it is lost with
// device memory but comes from a durable source).
func (p *PrefixSum) Recover(env *workloads.Env) error {
	env.Ctx.Space.WriteCPU(p.input, p.inputBytes)
	env.Ctx.Timeline.Add("reload", env.Ctx.Space.DMA.TransferDown(int64(len(p.inputBytes))))
	start := env.Ctx.Timeline.Total()
	err := p.Run(env)
	env.AddRestore(env.Ctx.Timeline.Total() - start)
	return err
}

// CompletedBlocks counts blocks whose durable sentinel is set (test hook
// for the resume-not-restart property).
func (p *PrefixSum) CompletedBlocks(env *workloads.Env) int {
	done := 0
	for b := 0; b < p.blocks; b++ {
		addr := p.psumFile.Mmap() + uint64((b+1)*tpb-1)*4
		snap := env.Ctx.Space.SnapshotPersistent(addr, 4)
		if binary.LittleEndian.Uint32(snap) != Empty {
			done++
		}
	}
	return done
}

// Blocks returns the grid size (test hook).
func (p *PrefixSum) Blocks() int { return p.blocks }
