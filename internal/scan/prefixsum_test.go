package scan

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func runMode(t *testing.T, mode workloads.Mode) *workloads.Report {
	t.Helper()
	r, err := workloads.RunOne(New(), mode, workloads.QuickConfig())
	if err != nil {
		t.Fatalf("%v: %v", mode, err)
	}
	return r
}

func TestPSAllModesCorrect(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR, workloads.CPUOnly,
	} {
		t.Run(m.String(), func(t *testing.T) { runMode(t, m) })
	}
}

func TestPSGPUfsUnsupported(t *testing.T) {
	if _, err := workloads.RunOne(New(), workloads.GPUfs, workloads.QuickConfig()); err == nil {
		t.Fatal("PS should not run on GPUfs")
	}
}

func TestPSGPMFasterThanCAP(t *testing.T) {
	gpm := runMode(t, workloads.GPM)
	capfs := runMode(t, workloads.CAPfs)
	capmm := runMode(t, workloads.CAPmm)
	if gpm.OpTime >= capmm.OpTime {
		t.Errorf("GPM (%v) not faster than CAP-mm (%v)", gpm.OpTime, capmm.OpTime)
	}
	if capmm.OpTime >= capfs.OpTime {
		t.Errorf("CAP-mm (%v) not faster than CAP-fs (%v)", capmm.OpTime, capfs.OpTime)
	}
}

func TestPSGPMFasterThanCPU(t *testing.T) {
	gpm := runMode(t, workloads.GPM)
	cpu := runMode(t, workloads.CPUOnly)
	if gpm.OpTime >= cpu.OpTime {
		t.Errorf("GPM (%v) not faster than CPU (%v)", gpm.OpTime, cpu.OpTime)
	}
}

func TestPSWriteAmplificationIsUnity(t *testing.T) {
	// Table 4: native workloads have WA 1.0 — CAP persists the same
	// bytes as GPM (the full output), within tolerance for log/meta.
	gpm := runMode(t, workloads.GPM)
	capmm := runMode(t, workloads.CAPmm)
	wa := float64(capmm.PMBytes) / float64(gpm.PMBytes)
	if wa < 0.8 || wa > 1.3 {
		t.Errorf("PS write amplification = %.2f, want ~1.0", wa)
	}
}

func TestPSCrashRecoveryResumes(t *testing.T) {
	cfg := workloads.QuickConfig()
	r, err := workloads.RunWithCrash(New(), workloads.GPM, cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restore time recorded")
	}
}

func TestPSCrashLeavesPartialDurableState(t *testing.T) {
	cfg := workloads.QuickConfig()
	env := workloads.NewEnv(workloads.GPM, cfg)
	p := New()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	env.BeginOps()
	if err := p.RunUntilCrash(env, 60000); err != nil {
		t.Fatal(err)
	}
	env.Ctx.Crash()
	done := p.CompletedBlocks(env)
	if done == 0 {
		t.Skip("crash landed before any block completed; nothing to assert")
	}
	if done >= p.Blocks() {
		t.Fatalf("all %d blocks completed; crash landed too late for the resume test", done)
	}
	// Resume must finish and verify.
	if err := p.Recover(env); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(env); err != nil {
		t.Fatal(err)
	}
}

func TestPSResumeSkipsCompletedBlocks(t *testing.T) {
	cfg := workloads.QuickConfig()
	env := workloads.NewEnv(workloads.GPM, cfg)
	p := New()
	if err := p.Setup(env); err != nil {
		t.Fatal(err)
	}
	env.BeginOps()
	if err := p.RunUntilCrash(env, 60000); err != nil {
		t.Fatal(err)
	}
	env.Ctx.Crash()
	done := p.CompletedBlocks(env)
	if done == 0 || done >= p.Blocks() {
		t.Skipf("crash point unusable for skip test (done=%d)", done)
	}
	before := env.Ctx.Space.PM.BytesWritten()
	if err := p.Recover(env); err != nil {
		t.Fatal(err)
	}
	resumed := env.Ctx.Space.PM.BytesWritten() - before
	fullPsums := int64(p.Blocks()) * tpb * 4
	// Recovery rewrites only the incomplete blocks' partial sums (plus
	// the full final output).
	maxExpected := fullPsums - int64(done)*tpb*4 + fullPsums + 4096
	if resumed > maxExpected {
		t.Errorf("resume rewrote %d bytes, want ≤ %d (done=%d/%d blocks)",
			resumed, maxExpected, done, p.Blocks())
	}
}
