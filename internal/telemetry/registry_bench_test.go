package telemetry

import (
	"sync/atomic"
	"testing"
)

// Hot-path contention audit (the 28k ops/s serving pipeline increments
// counters and observes histograms from the batcher and applier goroutines
// of every shard concurrently). Counters, gauges, and histogram buckets
// are already lock-free atomics — the registry mutex guards only
// name->metric interning, which instrumentation sites do once at
// construction — so these benchmarks exist to keep that property honest:
// a regression that adds a lock to Inc/Observe shows up as a
// parallel-vs-serial cliff here long before it shows up in a pprof capture
// of a loaded server.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(LatencyBucketsUS)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			h.Observe(v % 1_000_000)
			v += 977
		}
	})
}

// The interning path DOES take the registry mutex; hot code must hoist the
// lookup out of its loop. This benchmark documents the cost of getting
// that wrong (lookup per increment) relative to the atomics above.
func BenchmarkCounterLookupPerInc(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Counter("bench.hot").Inc()
		}
	})
}

// Snapshot cost bounds the windowed-stats tick: the obs plane snapshots
// the whole registry a few times per second while serving.
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		p := string(rune('a' + i))
		r.Counter("serve.shard" + p + ".ops").Add(int64(i))
		r.Gauge("serve.shard" + p + ".queue_depth").Set(int64(i))
		r.Histogram("serve.hist"+p, LatencyBucketsUS).Observe(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		snap := r.Snapshot()
		sink.Store(snap.Counters["serve.sharda.ops"])
	}
}
