package telemetry

import (
	"sync"

	"github.com/gpm-sim/gpm/internal/sim"
)

// Track identifiers group spans into Chrome-trace threads (tid) by
// subsystem, so a Perfetto view shows one lane per component.
const (
	TrackKernel     = 1 // GPU kernel launches
	TrackCPU        = 2 // host CPU phases
	TrackPersist    = 3 // gpm_persist_begin/end epochs
	TrackLog        = 4 // HCL / conventional log lifecycle
	TrackCheckpoint = 5 // gpmcp checkpoint phases (snapshot/swap)
	TrackPCIe       = 6 // DMA transfers over the link
	TrackMap        = 7 // gpm_map / gpm_unmap
	TrackRecovery   = 8 // crash, restore, replay
)

// TrackName returns the human-readable lane name for a track id.
func TrackName(tid int) string {
	switch tid {
	case TrackKernel:
		return "kernel"
	case TrackCPU:
		return "cpu"
	case TrackPersist:
		return "persist"
	case TrackLog:
		return "log"
	case TrackCheckpoint:
		return "checkpoint"
	case TrackPCIe:
		return "pcie"
	case TrackMap:
		return "map"
	case TrackRecovery:
		return "recovery"
	default:
		return "other"
	}
}

// Span is one closed interval of *simulated* time. Start and Dur are
// simulated nanoseconds relative to the owning context's time zero —
// wall-clock time never appears, which is what keeps tracing deterministic.
type Span struct {
	Name  string       // e.g. the kernel segment, "persist-epoch", "checkpoint"
	Cat   string       // category: kernel, cpu, persist, log, checkpoint, pcie, map, recovery, crash
	PID   int          // process id: one per traced Context (see NewProcess)
	TID   int          // track id: one of the Track* constants
	Start sim.Duration // simulated-ns offset of the span's start
	Dur   sim.Duration // simulated length (0 for instant events such as crash)
}

// End returns the span's end offset.
func (s Span) End() sim.Duration { return s.Start + s.Dur }

// Tracer collects spans from any number of contexts. It is safe for
// concurrent use; recording order does not matter because exporters sort.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	procs []string // index = pid-1
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// NewProcess registers a trace process (one simulated node / workload run)
// and returns its pid, starting at 1. A nil tracer returns 0.
func (t *Tracer) NewProcess(label string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs = append(t.procs, label)
	return len(t.procs)
}

// ProcessLabel returns the label passed to NewProcess for pid, or "".
func (t *Tracer) ProcessLabel(pid int) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pid >= 1 && pid <= len(t.procs) {
		return t.procs[pid-1]
	}
	return ""
}

// Record appends one span. No-op on a nil receiver. Negative durations are
// clamped to zero so a malformed caller cannot produce a backwards span.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	if s.Dur < 0 {
		s.Dur = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all recorded spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// SimTotal returns the sum over processes of each process's latest span
// end — the total simulated time the trace covers.
func (t *Tracer) SimTotal() sim.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	wall := make(map[int]sim.Duration)
	for _, s := range t.spans {
		if e := s.End(); e > wall[s.PID] {
			wall[s.PID] = e
		}
	}
	var total sim.Duration
	for _, w := range wall {
		total += w
	}
	return total
}
