package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/gpm-sim/gpm/internal/sim"
)

// EscapeField neutralizes a name for embedding in a TSV field: backslash,
// tab, newline, and carriage return become two-character escapes and any
// other control character becomes \xNN, so a hostile metric or span name
// (one containing the TSV delimiters themselves) cannot add columns or rows
// to the export. Clean names — the overwhelmingly common case — are
// returned unchanged without allocating.
func EscapeField(s string) string {
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '\\' || c == 0x7f {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if c < 0x20 || c == 0x7f {
				fmt.Fprintf(&b, `\x%02x`, c)
			} else {
				b.WriteByte(c)
			}
		}
	}
	return b.String()
}

// chromeEvent is one Chrome trace-event "complete" ("X") event. ts and dur
// are microseconds (the trace-event convention); fractional values carry
// sub-µs simulated precision.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat,omitempty"`
}

// sortedSpans returns the spans ordered by (PID, Start, TID, Name, Dur) so
// exports are byte-stable regardless of recording interleaving.
func (t *Tracer) sortedSpans() []Span {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Dur < b.Dur
	})
	return spans
}

// ChromeTrace renders every span as a JSON array of Chrome trace-event
// complete events, loadable in chrome://tracing or Perfetto. One line per
// event keeps diffs and golden files readable.
func (t *Tracer) ChromeTrace() []byte {
	spans := t.sortedSpans()
	var b strings.Builder
	b.WriteString("[\n")
	for i, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Microseconds(),
			Dur:  s.Dur.Microseconds(),
			Pid:  s.PID,
			Tid:  s.TID,
			Cat:  s.Cat,
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			continue // unreachable: chromeEvent has no unmarshalable fields
		}
		b.Write(enc)
		if i != len(spans)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	return []byte(b.String())
}

// BreakdownRow aggregates span time for one (process, category) pair — the
// Figure-12-style attribution view: where does each run's simulated time
// go? Pct is Total relative to the process's trace extent; categories can
// nest (a checkpoint span encloses its snapshot kernel), so percentages
// are attributions, not a partition.
type BreakdownRow struct {
	Process string
	Cat     string
	Count   int
	Total   sim.Duration
	Pct     float64
}

// Breakdown aggregates spans into per-(process, category) totals, sorted
// by process then descending total.
func (t *Tracer) Breakdown() []BreakdownRow {
	if t == nil {
		return nil
	}
	spans := t.sortedSpans()
	type key struct {
		pid int
		cat string
	}
	agg := make(map[key]*BreakdownRow)
	wall := make(map[int]sim.Duration)
	var order []key
	for _, s := range spans {
		k := key{s.PID, s.Cat}
		r, ok := agg[k]
		if !ok {
			r = &BreakdownRow{Process: t.ProcessLabel(s.PID), Cat: s.Cat}
			agg[k] = r
			order = append(order, k)
		}
		r.Count++
		r.Total += s.Dur
		if e := s.End(); e > wall[s.PID] {
			wall[s.PID] = e
		}
	}
	rows := make([]BreakdownRow, 0, len(order))
	for _, k := range order {
		r := *agg[k]
		if w := wall[k.pid]; w > 0 {
			r.Pct = float64(r.Total) / float64(w) * 100
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Process != rows[j].Process {
			return rows[i].Process < rows[j].Process
		}
		return rows[i].Total > rows[j].Total
	})
	return rows
}

// BreakdownTSV renders Breakdown as a reports/-style TSV.
func (t *Tracer) BreakdownTSV() string {
	var b strings.Builder
	b.WriteString("process\tcategory\tspans\ttotal_us\tpct\n")
	for _, r := range t.Breakdown() {
		fmt.Fprintf(&b, "%s\t%s\t%d\t%.3f\t%.1f\n",
			EscapeField(r.Process), EscapeField(r.Cat), r.Count, r.Total.Microseconds(), r.Pct)
	}
	return b.String()
}

// Telemetry bundles the two halves of the observability layer so a single
// handle can be threaded through configuration.
type Telemetry struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns a Telemetry with an empty registry and tracer.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Registry returns t.Metrics, tolerating a nil t (the no-op default).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Metrics
}

// Tracer returns t.Trace, tolerating a nil t (the no-op default).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.Trace
}
