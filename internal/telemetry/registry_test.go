package telemetry

import (
	"strings"
	"sync"
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

// Bucket edges follow "le" semantics: a value equal to a bound lands in
// that bound's bucket, one past it lands in the next.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	for _, v := range []int64{0, 9, 10, 11, 20, 21, 1 << 40} {
		h.Observe(v)
	}
	bks := h.Buckets()
	if len(bks) != 3 {
		t.Fatalf("want 3 buckets, got %d", len(bks))
	}
	want := []struct {
		le    int64
		count int64
	}{{10, 3}, {20, 2}, {InfBucket, 2}}
	for i, w := range want {
		if bks[i].Le != w.le || bks[i].Count != w.count {
			t.Errorf("bucket %d: got {le=%d n=%d}, want {le=%d n=%d}",
				i, bks[i].Le, bks[i].Count, w.le, w.count)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+9+10+11+20+21+(1<<40) {
		t.Errorf("Sum = %d", h.Sum())
	}
}

// Snapshot copies every metric and is safe on a nil registry; mutating
// the source afterwards must not leak into the snapshot.
func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(-3)
	h := r.Histogram("h", []int64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)

	snap := r.Snapshot()
	if snap.Counters["c"] != 7 || snap.Gauges["g"] != -3 {
		t.Errorf("snapshot values: %+v", snap)
	}
	hs, ok := snap.Histograms["h"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if len(hs.Bounds) != 2 || hs.Bounds[0] != 10 || hs.Bounds[1] != 20 {
		t.Errorf("bounds = %v", hs.Bounds)
	}
	if len(hs.Counts) != 3 || hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("counts = %v", hs.Counts)
	}
	if hs.Sum != 5+15+99 || hs.Count() != 3 {
		t.Errorf("sum=%d count=%d", hs.Sum, hs.Count())
	}

	// Later mutations do not alias into the snapshot.
	r.Counter("c").Add(100)
	h.Observe(1)
	if snap.Counters["c"] != 7 || snap.Histograms["h"].Counts[0] != 1 {
		t.Error("snapshot aliases live registry state")
	}

	// Nil registry: empty but usable maps.
	var nilReg *Registry
	ns := nilReg.Snapshot()
	if ns.Counters == nil || ns.Gauges == nil || ns.Histograms == nil {
		t.Error("nil-registry snapshot must have non-nil maps")
	}
}

func TestHistogramObserveMicros(t *testing.T) {
	h := NewHistogram([]int64{1, 100})
	h.ObserveMicros(500 * sim.Nanosecond) // 0 µs -> le=1
	h.ObserveMicros(99 * sim.Microsecond) // le=100
	h.ObserveMicros(2 * sim.Millisecond)  // overflow
	bks := h.Buckets()
	if bks[0].Count != 1 || bks[1].Count != 1 || bks[2].Count != 1 {
		t.Errorf("bucket counts = %+v", bks)
	}
}

// Concurrent increments from many goroutines must not lose counts (run
// under -race to catch data races).
func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", LatencyBucketsUS)
			g := r.Gauge("g")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 50))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
}

// Every metric operation on the nil default must be a safe no-op — this is
// the contract that lets instrumentation sites skip enabled-checks.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge must read 0")
	}
	h := r.Histogram("z", []int64{1})
	h.Observe(1)
	h.ObserveMicros(sim.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 || h.Buckets() != nil {
		t.Error("nil histogram must be empty")
	}
	if !strings.HasPrefix(r.TSV(), "metric\ttype\tvalue\n") {
		t.Error("nil registry TSV must still emit the header")
	}

	var tr *Tracer
	tr.Record(Span{Name: "s"})
	if tr.Len() != 0 || tr.Spans() != nil || tr.NewProcess("p") != 0 {
		t.Error("nil tracer must be inert")
	}
	var tel *Telemetry
	if tel.Registry() != nil || tel.Tracer() != nil {
		t.Error("nil telemetry accessors must return nil")
	}
}

// Lookups intern: the same name always resolves to the same metric.
func TestRegistryInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter not interned")
	}
	if r.Histogram("h", []int64{1, 2}) != r.Histogram("h", []int64{9}) {
		t.Error("histogram not interned")
	}
	r.Counter("a").Add(2)
	tsv := r.TSV()
	if !strings.Contains(tsv, "a\tcounter\t2\n") {
		t.Errorf("TSV missing counter row:\n%s", tsv)
	}
	if !strings.Contains(tsv, "h[count]\thistogram\t0\n") {
		t.Errorf("TSV missing histogram count row:\n%s", tsv)
	}
}

// Merging registries whose same-named histograms disagree on bucket bounds
// must fail loudly: the old behavior merged bucket-by-index up to the
// shorter set, silently corrupting the merged distribution (campaign
// aggregates looked complete but binned observations under wrong bounds).
func TestMergeMismatchedHistogramBoundsErrors(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("lat", []int64{1, 2, 3}).Observe(2)

	src := NewRegistry()
	src.Histogram("lat", []int64{10, 20}).Observe(15)

	if err := dst.Merge(src); err == nil {
		t.Fatal("Merge with mismatched bounds must return an error")
	} else if !strings.Contains(err.Error(), "lat") {
		t.Errorf("error should name the mismatched metric, got: %v", err)
	}
	// The mismatched histogram must be left untouched, not partially merged.
	if got := dst.Histogram("lat", nil).Count(); got != 1 {
		t.Errorf("mismatched histogram was mutated: count = %d, want 1", got)
	}
	if got := dst.Histogram("lat", nil).Sum(); got != 2 {
		t.Errorf("mismatched histogram sum mutated: %d, want 2", got)
	}
}

// Matching bounds (including histograms the destination has never seen)
// merge exactly: buckets and sums add, counters add, gauges take the
// source's last value.
func TestMergeMatchingMetrics(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("ops").Add(3)
	dst.Gauge("depth").Set(9)
	dst.Histogram("lat", []int64{10, 20}).Observe(5)

	src := NewRegistry()
	src.Counter("ops").Add(4)
	src.Gauge("depth").Set(2)
	src.Histogram("lat", []int64{10, 20}).Observe(15)
	src.Histogram("fresh", []int64{7}).Observe(100)

	if err := dst.Merge(src); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := dst.Counter("ops").Value(); got != 7 {
		t.Errorf("ops = %d, want 7", got)
	}
	if got := dst.Gauge("depth").Value(); got != 2 {
		t.Errorf("depth = %d, want 2 (last merge wins)", got)
	}
	bks := dst.Histogram("lat", nil).Buckets()
	if bks[0].Count != 1 || bks[1].Count != 1 || bks[2].Count != 0 {
		t.Errorf("merged buckets = %+v", bks)
	}
	if got := dst.Histogram("lat", nil).Sum(); got != 20 {
		t.Errorf("merged sum = %d, want 20", got)
	}
	fresh := dst.Histogram("fresh", nil)
	if fresh.Count() != 1 || fresh.Buckets()[1].Count != 1 {
		t.Errorf("fresh histogram not adopted: %+v", fresh.Buckets())
	}
	// Merging into or from nil registries stays a no-op.
	var nilReg *Registry
	if err := nilReg.Merge(src); err != nil {
		t.Errorf("nil dst Merge: %v", err)
	}
	if err := dst.Merge(nil); err != nil {
		t.Errorf("nil src Merge: %v", err)
	}
}

// The parallel campaign driver hands each run its own registry, lets the
// runs complete in any order the scheduler picks, and then folds the
// registries into the aggregate in descriptor order. The aggregate —
// including gauges, whose merge semantics are last-write-wins — must be a
// function of that descriptor order alone, never of run completion order.
// This pins the guarantee the block-granularity engine relies on: per-block
// stats fold inside a run before its registry is ever merged, so the only
// ordering that may matter is the serial merge loop itself.
func TestMergeGaugeOrderIndependentOfCompletion(t *testing.T) {
	const runs = 16
	build := func(completionOrder []int) string {
		tels := make([]*Registry, runs)
		for i := range tels {
			tels[i] = NewRegistry()
		}
		// Populate in the given "completion" order, concurrently, as the
		// campaign worker pool would.
		var wg sync.WaitGroup
		for _, i := range completionOrder {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tels[i].Counter("runs").Inc()
				tels[i].Gauge("last_depth").Set(int64(100 + i))
				tels[i].Histogram("us", []int64{10, 100}).Observe(int64(i))
			}(i)
		}
		wg.Wait()
		// Fold in descriptor order, exactly like crash.Campaign.execute.
		agg := NewRegistry()
		for i := 0; i < runs; i++ {
			if err := agg.Merge(tels[i]); err != nil {
				t.Fatalf("Merge: %v", err)
			}
		}
		return agg.TSV()
	}
	fwd := make([]int, runs)
	rev := make([]int, runs)
	for i := range fwd {
		fwd[i] = i
		rev[i] = runs - 1 - i
	}
	a, b := build(fwd), build(rev)
	if a != b {
		t.Fatalf("aggregate depends on run completion order:\n--- forward ---\n%s\n--- reverse ---\n%s", a, b)
	}
	if !strings.Contains(a, "last_depth") || !strings.Contains(a, "115") {
		t.Fatalf("gauge must take the LAST merged registry's value (115), got:\n%s", a)
	}
}
