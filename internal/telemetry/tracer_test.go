package telemetry

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

// Spans nest by simulated time: an inner span recorded inside an outer one
// must stay inside it, and the exporter's sort must order by start time.
func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer()
	pid := tr.NewProcess("run")
	outer := Span{Name: "checkpoint", Cat: "checkpoint", PID: pid, TID: TrackCheckpoint,
		Start: 100 * sim.Microsecond, Dur: 50 * sim.Microsecond}
	inner := Span{Name: "snapshot", Cat: "checkpoint", PID: pid, TID: TrackCheckpoint,
		Start: 110 * sim.Microsecond, Dur: 20 * sim.Microsecond}
	// Record out of order on purpose: exporters sort by start.
	tr.Record(inner)
	tr.Record(outer)

	spans := tr.sortedSpans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	if spans[0].Name != "checkpoint" || spans[1].Name != "snapshot" {
		t.Errorf("sort order wrong: %s, %s", spans[0].Name, spans[1].Name)
	}
	if inner.Start < outer.Start || inner.End() > outer.End() {
		t.Error("inner span escapes outer span")
	}
	if tr.SimTotal() != outer.End() {
		t.Errorf("SimTotal = %v, want %v", tr.SimTotal(), outer.End())
	}
}

func TestTracerProcessesAndClamping(t *testing.T) {
	tr := NewTracer()
	p1 := tr.NewProcess("gpKVS/GPM")
	p2 := tr.NewProcess("gpDB/GPM")
	if p1 != 1 || p2 != 2 {
		t.Fatalf("pids = %d, %d", p1, p2)
	}
	if tr.ProcessLabel(p2) != "gpDB/GPM" || tr.ProcessLabel(99) != "" {
		t.Error("process labels wrong")
	}
	tr.Record(Span{Name: "bad", PID: p1, Start: 10, Dur: -5})
	if got := tr.Spans()[0].Dur; got != 0 {
		t.Errorf("negative duration not clamped: %v", got)
	}
}

func TestBreakdownAggregation(t *testing.T) {
	tr := NewTracer()
	pid := tr.NewProcess("w")
	tr.Record(Span{Name: "k1", Cat: "kernel", PID: pid, TID: TrackKernel, Start: 0, Dur: 60})
	tr.Record(Span{Name: "k2", Cat: "kernel", PID: pid, TID: TrackKernel, Start: 60, Dur: 20})
	tr.Record(Span{Name: "e", Cat: "persist", PID: pid, TID: TrackPersist, Start: 80, Dur: 20})
	rows := tr.Breakdown()
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	// Sorted by descending total: kernel (80ns) first.
	if rows[0].Cat != "kernel" || rows[0].Count != 2 || rows[0].Total != 80 {
		t.Errorf("kernel row = %+v", rows[0])
	}
	if rows[0].Pct != 80.0 || rows[1].Pct != 20.0 {
		t.Errorf("pcts = %.1f, %.1f", rows[0].Pct, rows[1].Pct)
	}
	if rows[0].Process != "w" {
		t.Errorf("process label = %q", rows[0].Process)
	}
}

func TestTrackNames(t *testing.T) {
	for tid := TrackKernel; tid <= TrackRecovery; tid++ {
		if TrackName(tid) == "other" {
			t.Errorf("track %d has no name", tid)
		}
	}
	if TrackName(0) != "other" {
		t.Error("unknown track must map to other")
	}
}
