package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

func goldenTracer() *Tracer {
	tr := NewTracer()
	pid := tr.NewProcess("quickstart/GPM")
	tr.Record(Span{Name: "persist-epoch", Cat: "persist", PID: pid, TID: TrackPersist,
		Start: 0, Dur: 20 * sim.Microsecond})
	tr.Record(Span{Name: "fill", Cat: "kernel", PID: pid, TID: TrackKernel,
		Start: 0, Dur: 12500 * sim.Nanosecond})
	tr.Record(Span{Name: "log-create", Cat: "log", PID: pid, TID: TrackLog,
		Start: 30250 * sim.Nanosecond, Dur: 3 * sim.Microsecond})
	tr.Record(Span{Name: "checkpoint", Cat: "checkpoint", PID: pid, TID: TrackCheckpoint,
		Start: 40 * sim.Microsecond, Dur: 100125 * sim.Nanosecond})
	return tr
}

// The Chrome trace exporter is byte-stable: same spans, same bytes. The
// golden file also documents the wire format for readers.
func TestChromeTraceGolden(t *testing.T) {
	got := goldenTracer().ChromeTrace()
	goldenPath := filepath.Join("testdata", "chrome_trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace differs from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Every exported event must be a valid trace-event object: a complete "X"
// event carrying name/ph/ts/dur/pid/tid, with ts/dur in microseconds.
func TestChromeTraceShape(t *testing.T) {
	var events []map[string]any
	if err := json.Unmarshal(goldenTracer().ChromeTrace(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("want 4 events, got %d", len(events))
	}
	for _, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %v missing %q", ev, key)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("event %v is not a complete event", ev)
		}
	}
	// Events are start-sorted; both ts=0 events appear before later ones.
	if events[0]["name"] != "fill" || events[1]["name"] != "persist-epoch" {
		t.Errorf("events not sorted by (start, tid): %v, %v", events[0]["name"], events[1]["name"])
	}
	if ts := events[2]["ts"].(float64); ts != 30.25 {
		t.Errorf("ts not in microseconds: %v", ts)
	}
}

func TestBreakdownTSV(t *testing.T) {
	tsv := goldenTracer().BreakdownTSV()
	if !strings.HasPrefix(tsv, "process\tcategory\tspans\ttotal_us\tpct\n") {
		t.Errorf("missing header:\n%s", tsv)
	}
	for _, cat := range []string{"kernel", "persist", "log", "checkpoint"} {
		if !strings.Contains(tsv, "quickstart/GPM\t"+cat+"\t") {
			t.Errorf("missing %s row:\n%s", cat, tsv)
		}
	}
	var empty *Tracer
	if empty.BreakdownTSV() != "process\tcategory\tspans\ttotal_us\tpct\n" {
		t.Error("nil tracer breakdown must be header-only")
	}
}
