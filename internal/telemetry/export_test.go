package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

func goldenTracer() *Tracer {
	tr := NewTracer()
	pid := tr.NewProcess("quickstart/GPM")
	tr.Record(Span{Name: "persist-epoch", Cat: "persist", PID: pid, TID: TrackPersist,
		Start: 0, Dur: 20 * sim.Microsecond})
	tr.Record(Span{Name: "fill", Cat: "kernel", PID: pid, TID: TrackKernel,
		Start: 0, Dur: 12500 * sim.Nanosecond})
	tr.Record(Span{Name: "log-create", Cat: "log", PID: pid, TID: TrackLog,
		Start: 30250 * sim.Nanosecond, Dur: 3 * sim.Microsecond})
	tr.Record(Span{Name: "checkpoint", Cat: "checkpoint", PID: pid, TID: TrackCheckpoint,
		Start: 40 * sim.Microsecond, Dur: 100125 * sim.Nanosecond})
	return tr
}

// The Chrome trace exporter is byte-stable: same spans, same bytes. The
// golden file also documents the wire format for readers.
func TestChromeTraceGolden(t *testing.T) {
	got := goldenTracer().ChromeTrace()
	goldenPath := filepath.Join("testdata", "chrome_trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace differs from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Every exported event must be a valid trace-event object: a complete "X"
// event carrying name/ph/ts/dur/pid/tid, with ts/dur in microseconds.
func TestChromeTraceShape(t *testing.T) {
	var events []map[string]any
	if err := json.Unmarshal(goldenTracer().ChromeTrace(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("want 4 events, got %d", len(events))
	}
	for _, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %v missing %q", ev, key)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("event %v is not a complete event", ev)
		}
	}
	// Events are start-sorted; both ts=0 events appear before later ones.
	if events[0]["name"] != "fill" || events[1]["name"] != "persist-epoch" {
		t.Errorf("events not sorted by (start, tid): %v, %v", events[0]["name"], events[1]["name"])
	}
	if ts := events[2]["ts"].(float64); ts != 30.25 {
		t.Errorf("ts not in microseconds: %v", ts)
	}
}

func TestBreakdownTSV(t *testing.T) {
	tsv := goldenTracer().BreakdownTSV()
	if !strings.HasPrefix(tsv, "process\tcategory\tspans\ttotal_us\tpct\n") {
		t.Errorf("missing header:\n%s", tsv)
	}
	for _, cat := range []string{"kernel", "persist", "log", "checkpoint"} {
		if !strings.Contains(tsv, "quickstart/GPM\t"+cat+"\t") {
			t.Errorf("missing %s row:\n%s", cat, tsv)
		}
	}
	var empty *Tracer
	if empty.BreakdownTSV() != "process\tcategory\tspans\ttotal_us\tpct\n" {
		t.Error("nil tracer breakdown must be header-only")
	}
}

// A hostile metric name — embedded tabs, newlines, quotes, backslashes,
// control bytes — must not be able to forge rows or columns in the TSV
// exports. Before the fix, names were emitted raw via Fprintf and a name
// containing "\t" or "\n" silently corrupted the table.
func TestHostileMetricNameEscapedInTSV(t *testing.T) {
	evil := "evil\tname\nfake\trow\t1\x00\x1b[31m\\end\r"
	r := NewRegistry()
	r.Counter(evil).Add(7)
	r.Histogram(evil+"_us", []int64{1}).Observe(1)

	tsv := r.TSV()
	lines := strings.Split(strings.TrimSuffix(tsv, "\n"), "\n")
	// header + counter + 2 buckets + sum + count = 6 rows, no forged extras.
	if len(lines) != 6 {
		t.Fatalf("hostile name forged rows: got %d lines\n%s", len(lines), tsv)
	}
	for i, line := range lines {
		if got := strings.Count(line, "\t"); got != 2 {
			t.Errorf("line %d has %d tabs, want 2: %q", i, got, line)
		}
	}
	if !strings.Contains(tsv, `evil\tname\nfake\trow\t1\x00\x1b[31m\\end\r`) {
		t.Errorf("escaped name not found:\n%s", tsv)
	}

	tr := NewTracer()
	pid := tr.NewProcess("proc\twith\ntabs")
	tr.Record(Span{Name: "k", Cat: "cat\negory", PID: pid, TID: TrackKernel, Dur: sim.Microsecond})
	btsv := tr.BreakdownTSV()
	for i, line := range strings.Split(strings.TrimSuffix(btsv, "\n"), "\n") {
		if got := strings.Count(line, "\t"); got != 4 {
			t.Errorf("breakdown line %d has %d tabs, want 4: %q", i, got, line)
		}
	}
	if !strings.Contains(btsv, `proc\twith\ntabs`) || !strings.Contains(btsv, `cat\negory`) {
		t.Errorf("breakdown names not escaped:\n%s", btsv)
	}
}

// The Chrome-trace exporter goes through encoding/json, so hostile span and
// process names must round-trip intact as JSON string values.
func TestHostileSpanNameValidChromeTrace(t *testing.T) {
	evil := "span \"quoted\" \\ with\nnewline\tand \x01 ctrl"
	tr := NewTracer()
	pid := tr.NewProcess("p")
	tr.Record(Span{Name: evil, Cat: evil, PID: pid, TID: TrackKernel, Dur: sim.Microsecond})

	var events []map[string]any
	if err := json.Unmarshal(tr.ChromeTrace(), &events); err != nil {
		t.Fatalf("hostile name broke the trace JSON: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("want 1 event, got %d", len(events))
	}
	if events[0]["name"] != evil {
		t.Errorf("name did not round-trip: %q", events[0]["name"])
	}
}

// EscapeField leaves clean names untouched and escapes exactly the TSV
// metacharacters.
func TestEscapeField(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"gpu.kernel_us", "gpu.kernel_us"},
		{"with space + µ∂", "with space + µ∂"}, // UTF-8 passes through
		{"a\tb", `a\tb`},
		{"a\nb", `a\nb`},
		{"a\rb", `a\rb`},
		{`a\b`, `a\\b`},
		{"a\x00b\x7f", `a\x00b\x7f`},
	}
	for _, c := range cases {
		if got := EscapeField(c.in); got != c.want {
			t.Errorf("EscapeField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
