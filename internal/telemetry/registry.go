// Package telemetry is the unified observability layer of gpm-go: a
// cross-subsystem metrics registry (counters, gauges, fixed-bucket
// histograms) and a span tracer keyed on *simulated* nanoseconds, with
// exporters for Chrome trace-event JSON, a flat metrics TSV, and a
// per-category time breakdown.
//
// Everything is stdlib-only and deterministic: the tracer never consults
// wall-clock time, so attaching telemetry cannot perturb a run's simulated
// duration (the property internal/gpu/determinism_test.go enforces).
//
// Nil-safety is the contract that keeps untelemetered runs near zero-cost:
// every method on a nil *Registry, *Tracer, *Counter, *Gauge, or
// *Histogram is a no-op, so instrumentation sites hold plain (possibly
// nil) pointers and never branch on an "enabled" flag.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/sim"
)

// Counter is a monotonically increasing metric. Safe for concurrent use
// (GPU threads increment counters from kernel goroutines).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (e.g. LLC resident lines).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// InfBucket is the upper bound of a histogram's overflow bucket.
const InfBucket = int64(math.MaxInt64)

// Histogram bins observations into fixed buckets: observation v lands in
// the first bucket whose upper bound satisfies v <= bound (Prometheus "le"
// semantics); values above every bound land in the +Inf overflow bucket.
type Histogram struct {
	bounds []int64        // sorted ascending, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
// It is normally obtained from a Registry; the constructor is exported for
// tests and ad-hoc use.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveMicros records a simulated duration in whole microseconds, the
// unit convention for the *_us latency histograms.
func (h *Histogram) ObserveMicros(d sim.Duration) {
	h.Observe(int64(d / sim.Microsecond))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one histogram bin: the count of observations v with
// prevBound < v <= Le (Le == InfBucket for the overflow bin).
type Bucket struct {
	Le    int64
	Count int64
}

// Buckets returns a snapshot of the bins in ascending bound order,
// overflow last.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.counts))
	for i := range h.bounds {
		out[i] = Bucket{Le: h.bounds[i], Count: h.counts[i].Load()}
	}
	out[len(h.bounds)] = Bucket{Le: InfBucket, Count: h.counts[len(h.bounds)].Load()}
	return out
}

// LatencyBucketsUS is the default bound set for *_us latency histograms:
// a 1-2-5 ladder from 1 µs to 1 s.
var LatencyBucketsUS = []int64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000,
}

// Registry names and owns metrics. Lookups intern by name: asking twice
// for the same name returns the same metric, so subsystems attached to the
// same registry share counters across Context instances.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing bounds). A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time: the bucket
// upper bounds (ascending, excluding +Inf), one count per bucket plus the
// overflow count last, and the observation sum.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1; last is the +Inf overflow bucket
	Sum    int64
}

// Count returns the total observations across all buckets.
func (h HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Snapshot is a point-in-time copy of every metric in a registry. It is a
// plain value: consumers (the Prometheus renderer, rolling-window stats)
// can diff or iterate it without holding registry locks.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every metric's current value. A nil registry returns an
// empty (non-nil-mapped) snapshot, so callers never branch.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// Merge folds another registry's metrics into r: counters and histogram
// buckets/sums add; gauges overwrite (last merge wins, so merging run
// results in run order keeps gauge semantics of "latest value"). A
// histogram whose bounds differ from the same-named histogram already in r
// is a hard error: bucket-by-index addition across different bound sets
// silently corrupts the merged distribution, so Merge refuses (the
// mismatched histogram and every later metric in its map-iteration batch
// are skipped; counters and gauges always merge). In practice bounds always
// match because both sides name the same metrics. The parallel campaign
// driver uses Merge to give every run an isolated registry and still
// publish one aggregate, identical to what serial execution would have
// produced.
func (r *Registry) Merge(from *Registry) error {
	if r == nil || from == nil {
		return nil
	}
	// Snapshot the source under its lock, then fold into r. Never hold both
	// locks at once (no lock-order to get wrong).
	type histSnap struct {
		buckets []Bucket
		sum     int64
	}
	from.mu.Lock()
	counters := make(map[string]int64, len(from.counters))
	for name, c := range from.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(from.gauges))
	for name, g := range from.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]histSnap, len(from.hists))
	for name, h := range from.hists {
		hists[name] = histSnap{buckets: h.Buckets(), sum: h.Sum()}
	}
	from.mu.Unlock()

	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, v := range gauges {
		r.Gauge(name).Set(v)
	}
	// Deterministic order so the first mismatch reported is stable.
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var mismatched []string
	for _, name := range names {
		snap := hists[name]
		bounds := make([]int64, 0, len(snap.buckets))
		for _, bk := range snap.buckets {
			if bk.Le != InfBucket {
				bounds = append(bounds, bk.Le)
			}
		}
		h := r.Histogram(name, bounds)
		if !h.boundsEqual(bounds) {
			mismatched = append(mismatched, name)
			continue
		}
		for i, bk := range snap.buckets {
			if bk.Count == 0 {
				continue
			}
			h.counts[i].Add(bk.Count)
		}
		h.sum.Add(snap.sum)
	}
	if len(mismatched) > 0 {
		return fmt.Errorf("telemetry: histogram bucket bounds mismatch on merge: %s",
			strings.Join(mismatched, ", "))
	}
	return nil
}

// boundsEqual reports whether the histogram's bounds equal the given
// (already sorted) set.
func (h *Histogram) boundsEqual(bounds []int64) bool {
	if len(h.bounds) != len(bounds) {
		return false
	}
	for i, b := range h.bounds {
		if b != bounds[i] {
			return false
		}
	}
	return true
}

// TSV renders every metric as tab-separated "metric\ttype\tvalue" rows
// (the reports/ format), sorted by metric name so output is deterministic.
// Histograms expand to one row per bucket plus sum and count rows. Metric
// names pass through EscapeField so a name containing a tab or newline
// cannot forge extra columns or rows.
func (r *Registry) TSV() string {
	var b strings.Builder
	b.WriteString("metric\ttype\tvalue\n")
	if r == nil {
		return b.String()
	}
	r.mu.Lock()
	type row struct{ name, typ, val string }
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.hists)*8)
	for name, c := range r.counters {
		rows = append(rows, row{EscapeField(name), "counter", fmt.Sprintf("%d", c.Value())})
	}
	for name, g := range r.gauges {
		rows = append(rows, row{EscapeField(name), "gauge", fmt.Sprintf("%d", g.Value())})
	}
	for name, h := range r.hists {
		for _, bk := range h.Buckets() {
			le := "+Inf"
			if bk.Le != InfBucket {
				le = fmt.Sprintf("%d", bk.Le)
			}
			rows = append(rows, row{fmt.Sprintf("%s[le=%s]", EscapeField(name), le), "histogram", fmt.Sprintf("%d", bk.Count)})
		}
		rows = append(rows, row{EscapeField(name) + "[sum]", "histogram", fmt.Sprintf("%d", h.Sum())})
		rows = append(rows, row{EscapeField(name) + "[count]", "histogram", fmt.Sprintf("%d", h.Count())})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].val < rows[j].val
	})
	for _, rw := range rows {
		b.WriteString(rw.name)
		b.WriteByte('\t')
		b.WriteString(rw.typ)
		b.WriteByte('\t')
		b.WriteString(rw.val)
		b.WriteByte('\n')
	}
	return b.String()
}
