// Package gpdb implements the GPMbench GPU-accelerated database workload
// (§4.1): a Virginian-style column-major relational table on PM executing
// transactional batched INSERTs (gpDB(I)) and UPDATEs (gpDB(U)). INSERTs
// append contiguous rows and log only the table size; UPDATEs scatter over
// the table and undo-log every old row through HCL — which is why their
// write-amplification and logging behavior differ so sharply (Table 4,
// Fig 11a).
package gpdb

import (
	"encoding/binary"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Op selects the transaction type.
type Op int

// Transaction types.
const (
	Insert Op = iota
	Update
)

const (
	dbTPB     = 256
	cellBytes = 8
	// UPDATEs modify these two columns.
	updCol1, updCol2 = 1, 2
	// updEntryBytes: row u32 | pad u32 | old1 u64 | old2 u64.
	updEntryBytes = 24

	dbGPUCost = 50 * sim.Nanosecond
	// Per-row software costs of the OpenMP-style CPU engine (§6.1):
	// appends are cheap; updates pay the row lookup and predicate.
	dbCPUInsertCost = 1 * sim.Microsecond
	dbCPUUpdateCost = 4500 * sim.Nanosecond
)

// GpDB is the database workload for one transaction type.
type GpDB struct {
	Op      Op
	ConvLog bool // use conventional logging instead of HCL (Fig 11a)

	rows, cols, maxRows int
	nOps                int

	tableFile *fsim.File // PM column-major table
	metaFile  *fsim.File // PM row count
	txFile    *fsim.File // PM transaction flag
	mirror    uint64     // HBM working mirror
	updRowsB  uint64     // HBM staging of update row ids

	log *gpm.Log

	blocks  int
	updRows []uint32
	model   []uint64 // host model of the table

	committed bool
	crashed   bool
}

// New returns the workload for op.
func New(op Op) *GpDB { return &GpDB{Op: op} }

// Name implements workloads.Workload.
func (d *GpDB) Name() string {
	if d.Op == Insert {
		return "gpDB(I)"
	}
	return "gpDB(U)"
}

// Class implements workloads.Workload.
func (d *GpDB) Class() string { return "transactional" }

// Supports implements workloads.Workload.
func (d *GpDB) Supports(mode workloads.Mode) bool { return mode != workloads.GPUfs }

func (d *GpDB) colBase(base uint64, c int) uint64 {
	return base + uint64(c*d.maxRows*cellBytes)
}

func (d *GpDB) cellAddr(base uint64, row, c int) uint64 {
	return d.colBase(base, c) + uint64(row*cellBytes)
}

// cellValue is the deterministic initial/inserted cell content.
func cellValue(row, col int) uint64 {
	return uint64(row)*1000003 + uint64(col)*7 + 11
}

func updValue(row, col int) uint64 { return cellValue(row, col) ^ 0xabcdef }

// Setup implements workloads.Workload.
func (d *GpDB) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	d.rows, d.cols = cfg.DBRows, cfg.DBCols
	d.maxRows = d.rows + cfg.DBInsertRows
	if d.Op == Insert {
		d.nOps = cfg.DBInsertRows
	} else {
		d.nOps = cfg.DBUpdateRows
	}
	sp := env.Ctx.Space
	tableBytes := int64(d.maxRows*d.cols) * cellBytes

	var err error
	if d.tableFile, err = env.Ctx.FS.Create("/pm/db.table", tableBytes, 0); err != nil {
		return err
	}
	if d.metaFile, err = env.Ctx.FS.Create("/pm/db.meta", 64, 0); err != nil {
		return err
	}
	if d.txFile, err = env.Ctx.FS.Create("/pm/db.tx", 64, 0); err != nil {
		return err
	}
	d.mirror = sp.AllocHBM(tableBytes)

	// Populate the initial table (durable) and the device mirror.
	d.model = make([]uint64, d.maxRows*d.cols)
	buf := make([]byte, tableBytes)
	for c := 0; c < d.cols; c++ {
		for r := 0; r < d.rows; r++ {
			v := cellValue(r, c)
			d.model[c*d.maxRows+r] = v
			binary.LittleEndian.PutUint64(buf[(c*d.maxRows+r)*cellBytes:], v)
		}
	}
	sp.WriteCPU(d.tableFile.Mmap(), buf)
	sp.PersistRange(d.tableFile.Mmap(), len(buf))
	sp.WriteCPU(d.mirror, buf)
	sp.WriteU64(d.metaFile.Mmap(), uint64(d.rows))
	sp.PersistRange(d.metaFile.Mmap(), 8)
	sp.PersistRange(d.txFile.Mmap(), 8)
	env.Ctx.Timeline.Add("setup",
		sim.DurationOfBytes(tableBytes, env.Ctx.Params.CPUPMBandwidth(cfg.CAPThreads))+
			sp.DMA.TransferDown(tableBytes))

	// UPDATE targets: unique random rows.
	if d.Op == Update {
		seen := make(map[uint32]bool, d.nOps)
		for len(d.updRows) < d.nOps {
			r := uint32(env.RNG.Intn(d.rows))
			if seen[r] {
				continue
			}
			seen[r] = true
			d.updRows = append(d.updRows, r)
		}
		d.updRowsB = sp.AllocHBM(int64(d.nOps) * 4)
		rb := make([]byte, d.nOps*4)
		for i, r := range d.updRows {
			binary.LittleEndian.PutUint32(rb[i*4:], r)
		}
		sp.WriteCPU(d.updRowsB, rb)
		env.Ctx.Timeline.Add("stage", sp.DMA.TransferDown(int64(len(rb))))
	}

	// Logging: UPDATEs use HCL sized for the update grid; INSERTs only
	// log the table size in a small conventional log (§6.1: "We skip
	// INSERTs since it only logs the table size").
	gridThreads := d.nOps
	d.blocks = (gridThreads + dbTPB - 1) / dbTPB
	if env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP {
		if d.Op == Update && !d.ConvLog {
			logSize := int64(d.blocks*dbTPB)*2*updEntryBytes + 1<<16
			d.log, err = env.Ctx.LogCreateHCL("/pm/db.log", logSize, d.blocks, dbTPB)
		} else {
			d.log, err = env.Ctx.LogCreateConv("/pm/db.log", 1<<20, 16)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
