package gpdb

import (
	"testing"
	"testing/quick"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func setupDB(t *testing.T, op Op) (*GpDB, *workloads.Env) {
	t.Helper()
	env := workloads.NewEnv(workloads.GPM, workloads.QuickConfig())
	d := New(op)
	if err := d.Setup(env); err != nil {
		t.Fatal(err)
	}
	return d, env
}

func TestSelectMatchesHost(t *testing.T) {
	d, env := setupDB(t, Update)
	q := SelectQuery{PredCol: 0, AggCol: 3, Lo: 2_000_000}
	gotC, gotS, err := d.RunSelect(env, q)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantS := d.HostSelect(q)
	if gotC != wantC || gotS != wantS {
		t.Errorf("select = (%d, %d), want (%d, %d)", gotC, gotS, wantC, wantS)
	}
	if wantC == 0 {
		t.Fatal("degenerate query: no rows matched")
	}
}

func TestSelectAfterUpdateSeesNewValues(t *testing.T) {
	d, env := setupDB(t, Update)
	env.BeginOps()
	if err := d.Run(env); err != nil {
		t.Fatal(err)
	}
	// Updated column 1 values are XOR-flipped; the select over col 1 must
	// reflect them.
	q := SelectQuery{PredCol: 1, AggCol: 1, Lo: 0}
	gotC, gotS, err := d.RunSelect(env, q)
	if err != nil {
		t.Fatal(err)
	}
	wantC, wantS := d.HostSelect(q)
	if gotC != wantC || gotS != wantS {
		t.Errorf("post-update select = (%d, %d), want (%d, %d)", gotC, gotS, wantC, wantS)
	}
}

func TestSelectAfterInsertSeesNewRows(t *testing.T) {
	d, env := setupDB(t, Insert)
	q := SelectQuery{PredCol: 0, AggCol: 0, Lo: 0}
	before, _, err := d.RunSelect(env, q)
	if err != nil {
		t.Fatal(err)
	}
	env.BeginOps()
	if err := d.Run(env); err != nil {
		t.Fatal(err)
	}
	after, _, err := d.RunSelect(env, q)
	if err != nil {
		t.Fatal(err)
	}
	if after != before+uint64(d.nOps) {
		t.Errorf("row count %d -> %d, want +%d", before, after, d.nOps)
	}
}

func TestSelectValidation(t *testing.T) {
	d, env := setupDB(t, Update)
	if _, _, err := d.RunSelect(env, SelectQuery{PredCol: -1, AggCol: 0}); err == nil {
		t.Error("negative column accepted")
	}
	if _, _, err := d.RunSelect(env, SelectQuery{PredCol: 0, AggCol: 99}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

// Property: GPU select equals host select for arbitrary thresholds and
// column choices.
func TestQuickSelectEquivalence(t *testing.T) {
	d, env := setupDB(t, Update)
	f := func(lo uint32, pc, ac uint8) bool {
		q := SelectQuery{
			PredCol: int(pc) % d.cols,
			AggCol:  int(ac) % d.cols,
			Lo:      uint64(lo) % 5_000_000,
		}
		gc, gs, err := d.RunSelect(env, q)
		if err != nil {
			return false
		}
		wc, ws := d.HostSelect(q)
		return gc == wc && gs == ws
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
