package gpdb

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// SELECT support. Today's GPU databases (Virginian, OmniSci, HippogriffDB)
// execute primarily SELECT queries — what they avoid is transactions that
// modify the database, which is exactly the gap gpDB(I)/gpDB(U) fill (§4.1).
// The SELECT path rounds gpDB out into a usable mini-database and provides
// the read-side mix for tests: a predicate scan over one column with a
// filtered aggregate over another, executed by a classic two-phase
// block-reduction kernel.

// SelectQuery is a filtered aggregate: SUM(col agg) WHERE col pred >= lo.
type SelectQuery struct {
	PredCol, AggCol int
	Lo              uint64
}

// RunSelect executes the query on the device-resident table and returns the
// matching row count and aggregate sum. The scan reads the mirror (GETs do
// not need PM, §4.3's placement rule) and reduces per block through shared
// memory, then a final single-block pass combines the partials.
func (d *GpDB) RunSelect(env *workloads.Env, q SelectQuery) (count uint64, sum uint64, err error) {
	if q.PredCol < 0 || q.PredCol >= d.cols || q.AggCol < 0 || q.AggCol >= d.cols {
		return 0, 0, fmt.Errorf("gpdb: select columns out of range (%d, %d)", q.PredCol, q.AggCol)
	}
	rows := d.curRows()
	sp := env.Ctx.Space
	blocks := (rows + dbTPB - 1) / dbTPB
	partials := sp.AllocHBM(int64(blocks) * 16) // per-block {count, sum}

	mirror := d.mirror
	env.Ctx.Launch("db-select", blocks, dbTPB, func(t *gpu.Thread) {
		sh := t.Block().Shared(dbTPB * 16)
		i := t.GlobalID()
		var c, s uint64
		if i < rows {
			t.Compute(dbGPUCost / 8)
			if t.LoadU64(d.cellAddr(mirror, i, q.PredCol)) >= q.Lo {
				c = 1
				s = t.LoadU64(d.cellAddr(mirror, i, q.AggCol))
			}
		}
		putU64(sh, t.ID()*16, c)
		putU64(sh, t.ID()*16+8, s)
		t.SyncBlock()
		// Tree reduction in shared memory.
		for stride := dbTPB / 2; stride > 0; stride /= 2 {
			if t.ID() < stride {
				putU64(sh, t.ID()*16, getU64(sh, t.ID()*16)+getU64(sh, (t.ID()+stride)*16))
				putU64(sh, t.ID()*16+8, getU64(sh, t.ID()*16+8)+getU64(sh, (t.ID()+stride)*16+8))
			}
			t.Compute(2 * sim.Nanosecond)
			t.SyncBlock()
		}
		if t.ID() == 0 {
			t.StoreU64(partials+uint64(t.Block().ID())*16, getU64(sh, 0))
			t.StoreU64(partials+uint64(t.Block().ID())*16+8, getU64(sh, 8))
		}
	})
	// Final combine.
	result := sp.AllocHBM(16)
	env.Ctx.Launch("db-select-final", 1, 1, func(t *gpu.Thread) {
		var c, s uint64
		for b := 0; b < blocks; b++ {
			c += t.LoadU64(partials + uint64(b)*16)
			s += t.LoadU64(partials + uint64(b)*16 + 8)
			t.Compute(sim.Nanosecond)
		}
		t.StoreU64(result, c)
		t.StoreU64(result+8, s)
	})
	// Result set returns to the host.
	env.Ctx.Timeline.Add("db-select-out", sp.DMA.TransferUp(16))
	return sp.ReadU64(result), sp.ReadU64(result + 8), nil
}

// curRows returns the current logical row count (committed inserts
// included).
func (d *GpDB) curRows() int {
	if d.committed && d.Op == Insert {
		return d.rows + d.nOps
	}
	return d.rows
}

// HostSelect is the reference implementation over the host model.
func (d *GpDB) HostSelect(q SelectQuery) (count uint64, sum uint64) {
	rows := d.curRows()
	for r := 0; r < rows; r++ {
		if d.model[q.PredCol*d.maxRows+r] >= q.Lo {
			count++
			sum += d.model[q.AggCol*d.maxRows+r]
		}
	}
	return count, sum
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[off+i]) << (8 * i)
	}
	return v
}
