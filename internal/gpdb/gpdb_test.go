package gpdb

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func TestGpDBModes(t *testing.T) {
	for _, op := range []Op{Insert, Update} {
		for _, m := range []workloads.Mode{
			workloads.GPM, workloads.CAPfs, workloads.CAPmm,
			workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR, workloads.CPUOnly,
		} {
			t.Run(New(op).Name()+"/"+m.String(), func(t *testing.T) {
				if _, err := workloads.RunOne(New(op), m, workloads.QuickConfig()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGpDBWriteAmplification(t *testing.T) {
	// Table 4: gpDB(I) ~1.27× (contiguous appends, page-rounded),
	// gpDB(U) ~19.9× (whole table ships under CAP).
	cfg := workloads.QuickConfig()
	gi, err := workloads.RunOne(New(Insert), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := workloads.RunOne(New(Insert), workloads.CAPmm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	waI := float64(ci.PMBytes) / float64(gi.PMBytes)
	if waI < 0.9 || waI > 3 {
		t.Errorf("gpDB(I) WA = %.2f, want near 1.27", waI)
	}
	gu, err := workloads.RunOne(New(Update), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := workloads.RunOne(New(Update), workloads.CAPmm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	waU := float64(cu.PMBytes) / float64(gu.PMBytes)
	if waU < 5 {
		t.Errorf("gpDB(U) WA = %.2f, want large (paper: 19.9)", waU)
	}
	if waU <= waI {
		t.Errorf("update WA (%.1f) must exceed insert WA (%.1f)", waU, waI)
	}
}

func TestGpDBGPMFasterThanCPUAndCAP(t *testing.T) {
	cfg := workloads.QuickConfig()
	for _, op := range []Op{Insert, Update} {
		g, err := workloads.RunOne(New(op), workloads.GPM, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := workloads.RunOne(New(op), workloads.CPUOnly, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := workloads.RunOne(New(op), workloads.CAPfs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// At the quick scale, gpDB(I)'s fixed kernel-launch costs rival
		// the tiny CPU append; allow parity there — the default-scale
		// cpudb experiment asserts the paper's 3.1×/6.9× gaps.
		if float64(g.OpTime) > 1.5*float64(cpu.OpTime) {
			t.Errorf("%s: GPM %v much slower than CPU %v", New(op).Name(), g.OpTime, cpu.OpTime)
		}
		if g.OpTime >= fs.OpTime {
			t.Errorf("%s: GPM %v not faster than CAP-fs %v", New(op).Name(), g.OpTime, fs.OpTime)
		}
	}
}

func TestGpDBInsertSequentialPattern(t *testing.T) {
	// §6.1: gpDB(I) accesses are sequential (new rows are contiguous).
	r, err := workloads.RunOne(New(Insert), workloads.GPM, workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.SeqFrac < 0.5 {
		t.Errorf("gpDB(I) seq fraction %.2f, want sequential", r.SeqFrac)
	}
	u, err := workloads.RunOne(New(Update), workloads.GPM, workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if u.SeqFrac >= r.SeqFrac {
		t.Errorf("gpDB(U) (%.2f) should be less sequential than gpDB(I) (%.2f)", u.SeqFrac, r.SeqFrac)
	}
}

func TestGpDBCrashRecovery(t *testing.T) {
	for _, op := range []Op{Insert, Update} {
		t.Run(New(op).Name(), func(t *testing.T) {
			r, err := workloads.RunWithCrash(New(op), workloads.GPM, workloads.QuickConfig(), 5000)
			if err != nil {
				t.Fatal(err)
			}
			if r.Restore <= 0 {
				t.Error("no restoration latency")
			}
		})
	}
}

func TestGpDBInsertRecoveryCheaperThanUpdate(t *testing.T) {
	// Table 5: gpDB(I) restores in 0.01% of op time (metadata only);
	// gpDB(U) needs 10.4% (undo kernel over the log).
	ri, err := workloads.RunWithCrash(New(Insert), workloads.GPM, workloads.QuickConfig(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := workloads.RunWithCrash(New(Update), workloads.GPM, workloads.QuickConfig(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if ri.RestoreFraction() >= ru.RestoreFraction() {
		t.Errorf("insert restore (%.4f) should be cheaper than update restore (%.4f)",
			ri.RestoreFraction(), ru.RestoreFraction())
	}
}

func TestGpDBHCLFasterThanConv(t *testing.T) {
	// Fig 11a: gpDB(U) speeds up 6.1× with HCL.
	cfg := workloads.QuickConfig()
	hcl, err := workloads.RunOne(New(Update), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := workloads.RunOne(&GpDB{Op: Update, ConvLog: true}, workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hcl.OpTime >= conv.OpTime {
		t.Errorf("HCL (%v) should be faster than conventional (%v); the full-size gap is measured by the Fig 11a bench", hcl.OpTime, conv.OpTime)
	}
}
