package gpdb

import (
	"encoding/binary"
	"fmt"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func (d *GpDB) setTxFlag(env *workloads.Env, on bool) {
	v := uint64(0)
	if on {
		v = 1
	}
	env.Ctx.RunCPU("tx-flag", 1, func(t *cpusim.Thread) {
		t.WriteU64(d.txFile.Mmap(), v)
		t.PersistRange(d.txFile.Mmap(), 8)
	})
}

// insertKernel appends nOps rows: one thread per new cell, laid out so
// consecutive threads write consecutive rows of one column — the contiguous
// sequential pattern that gives gpDB(I) good PM bandwidth (§6.1).
func (d *GpDB) insertKernel(env *workloads.Env, direct, persist bool) {
	pm, mirror := d.tableFile.Mmap(), d.mirror
	rows, cols, nOps := d.rows, d.cols, d.nOps
	total := nOps * cols
	blocks := (total + dbTPB - 1) / dbTPB
	env.Ctx.Launch("db-insert", blocks, dbTPB, func(t *gpu.Thread) {
		gid := t.GlobalID()
		if gid >= total {
			return
		}
		c, i := gid/nOps, gid%nOps
		row := rows + i
		t.Compute(dbGPUCost / 4)
		v := cellValue(row, c)
		t.StoreU64(d.cellAddr(mirror, row, c), v)
		if direct {
			t.StoreU64(d.cellAddr(pm, row, c), v)
			if persist {
				gpm.Persist(t)
			}
		}
	})
}

// updateKernel rewrites two columns of nOps scattered rows, undo-logging
// each old row first (Fig 6a's pattern, one entry per thread — full HCL
// parallelism, hence gpDB(U)'s 6.1× HCL speedup in Fig 11a).
func (d *GpDB) updateKernel(env *workloads.Env, logging, direct, persist bool) error {
	pm, mirror := d.tableFile.Mmap(), d.mirror
	nOps := d.nOps
	log := d.log
	var kerr error
	env.Ctx.Launch("db-update", d.blocks, dbTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= nOps {
			return
		}
		row := int(t.LoadU32(d.updRowsB + uint64(i)*4))
		t.Compute(dbGPUCost)
		m1 := d.cellAddr(mirror, row, updCol1)
		m2 := d.cellAddr(mirror, row, updCol2)
		if logging {
			var e [updEntryBytes]byte
			binary.LittleEndian.PutUint32(e[0:], uint32(row))
			binary.LittleEndian.PutUint64(e[8:], t.LoadU64(m1))
			binary.LittleEndian.PutUint64(e[16:], t.LoadU64(m2))
			if err := log.Insert(t, e[:], -1); err != nil {
				kerr = err
				return
			}
		}
		t.StoreU64(m1, updValue(row, updCol1))
		t.StoreU64(m2, updValue(row, updCol2))
		if direct {
			t.StoreU64(d.cellAddr(pm, row, updCol1), updValue(row, updCol1))
			t.StoreU64(d.cellAddr(pm, row, updCol2), updValue(row, updCol2))
			if persist {
				gpm.Persist(t)
			}
		}
	})
	return kerr
}

// commit persists the new row count and truncates logs. Under GPM the GPU
// does both; under GPM-NDP the CPU must guarantee the persists (that is the
// point of the ablation).
func (d *GpDB) commit(env *workloads.Env, newRows int) {
	meta := d.metaFile.Mmap()
	if env.Mode == workloads.GPMNDP {
		env.Ctx.RunCPU("ndp-meta", 1, func(t *cpusim.Thread) {
			t.WriteU64(meta, uint64(newRows))
			t.PersistRange(meta, 8)
		})
		if d.log != nil {
			d.log.HostClearAll()
		}
		d.setTxFlag(env, false)
		return
	}
	env.PersistKernelBegin()
	env.Ctx.Launch("db-meta", 1, 1, func(t *gpu.Thread) {
		t.StoreU64(meta, uint64(newRows))
		gpm.Persist(t)
	})
	if d.log != nil {
		log := d.log
		env.Ctx.Launch("db-logclear", d.blocks, dbTPB, func(t *gpu.Thread) {
			log.ClearIfUsed(t)
		})
	}
	env.PersistKernelEnd()
	d.setTxFlag(env, false)
}

// Run implements workloads.Workload: one transaction covering all ops.
func (d *GpDB) Run(env *workloads.Env) error {
	return d.run(env, -1)
}

func (d *GpDB) run(env *workloads.Env, abortAfterOps int64) error {
	if env.Mode == workloads.CPUOnly {
		return d.runCPU(env)
	}
	mode := env.Mode
	direct := mode.UsesGPM() || mode == workloads.GPMNDP
	logging := direct

	if logging {
		// Begin transaction: log the old table size, set the flag.
		if d.Op == Insert || d.ConvLog {
			oldRows := d.rows
			log := d.log
			env.PersistKernelBegin()
			var kerr error
			env.Ctx.Launch("db-logsize", 1, 1, func(t *gpu.Thread) {
				var e [8]byte
				binary.LittleEndian.PutUint64(e[:], uint64(oldRows))
				kerr = log.Insert(t, e[:], 0)
			})
			env.PersistKernelEnd()
			if kerr != nil {
				return kerr
			}
		}
		d.setTxFlag(env, true)
	}

	env.PersistKernelBegin()
	if abortAfterOps >= 0 {
		env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	}
	var err error
	if d.Op == Insert {
		d.insertKernel(env, direct, mode.UsesGPM())
	} else {
		err = d.updateKernel(env, logging, direct, mode.UsesGPM())
	}
	crashed := abortAfterOps >= 0
	if crashed {
		env.Ctx.Dev.SetAbortCheck(nil)
	}
	env.PersistKernelEnd()
	if err != nil {
		return err
	}
	if crashed {
		return nil
	}

	switch {
	case mode.UsesGPM():
		d.commit(env, d.newRowCount())
	case mode == workloads.GPMNDP:
		// Direct stores; CPU flushes the touched ranges, then commit.
		if d.Op == Insert {
			for c := 0; c < d.cols; c++ {
				env.Cap.FlushOnly(d.cellAddr(d.tableFile.Mmap(), d.rows, c), int64(d.nOps)*cellBytes)
			}
		} else {
			// Updated rows are only known inside the kernel (§3.2), so
			// the CPU flushes the whole table.
			env.Cap.FlushOnly(d.tableFile.Mmap(), d.tableFile.Size())
		}
		d.commit(env, d.newRowCount())
	default:
		// CAP. INSERTs ship only the appended (contiguous, page-rounded)
		// column tails — modest 1.27× amplification; UPDATEs cannot know
		// which rows changed, so the whole table ships (19.9×, Table 4).
		if d.Op == Insert {
			for c := 0; c < d.cols; c++ {
				// The CPU ships page-rounded windows covering the
				// appended tail of each column (Table 4's 1.27×).
				start := int64(c*d.maxRows+d.rows) * cellBytes
				end := start + int64(d.nOps)*cellBytes
				off := start / 4096 * 4096
				n := pageRound(end - off)
				if off+n > d.tableFile.Size() {
					n = d.tableFile.Size() - off
				}
				if err := workloads.PersistBuffer(env, d.tableFile, off, d.mirror+uint64(off), n); err != nil {
					return err
				}
			}
		} else {
			if err := workloads.PersistBuffer(env, d.tableFile, 0, d.mirror, d.tableFile.Size()); err != nil {
				return err
			}
		}
		// CAP has no in-kernel logging; the row count is persisted by
		// the CPU after the data.
		env.Ctx.RunCPU("cap-meta", 1, func(t *cpusim.Thread) {
			t.WriteU64(d.metaFile.Mmap(), uint64(d.newRowCount()))
			t.PersistRange(d.metaFile.Mmap(), 8)
		})
	}
	d.applyModel()
	env.CountOps(int64(d.nOps))
	return nil
}

func pageRound(n int64) int64 { return (n + 4095) / 4096 * 4096 }

func (d *GpDB) newRowCount() int {
	if d.Op == Insert {
		return d.rows + d.nOps
	}
	return d.rows
}

func (d *GpDB) applyModel() {
	if d.Op == Insert {
		for i := 0; i < d.nOps; i++ {
			row := d.rows + i
			for c := 0; c < d.cols; c++ {
				d.model[c*d.maxRows+row] = cellValue(row, c)
			}
		}
	} else {
		for _, r := range d.updRows {
			d.model[updCol1*d.maxRows+int(r)] = updValue(int(r), updCol1)
			d.model[updCol2*d.maxRows+int(r)] = updValue(int(r), updCol2)
		}
	}
	d.committed = true
}

// runCPU is the OpenMP-style many-core engine (§6.1's CPU comparison).
func (d *GpDB) runCPU(env *workloads.Env) error {
	threads := env.Cfg.CAPThreads
	pm := d.tableFile.Mmap()
	env.Ctx.RunCPU("cpu-db", threads, func(t *cpusim.Thread) {
		if d.Op == Insert {
			// Appends are contiguous per column: each thread streams its
			// row range into every column and persists it in bulk.
			chunk := (d.nOps + t.N - 1) / t.N
			lo, hi := t.ID*chunk, (t.ID+1)*chunk
			if hi > d.nOps {
				hi = d.nOps
			}
			if lo >= hi {
				return
			}
			buf := make([]byte, (hi-lo)*cellBytes)
			for c := 0; c < d.cols; c++ {
				for i := lo; i < hi; i++ {
					t.Compute(dbCPUInsertCost / sim.Duration(d.cols))
					binary.LittleEndian.PutUint64(buf[(i-lo)*cellBytes:], cellValue(d.rows+i, c))
				}
				dst := d.cellAddr(pm, d.rows+lo, c)
				t.Write(dst, buf)
				t.PersistRange(dst, int64(len(buf)))
			}
			return
		}
		for i := t.ID; i < d.nOps; i += t.N {
			t.Compute(dbCPUUpdateCost)
			row := int(d.updRows[i])
			t.WriteU64(d.cellAddr(pm, row, updCol1), updValue(row, updCol1))
			t.WriteU64(d.cellAddr(pm, row, updCol2), updValue(row, updCol2))
			t.FlushRange(d.cellAddr(pm, row, updCol1), cellBytes)
			t.FlushRange(d.cellAddr(pm, row, updCol2), cellBytes)
			t.Drain()
		}
	})
	env.Ctx.RunCPU("cpu-db", 1, func(t *cpusim.Thread) {
		t.WriteU64(d.metaFile.Mmap(), uint64(d.newRowCount()))
		t.PersistRange(d.metaFile.Mmap(), 8)
	})
	d.applyModel()
	env.CountOps(int64(d.nOps))
	return nil
}

// Verify implements workloads.Workload: the durable table up to the durable
// row count must match the model.
func (d *GpDB) Verify(env *workloads.Env) error {
	sp := env.Ctx.Space
	metaSnap := sp.SnapshotPersistent(d.metaFile.Mmap(), 8)
	durableRows := int(binary.LittleEndian.Uint64(metaSnap))
	wantRows := d.rows
	if d.committed {
		wantRows = d.newRowCount()
	}
	if durableRows != wantRows {
		return fmt.Errorf("gpdb: durable row count %d, want %d", durableRows, wantRows)
	}
	snap := sp.SnapshotPersistent(d.tableFile.Mmap(), int(d.tableFile.Size()))
	for c := 0; c < d.cols; c++ {
		for r := 0; r < durableRows; r++ {
			got := binary.LittleEndian.Uint64(snap[(c*d.maxRows+r)*cellBytes:])
			want := d.model[c*d.maxRows+r]
			if d.crashed && !d.committed {
				// After an aborted transaction the table must show
				// pre-transaction values.
				want = cellValue(r, c)
			}
			if got != want {
				return fmt.Errorf("gpdb: durable cell (%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher.
func (d *GpDB) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("gpdb: crash study requires a GPM mode")
	}
	d.crashed = true
	return d.run(env, abortAfterOps)
}

// Recover implements workloads.Crasher: undo the aborted transaction —
// INSERTs restore the logged table size (near-free, Table 5's 0.01%);
// UPDATEs run the undo kernel over the HCL log.
func (d *GpDB) Recover(env *workloads.Env) error {
	start := env.Ctx.Timeline.Total()
	snap := env.Ctx.Space.SnapshotPersistent(d.txFile.Mmap(), 8)
	if binary.LittleEndian.Uint64(snap) == 0 {
		return nil
	}
	log, err := env.Ctx.LogOpen("/pm/db.log")
	if err != nil {
		return err
	}
	d.log = log
	pm := d.tableFile.Mmap()
	env.Ctx.PersistBegin()
	if d.Op == Insert || d.ConvLog {
		// The conventional log's partition 0 holds the old table size.
		b := log.HostPartitionBytes(0)
		if len(b) < 8 {
			return fmt.Errorf("gpdb: missing size log entry")
		}
		oldRows := binary.LittleEndian.Uint64(b[len(b)-8:])
		env.Ctx.Launch("db-recover", 1, 1, func(t *gpu.Thread) {
			t.StoreU64(d.metaFile.Mmap(), oldRows)
			gpm.Persist(t)
		})
	}
	if d.Op == Update {
		var kerr error
		env.Ctx.Launch("db-recover", d.blocks, dbTPB, func(t *gpu.Thread) {
			var e [updEntryBytes]byte
			if err := log.Read(t, e[:], -1); err != nil {
				return
			}
			row := int(binary.LittleEndian.Uint32(e[0:]))
			t.StoreU64(d.cellAddr(pm, row, updCol1), binary.LittleEndian.Uint64(e[8:]))
			t.StoreU64(d.cellAddr(pm, row, updCol2), binary.LittleEndian.Uint64(e[16:]))
			gpm.Persist(t)
			if err := log.Remove(t, updEntryBytes, -1); err != nil {
				kerr = err
			}
		})
		if kerr != nil {
			return kerr
		}
	}
	env.Ctx.PersistEnd()
	d.setTxFlag(env, false)
	env.AddRestore(env.Ctx.Timeline.Total() - start)
	return nil
}
