// Package kvstore implements the transactional KVS workloads: gpKVS — a
// MegaKV-style GPU-accelerated persistent key-value store executing batched
// SET/GET transactions with HCL undo logging on PM (§4.1, Fig 6) — and the
// three CPU PM key-value stores it is compared against in Fig 1a (pmemKV-,
// RocksDB-pmem-, and MatrixKV-style).
package kvstore

import (
	"encoding/binary"
	"fmt"

	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

const (
	ways      = 8  // set associativity (MegaKV limits collisions with 8 ways)
	pairBytes = 16 // 8B key + 8B value
	thrdGrpSz = 8  // threads cooperating per SET (Fig 6a)
	kvsTPB    = 256

	// logEntryBytes: set u32 | way u32 | oldKey u64 | oldValue u64.
	logEntryBytes = 24

	gpuOpCost = 60 * sim.Nanosecond // hash + probe on a GPU thread
	// hostOpCost is the server-side request/response handling per op
	// (parse, dispatch, assemble response) — identical under every
	// persistence system, so it dilutes GPM's advantage exactly where
	// GETs dominate (gpKVS 95:5, §6.1).
	hostOpCost = 1200 * sim.Nanosecond
)

// hashKey maps a key to (set, way); shared bit-for-bit by host and kernels.
func hashKey(key uint64, sets int) (set, way int) {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(sets)), int((z >> 32) % ways)
}

// batch is one transaction of operations.
type batch struct {
	setKeys, setVals []uint64
	delKeys          []uint64 // DELETEs of keys set by earlier batches
	getKeys          []uint64
	getExpect        []uint64 // value expected at GET time (0 if absent)
}

// GpKVS is the gpKVS workload. GetFraction configures the 95:5 variant;
// DeleteFraction converts that share of each batch's mutations into
// DELETEs of keys committed by earlier batches (MegaKV supports
// GET/SET/DELETE); ConvLog switches HCL for the conventional lock-based
// log (Fig 11a).
type GpKVS struct {
	GetFraction    float64
	DeleteFraction float64
	ConvLog        bool

	sets, batches, opsPerBatch int

	pmFile *fsim.File // PM-resident store
	txFile *fsim.File // transaction-active flag
	mirror uint64     // HBM working mirror of the store
	keysB  uint64     // HBM staging for a batch's keys
	valsB  uint64
	getsB  uint64
	delsB  uint64
	outB   uint64 // GET results

	log *gpm.Log

	blocks int
	work   []batch
	model  []uint64 // host model: slot -> key,value (2 u64 per slot)

	committed int  // batches fully committed (crash-consistency reference)
	crashed   bool // a crash was injected; volatile GET results are gone
}

// New returns a 100%-SET gpKVS.
func New() *GpKVS { return &GpKVS{} }

// NewMixed returns the 95% GET / 5% SET variant.
func NewMixed() *GpKVS { return &GpKVS{GetFraction: 0.95} }

// Name implements workloads.Workload.
func (g *GpKVS) Name() string {
	if g.GetFraction > 0 {
		return "gpKVS(95:5)"
	}
	return "gpKVS"
}

// Class implements workloads.Workload.
func (g *GpKVS) Class() string { return "transactional" }

// Supports implements workloads.Workload: fine-grained per-thread KVS
// updates deadlock GPUfs (§6.1); the CPU counterparts are the separate
// CPUKVS workloads.
func (g *GpKVS) Supports(mode workloads.Mode) bool {
	return mode != workloads.GPUfs && mode != workloads.CPUOnly
}

func (g *GpKVS) storeBytes() int64 { return int64(g.sets) * ways * pairBytes }

func (g *GpKVS) slotAddr(base uint64, set, way int) uint64 {
	return base + uint64((set*ways+way)*pairBytes)
}

// Setup implements workloads.Workload.
func (g *GpKVS) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	g.sets, g.batches, g.opsPerBatch = cfg.KVSSets, cfg.KVSBatches, cfg.KVSOpsPerBatch
	sp := env.Ctx.Space

	var err error
	if g.pmFile, err = env.Ctx.FS.Create("/pm/kvs.store", g.storeBytes(), 0); err != nil {
		return err
	}
	if g.txFile, err = env.Ctx.FS.Create("/pm/kvs.tx", 64, 0); err != nil {
		return err
	}
	g.mirror = sp.AllocHBM(g.storeBytes())
	g.keysB = sp.AllocHBM(int64(g.opsPerBatch) * 8)
	g.valsB = sp.AllocHBM(int64(g.opsPerBatch) * 8)
	g.getsB = sp.AllocHBM(int64(g.opsPerBatch) * 8)
	g.delsB = sp.AllocHBM(int64(g.opsPerBatch) * 8)
	g.outB = sp.AllocHBM(int64(g.opsPerBatch) * 8)
	g.model = make([]uint64, g.sets*ways*2)

	// Empty store is durable from the start.
	sp.PersistRange(g.pmFile.Mmap(), int(g.storeBytes()))
	sp.PersistRange(g.txFile.Mmap(), 8)

	// Pre-generate batches: SET keys are unique per (set, way) within a
	// batch so concurrent insertion order cannot change the result.
	g.work = make([]batch, g.batches)
	modelAt := func(set, way int) (uint64, uint64) {
		return g.model[(set*ways+way)*2], g.model[(set*ways+way)*2+1]
	}
	shadow := make([]uint64, len(g.model))
	copy(shadow, g.model)
	nextKey := uint64(1)
	for bi := range g.work {
		b := &g.work[bi]
		nSets := g.opsPerBatch
		if g.GetFraction > 0 {
			nSets = int(float64(g.opsPerBatch) * (1 - g.GetFraction))
			if nSets < 1 {
				nSets = 1
			}
		}
		nDels := int(float64(nSets) * g.DeleteFraction)
		if nDels > nSets-1 {
			nDels = nSets - 1
		}
		nSets -= nDels
		used := make(map[int]bool, nSets+nDels)
		for len(b.setKeys) < nSets {
			key := nextKey
			nextKey++
			set, way := hashKey(key, g.sets)
			slot := set*ways + way
			if used[slot] {
				continue
			}
			used[slot] = true
			val := key*2654435761 + 13
			b.setKeys = append(b.setKeys, key)
			b.setVals = append(b.setVals, val)
			shadow[slot*2] = key
			shadow[slot*2+1] = val
		}
		// DELETEs target keys committed by earlier batches whose slots
		// this batch does not otherwise touch.
		if bi > 0 {
			prev := &g.work[bi-1]
			for _, key := range prev.setKeys {
				if len(b.delKeys) >= nDels {
					break
				}
				set, way := hashKey(key, g.sets)
				slot := set*ways + way
				if used[slot] || shadow[slot*2] != key {
					continue
				}
				used[slot] = true
				b.delKeys = append(b.delKeys, key)
				shadow[slot*2], shadow[slot*2+1] = 0, 0
			}
		}
		// GETs target keys already in the (shadow) store, or misses.
		nGets := g.opsPerBatch - nSets
		if g.GetFraction == 0 {
			nGets = 0
		}
		for len(b.getKeys) < nGets {
			key := uint64(env.RNG.Int63n(int64(nextKey)) + 1)
			set, way := hashKey(key, g.sets)
			slot := set*ways + way
			b.getKeys = append(b.getKeys, key)
			if shadow[slot*2] == key {
				b.getExpect = append(b.getExpect, shadow[slot*2+1])
			} else {
				b.getExpect = append(b.getExpect, 0)
			}
		}
	}
	_ = modelAt

	// The HCL log is shaped for the SET grid: thrdGrpSz threads per op.
	maxSets := 0
	for _, b := range g.work {
		if len(b.setKeys) > maxSets {
			maxSets = len(b.setKeys)
		}
	}
	g.blocks = (maxSets*thrdGrpSz + kvsTPB - 1) / kvsTPB
	if env.Mode.UsesGPM() || env.Mode == workloads.GPMNDP {
		logSize := int64(g.blocks*kvsTPB)*2*logEntryBytes + 1<<16
		if g.ConvLog {
			g.log, err = env.Ctx.LogCreateConv("/pm/kvs.log", logSize, 16)
		} else {
			g.log, err = env.Ctx.LogCreateHCL("/pm/kvs.log", logSize, g.blocks, kvsTPB)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// stageBatch ships a batch's operations to the GPU (cudaMemcpy HtoD).
func (g *GpKVS) stageBatch(env *workloads.Env, b *batch) {
	sp := env.Ctx.Space
	sp.WriteCPU(g.keysB, u64Bytes(b.setKeys))
	sp.WriteCPU(g.valsB, u64Bytes(b.setVals))
	if len(b.getKeys) > 0 {
		sp.WriteCPU(g.getsB, u64Bytes(b.getKeys))
	}
	if len(b.delKeys) > 0 {
		sp.WriteCPU(g.delsB, u64Bytes(b.delKeys))
	}
	n := int64(len(b.setKeys)*16 + len(b.getKeys)*8 + len(b.delKeys)*8)
	env.Ctx.Timeline.Add("stage", sp.DMA.TransferDown(n))
}

// setKernel is Fig 6a: groups of thrdGrpSz threads cooperate per SET; the
// thread whose group lane equals the key's way logs the old pair through
// libGPM, updates the store, and persists.
func (g *GpKVS) setKernel(env *workloads.Env, nOps int, logging, direct, persist bool) error {
	sets := g.sets
	pm := g.pmFile.Mmap()
	mirror, keys, vals := g.mirror, g.keysB, g.valsB
	log := g.log
	var kerr error
	env.Ctx.Launch("kvs-set", g.blocks, kvsTPB, func(t *gpu.Thread) {
		gid := t.GlobalID()
		op := gid / thrdGrpSz
		if op >= nOps {
			return
		}
		key := t.LoadU64(keys + uint64(op)*8)
		t.Compute(gpuOpCost)
		set, way := hashKey(key, sets)
		// Each group thread probes its own way (Fig 6a line 3); only the
		// key's home way proceeds.
		if gid%thrdGrpSz != way {
			return
		}
		val := t.LoadU64(vals + uint64(op)*8)
		mAddr := g.slotAddr(mirror, set, way)
		if logging {
			var entry [logEntryBytes]byte
			binary.LittleEndian.PutUint32(entry[0:], uint32(set))
			binary.LittleEndian.PutUint32(entry[4:], uint32(way))
			binary.LittleEndian.PutUint64(entry[8:], t.LoadU64(mAddr))
			binary.LittleEndian.PutUint64(entry[16:], t.LoadU64(mAddr+8))
			if err := log.Insert(t, entry[:], -1); err != nil {
				kerr = err
				return
			}
		}
		t.StoreU64(mAddr, key)
		t.StoreU64(mAddr+8, val)
		if direct {
			pAddr := g.slotAddr(pm, set, way)
			t.StoreU64(pAddr, key)
			t.StoreU64(pAddr+8, val)
			if persist {
				gpm.Persist(t)
			}
		}
	})
	return kerr
}

// deleteKernel removes batched keys: the owning group thread logs the old
// pair, zeroes the slot in mirror and PM, and persists — the same
// undo-logged transactional pattern as SET (a DELETE is a SET of the empty
// pair).
func (g *GpKVS) deleteKernel(env *workloads.Env, nDels int, logging, direct, persist bool) error {
	if nDels == 0 {
		return nil
	}
	sets := g.sets
	pm := g.pmFile.Mmap()
	mirror, keys := g.mirror, g.delsB
	log := g.log
	var kerr error
	// The grid matches the HCL log's geometry; excess threads exit.
	env.Ctx.Launch("kvs-del", g.blocks, kvsTPB, func(t *gpu.Thread) {
		gid := t.GlobalID()
		op := gid / thrdGrpSz
		if op >= nDels {
			return
		}
		key := t.LoadU64(keys + uint64(op)*8)
		t.Compute(gpuOpCost)
		set, way := hashKey(key, sets)
		if gid%thrdGrpSz != way {
			return
		}
		mAddr := g.slotAddr(mirror, set, way)
		if t.LoadU64(mAddr) != key {
			return // miss: nothing to delete
		}
		if logging {
			var entry [logEntryBytes]byte
			binary.LittleEndian.PutUint32(entry[0:], uint32(set))
			binary.LittleEndian.PutUint32(entry[4:], uint32(way))
			binary.LittleEndian.PutUint64(entry[8:], t.LoadU64(mAddr))
			binary.LittleEndian.PutUint64(entry[16:], t.LoadU64(mAddr+8))
			if err := log.Insert(t, entry[:], -1); err != nil {
				kerr = err
				return
			}
		}
		t.StoreU64(mAddr, 0)
		t.StoreU64(mAddr+8, 0)
		if direct {
			pAddr := g.slotAddr(pm, set, way)
			t.StoreU64(pAddr, 0)
			t.StoreU64(pAddr+8, 0)
			if persist {
				gpm.Persist(t)
			}
		}
	})
	return kerr
}

// getKernel services batched GETs from the device-resident mirror.
func (g *GpKVS) getKernel(env *workloads.Env, nGets int) {
	sets := g.sets
	mirror, gets, out := g.mirror, g.getsB, g.outB
	blocks := (nGets + kvsTPB - 1) / kvsTPB
	if blocks == 0 {
		return
	}
	env.Ctx.Launch("kvs-get", blocks, kvsTPB, func(t *gpu.Thread) {
		i := t.GlobalID()
		if i >= nGets {
			return
		}
		key := t.LoadU64(gets + uint64(i)*8)
		t.Compute(gpuOpCost)
		set, way := hashKey(key, sets)
		mAddr := g.slotAddr(mirror, set, way)
		var val uint64
		if t.LoadU64(mAddr) == key {
			val = t.LoadU64(mAddr + 8)
		}
		t.StoreU64(out+uint64(i)*8, val)
	})
}

func (g *GpKVS) setTxFlag(env *workloads.Env, on bool) {
	v := uint64(0)
	if on {
		v = 1
	}
	env.Ctx.RunCPU("tx-flag", 1, func(t *cpusim.Thread) {
		t.WriteU64(g.txFile.Mmap(), v)
		t.PersistRange(g.txFile.Mmap(), 8)
	})
}

// Run implements workloads.Workload: execute every batch as a transaction.
func (g *GpKVS) Run(env *workloads.Env) error {
	for bi := range g.work {
		if err := g.runBatch(env, bi, -1); err != nil {
			return err
		}
		g.commitModel(bi)
	}
	return nil
}

// runBatch executes one transaction; abortAfterOps >= 0 arms the fault
// injector for the SET kernel.
func (g *GpKVS) runBatch(env *workloads.Env, bi int, abortAfterOps int64) error {
	b := &g.work[bi]
	g.stageBatch(env, b)
	mode := env.Mode
	logging := (mode.UsesGPM() || mode == workloads.GPMNDP) && len(b.setKeys) > 0
	direct := mode.UsesGPM() || mode == workloads.GPMNDP

	if logging {
		g.setTxFlag(env, true)
	}
	env.PersistKernelBegin()
	if abortAfterOps >= 0 {
		env.Ctx.Dev.SetAbortCheck(func(op int64) bool { return op >= abortAfterOps })
	}
	err := g.setKernel(env, len(b.setKeys), logging, direct, mode.UsesGPM())
	if err == nil {
		err = g.deleteKernel(env, len(b.delKeys), logging, direct, mode.UsesGPM())
	}
	crashed := false
	if abortAfterOps >= 0 {
		crashed = true
		env.Ctx.Dev.SetAbortCheck(nil)
	}
	if err != nil {
		return err
	}
	if !crashed {
		g.getKernel(env, len(b.getKeys))
	}
	env.PersistKernelEnd()
	if crashed {
		return nil
	}

	// The host side of the store (a MegaKV-style server) parses requests
	// and assembles responses for every operation, on either system.
	totalOps := len(b.setKeys) + len(b.getKeys) + len(b.delKeys)
	env.Ctx.RunCPU("kvs-serve", env.Cfg.CAPThreads, func(t *cpusim.Thread) {
		per := (totalOps + t.N - 1) / t.N
		mine := per
		if t.ID*per+mine > totalOps {
			mine = totalOps - t.ID*per
		}
		if mine > 0 {
			t.Compute(sim.Duration(mine) * hostOpCost)
		}
	})

	switch {
	case mode.UsesGPM():
		// Commit: truncate the log from a kernel (only threads that
		// logged write anything), then clear the flag (§5.2).
		log := g.log
		env.PersistKernelBegin()
		env.Ctx.Launch("kvs-logclear", g.blocks, kvsTPB, func(t *gpu.Thread) {
			log.ClearIfUsed(t)
		})
		env.PersistKernelEnd()
		g.setTxFlag(env, false)
	case mode == workloads.GPMNDP:
		// The kernel stored to PM directly, but the CPU must flush to
		// guarantee durability — and it cannot know which slots the
		// kernel updated (the indices are computed in the kernel, §3.2),
		// so the whole store gets flushed.
		env.Cap.FlushOnly(g.pmFile.Mmap(), g.storeBytes())
		g.log.HostClearAll()
		g.setTxFlag(env, false)
	default:
		// CAP: no byte-grained path — the store ships to the CPU in
		// pre-defined large sections covering the updated entries
		// (§3.2: "the entire KVS (or sections of it)"). A 100%-SET
		// batch touches essentially every section, producing Table 4's
		// ~39× amplification; the 95:5 mix touches only a few, which is
		// why its GPM advantage moderates (§6.1).
		for _, run := range g.touchedSections(b) {
			if err := workloads.PersistBuffer(env, g.pmFile, run.off, g.mirror+uint64(run.off), run.n); err != nil {
				return err
			}
		}
	}
	env.CountOps(int64(len(b.setKeys) + len(b.getKeys) + len(b.delKeys)))
	return nil
}

// kvsSection is the granularity at which CAP ships the store (16 KB
// pre-defined chunks).
const kvsSection = 16 << 10

type secRun struct{ off, n int64 }

// touchedSections returns the merged section runs a batch's SETs touch.
func (g *GpKVS) touchedSections(b *batch) []secRun {
	nSections := (g.storeBytes() + kvsSection - 1) / kvsSection
	touched := make([]bool, nSections)
	for _, keys := range [][]uint64{b.setKeys, b.delKeys} {
		for _, key := range keys {
			set, way := hashKey(key, g.sets)
			touched[int64(set*ways+way)*pairBytes/kvsSection] = true
		}
	}
	var runs []secRun
	for s := int64(0); s < nSections; s++ {
		if !touched[s] {
			continue
		}
		e := s
		for e+1 < nSections && touched[e+1] {
			e++
		}
		off := s * kvsSection
		end := (e + 1) * kvsSection
		if end > g.storeBytes() {
			end = g.storeBytes()
		}
		runs = append(runs, secRun{off, end - off})
		s = e
	}
	return runs
}

// commitModel applies batch bi to the host model.
func (g *GpKVS) commitModel(bi int) {
	b := &g.work[bi]
	for i, key := range b.setKeys {
		set, way := hashKey(key, g.sets)
		slot := set*ways + way
		g.model[slot*2] = key
		g.model[slot*2+1] = b.setVals[i]
	}
	for _, key := range b.delKeys {
		set, way := hashKey(key, g.sets)
		slot := set*ways + way
		if g.model[slot*2] == key {
			g.model[slot*2] = 0
			g.model[slot*2+1] = 0
		}
	}
	g.committed = bi + 1
}

// Verify implements workloads.Workload: the DURABLE store must equal the
// model after the last committed batch, and the last batch's GETs must have
// returned the modeled values.
func (g *GpKVS) Verify(env *workloads.Env) error {
	snap := env.Ctx.Space.SnapshotPersistent(g.pmFile.Mmap(), int(g.storeBytes()))
	for slot := 0; slot < g.sets*ways; slot++ {
		key := binary.LittleEndian.Uint64(snap[slot*pairBytes:])
		val := binary.LittleEndian.Uint64(snap[slot*pairBytes+8:])
		if key != g.model[slot*2] || val != g.model[slot*2+1] {
			return fmt.Errorf("kvs: durable slot %d = (%d,%d), want (%d,%d)",
				slot, key, val, g.model[slot*2], g.model[slot*2+1])
		}
	}
	// GET results of the last batch (volatile check; GETs do not persist,
	// so there is nothing to compare after a crash).
	if g.committed > 0 && !g.crashed {
		b := &g.work[g.committed-1]
		for i, want := range b.getExpect {
			got := env.Ctx.Space.ReadU64(g.outB + uint64(i)*8)
			if got != want {
				return fmt.Errorf("kvs: GET[%d] = %d, want %d", i, got, want)
			}
		}
	}
	return nil
}

// RunUntilCrash implements workloads.Crasher: commit some batches, then
// crash mid-transaction in the next one (worst case: just before commit,
// §6.2).
func (g *GpKVS) RunUntilCrash(env *workloads.Env, abortAfterOps int64) error {
	if !env.Mode.UsesGPM() {
		return fmt.Errorf("kvs: crash study requires a GPM mode")
	}
	g.crashed = true
	for bi := 0; bi < g.batches-1; bi++ {
		if err := g.runBatch(env, bi, -1); err != nil {
			return err
		}
		g.commitModel(bi)
	}
	return g.runBatch(env, g.batches-1, abortAfterOps)
}

// Recover implements workloads.Crasher: if the durable transaction flag is
// set, launch the Fig 6b recovery kernel to undo the partial batch.
func (g *GpKVS) Recover(env *workloads.Env) error {
	start := env.Ctx.Timeline.Total()
	snap := env.Ctx.Space.SnapshotPersistent(g.txFile.Mmap(), 8)
	if binary.LittleEndian.Uint64(snap) == 0 {
		return nil // crash outside a transaction: nothing to undo
	}
	log, err := env.Ctx.LogOpen("/pm/kvs.log")
	if err != nil {
		return err
	}
	g.log = log
	pm := g.pmFile.Mmap()
	sets := g.sets
	env.Ctx.PersistBegin()
	var kerr error
	env.Ctx.Launch("kvs-recover", g.blocks, kvsTPB, func(t *gpu.Thread) {
		// A thread may have logged more than one entry in the aborted
		// batch (e.g. one SET and one DELETE share its slot range); undo
		// them newest-first until its log is empty.
		var entry [logEntryBytes]byte
		for log.Read(t, entry[:], -1) == nil {
			set := int(binary.LittleEndian.Uint32(entry[0:]))
			way := int(binary.LittleEndian.Uint32(entry[4:]))
			if set >= sets || way >= ways {
				kerr = fmt.Errorf("kvs: corrupt log entry (set=%d way=%d)", set, way)
				return
			}
			addr := g.slotAddr(pm, set, way)
			t.StoreU64(addr, binary.LittleEndian.Uint64(entry[8:]))
			t.StoreU64(addr+8, binary.LittleEndian.Uint64(entry[16:]))
			gpm.Persist(t)
			// Remove the entry only after the undo is durable (Fig 6b).
			if err := log.Remove(t, logEntryBytes, -1); err != nil {
				kerr = err
				return
			}
		}
	})
	env.Ctx.PersistEnd()
	if kerr != nil {
		return kerr
	}
	g.setTxFlag(env, false)
	env.AddRestore(env.Ctx.Timeline.Total() - start)
	return nil
}

func u64Bytes(vals []uint64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out
}
