package kvstore

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Style selects which commercial/academic PM key-value store a CPUKVS run
// emulates (the Fig 1a baselines).
type Style int

// CPU KVS styles.
const (
	// StylePmemKV: Intel pmemKV's concurrent hashmap — in-place PM
	// writes under striped locks, flush+drain per operation.
	StylePmemKV Style = iota
	// StyleRocksDB: RocksDB on PM — every SET appends a WAL record that
	// must be persisted (and the WAL serializes per shard) before the
	// memtable insert.
	StyleRocksDB
	// StyleMatrixKV: MatrixKV — WAL-free writes into a PM-resident L0
	// "matrix container" with column-append (sequential PM writes), a
	// DRAM index, and lighter per-op software overhead than RocksDB.
	StyleMatrixKV
)

func (s Style) String() string {
	switch s {
	case StylePmemKV:
		return "pmemKV"
	case StyleRocksDB:
		return "RocksDB-pmem"
	case StyleMatrixKV:
		return "MatrixKV"
	default:
		return "unknown"
	}
}

// Per-operation software overheads (index maintenance, allocator,
// transaction management), calibrated to the relative heights of Fig 1a.
func (s Style) opOverhead() sim.Duration {
	switch s {
	case StylePmemKV:
		return 6 * sim.Microsecond
	case StyleRocksDB:
		return 13 * sim.Microsecond
	default: // MatrixKV
		return 7500 * sim.Nanosecond
	}
}

// CPUKVS is a multi-threaded CPU PM key-value store executing the same
// batched SETs as gpKVS.
type CPUKVS struct {
	Style   Style
	Threads int

	sets, batches, opsPerBatch int
	pmFile                     *fsim.File
	walFile                    *fsim.File
	l0File                     *fsim.File

	work  []batch
	model []uint64

	memtable sync.Map // RocksDB/MatrixKV styles: volatile index
	walOff   []int64  // per-shard WAL offsets
	l0Off    int64
}

// NewCPU returns a CPU KVS baseline of the given style.
func NewCPU(style Style) *CPUKVS { return &CPUKVS{Style: style} }

// Name implements workloads.Workload.
func (c *CPUKVS) Name() string { return c.Style.String() }

// Class implements workloads.Workload.
func (c *CPUKVS) Class() string { return "transactional" }

// Supports implements workloads.Workload.
func (c *CPUKVS) Supports(mode workloads.Mode) bool { return mode == workloads.CPUOnly }

// Setup implements workloads.Workload.
func (c *CPUKVS) Setup(env *workloads.Env) error {
	cfg := env.Cfg
	c.sets, c.batches, c.opsPerBatch = cfg.KVSSets, cfg.KVSBatches, cfg.KVSOpsPerBatch
	c.Threads = cfg.CAPThreads
	storeBytes := int64(c.sets) * ways * pairBytes
	var err error
	if c.pmFile, err = env.Ctx.FS.Create("/pm/cpukvs.store", storeBytes, 0); err != nil {
		return err
	}
	if c.walFile, err = env.Ctx.FS.Create("/pm/cpukvs.wal", storeBytes, 0); err != nil {
		return err
	}
	if c.l0File, err = env.Ctx.FS.Create("/pm/cpukvs.l0", storeBytes, 0); err != nil {
		return err
	}
	c.walOff = make([]int64, c.Threads)
	c.model = make([]uint64, c.sets*ways*2)
	env.Ctx.Space.PersistRange(c.pmFile.Mmap(), int(storeBytes))

	// Same batch generator as gpKVS (unique slots per batch).
	g := &GpKVS{}
	g.sets, g.batches, g.opsPerBatch = c.sets, c.batches, c.opsPerBatch
	g.model = make([]uint64, len(c.model))
	tmp := &workloads.Env{RNG: env.RNG, Cfg: cfg}
	if err := genBatches(g, tmp); err != nil {
		return err
	}
	c.work = g.work
	return nil
}

// Run implements workloads.Workload.
func (c *CPUKVS) Run(env *workloads.Env) error {
	walShardBytes := c.walFile.Size() / int64(c.Threads)
	for bi := range c.work {
		b := &c.work[bi]
		nOps := len(b.setKeys)
		env.Ctx.RunCPU("cpu-kvs", c.Threads, func(t *cpusim.Thread) {
			base := c.pmFile.Mmap()
			for i := t.ID; i < nOps; i += t.N {
				key, val := b.setKeys[i], b.setVals[i]
				set, way := hashKey(key, c.sets)
				addr := base + uint64((set*ways+way)*pairBytes)
				t.Compute(c.Style.opOverhead())
				switch c.Style {
				case StylePmemKV:
					// In-place persistent hashmap update.
					t.WriteU64(addr, key)
					t.WriteU64(addr+8, val)
					t.PersistRange(addr, pairBytes)
				case StyleRocksDB:
					// WAL append (persisted) then memtable insert.
					woff := uint64(int64(t.ID)*walShardBytes) + uint64(c.walOffAt(t.ID))
					t.WriteU64(c.walFile.Mmap()+woff, key)
					t.WriteU64(c.walFile.Mmap()+woff+8, val)
					t.PersistRange(c.walFile.Mmap()+woff, pairBytes)
					c.bumpWAL(t.ID, pairBytes)
					c.memtable.Store(key, val)
					// Background compaction eventually reaches the
					// store; model its PM traffic in place.
					t.WriteU64(addr, key)
					t.WriteU64(addr+8, val)
					t.PersistRange(addr, pairBytes)
				case StyleMatrixKV:
					// WAL-free: sequential column append into the L0
					// matrix container plus a DRAM index.
					loff := c.bumpL0(pairBytes)
					t.WriteU64(c.l0File.Mmap()+uint64(loff), key)
					t.WriteU64(c.l0File.Mmap()+uint64(loff)+8, val)
					t.PersistRange(c.l0File.Mmap()+uint64(loff), pairBytes)
					c.memtable.Store(key, val)
					// Flush to the main store batched (sequentialized).
					t.WriteU64(addr, key)
					t.WriteU64(addr+8, val)
					t.PersistRange(addr, pairBytes)
				}
			}
		})
		for i, key := range b.setKeys {
			set, way := hashKey(key, c.sets)
			slot := set*ways + way
			c.model[slot*2] = key
			c.model[slot*2+1] = b.setVals[i]
		}
		env.CountOps(int64(nOps))
	}
	return nil
}

var walMu sync.Mutex

func (c *CPUKVS) walOffAt(shard int) int64 {
	walMu.Lock()
	defer walMu.Unlock()
	return c.walOff[shard]
}

func (c *CPUKVS) bumpWAL(shard int, n int64) {
	walMu.Lock()
	c.walOff[shard] += n
	walMu.Unlock()
}

func (c *CPUKVS) bumpL0(n int64) int64 {
	walMu.Lock()
	defer walMu.Unlock()
	off := c.l0Off
	c.l0Off = (c.l0Off + n) % (c.l0File.Size() - pairBytes)
	return off
}

// Verify implements workloads.Workload.
func (c *CPUKVS) Verify(env *workloads.Env) error {
	snap := env.Ctx.Space.SnapshotPersistent(c.pmFile.Mmap(), int(c.pmFile.Size()))
	for slot := 0; slot < c.sets*ways; slot++ {
		key := binary.LittleEndian.Uint64(snap[slot*pairBytes:])
		val := binary.LittleEndian.Uint64(snap[slot*pairBytes+8:])
		if key != c.model[slot*2] || val != c.model[slot*2+1] {
			return fmt.Errorf("%s: durable slot %d = (%d,%d), want (%d,%d)",
				c.Name(), slot, key, val, c.model[slot*2], c.model[slot*2+1])
		}
	}
	return nil
}

// genBatches runs the gpKVS batch generator against a bare environment.
func genBatches(g *GpKVS, env *workloads.Env) error {
	shadow := make([]uint64, g.sets*ways*2)
	nextKey := uint64(1)
	g.work = make([]batch, g.batches)
	for bi := range g.work {
		b := &g.work[bi]
		used := make(map[int]bool, g.opsPerBatch)
		for len(b.setKeys) < g.opsPerBatch {
			key := nextKey
			nextKey++
			set, way := hashKey(key, g.sets)
			slot := set*ways + way
			if used[slot] {
				continue
			}
			used[slot] = true
			val := key*2654435761 + 13
			b.setKeys = append(b.setKeys, key)
			b.setVals = append(b.setVals, val)
			shadow[slot*2] = key
			shadow[slot*2+1] = val
		}
	}
	_ = env
	return nil
}
