package kvstore

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func TestGpKVSModes(t *testing.T) {
	for _, m := range []workloads.Mode{
		workloads.GPM, workloads.CAPfs, workloads.CAPmm,
		workloads.GPMNDP, workloads.GPMeADR, workloads.CAPeADR,
	} {
		t.Run(m.String(), func(t *testing.T) {
			if _, err := workloads.RunOne(New(), m, workloads.QuickConfig()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGpKVSMixedWorkload(t *testing.T) {
	for _, m := range []workloads.Mode{workloads.GPM, workloads.CAPmm} {
		if _, err := workloads.RunOne(NewMixed(), m, workloads.QuickConfig()); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestGpKVSUnsupportedModes(t *testing.T) {
	for _, m := range []workloads.Mode{workloads.GPUfs, workloads.CPUOnly} {
		if _, err := workloads.RunOne(New(), m, workloads.QuickConfig()); err == nil {
			t.Errorf("gpKVS should not run on %v", m)
		}
	}
}

func TestGpKVSWriteAmplification(t *testing.T) {
	// Table 4: CAP persists the entire store per batch; GPM persists
	// only the updated pairs plus logs (39× in the paper).
	cfg := workloads.QuickConfig()
	g, err := workloads.RunOne(New(), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := workloads.RunOne(New(), workloads.CAPmm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wa := float64(mm.PMBytes) / float64(g.PMBytes)
	if wa < 2 {
		t.Errorf("gpKVS write amplification = %.1fx, want substantial (paper: 39x)", wa)
	}
}

func TestGpKVSGPMFasterThanCAP(t *testing.T) {
	cfg := workloads.QuickConfig()
	g, _ := workloads.RunOne(New(), workloads.GPM, cfg)
	fs, err := workloads.RunOne(New(), workloads.CAPfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.OpTime >= fs.OpTime {
		t.Errorf("GPM %v not faster than CAP-fs %v", g.OpTime, fs.OpTime)
	}
}

func TestGpKVSRandomWritePattern(t *testing.T) {
	// §6.1 / Fig 12: KVS updates are sparse and unaligned, so PM sees a
	// random access pattern and low bandwidth.
	r, err := workloads.RunOne(New(), workloads.GPM, workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.SeqFrac > 0.5 {
		t.Errorf("gpKVS writes are %.0f%% sequential; expected random", r.SeqFrac*100)
	}
}

func TestGpKVSCrashRecovery(t *testing.T) {
	// Crash mid-batch just before commit; the recovery kernel must undo
	// the partial batch (Fig 6b).
	r, err := workloads.RunWithCrash(New(), workloads.GPM, workloads.QuickConfig(), 40000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restoration latency recorded")
	}
}

func TestGpKVSHCLFasterThanConvLog(t *testing.T) {
	// Fig 11a: gpKVS speeds up 3.3× with HCL over conventional logging.
	cfg := workloads.QuickConfig()
	hcl, err := workloads.RunOne(New(), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := workloads.RunOne(&GpKVS{ConvLog: true}, workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hcl.OpTime >= conv.OpTime {
		t.Errorf("HCL (%v) not faster than conventional logging (%v)", hcl.OpTime, conv.OpTime)
	}
}

func TestCPUKVSStyles(t *testing.T) {
	for _, s := range []Style{StylePmemKV, StyleRocksDB, StyleMatrixKV} {
		t.Run(s.String(), func(t *testing.T) {
			r, err := workloads.RunOne(NewCPU(s), workloads.CPUOnly, workloads.QuickConfig())
			if err != nil {
				t.Fatal(err)
			}
			if r.Throughput() <= 0 {
				t.Error("no throughput")
			}
		})
	}
}

func TestFig1aOrdering(t *testing.T) {
	// Fig 1a: gpKVS on GPM beats every CPU PM KVS; RocksDB is slowest.
	cfg := workloads.QuickConfig()
	g, err := workloads.RunOne(New(), workloads.GPM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pk, _ := workloads.RunOne(NewCPU(StylePmemKV), workloads.CPUOnly, cfg)
	rd, _ := workloads.RunOne(NewCPU(StyleRocksDB), workloads.CPUOnly, cfg)
	mx, _ := workloads.RunOne(NewCPU(StyleMatrixKV), workloads.CPUOnly, cfg)
	if g.Throughput() <= pk.Throughput() || g.Throughput() <= rd.Throughput() || g.Throughput() <= mx.Throughput() {
		t.Errorf("gpKVS %.2f Mops/s should beat CPU KVS (%.2f, %.2f, %.2f)",
			g.Throughput()/1e6, pk.Throughput()/1e6, rd.Throughput()/1e6, mx.Throughput()/1e6)
	}
	if rd.Throughput() >= pk.Throughput() {
		t.Errorf("RocksDB-pmem (%.2f) should be slower than pmemKV (%.2f)",
			rd.Throughput()/1e6, pk.Throughput()/1e6)
	}
}

func TestGpKVSWithDeletes(t *testing.T) {
	// DELETEs are undo-logged transactions like SETs; the durable store
	// must reflect committed deletions exactly.
	w := &GpKVS{DeleteFraction: 0.3}
	r, err := workloads.RunOne(w, workloads.GPM, workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatal("no ops")
	}
	deleted := 0
	for bi := 1; bi < len(w.work); bi++ {
		deleted += len(w.work[bi].delKeys)
	}
	if deleted == 0 {
		t.Fatal("no deletes generated; the test exercised nothing")
	}
}

func TestGpKVSDeletesUnderCAP(t *testing.T) {
	if _, err := workloads.RunOne(&GpKVS{DeleteFraction: 0.25}, workloads.CAPmm, workloads.QuickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestGpKVSDeleteCrashRecovery(t *testing.T) {
	// A crash mid-batch with deletes in flight must roll back to the last
	// committed state (deleted keys restored by the undo log).
	r, err := workloads.RunWithCrash(&GpKVS{DeleteFraction: 0.3}, workloads.GPM, workloads.QuickConfig(), 40000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Restore <= 0 {
		t.Error("no restore recorded")
	}
}
