package kvstore

// Exported seams for the network front-end (internal/serve). The serving
// layer batches client operations into the same kernels as the gpKVS
// workload, so it must share the store geometry and hash bit-for-bit —
// re-deriving either would silently fork the on-PM layout.
const (
	// Ways is the store's set associativity.
	Ways = ways
	// PairBytes is the on-PM size of one key/value slot.
	PairBytes = pairBytes
	// ThreadGroup is the number of threads cooperating per SET (Fig 6a).
	ThreadGroup = thrdGrpSz
	// TPB is the threads-per-block of the KVS kernels.
	TPB = kvsTPB
	// LogEntryBytes is the HCL undo-log entry size (set, way, old pair).
	LogEntryBytes = logEntryBytes
	// GPUOpCost is the per-thread hash+probe cost.
	GPUOpCost = gpuOpCost
	// HostOpCost is the host-side request/response handling cost per op.
	HostOpCost = hostOpCost
	// Section is the granularity at which CAP modes ship the store.
	Section = kvsSection
)

// HashKey maps a key to its (set, way) slot coordinates; shared bit-for-bit
// by host code and kernels.
func HashKey(key uint64, sets int) (set, way int) { return hashKey(key, sets) }
