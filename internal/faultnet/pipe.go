package faultnet

import (
	"fmt"
	"net"
	"sync"
)

// PipeListener is an in-memory transport for chaos campaigns and tests: a
// net.Listener whose Accept hands out the server end of a net.Pipe each
// time Dial is called. No sockets, no kernel buffering, no ports — a
// campaign of hundreds of server instances runs without touching the
// network stack, and faultnet wrappers compose on either end.
type PipeListener struct {
	ch     chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// NewPipeListener returns an open in-memory listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

// Dial opens one connection pair, returning the client end (the server end
// is delivered to Accept). Fails once the listener is closed.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("faultnet: pipe listener closed")
	}
}

// Accept implements net.Listener.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener; concurrent and repeated calls are safe.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// pipeAddr is the fixed address pipes report.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// Addr implements net.Listener.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }
