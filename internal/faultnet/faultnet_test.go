package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// drive pushes a fixed script of lines through a wrapped pipe connection
// and returns the fault trace plus the bytes the peer received.
func drive(t *testing.T, sched Schedule, seed, connID uint64, lines int) ([]Fault, []byte) {
	t.Helper()
	client, server := net.Pipe()
	fc := Wrap(client, sched, seed, connID, nil)

	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(&got, server)
	}()

	for i := 0; i < lines; i++ {
		if _, err := fc.Write([]byte(fmt.Sprintf("SET %d %d\n", i+1, i+100))); err != nil {
			break // injected reset ends the script, as it would a real client
		}
	}
	fc.Close()
	server.Close()
	wg.Wait()
	return fc.Faults(), got.Bytes()
}

// TestDeterministicPlacement is the faultnet contract: the same (seed,
// schedule, connID) produces a byte-identical fault trace AND delivers a
// byte-identical stream, run after run (and under -cpu=1,4, which reruns
// the whole test at different GOMAXPROCS).
func TestDeterministicPlacement(t *testing.T) {
	for _, sched := range Schedules() {
		sched := sched
		// Zero the timing components so the test doesn't sleep; placement
		// indices and split offsets are what determinism is about.
		sched.Latency, sched.Stall, sched.PartialPause = 0, 0, 0
		t.Run(sched.Name, func(t *testing.T) {
			for connID := uint64(1); connID <= 3; connID++ {
				f1, b1 := drive(t, sched, 42, connID, 40)
				f2, b2 := drive(t, sched, 42, connID, 40)
				if !reflect.DeepEqual(f1, f2) {
					t.Fatalf("conn %d: fault traces differ:\n%v\n%v", connID, f1, f2)
				}
				if !bytes.Equal(b1, b2) {
					t.Fatalf("conn %d: delivered bytes differ (%d vs %d bytes)", connID, len(b1), len(b2))
				}
			}
		})
	}
}

// TestSeedChangesPlacement: different seeds must move the faults (no
// accidental seed-independence).
func TestSeedChangesPlacement(t *testing.T) {
	sched, err := ScheduleByName("chaos")
	if err != nil {
		t.Fatal(err)
	}
	sched.Latency, sched.Stall, sched.PartialPause = 0, 0, 0
	f1, _ := drive(t, sched, 1, 1, 40)
	f2, _ := drive(t, sched, 2, 1, 40)
	if reflect.DeepEqual(f1, f2) {
		t.Fatalf("seed 1 and seed 2 produced identical traces: %v", f1)
	}
}

// TestDupDeliversWholeLines: duplication must retransmit complete lines,
// never tear one.
func TestDupDeliversWholeLines(t *testing.T) {
	sched := Schedule{Name: "dup-test", DupEvery: 2}
	faults, got := drive(t, sched, 7, 1, 6)
	var dups int
	for _, f := range faults {
		if f.Kind == "dup" {
			dups++
		}
	}
	if dups != 3 {
		t.Fatalf("expected 3 duplicated lines of 6, got %d (%v)", dups, faults)
	}
	lines := bytes.Split(bytes.TrimSuffix(got, []byte("\n")), []byte("\n"))
	if len(lines) != 9 {
		t.Fatalf("expected 9 delivered lines (6 + 3 dups), got %d: %q", len(lines), got)
	}
	seen := map[string]int{}
	for _, ln := range lines {
		if !bytes.HasPrefix(ln, []byte("SET ")) {
			t.Fatalf("torn or corrupt line delivered: %q", ln)
		}
		seen[string(ln)]++
	}
	for ln, n := range seen {
		if n > 2 {
			t.Fatalf("line %q delivered %d times, max is 2", ln, n)
		}
	}
}

// TestDupBuffersPartialTail: a Write ending mid-line holds the tail until
// the line completes, then delivers it intact.
func TestDupBuffersPartialTail(t *testing.T) {
	client, server := net.Pipe()
	fc := Wrap(client, Schedule{DupEvery: 100}, 1, 1, nil)
	var got bytes.Buffer
	done := make(chan struct{})
	go func() { io.Copy(&got, server); close(done) }()

	if _, err := fc.Write([]byte("SET 1 ")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("99\nPING\n")); err != nil {
		t.Fatal(err)
	}
	fc.Close()
	server.Close()
	<-done
	if got.String() != "SET 1 99\nPING\n" {
		t.Fatalf("reassembled stream = %q", got.String())
	}
}

// TestResetKillsConn: after the scheduled reset, the wrapped side errors
// with ErrInjectedReset and the peer sees a closed stream; only a prefix
// of the fatal write is delivered.
func TestResetKillsConn(t *testing.T) {
	sched := Schedule{Name: "reset-test", ResetProb: 1, ResetAfterMin: 3, ResetAfterMax: 3}
	faults, got := drive(t, sched, 9, 1, 10)
	if len(faults) != 1 || faults[0].Kind != "reset" || faults[0].Index != 3 {
		t.Fatalf("expected exactly one reset at write 3, got %v", faults)
	}
	// Two full lines, then at most a prefix of the third.
	want2 := []byte("SET 1 100\nSET 2 101\n")
	if !bytes.HasPrefix(got, want2[:len(want2)]) {
		t.Fatalf("pre-reset lines not delivered intact: %q", got)
	}
	if len(got) > len(want2)+len("SET 3 102\n") {
		t.Fatalf("bytes delivered after the reset: %q", got)
	}
	// Writes after a reset fail immediately.
	c2, s2 := net.Pipe()
	defer s2.Close()
	fc := Wrap(c2, sched, 9, 1, nil)
	go io.Copy(io.Discard, s2)
	for i := 0; i < 4; i++ {
		fc.Write([]byte("x\n"))
	}
	if _, err := fc.Write([]byte("y\n")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write err = %v, want ErrInjectedReset", err)
	}
}

// TestStatsAggregate: listener-level counters see every connection.
func TestStatsAggregate(t *testing.T) {
	pl := NewPipeListener()
	fl := WrapListener(pl, Schedule{DupEvery: 1}, 5)
	defer fl.Close()
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, c)
				c.Close()
			}()
		}
	}()
	for i := 0; i < 3; i++ {
		// Dial returns the raw client end; the wrapped (faulted) end lives
		// server-side, where the listener wraps it... so write through it.
		c, err := pl.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c.Write([]byte("PING\n"))
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for fl.Stats().Conns() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fl.Stats().Conns() != 3 {
		t.Fatalf("listener wrapped %d conns, want 3", fl.Stats().Conns())
	}
}

// TestPipeListener: dial/accept pair round-trips and Close unblocks both.
func TestPipeListener(t *testing.T) {
	pl := NewPipeListener()
	go func() {
		c, err := pl.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c) // echo
		c.Close()
	}()
	c, err := pl.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "hello\n" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	c.Close()
	pl.Close()
	if _, err := pl.Dial(); err == nil {
		t.Fatal("dial after close succeeded")
	}
	if _, err := pl.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close = %v, want net.ErrClosed", err)
	}
}
