// Package faultnet is the network analogue of pmem.FaultModel: a
// schedule-driven fault-injecting net.Conn / net.Listener / dialer wrapper
// whose fault placement is a pure function of (seed, schedule, connection
// index, operation index). The same (seed, schedule) pair always produces
// byte-identical fault placement on a given connection stream — injected
// latency, read stalls, partial writes, mid-write connection resets, and
// duplicate delivery of complete protocol lines — so a chaos run that
// breaks the serving stack is replayable from its tuple alone.
//
// Wrappers never reorder or corrupt delivered bytes: every fault is one a
// correct TCP application must already survive (slowness, a torn final
// line at a reset, a retransmitted request line). Anything stronger —
// silent corruption, reordering within a stream — would be a bug in the
// transport, not in the application under test, and is out of scope.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is returned from Read/Write on a connection the
// schedule reset. The peer observes a plain close (EOF / write error).
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Schedule parameterizes deterministic fault placement on one wrapped
// connection. Zero values disable each fault class; the zero Schedule is a
// transparent pass-through. Strides count per-connection operations
// (writes for write-side faults, reads for stalls), so placement never
// depends on wall time or scheduling.
type Schedule struct {
	Name string `json:"name"`

	// LatencyEvery injects Latency before every Nth Write (1 = every write).
	LatencyEvery int64         `json:"latency_every,omitempty"`
	Latency      time.Duration `json:"latency,omitempty"`

	// StallEvery injects Stall before every Nth Read.
	StallEvery int64         `json:"stall_every,omitempty"`
	Stall      time.Duration `json:"stall,omitempty"`

	// PartialEvery splits every Nth Write at an RNG-drawn offset, delivering
	// the two halves with PartialPause between them (a torn TCP segment).
	PartialEvery int64         `json:"partial_every,omitempty"`
	PartialPause time.Duration `json:"partial_pause,omitempty"`

	// ResetProb is the per-connection probability that a mid-write reset
	// fires at all; when it does, the write index is drawn uniformly from
	// [ResetAfterMin, ResetAfterMax] and that write delivers only an
	// RNG-drawn prefix before the connection closes in both directions.
	ResetProb     float64 `json:"reset_prob,omitempty"`
	ResetAfterMin int64   `json:"reset_after_min,omitempty"`
	ResetAfterMax int64   `json:"reset_after_max,omitempty"`

	// DupEvery delivers every Nth complete written line twice (the network
	// analogue of a retransmitted request). When set, the wrapper becomes
	// line-buffered: bytes after the last '\n' of a Write are held until
	// their line completes, so duplication can never tear a line.
	DupEvery int64 `json:"dup_every,omitempty"`
}

// Active reports whether the schedule injects anything at all.
func (s Schedule) Active() bool {
	return s.LatencyEvery > 0 || s.StallEvery > 0 || s.PartialEvery > 0 ||
		s.ResetProb > 0 || s.DupEvery > 0
}

// Built-in schedules, ordered mildest to nastiest. Timing faults are kept
// small (hundreds of microseconds) so chaos campaigns stay fast; the
// correctness-relevant faults are the resets and duplicates.
func builtinSchedules() []Schedule {
	return []Schedule{
		{Name: "clean"},
		{
			Name:         "slow",
			LatencyEvery: 7, Latency: 200 * time.Microsecond,
			StallEvery: 5, Stall: 300 * time.Microsecond,
			PartialEvery: 3, PartialPause: 50 * time.Microsecond,
		},
		{
			Name:      "flaky",
			ResetProb: 0.7, ResetAfterMin: 4, ResetAfterMax: 24,
			PartialEvery: 4, PartialPause: 50 * time.Microsecond,
		},
		{
			Name:       "dup",
			DupEvery:   3,
			StallEvery: 9, Stall: 100 * time.Microsecond,
		},
		{
			Name:         "chaos",
			LatencyEvery: 11, Latency: 150 * time.Microsecond,
			StallEvery: 7, Stall: 150 * time.Microsecond,
			PartialEvery: 5, PartialPause: 30 * time.Microsecond,
			ResetProb: 0.5, ResetAfterMin: 8, ResetAfterMax: 40,
			DupEvery: 5,
		},
	}
}

// Schedules returns the built-in schedule set (clean, slow, flaky, dup,
// chaos), the sweep axis chaos campaigns iterate.
func Schedules() []Schedule { return builtinSchedules() }

// ScheduleNames lists the built-in schedule names, for CLI usage strings.
func ScheduleNames() []string {
	var names []string
	for _, s := range builtinSchedules() {
		names = append(names, s.Name)
	}
	return names
}

// ScheduleByName resolves a built-in schedule.
func ScheduleByName(name string) (Schedule, error) {
	var valid []string
	for _, s := range builtinSchedules() {
		if s.Name == name {
			return s, nil
		}
		valid = append(valid, s.Name)
	}
	return Schedule{}, fmt.Errorf("faultnet: unknown schedule %q (valid: %s)", name, strings.Join(valid, ", "))
}

// Fault is one recorded injection, for determinism assertions: the op
// index it fired at and an argument pinning its placement (split offset,
// delivered prefix length, duplicated line index).
type Fault struct {
	Op    string // "write" or "read"
	Index int64  // 1-based op index within the connection direction
	Kind  string // "latency", "stall", "partial", "reset", "dup"
	Arg   int64
}

// Stats aggregates injected faults across every connection of one wrapper
// (listener or dialer). All fields are atomics; read with the getters.
type Stats struct {
	conns, resets, dups, partials, stalls, latencies atomic.Int64
}

// Conns returns connections wrapped.
func (s *Stats) Conns() int64 { return s.conns.Load() }

// Resets returns injected connection resets.
func (s *Stats) Resets() int64 { return s.resets.Load() }

// Dups returns duplicated lines delivered.
func (s *Stats) Dups() int64 { return s.dups.Load() }

// Partials returns split writes.
func (s *Stats) Partials() int64 { return s.partials.Load() }

// Stalls returns injected read stalls.
func (s *Stats) Stalls() int64 { return s.stalls.Load() }

// Latencies returns injected write delays.
func (s *Stats) Latencies() int64 { return s.latencies.Load() }

// mix64 is the splitmix64 finalizer (the same bijective scramble the load
// generator uses), deriving independent per-connection seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rng is a private splitmix64 stream; faultnet cannot share sim.RNG state
// with anything else, or fault placement would depend on co-tenants.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// Conn wraps a net.Conn with schedule-driven faults. The write path and
// read path each keep their own op counter and may be driven from one
// goroutine each (the usual reader/writer split); the fault trace is
// internally locked.
type Conn struct {
	net.Conn
	sched Schedule
	stats *Stats

	writeIdx atomic.Int64
	readIdx  atomic.Int64
	resetAt  int64 // write index the reset fires at; 0 = never
	rmu      sync.Mutex
	wrng     rng // write-side draws (split offsets, reset prefix)
	lbuf     []byte
	lineIdx  int64
	isReset  atomic.Bool

	fmu    sync.Mutex
	faults []Fault
}

// Wrap places sched on c. connID selects the connection's deterministic
// fault stream: the same (seed, sched, connID) always yields the same
// placement, independent of timing, GOMAXPROCS, or other connections.
func Wrap(c net.Conn, sched Schedule, seed, connID uint64, stats *Stats) *Conn {
	fc := &Conn{Conn: c, sched: sched, stats: stats}
	fc.wrng = rng{s: mix64(seed ^ mix64(connID+0x6a09e667f3bcc909))}
	if sched.ResetProb > 0 && fc.wrng.float64() < sched.ResetProb {
		lo, hi := sched.ResetAfterMin, sched.ResetAfterMax
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		fc.resetAt = lo + fc.wrng.intn(hi-lo+1)
	}
	if stats != nil {
		stats.conns.Add(1)
	}
	return fc
}

func (c *Conn) record(f Fault) {
	c.fmu.Lock()
	c.faults = append(c.faults, f)
	c.fmu.Unlock()
}

// Faults returns a copy of the injection trace, in op order per direction.
func (c *Conn) Faults() []Fault {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	out := make([]Fault, len(c.faults))
	copy(out, c.faults)
	return out
}

// Read passes through with scheduled stalls.
func (c *Conn) Read(p []byte) (int, error) {
	if c.isReset.Load() {
		return 0, ErrInjectedReset
	}
	idx := c.readIdx.Add(1)
	if e := c.sched.StallEvery; e > 0 && idx%e == 0 {
		c.record(Fault{Op: "read", Index: idx, Kind: "stall", Arg: int64(c.sched.Stall)})
		if c.stats != nil {
			c.stats.stalls.Add(1)
		}
		time.Sleep(c.sched.Stall)
	}
	return c.Conn.Read(p)
}

// Write delivers p through the fault pipeline: latency, line duplication,
// a scheduled mid-write reset (prefix delivered, then close), or a split
// write. The returned count is the bytes of p consumed — all of them on
// any injected-fault path, so buffered writers above see ordinary
// semantics until a reset error surfaces.
func (c *Conn) Write(p []byte) (int, error) {
	if c.isReset.Load() {
		return 0, ErrInjectedReset
	}
	idx := c.writeIdx.Add(1)
	if e := c.sched.LatencyEvery; e > 0 && idx%e == 0 {
		c.record(Fault{Op: "write", Index: idx, Kind: "latency", Arg: int64(c.sched.Latency)})
		if c.stats != nil {
			c.stats.latencies.Add(1)
		}
		time.Sleep(c.sched.Latency)
	}

	emit := p
	if c.sched.DupEvery > 0 {
		emit = c.dupLines(idx, p)
		if emit == nil {
			return len(p), nil // incomplete line buffered; nothing on the wire yet
		}
	}

	if c.resetAt != 0 && idx >= c.resetAt {
		cut := c.wrng.intn(int64(len(emit)) + 1)
		if cut > 0 {
			c.Conn.Write(emit[:cut])
		}
		c.record(Fault{Op: "write", Index: idx, Kind: "reset", Arg: cut})
		if c.stats != nil {
			c.stats.resets.Add(1)
		}
		c.isReset.Store(true)
		c.Conn.Close()
		return len(p), ErrInjectedReset
	}

	if e := c.sched.PartialEvery; e > 0 && idx%e == 0 && len(emit) > 1 {
		cut := 1 + c.wrng.intn(int64(len(emit)-1))
		c.record(Fault{Op: "write", Index: idx, Kind: "partial", Arg: cut})
		if c.stats != nil {
			c.stats.partials.Add(1)
		}
		if _, err := c.Conn.Write(emit[:cut]); err != nil {
			return 0, err
		}
		time.Sleep(c.sched.PartialPause)
		if _, err := c.Conn.Write(emit[cut:]); err != nil {
			return 0, err
		}
		return len(p), nil
	}

	if _, err := c.Conn.Write(emit); err != nil {
		return 0, err
	}
	return len(p), nil
}

// dupLines folds p into the line buffer and returns the bytes to emit for
// this Write: every complete line once, except each DupEvery-th line of
// the connection, which is emitted twice. Returns nil when no line
// completed (the tail stays buffered).
func (c *Conn) dupLines(writeIdx int64, p []byte) []byte {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.lbuf = append(c.lbuf, p...)
	var out []byte
	for {
		nl := -1
		for i, b := range c.lbuf {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break
		}
		line := c.lbuf[:nl+1]
		c.lineIdx++
		out = append(out, line...)
		if c.lineIdx%c.sched.DupEvery == 0 {
			out = append(out, line...)
			c.record(Fault{Op: "write", Index: writeIdx, Kind: "dup", Arg: c.lineIdx})
			if c.stats != nil {
				c.stats.dups.Add(1)
			}
		}
		c.lbuf = append(c.lbuf[:0], c.lbuf[nl+1:]...)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Listener wraps a net.Listener so every accepted connection carries the
// schedule; connection IDs are assigned in accept order.
type Listener struct {
	net.Listener
	sched  Schedule
	seed   uint64
	nextID atomic.Uint64
	stats  Stats
}

// WrapListener places sched on every connection ln accepts.
func WrapListener(ln net.Listener, sched Schedule, seed uint64) *Listener {
	return &Listener{Listener: ln, sched: sched, seed: seed}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.sched, l.seed, l.nextID.Add(1), &l.stats), nil
}

// Stats exposes the listener's aggregate injection counters.
func (l *Listener) Stats() *Stats { return &l.stats }

// Dialer wraps a dial function so every outbound connection carries the
// schedule; connection IDs are assigned in dial order.
type Dialer struct {
	dial   func() (net.Conn, error)
	sched  Schedule
	seed   uint64
	nextID atomic.Uint64
	stats  Stats
}

// NewDialer wraps dial with sched. A nil-schedule dialer is transparent.
func NewDialer(dial func() (net.Conn, error), sched Schedule, seed uint64) *Dialer {
	return &Dialer{dial: dial, sched: sched, seed: seed}
}

// Dial opens one wrapped connection.
func (d *Dialer) Dial() (net.Conn, error) {
	c, err := d.dial()
	if err != nil {
		return nil, err
	}
	if !d.sched.Active() {
		return c, nil
	}
	return Wrap(c, d.sched, d.seed, d.nextID.Add(1), &d.stats), nil
}

// Stats exposes the dialer's aggregate injection counters.
func (d *Dialer) Stats() *Stats { return &d.stats }
