package pmem

import (
	"bytes"
	"testing"

	"github.com/gpm-sim/gpm/internal/sim"
)

// dirtyN writes a distinct byte pattern to n consecutive lines without
// persisting any of them, and returns the line addresses in write order.
func dirtyN(d *Device, n int) []uint64 {
	line := uint64(d.LineSize())
	addrs := make([]uint64, n)
	for i := 0; i < n; i++ {
		la := uint64(i) * line
		buf := make([]byte, line)
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		d.Write(la, buf)
		addrs[i] = la
	}
	return addrs
}

func TestFaultModelNames(t *testing.T) {
	for _, m := range Models() {
		got, err := ModelByName(m.Name())
		if err != nil {
			t.Fatalf("ModelByName(%q): %v", m.Name(), err)
		}
		if got.Name() != m.Name() {
			t.Errorf("ModelByName(%q).Name() = %q", m.Name(), got.Name())
		}
	}
	if _, err := ModelByName("no-such-model"); err == nil {
		t.Error("ModelByName accepted a bogus name")
	}
}

func TestCleanModelMatchesCrash(t *testing.T) {
	d := newDev(t)
	dirtyN(d, 8)
	st := d.CrashWith(Clean{}, 42)
	if st.DirtyLines != 8 || st.LinesRolledBack != 8 || st.LinesSurvived != 0 || st.WordsTorn != 0 {
		t.Errorf("clean crash stats: %+v", st)
	}
	buf := make([]byte, 8*d.LineSize())
	d.Read(0, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d after clean crash, want 0", i, b)
		}
	}
}

func TestTornLinesDeterministicAndWhole(t *testing.T) {
	run := func() ([]byte, CrashStats) {
		d := newDev(t)
		dirtyN(d, 64)
		st := d.CrashWith(TornLines{}, 7)
		buf := make([]byte, 64*d.LineSize())
		d.Read(0, buf)
		return buf, st
	}
	img1, st1 := run()
	img2, st2 := run()
	if !bytes.Equal(img1, img2) {
		t.Error("same seed produced different torn-lines images")
	}
	if st1 != st2 {
		t.Errorf("same seed produced different stats: %+v vs %+v", st1, st2)
	}
	if st1.LinesSurvived == 0 || st1.LinesRolledBack == 0 {
		t.Errorf("torn-lines over 64 lines should split: %+v", st1)
	}
	if st1.WordsTorn != 0 {
		t.Errorf("torn-lines must keep or roll whole lines, tore %d words", st1.WordsTorn)
	}
	// Lines survive or roll back whole: every byte of a line agrees.
	line := 64
	for i := 0; i < 64; i++ {
		first := img1[i*line]
		for j := 1; j < line; j++ {
			if img1[i*line+j] != first {
				t.Fatalf("line %d mixed bytes under torn-lines", i)
			}
		}
	}
}

func TestTornWordsTearWithinLines(t *testing.T) {
	d := newDev(t)
	dirtyN(d, 64)
	st := d.CrashWith(TornWords{}, 11)
	if st.WordsTorn == 0 {
		t.Errorf("torn-words over 64 lines tore nothing: %+v", st)
	}
	// Each 8-byte word is atomic: all bytes of a word agree.
	buf := make([]byte, 64*d.LineSize())
	d.Read(0, buf)
	for w := 0; w < len(buf)/8; w++ {
		first := buf[w*8]
		for j := 1; j < 8; j++ {
			if buf[w*8+j] != first {
				t.Fatalf("word %d mixed bytes under torn-words", w)
			}
		}
	}
}

func TestReorderKeepsPrefix(t *testing.T) {
	d := newDev(t)
	addrs := dirtyN(d, 32)
	d.CrashWith(Reorder{}, 5)
	// Surviving lines must form a prefix of the write order: once one line
	// rolls back, every later-written line must have rolled back too.
	line := uint64(d.LineSize())
	seenRollback := false
	survived := 0
	for i, la := range addrs {
		buf := make([]byte, line)
		d.Read(la, buf)
		alive := buf[0] == byte(i+1)
		if alive {
			if seenRollback {
				t.Fatalf("line %d survived after an earlier rollback (not a prefix)", i)
			}
			survived++
		} else {
			seenRollback = true
		}
	}
	t.Logf("reorder kept a %d/32 prefix", survived)
}

func TestSubsetFaultsOnlyPrefix(t *testing.T) {
	d := newDev(t)
	addrs := dirtyN(d, 16)
	// Fault only the first 4 dirty lines; the rest must roll back clean
	// even under an always-survive base model.
	d.CrashWith(Subset{Base: TornLines{P: 1}, Limit: 4}, 3)
	line := uint64(d.LineSize())
	for i, la := range addrs {
		buf := make([]byte, line)
		d.Read(la, buf)
		alive := buf[0] == byte(i+1)
		if i < 4 && !alive {
			t.Errorf("line %d inside the subset rolled back under P=1", i)
		}
		if i >= 4 && alive {
			t.Errorf("line %d outside the subset survived", i)
		}
	}
}

func TestPersistedLinesAreUntouchable(t *testing.T) {
	d := newDev(t)
	d.Write(0, []byte{1, 2, 3, 4})
	d.PersistRange(0, 4)
	d.CrashWith(TornLines{P: 0}, 9) // P=0: every dirty line rolls back
	got := make([]byte, 4)
	d.Read(0, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("persisted line changed by fault model: %v", got)
	}
}

func TestPowerFailLatchBlocksPersists(t *testing.T) {
	d := newDev(t)
	d.Write(0, []byte{1, 1, 1, 1})
	d.SetPowerFailed(true)
	d.PersistRange(0, 4)
	d.PersistAll()
	if d.DirtyLines() != 1 {
		t.Fatalf("persist went through while power-failed: %d dirty lines", d.DirtyLines())
	}
	d.Crash()
	got := make([]byte, 4)
	d.Read(0, got)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Errorf("write persisted across a power failure: %v", got)
	}
	if d.PowerFailed() {
		t.Error("crash did not clear the power-fail latch")
	}
}

func TestPostFailureWritesAlwaysRollBack(t *testing.T) {
	d := newDev(t)
	// Pre-failure dirty line: fair game for the fault model.
	d.Write(0, []byte{1, 1, 1, 1})
	d.SetPowerFailed(true)
	// Post-failure write: issued after the machine died; even an
	// always-survive model must not keep it.
	d.Write(128, []byte{2, 2, 2, 2})
	st := d.CrashWith(TornLines{P: 1}, 1)
	pre := make([]byte, 4)
	d.Read(0, pre)
	if !bytes.Equal(pre, []byte{1, 1, 1, 1}) {
		t.Errorf("pre-failure line should survive under P=1: %v", pre)
	}
	post := make([]byte, 4)
	d.Read(128, post)
	if !bytes.Equal(post, []byte{0, 0, 0, 0}) {
		t.Errorf("post-failure write survived the crash: %v", post)
	}
	if st.LinesRolledBack != 1 || st.LinesSurvived != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFaultPlanPurity(t *testing.T) {
	lines := make([]DirtyLine, 100)
	for i := range lines {
		lines[i] = DirtyLine{Addr: uint64(i) * 64, Seq: uint64(i) + 1}
	}
	for _, m := range Models() {
		a := m.Plan(sim.NewRNG(77), lines, 8)
		b := m.Plan(sim.NewRNG(77), lines, 8)
		if len(a) != len(lines) || len(b) != len(lines) {
			t.Fatalf("%s: plan length %d/%d, want %d", m.Name(), len(a), len(b), len(lines))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: plan not pure at line %d", m.Name(), i)
			}
		}
	}
}
