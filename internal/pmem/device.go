// Package pmem models an Intel Optane DC Persistent Memory module: a
// byte-addressable device whose media is durable, fronted by volatile
// buffering (CPU caches / DDIO-filled LLC / in-flight PCIe writes) that is
// lost on power failure.
//
// The device keeps a single "current contents" array that all readers and
// writers see, plus a rollback overlay: for every 64-byte line that has been
// written but not yet persisted, the overlay stores the line's last durable
// bytes. Persisting a line discards its overlay entry; a crash rolls every
// overlay entry back, reconstructing exactly the durable image. This gives
// byte-exact crash semantics without duplicating the whole device.
package pmem

import (
	"fmt"
	"sync"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

const shardCount = 64

// Device is a simulated PM module. All addresses are device-local offsets in
// [0, Size()).
type Device struct {
	params *sim.Params
	data   []byte
	line   uint64 // persistence tracking granularity (64B)

	shards [shardCount]shard

	// WriteStats records every write transaction that reaches the device,
	// for the pattern-dependent bandwidth model and Fig 12.
	WriteStats sim.AccessStats

	metrics struct {
		mu             sync.Mutex
		bytesWritten   int64
		bytesPersisted int64
		linesPersisted int64
	}

	// Telemetry mirrors of the counters above; nil (no-op) until
	// AttachTelemetry is called.
	telWriteBytes   *telemetry.Counter
	telWriteTxns    *telemetry.Counter
	telPersistBytes *telemetry.Counter
	telPersistLines *telemetry.Counter
}

// AttachTelemetry mirrors the device's write/persist counters into the
// registry under the pmem.* namespace. Passing a nil registry detaches.
func (d *Device) AttachTelemetry(r *telemetry.Registry) {
	d.telWriteBytes = r.Counter("pmem.write_bytes")
	d.telWriteTxns = r.Counter("pmem.write_txns")
	d.telPersistBytes = r.Counter("pmem.persist_bytes")
	d.telPersistLines = r.Counter("pmem.persist_lines")
}

type shard struct {
	mu      sync.Mutex
	overlay map[uint64][]byte // line address -> durable bytes of that line
}

// New returns a PM device of the given size, zero-filled and fully durable.
func New(params *sim.Params, size int64) *Device {
	if size <= 0 {
		panic("pmem: device size must be positive")
	}
	d := &Device{
		params: params,
		data:   make([]byte, size),
		line:   uint64(params.LineSize()),
	}
	for i := range d.shards {
		d.shards[i].overlay = make(map[uint64][]byte)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.data)) }

// LineSize returns the persistence tracking granularity.
func (d *Device) LineSize() int { return int(d.line) }

func (d *Device) shardFor(lineAddr uint64) *shard {
	return &d.shards[(lineAddr/d.line)%shardCount]
}

func (d *Device) check(addr uint64, n int) {
	if n < 0 || addr+uint64(n) > uint64(len(d.data)) {
		panic(fmt.Sprintf("pmem: access out of range: addr=%#x n=%d size=%d", addr, n, len(d.data)))
	}
}

// Read copies the current contents at addr into p. Reads always observe the
// most recent write, durable or not (caches are coherent for readers).
func (d *Device) Read(addr uint64, p []byte) {
	d.check(addr, len(p))
	copy(p, d.data[addr:])
}

// Write stores p at addr. The touched lines become volatile (dirty) until
// persisted; their previous durable contents are preserved for crash
// rollback. It returns the set of line addresses dirtied so callers (GPU
// threads, CPU threads) can track what a subsequent fence must persist.
//
// Each line's rollback snapshot and payload update happen atomically under
// that line's shard lock — a line is a coherence unit, and taking the
// snapshot concurrently with another writer's store to the same line could
// leak never-persisted bytes into the "durable" image.
func (d *Device) Write(addr uint64, p []byte) []uint64 {
	d.check(addr, len(p))
	if len(p) == 0 {
		return nil
	}
	first := addr / d.line * d.line
	last := (addr + uint64(len(p)) - 1) / d.line * d.line
	lines := make([]uint64, 0, (last-first)/d.line+1)
	for la := first; la <= last; la += d.line {
		// Intersect the payload with this line.
		start, end := la, la+d.line
		if start < addr {
			start = addr
		}
		if end > addr+uint64(len(p)) {
			end = addr + uint64(len(p))
		}
		sh := d.shardFor(la)
		sh.mu.Lock()
		if _, dirty := sh.overlay[la]; !dirty {
			old := make([]byte, d.line)
			copy(old, d.data[la:la+d.line])
			sh.overlay[la] = old
		}
		copy(d.data[start:end], p[start-addr:end-addr])
		sh.mu.Unlock()
		lines = append(lines, la)
	}
	d.metrics.mu.Lock()
	d.metrics.bytesWritten += int64(len(p))
	d.metrics.mu.Unlock()
	d.telWriteBytes.Add(int64(len(p)))
	d.telWriteTxns.Inc()
	return lines
}

// WriteDurable stores p at addr and marks the touched lines durable
// immediately (used for ADR-bypass paths such as eADR-drained state and
// test setup).
func (d *Device) WriteDurable(addr uint64, p []byte) {
	lines := d.Write(addr, p)
	d.PersistLines(lines)
}

// PersistLine makes one line durable: its overlay entry (if any) is
// discarded so a crash can no longer roll it back.
func (d *Device) PersistLine(lineAddr uint64) {
	la := lineAddr / d.line * d.line
	sh := d.shardFor(la)
	sh.mu.Lock()
	_, dirty := sh.overlay[la]
	if dirty {
		delete(sh.overlay, la)
	}
	sh.mu.Unlock()
	if dirty {
		d.metrics.mu.Lock()
		d.metrics.bytesPersisted += int64(d.line)
		d.metrics.linesPersisted++
		d.metrics.mu.Unlock()
		d.telPersistBytes.Add(int64(d.line))
		d.telPersistLines.Inc()
	}
}

// PersistLines persists each line address in lines.
func (d *Device) PersistLines(lines []uint64) {
	for _, la := range lines {
		d.PersistLine(la)
	}
}

// PersistRange persists every line overlapping [addr, addr+n).
func (d *Device) PersistRange(addr uint64, n int) {
	if n <= 0 {
		return
	}
	d.check(addr, n)
	first := addr / d.line * d.line
	last := (addr + uint64(n) - 1) / d.line * d.line
	for la := first; la <= last; la += d.line {
		d.PersistLine(la)
	}
}

// PersistAll drains every dirty line (an eADR power-fail flush).
func (d *Device) PersistAll() {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n := len(sh.overlay)
		sh.overlay = make(map[uint64][]byte)
		sh.mu.Unlock()
		if n > 0 {
			d.metrics.mu.Lock()
			d.metrics.bytesPersisted += int64(n) * int64(d.line)
			d.metrics.linesPersisted += int64(n)
			d.metrics.mu.Unlock()
			d.telPersistBytes.Add(int64(n) * int64(d.line))
			d.telPersistLines.Add(int64(n))
		}
	}
}

// Crash simulates a power failure: every line that was written but never
// persisted rolls back to its last durable contents.
func (d *Device) Crash() {
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for la, old := range sh.overlay {
			copy(d.data[la:la+d.line], old)
		}
		sh.overlay = make(map[uint64][]byte)
		sh.mu.Unlock()
	}
}

// Persisted reports whether the whole range [addr, addr+n) is durable
// (no dirty lines overlap it).
func (d *Device) Persisted(addr uint64, n int) bool {
	if n <= 0 {
		return true
	}
	d.check(addr, n)
	first := addr / d.line * d.line
	last := (addr + uint64(n) - 1) / d.line * d.line
	for la := first; la <= last; la += d.line {
		sh := d.shardFor(la)
		sh.mu.Lock()
		_, dirty := sh.overlay[la]
		sh.mu.Unlock()
		if dirty {
			return false
		}
	}
	return true
}

// DirtyLines returns the number of lines currently volatile.
func (d *Device) DirtyLines() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.overlay)
		sh.mu.Unlock()
	}
	return n
}

// SnapshotPersistent reconstructs the durable image of [addr, addr+n): the
// bytes a reader would find after a crash at this instant.
func (d *Device) SnapshotPersistent(addr uint64, n int) []byte {
	d.check(addr, n)
	out := make([]byte, n)
	copy(out, d.data[addr:])
	if n == 0 {
		return out
	}
	first := addr / d.line * d.line
	last := (addr + uint64(n) - 1) / d.line * d.line
	for la := first; la <= last; la += d.line {
		sh := d.shardFor(la)
		sh.mu.Lock()
		old, dirty := sh.overlay[la]
		if dirty {
			// Intersect the line with [addr, addr+n).
			start, end := la, la+d.line
			if start < addr {
				start = addr
			}
			if end > addr+uint64(n) {
				end = addr + uint64(n)
			}
			copy(out[start-addr:end-addr], old[start-la:end-la])
		}
		sh.mu.Unlock()
	}
	return out
}

// BytesWritten returns the total bytes written to the device.
func (d *Device) BytesWritten() int64 {
	d.metrics.mu.Lock()
	defer d.metrics.mu.Unlock()
	return d.metrics.bytesWritten
}

// BytesPersisted returns the total bytes made durable via explicit persists
// (line-granular).
func (d *Device) BytesPersisted() int64 {
	d.metrics.mu.Lock()
	defer d.metrics.mu.Unlock()
	return d.metrics.bytesPersisted
}

// ResetMetrics clears the byte counters and write statistics (device
// contents are untouched).
func (d *Device) ResetMetrics() {
	d.metrics.mu.Lock()
	d.metrics.bytesWritten = 0
	d.metrics.bytesPersisted = 0
	d.metrics.linesPersisted = 0
	d.metrics.mu.Unlock()
	d.WriteStats.Reset()
}
