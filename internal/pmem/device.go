// Package pmem models an Intel Optane DC Persistent Memory module: a
// byte-addressable device whose media is durable, fronted by volatile
// buffering (CPU caches / DDIO-filled LLC / in-flight PCIe writes) that is
// lost on power failure.
//
// The device keeps a single "current contents" array that all readers and
// writers see, plus a rollback overlay: for every 64-byte line that has been
// written but not yet persisted, the overlay stores the line's last durable
// bytes. Persisting a line discards its overlay entry; a crash rolls every
// overlay entry back, reconstructing exactly the durable image. This gives
// byte-exact crash semantics without duplicating the whole device.
package pmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

const shardCount = 64

// Device is a simulated PM module. All addresses are device-local offsets in
// [0, Size()).
type Device struct {
	params *sim.Params
	data   []byte
	line   uint64 // persistence tracking granularity (64B)

	shards [shardCount]shard

	// writeSeq orders dirty lines by their most recent write, so crash
	// fault models (Reorder in particular) can reason about the
	// unpersisted write sequence. Callers driving the device through
	// memsys.Space supply canonical (schedule-independent) sequence
	// numbers via WriteSeq; writeSeq is the fallback allocator for
	// direct-device users. maxSeq tracks the highest sequence number the
	// device has seen from either source.
	writeSeq atomic.Uint64
	maxSeq   atomic.Uint64

	// powerOff latches the power-failure instant (set by the fault
	// injector when an abort fires mid-recovery). While set, nothing can
	// become durable: persists are no-ops and writes issued after the
	// latch (seq > powerCut) unconditionally roll back at the next crash —
	// they happened after the machine died, so no fault model may let
	// them survive. The latch sits here, not higher in the stack, because
	// every durability path (CPU flush, DDIO write-back, eADR instant
	// persist) funnels into this device.
	powerOff atomic.Bool
	powerCut atomic.Uint64

	// WriteStats records every write transaction that reaches the device,
	// for the pattern-dependent bandwidth model and Fig 12.
	WriteStats sim.AccessStats

	metrics struct {
		mu             sync.Mutex
		bytesWritten   int64
		bytesPersisted int64
		linesPersisted int64
	}

	// Telemetry mirrors of the counters above; nil (no-op) until
	// AttachTelemetry is called.
	telWriteBytes   *telemetry.Counter
	telWriteTxns    *telemetry.Counter
	telPersistBytes *telemetry.Counter
	telPersistLines *telemetry.Counter

	// Crash / fault-injection telemetry.
	telCrashes       *telemetry.Counter
	telCrashRolled   *telemetry.Counter
	telCrashSurvived *telemetry.Counter
	telCrashTorn     *telemetry.Counter
}

// AttachTelemetry mirrors the device's write/persist counters into the
// registry under the pmem.* namespace. Passing a nil registry detaches.
func (d *Device) AttachTelemetry(r *telemetry.Registry) {
	d.telWriteBytes = r.Counter("pmem.write_bytes")
	d.telWriteTxns = r.Counter("pmem.write_txns")
	d.telPersistBytes = r.Counter("pmem.persist_bytes")
	d.telPersistLines = r.Counter("pmem.persist_lines")
	d.telCrashes = r.Counter("pmem.crashes")
	d.telCrashRolled = r.Counter("pmem.crash_lines_rolled_back")
	d.telCrashSurvived = r.Counter("pmem.crash_lines_survived")
	d.telCrashTorn = r.Counter("pmem.crash_words_torn")
}

// dirtyLine is one overlay entry: the line's last durable bytes plus the
// sequence number of the most recent write that touched it.
type dirtyLine struct {
	old []byte
	seq uint64
}

type shard struct {
	mu      sync.Mutex
	overlay map[uint64]*dirtyLine // line address -> rollback state
}

// New returns a PM device of the given size, zero-filled and fully durable.
func New(params *sim.Params, size int64) *Device {
	if size <= 0 {
		panic("pmem: device size must be positive")
	}
	d := &Device{
		params: params,
		data:   make([]byte, size),
		line:   uint64(params.LineSize()),
	}
	for i := range d.shards {
		d.shards[i].overlay = make(map[uint64]*dirtyLine)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.data)) }

// LineSize returns the persistence tracking granularity.
func (d *Device) LineSize() int { return int(d.line) }

func (d *Device) shardFor(lineAddr uint64) *shard {
	return &d.shards[(lineAddr/d.line)%shardCount]
}

func (d *Device) check(addr uint64, n int) {
	if n < 0 || addr+uint64(n) > uint64(len(d.data)) {
		panic(fmt.Sprintf("pmem: access out of range: addr=%#x n=%d size=%d", addr, n, len(d.data)))
	}
}

// Read copies the current contents at addr into p. Reads always observe the
// most recent write, durable or not (caches are coherent for readers).
func (d *Device) Read(addr uint64, p []byte) {
	d.check(addr, len(p))
	copy(p, d.data[addr:])
}

// Write stores p at addr. The touched lines become volatile (dirty) until
// persisted; their previous durable contents are preserved for crash
// rollback. It returns the set of line addresses dirtied so callers (GPU
// threads, CPU threads) can track what a subsequent fence must persist.
//
// Each line's rollback snapshot and payload update happen atomically under
// that line's shard lock — a line is a coherence unit, and taking the
// snapshot concurrently with another writer's store to the same line could
// leak never-persisted bytes into the "durable" image.
func (d *Device) Write(addr uint64, p []byte) []uint64 {
	return d.WriteSeq(addr, p, d.writeSeq.Add(1))
}

// WriteSeq is Write with a caller-supplied sequence number. The parallel
// execution engine assigns each write a canonical sequence derived from its
// position in the program (not from scheduling order), so the dirty-line
// ordering that fault models observe is identical no matter how many worker
// goroutines executed the run. When concurrent writers touch the same line,
// the line keeps the maximum sequence — also schedule-independent.
func (d *Device) WriteSeq(addr uint64, p []byte, seq uint64) []uint64 {
	return d.WriteSeqInto(nil, addr, p, seq)
}

// WriteSeqInto is WriteSeq appending the dirtied line addresses to dst,
// letting hot-path callers (the GPU store path) reuse one scratch slice
// instead of allocating per store. The returned slice may share dst's
// backing array; callers that hand lines to an owning consumer (the LLC)
// must not pass reused scratch.
func (d *Device) WriteSeqInto(dst []uint64, addr uint64, p []byte, seq uint64) []uint64 {
	d.check(addr, len(p))
	if len(p) == 0 {
		return dst
	}
	d.noteSeq(seq)
	first := addr / d.line * d.line
	last := (addr + uint64(len(p)) - 1) / d.line * d.line
	lines := dst
	for la := first; la <= last; la += d.line {
		// Intersect the payload with this line.
		start, end := la, la+d.line
		if start < addr {
			start = addr
		}
		if end > addr+uint64(len(p)) {
			end = addr + uint64(len(p))
		}
		sh := d.shardFor(la)
		sh.mu.Lock()
		if ent, dirty := sh.overlay[la]; !dirty {
			old := make([]byte, d.line)
			copy(old, d.data[la:la+d.line])
			sh.overlay[la] = &dirtyLine{old: old, seq: seq}
		} else if seq > ent.seq {
			ent.seq = seq
		}
		copy(d.data[start:end], p[start-addr:end-addr])
		sh.mu.Unlock()
		lines = append(lines, la)
	}
	d.metrics.mu.Lock()
	d.metrics.bytesWritten += int64(len(p))
	d.metrics.mu.Unlock()
	d.telWriteBytes.Add(int64(len(p)))
	d.telWriteTxns.Inc()
	return lines
}

// noteSeq raises the device's sequence high-water mark.
func (d *Device) noteSeq(seq uint64) {
	for {
		cur := d.maxSeq.Load()
		if seq <= cur || d.maxSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// WriteDurable stores p at addr and marks the touched lines durable
// immediately (used for ADR-bypass paths such as eADR-drained state and
// test setup).
func (d *Device) WriteDurable(addr uint64, p []byte) {
	lines := d.Write(addr, p)
	d.PersistLines(lines)
}

// SetPowerFailed latches (or clears) the power-failure instant. Latching
// records the current write sequence so the next CrashWith can tell
// pre-failure writes (fair game for fault models) from post-failure ones
// (unconditionally rolled back).
func (d *Device) SetPowerFailed(v bool) {
	if v {
		d.powerCut.Store(d.maxSeq.Load())
	}
	d.powerOff.Store(v)
}

// SetPowerFailedAt latches the power failure at an explicit sequence cut:
// writes with seq > cut are treated as post-failure and unconditionally roll
// back at the next crash. The parallel engine uses this to pin the failure
// instant to a canonical sequence number instead of "whatever the device had
// seen when some racing thread noticed the abort".
func (d *Device) SetPowerFailedAt(cut uint64) {
	d.powerCut.Store(cut)
	d.powerOff.Store(true)
}

// PowerFailed reports whether the power-failure latch is set.
func (d *Device) PowerFailed() bool { return d.powerOff.Load() }

// PersistLine makes one line durable: its overlay entry (if any) is
// discarded so a crash can no longer roll it back. After a power failure
// (SetPowerFailed) it is a no-op until the crash completes.
func (d *Device) PersistLine(lineAddr uint64) {
	if d.powerOff.Load() {
		return
	}
	la := lineAddr / d.line * d.line
	sh := d.shardFor(la)
	sh.mu.Lock()
	_, dirty := sh.overlay[la]
	if dirty {
		delete(sh.overlay, la)
	}
	sh.mu.Unlock()
	if dirty {
		d.metrics.mu.Lock()
		d.metrics.bytesPersisted += int64(d.line)
		d.metrics.linesPersisted++
		d.metrics.mu.Unlock()
		d.telPersistBytes.Add(int64(d.line))
		d.telPersistLines.Inc()
	}
}

// PersistLineBefore persists one line only if its most recent write is not
// newer than seq. The LLC drain uses it when replaying buffered flush events
// in canonical order: a fence must not make writes that canonically follow
// it durable, and since the simulator keeps only the current line contents,
// a line re-dirtied after the fence instant simply stays dirty.
//
// Under a power-failure latch the cut is honored rather than the persist
// being dropped outright: buffered traffic sequenced before the failure
// instant still reaches the persistence domain, while flushes sequenced
// after it died with the power.
func (d *Device) PersistLineBefore(lineAddr, seq uint64) {
	if d.powerOff.Load() && seq > d.powerCut.Load() {
		return
	}
	la := lineAddr / d.line * d.line
	sh := d.shardFor(la)
	sh.mu.Lock()
	ent, dirty := sh.overlay[la]
	if dirty && ent.seq <= seq {
		delete(sh.overlay, la)
	} else {
		dirty = false
	}
	sh.mu.Unlock()
	if dirty {
		d.metrics.mu.Lock()
		d.metrics.bytesPersisted += int64(d.line)
		d.metrics.linesPersisted++
		d.metrics.mu.Unlock()
		d.telPersistBytes.Add(int64(d.line))
		d.telPersistLines.Inc()
	}
}

// PersistLines persists each line address in lines.
func (d *Device) PersistLines(lines []uint64) {
	for _, la := range lines {
		d.PersistLine(la)
	}
}

// PersistRange persists every line overlapping [addr, addr+n).
func (d *Device) PersistRange(addr uint64, n int) {
	if n <= 0 {
		return
	}
	d.check(addr, n)
	first := addr / d.line * d.line
	last := (addr + uint64(n) - 1) / d.line * d.line
	for la := first; la <= last; la += d.line {
		d.PersistLine(la)
	}
}

// PersistAll drains every dirty line (an eADR power-fail flush).
func (d *Device) PersistAll() {
	if d.powerOff.Load() {
		return
	}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n := len(sh.overlay)
		sh.overlay = make(map[uint64]*dirtyLine)
		sh.mu.Unlock()
		if n > 0 {
			d.metrics.mu.Lock()
			d.metrics.bytesPersisted += int64(n) * int64(d.line)
			d.metrics.linesPersisted += int64(n)
			d.metrics.mu.Unlock()
			d.telPersistBytes.Add(int64(n) * int64(d.line))
			d.telPersistLines.Add(int64(n))
		}
	}
}

// Crash simulates a friendly power failure: every line that was written but
// never persisted rolls back to its last durable contents (the Clean fault
// model).
func (d *Device) Crash() {
	d.CrashWith(nil, 0)
}

// CrashWith simulates a power failure under a fault model: model decides,
// per dirty line (and per 8-byte word within it), whether the unpersisted
// write survives or rolls back. A nil model behaves like Clean. seed makes
// the model's randomness deterministic and replayable. The device is fully
// durable afterwards.
func (d *Device) CrashWith(model FaultModel, seed uint64) CrashStats {
	stats := CrashStats{Model: "clean"}
	if model != nil {
		stats.Model = model.Name()
	}
	// Writes issued after the power-failure instant never reached the
	// device; they roll back no matter what the fault model says.
	cut, cutActive := uint64(0), false
	if d.powerOff.Load() {
		cut, cutActive = d.powerCut.Load(), true
	}
	d.powerOff.Store(false)
	if _, clean := model.(Clean); model == nil || clean {
		for i := range d.shards {
			sh := &d.shards[i]
			sh.mu.Lock()
			for la, ent := range sh.overlay {
				copy(d.data[la:la+d.line], ent.old)
			}
			stats.DirtyLines += len(sh.overlay)
			sh.overlay = make(map[uint64]*dirtyLine)
			sh.mu.Unlock()
		}
		stats.LinesRolledBack = stats.DirtyLines
		d.noteCrash(stats)
		return stats
	}

	// Collect the dirty set, order it by last write, and let the model
	// assign fates. Writers racing with a crash are inherently unordered;
	// the per-shard locks below make each line's resolution atomic.
	type dirtyRef struct {
		line DirtyLine
		sh   *shard
	}
	var refs []dirtyRef
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for la, ent := range sh.overlay {
			if cutActive && ent.seq > cut {
				// Post-failure write: force rollback now.
				copy(d.data[la:la+d.line], ent.old)
				delete(sh.overlay, la)
				stats.DirtyLines++
				stats.LinesRolledBack++
				continue
			}
			refs = append(refs, dirtyRef{line: DirtyLine{Addr: la, Seq: ent.seq}, sh: sh})
		}
		sh.mu.Unlock()
	}
	// Order by sequence, tie-broken by address: canonical sequences are
	// unique per write, but a multi-line write shares one sequence across
	// its lines, and the address tie-break keeps the fault-model input
	// deterministic in that case too.
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].line.Seq != refs[j].line.Seq {
			return refs[i].line.Seq < refs[j].line.Seq
		}
		return refs[i].line.Addr < refs[j].line.Addr
	})
	lines := make([]DirtyLine, len(refs))
	for i, r := range refs {
		lines[i] = r.line
	}
	words := int(d.line / 8)
	fates := model.Plan(sim.NewRNG(seed), lines, words)
	stats.DirtyLines += len(refs)

	full := fullMask(words)
	for i, r := range refs {
		la := r.line.Addr
		r.sh.mu.Lock()
		ent, ok := r.sh.overlay[la]
		if !ok {
			r.sh.mu.Unlock()
			continue
		}
		mask := fates[i].SurviveMask & full
		switch mask {
		case 0:
			copy(d.data[la:la+d.line], ent.old)
			stats.LinesRolledBack++
		case full:
			stats.LinesSurvived++
		default:
			for w := 0; w < words; w++ {
				if mask&(uint64(1)<<w) == 0 {
					off := la + uint64(w)*8
					copy(d.data[off:off+8], ent.old[uint64(w)*8:uint64(w)*8+8])
				} else {
					stats.WordsTorn++
				}
			}
		}
		delete(r.sh.overlay, la)
		r.sh.mu.Unlock()
	}
	d.noteCrash(stats)
	return stats
}

// noteCrash bumps the crash telemetry counters.
func (d *Device) noteCrash(st CrashStats) {
	d.telCrashes.Inc()
	d.telCrashRolled.Add(int64(st.LinesRolledBack))
	d.telCrashSurvived.Add(int64(st.LinesSurvived))
	d.telCrashTorn.Add(int64(st.WordsTorn))
}

// Persisted reports whether the whole range [addr, addr+n) is durable
// (no dirty lines overlap it).
func (d *Device) Persisted(addr uint64, n int) bool {
	if n <= 0 {
		return true
	}
	d.check(addr, n)
	first := addr / d.line * d.line
	last := (addr + uint64(n) - 1) / d.line * d.line
	for la := first; la <= last; la += d.line {
		sh := d.shardFor(la)
		sh.mu.Lock()
		_, dirty := sh.overlay[la]
		sh.mu.Unlock()
		if dirty {
			return false
		}
	}
	return true
}

// DirtyLines returns the number of lines currently volatile.
func (d *Device) DirtyLines() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.overlay)
		sh.mu.Unlock()
	}
	return n
}

// SnapshotPersistent reconstructs the durable image of [addr, addr+n): the
// bytes a reader would find after a crash at this instant.
func (d *Device) SnapshotPersistent(addr uint64, n int) []byte {
	d.check(addr, n)
	out := make([]byte, n)
	copy(out, d.data[addr:])
	if n == 0 {
		return out
	}
	first := addr / d.line * d.line
	last := (addr + uint64(n) - 1) / d.line * d.line
	for la := first; la <= last; la += d.line {
		sh := d.shardFor(la)
		sh.mu.Lock()
		ent, dirty := sh.overlay[la]
		if dirty {
			// Intersect the line with [addr, addr+n).
			start, end := la, la+d.line
			if start < addr {
				start = addr
			}
			if end > addr+uint64(n) {
				end = addr + uint64(n)
			}
			copy(out[start-addr:end-addr], ent.old[start-la:end-la])
		}
		sh.mu.Unlock()
	}
	return out
}

// BytesWritten returns the total bytes written to the device.
func (d *Device) BytesWritten() int64 {
	d.metrics.mu.Lock()
	defer d.metrics.mu.Unlock()
	return d.metrics.bytesWritten
}

// BytesPersisted returns the total bytes made durable via explicit persists
// (line-granular).
func (d *Device) BytesPersisted() int64 {
	d.metrics.mu.Lock()
	defer d.metrics.mu.Unlock()
	return d.metrics.bytesPersisted
}

// ResetMetrics clears the byte counters and write statistics (device
// contents are untouched).
func (d *Device) ResetMetrics() {
	d.metrics.mu.Lock()
	d.metrics.bytesWritten = 0
	d.metrics.bytesPersisted = 0
	d.metrics.linesPersisted = 0
	d.metrics.mu.Unlock()
	d.WriteStats.Reset()
}
