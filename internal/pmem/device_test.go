package pmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/gpm-sim/gpm/internal/sim"
)

func newDev(t *testing.T) *Device {
	t.Helper()
	return New(sim.Default(), 1<<20)
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newDev(t)
	data := []byte("persistent memory from a GPU")
	d.Write(100, data)
	got := make([]byte, len(data))
	d.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
}

func TestUnpersistedWriteLostOnCrash(t *testing.T) {
	d := newDev(t)
	d.Write(0, []byte{1, 2, 3, 4})
	d.Crash()
	got := make([]byte, 4)
	d.Read(0, got)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Errorf("unpersisted write survived crash: %v", got)
	}
}

func TestPersistedWriteSurvivesCrash(t *testing.T) {
	d := newDev(t)
	d.Write(128, []byte{9, 9, 9, 9})
	d.PersistRange(128, 4)
	d.Crash()
	got := make([]byte, 4)
	d.Read(128, got)
	if !bytes.Equal(got, []byte{9, 9, 9, 9}) {
		t.Errorf("persisted write lost: %v", got)
	}
}

func TestPartialPersist(t *testing.T) {
	d := newDev(t)
	// Two lines written, only the first persisted.
	d.Write(0, make([]byte, 128)) // zero content, but dirties lines 0 and 64
	d.Write(0, []byte{1})
	d.Write(64, []byte{2})
	d.PersistLine(0)
	d.Crash()
	got := make([]byte, 65)
	d.Read(0, got)
	if got[0] != 1 {
		t.Error("persisted line rolled back")
	}
	if got[64] != 0 {
		t.Error("unpersisted line survived")
	}
}

func TestRollbackToLastPersistedValue(t *testing.T) {
	d := newDev(t)
	d.Write(0, []byte{5})
	d.PersistLine(0)
	d.Write(0, []byte{7}) // overwrite, not persisted
	d.Crash()
	got := make([]byte, 1)
	d.Read(0, got)
	if got[0] != 5 {
		t.Errorf("rollback target = %d, want 5 (last persisted)", got[0])
	}
}

func TestWriteReturnsDirtyLines(t *testing.T) {
	d := newDev(t)
	lines := d.Write(60, make([]byte, 10)) // spans lines 0 and 64
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 64 {
		t.Errorf("dirty lines = %v", lines)
	}
}

func TestPersistLinesAndPersisted(t *testing.T) {
	d := newDev(t)
	lines := d.Write(0, make([]byte, 256))
	if d.Persisted(0, 256) {
		t.Error("freshly written range reported persisted")
	}
	d.PersistLines(lines)
	if !d.Persisted(0, 256) {
		t.Error("range not persisted after PersistLines")
	}
}

func TestWriteDurable(t *testing.T) {
	d := newDev(t)
	d.WriteDurable(0, []byte{42})
	d.Crash()
	got := make([]byte, 1)
	d.Read(0, got)
	if got[0] != 42 {
		t.Error("WriteDurable lost on crash")
	}
}

func TestPersistAll(t *testing.T) {
	d := newDev(t)
	d.Write(0, []byte{1})
	d.Write(4096, []byte{2})
	d.PersistAll()
	if d.DirtyLines() != 0 {
		t.Errorf("dirty lines after PersistAll: %d", d.DirtyLines())
	}
	d.Crash()
	got := make([]byte, 1)
	d.Read(0, got)
	if got[0] != 1 {
		t.Error("PersistAll did not persist")
	}
}

func TestSnapshotPersistent(t *testing.T) {
	d := newDev(t)
	d.Write(0, []byte{1, 1, 1, 1})
	d.PersistRange(0, 4)
	d.Write(0, []byte{2, 2}) // dirty again
	snap := d.SnapshotPersistent(0, 4)
	if !bytes.Equal(snap, []byte{1, 1, 1, 1}) {
		t.Errorf("snapshot = %v, want persisted image", snap)
	}
	// Current contents unchanged by snapshotting.
	cur := make([]byte, 4)
	d.Read(0, cur)
	if !bytes.Equal(cur, []byte{2, 2, 1, 1}) {
		t.Errorf("current = %v", cur)
	}
}

func TestMetrics(t *testing.T) {
	d := newDev(t)
	d.Write(0, make([]byte, 100))
	if d.BytesWritten() != 100 {
		t.Errorf("BytesWritten = %d", d.BytesWritten())
	}
	d.PersistRange(0, 100)
	if d.BytesPersisted() != 128 { // two 64B lines
		t.Errorf("BytesPersisted = %d", d.BytesPersisted())
	}
	// Persisting clean lines must not double count.
	d.PersistRange(0, 100)
	if d.BytesPersisted() != 128 {
		t.Errorf("double-counted persists: %d", d.BytesPersisted())
	}
	d.ResetMetrics()
	if d.BytesWritten() != 0 || d.BytesPersisted() != 0 {
		t.Error("ResetMetrics failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(t)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access did not panic")
		}
	}()
	d.Write(uint64(d.Size())-1, []byte{1, 2})
}

// Property: after any sequence of writes in which every write is
// immediately persisted, a crash never changes device contents.
func TestQuickPersistedWritesStable(t *testing.T) {
	d := newDev(t)
	f := func(ops []struct {
		Addr uint16
		Val  byte
	}) bool {
		for _, op := range ops {
			lines := d.Write(uint64(op.Addr), []byte{op.Val})
			d.PersistLines(lines)
		}
		before := d.SnapshotPersistent(0, 1<<16)
		d.Crash()
		after := make([]byte, 1<<16)
		d.Read(0, after)
		return bytes.Equal(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: SnapshotPersistent always equals what Crash produces.
func TestQuickSnapshotMatchesCrash(t *testing.T) {
	f := func(writes []struct {
		Addr    uint16
		Val     byte
		Persist bool
	}) bool {
		d := New(sim.Default(), 1<<17)
		for _, w := range writes {
			lines := d.Write(uint64(w.Addr), []byte{w.Val})
			if w.Persist {
				d.PersistLines(lines)
			}
		}
		snap := d.SnapshotPersistent(0, 1<<16)
		d.Crash()
		got := make([]byte, 1<<16)
		d.Read(0, got)
		return bytes.Equal(snap, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
