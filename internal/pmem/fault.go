package pmem

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/sim"
)

// DirtyLine describes one unpersisted line at the instant of a crash.
type DirtyLine struct {
	Addr uint64 // line-aligned device offset
	Seq  uint64 // last-write sequence number (global write order)
}

// LineFate says which 8-byte words of a dirty line survive a crash: bit i
// set keeps the volatile contents of word i, bit i clear rolls that word
// back to its last durable image. All-zero is a clean rollback; all-ones
// means the whole line persists as if it had been flushed.
type LineFate struct {
	SurviveMask uint64
}

func fullMask(words int) uint64 {
	if words >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << words) - 1
}

// A FaultModel decides, at crash time, what becomes of the writes that were
// issued but never explicitly persisted. The clean model (today's friendly
// semantics) rolls every one back; the adversarial models exploit the
// freedom real hardware has — a write may persist any time between issue
// and the fence that orders it, and ADR only guarantees 8-byte atomicity —
// to produce the harshest schedules a correct logging protocol must absorb.
//
// Plan receives every dirty line sorted by last-write order and a
// deterministic RNG derived from the crash seed; it must return one fate
// per line. Models must be pure: same lines + same RNG stream = same plan.
type FaultModel interface {
	Name() string
	Plan(rng *sim.RNG, lines []DirtyLine, wordsPerLine int) []LineFate
}

// Clean is the friendly power-failure: every unpersisted line rolls back
// whole, in order. This is the pre-existing Device.Crash behavior.
type Clean struct{}

// Name implements FaultModel.
func (Clean) Name() string { return "clean" }

// Plan implements FaultModel: all-zero fates (full rollback).
func (Clean) Plan(_ *sim.RNG, lines []DirtyLine, _ int) []LineFate {
	return make([]LineFate, len(lines))
}

// TornLines models arbitrary early persistence at cache-line granularity:
// each dirty line independently survives whole with probability P (default
// 1/2). A write may become durable any time after issue, so a correct
// protocol must tolerate any subset of its unfenced lines surviving.
type TornLines struct {
	P float64 // survival probability per line; <=0 means 1/2
}

// Name implements FaultModel.
func (TornLines) Name() string { return "torn-lines" }

// Plan implements FaultModel.
func (m TornLines) Plan(rng *sim.RNG, lines []DirtyLine, wordsPerLine int) []LineFate {
	p := m.P
	if p <= 0 {
		p = 0.5
	}
	fates := make([]LineFate, len(lines))
	for i := range lines {
		if rng.Float64() < p {
			fates[i].SurviveMask = fullMask(wordsPerLine)
		}
	}
	return fates
}

// TornWords models the ADR guarantee at its true granularity: the memory
// controller persists 8-byte words atomically, but nothing larger. Within
// every dirty line each word independently survives with probability P
// (default 1/2), producing torn lines that mix old and new data.
type TornWords struct {
	P float64 // survival probability per word; <=0 means 1/2
}

// Name implements FaultModel.
func (TornWords) Name() string { return "torn-words" }

// Plan implements FaultModel.
func (m TornWords) Plan(rng *sim.RNG, lines []DirtyLine, wordsPerLine int) []LineFate {
	p := m.P
	if p <= 0 {
		p = 0.5
	}
	fates := make([]LineFate, len(lines))
	for i := range lines {
		var mask uint64
		for w := 0; w < wordsPerLine && w < 64; w++ {
			if rng.Float64() < p {
				mask |= uint64(1) << w
			}
		}
		fates[i].SurviveMask = mask
	}
	return fates
}

// Reorder models an in-order persist queue cut at a random depth: a random
// prefix of the unpersisted write sequence (lines ordered by their last
// write) survives whole, the suffix rolls back. This is the epoch-ordering
// hazard: writes below a fence drain in order, and the power fails midway
// through the drain.
type Reorder struct{}

// Name implements FaultModel.
func (Reorder) Name() string { return "reorder" }

// Plan implements FaultModel.
func (Reorder) Plan(rng *sim.RNG, lines []DirtyLine, wordsPerLine int) []LineFate {
	fates := make([]LineFate, len(lines))
	if len(lines) == 0 {
		return fates
	}
	cut := rng.Intn(len(lines) + 1)
	for i := 0; i < cut; i++ {
		fates[i].SurviveMask = fullMask(wordsPerLine)
	}
	return fates
}

// Subset restricts Base to the first Limit dirty lines (in write order) and
// rolls the rest back cleanly. The shrinker uses it to find the smallest
// fault subset that still breaks a recovery.
type Subset struct {
	Base  FaultModel
	Limit int
}

// Name implements FaultModel.
func (m Subset) Name() string { return fmt.Sprintf("subset(%s,%d)", m.Base.Name(), m.Limit) }

// Plan implements FaultModel.
func (m Subset) Plan(rng *sim.RNG, lines []DirtyLine, wordsPerLine int) []LineFate {
	n := m.Limit
	if n > len(lines) {
		n = len(lines)
	}
	if n < 0 {
		n = 0
	}
	fates := m.Base.Plan(rng, lines[:n], wordsPerLine)
	return append(fates, make([]LineFate, len(lines)-n)...)
}

// Models returns one instance of every named fault model, clean first.
func Models() []FaultModel {
	return []FaultModel{Clean{}, TornLines{}, TornWords{}, Reorder{}}
}

// ModelByName resolves a fault model from its command-line name.
func ModelByName(name string) (FaultModel, error) {
	for _, m := range Models() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("pmem: unknown fault model %q (have clean, torn-lines, torn-words, reorder)", name)
}

// CrashStats reports what one crash did to the device's volatile state.
type CrashStats struct {
	Model           string `json:"model"`
	DirtyLines      int    `json:"dirty_lines"`       // lines volatile at the crash instant
	LinesRolledBack int    `json:"lines_rolled_back"` // fully reverted to the durable image
	LinesSurvived   int    `json:"lines_survived"`    // persisted whole despite never being flushed
	WordsTorn       int    `json:"words_torn"`        // 8-byte words that survived inside partially-reverted lines
}
