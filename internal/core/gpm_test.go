package gpm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func testCtx(t *testing.T) *Context {
	t.Helper()
	return NewContext(sim.Default(), memsys.Config{HBMSize: 8 << 20, DRAMSize: 8 << 20, PMSize: 32 << 20})
}

func TestMapCreateOpen(t *testing.T) {
	c := testCtx(t)
	m, err := c.Map("/pm/data", 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 4096 || c.Space.KindOf(m.Addr) != memsys.KindPM {
		t.Errorf("mapping %+v", m)
	}
	m2, err := c.Map("/pm/data", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Addr != m.Addr {
		t.Error("reopen moved the mapping")
	}
	if _, err := c.Map("/pm/missing", 0, false); err == nil {
		t.Error("opening a missing file should fail")
	}
	c.Unmap(m)
}

func TestPersistBeginEndToggleDDIO(t *testing.T) {
	c := testCtx(t)
	if c.Space.DDIOOff() {
		t.Error("DDIO should start enabled")
	}
	c.PersistBegin()
	if !c.Space.DDIOOff() {
		t.Error("PersistBegin did not disable DDIO")
	}
	c.PersistEnd()
	if c.Space.DDIOOff() {
		t.Error("PersistEnd did not re-enable DDIO")
	}
}

func TestPersistFromKernel(t *testing.T) {
	c := testCtx(t)
	m, _ := c.Map("/pm/p", 4096, true)
	c.PersistBegin()
	c.Launch("k", 1, 32, func(th *gpu.Thread) {
		th.StoreU32(m.Addr+uint64(4*th.ID()), uint32(th.ID()))
		Persist(th)
	})
	c.PersistEnd()
	c.Crash()
	for i := 0; i < 32; i++ {
		if got := c.Space.ReadU32(m.Addr + uint64(4*i)); got != uint32(i) {
			t.Fatalf("slot %d = %d after crash", i, got)
		}
	}
}

// ---- HCL logging ----

func TestHCLInsertReadRemove(t *testing.T) {
	c := testCtx(t)
	const blocks, tpb = 4, 64
	l, err := c.LogCreateHCL("/pm/log", 1<<20, blocks, tpb)
	if err != nil {
		t.Fatal(err)
	}
	c.PersistBegin()
	c.Launch("log", blocks, tpb, func(th *gpu.Thread) {
		var e [8]byte
		binary.LittleEndian.PutUint32(e[:], uint32(th.GlobalID()))
		binary.LittleEndian.PutUint32(e[4:], 0xabcd)
		if err := l.Insert(th, e[:], -1); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		var got [8]byte
		if err := l.Read(th, got[:], -1); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got[:], e[:]) {
			t.Errorf("thread %d read %v", th.GlobalID(), got)
		}
	})
	c.PersistEnd()
	// Host-side read of each entry.
	var buf [8]byte
	for tid := 0; tid < blocks*tpb; tid++ {
		if l.HostTail(tid) != 2 {
			t.Fatalf("tid %d tail = %d", tid, l.HostTail(tid))
		}
		if err := l.HostReadEntry(tid, buf[:]); err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint32(buf[:]) != uint32(tid) {
			t.Fatalf("tid %d entry = %v", tid, buf)
		}
	}
	// Remove all entries.
	c.PersistBegin()
	c.Launch("rm", blocks, tpb, func(th *gpu.Thread) {
		if err := l.Remove(th, 8, -1); err != nil {
			t.Errorf("remove: %v", err)
		}
	})
	c.PersistEnd()
	if l.HostTail(0) != 0 {
		t.Error("remove did not pop")
	}
}

func TestHCLSurvivesCrashAndReopen(t *testing.T) {
	c := testCtx(t)
	l, _ := c.LogCreateHCL("/pm/log2", 1<<20, 2, 32)
	c.PersistBegin()
	c.Launch("log", 2, 32, func(th *gpu.Thread) {
		var e [4]byte
		binary.LittleEndian.PutUint32(e[:], uint32(th.GlobalID()+100))
		if err := l.Insert(th, e[:], -1); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	c.PersistEnd()
	c.Crash()
	l2, err := c.LogOpen("/pm/log2")
	if err != nil {
		t.Fatal(err)
	}
	if !l2.IsHCL() || l2.Blocks() != 2 || l2.ThreadsPerBlock() != 32 {
		t.Fatalf("reopened geometry %d x %d", l2.Blocks(), l2.ThreadsPerBlock())
	}
	var buf [4]byte
	for tid := 0; tid < 64; tid++ {
		if err := l2.HostReadEntry(tid, buf[:]); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint32(buf[:]); got != uint32(tid+100) {
			t.Fatalf("tid %d = %d", tid, got)
		}
	}
}

func TestHCLTornEntryInvisibleAfterCrash(t *testing.T) {
	// Crash between persisting the entry and persisting the tail: the
	// tail sentinel must hide the torn entry (§5.2).
	c := testCtx(t)
	l, _ := c.LogCreateHCL("/pm/log3", 1<<20, 1, 32)
	c.PersistBegin()
	// First a committed entry.
	c.Launch("log", 1, 32, func(th *gpu.Thread) {
		var e [4]byte
		binary.LittleEndian.PutUint32(e[:], 1)
		if err := l.Insert(th, e[:], -1); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	// Now crash during the second insert, before tails are updated:
	// allow the writes, then abort before the 2nd fence has happened for
	// most threads. We abort very early so no tail update persists.
	c.Dev.SetAbortCheck(func(op int64) bool { return op >= 40 })
	res := c.Launch("log-crash", 1, 32, func(th *gpu.Thread) {
		var e [4]byte
		binary.LittleEndian.PutUint32(e[:], 2)
		_ = l.Insert(th, e[:], -1)
	})
	if !res.Crashed {
		t.Fatal("expected crash")
	}
	c.Dev.SetAbortCheck(nil)
	c.PersistEnd()
	c.Crash()
	l2, err := c.LogOpen("/pm/log3")
	if err != nil {
		t.Fatal(err)
	}
	var buf [4]byte
	for tid := 0; tid < 32; tid++ {
		tail := l2.HostTail(tid)
		if tail != 1 && tail != 2 {
			t.Fatalf("tid %d tail = %d", tid, tail)
		}
		if tail == 1 {
			// Only the committed entry is visible.
			if err := l2.HostReadEntry(tid, buf[:]); err != nil {
				t.Fatal(err)
			}
			if binary.LittleEndian.Uint32(buf[:]) != 1 {
				t.Fatalf("tid %d reads torn entry", tid)
			}
		}
	}
}

func TestHCLGeometryMismatch(t *testing.T) {
	c := testCtx(t)
	l, _ := c.LogCreateHCL("/pm/log4", 1<<20, 2, 64)
	c.Launch("wrong", 1, 32, func(th *gpu.Thread) {
		if err := l.Insert(th, make([]byte, 4), -1); err != ErrBadGeometry {
			t.Errorf("want ErrBadGeometry, got %v", err)
		}
	})
}

func TestHCLEntrySizeValidation(t *testing.T) {
	c := testCtx(t)
	l, _ := c.LogCreateHCL("/pm/log5", 1<<20, 1, 32)
	c.Launch("size", 1, 32, func(th *gpu.Thread) {
		if err := l.Insert(th, make([]byte, 3), -1); err != ErrEntrySize {
			t.Errorf("3-byte entry: %v", err)
		}
		if err := l.Insert(th, nil, -1); err != ErrEntrySize {
			t.Errorf("empty entry: %v", err)
		}
	})
}

func TestHCLLogFull(t *testing.T) {
	c := testCtx(t)
	// Tiny log: few chunks per thread.
	l, err := c.LogCreateHCL("/pm/log6", 40960, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	c.PersistBegin()
	c.Launch("fill", 1, 32, func(th *gpu.Thread) {
		var sawFull bool
		for i := 0; i < 1000; i++ {
			if err := l.Insert(th, make([]byte, 4), -1); err == ErrLogFull {
				sawFull = true
				break
			} else if err != nil {
				t.Errorf("unexpected: %v", err)
				return
			}
		}
		if !sawFull {
			t.Error("log never filled")
		}
	})
	c.PersistEnd()
}

func TestHCLStripedEntryCoalesces(t *testing.T) {
	// A warp inserting 16-byte entries should generate ~4 coalesced
	// stores (one per stripe), not 32×4 scattered ones (Fig 5).
	c := testCtx(t)
	l, _ := c.LogCreateHCL("/pm/log7", 1<<20, 1, 32)
	c.PersistBegin()
	res := c.Launch("stripe", 1, 32, func(th *gpu.Thread) {
		e := make([]byte, 16)
		binary.LittleEndian.PutUint32(e, uint32(th.GlobalID()))
		if err := l.Insert(th, e, -1); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	c.PersistEnd()
	// 4 stripes of data + 1 tail line; the tail reads add no writes.
	if res.Stats.PMWriteTxns > 8 {
		t.Errorf("striped insert produced %d write txns, want ≤8", res.Stats.PMWriteTxns)
	}
}

// ---- Conventional logging ----

func TestConvLogInsertAndReadBack(t *testing.T) {
	c := testCtx(t)
	l, err := c.LogCreateConv("/pm/conv", 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.Partitions() != 8 || l.IsHCL() {
		t.Fatalf("geometry: %d partitions", l.Partitions())
	}
	c.PersistBegin()
	c.Launch("clog", 2, 64, func(th *gpu.Thread) {
		var e [4]byte
		binary.LittleEndian.PutUint32(e[:], uint32(th.GlobalID()))
		if err := l.Insert(th, e[:], th.GlobalID()%8); err != nil {
			t.Errorf("insert: %v", err)
		}
	})
	c.PersistEnd()
	total := 0
	for p := 0; p < 8; p++ {
		b := l.HostPartitionBytes(p)
		total += len(b) / 4
	}
	if total != 128 {
		t.Errorf("entries across partitions = %d, want 128", total)
	}
}

func TestConvLogSerializes(t *testing.T) {
	c := testCtx(t)
	l, _ := c.LogCreateConv("/pm/conv2", 1<<20, 1)
	c.PersistBegin()
	res := c.Launch("clog", 2, 128, func(th *gpu.Thread) {
		_ = l.Insert(th, make([]byte, 8), 0)
	})
	c.PersistEnd()
	if len(res.Stats.Serial) == 0 {
		t.Fatal("no serialization recorded")
	}
	// 256 serialized inserts on one partition must dominate elapsed.
	if res.Elapsed < 256*l.convCost(8)/2 {
		t.Errorf("conventional log too fast: %v", res.Elapsed)
	}
}

func TestHCLFasterThanConventional(t *testing.T) {
	// The paper's core logging claim (Fig 11): HCL beats the lock-based
	// distributed log.
	c := testCtx(t)
	const blocks, tpb = 8, 256
	hcl, _ := c.LogCreateHCL("/pm/hcl-race", 4<<20, blocks, tpb)
	conv, _ := c.LogCreateConv("/pm/conv-race", 4<<20, 32)
	c.PersistBegin()
	h := c.Launch("hcl", blocks, tpb, func(th *gpu.Thread) {
		e := make([]byte, 16)
		_ = hcl.Insert(th, e, -1)
	})
	v := c.Launch("conv", blocks, tpb, func(th *gpu.Thread) {
		e := make([]byte, 16)
		_ = conv.Insert(th, e, -1)
	})
	c.PersistEnd()
	if h.Elapsed*2 >= v.Elapsed {
		t.Errorf("HCL %v not clearly faster than conventional %v", h.Elapsed, v.Elapsed)
	}
}

func TestConvLogPersistence(t *testing.T) {
	c := testCtx(t)
	l, _ := c.LogCreateConv("/pm/conv3", 1<<20, 2)
	c.PersistBegin()
	c.Launch("clog", 1, 32, func(th *gpu.Thread) {
		var e [4]byte
		binary.LittleEndian.PutUint32(e[:], 7)
		_ = l.Insert(th, e[:], 0)
	})
	c.PersistEnd()
	c.Crash()
	l2, err := c.LogOpen("/pm/conv3")
	if err != nil {
		t.Fatal(err)
	}
	b := l2.HostPartitionBytes(0)
	if len(b) != 32*4 {
		t.Fatalf("partition bytes after crash = %d", len(b))
	}
	for i := 0; i < 32; i++ {
		if binary.LittleEndian.Uint32(b[i*4:]) != 7 {
			t.Fatal("corrupt entry after crash")
		}
	}
}

// ---- Checkpointing ----

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	c := testCtx(t)
	n := int64(64 << 10)
	src := c.Space.AllocHBM(n)
	cp, err := c.CPCreate("/pm/cp", n, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Register(src, n, 0); err != nil {
		t.Fatal(err)
	}
	// Fill source with a pattern.
	pat := make([]byte, n)
	for i := range pat {
		pat[i] = byte(i * 7)
	}
	c.Space.WriteCPU(src, pat)
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	if cp.Seq(0) != 1 {
		t.Errorf("seq = %d", cp.Seq(0))
	}
	// Clobber the source, restore, verify.
	c.Space.WriteCPU(src, make([]byte, n))
	if _, err := cp.RestoreGroup(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	c.Space.Read(src, got)
	if !bytes.Equal(got, pat) {
		t.Error("restore mismatch")
	}
	cp.Close()
}

func TestCheckpointSurvivesCrash(t *testing.T) {
	c := testCtx(t)
	n := int64(16 << 10)
	src := c.Space.AllocHBM(n)
	cp, _ := c.CPCreate("/pm/cp2", n, 2, 1)
	_ = cp.Register(src, n, 0)
	pat := make([]byte, n)
	for i := range pat {
		pat[i] = byte(i)
	}
	c.Space.WriteCPU(src, pat)
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	c.Crash() // loses HBM including src
	// Recovery mode: open, re-register, restore.
	cp2, err := c.CPOpen("/pm/cp2")
	if err != nil {
		t.Fatal(err)
	}
	if err := cp2.Register(src, n, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cp2.RestoreGroup(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	c.Space.Read(src, got)
	if !bytes.Equal(got, pat) {
		t.Error("restored data does not match checkpoint")
	}
}

func TestCrashMidCheckpointKeepsOldConsistentCopy(t *testing.T) {
	c := testCtx(t)
	n := int64(32 << 10)
	src := c.Space.AllocHBM(n)
	cp, _ := c.CPCreate("/pm/cp3", n, 2, 1)
	_ = cp.Register(src, n, 0)
	v1 := bytes.Repeat([]byte{1}, int(n))
	c.Space.WriteCPU(src, v1)
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint crashes mid-copy.
	v2 := bytes.Repeat([]byte{2}, int(n))
	c.Space.WriteCPU(src, v2)
	c.Dev.SetAbortCheck(func(op int64) bool { return op >= 100 })
	if _, err := cp.CheckpointGroup(0); err != gpu.ErrCrashed {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	c.Dev.SetAbortCheck(nil)
	c.Crash()
	cp2, _ := c.CPOpen("/pm/cp3")
	_ = cp2.Register(src, n, 0)
	if _, err := cp2.RestoreGroup(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	c.Space.Read(src, got)
	if !bytes.Equal(got, v1) {
		t.Error("crashed checkpoint corrupted the consistent copy")
	}
	if cp2.Seq(0) != 1 {
		t.Errorf("seq advanced through crash: %d", cp2.Seq(0))
	}
}

func TestCheckpointGroupsIndependent(t *testing.T) {
	c := testCtx(t)
	n := int64(4 << 10)
	a := c.Space.AllocHBM(n)
	b := c.Space.AllocHBM(n)
	cp, _ := c.CPCreate("/pm/cp4", n, 1, 2)
	_ = cp.Register(a, n, 0)
	_ = cp.Register(b, n, 1)
	c.Space.WriteCPU(a, bytes.Repeat([]byte{0xa}, int(n)))
	c.Space.WriteCPU(b, bytes.Repeat([]byte{0xb}, int(n)))
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.RestoreGroup(1); err != ErrNoCheckpoint {
		t.Errorf("group 1 restore: %v", err)
	}
	if _, err := cp.CheckpointGroup(1); err != nil {
		t.Fatal(err)
	}
	c.Space.WriteCPU(a, make([]byte, n))
	if _, err := cp.RestoreGroup(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	c.Space.Read(a, got)
	if got[0] != 0xa {
		t.Error("group 0 restore wrong")
	}
}

func TestCheckpointValidation(t *testing.T) {
	c := testCtx(t)
	cp, _ := c.CPCreate("/pm/cp5", 1024, 1, 1)
	if err := cp.Register(0, 2048, 0); err != ErrGroupFull {
		t.Errorf("oversize register: %v", err)
	}
	if err := cp.Register(0, 512, 5); err != ErrGroupRange {
		t.Errorf("bad group: %v", err)
	}
	if _, err := cp.CheckpointGroup(0); err == nil {
		t.Error("checkpoint with no registrations should fail")
	}
	if _, err := c.CPCreate("/pm/cp5b", 0, 1, 1); err == nil {
		t.Error("zero-size create should fail")
	}
	src := c.Space.AllocHBM(512)
	_ = cp.Register(src, 512, 0)
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	// Reopen with mismatched registration size.
	cp2, _ := c.CPOpen("/pm/cp5")
	if err := cp2.Register(src, 256, 0); err == nil {
		t.Error("mismatched re-registration should fail")
	}
}

func TestCheckpointDoubleBufferAlternates(t *testing.T) {
	c := testCtx(t)
	n := int64(4096)
	src := c.Space.AllocHBM(n)
	cp, _ := c.CPCreate("/pm/cp6", n, 1, 1)
	_ = cp.Register(src, n, 0)
	for i := 1; i <= 4; i++ {
		c.Space.WriteCPU(src, bytes.Repeat([]byte{byte(i)}, int(n)))
		if _, err := cp.CheckpointGroup(0); err != nil {
			t.Fatal(err)
		}
		if cp.Seq(0) != uint64(i) {
			t.Fatalf("seq = %d after %d checkpoints", cp.Seq(0), i)
		}
	}
	c.Space.WriteCPU(src, make([]byte, n))
	if _, err := cp.RestoreGroup(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	c.Space.Read(src, got)
	if got[0] != 4 {
		t.Errorf("restored %d, want latest (4)", got[0])
	}
}

func TestCheckpointRestoreFasterThanCAPStyle(t *testing.T) {
	// Restore reads PM at near link bandwidth; it must be much faster
	// than re-computing, and checkpoint duration should be reported.
	c := testCtx(t)
	n := int64(1 << 20)
	src := c.Space.AllocHBM(n)
	cp, _ := c.CPCreate("/pm/cp7", n, 1, 1)
	_ = cp.Register(src, n, 0)
	d, err := cp.CheckpointGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("checkpoint duration not reported")
	}
	r, err := cp.RestoreGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 {
		t.Error("restore duration not reported")
	}
}
