package gpm

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Property: for any per-thread sequence of HCL inserts, every thread reads
// back exactly what it wrote, in LIFO order, with no cross-thread
// interference — the lock-free slot math never collides.
func TestQuickHCLPerThreadIsolation(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewContext(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 4 << 20, PMSize: 16 << 20})
		const blocks, tpb = 2, 64
		l, err := c.LogCreateHCL("/pm/q", 1<<20, blocks, tpb)
		if err != nil {
			t.Fatal(err)
		}
		// Each thread derives a deterministic op sequence from the seed.
		ok := true
		c.PersistBegin()
		c.Launch("q", blocks, tpb, func(th *gpu.Thread) {
			rng := sim.NewRNG(seed ^ uint64(th.GlobalID())*0x9e37)
			var stack [][]byte
			for op := 0; op < 12; op++ {
				switch {
				case rng.Intn(3) != 0 || len(stack) == 0: // insert
					n := (rng.Intn(3) + 1) * 4
					e := make([]byte, n)
					binary.LittleEndian.PutUint32(e, uint32(th.GlobalID()))
					for i := 4; i < n; i++ {
						e[i] = byte(rng.Intn(256))
					}
					if err := l.Insert(th, e, -1); err != nil {
						return // log full: fine
					}
					stack = append(stack, e)
				default: // read back + remove
					want := stack[len(stack)-1]
					got := make([]byte, len(want))
					if err := l.Read(th, got, -1); err != nil {
						ok = false
						return
					}
					if !bytes.Equal(got, want) {
						ok = false
						return
					}
					if err := l.Remove(th, len(want), -1); err != nil {
						ok = false
						return
					}
					stack = stack[:len(stack)-1]
				}
			}
			// Drain the stack verifying LIFO order.
			for len(stack) > 0 {
				want := stack[len(stack)-1]
				got := make([]byte, len(want))
				if err := l.Read(th, got, -1); err != nil || !bytes.Equal(got, want) {
					ok = false
					return
				}
				_ = l.Remove(th, len(want), -1)
				stack = stack[:len(stack)-1]
			}
		})
		c.PersistEnd()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: whatever was inserted and committed into an HCL log is
// readable from the host after a crash, byte-for-byte.
func TestQuickHCLDurability(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewContext(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 4 << 20, PMSize: 16 << 20})
		const blocks, tpb = 1, 32
		l, err := c.LogCreateHCL("/pm/q2", 1<<20, blocks, tpb)
		if err != nil {
			t.Fatal(err)
		}
		c.PersistBegin()
		c.Launch("q2", blocks, tpb, func(th *gpu.Thread) {
			v := vals[th.GlobalID()%len(vals)]
			var e [4]byte
			binary.LittleEndian.PutUint32(e[:], v)
			_ = l.Insert(th, e[:], -1)
		})
		c.PersistEnd()
		c.Crash()
		l2, err := c.LogOpen("/pm/q2")
		if err != nil {
			return false
		}
		var e [4]byte
		for tid := 0; tid < tpb; tid++ {
			if err := l2.HostReadEntry(tid, e[:]); err != nil {
				return false
			}
			if binary.LittleEndian.Uint32(e[:]) != vals[tid%len(vals)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: checkpoint + restore is the identity for arbitrary contents,
// through any number of checkpoint generations.
func TestQuickCheckpointIdentity(t *testing.T) {
	f := func(gens []byte) bool {
		if len(gens) == 0 {
			return true
		}
		if len(gens) > 5 {
			gens = gens[:5]
		}
		c := NewContext(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 4 << 20, PMSize: 16 << 20})
		const n = 8 << 10
		src := c.Space.AllocHBM(n)
		cp, err := c.CPCreate("/pm/q3", n, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := cp.Register(src, n, 0); err != nil {
			t.Fatal(err)
		}
		var last []byte
		for _, g := range gens {
			last = bytes.Repeat([]byte{g}, n)
			c.Space.WriteCPU(src, last)
			if _, err := cp.CheckpointGroup(0); err != nil {
				return false
			}
		}
		c.Crash()
		cp2, err := c.CPOpen("/pm/q3")
		if err != nil {
			return false
		}
		if err := cp2.Register(src, n, 0); err != nil {
			return false
		}
		if _, err := cp2.RestoreGroup(0); err != nil {
			return false
		}
		got := make([]byte, n)
		c.Space.Read(src, got)
		return bytes.Equal(got, last)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: a crash injected at ANY operation index during a logged KVS-like
// update leaves the store in a state the undo log can roll back to exactly
// the pre-transaction image.
func TestQuickUndoLogAtomicity(t *testing.T) {
	f := func(crashAtRaw uint16) bool {
		crashAt := int64(crashAtRaw)%600 + 1
		c := NewContext(sim.Default(), memsys.Config{HBMSize: 4 << 20, DRAMSize: 4 << 20, PMSize: 16 << 20})
		const blocks, tpb = 1, 32
		data, err := c.Map("/pm/q4data", 64*tpb, true)
		if err != nil {
			t.Fatal(err)
		}
		// Initial durable image: slot i holds i.
		for i := 0; i < tpb; i++ {
			c.Space.WriteU64(data.Addr+uint64(i)*64, uint64(i))
		}
		c.Space.PersistRange(data.Addr, 64*tpb)
		l, err := c.LogCreateHCL("/pm/q4log", 1<<20, blocks, tpb)
		if err != nil {
			t.Fatal(err)
		}
		// Transaction: log old value, overwrite with new, crash somewhere.
		c.PersistBegin()
		c.Dev.SetAbortCheck(func(op int64) bool { return op >= crashAt })
		c.Launch("tx", blocks, tpb, func(th *gpu.Thread) {
			addr := data.Addr + uint64(th.GlobalID())*64
			var e [8]byte
			binary.LittleEndian.PutUint64(e[:], th.LoadU64(addr))
			if err := l.Insert(th, e[:], -1); err != nil {
				return
			}
			th.StoreU64(addr, 0xdead0000+uint64(th.GlobalID()))
			Persist(th)
		})
		c.Dev.SetAbortCheck(nil)
		c.PersistEnd()
		c.Crash()
		// Recovery: undo every logged entry.
		l2, err := c.LogOpen("/pm/q4log")
		if err != nil {
			return false
		}
		c.PersistBegin()
		c.Launch("undo", blocks, tpb, func(th *gpu.Thread) {
			var e [8]byte
			if err := l2.Read(th, e[:], -1); err != nil {
				return // nothing logged by this thread
			}
			th.StoreU64(data.Addr+uint64(th.GlobalID())*64, binary.LittleEndian.Uint64(e[:]))
			Persist(th)
			_ = l2.Remove(th, 8, -1)
		})
		c.PersistEnd()
		c.Crash()
		// Every slot must hold its pre-transaction value.
		for i := 0; i < tpb; i++ {
			if got := c.Space.ReadU64(data.Addr + uint64(i)*64); got != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
