package gpm

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// exerciseNode runs one small end-to-end sequence touching every traced
// subsystem: map, persist epoch + kernel, HCL log insert/commit, checkpoint,
// crash, and restore.
func exerciseNode(tel *telemetry.Telemetry) *Context {
	ctx := NewContext(sim.Default(), memsys.Config{HBMSize: 2 << 20, DRAMSize: 2 << 20, PMSize: 8 << 20})
	if tel != nil {
		ctx.AttachTelemetry(tel, "exercise/GPM")
	}

	m, err := ctx.Map("/pm/data", 4096, true)
	if err != nil {
		panic(err)
	}
	ctx.PersistBegin()
	ctx.Launch("fill", 1, 32, func(t *gpu.Thread) {
		t.StoreU32(m.Addr+uint64(t.GlobalID())*4, uint32(t.GlobalID()))
		Persist(t)
	})
	ctx.PersistEnd()

	l, err := ctx.LogCreateHCL("/pm/log", 8192, 1, 32)
	if err != nil {
		panic(err)
	}
	ctx.Launch("log-insert", 1, 32, func(t *gpu.Thread) {
		if err := l.Insert(t, []byte{1, 2, 3, 4}, -1); err != nil {
			panic(err)
		}
	})
	l.HostClearAll()

	cp, err := ctx.CPCreate("/pm/ckpt", 4096, 2, 1)
	if err != nil {
		panic(err)
	}
	buf := ctx.Space.AllocHBM(4096)
	if err := cp.Register(buf, 4096, 0); err != nil {
		panic(err)
	}
	if _, err := cp.CheckpointGroup(0); err != nil {
		panic(err)
	}
	ctx.Crash()
	if _, err := cp.RestoreGroup(0); err != nil {
		panic(err)
	}
	return ctx
}

func TestContextTelemetrySpans(t *testing.T) {
	tel := telemetry.New()
	exerciseNode(tel)

	byCat := map[string][]telemetry.Span{}
	for _, s := range tel.Trace.Spans() {
		byCat[s.Cat] = append(byCat[s.Cat], s)
	}
	for _, cat := range []string{"kernel", "persist", "log", "checkpoint", "map", "recovery", "crash", "cpu"} {
		if len(byCat[cat]) == 0 {
			t.Errorf("no spans of category %q recorded", cat)
		}
	}

	// Some persist epoch must enclose the fill kernel it brackets (the
	// checkpoint opens further epochs of its own).
	var fill *telemetry.Span
	for i := range byCat["kernel"] {
		if byCat["kernel"][i].Name == "fill" {
			fill = &byCat["kernel"][i]
		}
	}
	if fill == nil {
		t.Fatal("missing fill span")
	}
	enclosed := false
	for _, epoch := range byCat["persist"] {
		if epoch.Name == "persist-epoch" && fill.Start >= epoch.Start && fill.End() <= epoch.End() {
			enclosed = true
		}
	}
	if !enclosed {
		t.Errorf("fill [%d,%d] not nested inside any persist-epoch", fill.Start, fill.End())
	}

	// The checkpoint span must contain its snapshot and swap phases.
	var outer, snap, swap *telemetry.Span
	for i := range byCat["checkpoint"] {
		s := &byCat["checkpoint"][i]
		switch s.Name {
		case "checkpoint":
			outer = s
		case "snapshot":
			snap = s
		case "swap":
			swap = s
		}
	}
	if outer == nil || snap == nil || swap == nil {
		t.Fatalf("missing checkpoint phase spans: outer=%v snap=%v swap=%v", outer, snap, swap)
	}
	if snap.Start < outer.Start || swap.End() > outer.End() || snap.End() > swap.Start {
		t.Error("checkpoint phases not ordered snapshot < swap inside checkpoint")
	}

	// Metrics: the registry must have mirrored every subsystem.
	tsv := tel.Metrics.TSV()
	for _, metric := range []string{
		"gpu.kernels", "gpm.persist_epochs", "gpm.checkpoints", "gpm.crashes",
		"log.hcl.inserts", "pmem.write_bytes", "pcie.bytes_up", "llc.",
	} {
		if !strings.Contains(tsv, metric) {
			t.Errorf("metrics TSV missing %q", metric)
		}
	}
	if got := tel.Metrics.Counter("log.hcl.inserts").Value(); got != 32 {
		t.Errorf("log.hcl.inserts = %d, want 32", got)
	}
	if got := tel.Metrics.Counter("gpm.persist_epochs").Value(); got < 1 {
		t.Errorf("gpm.persist_epochs = %d, want >= 1", got)
	}
}

// Telemetry must be an observer: attaching it cannot change simulated time,
// and two identical runs must export byte-identical traces.
func TestContextTelemetryDeterministic(t *testing.T) {
	bare := exerciseNode(nil).Timeline.Total()

	telA := telemetry.New()
	traced := exerciseNode(telA).Timeline.Total()
	if bare != traced {
		t.Errorf("telemetry perturbed simulated time: %v != %v", traced, bare)
	}

	telB := telemetry.New()
	exerciseNode(telB)
	a, b := telA.Trace.ChromeTrace(), telB.Trace.ChromeTrace()
	if !bytes.Equal(a, b) {
		t.Error("identical runs exported different traces")
	}
}
