package gpm

import (
	"errors"
	"fmt"

	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

const (
	cpMagic      uint64 = 0x47504d4350303031 // "GPMCP001"
	cpHeaderSize uint64 = 64
	cpChunk             = 16 // bytes copied per thread per step (float4)
)

// Checkpoint errors.
var (
	ErrBadCheckpoint    = errors.New("gpm: not a gpm checkpoint file")
	ErrNoCheckpoint     = errors.New("gpm: group has no consistent checkpoint yet")
	ErrGroupFull        = errors.New("gpm: checkpoint group capacity exceeded")
	ErrGroupRange       = errors.New("gpm: checkpoint group out of range")
	ErrRegisterMismatch = errors.New("gpm: registration does not match checkpointed layout")
)

// Checkpoint is libGPM's group-based double-buffered checkpoint facility
// (§5.3). Each group owns two PM buffers: a consistent copy and a working
// copy. gpmcp_checkpoint copies the group's registered data structures into
// the working copy with a GPU kernel, persists it, and atomically flips an
// 8-byte flag to promote it; a crash mid-checkpoint therefore always leaves
// one intact consistent copy. Registration order identifies structures
// across restarts (pointer-based structures cannot be checkpointed).
type Checkpoint struct {
	ctx *Context
	m   *Mapping

	groups    int
	elements  int   // max registrations per group
	groupSize int64 // data capacity per group

	regs [][]cpReg

	flagsBase uint64
	metaBase  uint64
	bufBase   uint64
	gsAligned int64
}

type cpReg struct {
	addr uint64
	size int64
}

func cpFileSize(groupSize int64, elements, groups int) int64 {
	gsAligned := int64(align256(uint64(groupSize)))
	meta := align256(uint64(groups*elements) * 8)
	flags := align256(uint64(groups) * 8)
	return int64(align256(cpHeaderSize)) + int64(flags) + int64(meta) + int64(groups)*2*gsAligned
}

// CPCreate creates a checkpoint file for `groups` groups of up to
// `elements` data structures and `groupSize` bytes each (gpmcp_create).
func (c *Context) CPCreate(path string, groupSize int64, elements, groups int) (*Checkpoint, error) {
	if groupSize <= 0 || elements <= 0 || groups <= 0 {
		return nil, fmt.Errorf("gpm: invalid checkpoint shape size=%d elements=%d groups=%d", groupSize, elements, groups)
	}
	m, err := c.Map(path, cpFileSize(groupSize, elements, groups), true)
	if err != nil {
		return nil, err
	}
	cp := newCheckpoint(c, m, groupSize, elements, groups)
	sp := c.Space
	sp.WriteU64(m.Addr, cpMagic)
	sp.WriteU32(m.Addr+8, uint32(groups))
	sp.WriteU32(m.Addr+12, uint32(elements))
	sp.WriteU64(m.Addr+16, uint64(groupSize))
	sp.PersistRange(m.Addr, int(cpHeaderSize))
	// Zero flags: no consistent copy yet.
	zero := make([]byte, groups*8)
	sp.WriteCPU(cp.flagsBase, zero)
	sp.PersistRange(cp.flagsBase, len(zero))
	c.Timeline.Add("checkpoint-meta", 5*sim.Microsecond)
	return cp, nil
}

// CPOpen reopens an existing checkpoint file (gpmcp_open), e.g. in
// recovery mode. The caller must re-register the same structures in the
// same order before restoring.
func (c *Context) CPOpen(path string) (*Checkpoint, error) {
	m, err := c.Map(path, 0, false)
	if err != nil {
		return nil, err
	}
	sp := c.Space
	if sp.ReadU64(m.Addr) != cpMagic {
		return nil, ErrBadCheckpoint
	}
	groups := int(sp.ReadU32(m.Addr + 8))
	elements := int(sp.ReadU32(m.Addr + 12))
	groupSize := int64(sp.ReadU64(m.Addr + 16))
	return newCheckpoint(c, m, groupSize, elements, groups), nil
}

func newCheckpoint(c *Context, m *Mapping, groupSize int64, elements, groups int) *Checkpoint {
	cp := &Checkpoint{
		ctx: c, m: m,
		groups: groups, elements: elements, groupSize: groupSize,
		regs:      make([][]cpReg, groups),
		gsAligned: int64(align256(uint64(groupSize))),
	}
	// Every region starts on a 256B boundary (§5.3: "checkpoint
	// structures are 128-byte aligned to maximize bandwidth to the NVM
	// and across the PCIe") — a misaligned buffer would cut Optane's
	// write bandwidth to the unaligned rate and split every coalesced
	// transaction.
	cp.flagsBase = m.Addr + align256(cpHeaderSize)
	cp.metaBase = cp.flagsBase + align256(uint64(groups)*8)
	cp.bufBase = cp.metaBase + align256(uint64(groups*elements)*8)
	return cp
}

// Close closes the checkpoint (gpmcp_close).
func (cp *Checkpoint) Close() { cp.ctx.Unmap(cp.m) }

// Groups returns the number of checkpoint groups.
func (cp *Checkpoint) Groups() int { return cp.groups }

// Register associates a data structure (addr, size — typically in GPU
// device memory) with a group (gpmcp_register). Structures restore in
// registration order, so recovery code must register identically.
func (cp *Checkpoint) Register(addr uint64, size int64, group int) error {
	if group < 0 || group >= cp.groups {
		return ErrGroupRange
	}
	if len(cp.regs[group]) >= cp.elements {
		return ErrGroupFull
	}
	var used int64
	for _, r := range cp.regs[group] {
		used += r.size
	}
	if used+size > cp.groupSize {
		return ErrGroupFull
	}
	idx := len(cp.regs[group])
	metaAddr := cp.metaBase + uint64(group*cp.elements+idx)*8
	sp := cp.ctx.Space
	if prev := sp.ReadU64(metaAddr); prev != 0 && prev != uint64(size) {
		return fmt.Errorf("%w: element %d of group %d was %d bytes, now %d",
			ErrRegisterMismatch, idx, group, prev, size)
	}
	sp.WriteU64(metaAddr, uint64(size))
	sp.PersistRange(metaAddr, 8)
	cp.regs[group] = append(cp.regs[group], cpReg{addr: addr, size: size})
	cp.ctx.Timeline.Add("checkpoint-meta", sim.Microsecond)
	return nil
}

func (cp *Checkpoint) flagAddr(group int) uint64 { return cp.flagsBase + uint64(group)*8 }

// flag layout: bit 0 = consistent buffer index, bits 63..1 = sequence.
func (cp *Checkpoint) flag(group int) (seq uint64, idx int) {
	v := cp.ctx.Space.ReadU64(cp.flagAddr(group))
	return v >> 1, int(v & 1)
}

func (cp *Checkpoint) bufAddr(group, idx int) uint64 {
	return cp.bufBase + uint64((group*2+idx))*uint64(cp.gsAligned)
}

// Seq returns the group's checkpoint sequence number (0 = none yet).
func (cp *Checkpoint) Seq(group int) uint64 {
	seq, _ := cp.flag(group)
	return seq
}

// CheckpointGroup writes the group's registered structures into the working
// PM buffer with a GPU kernel, persists them, and atomically promotes the
// working copy to consistent (gpmcp_checkpoint). It returns the simulated
// duration, also accounted on the context timeline under "checkpoint".
func (cp *Checkpoint) CheckpointGroup(group int) (sim.Duration, error) {
	if group < 0 || group >= cp.groups {
		return 0, ErrGroupRange
	}
	regs := cp.regs[group]
	var total int64
	for _, r := range regs {
		total += r.size
	}
	if total == 0 {
		return 0, fmt.Errorf("gpm: checkpoint group %d has no registered data", group)
	}
	start := cp.ctx.Timeline.Total()
	// Under eADR the LLC is in the persistence domain, so DDIO can stay
	// on (§3.3); otherwise the persist region must disable it.
	toggleDDIO := !cp.ctx.Space.EADR()
	if toggleDDIO {
		cp.ctx.PersistBegin()
	}
	_, idx := cp.flag(group)
	working := 1 - idx
	dst := cp.bufAddr(group, working)

	snapStart := cp.ctx.SpanStart()
	res := cp.copyKernel("checkpoint", regs, dst, false)
	cp.ctx.SpanEnd(telemetry.TrackCheckpoint, "snapshot", "checkpoint", snapStart)
	if !res.Crashed {
		// Promote the working copy with one atomic 8-byte persist.
		swapStart := cp.ctx.SpanStart()
		cp.ctx.RunCPU("checkpoint", 1, func(t *cpusim.Thread) {
			seq, _ := cp.flag(group)
			t.WriteU64(cp.flagAddr(group), (seq+1)<<1|uint64(working))
			t.PersistRange(cp.flagAddr(group), 8)
		})
		cp.ctx.SpanEnd(telemetry.TrackCheckpoint, "swap", "checkpoint", swapStart)
	}
	if toggleDDIO {
		cp.ctx.PersistEnd()
	}
	if res.Crashed {
		return 0, gpu.ErrCrashed
	}
	elapsed := cp.ctx.Timeline.Total() - start
	cp.ctx.SpanEnd(telemetry.TrackCheckpoint, "checkpoint", "checkpoint", start)
	cp.ctx.telCheckpoints.Inc()
	cp.ctx.telCheckpointUS.ObserveMicros(elapsed)
	return elapsed, nil
}

// RestoreGroup copies the group's consistent checkpoint back into the
// registered structures (gpmcp_restore), in registration order. It returns
// the simulated duration, accounted under "restore".
func (cp *Checkpoint) RestoreGroup(group int) (sim.Duration, error) {
	if group < 0 || group >= cp.groups {
		return 0, ErrGroupRange
	}
	seq, idx := cp.flag(group)
	if seq == 0 {
		return 0, ErrNoCheckpoint
	}
	regs := cp.regs[group]
	if len(regs) == 0 {
		return 0, fmt.Errorf("gpm: restore of group %d before registration", group)
	}
	// Validate against the persisted layout.
	for i, r := range regs {
		want := cp.ctx.Space.ReadU64(cp.metaBase + uint64(group*cp.elements+i)*8)
		if want != uint64(r.size) {
			return 0, fmt.Errorf("%w: element %d of group %d is %d bytes, checkpoint has %d",
				ErrRegisterMismatch, i, group, r.size, want)
		}
	}
	start := cp.ctx.Timeline.Total()
	src := cp.bufAddr(group, idx)
	res := cp.copyKernel("restore", regs, src, true)
	if res.Crashed {
		return 0, gpu.ErrCrashed
	}
	elapsed := cp.ctx.Timeline.Total() - start
	cp.ctx.SpanEnd(telemetry.TrackRecovery, "restore", "recovery", start)
	cp.ctx.telRestoreUS.ObserveMicros(elapsed)
	return elapsed, nil
}

// copyKernel moves data between the registered structures and a packed PM
// buffer. reverse=false packs structures into the buffer (checkpoint,
// persisted); reverse=true unpacks (restore).
func (cp *Checkpoint) copyKernel(segment string, regs []cpReg, buf uint64, reverse bool) gpu.Result {
	type span struct {
		addr   uint64
		packed uint64
		size   int64
	}
	spans := make([]span, len(regs))
	var off uint64
	var total int64
	for i, r := range regs {
		spans[i] = span{addr: r.addr, packed: off, size: r.size}
		off += uint64(r.size)
		total += r.size
	}
	nThreads := int((total + cpChunk - 1) / cpChunk)
	tpb := 256
	blocks := (nThreads + tpb - 1) / tpb
	return cp.ctx.Launch(segment, blocks, tpb, func(t *gpu.Thread) {
		g := t.GlobalID()
		off := int64(g) * cpChunk
		if off >= total {
			return
		}
		n := int64(cpChunk)
		if off+n > total {
			n = total - off
		}
		// Locate the registered span containing this packed offset.
		var s span
		for _, cand := range spans {
			if off >= int64(cand.packed) && off < int64(cand.packed)+cand.size {
				s = cand
				break
			}
		}
		if off+n > int64(s.packed)+s.size {
			n = int64(s.packed) + s.size - off // do not cross spans
		}
		rel := uint64(off) - s.packed
		var tmp [cpChunk]byte
		if reverse {
			t.LoadBytes(buf+uint64(off), tmp[:n])
			t.StoreBytes(s.addr+rel, tmp[:n])
		} else {
			t.LoadBytes(s.addr+rel, tmp[:n])
			t.StoreBytes(buf+uint64(off), tmp[:n])
			Persist(t)
		}
	})
}
