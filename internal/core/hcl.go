package gpm

import (
	"encoding/binary"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Hierarchical Coalesced Logging (§5.2, Figs 4–5).
//
// The log file mirrors the GPU's execution hierarchy: each threadblock owns
// a region, each warp owns a sub-region of 128-byte stripes, and each lane
// owns the 4-byte chunk at its lane offset inside every stripe. A thread's
// i-th chunk therefore lives at a statically computable address — no locks
// — and when the 32 lanes of a warp insert entries together, each stripe's
// 32 4-byte chunk writes fall on one 128-byte block and the hardware
// coalescer merges them into a single store. Entries larger than 4 bytes
// are striped across consecutive stripes (Fig 5).
//
// Failure atomicity uses a per-thread tail index as the sentinel: a thread
// persists its chunks, then increments and persists its tail. A crash
// between the two leaves the tail pointing before the torn entry.

// chunkAddr returns the address of chunk index c belonging to (block, warp,
// lane).
func (l *Log) chunkAddr(block, warp, lane, c int) uint64 {
	cb := uint64(l.ctx.Params.CoalesceBytes)
	gw := uint64(block*l.warpsPerBlock + warp)
	return l.dataBase + (gw*uint64(l.chunksPerThread)+uint64(c))*cb + uint64(lane)*4
}

func (l *Log) tailAddr(tid int) uint64 { return l.tailsBase + uint64(tid)*4 }

// Insert appends data (a positive multiple of 4 bytes) to the calling
// thread's log and persists it entry-then-tail (gpmlog_insert). For HCL
// logs the partition argument of the paper's API is implicit in the thread
// identity; for conventional logs pass partition ≥ 0 or -1 for
// thread-hashed.
func (l *Log) Insert(t *gpu.Thread, data []byte, partition int) error {
	if len(data) == 0 || len(data)%4 != 0 {
		return ErrEntrySize
	}
	if l.kind == logKindConv {
		return l.convInsert(t, data, partition)
	}
	if t.Block().Grid() != l.blocks || t.Block().Threads() != l.tpb {
		return ErrBadGeometry
	}
	k := len(data) / 4
	tid := t.GlobalID()
	tail := int(t.LoadU32(l.tailAddr(tid)))
	if tail+k > l.chunksPerThread {
		return ErrLogFull
	}
	b, w, lane := t.Block().ID(), t.WarpID(), t.Lane()
	for i := 0; i < k; i++ {
		t.StoreU32(l.chunkAddr(b, w, lane, tail+i), binary.LittleEndian.Uint32(data[i*4:]))
	}
	Persist(t)
	t.StoreU32(l.tailAddr(tid), uint32(tail+k))
	Persist(t)
	l.telInserts.Inc()
	l.telInsertBytes.Add(int64(len(data)))
	return nil
}

// Read copies the calling thread's most recent n=len(p) bytes back out of
// the log (gpmlog_read), without consuming them.
func (l *Log) Read(t *gpu.Thread, p []byte, partition int) error {
	if len(p) == 0 || len(p)%4 != 0 {
		return ErrEntrySize
	}
	if l.kind == logKindConv {
		return l.convRead(t, p, partition)
	}
	k := len(p) / 4
	tid := t.GlobalID()
	tail := int(t.LoadU32(l.tailAddr(tid)))
	if tail < k {
		return ErrEmptyLog
	}
	b, w, lane := t.Block().ID(), t.WarpID(), t.Lane()
	for i := 0; i < k; i++ {
		binary.LittleEndian.PutUint32(p[i*4:], t.LoadU32(l.chunkAddr(b, w, lane, tail-k+i)))
	}
	return nil
}

// Remove pops the calling thread's most recent n bytes (gpmlog_remove),
// persisting the tail so the removal itself is crash-consistent.
func (l *Log) Remove(t *gpu.Thread, n, partition int) error {
	if n == 0 || n%4 != 0 {
		return ErrEntrySize
	}
	if l.kind == logKindConv {
		return l.convRemove(t, n, partition)
	}
	k := n / 4
	tid := t.GlobalID()
	tail := int(t.LoadU32(l.tailAddr(tid)))
	if tail < k {
		return ErrEmptyLog
	}
	t.StoreU32(l.tailAddr(tid), uint32(tail-k))
	Persist(t)
	l.telRemoves.Inc()
	return nil
}

// convRead returns the last len(p) bytes of a conventional partition.
func (l *Log) convRead(t *gpu.Thread, p []byte, partition int) error {
	if partition < 0 {
		partition = t.GlobalID() % l.partitions
	}
	partition %= l.partitions
	l.locks[partition].Lock()
	defer l.locks[partition].Unlock()
	head := int(t.LoadU32(l.tailsBase + uint64(partition)*4))
	if head < len(p) {
		return ErrEmptyLog
	}
	base := l.dataBase + uint64(partition)*uint64(l.capBytes)
	t.LoadBytes(base+uint64(head-len(p)), p)
	return nil
}

// Clear resets the calling thread's log (gpmlog_clear with partition -1
// clears the caller's slots; HCL has per-thread partitions).
func (l *Log) Clear(t *gpu.Thread) {
	if l.kind == logKindConv {
		tid := t.GlobalID()
		if tid < l.partitions {
			t.StoreU32(l.tailsBase+uint64(tid)*4, 0)
			Persist(t)
		}
		return
	}
	t.StoreU32(l.tailAddr(t.GlobalID()), 0)
	Persist(t)
}

// ClearIfUsed resets the calling thread's tail only if it logged anything,
// so commit-time truncation writes nothing for the threads that never
// logged (e.g. gpKVS's 7-of-8 non-inserting group threads).
func (l *Log) ClearIfUsed(t *gpu.Thread) {
	if l.kind == logKindConv {
		l.Clear(t)
		return
	}
	addr := l.tailAddr(t.GlobalID())
	if t.LoadU32(addr) != 0 {
		t.StoreU32(addr, 0)
		Persist(t)
	}
}

// HostClearAll resets every tail/head from the host (log truncation after
// a committed transaction, §5.2 recovery discussion).
func (l *Log) HostClearAll() {
	start := l.ctx.SpanStart()
	n := l.partitions
	if l.kind == logKindHCL {
		n = l.blocks * l.tpb
	}
	sp := l.ctx.Space
	zero := make([]byte, 4*n)
	sp.WriteCPU(l.tailsBase, zero)
	sp.PersistRange(l.tailsBase, len(zero))
	l.ctx.Timeline.Add("log-meta", 5*sim.Microsecond)
	l.ctx.SpanEnd(telemetry.TrackLog, "log-commit", "log", start)
}

// HostTail returns a thread's tail (in 4-byte chunks) from the host.
func (l *Log) HostTail(tid int) int {
	return int(l.ctx.Space.ReadU32(l.tailAddr(tid)))
}

// HostReadEntry reads the most recent len(p) bytes logged by thread tid,
// from the host (CPU-side recovery and tests).
func (l *Log) HostReadEntry(tid int, p []byte) error {
	if l.kind != logKindHCL {
		return ErrWrongKind
	}
	k := len(p) / 4
	tail := l.HostTail(tid)
	if tail < k {
		return ErrEmptyLog
	}
	ws := l.ctx.Params.WarpSize
	block := tid / l.tpb
	within := tid % l.tpb
	w, lane := within/ws, within%ws
	var b [4]byte
	for i := 0; i < k; i++ {
		l.ctx.Space.Read(l.chunkAddr(block, w, lane, tail-k+i), b[:])
		copy(p[i*4:], b[:])
	}
	return nil
}
