package gpm

import (
	"testing"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func errCtx(t *testing.T) *Context {
	t.Helper()
	return NewContext(sim.Default(), memsys.Config{HBMSize: 2 << 20, DRAMSize: 2 << 20, PMSize: 8 << 20})
}

func TestLogOpenRejectsNonLog(t *testing.T) {
	c := errCtx(t)
	if _, err := c.Map("/pm/plain", 4096, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LogOpen("/pm/plain"); err != ErrBadLog {
		t.Errorf("LogOpen on plain file: %v", err)
	}
	if _, err := c.LogOpen("/pm/missing"); err == nil {
		t.Error("LogOpen on missing file succeeded")
	}
}

func TestCPOpenRejectsNonCheckpoint(t *testing.T) {
	c := errCtx(t)
	if _, err := c.Map("/pm/plain2", 4096, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CPOpen("/pm/plain2"); err != ErrBadCheckpoint {
		t.Errorf("CPOpen on plain file: %v", err)
	}
	if _, err := c.CPOpen("/pm/missing"); err == nil {
		t.Error("CPOpen on missing file succeeded")
	}
}

func TestLogCreateValidation(t *testing.T) {
	c := errCtx(t)
	if _, err := c.LogCreateHCL("/pm/badgrid", 1<<20, 0, 32); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := c.LogCreateHCL("/pm/tiny", 256, 64, 256); err == nil {
		t.Error("undersized HCL log accepted")
	}
	if _, err := c.LogCreateConv("/pm/badparts", 1<<20, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := c.LogCreateConv("/pm/tiny2", 128, 64); err == nil {
		t.Error("undersized conventional log accepted")
	}
}

func TestConvLogFullAndReadBack(t *testing.T) {
	c := errCtx(t)
	l, err := c.LogCreateConv("/pm/convfull", 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.PersistBegin()
	c.Launch("fill", 1, 1, func(th *gpu.Thread) {
		var sawFull bool
		e := make([]byte, 64)
		for i := 0; i < 100; i++ {
			if err := l.Insert(th, e, 0); err == ErrLogFull {
				sawFull = true
				break
			} else if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		if !sawFull {
			t.Error("conventional log never filled")
		}
		// Read back and pop the last entry.
		if err := l.Read(th, e, 0); err != nil {
			t.Errorf("read: %v", err)
		}
		if err := l.Remove(th, 64, 0); err != nil {
			t.Errorf("remove: %v", err)
		}
		// Underflow after popping everything.
		for l.Remove(th, 64, 0) == nil {
		}
		if err := l.Read(th, e, 0); err != ErrEmptyLog {
			t.Errorf("read on empty: %v", err)
		}
	})
	c.PersistEnd()
}

func TestConvClearByThread(t *testing.T) {
	c := errCtx(t)
	l, _ := c.LogCreateConv("/pm/convclear", 1<<16, 4)
	c.PersistBegin()
	c.Launch("ins", 1, 4, func(th *gpu.Thread) {
		_ = l.Insert(th, make([]byte, 8), th.ID())
	})
	c.Launch("clear", 1, 4, func(th *gpu.Thread) {
		l.Clear(th)
	})
	c.PersistEnd()
	for p := 0; p < 4; p++ {
		if b := l.HostPartitionBytes(p); len(b) != 0 {
			t.Errorf("partition %d not cleared (%d bytes)", p, len(b))
		}
	}
}

func TestHCLRemoveUnderflowAndReadErrors(t *testing.T) {
	c := errCtx(t)
	l, _ := c.LogCreateHCL("/pm/hclerr", 1<<20, 1, 32)
	c.Launch("errs", 1, 32, func(th *gpu.Thread) {
		if err := l.Remove(th, 4, -1); err != ErrEmptyLog {
			t.Errorf("remove on empty: %v", err)
		}
		if err := l.Read(th, make([]byte, 4), -1); err != ErrEmptyLog {
			t.Errorf("read on empty: %v", err)
		}
		if err := l.Remove(th, 3, -1); err != ErrEntrySize {
			t.Errorf("bad remove size: %v", err)
		}
		if err := l.Read(th, nil, -1); err != ErrEntrySize {
			t.Errorf("nil read: %v", err)
		}
	})
}

func TestHostReadEntryOnConvFails(t *testing.T) {
	c := errCtx(t)
	l, _ := c.LogCreateConv("/pm/convhost", 1<<16, 2)
	if err := l.HostReadEntry(0, make([]byte, 4)); err != ErrWrongKind {
		t.Errorf("HostReadEntry on conv: %v", err)
	}
	l.Close()
}

func TestMappingLifecycle(t *testing.T) {
	c := errCtx(t)
	m, err := c.Map("/pm/life", 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Timeline.Segment("map")
	c.Unmap(m)
	if c.Timeline.Segment("map") <= before {
		t.Error("unmap cost not accounted")
	}
}

func TestRestoreBeforeRegisterFails(t *testing.T) {
	c := errCtx(t)
	src := c.Space.AllocHBM(1024)
	cp, _ := c.CPCreate("/pm/cpreg", 1024, 1, 1)
	_ = cp.Register(src, 1024, 0)
	if _, err := cp.CheckpointGroup(0); err != nil {
		t.Fatal(err)
	}
	cp2, _ := c.CPOpen("/pm/cpreg")
	if _, err := cp2.RestoreGroup(0); err == nil {
		t.Error("restore without registration succeeded")
	}
	if _, err := cp2.RestoreGroup(9); err != ErrGroupRange {
		t.Errorf("out-of-range group: %v", err)
	}
	if _, err := cp2.CheckpointGroup(5); err != ErrGroupRange {
		t.Errorf("out-of-range checkpoint: %v", err)
	}
}
