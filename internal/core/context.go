// Package gpm is libGPM, the paper's GPU persistence library (§5),
// reimplemented over the simulated node: persistency primitives
// (Map/Unmap, PersistBegin/PersistEnd, Persist), GPU-optimized logging
// (Hierarchical Coalesced Logging plus a conventional lock-based log), and
// group-based double-buffered checkpointing.
package gpm

import (
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/pmem"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Context binds one simulated node: the unified memory space, the GPU, the
// CPU host, the PM filesystem, and the run's timeline. Every libGPM call
// operates on a Context; workloads share one per run.
type Context struct {
	Params   *sim.Params
	Space    *memsys.Space
	Dev      *gpu.Device
	Host     *cpusim.Host
	FS       *fsim.FS
	GFS      *fsim.GPUFS
	Timeline *sim.Timeline

	// Tel is the optional telemetry sink (nil by default: every hook below
	// degrades to a no-op). Attach with AttachTelemetry, never by assigning
	// the field directly, so the hardware models get wired too.
	Tel *telemetry.Telemetry

	// pid identifies this Context's process lane in the trace (0 = untraced).
	pid int

	// persist-epoch tracking for PersistBegin/PersistEnd span pairing.
	persistStart sim.Duration
	persistOpen  bool

	// Cached gpm.* metrics; nil (no-op) until AttachTelemetry.
	telPersistEpochs *telemetry.Counter
	telCheckpoints   *telemetry.Counter
	telCheckpointUS  *telemetry.Histogram
	telRestoreUS     *telemetry.Histogram
	telCrashes       *telemetry.Counter
}

// AttachTelemetry wires the whole node into tel: the Context gets a trace
// process lane named label, and the GPU, PM device, LLC, and PCIe link mirror
// their counters into tel's registry. Passing nil detaches everything.
func (c *Context) AttachTelemetry(tel *telemetry.Telemetry, label string) {
	c.Tel = tel
	c.pid = tel.Tracer().NewProcess(label)
	r := tel.Registry()
	c.Dev.AttachTelemetry(r)
	c.Space.AttachTelemetry(r)
	c.telPersistEpochs = r.Counter("gpm.persist_epochs")
	c.telCheckpoints = r.Counter("gpm.checkpoints")
	c.telCheckpointUS = r.Histogram("gpm.checkpoint_us", telemetry.LatencyBucketsUS)
	c.telRestoreUS = r.Histogram("gpm.restore_us", telemetry.LatencyBucketsUS)
	c.telCrashes = r.Counter("gpm.crashes")
}

// SpanStart returns the current simulated instant for a later SpanEnd. With
// no telemetry attached it returns 0 and SpanEnd discards the span; the
// Timeline read is an observation only and never advances simulated time.
func (c *Context) SpanStart() sim.Duration {
	if c.Tel == nil || c.Tel.Trace == nil {
		return 0
	}
	return c.Timeline.Total()
}

// SpanEnd records a span on track tid from start to the current simulated
// instant. No-op when telemetry is detached.
func (c *Context) SpanEnd(tid int, name, cat string, start sim.Duration) {
	if c.Tel == nil || c.Tel.Trace == nil {
		return
	}
	now := c.Timeline.Total()
	c.Tel.Trace.Record(telemetry.Span{
		Name: name, Cat: cat, PID: c.pid, TID: tid,
		Start: start, Dur: now - start,
	})
}

// NewContext assembles a node with the given parameters and memory sizes.
func NewContext(params *sim.Params, cfg memsys.Config) *Context {
	space := memsys.New(params, cfg)
	fs := fsim.New(space)
	return &Context{
		Params:   params,
		Space:    space,
		Dev:      gpu.New(space),
		Host:     cpusim.NewHost(space),
		FS:       fs,
		GFS:      fsim.NewGPUFS(fs),
		Timeline: sim.NewTimeline(),
	}
}

// NewDefaultContext is NewContext with default parameters and sizes.
func NewDefaultContext() *Context {
	return NewContext(sim.Default(), memsys.DefaultConfig())
}

// SetWorkers bounds how many threadblocks execute on real goroutines at
// once (0 = GOMAXPROCS). Simulated results are identical for every value —
// the worker count trades wall-clock time only.
func (c *Context) SetWorkers(n int) { c.Dev.SetWorkers(n) }

// Launch runs a kernel and accounts its duration under the given timeline
// segment. It returns the kernel result.
func (c *Context) Launch(segment string, blocks, tpb int, kern func(*gpu.Thread)) gpu.Result {
	start := c.SpanStart()
	res := c.Dev.Launch(segment, blocks, tpb, kern)
	c.Timeline.Add(segment, res.Elapsed)
	c.SpanEnd(telemetry.TrackKernel, segment, "kernel", start)
	return res
}

// RunCPU runs a CPU phase on n threads and accounts its duration under the
// given timeline segment, returning the phase duration.
func (c *Context) RunCPU(segment string, n int, fn func(*cpusim.Thread)) sim.Duration {
	start := c.SpanStart()
	d := c.Host.Run(n, fn)
	c.Timeline.Add(segment, d)
	c.SpanEnd(telemetry.TrackCPU, segment, "cpu", start)
	return d
}

// Crash simulates a whole-node power failure at this instant: volatile
// memory and caches are lost; PM retains exactly what was persisted.
func (c *Context) Crash() {
	c.CrashWith(nil, 0)
}

// CrashWith is Crash under an adversarial persistence fault model: model
// (nil = clean rollback) decides which unpersisted PM writes survive, with
// seed making the outcome deterministic and replayable. It returns what the
// fault injection did to the device.
func (c *Context) CrashWith(model pmem.FaultModel, seed uint64) pmem.CrashStats {
	start := c.SpanStart()
	st := c.Space.CrashWith(model, seed)
	c.telCrashes.Inc()
	c.SpanEnd(telemetry.TrackRecovery, "crash", "crash", start)
	return st
}
