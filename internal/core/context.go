// Package gpm is libGPM, the paper's GPU persistence library (§5),
// reimplemented over the simulated node: persistency primitives
// (Map/Unmap, PersistBegin/PersistEnd, Persist), GPU-optimized logging
// (Hierarchical Coalesced Logging plus a conventional lock-based log), and
// group-based double-buffered checkpointing.
package gpm

import (
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

// Context binds one simulated node: the unified memory space, the GPU, the
// CPU host, the PM filesystem, and the run's timeline. Every libGPM call
// operates on a Context; workloads share one per run.
type Context struct {
	Params   *sim.Params
	Space    *memsys.Space
	Dev      *gpu.Device
	Host     *cpusim.Host
	FS       *fsim.FS
	GFS      *fsim.GPUFS
	Timeline *sim.Timeline
}

// NewContext assembles a node with the given parameters and memory sizes.
func NewContext(params *sim.Params, cfg memsys.Config) *Context {
	space := memsys.New(params, cfg)
	fs := fsim.New(space)
	return &Context{
		Params:   params,
		Space:    space,
		Dev:      gpu.New(space),
		Host:     cpusim.NewHost(space),
		FS:       fs,
		GFS:      fsim.NewGPUFS(fs),
		Timeline: sim.NewTimeline(),
	}
}

// NewDefaultContext is NewContext with default parameters and sizes.
func NewDefaultContext() *Context {
	return NewContext(sim.Default(), memsys.DefaultConfig())
}

// Launch runs a kernel and accounts its duration under the given timeline
// segment. It returns the kernel result.
func (c *Context) Launch(segment string, blocks, tpb int, kern func(*gpu.Thread)) gpu.Result {
	res := c.Dev.Launch(segment, blocks, tpb, kern)
	c.Timeline.Add(segment, res.Elapsed)
	return res
}

// RunCPU runs a CPU phase on n threads and accounts its duration under the
// given timeline segment, returning the phase duration.
func (c *Context) RunCPU(segment string, n int, fn func(*cpusim.Thread)) sim.Duration {
	d := c.Host.Run(n, fn)
	c.Timeline.Add(segment, d)
	return d
}

// Crash simulates a whole-node power failure at this instant: volatile
// memory and caches are lost; PM retains exactly what was persisted.
func (c *Context) Crash() {
	c.Space.Crash()
}
