package gpm

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Log kinds.
const (
	logKindConv uint32 = 1
	logKindHCL  uint32 = 2
)

const (
	logMagic      uint64 = 0x47504d4c4f470001 // "GPMLOG" v1
	logHeaderSize        = 64
)

// Log errors.
var (
	ErrLogFull     = errors.New("gpm: log partition full")
	ErrBadLog      = errors.New("gpm: not a gpm log file")
	ErrEntrySize   = errors.New("gpm: log entry size must be a positive multiple of 4 bytes")
	ErrEmptyLog    = errors.New("gpm: log entry missing")
	ErrWrongKind   = errors.New("gpm: operation not supported by this log kind")
	ErrBadGeometry = errors.New("gpm: log geometry does not match kernel grid")
)

// Log is a PM-resident write-ahead log (§5.2). Two layouts exist:
//
//   - Conventional: N partitions, each an append-only region guarded by a
//     lock. Inserts to the same partition serialize (the prior-work
//     distributed-log design HCL is compared against, Fig 11).
//   - HCL (Hierarchical Coalesced Logging): the log mirrors the GPU's
//     execution hierarchy so every thread owns statically computable slots
//     and no insert ever takes a lock; entries are striped in 4-byte chunks
//     across 128-byte units so a warp's inserts coalesce into single
//     stores (Figs 4 and 5).
//
// All metadata (geometry, per-thread tails, partition heads) lives in PM,
// so a log reopened after a crash is fully usable for recovery.
type Log struct {
	ctx  *Context
	m    *Mapping
	kind uint32

	// HCL geometry.
	blocks, tpb     int
	warpsPerBlock   int
	chunksPerThread int

	// Conventional geometry.
	partitions int
	capBytes   int
	locks      []sync.Mutex

	tailsBase uint64 // per-thread tails (HCL) or per-partition heads (conv)
	dataBase  uint64

	// Cached log.{hcl,conv}.* counters; nil (no-op) when the owning
	// Context has no telemetry attached.
	telInserts     *telemetry.Counter
	telInsertBytes *telemetry.Counter
	telRemoves     *telemetry.Counter
}

// attachTelemetry caches this log's counters from the owning Context's
// registry, keyed by kind so HCL and conventional traffic stay separable
// (the Fig 11 comparison).
func (l *Log) attachTelemetry() {
	if l.ctx.Tel == nil {
		return
	}
	r := l.ctx.Tel.Registry()
	kind := "conv"
	if l.kind == logKindHCL {
		kind = "hcl"
	}
	l.telInserts = r.Counter("log." + kind + ".inserts")
	l.telInsertBytes = r.Counter("log." + kind + ".insert_bytes")
	l.telRemoves = r.Counter("log." + kind + ".removes")
}

func align256(x uint64) uint64 { return (x + 255) / 256 * 256 }

// LogCreateHCL creates an HCL log sized for a grid of blocks×tpb threads
// (gpmlog_create_hcl). The file's capacity is divided so that every thread
// owns an equal number of 4-byte chunk slots.
func (c *Context) LogCreateHCL(path string, size int64, blocks, tpb int) (*Log, error) {
	if blocks <= 0 || tpb <= 0 {
		return nil, fmt.Errorf("gpm: invalid HCL grid %dx%d", blocks, tpb)
	}
	start := c.SpanStart()
	ws := c.Params.WarpSize
	warpsPerBlock := (tpb + ws - 1) / ws
	totalThreads := blocks * tpb
	overhead := align256(logHeaderSize + uint64(totalThreads)*4)
	warpBytes := int64(blocks) * int64(warpsPerBlock) * int64(c.Params.CoalesceBytes)
	chunksPerThread := (size - int64(overhead)) / warpBytes
	if chunksPerThread < 1 {
		return nil, fmt.Errorf("gpm: HCL log of %d bytes too small for %d threads", size, totalThreads)
	}
	m, err := c.Map(path, size, true)
	if err != nil {
		return nil, err
	}
	l := &Log{
		ctx: c, m: m, kind: logKindHCL,
		blocks: blocks, tpb: tpb,
		warpsPerBlock:   warpsPerBlock,
		chunksPerThread: int(chunksPerThread),
		tailsBase:       m.Addr + logHeaderSize,
		dataBase:        m.Addr + overhead,
	}
	l.writeHeader()
	l.attachTelemetry()
	c.SpanEnd(telemetry.TrackLog, "log-create", "log", start)
	return l, nil
}

// LogCreateConv creates a conventional distributed log with nPartitions
// lock-guarded append regions (gpmlog_create_conv).
func (c *Context) LogCreateConv(path string, size int64, nPartitions int) (*Log, error) {
	if nPartitions <= 0 {
		return nil, fmt.Errorf("gpm: invalid partition count %d", nPartitions)
	}
	start := c.SpanStart()
	overhead := align256(logHeaderSize + uint64(nPartitions)*4)
	capBytes := (size - int64(overhead)) / int64(nPartitions) / 4 * 4
	if capBytes < 4 {
		return nil, fmt.Errorf("gpm: conventional log of %d bytes too small for %d partitions", size, nPartitions)
	}
	m, err := c.Map(path, size, true)
	if err != nil {
		return nil, err
	}
	l := &Log{
		ctx: c, m: m, kind: logKindConv,
		partitions: nPartitions,
		capBytes:   int(capBytes),
		locks:      make([]sync.Mutex, nPartitions),
		tailsBase:  m.Addr + logHeaderSize,
		dataBase:   m.Addr + overhead,
	}
	l.writeHeader()
	l.attachTelemetry()
	c.SpanEnd(telemetry.TrackLog, "log-create", "log", start)
	return l, nil
}

func (l *Log) writeHeader() {
	sp := l.ctx.Space
	sp.WriteU64(l.m.Addr, logMagic)
	sp.WriteU32(l.m.Addr+8, l.kind)
	switch l.kind {
	case logKindHCL:
		sp.WriteU32(l.m.Addr+12, uint32(l.blocks))
		sp.WriteU32(l.m.Addr+16, uint32(l.tpb))
		sp.WriteU32(l.m.Addr+20, uint32(l.chunksPerThread))
	case logKindConv:
		sp.WriteU32(l.m.Addr+12, uint32(l.partitions))
		sp.WriteU32(l.m.Addr+16, uint32(l.capBytes))
	}
	sp.PersistRange(l.m.Addr, logHeaderSize)
	l.ctx.Timeline.Add("log-meta", 3*sim.Microsecond)
}

// LogOpen reopens an existing log from its PM header (gpmlog_open), e.g.
// after a crash, for recovery.
func (c *Context) LogOpen(path string) (*Log, error) {
	m, err := c.Map(path, 0, false)
	if err != nil {
		return nil, err
	}
	sp := c.Space
	if sp.ReadU64(m.Addr) != logMagic {
		return nil, ErrBadLog
	}
	l := &Log{ctx: c, m: m, kind: sp.ReadU32(m.Addr + 8), tailsBase: m.Addr + logHeaderSize}
	switch l.kind {
	case logKindHCL:
		l.blocks = int(sp.ReadU32(m.Addr + 12))
		l.tpb = int(sp.ReadU32(m.Addr + 16))
		l.chunksPerThread = int(sp.ReadU32(m.Addr + 20))
		ws := c.Params.WarpSize
		l.warpsPerBlock = (l.tpb + ws - 1) / ws
		l.dataBase = m.Addr + align256(logHeaderSize+uint64(l.blocks*l.tpb)*4)
	case logKindConv:
		l.partitions = int(sp.ReadU32(m.Addr + 12))
		l.capBytes = int(sp.ReadU32(m.Addr + 16))
		l.locks = make([]sync.Mutex, l.partitions)
		l.dataBase = m.Addr + align256(logHeaderSize+uint64(l.partitions)*4)
	default:
		return nil, ErrBadLog
	}
	l.attachTelemetry()
	return l, nil
}

// Close closes the log (gpmlog_close); contents persist in the file.
func (l *Log) Close() { l.ctx.Unmap(l.m) }

// IsHCL reports whether this is an HCL log.
func (l *Log) IsHCL() bool { return l.kind == logKindHCL }

// Blocks returns the HCL grid's block count.
func (l *Log) Blocks() int { return l.blocks }

// ThreadsPerBlock returns the HCL grid's block width.
func (l *Log) ThreadsPerBlock() int { return l.tpb }

// Partitions returns the conventional log's partition count.
func (l *Log) Partitions() int { return l.partitions }

// ---- Conventional logging ----

// convCost is the serialized cost of one lock-protected insert from a GPU
// thread: spin-acquire the PM-resident lock (~2 round trips), read the
// head, append and persist the entry, bump and persist the head — about
// five PCIe round trips end to end, all serialized per partition.
func (l *Log) convCost(n int) sim.Duration {
	p := l.ctx.Params
	return 100*sim.Nanosecond + 5*p.PCIeRTT + sim.DurationOfBytes(int64(n), p.PMSeqUnalignedBW)
}

// convInsert appends an entry to one partition under its lock.
func (l *Log) convInsert(t *gpu.Thread, data []byte, partition int) error {
	if partition < 0 {
		partition = t.GlobalID() % l.partitions
	}
	partition %= l.partitions
	t.Serialize(fmt.Sprintf("%s/p%d", l.m.File.Name(), partition), l.convCost(len(data)))
	l.locks[partition].Lock()
	defer l.locks[partition].Unlock()
	headAddr := l.tailsBase + uint64(partition)*4
	head := t.LoadU32(headAddr)
	if int(head)+len(data) > l.capBytes {
		return ErrLogFull
	}
	base := l.dataBase + uint64(partition)*uint64(l.capBytes)
	t.StoreBytes(base+uint64(head), data)
	Persist(t)
	t.StoreU32(headAddr, head+uint32(len(data)))
	Persist(t)
	l.telInserts.Inc()
	l.telInsertBytes.Add(int64(len(data)))
	return nil
}

// convRemove pops n bytes from a partition's tail.
func (l *Log) convRemove(t *gpu.Thread, n, partition int) error {
	if partition < 0 {
		partition = t.GlobalID() % l.partitions
	}
	partition %= l.partitions
	t.Serialize(fmt.Sprintf("%s/p%d", l.m.File.Name(), partition), l.convCost(4))
	l.locks[partition].Lock()
	defer l.locks[partition].Unlock()
	headAddr := l.tailsBase + uint64(partition)*4
	head := t.LoadU32(headAddr)
	if int(head) < n {
		return ErrEmptyLog
	}
	t.StoreU32(headAddr, head-uint32(n))
	Persist(t)
	l.telRemoves.Inc()
	return nil
}

// HostPartitionBytes returns a conventional partition's content from the
// host, up to its current head (for CPU-side recovery and tests).
func (l *Log) HostPartitionBytes(partition int) []byte {
	if l.kind != logKindConv {
		panic(ErrWrongKind)
	}
	head := l.ctx.Space.ReadU32(l.tailsBase + uint64(partition)*4)
	out := make([]byte, head)
	l.ctx.Space.Read(l.dataBase+uint64(partition)*uint64(l.capBytes), out)
	return out
}
