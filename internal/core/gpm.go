package gpm

import (
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Mapping is a PM-resident file mapped into the unified address space
// (gpm_map, §5.1): the GPU can load/store through Addr directly thanks to
// UVA, and the CPU sees the same bytes at the same address.
type Mapping struct {
	File *fsim.File
	Addr uint64
	Size int64
}

// Map creates (or opens, if create is false) a PM-resident file of the
// given size and maps it into the GPU's address space (gpm_map).
func (c *Context) Map(path string, size int64, create bool) (*Mapping, error) {
	start := c.SpanStart()
	var f *fsim.File
	var err error
	if create {
		f, err = c.FS.OpenOrCreate(path, size, 0)
	} else {
		f, err = c.FS.Open(path)
	}
	if err != nil {
		return nil, err
	}
	c.Timeline.Add("map", 30*sim.Microsecond) // mmap + cudaHostRegister-style setup
	c.SpanEnd(telemetry.TrackMap, "gpm_map "+path, "map", start)
	return &Mapping{File: f, Addr: f.Mmap(), Size: f.Size()}, nil
}

// Unmap releases a mapping (gpm_unmap). Contents persist in the file.
func (c *Context) Unmap(m *Mapping) {
	start := c.SpanStart()
	c.Timeline.Add("map", 10*sim.Microsecond)
	c.SpanEnd(telemetry.TrackMap, "gpm_unmap", "map", start)
}

// PersistBegin disables DDIO for GPU writes (gpm_persist_begin, §5.1):
// inside a PersistBegin/PersistEnd region, a system-scoped fence guarantees
// that prior writes reached the ADR persistence domain. The switch writes
// the perfctrlsts_0 I/O register, so it is placed around kernel launches,
// not inside kernels.
func (c *Context) PersistBegin() {
	c.persistStart = c.SpanStart()
	c.persistOpen = true
	c.Space.SetDDIOOff(true)
	c.Timeline.Add("ddio-toggle", 2*sim.Microsecond)
}

// PersistEnd re-enables DDIO (gpm_persist_end).
func (c *Context) PersistEnd() {
	c.Space.SetDDIOOff(false)
	c.Timeline.Add("ddio-toggle", 2*sim.Microsecond)
	if c.persistOpen {
		c.persistOpen = false
		c.telPersistEpochs.Inc()
		c.SpanEnd(telemetry.TrackPersist, "persist-epoch", "persist", c.persistStart)
	}
}

// Persist ensures the calling GPU thread's prior writes are durable
// (gpm_persist, §5.1): a system-scoped fence, which — with DDIO disabled —
// completes only when the writes have drained past the PCIe and the memory
// controller's WPQ. Called from inside kernels.
func Persist(t *gpu.Thread) {
	t.FenceSystem()
}
