// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the simulated system: Fig 1a/1b, Fig 3, Fig 9,
// Fig 10, Fig 11a/11b, Fig 12, Table 4, Table 5, plus the §6.1 DNN
// checkpoint-frequency study and the §3.2/§6.1 Optane pattern microbench.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one generated report: a named grid with a header row.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Add(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case float32:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// TSV renders the table as tab-separated values (the artifact's report
// format, Appendix A.6).
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell returns the value at (row, col) or "" if out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}

// FindRow returns the first row whose first column equals key, or nil.
func (t *Table) FindRow(key string) []string {
	for _, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return r
		}
	}
	return nil
}
