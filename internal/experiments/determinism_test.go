package experiments

// The determinism suite is the engine's bit-identity contract, checked at
// the API surface users see: running any GPMbench workload with 1 worker
// (the serial reference) and with 8 workers must produce identical simulated
// durations, identical metrics TSV bytes, identical Chrome-trace bytes, and
// identical crash-campaign verdicts. CI runs this file under -race with
// -cpu=1,4 so real parallel interleavings are exercised, not just simulated.

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/gpm-sim/gpm/internal/crash"
	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// runReport captures everything a worker count could possibly perturb.
type runReport struct {
	rep *workloads.Report
	tsv string
}

func runAt(t *testing.T, mk func() workloads.Workload, cfg workloads.Config, workers int) runReport {
	t.Helper()
	tel := telemetry.New()
	rep, err := workloads.RunWorkload(mk(),
		workloads.WithConfig(cfg),
		workloads.WithTelemetry(tel),
		workloads.WithWorkers(workers))
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return runReport{rep: rep, tsv: tel.Metrics.TSV()}
}

// TestDeterminismAcrossWorkers runs every GPMbench workload with the serial
// reference and an 8-goroutine pool and requires bit-identical results.
func TestDeterminismAcrossWorkers(t *testing.T) {
	cfg := workloads.QuickConfig()
	for _, mk := range Suite() {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			t.Parallel()
			serial := runAt(t, mk, cfg, 1)
			parallel := runAt(t, mk, cfg, 8)
			if serial.rep.OpTime != parallel.rep.OpTime {
				t.Errorf("simulated OpTime depends on workers: 1 -> %v, 8 -> %v",
					serial.rep.OpTime, parallel.rep.OpTime)
			}
			if serial.rep.TotalTime != parallel.rep.TotalTime {
				t.Errorf("simulated TotalTime depends on workers: 1 -> %v, 8 -> %v",
					serial.rep.TotalTime, parallel.rep.TotalTime)
			}
			if serial.rep.CkptTime != parallel.rep.CkptTime {
				t.Errorf("CkptTime depends on workers: 1 -> %v, 8 -> %v",
					serial.rep.CkptTime, parallel.rep.CkptTime)
			}
			if serial.rep.PMBytes != parallel.rep.PMBytes || serial.rep.Ops != parallel.rep.Ops {
				t.Errorf("PM traffic depends on workers: 1 -> (%d B, %d ops), 8 -> (%d B, %d ops)",
					serial.rep.PMBytes, serial.rep.Ops, parallel.rep.PMBytes, parallel.rep.Ops)
			}
			if serial.tsv != parallel.tsv {
				t.Errorf("metrics TSV differs between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s",
					serial.tsv, parallel.tsv)
			}
		})
	}
}

// TestDeterminismTraceBytes requires the Chrome-trace export to be
// byte-identical across worker counts for a representative workload (spans
// are keyed on simulated time, so host scheduling must not leak in).
func TestDeterminismTraceBytes(t *testing.T) {
	cfg := workloads.QuickConfig()
	trace := func(workers int) []byte {
		tel := telemetry.New()
		if _, err := workloads.RunWorkload(kvstore.New(),
			workloads.WithConfig(cfg),
			workloads.WithTelemetry(tel),
			workloads.WithWorkers(workers)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tel.Trace.ChromeTrace()
	}
	serial := trace(1)
	parallel := trace(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("Chrome trace differs between 1 and 8 workers (%d vs %d bytes)",
			len(serial), len(parallel))
	}
}

// TestDeterminismCampaignVerdicts sweeps a crash campaign serially and with
// a worker pool at both levels (campaign runs and GPU blocks) and requires
// identical record sets and identical merged metrics.
func TestDeterminismCampaignVerdicts(t *testing.T) {
	cfg := workloads.QuickConfig()
	sweep := func(workers int) ([]byte, string) {
		c := &crash.Campaign{Seed: 7, MaxPoints: 2, RecrashDepth: 1, Workers: workers}
		runCfg := cfg
		runCfg.Workers = workers
		tel := telemetry.New()
		runCfg.Telemetry = tel
		wc, err := c.Run(func() workloads.Crasher { return kvstore.New() }, runCfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.Marshal(wc)
		if err != nil {
			t.Fatal(err)
		}
		return blob, tel.Metrics.TSV()
	}
	serialBlob, serialTSV := sweep(1)
	parBlob, parTSV := sweep(8)
	if !bytes.Equal(serialBlob, parBlob) {
		t.Fatalf("campaign verdicts differ between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s",
			serialBlob, parBlob)
	}
	if serialTSV != parTSV {
		t.Fatalf("campaign metrics differ between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s",
			serialTSV, parTSV)
	}
}
