package experiments

import (
	"sort"

	"github.com/gpm-sim/gpm/internal/dnn"
	"github.com/gpm-sim/gpm/internal/finance"
	"github.com/gpm-sim/gpm/internal/gpdb"
	"github.com/gpm-sim/gpm/internal/stencil"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func dnnNew() workloads.Workload { return dnn.New() }
func cfdNew() workloads.Workload { return stencil.NewCFD() }
func blkNew() workloads.Workload { return finance.NewBlackScholes() }
func hsNew() workloads.Workload  { return stencil.NewHotspot() }

// gpdbNew builds the gpDB workload for op index 0 (INSERT) or 1 (UPDATE).
func gpdbNew(op int) workloads.Workload {
	if op == 0 {
		return gpdb.New(gpdb.Insert)
	}
	return gpdb.New(gpdb.Update)
}

// Breakdown decomposes each workload's GPM run into its timeline segments
// (kernels, persists, staging, metadata) as percentages of total simulated
// time — the analysis view behind the paper's §6.1 discussions of where
// each class of workload spends its time.
func Breakdown(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "breakdown",
		Header: []string{"workload", "total_us", "segment", "us", "pct"}}
	for _, mk := range Suite() {
		w := mk()
		env := workloads.NewEnv(workloads.GPM, cfg)
		if err := w.Setup(env); err != nil {
			return nil, err
		}
		env.BeginOps()
		if err := w.Run(env); err != nil {
			return nil, err
		}
		tl := env.Ctx.Timeline
		total := env.OpTime()
		type seg struct {
			name string
			us   float64
		}
		var segs []seg
		for _, name := range tl.Segments() {
			if name == "setup" || name == "map" {
				continue // pre-op staging
			}
			d := tl.Segment(name)
			if d <= 0 {
				continue
			}
			segs = append(segs, seg{name, d.Microseconds()})
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].us > segs[j].us })
		if len(segs) > 6 {
			segs = segs[:6] // largest six segments per workload
		}
		for _, s := range segs {
			pct := s.us / total.Microseconds() * 100
			t.Add(w.Name(), total.Microseconds(), s.name, s.us, pct)
		}
	}
	return t, nil
}

// CPUDatabase reproduces §6.1's "Benefits over CPU-only persistence" gpDB
// comparison: the paper converted Virginian's CUDA engine to OpenMP and
// measured GPM speedups of 3.1× (INSERTs) and 6.9× (UPDATEs) with the same
// write-ahead-logging recoverability.
func CPUDatabase(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "cpudb", Header: []string{"op", "gpm_speedup_over_cpu"}}
	for _, mk := range []func() workloads.Workload{
		func() workloads.Workload { return gpdbNew(0) },
		func() workloads.Workload { return gpdbNew(1) },
	} {
		g, err := workloads.RunOne(mk(), workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		c, err := workloads.RunOne(mk(), workloads.CPUOnly, cfg)
		if err != nil {
			return nil, err
		}
		t.Add(g.Workload, float64(c.OpTime)/float64(g.OpTime))
	}
	return t, nil
}

// CheckpointFrequency reproduces §6.1's total-execution-time claim: "various
// workloads' total execution times improved by 19%-122% over different
// checkpointing frequencies". For every checkpointing workload and two
// frequencies it reports how much faster the whole run (compute +
// checkpoints) is with GPM than with CAP-mm.
func CheckpointFrequency(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "ckptfreq",
		Header: []string{"workload", "ckpt_every", "total_improvement_pct"}}
	type entry struct {
		mk   func() workloads.Workload
		base int
		set  func(*workloads.Config, int)
	}
	entries := []entry{
		{func() workloads.Workload { return dnnNew() }, cfg.DNNCkptEach,
			func(c *workloads.Config, v int) { c.DNNCkptEach = v }},
		{func() workloads.Workload { return cfdNew() }, cfg.CFDCkptEach,
			func(c *workloads.Config, v int) { c.CFDCkptEach = v }},
		{func() workloads.Workload { return blkNew() }, cfg.BLKCkptEach,
			func(c *workloads.Config, v int) { c.BLKCkptEach = v }},
		{func() workloads.Workload { return hsNew() }, cfg.HSCkptEach,
			func(c *workloads.Config, v int) { c.HSCkptEach = v }},
	}
	for _, e := range entries {
		for _, every := range []int{e.base, e.base * 2} {
			c := cfg
			e.set(&c, every)
			g, err := workloads.RunOne(e.mk(), workloads.GPM, c)
			if err != nil {
				return nil, err
			}
			m, err := workloads.RunOne(e.mk(), workloads.CAPmm, c)
			if err != nil {
				return nil, err
			}
			imp := (float64(m.OpTime)/float64(g.OpTime) - 1) * 100
			t.Add(g.Workload, every, imp)
		}
	}
	return t, nil
}
