package experiments

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/dnn"
	"github.com/gpm-sim/gpm/internal/gpdb"
	"github.com/gpm-sim/gpm/internal/graph"
	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/scan"
	"github.com/gpm-sim/gpm/internal/stencil"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Figure1a reproduces Fig 1a: throughput of batched SETs on the three CPU
// PM key-value stores versus gpKVS on GPM (Mops/s).
func Figure1a(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "figure1a", Header: []string{"kvs", "throughput_mops", "speedup_of_gpm"}}
	gpm, err := workloads.RunOne(kvstore.New(), workloads.GPM, cfg)
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name  string
		style kvstore.Style
	}{
		{"pmemKV", kvstore.StylePmemKV},
		{"RocksDB-pmem", kvstore.StyleRocksDB},
		{"MatrixKV", kvstore.StyleMatrixKV},
	}
	for _, r := range rows {
		rep, err := workloads.RunOne(kvstore.NewCPU(r.style), workloads.CPUOnly, cfg)
		if err != nil {
			return nil, err
		}
		t.Add(r.name, rep.Throughput()/1e6, gpm.Throughput()/rep.Throughput())
	}
	t.Add("GPM-KVS", gpm.Throughput()/1e6, 1.0)
	return t, nil
}

// Figure1b reproduces Fig 1b: speedup of GPM over multi-threaded CPU PM
// applications for BFS, SRAD, and PS.
func Figure1b(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "figure1b", Header: []string{"workload", "speedup_over_cpu"}}
	mk := []func() workloads.Workload{
		func() workloads.Workload { return graph.New() },
		func() workloads.Workload { return stencil.NewSRAD() },
		func() workloads.Workload { return scan.New() },
	}
	for _, f := range mk {
		g, err := workloads.RunOne(f(), workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		c, err := workloads.RunOne(f(), workloads.CPUOnly, cfg)
		if err != nil {
			return nil, err
		}
		t.Add(g.Workload, float64(c.OpTime)/float64(g.OpTime))
	}
	return t, nil
}

// fig9Modes are the systems compared in Fig 9, normalized to CAP-fs.
var fig9Modes = []workloads.Mode{workloads.CAPmm, workloads.GPM, workloads.GPUfs}

// Figure9 reproduces Fig 9: speedup of CAP-mm, GPM, and GPUfs over CAP-fs
// for every GPMbench workload ("*" marks GPUfs-unsupported workloads, as in
// the paper).
func Figure9(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "figure9", Header: []string{"workload", "class", "CAP-mm", "GPM", "GPUfs"}}
	for _, mk := range Suite() {
		base, err := workloads.RunOne(mk(), workloads.CAPfs, cfg)
		if err != nil {
			return nil, err
		}
		row := []interface{}{base.Workload, base.Class}
		for _, m := range fig9Modes {
			w := mk()
			if !w.Supports(m) {
				row = append(row, "*")
				continue
			}
			rep, err := workloads.RunOne(w, m, cfg)
			if err != nil {
				if m == workloads.GPUfs {
					row = append(row, "*") // fails to execute (§6.1)
					continue
				}
				return nil, err
			}
			row = append(row, opTimeFor(base)/opTimeFor(rep))
		}
		t.Add(row...)
	}
	return t, nil
}

// Table4 reproduces Table 4: write amplification of CAP over GPM.
func Table4(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "table4", Header: []string{"workload", "class", "write_amplification"}}
	for _, mk := range Suite() {
		g, err := workloads.RunOne(mk(), workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		c, err := workloads.RunOne(mk(), workloads.CAPmm, cfg)
		if err != nil {
			return nil, err
		}
		t.Add(g.Workload, g.Class, float64(c.PMBytes)/float64(g.PMBytes))
	}
	return t, nil
}

// Figure10 reproduces Fig 10: GPM-NDP, GPM, GPM-eADR, and CAP-eADR speedups
// over CAP-fs.
func Figure10(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "figure10",
		Header: []string{"workload", "class", "GPM-NDP", "GPM", "GPM-eADR", "CAP-eADR"}}
	modes := []workloads.Mode{workloads.GPMNDP, workloads.GPM, workloads.GPMeADR, workloads.CAPeADR}
	for _, mk := range Suite() {
		base, err := workloads.RunOne(mk(), workloads.CAPfs, cfg)
		if err != nil {
			return nil, err
		}
		row := []interface{}{base.Workload, base.Class}
		for _, m := range modes {
			rep, err := workloads.RunOne(mk(), m, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, opTimeFor(base)/opTimeFor(rep))
		}
		t.Add(row...)
	}
	return t, nil
}

// Figure11a reproduces Fig 11a: speedup of HCL over conventional
// distributed logging for the transactional workloads (INSERTs are skipped
// as in the paper — they only log the table size).
func Figure11a(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "figure11a", Header: []string{"workload", "hcl_speedup"}}
	{
		conv, err := workloads.RunOne(&kvstore.GpKVS{ConvLog: true}, workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		hcl, err := workloads.RunOne(kvstore.New(), workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		t.Add("gpKVS", float64(conv.OpTime)/float64(hcl.OpTime))
	}
	{
		conv, err := workloads.RunOne(&gpdb.GpDB{Op: gpdb.Update, ConvLog: true}, workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		hcl, err := workloads.RunOne(gpdb.New(gpdb.Update), workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		t.Add("gpDB(U)", float64(conv.OpTime)/float64(hcl.OpTime))
	}
	return t, nil
}

// Figure12 reproduces Fig 12: realized PM write bandwidth under GPM per
// workload, with the access-pattern fractions that explain it (§6.1).
func Figure12(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "figure12",
		Header: []string{"workload", "pm_write_gbps", "seq_frac", "aligned_frac", "max_pcie_gbps"}}
	for _, mk := range Suite() {
		rep, err := workloads.RunOne(mk(), workloads.GPM, cfg)
		if err != nil {
			return nil, err
		}
		// Bandwidth over the persist-active window: for checkpointing
		// workloads that is the checkpoint time (the paper measures PM
		// write bandwidth, not compute-diluted averages).
		bw := float64(rep.PMBytes) / (opTimeFor(rep) / 1e9)
		t.Add(rep.Workload, bw/1e9, rep.SeqFrac, rep.AlignedFrac, 13.0)
	}
	return t, nil
}

// Table5 reproduces Table 5: restoration latency as a percentage of
// operation time, crashing just before commit (worst case) for the
// transactional workloads and mid-run for checkpointing ones.
func Table5(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "table5", Header: []string{"workload", "class", "restore_pct"}}
	for _, mk := range Crashers() {
		w := mk()
		// Calibration run: count device operations so the crash can land
		// near the end of the last transaction (§6.2 worst case).
		total, err := countOps(w, cfg)
		if err != nil {
			return nil, err
		}
		crashAt := total * 9 / 10
		if crashAt < 1 {
			crashAt = 1
		}
		rep, err := workloads.RunWithCrash(mk(), workloads.GPM, cfg, crashAt)
		if err != nil {
			return nil, err
		}
		t.Add(rep.Workload, rep.Class, rep.RestoreFraction()*100)
	}
	return t, nil
}

// countOps measures the device-operation count of a full GPM run.
func countOps(w workloads.Workload, cfg workloads.Config) (int64, error) {
	env := workloads.NewEnv(workloads.GPM, cfg)
	if err := w.Setup(env); err != nil {
		return 0, err
	}
	env.Ctx.Dev.SetAbortCheck(func(int64) bool { return false })
	env.BeginOps()
	if err := w.Run(env); err != nil {
		return 0, err
	}
	n := env.Ctx.Dev.ObservedOps()
	env.Ctx.Dev.SetAbortCheck(nil)
	return n, nil
}

// DNNFrequency reproduces the §6.1 DNN study: total-time overhead of
// checkpointing at different frequencies, plus per-checkpoint and restore
// latency.
func DNNFrequency(cfg workloads.Config) (*Table, error) {
	t := &Table{Name: "dnnfreq",
		Header: []string{"ckpt_every", "total_ms", "overhead_pct", "ckpt_ms_each", "restore_ms"}}
	// Baseline: no checkpointing (one checkpoint at the very end).
	base := cfg
	base.DNNCkptEach = cfg.DNNIters
	b, err := workloads.RunOne(dnn.New(), workloads.GPM, base)
	if err != nil {
		return nil, err
	}
	baseCompute := float64(b.OpTime - b.CkptTime)
	for _, every := range []int{cfg.DNNCkptEach, cfg.DNNCkptEach * 2} {
		c := cfg
		c.DNNCkptEach = every
		rep, err := workloads.RunOne(dnn.New(), workloads.GPM, c)
		if err != nil {
			return nil, err
		}
		nCkpts := cfg.DNNIters / every
		if nCkpts == 0 {
			nCkpts = 1
		}
		// Restore latency via a crash run.
		total, err := countOps(dnn.New(), c)
		if err != nil {
			return nil, err
		}
		cr, err := workloads.RunWithCrash(dnn.New(), workloads.GPM, c, total*95/100)
		if err != nil {
			return nil, err
		}
		overhead := (float64(rep.OpTime) - baseCompute) / baseCompute * 100
		t.Add(fmt.Sprintf("%d", every),
			rep.OpTime.Milliseconds(),
			overhead,
			rep.CkptTime.Milliseconds()/float64(nCkpts),
			cr.Restore.Milliseconds())
	}
	return t, nil
}
