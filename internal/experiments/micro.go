package experiments

import (
	"fmt"

	"github.com/gpm-sim/gpm/internal/cap"
	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// microCtx builds a bare node for the microbenchmarks.
func microCtx(pmBytes int64) *gpm.Context {
	return gpm.NewContext(sim.Default(), memsys.Config{
		HBMSize:  pmBytes + (8 << 20),
		DRAMSize: pmBytes + (4 << 20),
		PMSize:   pmBytes + (8 << 20),
	})
}

// Figure3 reproduces Fig 3: scaling of writing+persisting a buffer to PM.
// CAP-mm scales CPU threads and plateaus at ~1.47×; GPM scales GPU threads,
// starts below 1× at a warp or two, and overtakes CAP by ~4× once enough
// warps hide the persist latency (§3.2). size is the buffer (the paper uses
// 1 GB; the default config scales it down).
func Figure3(size int64) (*Table, error) {
	t := &Table{Name: "figure3", Header: []string{"system", "threads", "speedup_over_cap1"}}

	capTime := func(threads int) sim.Duration {
		ctx := microCtx(size)
		capEng := cap.New(ctx, threads)
		src := ctx.Space.AllocHBM(size)
		start := ctx.Timeline.Total()
		capEng.PersistMM(ctx.Space.AllocPM(size, 0), src, size)
		return ctx.Timeline.Total() - start
	}
	base := capTime(1)
	for _, n := range []int{1, 2, 4, 6, 16, 32, 64} {
		t.Add("CAP-mm", n, float64(base)/float64(capTime(n)))
	}

	for _, n := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		ctx := microCtx(size)
		dst := ctx.Space.AllocPM(size, 0)
		elems := size / 8
		perThread := int(elems) / n
		tpb := 256
		if n < tpb {
			tpb = n
		}
		blocks := (n + tpb - 1) / tpb
		ctx.PersistBegin()
		res := ctx.Dev.Launch("fig3-gpm", blocks, tpb, func(th *gpu.Thread) {
			// Grid-strided 8-byte writes, each individually persisted
			// (§3.2: "writing and persisting data at an 8-byte
			// granularity"). Adjacent lanes write adjacent words, so the
			// coalescer merges each warp step.
			gid := uint64(th.GlobalID())
			for i := 0; i < perThread; i++ {
				th.StoreU64(dst+(uint64(i)*uint64(n)+gid)*8, uint64(i))
				gpm.Persist(th)
			}
		})
		ctx.PersistEnd()
		t.Add("GPM", n, float64(base)/float64(res.Elapsed))
	}
	return t, nil
}

// Figure11b reproduces Fig 11b: log-insert latency versus the number of
// concurrent logging threads. Conventional distributed logging serializes
// per partition so latency climbs with thread count; HCL stays flat.
func Figure11b(maxThreads int) (*Table, error) {
	t := &Table{Name: "figure11b", Header: []string{"threads", "hcl_us", "conventional_us"}}
	const entry = 16
	for threads := 1024; threads <= maxThreads; threads *= 2 {
		tpb := 256
		blocks := threads / tpb
		ctx := microCtx(int64(threads)*entry*4 + (4 << 20))
		hcl, err := ctx.LogCreateHCL("/pm/hcl", int64(threads)*entry*4+(1<<20), blocks, tpb)
		if err != nil {
			return nil, err
		}
		conv, err := ctx.LogCreateConv("/pm/conv", int64(threads)*entry*4+(1<<20), 64)
		if err != nil {
			return nil, err
		}
		ctx.PersistBegin()
		var insErr error
		h := ctx.Dev.Launch("fig11b-hcl", blocks, tpb, func(th *gpu.Thread) {
			var e [entry]byte
			if err := hcl.Insert(th, e[:], -1); err != nil {
				insErr = err
			}
		})
		c := ctx.Dev.Launch("fig11b-conv", blocks, tpb, func(th *gpu.Thread) {
			var e [entry]byte
			if err := conv.Insert(th, e[:], -1); err != nil {
				insErr = err
			}
		})
		ctx.PersistEnd()
		if insErr != nil {
			return nil, insErr
		}
		t.Add(threads, h.Elapsed.Microseconds(), c.Elapsed.Microseconds())
	}
	return t, nil
}

// OptanePattern reproduces the §6.1 bandwidth characterization: realized
// write bandwidth from the GPU for sequential 256B-aligned, sequential
// unaligned, and random access (the paper's CPU-side microbenchmark
// measures 12.5 / 3.13 / 0.72 GB/s at the device; the PCIe path caps the
// aligned case lower).
func OptanePattern(size int64) (*Table, error) {
	t := &Table{Name: "optane", Header: []string{"pattern", "gbps"}}
	run := func(name string, align uint64, random bool) error {
		ctx := microCtx(size + 4096)
		if align == 1 {
			ctx.Space.AllocPM(68, 1)
		}
		dst := ctx.Space.AllocPM(size+256, align)
		elems := int(size / 8)
		tpb := 256
		blocks := (elems + tpb - 1) / tpb
		ctx.PersistBegin()
		res := ctx.Dev.Launch("optane-"+name, blocks, tpb, func(th *gpu.Thread) {
			i := th.GlobalID()
			if i >= elems {
				return
			}
			off := uint64(i) * 8
			if random {
				r := sim.NewRNG(uint64(i) * 2654435761)
				off = (r.Uint64() % uint64(elems)) * 8
			}
			th.StoreU64(dst+off, uint64(i))
			gpm.Persist(th)
		})
		ctx.PersistEnd()
		t.Add(name, float64(size)/res.Elapsed.Seconds()/1e9)
		return nil
	}
	if err := run("seq-aligned", 256, false); err != nil {
		return nil, err
	}
	if err := run("seq-unaligned", 1, false); err != nil {
		return nil, err
	}
	if err := run("random", 256, true); err != nil {
		return nil, err
	}
	return t, nil
}

// All runs every experiment with the given configuration, returning the
// tables keyed by report name.
func All(cfg workloads.Config) (map[string]*Table, error) {
	out := make(map[string]*Table)
	type job struct {
		name string
		run  func() (*Table, error)
	}
	jobs := []job{
		{"figure1a", func() (*Table, error) { return Figure1a(cfg) }},
		{"figure1b", func() (*Table, error) { return Figure1b(cfg) }},
		{"figure3", func() (*Table, error) { return Figure3(8 << 20) }},
		{"figure9", func() (*Table, error) { return Figure9(cfg) }},
		{"table4", func() (*Table, error) { return Table4(cfg) }},
		{"figure10", func() (*Table, error) { return Figure10(cfg) }},
		{"figure11a", func() (*Table, error) { return Figure11a(cfg) }},
		{"figure11b", func() (*Table, error) { return Figure11b(16384) }},
		{"figure12", func() (*Table, error) { return Figure12(cfg) }},
		{"table5", func() (*Table, error) { return Table5(cfg) }},
		{"dnnfreq", func() (*Table, error) { return DNNFrequency(cfg) }},
		{"optane", func() (*Table, error) { return OptanePattern(4 << 20) }},
	}
	for _, j := range jobs {
		tab, err := j.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", j.name, err)
		}
		out[j.name] = tab
	}
	return out, nil
}
