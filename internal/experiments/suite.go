package experiments

import (
	"github.com/gpm-sim/gpm/internal/dnn"
	"github.com/gpm-sim/gpm/internal/finance"
	"github.com/gpm-sim/gpm/internal/gpdb"
	"github.com/gpm-sim/gpm/internal/graph"
	"github.com/gpm-sim/gpm/internal/kvstore"
	"github.com/gpm-sim/gpm/internal/scan"
	"github.com/gpm-sim/gpm/internal/stencil"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// The whole suite registers into the workloads name registry, so any caller
// that imports this catalog can start runs with workloads.Run("gpKVS", ...).
func init() {
	for _, mk := range Suite() {
		workloads.Register(mk)
	}
}

// Suite returns fresh instances of every GPMbench workload configuration
// evaluated in Fig 9/10 (the nine workloads of Table 1, with gpKVS and gpDB
// split into their reported variants), in the paper's presentation order.
func Suite() []func() workloads.Workload {
	return []func() workloads.Workload{
		func() workloads.Workload { return kvstore.New() },
		func() workloads.Workload { return kvstore.NewMixed() },
		func() workloads.Workload { return gpdb.New(gpdb.Insert) },
		func() workloads.Workload { return gpdb.New(gpdb.Update) },
		func() workloads.Workload { return dnn.New() },
		func() workloads.Workload { return stencil.NewCFD() },
		func() workloads.Workload { return finance.NewBlackScholes() },
		func() workloads.Workload { return stencil.NewHotspot() },
		func() workloads.Workload { return graph.New() },
		func() workloads.Workload { return stencil.NewSRAD() },
		func() workloads.Workload { return scan.New() },
	}
}

// Crashers returns the workloads participating in the Table 5 / §6.2
// recovery study (transactional and checkpointing classes; native
// workloads embed their recovery in the application itself and are
// excluded, as in the paper).
func Crashers() []func() workloads.Crasher {
	return []func() workloads.Crasher{
		func() workloads.Crasher { return kvstore.New() },
		func() workloads.Crasher { return gpdb.New(gpdb.Insert) },
		func() workloads.Crasher { return gpdb.New(gpdb.Update) },
		func() workloads.Crasher { return dnn.New() },
		func() workloads.Crasher { return stencil.NewCFD() },
		func() workloads.Crasher { return finance.NewBlackScholes() },
		func() workloads.Crasher { return stencil.NewHotspot() },
	}
}

// NativeCrashers are the native-persistence workloads whose §6.2 recovery
// is exercised separately (they resume rather than restore).
func NativeCrashers() []func() workloads.Crasher {
	return []func() workloads.Crasher{
		func() workloads.Crasher { return graph.New() },
		func() workloads.Crasher { return stencil.NewSRAD() },
		func() workloads.Crasher { return scan.New() },
	}
}

// opTimeFor selects the paper's Fig 9 metric for a workload class:
// checkpointing workloads report the speedup of the checkpoint operation;
// transactional and native ones the operation region.
func opTimeFor(r *workloads.Report) float64 {
	if r.Class == "checkpointing" && r.CkptTime > 0 {
		return float64(r.CkptTime)
	}
	return float64(r.OpTime)
}
