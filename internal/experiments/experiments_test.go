package experiments

import (
	"strconv"
	"testing"

	"github.com/gpm-sim/gpm/internal/workloads"
)

func f(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestFigure1aShape(t *testing.T) {
	tab, err := Figure1a(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// GPM-KVS beats every CPU store (the 2.7–5.8× of Fig 1a).
	for _, name := range []string{"pmemKV", "RocksDB-pmem", "MatrixKV"} {
		row := tab.FindRow(name)
		if row == nil {
			t.Fatalf("missing %s", name)
		}
		if sp := f(t, row[2]); sp <= 1.2 {
			t.Errorf("GPM speedup over %s = %.2f, want > 1.2", name, sp)
		}
	}
	if f(t, tab.FindRow("RocksDB-pmem")[2]) <= f(t, tab.FindRow("pmemKV")[2]) {
		t.Error("RocksDB should show the largest GPM speedup (it is slowest)")
	}
}

func TestFigure1bShape(t *testing.T) {
	// Default (not quick) scale: BFS's GPU advantage needs real frontier
	// sizes to amortize kernel-launch overheads, exactly as on hardware.
	tab, err := Figure1b(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if sp := f(t, r[1]); sp <= 1 {
			t.Errorf("%s: GPM speedup over CPU = %.2f, want > 1", r[0], sp)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	tab, err := Figure3(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var cap1, cap64, gpm32, gpmMax float64
	for _, r := range tab.Rows {
		sp := f(t, r[2])
		switch r[0] + "/" + r[1] {
		case "CAP-mm/1":
			cap1 = sp
		case "CAP-mm/64":
			cap64 = sp
		case "GPM/32":
			gpm32 = sp
		}
		if r[0] == "GPM" && sp > gpmMax {
			gpmMax = sp
		}
	}
	if cap1 != 1 {
		t.Errorf("CAP-mm/1 = %.2f, want 1", cap1)
	}
	// Fig 3a: plateau around 1.47×.
	if cap64 < 1.2 || cap64 > 1.8 {
		t.Errorf("CAP-mm/64 = %.2f, want ~1.47", cap64)
	}
	// Fig 3b: one warp is slower than single-threaded CAP; peak ~4×.
	if gpm32 >= 1 {
		t.Errorf("GPM/32 = %.2f, want < 1", gpm32)
	}
	if gpmMax < 2 {
		t.Errorf("GPM peak = %.2f, want well above CAP", gpmMax)
	}
}

func TestFigure9Shape(t *testing.T) {
	tab, err := Figure9(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 workload configs", len(tab.Rows))
	}
	gpufsRan := 0
	for _, r := range tab.Rows {
		name := r[0]
		if capmm := f(t, r[2]); capmm < 0.3 {
			t.Errorf("%s: CAP-mm speedup %.2f implausible", name, capmm)
		}
		gpm := f(t, r[3])
		if gpm <= 1 {
			t.Errorf("%s: GPM speedup over CAP-fs = %.2f, want > 1", name, gpm)
		}
		if gpm <= f(t, r[2]) {
			t.Errorf("%s: GPM (%.2f) should beat CAP-mm (%s)", name, gpm, r[2])
		}
		if r[4] != "*" {
			gpufsRan++
			if g := f(t, r[4]); g >= gpm {
				t.Errorf("%s: GPUfs (%.2f) should not beat GPM (%.2f)", name, g, gpm)
			}
		}
	}
	// Most workloads fail on GPUfs; the coarse-grained few run (§6.1).
	if gpufsRan == 0 || gpufsRan > 5 {
		t.Errorf("GPUfs ran %d workloads, want a coarse-grained few", gpufsRan)
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		wa := f(t, r[2])
		switch r[0] {
		case "gpKVS", "gpKVS(95:5)", "gpDB(U)":
			if wa < 2 {
				t.Errorf("%s WA = %.2f, want large", r[0], wa)
			}
		case "gpDB(I)":
			if wa < 0.9 || wa > 3 {
				t.Errorf("gpDB(I) WA = %.2f, want ~1.27", wa)
			}
		default:
			if wa < 0.7 || wa > 1.6 {
				t.Errorf("%s WA = %.2f, want ~1.0", r[0], wa)
			}
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	tab, err := Figure10(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	prodGPM, prodNDP := 1.0, 1.0
	for _, r := range tab.Rows {
		ndp, gpm, geadr, ceadr := f(t, r[2]), f(t, r[3]), f(t, r[4]), f(t, r[5])
		prodGPM *= gpm
		prodNDP *= ndp
		// At the quick scale, fixed launch costs can let NDP edge ahead
		// on the smallest workloads; the aggregate check below and the
		// default-scale bench enforce the paper's ordering.
		if gpm*2 < ndp {
			t.Errorf("%s: GPM (%.2f) should not trail GPM-NDP (%.2f) by 2x", r[0], gpm, ndp)
		}
		if geadr < gpm*0.95 {
			t.Errorf("%s: GPM-eADR (%.2f) should be at least GPM (%.2f)", r[0], geadr, gpm)
		}
		if geadr <= ceadr {
			t.Errorf("%s: GPM-eADR (%.2f) should beat CAP-eADR (%.2f)", r[0], geadr, ceadr)
		}
	}
	if prodGPM <= prodNDP {
		t.Errorf("aggregate GPM (%.2f) should beat aggregate GPM-NDP (%.2f)", prodGPM, prodNDP)
	}
}

func TestFigure11aShape(t *testing.T) {
	tab, err := Figure11a(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	kvs := f(t, tab.FindRow("gpKVS")[1])
	db := f(t, tab.FindRow("gpDB(U)")[1])
	if kvs <= 1 || db <= 1 {
		t.Errorf("HCL speedups must exceed 1: gpKVS %.2f, gpDB(U) %.2f", kvs, db)
	}
}

func TestFigure11bShape(t *testing.T) {
	tab, err := Figure11b(8192)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	firstHCL := f(t, tab.Rows[0][1])
	lastHCL := f(t, tab.Rows[len(tab.Rows)-1][1])
	firstConv := f(t, tab.Rows[0][2])
	lastConv := f(t, tab.Rows[len(tab.Rows)-1][2])
	// Fig 11b shape: conventional latency climbs much faster with the
	// thread count than HCL's (which only grows with aggregate
	// bandwidth), and is far slower in absolute terms at scale.
	hclGrowth := lastHCL / firstHCL
	convGrowth := lastConv / firstConv
	if hclGrowth >= convGrowth {
		t.Errorf("HCL grew %.1fx vs conventional %.1fx; HCL should scale better", hclGrowth, convGrowth)
	}
	if lastConv <= lastHCL {
		t.Error("conventional logging should be slower than HCL at scale")
	}
}

func TestFigure12Shape(t *testing.T) {
	tab, err := Figure12(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		bw := f(t, r[1])
		byName[r[0]] = bw
		if bw > 13 {
			t.Errorf("%s exceeds PCIe: %.2f GB/s", r[0], bw)
		}
	}
	// Transactional workloads are PM-pattern bound, well below the link
	// (§6.1); checkpointing streams run much faster.
	if byName["gpKVS"] >= byName["HS"] {
		t.Errorf("gpKVS (%.2f) should be slower than HS checkpoint streams (%.2f)",
			byName["gpKVS"], byName["HS"])
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		r := tab.FindRow(name)
		if r == nil {
			t.Fatalf("missing %s", name)
		}
		return f(t, r[2])
	}
	if get("gpDB(I)") >= get("gpDB(U)") {
		t.Error("gpDB(I) restoration should be far cheaper than gpDB(U)")
	}
	for _, r := range tab.Rows {
		pct := f(t, r[2])
		if pct < 0 || pct > 60 {
			t.Errorf("%s restore %.2f%% out of plausible range", r[0], pct)
		}
	}
}

func TestOptanePatternShape(t *testing.T) {
	tab, err := OptanePattern(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	sa := f(t, tab.FindRow("seq-aligned")[1])
	su := f(t, tab.FindRow("seq-unaligned")[1])
	rd := f(t, tab.FindRow("random")[1])
	if !(sa > su && su > rd) {
		t.Errorf("bandwidth ordering broken: aligned %.2f, unaligned %.2f, random %.2f", sa, su, rd)
	}
	if rd > 1.2 {
		t.Errorf("random bandwidth %.2f, want near 0.72 GB/s", rd)
	}
}

func TestDNNFrequency(t *testing.T) {
	tab, err := DNNFrequency(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Checkpointing more often costs more total time.
	if f(t, tab.Rows[0][2]) < f(t, tab.Rows[1][2]) {
		t.Error("more frequent checkpoints should cost more overhead")
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{Name: "x", Header: []string{"a", "b"}}
	tab.Add("k", 1.5)
	if tab.TSV() != "a\tb\nk\t1.500\n" {
		t.Errorf("TSV = %q", tab.TSV())
	}
	if tab.Cell(0, 1) != "1.500" || tab.Cell(5, 5) != "" {
		t.Error("Cell")
	}
	if tab.FindRow("nope") != nil {
		t.Error("FindRow")
	}
}

func TestBreakdownShape(t *testing.T) {
	tab, err := Breakdown(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range tab.Rows {
		seen[r[0]] = true
		if pct := f(t, r[4]); pct < 0 || pct > 101 {
			t.Errorf("%s/%s pct = %.1f out of range", r[0], r[2], pct)
		}
	}
	if len(seen) != 11 {
		t.Errorf("breakdown covered %d workloads, want 11", len(seen))
	}
}

func TestCPUDatabaseShape(t *testing.T) {
	// §6.1: GPM speeds up gpDB(I) by 3.1× and gpDB(U) by 6.9× over the
	// OpenMP engine; at any scale UPDATE's gain must exceed INSERT's.
	tab, err := CPUDatabase(workloads.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ins := f(t, tab.FindRow("gpDB(I)")[1])
	upd := f(t, tab.FindRow("gpDB(U)")[1])
	if ins <= 1 || upd <= 1 {
		t.Errorf("GPM should beat the CPU engine: I=%.2f U=%.2f", ins, upd)
	}
	if upd <= ins {
		t.Errorf("UPDATE gain (%.2f) should exceed INSERT gain (%.2f)", upd, ins)
	}
}

func TestCheckpointFrequencyShape(t *testing.T) {
	tab, err := CheckpointFrequency(workloads.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 4 workloads x 2 frequencies", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if imp := f(t, r[2]); imp <= 0 {
			t.Errorf("%s@%s: GPM total-time improvement %.1f%%, want positive", r[0], r[1], imp)
		}
	}
}
