package obs

import (
	"strings"
	"testing"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Histogram rendering must be cumulative across buckets (Prometheus
// semantics) with _sum/_count rows and a +Inf bucket equal to _count.
func TestPrometheusHistogramCumulative(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("serve.request_us", []int64{10, 20, 50})
	for _, v := range []int64{5, 15, 15, 30, 99} {
		h.Observe(v)
	}
	out := PrometheusText(reg.Snapshot())

	want := []string{
		"# TYPE serve_request_us histogram",
		`serve_request_us_bucket{le="10"} 1`,
		`serve_request_us_bucket{le="20"} 3`,
		`serve_request_us_bucket{le="50"} 4`,
		`serve_request_us_bucket{le="+Inf"} 5`,
		"serve_request_us_sum 164",
		"serve_request_us_count 5",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
}

// Counters and gauges each get a TYPE line and their value; names sort so
// output is deterministic.
func TestPrometheusCountersGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("serve.shard0.ops").Add(42)
	reg.Gauge("serve.shard0.queue_depth").Set(-7)
	out := PrometheusText(reg.Snapshot())
	for _, line := range []string{
		"# TYPE serve_shard0_ops counter",
		"serve_shard0_ops 42",
		"# TYPE serve_shard0_queue_depth gauge",
		"serve_shard0_queue_depth -7",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if PrometheusText(telemetry.Snapshot{}) != "" {
		t.Error("empty snapshot must render empty")
	}
}

// Hostile metric names cannot break the exposition grammar: every invalid
// byte sanitizes to '_', leading digits get a prefix, and the rendered
// output contains no raw control bytes.
func TestPrometheusNameSanitization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"serve.shard0.ops", "serve_shard0_ops"},
		{"a-b c\td", "a_b_c_d"},
		{"9lives", "_9lives"},
		{"", "_unnamed"},
		{"ok_name:sub", "ok_name:sub"},
		{"newline\nbreak", "newline_break"},
		{"ünïcode", "__n__code"}, // each multibyte UTF-8 byte sanitizes
	}
	for _, tc := range cases {
		if got := SanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}

	reg := telemetry.NewRegistry()
	reg.Counter("evil\nname{label=\"x\"} 999").Add(1)
	out := PrometheusText(reg.Snapshot())
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.ContainsAny(line, "{}\"") && !strings.Contains(line, `le="`) {
			t.Errorf("unsanitized structural bytes leaked: %q", line)
		}
	}
	if !strings.Contains(out, "evil_name_label__x___999 1\n") {
		t.Errorf("hostile counter not rendered flat:\n%s", out)
	}
}

// Two raw names that sanitize identically must not emit a duplicate
// family (scrapers reject those); the later one gets a suffix.
func TestPrometheusCollision(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("serve.ops").Add(1)
	reg.Counter("serve_ops").Add(2)
	out := PrometheusText(reg.Snapshot())
	if strings.Count(out, "# TYPE serve_ops counter") != 1 {
		t.Errorf("duplicate family TYPE lines:\n%s", out)
	}
	if !strings.Contains(out, "serve_ops_2 ") {
		t.Errorf("collision suffix missing:\n%s", out)
	}
}
