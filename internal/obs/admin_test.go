package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// The four endpoints, end to end over a real listener: Prometheus metrics,
// drain-aware health, the host's statusz document, and the trace ring.
func TestAdminEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("serve.shard0.ops").Add(99)
	tracer := NewRequestTracer(1, time.Hour, 8)
	tracer.Add(ReqTrace{ID: 7, Op: "SET", Reason: ReasonHead,
		Stages: []StagePoint{{Stage: "admit", OffsetUS: 10}}})

	var draining atomic.Bool
	a := NewAdmin(AdminOptions{
		Registry: reg,
		Tracer:   tracer,
		Status: func() any {
			return map[string]any{"uptime_s": 1.5, "shards": []int{0, 1}}
		},
		Healthy: func() (bool, string) {
			if draining.Load() {
				return false, "draining"
			}
			return true, "ok"
		},
	})
	addr, err := a.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	code, body := adminGet(t, addr.String(), "/metrics")
	if code != 200 || !strings.Contains(body, "serve_shard0_ops 99\n") {
		t.Errorf("/metrics -> %d:\n%s", code, body)
	}

	code, body = adminGet(t, addr.String(), "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz -> %d %q", code, body)
	}
	draining.Store(true)
	code, body = adminGet(t, addr.String(), "/healthz")
	if code != http.StatusServiceUnavailable || strings.TrimSpace(body) != "draining" {
		t.Errorf("draining /healthz -> %d %q, want 503 draining", code, body)
	}

	code, body = adminGet(t, addr.String(), "/statusz")
	if code != 200 {
		t.Fatalf("/statusz -> %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc["uptime_s"] != 1.5 {
		t.Errorf("statusz doc = %v", doc)
	}

	code, body = adminGet(t, addr.String(), "/debug/trace?n=5")
	if code != 200 {
		t.Fatalf("/debug/trace -> %d", code)
	}
	var traces []ReqTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].ID != 7 || len(traces[0].Stages) != 1 {
		t.Errorf("traces = %+v", traces)
	}

	if code, _ := adminGet(t, addr.String(), "/debug/trace?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n -> %d, want 400", code)
	}
}

// Every source is optional: an Admin with empty options still answers all
// four endpoints with stable shapes.
func TestAdminDegradesWithoutSources(t *testing.T) {
	a := NewAdmin(AdminOptions{})
	addr, err := a.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if code, body := adminGet(t, addr.String(), "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics -> %d %q", code, body)
	}
	if code, body := adminGet(t, addr.String(), "/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz -> %d %q", code, body)
	}
	if code, body := adminGet(t, addr.String(), "/statusz"); code != 200 || !strings.Contains(body, "{") {
		t.Errorf("/statusz -> %d %q", code, body)
	}
	code, body := adminGet(t, addr.String(), "/debug/trace")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Errorf("/debug/trace -> %d %q, want empty JSON array", code, body)
	}
	if a.Addr() == "" {
		t.Error("Addr must report the bound address")
	}
	var nilAdmin *Admin
	if nilAdmin.Addr() != "" || nilAdmin.Close() != nil {
		t.Error("nil Admin accessors must be safe")
	}
}
