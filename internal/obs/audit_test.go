package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Events get monotone sequence numbers and timestamps, the ring evicts
// oldest-first, and the JSONL sink receives one parseable line per event.
func TestAuditLogRingAndSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLog(3)
	l.Attach(&buf)
	for i := 0; i < 5; i++ {
		l.Record(AuditEvent{Type: AuditCrash, Shard: i, Point: "mid-kernel"})
	}
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Shard != i+2 {
			t.Errorf("event %d shard = %d, want %d (oldest evicted)", i, ev.Shard, i+2)
		}
		if ev.Seq != uint64(i+3) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+3)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d has zero time", i)
		}
	}
	if tail := l.Tail(2); len(tail) != 2 || tail[1].Shard != 4 {
		t.Errorf("Tail(2) = %+v", tail)
	}

	// The sink got all five events as JSON lines, even the evicted ones.
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var ev AuditEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Type != AuditCrash || ev.Point != "mid-kernel" {
			t.Errorf("line %d = %+v", lines, ev)
		}
		lines++
	}
	if lines != 5 {
		t.Errorf("sink got %d lines, want 5", lines)
	}

	var nilLog *AuditLog
	nilLog.Record(AuditEvent{}) // nil-safety: no panic
	if nilLog.Events() != nil || nilLog.Len() != 0 {
		t.Error("nil log must be empty")
	}
	if err := nilLog.Close(); err != nil {
		t.Error(err)
	}
}

// syncCounter counts Sync calls through a file-like sink.
type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

// Crash and restart events fsync the sink before Record returns; routine
// events (verify, drain) do not — the trail stays cheap on the hot path
// but durable at exactly the moments the process may not exit cleanly.
func TestAuditLogSyncOnCrashEvents(t *testing.T) {
	var sink syncCounter
	l := NewAuditLog(8)
	l.Attach(&sink)
	l.Record(AuditEvent{Type: AuditVerify, Outcome: "ok"})
	l.Record(AuditEvent{Type: AuditDrain})
	if sink.syncs != 0 {
		t.Fatalf("routine events synced %d times, want 0", sink.syncs)
	}
	l.Record(AuditEvent{Type: AuditCrash, Point: "before-commit"})
	if sink.syncs != 1 {
		t.Fatalf("crash event synced %d times, want 1", sink.syncs)
	}
	l.Record(AuditEvent{Type: AuditRestart, TxSet: true})
	if sink.syncs != 2 {
		t.Fatalf("restart event synced %d times, want 2", sink.syncs)
	}
}

// ReadAuditJSONL reads a trail back, tolerates the torn final line of a
// process that died mid-append, and still rejects corruption anywhere
// else in the file.
func TestReadAuditJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := NewAuditLog(8)
	if err := l.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	l.Record(AuditEvent{Type: AuditCrash, Shard: 0, Point: "mid-kernel"})
	l.Record(AuditEvent{Type: AuditRestart, Shard: 0, TxSet: true})
	l.Record(AuditEvent{Type: AuditVerify, Shard: 0, Outcome: "ok"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	evs, torn, err := ReadAuditJSONL(path)
	if err != nil || torn {
		t.Fatalf("clean read: err=%v torn=%v", err, torn)
	}
	if len(evs) != 3 || evs[0].Type != AuditCrash || evs[2].Outcome != "ok" {
		t.Fatalf("events = %+v", evs)
	}

	// A crash mid-append leaves a partial JSON line with no newline: the
	// reader returns the complete prefix and flags the tear.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"type":"cra`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	evs, torn, err = ReadAuditJSONL(path)
	if err != nil {
		t.Fatalf("torn read: %v", err)
	}
	if !torn {
		t.Error("torn tail not flagged")
	}
	if len(evs) != 3 {
		t.Errorf("torn read kept %d events, want 3", len(evs))
	}

	// Corruption mid-file is NOT a tear and must error.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(blob, []byte(`"type":"restart"`), []byte(`XXtypeXX`), 1)
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAuditJSONL(path); err == nil {
		t.Error("mid-file corruption not rejected")
	}

	if _, _, err := ReadAuditJSONL(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file not reported")
	}
}

// OpenFile appends JSONL across reopens — the post-crash queryable record.
func TestAuditLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := NewAuditLog(8)
	if err := l.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	l.Record(AuditEvent{Type: AuditRestart, Shard: 1, TxSet: true, Geometries: []int{1, 2, 4}, SlotsRolledBack: 5})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session appends.
	l2 := NewAuditLog(8)
	if err := l2.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	l2.Record(AuditEvent{Type: AuditVerify, Shard: 1, Outcome: "ok"})
	l2.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(blob), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2 (append across sessions)", len(lines))
	}
	var restart AuditEvent
	if err := json.Unmarshal(lines[0], &restart); err != nil {
		t.Fatal(err)
	}
	if restart.Type != AuditRestart || !restart.TxSet || restart.SlotsRolledBack != 5 ||
		len(restart.Geometries) != 3 {
		t.Errorf("restart event = %+v", restart)
	}
}
