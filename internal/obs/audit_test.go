package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Events get monotone sequence numbers and timestamps, the ring evicts
// oldest-first, and the JSONL sink receives one parseable line per event.
func TestAuditLogRingAndSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLog(3)
	l.Attach(&buf)
	for i := 0; i < 5; i++ {
		l.Record(AuditEvent{Type: AuditCrash, Shard: i, Point: "mid-kernel"})
	}
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Shard != i+2 {
			t.Errorf("event %d shard = %d, want %d (oldest evicted)", i, ev.Shard, i+2)
		}
		if ev.Seq != uint64(i+3) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+3)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d has zero time", i)
		}
	}
	if tail := l.Tail(2); len(tail) != 2 || tail[1].Shard != 4 {
		t.Errorf("Tail(2) = %+v", tail)
	}

	// The sink got all five events as JSON lines, even the evicted ones.
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var ev AuditEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Type != AuditCrash || ev.Point != "mid-kernel" {
			t.Errorf("line %d = %+v", lines, ev)
		}
		lines++
	}
	if lines != 5 {
		t.Errorf("sink got %d lines, want 5", lines)
	}

	var nilLog *AuditLog
	nilLog.Record(AuditEvent{}) // nil-safety: no panic
	if nilLog.Events() != nil || nilLog.Len() != 0 {
		t.Error("nil log must be empty")
	}
	if err := nilLog.Close(); err != nil {
		t.Error(err)
	}
}

// OpenFile appends JSONL across reopens — the post-crash queryable record.
func TestAuditLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	l := NewAuditLog(8)
	if err := l.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	l.Record(AuditEvent{Type: AuditRestart, Shard: 1, TxSet: true, Geometries: []int{1, 2, 4}, SlotsRolledBack: 5})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Second session appends.
	l2 := NewAuditLog(8)
	if err := l2.OpenFile(path); err != nil {
		t.Fatal(err)
	}
	l2.Record(AuditEvent{Type: AuditVerify, Shard: 1, Outcome: "ok"})
	l2.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(blob), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2 (append across sessions)", len(lines))
	}
	var restart AuditEvent
	if err := json.Unmarshal(lines[0], &restart); err != nil {
		t.Fatal(err)
	}
	if restart.Type != AuditRestart || !restart.TxSet || restart.SlotsRolledBack != 5 ||
		len(restart.Geometries) != 3 {
		t.Errorf("restart event = %+v", restart)
	}
}
