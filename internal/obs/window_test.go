package obs

import (
	"math"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Windowed quantiles against a known distribution: observations uniform
// over [1, 1000] must estimate p50 ~ 500 and p99 ~ 990 to within one
// bucket of resolution, and only the observations INSIDE the window may
// count — earlier ones are history the delta must subtract out.
func TestWindowQuantileKnownDistribution(t *testing.T) {
	reg := telemetry.NewRegistry()
	bounds := make([]int64, 0, 20)
	for b := int64(50); b <= 1000; b += 50 {
		bounds = append(bounds, b)
	}
	h := reg.Histogram("lat", bounds)
	w := NewWindows(reg, time.Second, time.Minute)

	t0 := time.Unix(1000, 0)
	// Pre-window noise: a thousand huge values that must NOT influence the
	// windowed quantiles.
	for i := 0; i < 1000; i++ {
		h.Observe(5000)
	}
	w.Advance(t0)

	// In-window: uniform 1..1000, one each.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	w.Advance(t0.Add(10 * time.Second))

	ws, ok := w.Window(10 * time.Second)
	if !ok {
		t.Fatal("window not available")
	}
	if n := ws.HistCount("lat"); n != 1000 {
		t.Fatalf("windowed count = %d, want 1000 (pre-window noise leaked in?)", n)
	}
	if r := ws.HistRate("lat"); math.Abs(r-100) > 1e-9 {
		t.Errorf("rate = %g/s, want 100", r)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}, {0.10, 100}} {
		got, ok := ws.Quantile("lat", tc.q)
		if !ok {
			t.Fatalf("q%.2f: no data", tc.q)
		}
		if math.Abs(got-tc.want) > 50 { // one bucket width
			t.Errorf("q%.2f = %g, want %g +/- 50", tc.q, got, tc.want)
		}
	}
}

// Overflow-bucket observations floor to the largest finite bound instead
// of inventing values; an empty window reports no quantile.
func TestWindowQuantileEdges(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100})
	w := NewWindows(reg, time.Second, time.Minute)
	t0 := time.Unix(0, 0)
	w.Advance(t0)
	w.Advance(t0.Add(time.Second))

	ws, ok := w.Window(time.Second)
	if !ok {
		t.Fatal("window missing")
	}
	if _, ok := ws.Quantile("lat", 0.5); ok {
		t.Error("empty window must report no quantile")
	}
	if _, ok := ws.Quantile("absent", 0.5); ok {
		t.Error("unknown histogram must report no quantile")
	}

	h.Observe(1_000_000) // lands in +Inf
	w.Advance(t0.Add(2 * time.Second))
	ws, _ = w.Window(time.Second)
	got, ok := ws.Quantile("lat", 0.99)
	if !ok || got != 100 {
		t.Errorf("overflow quantile = %g ok=%v, want 100 (largest finite bound)", got, ok)
	}
}

// Counter rates diff the right base snapshot for each requested span, and
// the ring trims to the horizon.
func TestWindowCounterRatesAndTrim(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("ops")
	w := NewWindows(reg, time.Second, 10*time.Second)
	t0 := time.Unix(100, 0)
	for i := 0; i <= 30; i++ {
		c.Add(10) // 10 ops per second of simulated advancement
		w.Advance(t0.Add(time.Duration(i) * time.Second))
	}
	ws, ok := w.Window(5 * time.Second)
	if !ok {
		t.Fatal("window missing")
	}
	if d := ws.CounterDelta("ops"); d != 50 {
		t.Errorf("5s delta = %d, want 50", d)
	}
	if r := ws.CounterRate("ops"); math.Abs(r-10) > 1e-9 {
		t.Errorf("5s rate = %g, want 10", r)
	}
	// Horizon is 10s: asking for 60s covers at most the retained history.
	ws, _ = w.Window(60 * time.Second)
	if ws.Elapsed > 12*time.Second {
		t.Errorf("elapsed %s exceeds horizon retention", ws.Elapsed)
	}

	// Fewer than two snapshots: no window.
	w2 := NewWindows(reg, time.Second, time.Minute)
	if _, ok := w2.Window(time.Second); ok {
		t.Error("window with no history must not be ok")
	}
	w2.Advance(t0)
	if _, ok := w2.Window(time.Second); ok {
		t.Error("window with one snapshot must not be ok")
	}
}

// Summary has a stable shape: every requested span appears even with no
// data, and a nil Windows yields zeros without panicking.
func TestWindowSummaryShape(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", telemetry.LatencyBucketsUS)
	w := NewWindows(reg, time.Second, time.Minute)
	t0 := time.Unix(0, 0)
	w.Advance(t0)
	h.Observe(100)
	h.Observe(200)
	w.Advance(t0.Add(2 * time.Second))

	sums := w.Summary("lat", time.Second, 10*time.Second)
	if len(sums) != 2 {
		t.Fatalf("%d summaries, want 2", len(sums))
	}
	if sums[0].Window != "1s" || sums[1].Window != "10s" {
		t.Errorf("windows = %q/%q", sums[0].Window, sums[1].Window)
	}
	if sums[1].Ops != 2 || sums[1].OpsPerSec != 1 {
		t.Errorf("10s summary = %+v, want 2 ops at 1/s", sums[1])
	}
	if sums[1].P99US <= 0 {
		t.Errorf("p99 = %g, want > 0", sums[1].P99US)
	}

	var nilW *Windows
	if _, ok := nilW.Window(time.Second); ok {
		t.Error("nil Windows must not report a window")
	}
	nilW.Advance(time.Now()) // must not panic
	nilW.Start()
	nilW.Stop()
}

// The Start/Stop ticker actually advances windows from real time.
func TestWindowTicker(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("ops")
	w := NewWindows(reg, 5*time.Millisecond, time.Second)
	w.Start()
	defer w.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.Inc()
		if ws, ok := w.Window(time.Second); ok && ws.CounterDelta("ops") > 0 {
			return // ticker snapshotted growth
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("ticker never captured counter growth")
}
