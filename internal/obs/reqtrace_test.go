package obs

import (
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Head sampling captures every Nth request ID; the slow threshold
// captures regardless of the ID.
func TestRequestTracerSampling(t *testing.T) {
	tr := NewRequestTracer(8, 10*time.Millisecond, 16)

	if reason, ok := tr.ShouldCapture(16, time.Millisecond); !ok || reason != ReasonHead {
		t.Errorf("id 16: (%q, %v), want head capture", reason, ok)
	}
	if _, ok := tr.ShouldCapture(17, time.Millisecond); ok {
		t.Error("id 17 fast must not capture")
	}
	if reason, ok := tr.ShouldCapture(17, 50*time.Millisecond); !ok || reason != ReasonSlow {
		t.Errorf("slow request: (%q, %v), want slow capture", reason, ok)
	}

	var nilTr *RequestTracer
	if _, ok := nilTr.ShouldCapture(0, time.Hour); ok {
		t.Error("nil tracer must never capture")
	}
	nilTr.Add(ReqTrace{}) // must not panic
	if nilTr.Last(5) != nil {
		t.Error("nil tracer Last must be nil")
	}
}

// The ring retains the newest buf traces; Last returns them
// chronologically and bounds n.
func TestRequestTracerRing(t *testing.T) {
	tr := NewRequestTracer(1, time.Hour, 4)
	for i := uint64(1); i <= 10; i++ {
		tr.Add(ReqTrace{ID: i, Reason: ReasonHead})
	}
	got := tr.Last(0)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].ID != want {
			t.Errorf("trace %d = id %d, want %d", i, got[i].ID, want)
		}
	}
	if last2 := tr.Last(2); len(last2) != 2 || last2[0].ID != 9 || last2[1].ID != 10 {
		t.Errorf("Last(2) = %+v", last2)
	}
	total, slow := tr.Captured()
	if total != 10 || slow != 0 {
		t.Errorf("captured = (%d, %d), want (10, 0)", total, slow)
	}
	tr.Add(ReqTrace{ID: 11, Reason: ReasonSlow})
	if _, slow := tr.Captured(); slow != 1 {
		t.Error("slow capture not counted")
	}
}

// Wall spans convert stage offsets into contiguous Chrome-trace spans on
// a dedicated process.
func TestAppendWallSpans(t *testing.T) {
	tracer := telemetry.NewTracer()
	zero := time.Unix(100, 0)
	AppendWallSpans(tracer, "serve/wall", zero, []ReqTrace{{
		ID:    1,
		Shard: 0,
		Start: zero.Add(time.Millisecond),
		Stages: []StagePoint{
			{Stage: "admit", OffsetUS: 100},
			{Stage: "seal", OffsetUS: 250},
			{Stage: "commit", OffsetUS: 900},
		},
	}})
	spans := tracer.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	if tracer.ProcessLabel(spans[0].PID) != "serve/wall" {
		t.Errorf("process label = %q", tracer.ProcessLabel(spans[0].PID))
	}
	// Stage spans tile without gaps: each starts where the previous ended.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End() {
			t.Errorf("span %d starts at %d, prev ends at %d", i, spans[i].Start, spans[i-1].End())
		}
	}
	// First span starts at enqueue offset (1ms after zero).
	if got := spans[0].Start; got != 1_000_000 {
		t.Errorf("first span start = %d ns, want 1ms", got)
	}
	AppendWallSpans(nil, "x", zero, nil) // must not panic
}
