package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

// AdminOptions wires the admin HTTP surface to its data sources. Every
// field is optional; endpoints whose source is absent degrade gracefully
// (empty metrics, healthy=ok, minimal statusz, empty trace list) rather
// than 404ing, so probes keep a stable shape.
type AdminOptions struct {
	// Registry backs /metrics (Prometheus text format).
	Registry *telemetry.Registry
	// Status builds the /statusz document; it runs per request, so it
	// should be a cheap snapshot (atomics and short locks only).
	Status func() any
	// Healthy gates /healthz: ok=false returns 503 with the detail line
	// (e.g. "draining") so load balancers stop routing during a drain.
	Healthy func() (ok bool, detail string)
	// Tracer backs /debug/trace.
	Tracer *RequestTracer
}

// Admin is the live observability HTTP endpoint:
//
//	GET /metrics        Prometheus text format from the telemetry registry
//	GET /healthz        200 "ok" or 503 "<reason>" (drain-aware)
//	GET /statusz        JSON: whatever the host's Status closure reports
//	GET /debug/trace?n=K  last K sampled request traces, oldest first
//
// It serves on its own listener so observability stays reachable while
// the data plane saturates, and it never blocks the serving path: every
// handler reads atomics, snapshots, or rings.
type Admin struct {
	opts AdminOptions
	mux  *http.ServeMux
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
	err  error
}

// NewAdmin builds the admin surface (not yet listening).
func NewAdmin(opts AdminOptions) *Admin {
	a := &Admin{opts: opts, mux: http.NewServeMux(), done: make(chan struct{})}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/healthz", a.handleHealthz)
	a.mux.HandleFunc("/statusz", a.handleStatusz)
	a.mux.HandleFunc("/debug/trace", a.handleTrace)
	a.srv = &http.Server{
		Handler:           a.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return a
}

// ListenAndServe binds addr (port 0 picks a free one), serves in a
// background goroutine, and returns the bound address immediately.
func (a *Admin) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a.ln = ln
	go func() {
		defer close(a.done)
		if err := a.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			a.err = err
		}
	}()
	return ln.Addr(), nil
}

// Addr returns the bound address ("" before ListenAndServe).
func (a *Admin) Addr() string {
	if a == nil || a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close shuts the listener down and waits for the serve goroutine.
func (a *Admin) Close() error {
	if a == nil || a.ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	<-a.done
	if err == nil {
		err = a.err
	}
	return err
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, PrometheusText(a.opts.Registry.Snapshot()))
}

func (a *Admin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ok, detail := true, "ok"
	if a.opts.Healthy != nil {
		if hOK, hDetail := a.opts.Healthy(); !hOK {
			ok, detail = false, hDetail
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, detail)
}

func (a *Admin) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var doc any = map[string]any{}
	if a.opts.Status != nil {
		doc = a.opts.Status()
	}
	writeJSON(w, doc)
}

func (a *Admin) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 0 // all retained
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	traces := a.opts.Tracer.Last(n)
	if traces == nil {
		traces = []ReqTrace{}
	}
	writeJSON(w, traces)
}

func writeJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}
