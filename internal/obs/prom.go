package obs

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

// PrometheusText renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): one TYPE line per metric family,
// counters and gauges as bare samples, histograms as cumulative
// _bucket{le="..."} series plus _sum and _count. Metric names are
// sanitized to the Prometheus grammar (repo names use dots:
// serve.shard0.ops -> serve_shard0_ops); two names that sanitize to the
// same family get disambiguating suffixes rather than emitting a
// duplicate family, which scrapers reject.
func PrometheusText(snap telemetry.Snapshot) string {
	var b strings.Builder
	seen := make(map[string]bool)

	counterNames := sortedKeys(snap.Counters)
	gaugeNames := sortedKeys(snap.Gauges)
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)

	for _, name := range counterNames {
		fam := uniqueFamily(seen, SanitizeMetricName(name))
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", fam, fam, snap.Counters[name])
	}
	for _, name := range gaugeNames {
		fam := uniqueFamily(seen, SanitizeMetricName(name))
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", fam, fam, snap.Gauges[name])
	}
	for _, name := range histNames {
		h := snap.Histograms[name]
		fam := uniqueFamily(seen, SanitizeMetricName(name))
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", fam, bound, cum)
		}
		if n := len(h.Counts); n > 0 {
			cum += h.Counts[n-1]
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, cum)
		fmt.Fprintf(&b, "%s_sum %d\n", fam, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", fam, cum)
	}
	return b.String()
}

// SanitizeMetricName maps an arbitrary repo metric name onto the
// Prometheus metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (the
// repo's namespace separator) and every other invalid byte become '_';
// a leading digit gets an underscore prefix; an empty name becomes
// "_unnamed". Sanitization is pure, so equal inputs always agree.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_unnamed"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteByte(c)
			continue
		}
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// uniqueFamily reserves fam in seen, appending _2, _3, ... when two raw
// names collide after sanitization (e.g. "serve.ops" and "serve_ops").
func uniqueFamily(seen map[string]bool, fam string) string {
	out := fam
	for n := 2; seen[out]; n++ {
		out = fmt.Sprintf("%s_%d", fam, n)
	}
	seen[out] = true
	return out
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
