// Package obs is the live observability plane over the telemetry layer:
// rolling-window streaming stats, a Prometheus text renderer, per-request
// pipeline traces with head-based + slow-threshold sampling, a structured
// recovery audit trail, and the admin HTTP surface (/metrics, /healthz,
// /statusz, /debug/trace) that exposes all of it while a server runs.
//
// The package depends only on telemetry and the stdlib; it never imports
// the serving or simulation layers. Hosts (gpmserve, the selftest harness,
// gpmload's progress reporter) wire it in through plain values and
// closures, so obs stays reusable for any future front-end.
package obs

import (
	"fmt"
	"sync"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Windows converts the cumulative-since-boot telemetry registry into
// rates and quantiles over recent time windows. It keeps a ring of full
// registry snapshots, one per Advance tick; a query diffs the newest
// snapshot against the one closest to (now - window). Memory is bounded
// by horizon/tick snapshots regardless of how long the server runs.
//
// Advance is normally driven by a ticker goroutine (see Start); queries
// are safe from any goroutine.
type Windows struct {
	reg     *telemetry.Registry
	tick    time.Duration
	horizon time.Duration

	mu    sync.Mutex
	snaps []timedSnap // ascending by time; last is newest
	stop  chan struct{}
	done  chan struct{}
}

type timedSnap struct {
	at   time.Time
	snap telemetry.Snapshot
}

// Defaults for NewWindows zero arguments.
const (
	DefaultTick    = 250 * time.Millisecond
	DefaultHorizon = 60 * time.Second
)

// StandardWindows are the spans /statusz reports: last 1s, 10s, 60s.
var StandardWindows = []time.Duration{time.Second, 10 * time.Second, 60 * time.Second}

// NewWindows builds a window layer over reg. tick 0 means DefaultTick,
// horizon 0 means DefaultHorizon; horizon is clamped to at least one tick.
func NewWindows(reg *telemetry.Registry, tick, horizon time.Duration) *Windows {
	if tick <= 0 {
		tick = DefaultTick
	}
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	if horizon < tick {
		horizon = tick
	}
	return &Windows{reg: reg, tick: tick, horizon: horizon}
}

// Advance takes one snapshot stamped at now and drops snapshots older
// than the horizon (keeping one beyond it so a full-horizon query always
// has a base). Call it on a steady tick; irregular calls only degrade
// window resolution, never correctness.
func (w *Windows) Advance(now time.Time) {
	if w == nil {
		return
	}
	snap := w.reg.Snapshot()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.snaps = append(w.snaps, timedSnap{at: now, snap: snap})
	cut := now.Add(-w.horizon)
	drop := 0
	for drop < len(w.snaps)-1 && w.snaps[drop+1].at.Before(cut) {
		drop++
	}
	if drop > 0 {
		w.snaps = append(w.snaps[:0], w.snaps[drop:]...)
	}
}

// Start launches the ticker goroutine driving Advance. Stop terminates
// it. Start on a nil receiver is a no-op.
func (w *Windows) Start() {
	if w == nil || w.stop != nil {
		return
	}
	w.Advance(time.Now())
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(w.tick)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				w.Advance(now)
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop terminates the ticker goroutine started by Start.
func (w *Windows) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop, w.done = nil, nil
}

// Window returns the delta view covering roughly the last d of recorded
// history. ok is false when fewer than two snapshots exist (no elapsed
// time to rate over). When the ring holds less history than d, the delta
// covers what exists and Elapsed reports the actual span.
func (w *Windows) Window(d time.Duration) (WindowStats, bool) {
	if w == nil {
		return WindowStats{}, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.snaps) < 2 {
		return WindowStats{}, false
	}
	newest := w.snaps[len(w.snaps)-1]
	cut := newest.at.Add(-d)
	base := w.snaps[0]
	// Newest snapshot at or before the cut; linear scan is fine at <=241
	// entries.
	for _, s := range w.snaps[:len(w.snaps)-1] {
		if s.at.After(cut) {
			break
		}
		base = s
	}
	el := newest.at.Sub(base.at)
	if el <= 0 {
		return WindowStats{}, false
	}
	return WindowStats{Elapsed: el, older: base.snap, newer: newest.snap}, true
}

// WindowStats is the diff between two registry snapshots: everything
// /statusz reports about "the last N seconds" computes from it.
type WindowStats struct {
	Elapsed      time.Duration
	older, newer telemetry.Snapshot
}

// CounterDelta returns how much the named counter grew across the window.
func (ws WindowStats) CounterDelta(name string) int64 {
	return ws.newer.Counters[name] - ws.older.Counters[name]
}

// CounterRate returns the counter's growth per second across the window.
func (ws WindowStats) CounterRate(name string) float64 {
	if ws.Elapsed <= 0 {
		return 0
	}
	return float64(ws.CounterDelta(name)) / ws.Elapsed.Seconds()
}

// HistCount returns how many observations the named histogram gained.
func (ws WindowStats) HistCount(name string) int64 {
	return ws.newer.Histograms[name].Count() - ws.older.Histograms[name].Count()
}

// HistRate returns histogram observations per second across the window.
func (ws WindowStats) HistRate(name string) float64 {
	if ws.Elapsed <= 0 {
		return 0
	}
	return float64(ws.HistCount(name)) / ws.Elapsed.Seconds()
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the values the
// named histogram observed during the window, interpolating linearly
// within the bucket that crosses the target rank. Observations in the
// +Inf overflow bucket report the largest finite bound (a floor, clearly
// better than inventing a value). ok is false when the histogram gained
// no observations in the window.
func (ws WindowStats) Quantile(name string, q float64) (float64, bool) {
	nh, oh := ws.newer.Histograms[name], ws.older.Histograms[name]
	if len(nh.Counts) == 0 {
		return 0, false
	}
	deltas := make([]int64, len(nh.Counts))
	var total int64
	for i := range nh.Counts {
		d := nh.Counts[i]
		if i < len(oh.Counts) {
			d -= oh.Counts[i]
		}
		if d < 0 {
			d = 0 // defensive: snapshots are monotone, but never go negative
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0, false
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	var lower float64
	for i, d := range deltas {
		if d == 0 {
			if i < len(nh.Bounds) {
				lower = float64(nh.Bounds[i])
			}
			continue
		}
		next := cum + float64(d)
		if next >= target {
			if i >= len(nh.Bounds) {
				// Overflow bucket: no finite upper bound to interpolate to.
				return lower, true
			}
			upper := float64(nh.Bounds[i])
			frac := (target - cum) / float64(d)
			return lower + (upper-lower)*frac, true
		}
		cum = next
		if i < len(nh.Bounds) {
			lower = float64(nh.Bounds[i])
		}
	}
	return lower, true
}

// WindowSummary is one window's worth of the /statusz serving overview.
type WindowSummary struct {
	Window    string  `json:"window"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50US     float64 `json:"p50_us"`
	P95US     float64 `json:"p95_us"`
	P99US     float64 `json:"p99_us"`
}

// Summary computes the standard rate/quantile view of one latency
// histogram (microsecond-valued, by repo convention) over each requested
// window. Windows with no data report zeros rather than being omitted,
// so the JSON shape is stable for dashboards.
func (w *Windows) Summary(histName string, spans ...time.Duration) []WindowSummary {
	if len(spans) == 0 {
		spans = StandardWindows
	}
	out := make([]WindowSummary, 0, len(spans))
	for _, d := range spans {
		s := WindowSummary{Window: d.String()}
		if ws, ok := w.Window(d); ok {
			s.Ops = ws.HistCount(histName)
			s.OpsPerSec = ws.HistRate(histName)
			s.P50US, _ = ws.Quantile(histName, 0.50)
			s.P95US, _ = ws.Quantile(histName, 0.95)
			s.P99US, _ = ws.Quantile(histName, 0.99)
		}
		out = append(out, s)
	}
	return out
}

// FormatRate renders an ops/s figure compactly for progress lines.
func FormatRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}
