package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpm-sim/gpm/internal/sim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// StagePoint is one pipeline stage a traced request passed through, as a
// microsecond offset from the request's client-enqueue instant. Stages
// appear in pipeline order (admit -> seal -> stage -> kernel -> persist ->
// commit); a cache-served GET has just admit -> cache.
type StagePoint struct {
	Stage    string  `json:"stage"`
	OffsetUS float64 `json:"offset_us"`
}

// ReqTrace is one sampled request's journey through the serving pipeline.
type ReqTrace struct {
	ID      uint64       `json:"id"`
	Shard   int          `json:"shard"`
	Op      string       `json:"op"`
	Key     uint64       `json:"key"`
	Epoch   uint64       `json:"epoch"`  // persist-epoch sequence (0 for cache hits)
	Reason  string       `json:"reason"` // "head" (sampled) or "slow" (over threshold)
	Start   time.Time    `json:"start"`  // client-enqueue wall instant
	TotalUS float64      `json:"total_us"`
	Stages  []StagePoint `json:"stages"`
}

// Sampling reasons.
const (
	ReasonHead = "head"
	ReasonSlow = "slow"
)

// RequestTracer decides which requests to capture and retains the last
// Buf captures in a ring. Two triggers:
//
//   - head-based: every SampleEvery-th request ID (cheap modulo on the
//     admission-assigned ID, no randomness, deterministic per run);
//   - slow-threshold: any request whose total latency reaches Slow is
//     captured regardless of sampling — tail latencies are exactly the
//     requests worth explaining, and head sampling alone would miss them.
//
// ShouldCapture is called on hot paths (the applier's group-commit loop,
// the batcher's cache-hit reply), so the fast path is two compares and
// no locks; only actual captures pay for the ring mutex.
//
// All methods are nil-safe no-ops, matching the telemetry convention, so
// instrumentation sites hold a possibly-nil pointer.
type RequestTracer struct {
	sampleEvery uint64
	slow        time.Duration
	buf         int

	captured     atomic.Int64
	slowCaptured atomic.Int64

	mu   sync.Mutex
	ring []ReqTrace
	next int
	n    int // valid entries
}

// Tracer tuning defaults.
const (
	DefaultSampleEvery = 64
	DefaultSlow        = 50 * time.Millisecond
	DefaultTraceBuf    = 256
)

// NewRequestTracer builds a tracer: sampleEvery 0 means DefaultSampleEvery
// (pass a negative-impossible? use 1 to trace everything), slow 0 means
// DefaultSlow, buf 0 means DefaultTraceBuf.
func NewRequestTracer(sampleEvery uint64, slow time.Duration, buf int) *RequestTracer {
	if sampleEvery == 0 {
		sampleEvery = DefaultSampleEvery
	}
	if slow == 0 {
		slow = DefaultSlow
	}
	if buf <= 0 {
		buf = DefaultTraceBuf
	}
	return &RequestTracer{
		sampleEvery: sampleEvery,
		slow:        slow,
		buf:         buf,
		ring:        make([]ReqTrace, buf),
	}
}

// ShouldCapture reports whether the request with this admission ID and
// total latency is worth building a trace for, and why. Nil tracer: never.
func (t *RequestTracer) ShouldCapture(id uint64, total time.Duration) (reason string, ok bool) {
	if t == nil {
		return "", false
	}
	if total >= t.slow {
		return ReasonSlow, true
	}
	if id%t.sampleEvery == 0 {
		return ReasonHead, true
	}
	return "", false
}

// Add stores one built trace in the ring, evicting the oldest.
func (t *RequestTracer) Add(tr ReqTrace) {
	if t == nil {
		return
	}
	t.captured.Add(1)
	if tr.Reason == ReasonSlow {
		t.slowCaptured.Add(1)
	}
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Last returns up to n retained traces, oldest first (chronological), so
// /debug/trace output reads top to bottom. n <= 0 means all retained.
func (t *RequestTracer) Last(n int) []ReqTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]ReqTrace, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Captured returns (total captures, slow-threshold captures) since start.
func (t *RequestTracer) Captured() (total, slow int64) {
	if t == nil {
		return 0, 0
	}
	return t.captured.Load(), t.slowCaptured.Load()
}

// AppendWallSpans converts the retained request traces into spans on the
// existing Chrome-trace exporter: one lane ("requests") per trace process,
// each stage a complete event whose timestamps are wall microseconds
// relative to epochZero. The tracer's other processes carry simulated
// time; giving wall spans their own pid keeps the two time bases from
// visually interleaving in Perfetto.
func AppendWallSpans(tr *telemetry.Tracer, label string, epochZero time.Time, traces []ReqTrace) {
	if tr == nil || len(traces) == 0 {
		return
	}
	pid := tr.NewProcess(label)
	for _, rt := range traces {
		base := sim.Duration(rt.Start.Sub(epochZero)) // wall ns as span offset
		prev := 0.0
		for _, sp := range rt.Stages {
			tr.Record(telemetry.Span{
				Name:  sp.Stage,
				Cat:   "request",
				PID:   pid,
				TID:   rt.Shard + 1,
				Start: base + sim.Duration(prev*1e3),
				Dur:   sim.Duration((sp.OffsetUS - prev) * 1e3),
			})
			prev = sp.OffsetUS
		}
	}
}
