package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Audit event types, in the order a kill-and-recover cycle emits them.
const (
	AuditCrash   = "crash"   // power-fail injected (or observed) on a shard
	AuditRestart = "restart" // recovery ran: replay geometries, rollback, reload
	AuditVerify  = "verify"  // durable image compared against the committed oracle
	AuditDrain   = "drain"   // server began a graceful drain (SIGTERM et al.)
)

// AuditEvent is one structured entry in the recovery audit trail. Every
// event carries Seq/Time/Type/Shard; the remaining fields are populated
// per type (JSON omits the empties):
//
//	crash    Point, Detail (mutations at risk)
//	restart  TxSet, Geometries, SlotsRolledBack, RestoreUS
//	verify   Outcome ("ok"/"fail"), Err
//	drain    Detail (signal / reason)
type AuditEvent struct {
	Seq   uint64    `json:"seq"`
	Time  time.Time `json:"time"`
	Type  string    `json:"type"`
	Shard int       `json:"shard"`
	Mode  string    `json:"mode,omitempty"`

	Point           string  `json:"point,omitempty"`   // crash: pipeline crash point
	TxSet           bool    `json:"tx_set"`            // restart: durable tx flag found set
	Geometries      []int   `json:"geoms,omitempty"`   // restart: HCL log grids replayed
	SlotsRolledBack int64   `json:"slots_rolled_back"` // restart: undo entries applied
	RestoreUS       float64 `json:"restore_us,omitempty"`

	Outcome string `json:"outcome,omitempty"` // verify: "ok" or "fail"
	Err     string `json:"err,omitempty"`
	Detail  string `json:"detail,omitempty"`

	// OracleHWM is the MVCC commit-timestamp high-water mark known durable
	// at a crash or recovered at a restart — the record that proves
	// timestamps never regress across a power failure.
	OracleHWM uint64 `json:"oracle_hwm,omitempty"`
}

// AuditLog is the crash/restart/replay event log: an in-memory ring (for
// /statusz and in-process assertions) plus an optional JSON-lines writer
// (one event per line, append-only — the queryable record a post-mortem
// reads). Record is safe for concurrent use; events get a monotonically
// increasing Seq so interleavings stay ordered in the file.
//
// Methods are nil-safe no-ops, so a shard holds a possibly-nil *AuditLog.
type AuditLog struct {
	mu     sync.Mutex
	events []AuditEvent // ring storage
	next   int
	n      int
	seq    uint64
	sink   io.Writer
	closer io.Closer
}

// DefaultAuditBuf bounds the in-memory audit ring.
const DefaultAuditBuf = 1024

// NewAuditLog returns an in-memory audit log retaining the last buf
// events (0 = DefaultAuditBuf).
func NewAuditLog(buf int) *AuditLog {
	if buf <= 0 {
		buf = DefaultAuditBuf
	}
	return &AuditLog{events: make([]AuditEvent, buf)}
}

// Attach streams every future event to w as JSON lines (in addition to
// the ring). Passing nil detaches.
func (l *AuditLog) Attach(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// OpenFile attaches an append-mode JSONL file as the event sink; Close
// releases it.
func (l *AuditLog) OpenFile(path string) error {
	if l == nil {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.sink, l.closer = f, f
	l.mu.Unlock()
	return nil
}

// Close detaches and closes a file sink opened with OpenFile.
func (l *AuditLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	c := l.closer
	l.sink, l.closer = nil, nil
	l.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// syncer is what a file sink implements; Record fsyncs through it after
// crash and restart events.
type syncer interface{ Sync() error }

// Record stamps ev with the next sequence number and the current time
// (when unset), stores it in the ring, and writes one JSON line to the
// attached sink. Sink write errors are swallowed: the audit trail must
// never fail the serving or recovery path it is narrating. Crash and
// restart events are fsynced through a file sink before Record returns —
// those are exactly the entries a post-mortem needs, written at exactly
// the moments the process is least likely to exit cleanly.
func (l *AuditLog) Record(ev AuditEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	l.events[l.next] = ev
	l.next = (l.next + 1) % len(l.events)
	if l.n < len(l.events) {
		l.n++
	}
	sink := l.sink
	var line []byte
	if sink != nil {
		line, _ = json.Marshal(ev)
	}
	l.mu.Unlock()
	if sink != nil && line != nil {
		sink.Write(append(line, '\n'))
		if ev.Type == AuditCrash || ev.Type == AuditRestart {
			if s, ok := sink.(syncer); ok {
				s.Sync()
			}
		}
	}
}

// ReadAuditJSONL reads an audit trail file written by a file sink. A torn
// final line — the partial write of a process that died mid-Record — is
// tolerated and reported via torn rather than failing the whole read; a
// malformed line anywhere else is real corruption and errors. Events are
// returned in file order.
func ReadAuditJSONL(path string) (events []AuditEvent, torn bool, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	lines := strings.Split(string(blob), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		var ev AuditEvent
		if uerr := json.Unmarshal([]byte(line), &ev); uerr != nil {
			tail := i == len(lines)-1
			for j := i + 1; j < len(lines); j++ {
				if lines[j] != "" {
					tail = false
				}
			}
			if tail {
				return events, true, nil
			}
			return events, false, fmt.Errorf("obs: audit line %d corrupt: %w", i+1, uerr)
		}
		events = append(events, ev)
	}
	return events, false, nil
}

// Events returns the retained events, oldest first.
func (l *AuditLog) Events() []AuditEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEvent, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.events)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.events[(start+i)%len(l.events)])
	}
	return out
}

// Tail returns up to n of the newest events, oldest of those first.
func (l *AuditLog) Tail(n int) []AuditEvent {
	evs := l.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len returns the number of retained events.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
