// Package cap implements CPU-Assisted Persistence — the ways a GPU
// application can reach PM today, without GPM (§3, Fig 2a): results are
// DMA-ed from device memory to host DRAM, then the CPU writes them to PM
// and guarantees persistence. Three variants are modeled:
//
//   - CAP-fs: write(2) into a PM-resident file, then fsync.
//   - CAP-mm: memcpy into a mmap-ed PM file, then user-space cache flushes
//     and a drain, on a configurable number of CPU threads. cudaMemcpy
//     cannot target the file directly, so a pinned DRAM bounce buffer sits
//     in the middle (§3).
//   - CAP-eADR: CAP-mm on eADR hardware — flushes are unnecessary, only
//     the drain remains (§6.1). Enabled via Space.SetEADR; the same code
//     path specializes automatically.
//
// The package also provides the CPU flush phase of GPM-NDP (GPM without
// direct persistence, §6.1): kernels load/store PM directly, but the CPU
// must still flush to guarantee durability.
package cap

import (
	"github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/fsim"
	"github.com/gpm-sim/gpm/internal/telemetry"
)

// Engine drives CAP persistence for one context, reusing a pinned DRAM
// bounce buffer across transfers.
type Engine struct {
	ctx *gpm.Context
	// Threads is the number of CPU threads used by the mm persist phase
	// (the paper uses the best of 2–32 per application).
	Threads int

	bounce     uint64
	bounceSize int64
}

// New returns an engine with the given CPU persist-thread count.
func New(ctx *gpm.Context, threads int) *Engine {
	if threads < 1 {
		threads = 1
	}
	return &Engine{ctx: ctx, Threads: threads}
}

func (e *Engine) ensureBounce(n int64) uint64 {
	if n > e.bounceSize {
		e.bounce = e.ctx.Space.AllocDRAM(n)
		e.bounceSize = n
	}
	return e.bounce
}

// dmaToHost copies [src, src+n) from device memory into the bounce buffer
// (cudaMemcpyDeviceToHost through the DMA engine) and charges its time.
func (e *Engine) dmaToHost(src uint64, n int64) uint64 {
	start := e.ctx.SpanStart()
	b := e.ensureBounce(n)
	const chunk = 1 << 16
	buf := make([]byte, chunk)
	for off := int64(0); off < n; off += chunk {
		c := n - off
		if c > chunk {
			c = chunk
		}
		e.ctx.Space.Read(src+uint64(off), buf[:c])
		e.ctx.Space.WriteCPU(b+uint64(off), buf[:c])
	}
	e.ctx.Timeline.Add("dma", e.ctx.Space.DMA.TransferUp(n))
	e.ctx.SpanEnd(telemetry.TrackPCIe, "dma-to-host", "pcie", start)
	return b
}

// DMAToDevice copies host data down to device memory, charging DMA time.
func (e *Engine) DMAToDevice(dst, src uint64, n int64) {
	start := e.ctx.SpanStart()
	const chunk = 1 << 16
	buf := make([]byte, chunk)
	for off := int64(0); off < n; off += chunk {
		c := n - off
		if c > chunk {
			c = chunk
		}
		e.ctx.Space.Read(src+uint64(off), buf[:c])
		e.ctx.Space.WriteCPU(dst+uint64(off), buf[:c])
	}
	e.ctx.Timeline.Add("dma", e.ctx.Space.DMA.TransferDown(n))
	e.ctx.SpanEnd(telemetry.TrackPCIe, "dma-to-device", "pcie", start)
}

// PersistFS is the CAP-fs path: DMA the device range to the host, write it
// into the PM-resident file at fileOff, and fsync. The filesystem path is
// single-threaded (write + fsync on one file descriptor).
func (e *Engine) PersistFS(f *fsim.File, fileOff int64, devSrc uint64, n int64) error {
	b := e.dmaToHost(devSrc, n)
	var werr error
	e.ctx.RunCPU("cap-fs", 1, func(t *cpusim.Thread) {
		const chunk = 1 << 20
		buf := make([]byte, chunk)
		for off := int64(0); off < n; off += chunk {
			c := n - off
			if c > chunk {
				c = chunk
			}
			t.Read(b+uint64(off), buf[:c])
			if err := f.WriteAt(t, fileOff+off, buf[:c]); err != nil {
				werr = err
				return
			}
		}
		f.Fsync(t)
	})
	return werr
}

// PersistMM is the CAP-mm path (and CAP-eADR when the space is in eADR
// mode): DMA to the bounce buffer, then Threads CPU workers memcpy their
// partitions into the mmap-ed PM range and flush+drain them.
func (e *Engine) PersistMM(pmDst uint64, devSrc uint64, n int64) {
	b := e.dmaToHost(devSrc, n)
	threads := e.Threads
	e.ctx.RunCPU("cap-mm", threads, func(t *cpusim.Thread) {
		part := (n + int64(threads) - 1) / int64(threads)
		off := int64(t.ID) * part
		if off >= n {
			return
		}
		c := part
		if off+c > n {
			c = n - off
		}
		t.Memcpy(pmDst+uint64(off), b+uint64(off), c)
		t.PersistRange(pmDst+uint64(off), c)
	})
}

// FlushOnly is GPM-NDP's persistence phase: the kernel already stored the
// data to PM directly (DDIO on, so it sits in the LLC); the CPU flushes the
// range to guarantee durability. The lines are foreign (GPU-written), so
// the drain pays the CPU→PM bandwidth (§6.1).
func (e *Engine) FlushOnly(pmAddr uint64, n int64) {
	threads := e.Threads
	e.ctx.RunCPU("ndp-flush", threads, func(t *cpusim.Thread) {
		part := (n + int64(threads) - 1) / int64(threads)
		off := int64(t.ID) * part
		if off >= n {
			return
		}
		c := part
		if off+c > n {
			c = n - off
		}
		t.PersistForeignRange(pmAddr+uint64(off), c)
	})
}
