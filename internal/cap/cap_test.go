package cap

import (
	"bytes"
	"testing"

	gpm "github.com/gpm-sim/gpm/internal/core"
	"github.com/gpm-sim/gpm/internal/gpu"
	"github.com/gpm-sim/gpm/internal/memsys"
	"github.com/gpm-sim/gpm/internal/sim"
)

func newCtx(t *testing.T) *gpm.Context {
	t.Helper()
	return gpm.NewContext(sim.Default(), memsys.Config{HBMSize: 8 << 20, DRAMSize: 8 << 20, PMSize: 16 << 20})
}

func fill(ctx *gpm.Context, addr uint64, n int64, b byte) []byte {
	buf := bytes.Repeat([]byte{b}, int(n))
	ctx.Space.WriteCPU(addr, buf)
	return buf
}

func TestPersistFSDurable(t *testing.T) {
	ctx := newCtx(t)
	e := New(ctx, 4)
	f, _ := ctx.FS.Create("/f", 1<<16, 0)
	src := ctx.Space.AllocHBM(1 << 16)
	want := fill(ctx, src, 1<<16, 0x11)
	if err := e.PersistFS(f, 0, src, 1<<16); err != nil {
		t.Fatal(err)
	}
	ctx.Crash()
	got := make([]byte, 1<<16)
	ctx.Space.Read(f.Mmap(), got)
	if !bytes.Equal(got, want) {
		t.Error("CAP-fs data lost on crash")
	}
}

func TestPersistMMDurable(t *testing.T) {
	ctx := newCtx(t)
	e := New(ctx, 8)
	dst := ctx.Space.AllocPM(1<<16, 0)
	src := ctx.Space.AllocHBM(1 << 16)
	want := fill(ctx, src, 1<<16, 0x22)
	e.PersistMM(dst, src, 1<<16)
	ctx.Crash()
	got := make([]byte, 1<<16)
	ctx.Space.Read(dst, got)
	if !bytes.Equal(got, want) {
		t.Error("CAP-mm data lost on crash")
	}
}

func TestPersistMMEADRFaster(t *testing.T) {
	mm := func(eadr bool) sim.Duration {
		ctx := newCtx(t)
		if eadr {
			ctx.Space.SetEADR(true)
		}
		e := New(ctx, 8)
		dst := ctx.Space.AllocPM(1<<20, 0)
		src := ctx.Space.AllocHBM(1 << 20)
		start := ctx.Timeline.Total()
		e.PersistMM(dst, src, 1<<20)
		return ctx.Timeline.Total() - start
	}
	plain, eadr := mm(false), mm(true)
	// §6.1: eADR "provides limited benefits to CAP" — the PM bandwidth
	// bound dominates with or without explicit flushes. eADR must never
	// be slower, and any gain stays modest.
	if eadr > plain {
		t.Errorf("CAP-eADR (%v) slower than CAP-mm (%v)", eadr, plain)
	}
	if float64(plain)/float64(eadr) > 2 {
		t.Errorf("CAP-eADR gain %.1fx too large; transfers should dominate", float64(plain)/float64(eadr))
	}
}

func TestFlushOnlyPersistsGPUWrites(t *testing.T) {
	ctx := newCtx(t)
	e := New(ctx, 4)
	dst := ctx.Space.AllocPM(1<<12, 0)
	// GPU writes with DDIO on (the NDP pattern): volatile in the LLC.
	ctx.Launch("ndp", 1, 32, func(th *gpu.Thread) {
		th.StoreU64(dst+uint64(th.ID())*8, uint64(th.ID()+1))
	})
	if ctx.Space.Persisted(dst, 256) {
		t.Fatal("writes durable before flush?")
	}
	e.FlushOnly(dst, 1<<12)
	ctx.Crash()
	for i := 0; i < 32; i++ {
		if ctx.Space.ReadU64(dst+uint64(i)*8) != uint64(i+1) {
			t.Fatalf("slot %d lost", i)
		}
	}
}

func TestDMAToDevice(t *testing.T) {
	ctx := newCtx(t)
	e := New(ctx, 2)
	src := ctx.Space.AllocDRAM(4096)
	dst := ctx.Space.AllocHBM(4096)
	want := fill(ctx, src, 4096, 0x33)
	before := ctx.Timeline.Total()
	e.DMAToDevice(dst, src, 4096)
	if ctx.Timeline.Total() <= before {
		t.Error("DMA cost not accounted")
	}
	got := make([]byte, 4096)
	ctx.Space.Read(dst, got)
	if !bytes.Equal(got, want) {
		t.Error("DMA data mismatch")
	}
}

func TestMoreThreadsHelpUntilPlateau(t *testing.T) {
	run := func(threads int) sim.Duration {
		ctx := newCtx(t)
		e := New(ctx, threads)
		dst := ctx.Space.AllocPM(4<<20, 0)
		src := ctx.Space.AllocHBM(4 << 20)
		start := ctx.Timeline.Total()
		e.PersistMM(dst, src, 4<<20)
		return ctx.Timeline.Total() - start
	}
	t1, t16 := run(1), run(16)
	sp := float64(t1) / float64(t16)
	if sp < 1.05 || sp > 1.8 {
		t.Errorf("CAP-mm 16-thread speedup %.2f, want within the Fig 3a plateau", sp)
	}
}
