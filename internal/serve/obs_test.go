package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Every batched request trace must tell a coherent pipeline story: the six
// stages in order, offsets non-decreasing, riding a real epoch. With
// SampleEvery=1 every request is captured, so the trace count must match
// the op count exactly.
func TestRequestTracesThroughPipeline(t *testing.T) {
	tracer := obs.NewRequestTracer(1, time.Hour, 64)
	tel := telemetry.New()
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 2, Sets: 64, MaxBatch: 16,
		BatchWait: 200 * time.Microsecond, Workers: 1, Telemetry: tel,
		Trace: tracer,
	})
	br, c := dial(t, addr)
	defer c.Close()

	reqs := []string{"SET 1 100", "SET 2 200", "GET 1", "GET 9", "DEL 2"}
	for _, req := range reqs {
		roundTrip(t, c, br, req)
	}
	c.Close()
	srv.Shutdown(5 * time.Second)

	traces := tracer.Last(0)
	if len(traces) != len(reqs) {
		t.Fatalf("%d traces for %d requests at SampleEvery=1", len(traces), len(reqs))
	}
	wantStages := []string{"admit", "seal", "stage", "kernel", "persist", "commit"}
	for _, tr := range traces {
		if tr.Reason != obs.ReasonHead {
			t.Errorf("trace %d reason %q, want head", tr.ID, tr.Reason)
		}
		if tr.Op == "" || tr.Key == 0 || tr.ID == 0 {
			t.Errorf("trace missing identity: %+v", tr)
		}
		if len(tr.Stages) != len(wantStages) {
			t.Fatalf("trace %d has %d stages %v, want %v", tr.ID, len(tr.Stages), tr.Stages, wantStages)
		}
		prev := 0.0
		for i, sp := range tr.Stages {
			if sp.Stage != wantStages[i] {
				t.Errorf("trace %d stage %d = %q, want %q", tr.ID, i, sp.Stage, wantStages[i])
			}
			if sp.OffsetUS < prev {
				t.Errorf("trace %d stage %q offset %g regresses below %g", tr.ID, sp.Stage, sp.OffsetUS, prev)
			}
			prev = sp.OffsetUS
		}
		if tr.TotalUS != tr.Stages[len(tr.Stages)-1].OffsetUS {
			t.Errorf("trace %d total %g != final stage offset %g",
				tr.ID, tr.TotalUS, tr.Stages[len(tr.Stages)-1].OffsetUS)
		}
	}
}

// A GET answered from the hot-key cache gets the short two-stage trace
// instead of the pipeline's six.
func TestRequestTraceCacheHit(t *testing.T) {
	tracer := obs.NewRequestTracer(1, time.Hour, 64)
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8,
		BatchWait: 100 * time.Microsecond, Workers: 1, HotKeys: 16,
		Telemetry: telemetry.New(), Trace: tracer,
	})
	br, c := dial(t, addr)
	defer c.Close()

	roundTrip(t, c, br, "SET 5 50")
	// Repeated GETs heat the key; the cache fills after a batched GET of a
	// hot key, so later GETs hit.
	for i := 0; i < 6; i++ {
		if got := roundTrip(t, c, br, "GET 5"); got != "VALUE 50" {
			t.Fatalf("GET 5 -> %q", got)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)

	var cacheTraces int
	for _, tr := range tracer.Last(0) {
		if len(tr.Stages) == 2 && tr.Stages[1].Stage == "cache-reply" {
			cacheTraces++
			if tr.Epoch != 0 {
				t.Errorf("cache-hit trace claims epoch %d", tr.Epoch)
			}
		}
	}
	if cacheTraces == 0 {
		t.Error("no cache-hit traces captured (cache never hit?)")
	}
}

// The full selftest with the admin endpoint live and an audit file
// attached: admin answers during load, the audit trail survives to disk as
// parseable JSONL, and the trail's replay evidence matches the injected
// crash points (checked inside SelfTest via verifyAuditTrail).
func TestSelfTestWithAdminAndAudit(t *testing.T) {
	auditPath := filepath.Join(t.TempDir(), "audit.jsonl")
	rep, err := SelfTest(SelfTestOptions{
		Modes:          []workloads.Mode{workloads.GPM},
		ShardCounts:    []int{2},
		Ops:            600,
		Conns:          4,
		Sets:           256,
		MaxBatch:       64,
		BatchWait:      200 * time.Microsecond,
		Workers:        1,
		Seed:           3,
		KillAndRecover: true,
		Admin:          true,
		AuditPath:      auditPath,
	})
	if err != nil {
		t.Fatalf("SelfTest: %v", err)
	}
	e := rep.Entries[0]
	if !e.AdminProbed {
		t.Error("admin endpoint was not probed")
	}
	if !e.AuditConsistent {
		t.Error("audit trail not marked consistent")
	}
	if e.TracesCaptured < 1 {
		t.Errorf("traces_captured = %d, want >= 1", e.TracesCaptured)
	}
	// crash+restart per round (4 points x however many rounds) + drain +
	// verify per shard: at least 4+4+1+2.
	if e.AuditEvents < 11 {
		t.Errorf("audit_events = %d, want >= 11", e.AuditEvents)
	}

	blob, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatalf("audit file: %v", err)
	}
	var drains, crashes, restarts, verifies int
	for _, line := range bytes.Split(bytes.TrimSpace(blob), []byte("\n")) {
		var ev obs.AuditEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("audit line %q: %v", line, err)
		}
		switch ev.Type {
		case obs.AuditDrain:
			drains++
		case obs.AuditCrash:
			crashes++
		case obs.AuditRestart:
			restarts++
		case obs.AuditVerify:
			verifies++
		}
	}
	if drains < 1 || crashes < 4 || restarts != crashes || verifies < 2 {
		t.Errorf("audit file has drain=%d crash=%d restart=%d verify=%d", drains, crashes, restarts, verifies)
	}
}

// verifyAuditTrail rejects trails whose replay evidence contradicts the
// injected crash points.
func TestVerifyAuditTrailRejectsMismatch(t *testing.T) {
	mk := func(muts int, mutate func(evs []obs.AuditEvent)) error {
		evs := []obs.AuditEvent{
			{Seq: 1, Type: obs.AuditCrash, Shard: 0, Point: "before-commit"},
			{Seq: 2, Type: obs.AuditRestart, Shard: 0, TxSet: true, Geometries: []int{1, 2}, SlotsRolledBack: int64(muts)},
			{Seq: 3, Type: obs.AuditVerify, Shard: 0, Outcome: "ok"},
		}
		if mutate != nil {
			mutate(evs)
		}
		return verifyAuditTrail(evs, []crashRound{{shard: 0, point: CrashBeforeCommit, muts: muts}}, 1)
	}
	if err := mk(8, nil); err != nil {
		t.Fatalf("consistent trail rejected: %v", err)
	}
	for name, mutate := range map[string]func([]obs.AuditEvent){
		"wrong rollback count": func(e []obs.AuditEvent) { e[1].SlotsRolledBack = 3 },
		"tx flag clear":        func(e []obs.AuditEvent) { e[1].TxSet = false },
		"wrong crash point":    func(e []obs.AuditEvent) { e[0].Point = "mid-kernel" },
		"wrong shard":          func(e []obs.AuditEvent) { e[1].Shard = 7 },
		"verify failed":        func(e []obs.AuditEvent) { e[2].Outcome = "fail" },
	} {
		if err := mk(8, mutate); err == nil {
			t.Errorf("%s: inconsistent trail accepted", name)
		}
	}
	if err := verifyAuditTrail(nil, []crashRound{{shard: 0, point: CrashMidKernel, muts: 8}}, 1); err == nil {
		t.Error("missing events accepted")
	}
}

// The ObsPlane composes against a real server: statusz document fields,
// nil-safety of a skipped plane, and teardown.
func TestObsPlaneLifecycle(t *testing.T) {
	plane, err := NewObsPlane(ObsConfig{AdminAddr: "127.0.0.1:0", Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Mode: workloads.GPM, Shards: 2, Sets: 64, MaxBatch: 8,
		Workers: 1, Telemetry: telemetry.New(),
	}
	plane.Apply(&cfg)
	if cfg.Trace == nil || cfg.Audit == nil {
		t.Fatal("Apply did not install tracer/audit")
	}
	srv, addr := startServer(t, cfg)
	adminAddr, err := plane.Start(srv)
	if err != nil {
		t.Fatal(err)
	}
	if adminAddr == "" {
		t.Fatal("admin address empty")
	}
	br, c := dial(t, addr)
	for i := 1; i <= 8; i++ {
		roundTrip(t, c, br, fmt.Sprintf("SET %d %d", i, i*10))
	}
	c.Close()

	doc := plane.StatusDoc(srv)
	if doc.Shards != 2 || len(doc.ShardRows) != 2 || doc.UptimeS <= 0 {
		t.Errorf("status doc = %+v", doc)
	}
	if doc.GoVersion == "" || doc.OSArch == "" || doc.Mode != "GPM" {
		t.Errorf("build info missing: %+v", doc)
	}
	var ops int64
	for _, row := range doc.ShardRows {
		ops += row.Ops
	}
	if ops != 8 {
		t.Errorf("status rows total %d ops, want 8", ops)
	}
	if err := probeAdmin(adminAddr, 2); err != nil {
		t.Errorf("probeAdmin: %v", err)
	}
	srv.Shutdown(5 * time.Second)
	plane.Stop()

	var nilPlane *ObsPlane
	nilPlane.Apply(&cfg)
	if _, err := nilPlane.Start(srv); err != nil {
		t.Error("nil plane Start must be a no-op")
	}
	nilPlane.Stop()
}

// Chrome-trace export of captured wall traces lands on its own process
// lane with one span per stage.
func TestExportWallSpans(t *testing.T) {
	plane, err := NewObsPlane(ObsConfig{SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	zero := time.Now()
	plane.Tracer.Add(obs.ReqTrace{
		ID: 1, Shard: 0, Op: "SET", Start: zero.Add(time.Millisecond),
		Stages: []obs.StagePoint{{Stage: "admit", OffsetUS: 5}, {Stage: "commit", OffsetUS: 50}},
	})
	tel := telemetry.New()
	plane.ExportWallSpans(tel, zero)
	spans := tel.Tracer().Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if tel.Tracer().ProcessLabel(spans[0].PID) != "serve/requests(wall)" {
		t.Errorf("process label = %q", tel.Tracer().ProcessLabel(spans[0].PID))
	}
}
