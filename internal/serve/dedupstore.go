package serve

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/gpm-sim/gpm/internal/cpusim"
	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/pmem"
)

// ReqID is a client-assigned request identity: a client ID and a sequence
// number, both >= 1 on the wire ("@<cid>.<seq> SET ..."). The zero ReqID
// marks a legacy unidentified request.
type ReqID struct{ CID, Seq uint64 }

// Zero reports whether the request carried no ID.
func (id ReqID) Zero() bool { return id.CID == 0 }

func (id ReqID) String() string { return fmt.Sprintf("@%d.%d", id.CID, id.Seq) }

// The PM dedup table is direct-mapped: dedupSlots entries of (cid, seq),
// slot = cid % dedupSlots. A colliding client evicts the incumbent — its
// restart-spanning dedup protection degrades to the volatile window — so
// deployments wanting full exactly-once across restarts keep concurrent
// identified clients under dedupSlots.
const (
	dedupSlots      = 256
	dedupEntryBytes = 16
	dedupTableBytes = dedupSlots * dedupEntryBytes
	jnlEntryBytes   = 24 // table slot, old cid, old seq
)

// dedupJnlBytes sizes the undo journal: one entry per possible advance in a
// maximally-filled epoch (write squashing lets logical mutations outnumber
// kernel slots, up to mutCap), count word last.
func dedupJnlBytes(maxBatch int) int64 {
	return int64(mutCap(maxBatch))*jnlEntryBytes + 64
}

// jnlCountOff is the journal's count-word offset (past the entry region).
func (s *Shard) jnlCountOff() uint64 { return uint64(mutCap(s.maxBatch)) * jnlEntryBytes }

// dedupJournal writes the undo journal for the batch's dedup advances:
// zero the count (so a torn journal is empty, not stale), persist the old
// table values, then persist the count last. Called BEFORE the tx flag is
// set — recovery only trusts the journal while the flag is up, and by then
// the journal is complete by construction.
func (s *Shard) dedupJournal(b *Batch) {
	if s.noDedupPersist || len(b.DedupCID) == 0 {
		return
	}
	jnl := s.jnlFile.Mmap()
	countAddr := jnl + s.jnlCountOff()
	n := len(b.DedupCID)
	s.env.Ctx.RunCPU("dedup-journal", 1, func(t *cpusim.Thread) {
		t.WriteU64(countAddr, 0)
		t.PersistRange(countAddr, 8)
		for i, cid := range b.DedupCID {
			slot := cid % dedupSlots
			off := jnl + uint64(i)*jnlEntryBytes
			t.WriteU64(off, slot)
			t.WriteU64(off+8, s.dedupShadow[slot*2])
			t.WriteU64(off+16, s.dedupShadow[slot*2+1])
		}
		t.PersistRange(jnl, int64(n*jnlEntryBytes))
		t.WriteU64(countAddr, uint64(n))
		t.PersistRange(countAddr, 8)
	})
}

// dedupJournalClear empties the journal count. Legacy crash-injection
// paths (CrashAt/CrashMidBatch bypass apply's journal write) call it
// before arming the tx flag so recovery cannot replay a stale journal
// from an earlier committed batch.
func (s *Shard) dedupJournalClear() {
	countAddr := s.jnlFile.Mmap() + s.jnlCountOff()
	s.env.Ctx.RunCPU("dedup-jclear", 1, func(t *cpusim.Thread) {
		t.WriteU64(countAddr, 0)
		t.PersistRange(countAddr, 8)
	})
}

// dedupTableWrite persists the batch's dedup advances into the PM table.
// Under logging modes it runs inside the transaction window (after the
// mutate kernels, before the log clear), so the journal rolls it back if
// the batch never commits.
func (s *Shard) dedupTableWrite(b *Batch) {
	if s.noDedupPersist || len(b.DedupCID) == 0 {
		return
	}
	table := s.dedupFile.Mmap()
	s.env.Ctx.RunCPU("dedup-table", 1, func(t *cpusim.Thread) {
		for i, cid := range b.DedupCID {
			seq := b.DedupSeq[i]
			slot := cid % dedupSlots
			if s.dedupShadow[slot*2] == cid && s.dedupShadow[slot*2+1] >= seq {
				continue // defensive: never move a client's mark backwards
			}
			off := table + uint64(slot)*dedupEntryBytes
			t.WriteU64(off, cid)
			t.WriteU64(off+8, seq)
			t.PersistRange(off, dedupEntryBytes)
		}
	})
}

// dedupShadowAdvance folds a COMMITTED batch's advances into the host-side
// shadow (the volatile view admission resyncs from). Runs even with PM
// persistence disabled — the negative control's window still works within
// one server lifetime; only the restart round-trip is broken.
func (s *Shard) dedupShadowAdvance(b *Batch) {
	for i, cid := range b.DedupCID {
		seq := b.DedupSeq[i]
		slot := cid % dedupSlots
		if s.dedupShadow[slot*2] == cid && s.dedupShadow[slot*2+1] >= seq {
			continue
		}
		s.dedupShadow[slot*2] = cid
		s.dedupShadow[slot*2+1] = seq
	}
}

// dedupJournalRestore rolls the PM dedup table back to its pre-transaction
// image. Only called during recovery with the tx flag set; idempotent, so
// nested re-crashes during recovery replay it safely.
func (s *Shard) dedupJournalRestore() {
	jnlSnap := s.env.Ctx.Space.SnapshotPersistent(s.jnlFile.Mmap(), int(dedupJnlBytes(s.maxBatch)))
	n := binary.LittleEndian.Uint64(jnlSnap[s.jnlCountOff():])
	if n == 0 || n > uint64(mutCap(s.maxBatch)) {
		return // empty (or implausible ⇒ torn) journal: nothing recorded
	}
	table := s.dedupFile.Mmap()
	s.env.Ctx.RunCPU("dedup-restore", 1, func(t *cpusim.Thread) {
		for i := uint64(0); i < n; i++ {
			e := jnlSnap[i*jnlEntryBytes:]
			slot := binary.LittleEndian.Uint64(e)
			if slot >= dedupSlots {
				continue // torn entry guarded by the count, but stay defensive
			}
			off := table + slot*dedupEntryBytes
			t.WriteU64(off, binary.LittleEndian.Uint64(e[8:]))
			t.WriteU64(off+8, binary.LittleEndian.Uint64(e[16:]))
			t.PersistRange(off, dedupEntryBytes)
		}
	})
}

// dedupShadowReload rebuilds the host shadow from the durable PM table —
// the restart-time proof that high-water marks really round-tripped
// through persistent memory.
func (s *Shard) dedupShadowReload() {
	snap := s.env.Ctx.Space.SnapshotPersistent(s.dedupFile.Mmap(), dedupTableBytes)
	for i := 0; i < dedupSlots; i++ {
		s.dedupShadow[i*2] = binary.LittleEndian.Uint64(snap[i*dedupEntryBytes:])
		s.dedupShadow[i*2+1] = binary.LittleEndian.Uint64(snap[i*dedupEntryBytes+8:])
	}
}

// DedupSnapshot returns the committed per-client high-water marks (cid ->
// seq) from the shard's current shadow. The batcher resyncs its admission
// window from this after a crash-restart.
func (s *Shard) DedupSnapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i := 0; i < dedupSlots; i++ {
		if cid := s.dedupShadow[i*2]; cid != 0 {
			out[cid] = s.dedupShadow[i*2+1]
		}
	}
	return out
}

// DisableDedupPersist is the chaos negative control: dedup state stops
// reaching PM, so high-water marks die with the process and a retried
// lost-ack mutation re-applies after restart — which the campaign's
// duplicate-apply invariant must catch.
func (s *Shard) DisableDedupPersist() { s.noDedupPersist = true }

// TallyViolations returns every request ID applied to the committed oracle
// more than once, sorted — the exactly-once invariant is that this is
// always empty.
func (s *Shard) TallyViolations() []ReqID {
	var out []ReqID
	for id, n := range s.tally {
		if n > 1 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CID != out[j].CID {
			return out[i].CID < out[j].CID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// ShardCrashPlan arms a power failure inside a future Apply call.
type ShardCrashPlan struct {
	// ApplyIndex counts mutation-bearing Apply calls (1-based); the plan
	// fires on the first call with index >= ApplyIndex, so it still
	// triggers when mutation batches are scarcer than expected.
	ApplyIndex int64
	// Point picks the pipeline stage the power fails at.
	Point CrashPoint
	// AbortAfterOps bounds the device ops of a mid-kernel crash (0 = 8).
	AbortAfterOps int64
	// Model, when non-nil, filters the crash cut through a PM fault model
	// (torn lines/words, reordering) seeded by FaultSeed.
	Model     pmem.FaultModel
	FaultSeed uint64
	// RecrashDepth injects that many nested power failures during the
	// recovery replay itself before recovery is allowed to finish.
	RecrashDepth int
}

// SetCrashPlan arms (or with nil, disarms) a crash plan. Call before the
// shard starts taking traffic; the plan is consumed when it fires.
func (s *Shard) SetCrashPlan(p *ShardCrashPlan) {
	if p != nil {
		cp := *p
		if cp.AbortAfterOps <= 0 {
			cp.AbortAfterOps = 8
		}
		if cp.ApplyIndex <= 0 {
			cp.ApplyIndex = 1
		}
		p = &cp
	}
	s.plan = p
	s.applyCount = 0
}

// PlanFired reports whether an armed plan has triggered.
func (s *Shard) PlanFired() bool { return s.fired != nil }

// RecoverFromPlan restarts a shard downed by its crash plan, honoring the
// plan's recovery fault model and nested re-crash depth; for a shard
// downed any other way it is a plain Restart.
func (s *Shard) RecoverFromPlan() error {
	p := s.fired
	if p == nil {
		_, err := s.Restart()
		return err
	}
	_, err := s.RestartWithRecrash(p.RecrashDepth, p.Model, p.FaultSeed)
	return err
}

// ShardDownError is returned by Apply when a crash plan fires: the shard
// is down and needs Restart/RecoverFromPlan. Committed tells the pipeline
// whether the batch reached durability before the power failed (the
// lost-ack case: clients must retry into the dedup window) or was rolled
// back (clients must retry into a fresh apply).
type ShardDownError struct {
	Point     CrashPoint
	Committed bool
}

func (e *ShardDownError) Error() string {
	state := "rolled back"
	if e.Committed {
		state = "committed, acks lost"
	}
	return fmt.Sprintf("serve: shard power-failed at %s (batch %s)", e.Point, state)
}

// crashNow executes a planned power failure: apply the fault model, mark
// the shard down, remember the fired plan for recovery, and hand the
// pipeline a ShardDownError.
func (s *Shard) crashNow(cp *ShardCrashPlan, b *Batch, detail string) error {
	if cp.Model != nil {
		s.env.Ctx.CrashWith(cp.Model, cp.FaultSeed)
	} else {
		s.env.Ctx.Crash()
	}
	s.down = true
	s.fired = cp
	model := "clean"
	if cp.Model != nil {
		model = cp.Model.Name()
	}
	s.audit.Record(obs.AuditEvent{
		Type: obs.AuditCrash, Shard: s.id, Mode: s.mode.String(),
		Point:     cp.Point.String(),
		OracleHWM: s.oraShadow,
		Detail: fmt.Sprintf("planned power failure (%s model): %s; %d mutations at risk",
			model, detail, b.Mutations()),
	})
	return &ShardDownError{Point: cp.Point, Committed: cp.Point == CrashBeforeReply}
}
