// External test package: boots real serve.Servers over loopback TCP (the
// serve package itself builds on client, so these tests live outside the
// package proper to keep the import graph acyclic).
package client_test

import (
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/serve"
	"github.com/gpm-sim/gpm/internal/serve/client"
	"github.com/gpm-sim/gpm/internal/workloads"
)

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	if cfg.Mode == 0 {
		cfg.Mode = workloads.GPM
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Sets == 0 {
		cfg.Sets = 64
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 16
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Shutdown(5 * time.Second) })
	return srv, addr.String()
}

// Plain positional mode against a v2 server: the byte stream is pure v1.
func TestClientPlainOps(t *testing.T) {
	_, addr := startServer(t, serve.Config{})
	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if cl.Proto() != 1 {
		t.Fatalf("plain client negotiated v%d, want v1", cl.Proto())
	}

	// Pipeline a burst of futures, then collect.
	var futs []*client.Future
	for i := uint64(1); i <= 20; i++ {
		f, err := cl.Set(i, i*10)
		if err != nil {
			t.Fatalf("Set: %v", err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		body, err := cl.Wait(f)
		if err != nil || body != "OK" {
			t.Fatalf("SET %d -> (%q, %v)", i+1, body, err)
		}
	}
	g, _ := cl.Get(7)
	d, _ := cl.Del(7)
	g2, _ := cl.Get(7)
	if body, _ := cl.Wait(g); body != "VALUE 70" {
		t.Errorf("GET -> %q, want VALUE 70", body)
	}
	if body, _ := cl.Wait(d); body != "OK" {
		t.Errorf("DEL -> %q", body)
	}
	if body, _ := cl.Wait(g2); body != "NOTFOUND" {
		t.Errorf("GET after DEL -> %q, want NOTFOUND", body)
	}
	if v, ok := client.IsValue("VALUE 70"); !ok || v != 70 {
		t.Errorf("IsValue parse broken: %d %v", v, ok)
	}
}

// v2 negotiation and the transaction surface: snapshot reads,
// read-your-writes, commit, conflict abort, explicit abort.
func TestClientTransactions(t *testing.T) {
	_, addr := startServer(t, serve.Config{Shards: 2})
	cl, err := client.Dial(client.Config{Addr: addr, Proto: client.MaxProto})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if cl.Proto() != 2 || cl.Shards() != 2 {
		t.Fatalf("negotiated v%d/%d shards, want v2/2", cl.Proto(), cl.Shards())
	}

	f, _ := cl.Set(2, 20)
	if body, err := cl.Wait(f); err != nil || body != "OK" {
		t.Fatalf("seed -> (%q, %v)", body, err)
	}

	txn, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if v, found, err := txn.Get(2); err != nil || !found || v != 20 {
		t.Fatalf("txn.Get -> (%d, %v, %v), want 20", v, found, err)
	}
	txn.Set(4, 40) // same shard as 2 (mod 2)
	if v, found, err := txn.Get(4); err != nil || !found || v != 40 {
		t.Errorf("read-your-writes -> (%d, %v, %v), want 40", v, found, err)
	}
	txn.Del(2)
	if _, found, err := txn.Get(2); err != nil || found {
		t.Errorf("read-your-deletes -> found=%v err=%v, want absent", found, err)
	}
	res, err := txn.Commit()
	if err != nil || !res.Committed || res.CTS == 0 {
		t.Fatalf("Commit -> (%+v, %v), want committed with cts", res, err)
	}
	g, _ := cl.Get(4)
	if body, _ := cl.Wait(g); body != "VALUE 40" {
		t.Errorf("committed write -> %q", body)
	}

	// Conflict: a stale transaction loses to an interleaved commit.
	stale, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	f, _ = cl.Set(4, 41)
	if body, err := cl.Wait(f); err != nil || body != "OK" {
		t.Fatalf("interleaved SET -> (%q, %v)", body, err)
	}
	stale.Set(4, 99)
	res, err = stale.Commit()
	if err != nil {
		t.Fatalf("stale Commit: %v", err)
	}
	if res.Committed || res.ConflictKey != 4 {
		t.Errorf("stale commit -> %+v, want abort on key 4", res)
	}

	// Abort leaves no trace and finishes the txn.
	ab, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	ab.Set(6, 60)
	if err := ab.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if _, err := ab.Commit(); err == nil {
		t.Error("Commit after Abort succeeded, want ErrTxnFinished")
	}
	g, _ = cl.Get(6)
	if body, _ := cl.Wait(g); body != "NOTFOUND" {
		t.Errorf("aborted write leaked -> %q", body)
	}
}

// Reliable mode rides a crash-restart: the RETRY verdict resends until the
// shard recovers, and every mutation applies exactly once.
func TestClientReliableCrashRetry(t *testing.T) {
	srv, addr := startServer(t, serve.Config{Shards: 1})
	cl, err := client.Dial(client.Config{
		Addr: addr, Reliable: true, CID: 9, MaxRetries: 30,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	f, _ := cl.Set(3, 30)
	if body, err := cl.Wait(f); err != nil || body != "OK" {
		t.Fatalf("seed -> (%q, %v)", body, err)
	}
	srv.Shards()[0].SetCrashPlan(&serve.ShardCrashPlan{ApplyIndex: 1, Point: serve.CrashBeforeKernel})

	f, _ = cl.Set(5, 50)
	body, err := cl.Wait(f)
	if err != nil || body != "OK" {
		t.Fatalf("crashed SET resolved (%q, %v), want OK after retries", body, err)
	}
	if cl.Stats().Retries == 0 {
		t.Error("no retries recorded across the crash")
	}
	g, _ := cl.Get(5)
	if body, _ := cl.Wait(g); body != "VALUE 50" {
		t.Errorf("recovered value -> %q", body)
	}
	g, _ = cl.Get(3)
	if body, _ := cl.Wait(g); body != "VALUE 30" {
		t.Errorf("pre-crash value -> %q", body)
	}
}
