// Package client is the first-class line-protocol client for gpmserve: one
// connection, pipelined request futures, optional protocol-v2 negotiation
// with snapshot-isolation transactions, and an optional reliable mode in
// which every request carries an exactly-once "@<cid>.<seq>" identity and
// transport failures (or server RETRY verdicts after a crash-restart)
// resend the request — reconnecting with capped exponential backoff plus
// jitter — until it resolves or the attempt budget is spent.
//
// The client is deliberately synchronous: it owns no goroutines, and it is
// NOT safe for concurrent use. Requests buffer until Flush (or until a
// Wait needs the wire), so a closed-loop driver keeps a window pipelined
// by issuing futures and waiting on the oldest. Replies resolve futures
// positionally (plain mode) or by identity (reliable mode) during Wait.
package client

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/gpm-sim/gpm/internal/sim"
)

// MaxProto is the newest wire protocol this package speaks.
const MaxProto = 2

// ErrGaveUp resolves a reliable-mode future whose request spent its retry
// budget without a verdict: the outcome is UNKNOWN (the server-side dedup
// window exists precisely to absorb a later retry of the same identity).
var ErrGaveUp = errors.New("client: request abandoned after retry budget")

// Config describes one connection.
type Config struct {
	Addr string                   // TCP target (ignored when Dial is set)
	Dial func() (net.Conn, error) // custom transport (in-memory pipes, fault injectors)

	Timeout time.Duration // dial/IO deadline per connection (0 = 30s)

	// Proto is the wire protocol to request via HELLO at connect: 2
	// negotiates transactions and snapshot reads; 0 or 1 sends NO HELLO at
	// all — the byte stream is exactly the legacy v1 client's.
	Proto int

	// Reliable switches every request to the exactly-once identity form.
	// CID must be a nonzero client ID, unique among concurrent clients.
	Reliable     bool
	CID          uint64
	MaxRetries   int           // resend attempts per op and per reconnect (0 = 8)
	RetryBackoff time.Duration // backoff base; doubles per attempt, capped (0 = 2ms)
	Seed         uint64        // backoff jitter seed (mixed with CID)

	// OnRetry/OnReconnect, when set, observe each resend / transport
	// reconnect as it happens (live progress reporting).
	OnRetry     func()
	OnReconnect func()
}

func (c *Config) normalize() error {
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Proto == 0 {
		c.Proto = 1
	}
	if c.Addr == "" && c.Dial == nil {
		return errors.New("client: no address and no dialer")
	}
	if c.Proto < 1 || c.Proto > MaxProto {
		return fmt.Errorf("client: protocol %d out of range [1, %d]", c.Proto, MaxProto)
	}
	if c.Reliable && c.CID == 0 {
		return errors.New("client: reliable mode needs a nonzero CID")
	}
	return nil
}

// Stats are the connection's transport tallies so far.
type Stats struct {
	Retries    int64 // resends of already-sent requests
	Reconnects int64 // transport reconnects
	GaveUp     int64 // futures resolved ErrGaveUp
}

// Future is one in-flight request. It resolves during some Wait call on
// its client; Done/Body/Err/RTT are meaningful only after resolution.
type Future struct {
	line     string // full wire line including newline (resend form)
	seq      uint64 // reliable-mode sequence (0 in plain mode)
	start    time.Time
	attempts int

	done bool
	body string // reply body, identity prefix stripped, trimmed
	err  error
	rtt  time.Duration
}

// Done reports whether the future has resolved.
func (f *Future) Done() bool { return f.done }

// RTT is the request→reply wall time (first send to resolution).
func (f *Future) RTT() time.Duration { return f.rtt }

// Client is one line-protocol connection. Not safe for concurrent use.
type Client struct {
	cfg    Config
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	ver    int // negotiated protocol (1 when no HELLO was sent)
	shards int // server shard count from HELLO (0 in v1)

	seq         uint64
	queue       []*Future          // plain mode: FIFO positional matching
	outstanding map[uint64]*Future // reliable mode: identity matching

	jit   *sim.RNG
	stats Stats
	fatal error
	clsd  bool
}

// Dial connects and (for Proto >= 2) negotiates the protocol version.
func Dial(cfg Config) (*Client, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg: cfg,
		ver: 1,
		jit: sim.NewRNG(mix64(cfg.Seed^cfg.CID*0xa24baed4963ee407) | 1),
	}
	if cfg.Reliable {
		c.outstanding = make(map[uint64]*Future)
	}
	if err := c.connect(true); err != nil {
		return nil, err
	}
	return c, nil
}

// Proto is the negotiated protocol version.
func (c *Client) Proto() int { return c.ver }

// Shards is the server's shard count (HELLO reply; 0 on a v1 connection).
// Transaction write sets must stay on one shard: keys agreeing mod Shards.
func (c *Client) Shards() int { return c.shards }

// Stats returns the transport tallies so far.
func (c *Client) Stats() Stats { return c.stats }

// Close tears the connection down. Unresolved futures stay unresolved.
func (c *Client) Close() error {
	c.clsd = true
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

// dial opens the raw transport.
func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial()
	}
	return net.DialTimeout("tcp", c.cfg.Addr, c.cfg.Timeout)
}

func (c *Client) backoff(attempt int) {
	d := c.cfg.RetryBackoff << uint(attempt)
	if cap := 64 * c.cfg.RetryBackoff; d > cap {
		d = cap
	}
	time.Sleep(d/2 + time.Duration(c.jit.Uint64()%uint64(d))) // [0.5d, 1.5d)
}

// connect (re)builds the transport: dial with backoff, reset the deadline,
// renegotiate the protocol, and — in reliable mode — resend every
// outstanding request lowest seq first (the server's per-client ordering
// contract wants old seqs before new ones). Plain mode cannot reconnect:
// positional matching does not survive a severed stream.
func (c *Client) connect(initial bool) error {
	if !initial {
		if !c.cfg.Reliable {
			return errors.New("client: connection lost (plain mode cannot reconnect)")
		}
		c.stats.Reconnects++
		if c.cfg.OnReconnect != nil {
			c.cfg.OnReconnect()
		}
	}
	for attempt := 0; ; attempt++ {
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		conn, err := c.dial()
		if err != nil {
			if attempt >= c.cfg.MaxRetries {
				return err
			}
			c.backoff(attempt)
			continue
		}
		c.conn = conn
		c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true) // pipelined small writes; avoid Nagle stalls
		}
		c.br, c.bw = bufio.NewReader(conn), bufio.NewWriter(conn)
		if err := c.negotiate(); err != nil {
			if attempt >= c.cfg.MaxRetries {
				return err
			}
			c.backoff(attempt)
			continue
		}
		if initial {
			return nil
		}
		if err := c.resendOutstanding(); err != nil {
			if attempt >= c.cfg.MaxRetries {
				return fmt.Errorf("client: resend after reconnect failed: %w", err)
			}
			c.backoff(attempt)
			continue
		}
		return nil
	}
}

// negotiate runs the HELLO exchange when the config asks for v2+. The
// exchange is synchronous — nothing else is in flight on a fresh
// connection — so the reply can be read inline.
func (c *Client) negotiate() error {
	if c.cfg.Proto < 2 {
		c.ver = 1
		return nil
	}
	if _, err := fmt.Fprintf(c.bw, "HELLO %d\n", c.cfg.Proto); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		return err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "HELLO" {
		return fmt.Errorf("client: bad HELLO reply %q", strings.TrimSpace(line))
	}
	ver, err1 := strconv.Atoi(fields[1])
	shards, err2 := strconv.Atoi(fields[2])
	if err1 != nil || err2 != nil || ver < 1 {
		return fmt.Errorf("client: bad HELLO reply %q", strings.TrimSpace(line))
	}
	c.ver, c.shards = ver, shards
	return nil
}

// resendOutstanding replays every unresolved identified request in seq
// order, charging one attempt each and abandoning the over-budget ones.
func (c *Client) resendOutstanding() error {
	seqs := make([]uint64, 0, len(c.outstanding))
	for s := range c.outstanding {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		f := c.outstanding[s]
		if c.giveUpOrBump(f) {
			continue
		}
		c.stats.Retries++
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry()
		}
		if _, err := c.bw.WriteString(f.line); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// giveUpOrBump charges one attempt against f, resolving it ErrGaveUp once
// the budget is spent. Reports true when the future was abandoned.
func (c *Client) giveUpOrBump(f *Future) bool {
	if f.attempts >= c.cfg.MaxRetries {
		c.resolve(f, "", ErrGaveUp)
		c.stats.GaveUp++
		return true
	}
	f.attempts++
	return false
}

func (c *Client) resolve(f *Future, body string, err error) {
	f.done, f.body, f.err = true, body, err
	f.rtt = time.Since(f.start)
	if f.seq != 0 {
		delete(c.outstanding, f.seq)
	}
}

// submit issues one request body (no identity, no newline) as a future.
func (c *Client) submit(body string) (*Future, error) {
	if c.fatal != nil {
		return nil, c.fatal
	}
	if c.clsd {
		return nil, errors.New("client: closed")
	}
	f := &Future{start: time.Now()}
	if c.cfg.Reliable {
		c.seq++
		f.seq = c.seq
		f.line = fmt.Sprintf("@%d.%d %s\n", c.cfg.CID, f.seq, body)
		c.outstanding[f.seq] = f
	} else {
		f.line = body + "\n"
		c.queue = append(c.queue, f)
	}
	if _, err := c.bw.WriteString(f.line); err != nil {
		if rerr := c.connect(false); rerr != nil {
			c.fail(rerr)
			return nil, rerr
		}
	}
	return f, nil
}

// fail poisons the client: every unresolved future resolves with err and
// further submissions refuse.
func (c *Client) fail(err error) {
	c.fatal = err
	for _, f := range c.queue {
		if !f.done {
			c.resolve(f, "", err)
		}
	}
	c.queue = nil
	for _, f := range c.outstanding {
		c.resolve(f, "", err)
	}
}

// Flush pushes buffered requests to the wire.
func (c *Client) Flush() error {
	if c.fatal != nil {
		return c.fatal
	}
	if err := c.bw.Flush(); err != nil {
		if rerr := c.connect(false); rerr != nil {
			c.fail(rerr)
			return rerr
		}
	}
	return nil
}

// Wait pumps the connection until f resolves, resolving any other futures
// whose replies arrive first along the way.
func (c *Client) Wait(f *Future) (string, error) {
	for !f.done {
		if err := c.pump(); err != nil {
			return "", err
		}
	}
	return f.body, f.err
}

// pump flushes pending writes, blocks for one reply line, then drains
// every complete reply already buffered — the server writes replies a
// batch at a time, so taking them one-per-read would forfeit pipelining.
func (c *Client) pump() error {
	if err := c.Flush(); err != nil {
		return err
	}
	raw, err := c.br.ReadString('\n')
	if err != nil {
		if rerr := c.connect(false); rerr != nil {
			c.fail(rerr)
			return rerr
		}
		return nil
	}
	if err := c.handleReply(raw); err != nil {
		return err
	}
	for {
		n := c.br.Buffered()
		if n == 0 {
			return nil
		}
		peek, _ := c.br.Peek(n)
		if bytes.IndexByte(peek, '\n') < 0 {
			return nil
		}
		raw, err := c.br.ReadString('\n')
		if err != nil {
			return nil // cannot happen with a whole buffered line; be safe
		}
		if err := c.handleReply(raw); err != nil {
			return err
		}
	}
}

// handleReply resolves one reply line against the in-flight futures.
func (c *Client) handleReply(raw string) error {
	line := strings.TrimSpace(raw)
	if !c.cfg.Reliable {
		if len(c.queue) == 0 {
			return nil // stray line on a plain connection
		}
		f := c.queue[0]
		c.queue = c.queue[1:]
		c.resolve(f, line, nil)
		return nil
	}
	if !strings.HasPrefix(line, "@") {
		return nil // unidentified line: not one of ours
	}
	idTok, body, ok := strings.Cut(line[1:], " ")
	if !ok {
		return nil
	}
	cidS, seqS, ok := strings.Cut(idTok, ".")
	if !ok {
		return nil
	}
	rcid, err1 := strconv.ParseUint(cidS, 10, 64)
	rseq, err2 := strconv.ParseUint(seqS, 10, 64)
	if err1 != nil || err2 != nil || rcid != c.cfg.CID {
		return nil
	}
	f, live := c.outstanding[rseq]
	if !live || f.done {
		return nil // duplicate delivery of an already-resolved reply
	}
	if body == "RETRY" {
		// Crash-restart severed the ack; resend the identical request after
		// a beat and let the server-side dedup sort it out.
		if c.giveUpOrBump(f) {
			return nil
		}
		c.stats.Retries++
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry()
		}
		time.Sleep(c.cfg.RetryBackoff)
		if _, err := c.bw.WriteString(f.line); err != nil {
			if rerr := c.connect(false); rerr != nil {
				c.fail(rerr)
				return rerr
			}
		}
		return nil
	}
	c.resolve(f, body, nil)
	return nil
}

// --- request surface ---

// Get issues a plain GET (newest committed value).
func (c *Client) Get(key uint64) (*Future, error) {
	return c.submit("GET " + strconv.FormatUint(key, 10))
}

// Set issues a SET.
func (c *Client) Set(key, val uint64) (*Future, error) {
	return c.submit("SET " + strconv.FormatUint(key, 10) + " " + strconv.FormatUint(val, 10))
}

// Del issues a DEL.
func (c *Client) Del(key uint64) (*Future, error) {
	return c.submit("DEL " + strconv.FormatUint(key, 10))
}

// Ping issues a PING.
func (c *Client) Ping() (*Future, error) { return c.submit("PING") }

// Reply classification helpers for raw future bodies.

// IsValue parses a "VALUE <v>" body.
func IsValue(body string) (uint64, bool) {
	rest, ok := strings.CutPrefix(body, "VALUE ")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(rest, 10, 64)
	return v, err == nil
}

// IsErr reports an "ERR ..." body.
func IsErr(body string) bool { return strings.HasPrefix(body, "ERR") }

// mix64 is the splitmix64 finalizer (jitter-seed scrambling).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
