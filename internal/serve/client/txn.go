package client

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Txn is one snapshot-isolation transaction: reads resolve against the
// BEGIN snapshot (with read-your-writes over the local write set), writes
// buffer locally, and Commit ships the whole write set in one COMMIT line
// for first-committer-wins validation and atomic epoch commit. The write
// set must stay on one shard: keys agreeing mod Client.Shards().
type Txn struct {
	c    *Client
	snap uint64

	keys []uint64
	vals []uint64
	dels []bool
	idx  map[uint64]int // key -> write-set position (read-your-writes)

	finished bool
}

// CommitResult is a COMMIT verdict.
type CommitResult struct {
	Committed bool
	// CTS is the commit timestamp. 0 on a committed transaction means the
	// verdict was absorbed from the server's high-water mark after the
	// reply window aged out: the commit happened, its timestamp did not
	// survive ("COMMITTED 0").
	CTS uint64
	// ConflictKey names the first conflicting key of an aborted commit.
	ConflictKey uint64
}

// ErrTxnFinished rejects operations on a committed/aborted transaction.
var ErrTxnFinished = errors.New("client: transaction already finished")

// ErrSnapshotLost marks a snapshot the server can no longer answer — the
// oracle floor passed it, typically because the shard crash-restarted or
// version GC trimmed past it. The transaction cannot make progress;
// re-run it from a fresh Begin.
var ErrSnapshotLost = errors.New("client: transaction snapshot lost")

// Begin opens a transaction: TXN -> BEGIN <snap>. Needs protocol v2.
func (c *Client) Begin() (*Txn, error) {
	if c.ver < 2 {
		return nil, fmt.Errorf("client: transactions need protocol v2 (negotiated v%d)", c.ver)
	}
	f, err := c.submit("TXN")
	if err != nil {
		return nil, err
	}
	body, err := c.Wait(f)
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(body, "BEGIN ")
	if !ok {
		return nil, fmt.Errorf("client: bad TXN reply %q", body)
	}
	snap, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("client: bad TXN reply %q", body)
	}
	return &Txn{c: c, snap: snap, idx: make(map[uint64]int)}, nil
}

// Snapshot is the transaction's read timestamp.
func (t *Txn) Snapshot() uint64 { return t.snap }

// Get reads key at the transaction's snapshot, seeing the transaction's
// own buffered writes first (read-your-writes).
func (t *Txn) Get(key uint64) (val uint64, found bool, err error) {
	if t.finished {
		return 0, false, ErrTxnFinished
	}
	if i, ok := t.idx[key]; ok {
		if t.dels[i] {
			return 0, false, nil
		}
		return t.vals[i], true, nil
	}
	f, err := t.c.submit("GET " + strconv.FormatUint(key, 10) + " @" + strconv.FormatUint(t.snap, 10))
	if err != nil {
		return 0, false, err
	}
	body, err := t.c.Wait(f)
	if err != nil {
		return 0, false, err
	}
	switch {
	case strings.HasPrefix(body, "VALUE "):
		v, ok := IsValue(body)
		if !ok {
			return 0, false, fmt.Errorf("client: bad snapshot read reply %q", body)
		}
		return v, true, nil
	case body == "NOTFOUND":
		return 0, false, nil
	case body == "ERR snapshot too old" || body == "ERR invalid snapshot":
		return 0, false, fmt.Errorf("%w: %s", ErrSnapshotLost, body)
	default:
		return 0, false, fmt.Errorf("client: snapshot read: %s", body)
	}
}

// Set buffers a write of key=val into the transaction's write set.
func (t *Txn) Set(key, val uint64) {
	t.write(key, val, false)
}

// Del buffers a delete of key into the transaction's write set.
func (t *Txn) Del(key uint64) {
	t.write(key, 0, true)
}

func (t *Txn) write(key, val uint64, del bool) {
	if i, ok := t.idx[key]; ok {
		t.vals[i], t.dels[i] = val, del
		return
	}
	t.idx[key] = len(t.keys)
	t.keys = append(t.keys, key)
	t.vals = append(t.vals, val)
	t.dels = append(t.dels, del)
}

// Commit ships the write set: COMMIT <snap> [S <k> <v>|D <k>]... A
// conflict verdict is NOT an error — check CommitResult.Committed.
func (t *Txn) Commit() (CommitResult, error) {
	if t.finished {
		return CommitResult{}, ErrTxnFinished
	}
	t.finished = true
	var sb strings.Builder
	sb.WriteString("COMMIT ")
	sb.WriteString(strconv.FormatUint(t.snap, 10))
	for i, k := range t.keys {
		if t.dels[i] {
			sb.WriteString(" D ")
			sb.WriteString(strconv.FormatUint(k, 10))
		} else {
			sb.WriteString(" S ")
			sb.WriteString(strconv.FormatUint(k, 10))
			sb.WriteString(" ")
			sb.WriteString(strconv.FormatUint(t.vals[i], 10))
		}
	}
	f, err := t.c.submit(sb.String())
	if err != nil {
		return CommitResult{}, err
	}
	body, err := t.c.Wait(f)
	if err != nil {
		return CommitResult{}, err
	}
	switch {
	case strings.HasPrefix(body, "COMMITTED "):
		cts, perr := strconv.ParseUint(body[len("COMMITTED "):], 10, 64)
		if perr != nil {
			return CommitResult{}, fmt.Errorf("client: bad COMMIT reply %q", body)
		}
		return CommitResult{Committed: true, CTS: cts}, nil
	case strings.HasPrefix(body, "ABORT "):
		key, perr := strconv.ParseUint(body[len("ABORT "):], 10, 64)
		if perr != nil {
			return CommitResult{}, fmt.Errorf("client: bad COMMIT reply %q", body)
		}
		return CommitResult{ConflictKey: key}, nil
	default:
		return CommitResult{}, fmt.Errorf("client: commit: %s", body)
	}
}

// Abort releases the transaction's snapshot without committing anything.
func (t *Txn) Abort() error {
	if t.finished {
		return ErrTxnFinished
	}
	t.finished = true
	f, err := t.c.submit("ABORT " + strconv.FormatUint(t.snap, 10))
	if err != nil {
		return err
	}
	body, err := t.c.Wait(f)
	if err != nil {
		return err
	}
	if body != "ABORTED" {
		return fmt.Errorf("client: abort: %s", body)
	}
	return nil
}
