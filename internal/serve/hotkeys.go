package serve

import "sync"

// hotKeyCache is the shard's eADR-domain read path: a space-saving top-K
// sketch detecting hot keys, plus a committed-slot value cache that serves
// hot GETs without a kernel trip. The cache is keyed by store slot and
// mirrors the COMMITTED state of that slot (the pair an acknowledged
// client was promised), so a lookup answers definitively for any key
// hashing there: matching key -> its value, different key -> the slot is
// occupied by someone else and the requested key is durably absent.
//
// Consistency is split between the two pipeline goroutines: the batcher
// consults the cache only for slots with no staged or in-flight mutation
// (the epoch conflict map gates it), and the applier refreshes or drops
// every cached slot its epoch mutated immediately after the epoch commits.
// A hit therefore always returns the latest arrival-order value.
type hotKeyCache struct {
	mu      sync.Mutex
	k       int   // sketch capacity (distinct tracked keys)
	minHits int64 // sketch count before a key's slot is cacheable

	counts map[uint64]int64   // space-saving counters, key -> hits
	slots  map[int]cachedSlot // slot -> committed pair
	byKey  map[uint64]int     // tracked key -> cached slot (eviction index)
}

// cachedSlot is one committed store slot: key 0 means durably empty.
type cachedSlot struct{ key, val uint64 }

func newHotKeyCache(k int) *hotKeyCache {
	return &hotKeyCache{
		k:       k,
		minHits: 2,
		counts:  make(map[uint64]int64, k),
		slots:   make(map[int]cachedSlot, k),
		byKey:   make(map[uint64]int, k),
	}
}

// Observe counts one access. When the sketch is full, the coldest tracked
// key is evicted and the newcomer inherits its count + 1 (the space-saving
// overestimate bound), dropping the evictee's cached slot with it.
func (h *hotKeyCache) Observe(key uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.counts[key]; ok {
		h.counts[key] = c + 1
		return
	}
	if len(h.counts) < h.k {
		h.counts[key] = 1
		return
	}
	var coldKey uint64
	coldC := int64(-1)
	for k2, c2 := range h.counts {
		if coldC < 0 || c2 < coldC {
			coldKey, coldC = k2, c2
		}
	}
	delete(h.counts, coldKey)
	if slot, ok := h.byKey[coldKey]; ok {
		delete(h.byKey, coldKey)
		delete(h.slots, slot)
	}
	h.counts[key] = coldC + 1
}

// Hot reports whether key is tracked with enough hits to be worth caching.
func (h *hotKeyCache) Hot(key uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[key] >= h.minHits
}

// Lookup serves a GET from the cached committed slot. ok=false means the
// slot is not cached (take the kernel path); otherwise val is the reply
// (0 = the key is durably absent).
func (h *hotKeyCache) Lookup(key uint64, slot int) (val uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.slots[slot]
	if !ok {
		return 0, false
	}
	if s.key != key {
		return 0, true // slot committed to a different key: this one is absent
	}
	return s.val, true
}

// CommitSlot installs or refreshes the committed pair of a slot, called by
// the applier after the epoch holding the mutation (or the hot GET that
// warranted caching) is durable. Slots whose occupant is no longer a
// tracked-hot key are dropped rather than refreshed.
func (h *hotKeyCache) CommitSlot(slot int, key, val uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old, cached := h.slots[slot]
	hot := key != 0 && h.counts[key] >= h.minHits
	if !cached && !hot {
		return
	}
	if cached && old.key != key {
		delete(h.byKey, old.key)
	}
	if !hot {
		// Occupant went cold (or the slot emptied): a stale entry is a
		// correctness bug, an absent one is only a missed hit.
		delete(h.slots, slot)
		return
	}
	h.slots[slot] = cachedSlot{key: key, val: val}
	h.byKey[key] = slot
}

// Reset drops every cached slot and sketch counter. Called after a
// crash-restart: a CrashBeforeReply cut commits mutations whose cache
// refresh never ran, so the cheap safe move is to start cold.
func (h *hotKeyCache) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts = make(map[uint64]int64, h.k)
	h.slots = make(map[int]cachedSlot, h.k)
	h.byKey = make(map[uint64]int, h.k)
}

// Len returns the number of cached slots (telemetry).
func (h *hotKeyCache) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.slots)
}
