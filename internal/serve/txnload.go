package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/gpm-sim/gpm/internal/serve/client"
	"github.com/gpm-sim/gpm/internal/sim"
)

// TxnLoadConfig configures the closed-loop transaction generator: Conns
// workers each run read-modify-write increment transactions of TxnSize
// keys (all on one shard, keys agreeing mod the server's shard count)
// until Txns transactions have resolved. A commit that loses conflict
// validation re-runs the whole transaction (fresh snapshot, same keys) up
// to MaxAttempts times; a commit whose outcome stays unknown after the
// transport retry budget is tallied per key as unresolved, never re-run.
type TxnLoadConfig struct {
	Addr string
	Dial func() (net.Conn, error)

	Conns   int
	Txns    int64 // total transactions across workers
	TxnSize int   // keys per transaction (>= 1)

	// Keys draw from [KeyBase, KeyBase+KeySpace): the first key comes from
	// the distribution, the rest step by the shard count to stay home. A
	// disjoint KeyBase keeps transaction keys from colliding with plain
	// traffic sharing the server.
	KeyBase  uint64
	KeySpace uint64
	Dist     string
	Theta    float64
	Seed     uint64

	Timeout      time.Duration
	Retry        bool // exactly-once identities on every request
	MaxRetries   int
	RetryBackoff time.Duration
	MaxAttempts  int // conflict re-runs per transaction (0 = 8)

	// CIDBase offsets the workers' client identities (worker ci uses
	// CIDBase+ci+1). Campaigns mixing transaction and plain retry clients
	// on one server give each class a disjoint CID range so their dedup
	// identities never collide.
	CIDBase uint64

	Progress   time.Duration
	OnProgress func(LoadProgress)
}

// Normalize fills defaults and validates.
func (c *TxnLoadConfig) Normalize() error {
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.TxnSize == 0 {
		c.TxnSize = 2
	}
	if c.KeyBase == 0 {
		c.KeyBase = 1
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1024
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.Dist == "" {
		c.Dist = DistUniform
	}
	if c.Dist == DistZipf && c.Theta == 0 {
		c.Theta = 0.99
	}
	if (c.Addr == "" && c.Dial == nil) || c.Conns < 1 || c.Txns < 1 || c.TxnSize < 1 {
		return fmt.Errorf("serve: invalid txn load config (addr=%q conns=%d txns=%d size=%d)",
			c.Addr, c.Conns, c.Txns, c.TxnSize)
	}
	if c.Dist != DistUniform && c.Dist != DistZipf {
		return fmt.Errorf("serve: unknown key distribution %q", c.Dist)
	}
	return nil
}

// TxnLoadResult summarizes one transaction load run. Latencies cover
// committed transactions only, BEGIN through COMMIT verdict, including
// conflict re-runs.
type TxnLoadResult struct {
	Txns            int64 `json:"txns"`              // committed transactions
	Aborts          int64 `json:"aborts"`            // commit attempts that lost validation
	ConflictRetries int64 `json:"conflict_retries"`  // re-runs after an abort
	AbortedForGood  int64 `json:"aborted_for_good"`  // transactions dropped after MaxAttempts conflicts
	GaveUp          int64 `json:"gave_up"`           // commits with UNKNOWN outcome (transport budget spent)
	SnapshotsLost   int64 `json:"snapshots_lost"`    // snapshots invalidated mid-txn (crash-restart); re-run
	ReadAnomalies   int64 `json:"read_anomalies"`    // repeatable-read violations observed in-txn
	Errors          int64 `json:"errors"`            // ERR verdicts and per-txn failures
	Retries         int64 `json:"retries"`           // transport resends
	Reconnects      int64 `json:"reconnects"`        // transport reconnects
	Shards          int   `json:"shards"`            // server shard count (HELLO)
	Failures        []string `json:"failures,omitempty"` // fatal per-worker errors

	// Committed[k] counts increments known committed on key k; Unresolved[k]
	// counts increments whose outcome is unknown. The snapshot-isolation
	// ledger invariant for an exclusively-owned key:
	//
	//	Committed[k] <= durable count <= Committed[k] + Unresolved[k]
	Committed  map[uint64]int64 `json:"-"`
	Unresolved map[uint64]int64 `json:"-"`

	Elapsed    time.Duration `json:"-"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Throughput float64       `json:"txns_per_sec"`
	P50        time.Duration `json:"-"`
	P95        time.Duration `json:"-"`
	P99        time.Duration `json:"-"`
	P50US      float64       `json:"p50_us"`
	P95US      float64       `json:"p95_us"`
	P99US      float64       `json:"p99_us"`
}

// txnWorker is one connection's tallies, merged after the run.
type txnWorker struct {
	lats       []time.Duration
	committed  map[uint64]int64
	unresolved map[uint64]int64
	res        TxnLoadResult // scalar counters only
	err        error
}

// RunTxnLoad drives read-modify-write increment transactions and reports
// the commit/abort/unresolved ledger. Like RunLoad, one worker failing
// does not void the run: its error lands in Failures and the first one is
// returned alongside the aggregated result.
func RunTxnLoad(cfg TxnLoadConfig) (*TxnLoadResult, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	workers := make([]txnWorker, cfg.Conns)
	per := cfg.Txns / int64(cfg.Conns)
	start := time.Now()
	var prog *loadTracker
	if cfg.Progress > 0 && cfg.OnProgress != nil {
		prog = &loadTracker{}
		progDone := make(chan struct{})
		defer close(progDone)
		go prog.reportLoop(LoadConfig{Ops: cfg.Txns, Progress: cfg.Progress, OnProgress: cfg.OnProgress}, start, progDone)
	}
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Conns; ci++ {
		txns := per
		if ci == 0 {
			txns += cfg.Txns % int64(cfg.Conns)
		}
		wg.Add(1)
		go func(ci int, txns int64) {
			defer wg.Done()
			w := &workers[ci]
			w.committed = make(map[uint64]int64)
			w.unresolved = make(map[uint64]int64)
			w.err = driveTxnConn(cfg, ci, txns, prog, w)
		}(ci, txns)
	}
	wg.Wait()

	out := &TxnLoadResult{
		Elapsed:    time.Since(start),
		Committed:  make(map[uint64]int64),
		Unresolved: make(map[uint64]int64),
	}
	var all []time.Duration
	var firstErr error
	for i := range workers {
		w := &workers[i]
		out.Txns += w.res.Txns
		out.Aborts += w.res.Aborts
		out.ConflictRetries += w.res.ConflictRetries
		out.AbortedForGood += w.res.AbortedForGood
		out.GaveUp += w.res.GaveUp
		out.SnapshotsLost += w.res.SnapshotsLost
		out.ReadAnomalies += w.res.ReadAnomalies
		out.Errors += w.res.Errors
		out.Retries += w.res.Retries
		out.Reconnects += w.res.Reconnects
		if w.res.Shards > out.Shards {
			out.Shards = w.res.Shards
		}
		for k, n := range w.committed {
			out.Committed[k] += n
		}
		for k, n := range w.unresolved {
			out.Unresolved[k] += n
		}
		if w.err != nil {
			out.Failures = append(out.Failures, fmt.Sprintf("conn %d: %v", i, w.err))
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: txn load conn %d: %w", i, w.err)
			}
		}
		all = append(all, w.lats...)
	}
	out.ElapsedMS = float64(out.Elapsed) / float64(time.Millisecond)
	if out.Elapsed > 0 {
		out.Throughput = float64(out.Txns) / out.Elapsed.Seconds()
	}
	out.P50 = percentile(all, 0.50)
	out.P95 = percentile(all, 0.95)
	out.P99 = percentile(all, 0.99)
	out.P50US = float64(out.P50) / float64(time.Microsecond)
	out.P95US = float64(out.P95) / float64(time.Microsecond)
	out.P99US = float64(out.P99) / float64(time.Microsecond)
	return out, firstErr
}

// driveTxnConn runs one worker's transactions. Each transaction reads its
// keys at the BEGIN snapshot, re-reads the first key as a repeatable-read
// probe, writes every key's incremented count, and commits.
func driveTxnConn(cfg TxnLoadConfig, ci int, txns int64, prog *loadTracker, w *txnWorker) error {
	cl, err := client.Dial(client.Config{
		Addr: cfg.Addr, Dial: cfg.Dial, Timeout: cfg.Timeout,
		Proto:    client.MaxProto,
		Reliable: cfg.Retry, CID: cfg.CIDBase + uint64(ci) + 1,
		MaxRetries: cfg.MaxRetries, RetryBackoff: cfg.RetryBackoff,
		Seed:    cfg.Seed,
		OnRetry: prog.addRetry, OnReconnect: prog.addReconnect,
	})
	if err != nil {
		return err
	}
	defer func() {
		cs := cl.Stats()
		w.res.Retries, w.res.Reconnects = cs.Retries, cs.Reconnects
		cl.Close()
	}()
	shards := cl.Shards()
	if shards < 1 {
		return fmt.Errorf("server negotiated v%d with %d shards — transactions need v2", cl.Proto(), shards)
	}
	w.res.Shards = shards
	span := cfg.KeySpace - cfg.KeySpace%uint64(shards) // keep residues under wraparound
	if span < uint64(cfg.TxnSize)*uint64(shards) {
		return fmt.Errorf("keyspace %d cannot hold %d same-shard keys across %d shards", cfg.KeySpace, cfg.TxnSize, shards)
	}
	rng := sim.NewRNG(cfg.Seed + uint64(ci)*0x9e3779b9 + 0x7f4a7c15)
	nextOff := func() uint64 { return rng.Uint64() % span }
	if cfg.Dist == DistZipf {
		z := newZipfGen(span, cfg.Theta)
		nextOff = func() uint64 { return z.next(rng) - 1 }
	}

	keys := make([]uint64, cfg.TxnSize)
	for done := int64(0); done < txns; done++ {
		off := nextOff()
		for i := range keys {
			keys[i] = cfg.KeyBase + (off+uint64(i)*uint64(shards))%span
		}
		if err := runOneTxn(cfg, cl, keys, prog, w); err != nil {
			return err
		}
	}
	return nil
}

// runOneTxn executes one RMW increment transaction over keys, re-running
// on conflict aborts. Every terminal outcome is tallied exactly once.
func runOneTxn(cfg TxnLoadConfig, cl *client.Client, keys []uint64, prog *loadTracker, w *txnWorker) error {
	start := time.Now()
attempts:
	for attempt := 0; ; attempt++ {
		txn, err := cl.Begin()
		if err != nil {
			if errors.Is(err, client.ErrGaveUp) {
				w.res.GaveUp++ // nothing written; no ledger impact
				return nil
			}
			return err
		}
		counts := make([]uint64, len(keys))
		for i, k := range keys {
			v, found, err := txn.Get(k)
			if err != nil {
				switch {
				case errors.Is(err, client.ErrGaveUp):
					w.res.GaveUp++
					return nil
				case errors.Is(err, client.ErrSnapshotLost):
					// A crash-restart raised the oracle floor past this
					// snapshot. Nothing was written; drop the dead snapshot
					// and re-run from a fresh BEGIN, on the same attempt
					// budget as conflicts so a restart storm stays bounded.
					w.res.SnapshotsLost++
					_ = txn.Abort() // best-effort: releases the GC pin
					if attempt+1 >= cfg.MaxAttempts {
						w.res.AbortedForGood++
						return nil
					}
					continue attempts
				default:
					w.res.Errors++
					prog.addErr()
					return fmt.Errorf("txn read key %d: %w", k, err)
				}
			}
			if !found {
				v = 0
			}
			counts[i] = v
		}
		// Repeatable read: the snapshot must answer the first key the same
		// way twice, no matter what commits in between.
		if v2, found2, err := txn.Get(keys[0]); err == nil {
			var v0 uint64
			if found2 {
				v0 = v2
			}
			if v0 != counts[0] {
				w.res.ReadAnomalies++
			}
		}
		for i, k := range keys {
			txn.Set(k, counts[i]+1)
		}
		res, err := txn.Commit()
		if err != nil {
			if errors.Is(err, client.ErrGaveUp) {
				// Outcome unknown: the write set may or may not have
				// committed. Every key absorbs one unresolved increment.
				w.res.GaveUp++
				for _, k := range keys {
					w.unresolved[k]++
				}
				return nil
			}
			w.res.Errors++
			prog.addErr()
			return fmt.Errorf("txn commit: %w", err)
		}
		if res.Committed {
			w.res.Txns++
			for _, k := range keys {
				w.committed[k]++
			}
			lat := time.Since(start)
			w.lats = append(w.lats, lat)
			prog.record(lat)
			return nil
		}
		w.res.Aborts++
		if attempt+1 >= cfg.MaxAttempts {
			w.res.AbortedForGood++
			return nil
		}
		w.res.ConflictRetries++
	}
}
