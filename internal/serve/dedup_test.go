package serve

import (
	"strings"
	"testing"
	"time"

	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// retryTrip resends req until the reply stops being RETRY (bounded), the
// way a protocol-compliant client rides out a crash-restart.
func retryTrip(t *testing.T, roundtrip func(string) string, req string) string {
	t.Helper()
	for i := 0; i < 20; i++ {
		got := roundtrip(req)
		if !strings.HasSuffix(got, " RETRY") {
			return got
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%q: still RETRY after 20 attempts", req)
	return ""
}

// assertExactlyOnce fails if any request ID was applied to the committed
// model more than once across the server's shards, or was acknowledged
// from a high-water mark without having been applied exactly once.
func assertExactlyOnce(t *testing.T, srv *Server) {
	t.Helper()
	for _, sh := range srv.Shards() {
		if v := sh.TallyViolations(); len(v) != 0 {
			t.Errorf("shard %d applied IDs more than once: %v", sh.ID(), v)
		}
		if err := sh.Verify(); err != nil {
			t.Errorf("shard %d: %v", sh.ID(), err)
		}
	}
	if v := srv.AckViolations(); len(v) != 0 {
		t.Errorf("acks derived from high-water marks without exactly one apply: %v", v)
	}
}

// Identified requests replay their original replies on retry: the resend
// never reaches the store a second time.
func TestDedupReplayAfterReply(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	cases := []struct{ req, want string }{
		{"@1.1 SET 5 100", "@1.1 OK"},
		{"@1.1 SET 5 100", "@1.1 OK"}, // retried mutation: replayed, not reapplied
		{"@1.2 GET 5", "@1.2 VALUE 100"},
		{"@1.2 GET 5", "@1.2 VALUE 100"}, // retried read: replayed
		{"@1.3 SET 5 200", "@1.3 OK"},
		{"@1.2 GET 5", "@1.2 VALUE 100"}, // replay survives a newer overwrite
		{"@1.4 GET 5", "@1.4 VALUE 200"},
		{"@2.1 SET 7 700", "@2.1 OK"}, // independent client, independent seqs
		{"@2.1 SET 7 700", "@2.1 OK"},
		{"GET 7", "VALUE 700"}, // unidentified ops interleave untouched
	}
	for _, tc := range cases {
		if got := rt(tc.req); got != tc.want {
			t.Errorf("%q -> %q, want %q", tc.req, got, tc.want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
	// Replays must not have reached the store: 6 unique store ops.
	if got := srv.Shards()[0].Ops(); got != 6 {
		t.Errorf("shard served %d ops, want 6 (replays must not re-apply)", got)
	}
}

// A committed ID presented with a different payload is a client bug and is
// rejected, not silently replayed or reapplied.
func TestDedupIDReuseRejected(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("@1.1 SET 5 100"); got != "@1.1 OK" {
		t.Fatalf("seed set -> %q", got)
	}
	got := rt("@1.1 SET 5 999")
	if !strings.HasPrefix(got, "@1.1 ERR") || !strings.Contains(got, "different payload") {
		t.Errorf("ID reuse -> %q, want @1.1 ERR ... different payload", got)
	}
	if got := rt("GET 5"); got != "VALUE 100" {
		t.Errorf("value after rejected reuse = %q, want VALUE 100", got)
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
}

// Eviction from the bounded reply window degrades gracefully: a retried
// mutation below the client's committed high-water mark still acknowledges
// without re-applying, and a retried read re-executes.
func TestDedupWindowEviction(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 4, Workers: 1,
		DedupWindow: 2,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	if got := rt("@1.1 SET 5 100"); got != "@1.1 OK" {
		t.Fatalf("seed set -> %q", got)
	}
	if got := rt("@1.2 GET 5"); got != "@1.2 VALUE 100" {
		t.Fatalf("seed get -> %q", got)
	}
	// Push both entries out of the 2-slot window.
	for i, req := range []string{"@1.3 SET 6 600", "@1.4 SET 7 700", "@1.5 SET 8 800"} {
		if got := rt(req); !strings.HasSuffix(got, " OK") {
			t.Fatalf("filler %d -> %q", i, got)
		}
	}
	// Evicted mutation: hwm says committed, ack replays without re-apply.
	if got := rt("@1.1 SET 5 100"); got != "@1.1 OK" {
		t.Errorf("evicted mutation retry -> %q, want @1.1 OK", got)
	}
	// Evicted read: re-executes against current state (still 100 here).
	if got := rt("@1.2 GET 5"); got != "@1.2 VALUE 100" {
		t.Errorf("evicted read retry -> %q, want @1.2 VALUE 100", got)
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
	if got := srv.Shards()[0].Ops(); got != 6 {
		t.Errorf("shard served %d ops, want 6 (evicted retries must not re-apply)", got)
	}
}

// Exactly-once spans a crash-restart: a mutation cut down at
// CrashBeforeReply committed durably but its ack was lost; the retry must
// be acknowledged from the PM-recovered high-water mark, not re-applied. A
// mutation cut down before its kernel rolled back; its retry must apply.
func TestDedupSpansRestart(t *testing.T) {
	for _, tc := range []struct {
		point CrashPoint
	}{
		{CrashBeforeReply},  // committed once; retry replays the ack
		{CrashBeforeKernel}, // rolled back; retry applies fresh
	} {
		t.Run(tc.point.String(), func(t *testing.T) {
			tel := telemetry.New()
			srv, addr := startServer(t, Config{
				Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
				Telemetry: tel,
			})
			br, c := dial(t, addr)
			defer c.Close()
			rt := func(req string) string { return roundTrip(t, c, br, req) }

			if got := rt("@1.1 SET 3 30"); got != "@1.1 OK" {
				t.Fatalf("seed set -> %q", got)
			}
			// Arm: the next mutation-bearing batch power-fails at the point
			// under test (ApplyIndex counts applies after arming).
			srv.Shards()[0].SetCrashPlan(&ShardCrashPlan{ApplyIndex: 1, Point: tc.point})

			if got := rt("@1.2 SET 5 100"); got != "@1.2 RETRY" {
				t.Fatalf("crashed set -> %q, want @1.2 RETRY", got)
			}
			if got := retryTrip(t, rt, "@1.2 SET 5 100"); got != "@1.2 OK" {
				t.Errorf("retry after restart -> %q, want @1.2 OK", got)
			}
			if got := retryTrip(t, rt, "@1.3 GET 5"); got != "@1.3 VALUE 100" {
				t.Errorf("value after restart -> %q, want @1.3 VALUE 100", got)
			}
			if got := retryTrip(t, rt, "@1.4 GET 3"); got != "@1.4 VALUE 30" {
				t.Errorf("pre-crash value -> %q, want @1.4 VALUE 30", got)
			}
			c.Close()
			srv.Shutdown(5 * time.Second)
			assertExactlyOnce(t, srv)
			if !srv.Shards()[0].PlanFired() {
				t.Fatal("crash plan never fired")
			}
			if got := srv.Status()[0].Restarts; got != 1 {
				t.Errorf("restarts = %d, want 1", got)
			}
			if n := srv.Shards()[0].tally[ReqID{CID: 1, Seq: 2}]; n != 1 {
				t.Errorf("crashed/retried mutation applied %d times, want exactly 1", n)
			}
		})
	}
}

// A rolled-back crash must not let later pipelined seqs of the same client
// commit over the hole it tore: if they did, the client's high-water mark
// would advance past the rolled-back mutation and its retry would be
// absorb-acked without ever re-applying — an acknowledged lost update.
// The pipeline flushes staged epochs on rollback and holds re-admission of
// seqs above the hole, so every RETRYed op re-applies exactly once.
func TestDedupRollbackNoGapOverHole(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	sh := srv.Shards()[0]
	// The first mutation-bearing epoch power-fails before its kernel: its
	// transaction rolls back entirely.
	sh.SetCrashPlan(&ShardCrashPlan{ApplyIndex: 1, Point: CrashBeforeKernel})

	// Pipeline three identified ops in one write. @1.2 hits the same key as
	// @1.1, so conflict chaining forces it (and, via the client floor, @1.3)
	// into a LATER epoch than @1.1 — exactly the staged-behind-the-crash
	// shape that used to commit over the hole.
	if _, err := c.Write([]byte("@1.1 SET 10 1\n@1.2 SET 10 2\n@1.3 SET 20 5\n")); err != nil {
		t.Fatalf("pipelined write: %v", err)
	}
	for _, want := range []string{"@1.1 RETRY", "@1.2 RETRY", "@1.3 RETRY"} {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reply: %v", err)
		}
		if got := strings.TrimSpace(line); got != want {
			t.Fatalf("pipelined reply = %q, want %q (no staged op may commit over a rolled-back hole)", got, want)
		}
	}

	// Protocol-compliant resend in seq order: every op must re-apply.
	for _, tc := range []struct{ req, want string }{
		{"@1.1 SET 10 1", "@1.1 OK"},
		{"@1.2 SET 10 2", "@1.2 OK"},
		{"@1.3 SET 20 5", "@1.3 OK"},
		{"@1.4 GET 10", "@1.4 VALUE 2"},
		{"@1.5 GET 20", "@1.5 VALUE 5"},
	} {
		if got := retryTrip(t, rt, tc.req); got != tc.want {
			t.Errorf("%q -> %q, want %q", tc.req, got, tc.want)
		}
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	assertExactlyOnce(t, srv)
	if !sh.PlanFired() {
		t.Fatal("crash plan never fired")
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if n := sh.tally[ReqID{CID: 1, Seq: seq}]; n != 1 {
			t.Errorf("@1.%d applied %d times, want exactly 1 (rolled-back mutations must re-apply)", seq, n)
		}
	}
}

// Negative control: with dedup persistence disabled the high-water marks
// die with the crash, the retried lost-ack mutation re-applies, and the
// duplicate-apply tally catches it. This is the proof the detector detects.
func TestDedupNegativeControlCaught(t *testing.T) {
	srv, addr := startServer(t, Config{
		Mode: workloads.GPM, Shards: 1, Sets: 64, MaxBatch: 8, Workers: 1,
	})
	br, c := dial(t, addr)
	defer c.Close()
	rt := func(req string) string { return roundTrip(t, c, br, req) }

	sh := srv.Shards()[0]
	sh.DisableDedupPersist()
	sh.SetCrashPlan(&ShardCrashPlan{ApplyIndex: 1, Point: CrashBeforeReply})

	if got := rt("@1.1 SET 5 100"); got != "@1.1 RETRY" {
		t.Fatalf("crashed set -> %q, want @1.1 RETRY", got)
	}
	if got := retryTrip(t, rt, "@1.1 SET 5 100"); got != "@1.1 OK" {
		t.Fatalf("retry -> %q, want @1.1 OK", got)
	}
	c.Close()
	srv.Shutdown(5 * time.Second)
	v := sh.TallyViolations()
	if len(v) != 1 || v[0] != (ReqID{CID: 1, Seq: 1}) {
		t.Fatalf("violations = %v, want exactly [@1.1]", v)
	}
}
