package serve

// dedupState is the batcher-owned exactly-once admission filter for one
// shard. Three layers, checked in order:
//
//	pending — IDs admitted to a staged/in-flight epoch but not yet
//	  committed: a duplicate (retry or network-duplicated line) attaches
//	  as an extra reply waiter instead of re-admitting.
//	window  — a bounded ring of recently committed IDs with their exact
//	  reply line and a request fingerprint: a retry replays the original
//	  reply; a different payload under a committed ID is rejected.
//	hwm     — per-client committed high-water marks (resynced from the
//	  shard's PM dedup table after a crash-restart): a mutation retried
//	  after its window entry was evicted — or after a restart wiped the
//	  window — is acknowledged WITHOUT re-applying (mutation acks are
//	  deterministic), and a GET simply re-executes.
//
// The hwm shortcut is sound because admission keeps each client's requests
// in epoch order on a shard (see shardWorker.admit), so a client's marks
// advance contiguously: seq <= hwm really means "this request committed",
// never "a later one overtook it".
//
// A rolled-back crash is the one event that can puncture that contiguity:
// the crashed epoch's mutations vanish while later seqs of the same client
// may already be staged behind it. Those are flushed (see
// shardWorker.flushStaged) and the rolled-back seqs recorded as HOLES —
// per-client seqs that must re-commit before any later seq of that client
// is admitted. A request above an open hole is answered RETRY instead of
// admitted, so the high-water mark can never advance over a lost mutation
// and absorb its retry into a silent lost update.
//
// All state is volatile and owned by the batcher goroutine; durability
// comes from the shard's PM table + journal, which commit and roll back
// with the batch transaction itself. Holes survive resync untouched: they
// describe what the PM marks legitimately do not cover.
type dedupState struct {
	cap     int
	hwm     map[uint64]uint64  // cid -> highest committed seq on this shard
	pending map[ReqID]*request // admitted, outcome unknown
	window  map[ReqID]windowEntry
	ring    []ReqID // insertion ring; evicts FIFO once full
	head    int
	evicted int64 // window entries dropped (telemetry)

	// holes are rolled-back-but-retriable seqs per client: admission
	// barriers until their retry re-commits.
	holes map[uint64]map[uint64]bool

	// absorbed logs every mutation ack derived from the high-water mark
	// alone (no window entry) — the acks whose "already committed" claim
	// rests on the contiguity argument. Server.AckViolations cross-checks
	// them against the applied-ID tally after shutdown.
	absorbed []ReqID

	// aborted is the decided-ABORT ledger: transaction COMMITs that lost
	// conflict validation, keyed by request ID. Unlike the window it is
	// never evicted and survives resync — an aborted COMMIT's seq never
	// advances the high-water mark, so without this ledger an aged-out
	// retry would fall through to the hwm-absorb path and be acknowledged
	// OK for a commit that never happened.
	aborted map[ReqID]windowEntry
}

// windowEntry is one committed request: its payload fingerprint and the
// exact reply line it was acknowledged with.
type windowEntry struct {
	fpr   uint64
	reply string
}

func newDedupState(windowCap int) *dedupState {
	return &dedupState{
		cap:     windowCap,
		hwm:     make(map[uint64]uint64),
		pending: make(map[ReqID]*request),
		window:  make(map[ReqID]windowEntry, windowCap),
		ring:    make([]ReqID, 0, windowCap),
	}
}

// dedup admission verdicts.
const (
	dedupAdmit  = iota // fresh ID: admit to an epoch (caller registers pending)
	dedupAttach        // duplicate of an in-flight ID: attached as reply waiter
	dedupReplay        // committed ID: reply carries the replayed/derived line
	dedupReject        // committed ID with a different payload: reply is the error
	dedupHold          // seq above an open hole: answered RETRY, not admitted
)

// check classifies one identified request. For dedupReplay/dedupReject the
// returned line is the reply to send; for dedupAttach the request was
// queued on the original's waiter list.
func (d *dedupState) check(r *request) (verdict int, reply string) {
	if p, ok := d.pending[r.rid]; ok {
		if p.fpr != r.fpr {
			// Same ID, different payload: attaching would ack THIS payload
			// with the pending one's verdict — a silent lost update. The
			// window and abort ledgers reject this reuse; in-flight IDs
			// must too.
			return dedupReject, r.line("ERR request id " + r.rid.String() + " already used with a different payload")
		}
		p.dups = append(p.dups, r.done)
		return dedupAttach, ""
	}
	if e, ok := d.window[r.rid]; ok {
		if e.fpr == r.fpr {
			return dedupReplay, e.reply
		}
		return dedupReject, r.line("ERR request id " + r.rid.String() + " already used with a different payload")
	}
	if e, ok := d.aborted[r.rid]; ok {
		if e.fpr == r.fpr {
			return dedupReplay, e.reply
		}
		return dedupReject, r.line("ERR request id " + r.rid.String() + " already used with a different payload")
	}
	if hs := d.holes[r.rid.CID]; hs != nil {
		if hs[r.rid.Seq] {
			// The retry of a hole. It must NEVER be hwm-absorbed (the hole
			// says it did not commit), and it may only re-admit once every
			// lower hole of the client is back in flight — otherwise it
			// could commit ahead of a lower seq and invert the client's
			// write order. Pending lower holes are fine: the client floor
			// chains this request into an epoch at or after theirs.
			for seq := range hs {
				if seq < r.rid.Seq {
					if _, ok := d.pending[ReqID{CID: r.rid.CID, Seq: seq}]; !ok {
						return dedupHold, r.line("RETRY")
					}
				}
			}
			return dedupAdmit, ""
		}
		if r.op != 'G' {
			for seq := range hs {
				if seq < r.rid.Seq {
					// A lower mutation of this client was rolled back and has
					// not re-committed. Committing this one first would invert
					// the client's write order, and advancing the high-water
					// mark over the hole would absorb its retry into a silent
					// lost update. Deferring makes THIS seq a hole too — the
					// client will retry it, and later seqs must now also wait.
					d.addHole(r.rid)
					return dedupHold, r.line("RETRY")
				}
			}
		}
		// GETs pass the holes freely: a read re-executes on retry anyway,
		// so it can neither lose a write nor invert write order.
	}
	if r.rid.Seq <= d.hwm[r.rid.CID] {
		if r.op != 'G' {
			// Committed mutation whose window entry is gone (evicted, or the
			// window died with a crash): mutation acks are deterministic, so
			// acknowledge without re-applying. A transaction COMMIT's ack is
			// deterministic only up to its commit timestamp, which the
			// window entry carried — the absorbed form elides it ("COMMITTED
			// 0": the commit happened, its timestamp aged out). Aborted
			// COMMITs can never reach here: they advance no high-water mark
			// and their ledger entry was checked above.
			d.absorbed = append(d.absorbed, r.rid)
			if r.op == 'C' {
				return dedupReplay, r.line("COMMITTED 0")
			}
			return dedupReplay, r.line("OK")
		}
		// A committed GET re-executes: reads are idempotent.
	}
	return dedupAdmit, ""
}

// addHole records a rolled-back seq as an admission barrier for its client.
func (d *dedupState) addHole(rid ReqID) {
	if d.holes == nil {
		d.holes = make(map[uint64]map[uint64]bool)
	}
	hs := d.holes[rid.CID]
	if hs == nil {
		hs = make(map[uint64]bool)
		d.holes[rid.CID] = hs
	}
	hs[rid.Seq] = true
}

// register records an ID admitted to an epoch.
func (d *dedupState) register(r *request) { d.pending[r.rid] = r }

// remember windows a committed request that never rode an epoch (cache-hit
// and MVCC instant GETs): retries replay the same reply.
func (d *dedupState) remember(rid ReqID, fpr uint64, reply string) {
	d.insert(rid, windowEntry{fpr: fpr, reply: reply})
}

// rememberAbort records a COMMIT's conflict-abort verdict in the permanent
// ledger (and the window, for the fast path). Retries replay the ABORT.
// An abort is a DECIDED outcome, so it also closes any hole the rid left
// from a rolled-back crash: the client's later seqs need not wait for a
// commit that will never happen (its retries hit the ledger first, so the
// advancing high-water mark can never absorb it as committed).
func (d *dedupState) rememberAbort(rid ReqID, fpr uint64, reply string) {
	if d.aborted == nil {
		d.aborted = make(map[ReqID]windowEntry)
	}
	d.aborted[rid] = windowEntry{fpr: fpr, reply: reply}
	d.insert(rid, windowEntry{fpr: fpr, reply: reply})
	if hs := d.holes[rid.CID]; hs[rid.Seq] {
		delete(hs, rid.Seq)
		if len(hs) == 0 {
			delete(d.holes, rid.CID)
		}
	}
}

// commit retires a committed rider: window its reply, advance its client's
// high-water mark, release duplicate waiters with the same reply.
func (d *dedupState) commit(r *request, reply string) {
	delete(d.pending, r.rid)
	if hs := d.holes[r.rid.CID]; hs[r.rid.Seq] {
		delete(hs, r.rid.Seq)
		if len(hs) == 0 {
			delete(d.holes, r.rid.CID)
		}
	}
	d.insert(r.rid, windowEntry{fpr: r.fpr, reply: reply})
	if r.rid.Seq > d.hwm[r.rid.CID] {
		d.hwm[r.rid.CID] = r.rid.Seq
	}
	for _, c := range r.dups {
		c <- reply
	}
	r.dups = nil
}

// abort retires a rider whose epoch failed or was rolled back by a crash:
// the ID leaves pending with NO window entry (a retry must re-admit), and
// duplicate waiters get the same terminal line the rider got.
func (d *dedupState) abort(r *request, reply string) {
	delete(d.pending, r.rid)
	for _, c := range r.dups {
		c <- reply
	}
	r.dups = nil
}

// insert adds a window entry, evicting FIFO at capacity.
func (d *dedupState) insert(rid ReqID, e windowEntry) {
	if d.cap < 1 {
		return
	}
	if _, ok := d.window[rid]; ok {
		d.window[rid] = e
		return
	}
	if len(d.ring) < d.cap {
		d.ring = append(d.ring, rid)
	} else {
		delete(d.window, d.ring[d.head])
		d.ring[d.head] = rid
		d.evicted++
	}
	d.head = (d.head + 1) % d.cap
	d.window[rid] = e
}

// resync rebuilds the committed view after a crash-restart: the window and
// marks are replaced by the shard's PM-backed snapshot (proving the marks
// really survived through persistent memory), while pending entries —
// riders of epochs still staged — are kept.
func (d *dedupState) resync(snap map[uint64]uint64) {
	d.window = make(map[ReqID]windowEntry, d.cap)
	d.ring = d.ring[:0]
	d.head = 0
	d.hwm = make(map[uint64]uint64, len(snap))
	for cid, seq := range snap {
		d.hwm[cid] = seq
	}
}
