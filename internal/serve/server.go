package serve

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpm-sim/gpm/internal/obs"
	"github.com/gpm-sim/gpm/internal/telemetry"
	"github.com/gpm-sim/gpm/internal/workloads"
)

// Config configures one serving node.
type Config struct {
	Mode        workloads.Mode
	Shards      int           // keyspace partitions (key mod Shards)
	Sets        int           // hash sets per shard
	MaxBatch    int           // ops per batch before forced dispatch
	BatchWait   time.Duration // cap on how long a starved pipeline holds a partial epoch
	FixedWait   bool          // true: always hold BatchWait from first admission (legacy fixed policy)
	QueueDepth  int           // per-shard admission queue (requests)
	HotKeys     int           // hot-key sketch capacity per shard (0 = 128)
	DedupWindow int           // committed request IDs remembered per shard (0 = 4096)
	Workers     int           // GPU block goroutines per shard (0 = GOMAXPROCS)
	CAPThreads  int
	Seed        uint64
	Telemetry   *telemetry.Telemetry // optional; nil disables metrics

	// Trace, when set, samples per-request pipeline traces (admission ID
	// head sampling plus a slow-latency threshold); nil disables. Audit,
	// when set, receives the recovery audit trail (drain/crash/restart/
	// verify events) from the server and its shards; nil disables.
	Trace *obs.RequestTracer
	Audit *obs.AuditLog

	// BreakSI is the chaos negative control: transaction COMMITs skip the
	// commit-window conflict check, so concurrent read-modify-write
	// transactions lose updates — which the campaign's snapshot-isolation
	// invariant must catch.
	BreakSI bool

	// NoSquash disables epoch write-squashing and restores the PR-8
	// chained-epoch admission (every same-slot mutation seals into a later
	// epoch). Kept as the measured baseline for the conflict-fill probe.
	NoSquash bool
}

// Normalize fills zero fields with serving defaults and validates the rest.
func (c *Config) Normalize() error {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Sets == 0 {
		c.Sets = 1 << 10
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.BatchWait == 0 {
		c.BatchWait = 500 * time.Microsecond
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 1024
	}
	if c.HotKeys == 0 {
		c.HotKeys = 128
	}
	if c.DedupWindow == 0 {
		c.DedupWindow = 4096
	}
	if c.CAPThreads == 0 {
		c.CAPThreads = 16
	}
	if c.Shards < 1 || c.Sets < 1 || c.MaxBatch < 1 || c.QueueDepth < 1 || c.BatchWait < 0 || c.HotKeys < 1 || c.DedupWindow < 1 {
		return fmt.Errorf("serve: invalid config (shards=%d sets=%d batch=%d queue=%d wait=%s hotkeys=%d window=%d)",
			c.Shards, c.Sets, c.MaxBatch, c.QueueDepth, c.BatchWait, c.HotKeys, c.DedupWindow)
	}
	if !ModeSupported(c.Mode) {
		return fmt.Errorf("serve: mode %s cannot serve", c.Mode)
	}
	return nil
}

// request is one parsed client operation in flight.
type request struct {
	op       byte // 'S', 'G', 'D', 'C' (transaction COMMIT)
	key      uint64
	val      uint64
	id       uint64        // admission ID (server-wide, monotone; trace sampling key)
	rid      ReqID         // client-assigned ID (zero for legacy unidentified ops)
	fpr      uint64        // payload fingerprint (op, key, val) for ID-reuse detection
	enq      time.Time     // client-enqueue instant (read off the wire)
	admitted time.Time     // batcher admission instant (zero until admitted)
	done     chan string   // receives exactly one reply line
	dups     []chan string // duplicate arrivals of rid awaiting this request's outcome

	// txn carries a transaction COMMIT's write set (op 'C' only).
	txn *txnOp
	// pre is the precomputed reply of a GET that rides an epoch only for
	// durability ordering: its value was resolved at admission from the
	// staged slot image (getPos -2), not from a kernel read.
	pre string
}

// line prefixes a reply body with the request's ID, echoing what the
// client sent ("@7.42 OK") so retried requests match replies by identity
// rather than by stream position.
func (r *request) line(body string) string { return idLine(r.rid, body) }

func idLine(rid ReqID, body string) string {
	if rid.Zero() {
		return body
	}
	return rid.String() + " " + body
}

// fingerprint condenses a request payload for ID-reuse detection: a
// committed ID presented again with a different (op, key, val) is a client
// bug and is rejected rather than silently replayed.
func fingerprint(op byte, key, val uint64) uint64 {
	return mix64(uint64(op)*0x9e3779b97f4a7c15 ^ mix64(key) ^ mix64(val+0xd1b54a32d192ed03))
}

// opName spells a request op byte for traces and logs.
func opName(op byte) string {
	switch op {
	case 'S':
		return "SET"
	case 'G':
		return "GET"
	case 'D':
		return "DEL"
	case 'C':
		return "COMMIT"
	default:
		return string(op)
	}
}

// Server accepts TCP connections speaking a line protocol —
//
//	SET <key> <value>  ->  OK
//	GET <key>          ->  VALUE <value> | NOTFOUND
//	DEL <key>          ->  OK
//	PING               ->  PONG
//
// (keys and values are decimal uint64, >= 1) — and dispatches requests to
// per-shard pipeline workers. Replies are written in request order per
// connection, each only after the persist epoch containing its mutation is
// durable (reads with no pending write may be served from the hot-key
// cache, whose contents are committed state by construction).
//
// Any request may carry a client-assigned identity prefix,
//
//	@<cid>.<seq> SET <key> <value>  ->  @<cid>.<seq> OK
//
// (cid and seq decimal uint64 >= 1; the reply echoes the prefix). An
// identified request is exactly-once: retrying it — after a dropped
// connection, an injected duplicate, or a server crash-restart — replays
// the original reply instead of re-applying the mutation. A reply of
// "RETRY" means a crash interrupted the request before its acknowledgement
// and the client should resend it verbatim. Each client must issue its
// seqs in increasing order per connection (retries resend old seqs first);
// the dedup window spans restarts because per-client high-water marks
// commit with the batch transaction in persistent memory.
type Server struct {
	cfg     Config
	workers []*shardWorker
	reg     *telemetry.Registry
	started time.Time

	// oracle is the server-wide monotonic timestamp authority for MVCC
	// snapshot isolation; snaps tracks live snapshots so the version-chain
	// GC never trims under an open transaction.
	oracle *tsOracle
	snaps  *snapRegistry

	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	connWG   sync.WaitGroup
	draining atomic.Bool
	nextID   atomic.Uint64 // admission IDs for request tracing

	cRejected *telemetry.Counter
}

// NewServer builds the shards and their pipeline workers (not yet listening).
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		conns:  make(map[net.Conn]struct{}),
		oracle: newOracle(0),
		snaps:  newSnapRegistry(),

		started: time.Now(),
	}
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = cfg.Telemetry.Registry()
	}
	s.reg = reg
	s.cRejected = reg.Counter("serve.rejected")
	for i := 0; i < cfg.Shards; i++ {
		sh, err := NewShard(i, ShardConfig{
			Mode:       cfg.Mode,
			Sets:       cfg.Sets,
			MaxBatch:   cfg.MaxBatch,
			Workers:    cfg.Workers,
			CAPThreads: cfg.CAPThreads,
			Seed:       cfg.Seed + uint64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if cfg.Telemetry != nil {
			sh.Env().Ctx.AttachTelemetry(cfg.Telemetry, fmt.Sprintf("serve/shard%d", i))
		}
		sh.SetAudit(cfg.Audit)
		w := newShardWorker(sh, cfg, reg)
		w.oracle = s.oracle
		w.snaps = s.snaps
		s.workers = append(s.workers, w)
		go w.run()
	}
	return s, nil
}

// Shards exposes the shard stores (for post-drain verification and crash
// testing). Only safe to use after Shutdown has returned.
func (s *Server) Shards() []*Shard {
	out := make([]*Shard, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.shard
	}
	return out
}

// AckViolations cross-checks every mutation ack the dedup filter derived
// from a high-water mark alone (no window entry — the "seq <= hwm means
// committed" shortcut) against the shard's applied-ID tally, and returns
// the IDs that were acknowledged without having been applied exactly once.
// Each such ID is an acknowledged lost update (or a duplicate apply the
// tally also reports): the contiguity argument behind the shortcut failed.
// Only safe to use after Shutdown has returned.
func (s *Server) AckViolations() []ReqID {
	var out []ReqID
	for _, w := range s.workers {
		for _, rid := range w.dedup.absorbed {
			if w.shard.tally[rid] != 1 {
				out = append(out, rid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CID != out[j].CID {
			return out[i].CID < out[j].CID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Draining reports whether Shutdown has begun (health endpoints use this
// to fail readiness before the listener disappears).
func (s *Server) Draining() bool { return s.draining.Load() }

// Uptime is the wall time since the server was built.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }

// Registry exposes the server's metrics registry (nil when telemetry is
// disabled); the admin plane scrapes it.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// ShardStatus is one shard's row in the /statusz document, read from the
// shard's published metrics (safe from any goroutine while serving).
type ShardStatus struct {
	ID             int   `json:"id"`
	Ops            int64 `json:"ops"`
	Batches        int64 `json:"batches"`
	QueueDepth     int64 `json:"queue_depth"`
	StagedEpochs   int64 `json:"staged_epochs"`
	TargetFill     int64 `json:"target_fill"`
	LastEpochFill  int64 `json:"last_epoch_fill"`
	ConflictChains int64 `json:"conflict_chains"`
	HotSlots       int64 `json:"hot_slots"`
	CacheHits      int64 `json:"cache_hits"`
	CacheFills     int64 `json:"cache_fills"`
	Errors         int64 `json:"errors"`
	DedupHits      int64 `json:"dedup_hits"`
	DedupReuse     int64 `json:"dedup_reuse"`
	Restarts       int64 `json:"restarts"`
	Squashes       int64 `json:"squashes"`
	TxnCommits     int64 `json:"txn_commits"`
	TxnAborts      int64 `json:"txn_aborts"`
	TxnRetries     int64 `json:"txn_conflict_retries"`
}

// Status reports per-shard pipeline state for /statusz. Values come from
// the telemetry counters/gauges the pipeline already publishes, so reading
// them races nothing; with telemetry disabled every row is zeros.
func (s *Server) Status() []ShardStatus {
	out := make([]ShardStatus, len(s.workers))
	for i, w := range s.workers {
		out[i] = ShardStatus{
			ID:             w.shard.ID(),
			Ops:            w.cOps.Value(),
			Batches:        w.cBatches.Value(),
			QueueDepth:     w.gQueue.Value(),
			StagedEpochs:   w.gStaged.Value(),
			TargetFill:     w.gTarget.Value(),
			LastEpochFill:  w.gOccupancy.Value(),
			ConflictChains: w.cChains.Value(),
			HotSlots:       w.gHotSlots.Value(),
			CacheHits:      w.cCacheHits.Value(),
			CacheFills:     w.cCacheFills.Value(),
			Errors:         w.cErrors.Value(),
			DedupHits:      w.cDedupHits.Value(),
			DedupReuse:     w.cDedupReuse.Value(),
			Restarts:       w.cRestarts.Value(),
			Squashes:       w.cSquashes.Value(),
			TxnCommits:     w.cTxnCommits.Value(),
			TxnAborts:      w.cTxnAborts.Value(),
			TxnRetries:     w.cTxnRetries.Value(),
		}
	}
	return out
}

// Listen binds addr ("host:port"; port 0 picks a free one) and returns the
// bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return ln.Addr(), nil
}

// ServeOn accepts connections from a caller-provided listener instead of
// a bound TCP socket — chaos campaigns drive the server over in-memory
// pipes and fault-injecting listener wrappers this way. Blocks like Serve;
// Shutdown closes the listener.
func (s *Server) ServeOn(ln net.Listener) error {
	s.ln = ln
	return s.Serve()
}

// Serve accepts connections until the listener closes (via Shutdown).
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("serve: Serve before Listen")
	}
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil // closed by Shutdown
			}
			return err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true) // replies are small lines; Nagle+delayed-ACK adds ~40ms
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, tell every worker to flush
// its pending epochs without holding for more arrivals, service everything
// already accepted, and stop. Connections still open after timeout are
// force-closed. Safe to call once.
func (s *Server) Shutdown(timeout time.Duration) {
	s.draining.Store(true)
	s.cfg.Audit.Record(obs.AuditEvent{
		Type: obs.AuditDrain, Shard: -1, Mode: s.cfg.Mode.String(),
		Detail: fmt.Sprintf("graceful drain, timeout %s", timeout),
	})
	if s.ln != nil {
		s.ln.Close()
	}
	// Release pending epochs immediately: replies must not wait out the
	// admission hold once the server is going down.
	for _, w := range s.workers {
		close(w.drainCh)
	}
	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// All connection readers are gone; no more sends into worker queues.
	for _, w := range s.workers {
		close(w.reqs)
	}
	for _, w := range s.workers {
		<-w.done
	}
}

// shardFor routes a key to its partition.
func (s *Server) shardFor(key uint64) *shardWorker {
	return s.workers[key%uint64(len(s.workers))]
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	// Replies go out in request order: the reader enqueues one future per
	// request; the writer resolves them FIFO, so pipelining across epochs
	// and cache hits cannot reorder a connection's replies.
	futures := make(chan chan string, 2*s.cfg.QueueDepth)
	var wWG sync.WaitGroup
	wWG.Add(1)
	go func() {
		defer wWG.Done()
		bw := bufio.NewWriter(c)
		for f := range futures {
			line := <-f
			bw.WriteString(line)
			bw.WriteByte('\n')
			// Flush when no more replies are immediately ready.
			if len(futures) == 0 {
				bw.Flush()
			}
		}
		bw.Flush()
	}()

	instant := func(line string) {
		f := make(chan string, 1)
		f <- line
		futures <- f
	}
	// Per-connection protocol state: negotiated version (1 until a HELLO
	// upgrades it) and the snapshots this connection holds open.
	st := &connState{ver: 1}
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 4096), 1<<16)
	// Only newline-terminated lines are requests. A connection that dies
	// mid-write (crash, reset) leaves a torn final line, and a torn prefix
	// can parse as a VALID shorter request — e.g. a multi-key COMMIT cut
	// after its first write — which would then execute under the full
	// request's ID and absorb the client's retry into a lost update. Drop
	// the unterminated tail instead: the client never saw an ack, so its
	// retry re-sends the whole line on a fresh connection.
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			return i + 1, bytes.TrimSuffix(data[:i], []byte{'\r'}), nil
		}
		if atEOF {
			return 0, nil, bufio.ErrFinalToken // torn tail: discard, stop
		}
		return 0, nil, nil
	})
	for sc.Scan() {
		line := sc.Text()
		// HELLO is the version-negotiation escape hatch: legal on any
		// connection (v1 clients simply never send it), answered before the
		// draining gate like PING.
		if rid, ver, ok := parseHello(line); ok {
			if ver < 1 {
				instant(idLine(rid, "ERR protocol version must be >= 1"))
				continue
			}
			if ver > maxProtoVersion {
				ver = maxProtoVersion
			}
			st.ver = ver
			instant(idLine(rid, fmt.Sprintf("HELLO %d %d", ver, len(s.workers))))
			continue
		}
		if st.ver >= 2 {
			s.serveV2(line, st, instant, futures)
			continue
		}
		op, key, val, rid, err := parseRequest(line)
		if err != nil {
			instant(idLine(rid, "ERR "+err.Error()))
			continue
		}
		if op == 'P' {
			instant(idLine(rid, "PONG"))
			continue
		}
		if s.draining.Load() {
			instant(idLine(rid, "ERR server draining"))
			s.cRejected.Inc()
			continue
		}
		r := &request{op: op, key: key, val: val, id: s.nextID.Add(1), rid: rid, enq: time.Now(), done: make(chan string, 1)}
		if !rid.Zero() {
			r.fpr = fingerprint(op, key, val)
		}
		s.shardFor(key).reqs <- r
		futures <- r.done
	}
	close(futures)
	wWG.Wait()
	st.releaseAll(s.snaps)
}

// parseRequest parses one protocol line. op 'P' means PING. An optional
// leading "@<cid>.<seq>" token assigns the request a client identity.
func parseRequest(line string) (op byte, key, val uint64, rid ReqID, err error) {
	fields := strings.Fields(line)
	if len(fields) > 0 && strings.HasPrefix(fields[0], "@") {
		cidS, seqS, ok := strings.Cut(fields[0][1:], ".")
		if !ok {
			return 0, 0, 0, rid, fmt.Errorf("request id must be @<cid>.<seq>")
		}
		rid.CID, err = strconv.ParseUint(cidS, 10, 64)
		if err == nil {
			rid.Seq, err = strconv.ParseUint(seqS, 10, 64)
		}
		if err != nil || rid.CID == 0 || rid.Seq == 0 {
			return 0, 0, 0, ReqID{}, fmt.Errorf("request id parts must be decimal integers >= 1")
		}
		fields = fields[1:]
	}
	if len(fields) == 0 {
		return 0, 0, 0, rid, fmt.Errorf("empty request")
	}
	verb := strings.ToUpper(fields[0])
	argc := map[string]int{"SET": 2, "GET": 1, "DEL": 1, "PING": 0}
	n, ok := argc[verb]
	if !ok {
		return 0, 0, 0, rid, fmt.Errorf("unknown verb %q", fields[0])
	}
	if len(fields)-1 != n {
		return 0, 0, 0, rid, fmt.Errorf("%s takes %d argument(s)", verb, n)
	}
	if verb == "PING" {
		return 'P', 0, 0, rid, nil
	}
	key, err = strconv.ParseUint(fields[1], 10, 64)
	if err != nil || key == 0 {
		return 0, 0, 0, rid, fmt.Errorf("key must be a decimal integer >= 1")
	}
	if verb == "SET" {
		val, err = strconv.ParseUint(fields[2], 10, 64)
		if err != nil || val == 0 {
			return 0, 0, 0, rid, fmt.Errorf("value must be a decimal integer >= 1")
		}
	}
	return verb[0], key, val, rid, nil
}

// slotStage is the staged final image of one store slot inside one epoch:
// write-squashing folds every same-slot logical mutation over it, and the
// seal synthesizes at most one kernel op per slot from base vs final image.
type slotStage struct {
	baseKey, baseVal uint64 // slot occupant when the epoch first touched it
	key, val         uint64 // staged final occupant (key 0 = empty)
	firstKey         uint64 // first logical key staged here (no-op DEL synthesis)
}

// epochBatch is one persist epoch moving through the shard pipeline: a
// staged batch, the requests riding it, and the per-epoch slot images that
// let every same-slot logical mutation squash into ONE kernel op instead of
// sealing the epoch and chaining into the next.
type epochBatch struct {
	seq     uint64
	batch   Batch
	pending []*request          // ops riding this epoch, arrival order
	getPos  []int               // per pending op: batch.GetKeys index; -1 mutation; -2 precomputed read
	slots   map[int]*slotStage  // staged slot images (this epoch's writes)
	read    map[int]bool        // slots this epoch batch-reads
	clients map[uint64]bool     // cids whose epoch-order floor this epoch holds

	// Filled by the applier, consumed by the batcher's onCommit:
	replies []string          // reply line per pending op (dedup windowing)
	ok      bool              // epoch committed (false: error or rolled back)
	resync  map[uint64]uint64 // non-nil after a crash-restart: PM hwm snapshot
	// Valid only when resync != nil: whether the crashed epoch's transaction
	// was durable before the power cut (CrashBeforeReply) or rolled back. A
	// rolled-back crash flushes the staged pipeline and opens dedup holes.
	committed bool

	firstAdmit time.Time     // admission of the epoch's oldest op
	sealedAt   time.Time     // dispatch instant (epoch lag measures from here)
	applyWall  time.Duration // wall cost of Apply, fed back to the controller
}

// fillBuckets bounds the serve.shard*.batch_fill histograms (ops/epoch).
var fillBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// shardWorker owns one Shard and runs its two pipeline stages:
//
//	batcher (run): admits requests into a queue of staged epochs — batch
//	  N+1 forms while batch N is on the device, so admission never blocks
//	  on kernel or persist time. Slot conflicts chain mutations into
//	  consecutive epochs via per-epoch conflict maps; an adaptive
//	  controller decides how long a starved pipeline holds a partial
//	  epoch. Hot GETs with no pending mutation are answered straight from
//	  the committed-slot cache, no kernel trip.
//	applier (applyLoop): executes one epoch at a time on the shard
//	  (stage -> kernel -> persist) and group-commits every reply in the
//	  epoch the moment it is durable.
//
// All admission maps are owned by the batcher goroutine; the applier
// touches only the shard, the reply futures, and the (locked) hot cache.
type shardWorker struct {
	shard *Shard
	cfg   Config

	// oracle/snaps are shared server-wide MVCC state (see Server); the
	// batcher allocates a commit timestamp per logical mutation and the
	// commit path releases them so the stable snapshot floor advances.
	oracle *tsOracle
	snaps  *snapRegistry

	reqs    chan *request
	drainCh chan struct{} // closed by Shutdown: flush eagerly from now on
	done    chan struct{}

	dispatchCh  chan *epochBatch // batcher -> applier, buffered 1 (double buffer)
	commitCh    chan *epochBatch // applier -> batcher, buffered 1
	applierDone chan struct{}

	ctrl  *batchController
	cache *hotKeyCache

	// batcher-owned pipeline state
	staged     []*epochBatch     // staged[0] is next to dispatch
	nextSeq    uint64            // seq the next appended epoch gets
	inflight   *epochBatch       // epoch on the device, nil when idle
	lastMut    map[int]uint64    // slot -> seq of latest pending epoch mutating it
	lastRead   map[int]uint64    // slot -> seq of latest pending epoch batch-reading it
	lastCli    map[uint64]uint64 // cid -> seq of latest pending epoch carrying its ops
	dedup      *dedupState       // exactly-once admission filter
	stagedOps  int               // ops across staged epochs (admission backpressure)
	drained    bool
	reqsClosed bool

	gQueue      *telemetry.Gauge
	gOccupancy  *telemetry.Gauge
	gHotSlots   *telemetry.Gauge
	gStaged     *telemetry.Gauge
	gTarget     *telemetry.Gauge
	hReqUS      *telemetry.Histogram
	hBatchSim   *telemetry.Histogram
	hFill       *telemetry.Histogram
	hQueueWait  *telemetry.Histogram
	hEpochLag   *telemetry.Histogram
	cBatches    *telemetry.Counter
	cOps        *telemetry.Counter
	cChains     *telemetry.Counter
	cCacheHits  *telemetry.Counter
	cCacheFills *telemetry.Counter
	cErrors     *telemetry.Counter
	cDedupHits  *telemetry.Counter
	cDedupReuse *telemetry.Counter
	cDedupHolds *telemetry.Counter
	cRestarts   *telemetry.Counter
	cFlushed    *telemetry.Counter
	cSquashes   *telemetry.Counter
	cTxnCommits *telemetry.Counter
	cTxnAborts  *telemetry.Counter
	cTxnRetries *telemetry.Counter

	commits uint64 // epochs retired since start (MVCC GC cadence)
}

func newShardWorker(sh *Shard, cfg Config, reg *telemetry.Registry) *shardWorker {
	p := fmt.Sprintf("serve.shard%d.", sh.ID())
	return &shardWorker{
		shard:       sh,
		cfg:         cfg,
		reqs:        make(chan *request, cfg.QueueDepth),
		drainCh:     make(chan struct{}),
		done:        make(chan struct{}),
		dispatchCh:  make(chan *epochBatch, 1),
		commitCh:    make(chan *epochBatch, 1),
		applierDone: make(chan struct{}),
		ctrl:        newBatchController(!cfg.FixedWait, cfg.MaxBatch, cfg.BatchWait),
		cache:       newHotKeyCache(cfg.HotKeys),
		lastMut:     make(map[int]uint64),
		lastRead:    make(map[int]uint64),
		lastCli:     make(map[uint64]uint64),
		dedup:       newDedupState(cfg.DedupWindow),
		gQueue:      reg.Gauge(p + "queue_depth"),
		gOccupancy:  reg.Gauge(p + "batch_occupancy"),
		gHotSlots:   reg.Gauge(p + "hot_slots"),
		gStaged:     reg.Gauge(p + "staged_epochs"),
		gTarget:     reg.Gauge(p + "target_fill"),
		hReqUS:      reg.Histogram("serve.request_us", telemetry.LatencyBucketsUS),
		hBatchSim:   reg.Histogram("serve.batch_sim_us", telemetry.LatencyBucketsUS),
		hFill:       reg.Histogram(p+"batch_fill", fillBuckets),
		hQueueWait:  reg.Histogram("serve.queue_wait_us", telemetry.LatencyBucketsUS),
		hEpochLag:   reg.Histogram("serve.epoch_lag_us", telemetry.LatencyBucketsUS),
		cBatches:    reg.Counter(p + "batches"),
		cOps:        reg.Counter(p + "ops"),
		cChains:     reg.Counter(p + "conflict_chains"),
		cCacheHits:  reg.Counter(p + "cache_hits"),
		cCacheFills: reg.Counter(p + "cache_fills"),
		cErrors:     reg.Counter(p + "errors"),
		cDedupHits:  reg.Counter(p + "dedup_hits"),
		cDedupReuse: reg.Counter(p + "dedup_reuse"),
		cDedupHolds: reg.Counter(p + "dedup_holds"),
		cRestarts:   reg.Counter(p + "restarts"),
		cFlushed:    reg.Counter(p + "flushed_riders"),
		cSquashes:   reg.Counter(p + "squashes"),
		cTxnCommits: reg.Counter(p + "txn_commits"),
		cTxnAborts:  reg.Counter(p + "txn_aborts"),
		cTxnRetries: reg.Counter(p + "txn_conflict_retries"),
	}
}

// headSeq is the sequence of the next epoch to dispatch (or to create,
// when nothing is staged).
func (w *shardWorker) headSeq() uint64 {
	return w.nextSeq - uint64(len(w.staged))
}

// appendEpoch grows the staged queue by one empty epoch.
func (w *shardWorker) appendEpoch() *epochBatch {
	eb := &epochBatch{
		seq:     w.nextSeq,
		slots:   make(map[int]*slotStage),
		read:    make(map[int]bool),
		clients: make(map[uint64]bool),
	}
	w.nextSeq++
	w.staged = append(w.staged, eb)
	return eb
}

// epochAt resolves a pipeline seq to its epoch: a staged one, or the one on
// the device. Returns nil for already-retired seqs.
func (w *shardWorker) epochAt(seq uint64) *epochBatch {
	if w.inflight != nil && w.inflight.seq == seq {
		return w.inflight
	}
	if i := int(seq - w.headSeq()); i >= 0 && i < len(w.staged) {
		return w.staged[i]
	}
	return nil
}

// fitsCID reports whether an identified request can ride an epoch without
// overflowing the dedup journal (one advance per distinct client).
func (w *shardWorker) fitsCID(e *epochBatch, rid ReqID) bool {
	if rid.Zero() || e.clients[rid.CID] {
		return true
	}
	return len(e.clients) < mutCap(w.cfg.MaxBatch)
}

// stageSlot returns (creating if needed) the epoch's staged image of slot,
// basing a fresh stage on the latest pending image of the slot — an earlier
// staged/in-flight epoch's stage if one exists, else the committed occupant.
func (w *shardWorker) stageSlot(eb *epochBatch, slot int, firstKey uint64) *slotStage {
	if st := eb.slots[slot]; st != nil {
		return st
	}
	var bk, bv uint64
	if m, ok := w.lastMut[slot]; ok && m < eb.seq {
		if prev := w.epochAt(m); prev != nil {
			if pst := prev.slots[slot]; pst != nil {
				bk, bv = pst.key, pst.val
			}
		}
	} else {
		bk, bv = w.shard.MVCCSlotImage(slot)
	}
	st := &slotStage{baseKey: bk, baseVal: bv, key: bk, val: bv, firstKey: firstKey}
	eb.slots[slot] = st
	return st
}

// stageWrite folds one logical mutation into an epoch: the slot image
// advances, and the batch's version row (key, value, delete, commit ts,
// request ID) records the mutation for the MVCC chains and the apply tally.
func (w *shardWorker) stageWrite(eb *epochBatch, slot int, key, val uint64, del bool, ts uint64, rid ReqID) {
	st := w.stageSlot(eb, slot, key)
	if del {
		if st.key == key {
			st.key, st.val = 0, 0
		}
	} else {
		st.key, st.val = key, val
	}
	eb.batch.VerKeys = append(eb.batch.VerKeys, key)
	eb.batch.VerVals = append(eb.batch.VerVals, val)
	eb.batch.VerDel = append(eb.batch.VerDel, del)
	eb.batch.VerTS = append(eb.batch.VerTS, ts)
	eb.batch.VerIDs = append(eb.batch.VerIDs, rid)
	if m, ok := w.lastMut[slot]; !ok || m < eb.seq {
		w.lastMut[slot] = eb.seq
	}
}

// stagedValue resolves a GET against the latest pending image of its slot
// (the caller established one exists): found=false means the slot's staged
// final state does not hold the key.
func (w *shardWorker) stagedValue(key uint64, slot int) (val uint64, found bool) {
	eb := w.epochAt(w.lastMut[slot])
	if eb == nil {
		return 0, false
	}
	st := eb.slots[slot]
	if st == nil || st.key != key {
		return 0, false
	}
	return st.val, true
}

// epochFrom returns the first staged epoch with seq >= floor satisfying
// fits, appending fresh epochs as needed. floor must be >= headSeq.
func (w *shardWorker) epochFrom(floor uint64, fits func(*epochBatch) bool) *epochBatch {
	for i := int(floor - w.headSeq()); ; i++ {
		for i >= len(w.staged) {
			w.appendEpoch()
		}
		if fits(w.staged[i]) {
			return w.staged[i]
		}
	}
}

// admit places one request into the pipeline: cache-served, or assigned to
// an epoch under the write-squashing rules —
//
//	SET then GET  same slot: the GET's value is resolved at admission from
//	              the staged slot image and the reply rides the mutating
//	              epoch (or later) for durability ordering only;
//	GET then SET  same slot: the SET goes to an epoch AFTER the staged
//	              kernel GET (the batched read must not observe it);
//	SET then SET  same slot: the second SQUASHES into the same epoch — the
//	              slot image folds, each logical mutation keeps its own
//	              MVCC commit timestamp, and the kernel runs one op.
//
// Hot-key write conflicts therefore share one kernel epoch instead of
// chaining into consecutive pipeline stages; the per-epoch slot-conflict
// seal survives only as the transaction commit-window check (admitTxn).
func (w *shardWorker) admit(r *request) {
	now := time.Now()
	r.admitted = now
	w.hQueueWait.Observe(int64(now.Sub(r.enq) / time.Microsecond))
	w.ctrl.observeArrival(now)

	// Exactly-once gate: a request ID already in flight, windowed, or below
	// its client's committed high-water mark never reaches an epoch again.
	if !r.rid.Zero() {
		switch verdict, line := w.dedup.check(r); verdict {
		case dedupAttach:
			w.cDedupHits.Inc()
			if r.op == 'C' {
				w.cTxnRetries.Inc()
			}
			return
		case dedupReplay:
			w.cDedupHits.Inc()
			if r.op == 'C' {
				w.cTxnRetries.Inc()
			}
			r.done <- line
			return
		case dedupReject:
			w.cDedupReuse.Inc()
			r.done <- line
			return
		case dedupHold:
			w.cDedupHolds.Inc()
			if r.op == 'C' {
				w.cTxnRetries.Inc()
			}
			r.done <- line
			return
		}
	}

	head := w.headSeq()
	// cliFloor keeps one client's requests committing in seq order on a
	// shard — the property that makes "seq <= high-water mark" equivalent
	// to "committed" even when conflict ordering would otherwise let a
	// later, unconflicted request overtake an earlier one.
	cliFloor := head
	if !r.rid.Zero() {
		if c, ok := w.lastCli[r.rid.CID]; ok && c > cliFloor {
			cliFloor = c
		}
	}

	if r.op == 'C' {
		w.admitTxn(r, now, cliFloor)
		return
	}

	slot := w.shard.SlotOf(r.key)
	if r.op == 'G' {
		w.cache.Observe(r.key)
		m, mutPending := w.lastMut[slot]
		if !mutPending {
			if val, ok := w.cache.Lookup(r.key, slot); ok {
				// Committed state with no pending write: durable by
				// construction, reply without a kernel trip.
				var line string
				if val != 0 {
					line = r.line("VALUE " + strconv.FormatUint(val, 10))
				} else {
					line = r.line("NOTFOUND")
				}
				r.done <- line
				if !r.rid.Zero() {
					// Window the reply (retries replay it) but never register
					// pending or touch PM: cache hits ride no epoch.
					w.dedup.remember(r.rid, r.fpr, line)
				}
				w.cCacheHits.Inc()
				w.hReqUS.Observe(int64(now.Sub(r.enq) / time.Microsecond))
				if tr := w.cfg.Trace; tr != nil {
					total := now.Sub(r.enq)
					if reason, ok := tr.ShouldCapture(r.id, total); ok {
						off := float64(total) / 1e3
						tr.Add(obs.ReqTrace{
							ID: r.id, Shard: w.shard.ID(), Op: opName(r.op), Key: r.key,
							Reason: reason, Start: r.enq, TotalUS: off,
							Stages: []obs.StagePoint{
								{Stage: "admit", OffsetUS: off},
								{Stage: "cache-reply", OffsetUS: off},
							},
						})
					}
				}
				return
			}
		} else if !w.cfg.NoSquash {
			// Staged-image read: the slot has a pending mutation, so the
			// GET's value is already decided by arrival order. Resolve it
			// NOW from the staged image, and ride the mutating epoch (or the
			// client's floor) so the reply still waits for durability. No
			// read mark is set — later same-slot writes keep squashing.
			var line string
			if val, ok := w.stagedValue(r.key, slot); ok {
				line = r.line("VALUE " + strconv.FormatUint(val, 10))
			} else {
				line = r.line("NOTFOUND")
			}
			r.pre = line
			floor := cliFloor
			if m > floor {
				floor = m
			}
			eb := w.epochFrom(floor, func(e *epochBatch) bool {
				return w.fitsCID(e, r.rid)
			})
			eb.getPos = append(eb.getPos, -2)
			w.finishAdmit(eb, r, now)
			return
		}
		// Batched kernel read: cache miss with no staged mutation (or the
		// NoSquash compat path, where the GET rides the mutating epoch and
		// reads the post-mutation mirror).
		floor := cliFloor
		if mutPending && m > floor {
			floor = m
		}
		eb := w.epochFrom(floor, func(e *epochBatch) bool {
			return len(e.batch.GetKeys) < w.cfg.MaxBatch && w.fitsCID(e, r.rid)
		})
		eb.getPos = append(eb.getPos, len(eb.batch.GetKeys))
		eb.batch.GetKeys = append(eb.batch.GetKeys, r.key)
		eb.read[slot] = true
		if g, ok := w.lastRead[slot]; !ok || eb.seq > g {
			w.lastRead[slot] = eb.seq
		}
		w.finishAdmit(eb, r, now)
		return
	}

	// 'S', 'D': try to squash into the slot's latest staged epoch; fall
	// back to chaining past it (capacity, client-order floor, or the epoch
	// already being on the device) or past a staged kernel read.
	floor := cliFloor
	conflict := false
	if m, ok := w.lastMut[slot]; ok {
		if !w.cfg.NoSquash && m >= head && m >= cliFloor {
			if eb := w.epochAt(m); eb != nil && eb.slots[slot] != nil &&
				len(eb.batch.VerKeys) < mutCap(w.cfg.MaxBatch) && w.fitsCID(eb, r.rid) {
				val := r.val
				if r.op == 'D' {
					val = 0
				}
				w.stageWrite(eb, slot, r.key, val, r.op == 'D', w.oracle.alloc(1), r.rid)
				eb.getPos = append(eb.getPos, -1)
				w.cSquashes.Inc()
				w.finishAdmit(eb, r, now)
				return
			}
		}
		if m+1 > floor {
			floor, conflict = m+1, true
		}
	}
	if g, ok := w.lastRead[slot]; ok && g+1 > floor {
		floor, conflict = g+1, true
	}
	eb := w.epochFrom(floor, func(e *epochBatch) bool {
		return len(e.slots) < w.cfg.MaxBatch &&
			len(e.batch.VerKeys) < mutCap(w.cfg.MaxBatch) && w.fitsCID(e, r.rid)
	})
	if conflict {
		w.cChains.Inc()
	}
	val := r.val
	if r.op == 'D' {
		val = 0
	}
	w.stageWrite(eb, slot, r.key, val, r.op == 'D', w.oracle.alloc(1), r.rid)
	eb.getPos = append(eb.getPos, -1)
	w.finishAdmit(eb, r, now)
}

// admitTxn validates and stages a transaction COMMIT (op 'C'). Conflict
// detection is first-committer-wins at store-slot granularity: a write key
// whose slot has a staged or in-flight uncommitted mutation loses to the
// pending writer, and one whose newest committed version is above the
// transaction's snapshot lost to an already-committed writer. A valid
// commit stages ALL its writes into ONE epoch at a single commit timestamp
// — the transaction is atomic because the epoch's group-commit is.
func (w *shardWorker) admitTxn(r *request, now time.Time, cliFloor uint64) {
	t := r.txn
	if !w.cfg.BreakSI {
		for _, k := range t.keys {
			slot := w.shard.SlotOf(k)
			_, staged := w.lastMut[slot]
			if staged || w.shard.MVCCLatestTS(k) > t.snap {
				line := r.line("ABORT " + strconv.FormatUint(k, 10))
				w.cTxnAborts.Inc()
				if !r.rid.Zero() {
					// The verdict is decided: record it in the permanent
					// abort ledger so retries replay ABORT instead of
					// re-validating (or worse, being hwm-absorbed as
					// committed).
					w.dedup.rememberAbort(r.rid, r.fpr, line)
				}
				r.done <- line
				w.hReqUS.Observe(int64(now.Sub(r.enq) / time.Microsecond))
				return
			}
		}
	}
	slotSet := make(map[int]bool, len(t.keys))
	floor := cliFloor
	for _, k := range t.keys {
		slot := w.shard.SlotOf(k)
		slotSet[slot] = true
		if g, ok := w.lastRead[slot]; ok && g+1 > floor {
			floor = g + 1
		}
	}
	eb := w.epochFrom(floor, func(e *epochBatch) bool {
		fresh := 0
		for slot := range slotSet {
			if e.slots[slot] == nil {
				fresh++
			}
		}
		return len(e.slots)+fresh <= w.cfg.MaxBatch &&
			len(e.batch.VerKeys)+len(t.keys) <= mutCap(w.cfg.MaxBatch) &&
			w.fitsCID(e, r.rid)
	})
	t.cts = w.oracle.alloc(1)
	for i, k := range t.keys {
		rid := ReqID{}
		if i == 0 {
			rid = r.rid // one apply-tally entry per commit unit
		}
		val := t.vals[i]
		if t.dels[i] {
			val = 0
		}
		w.stageWrite(eb, w.shard.SlotOf(k), k, val, t.dels[i], t.cts, rid)
	}
	eb.getPos = append(eb.getPos, -1)
	w.finishAdmit(eb, r, now)
}

// finishAdmit is the common admission tail: dedup registration, client
// epoch-order floor, and the epoch's pending list.
func (w *shardWorker) finishAdmit(eb *epochBatch, r *request, now time.Time) {
	if !r.rid.Zero() {
		w.dedup.register(r)
		w.lastCli[r.rid.CID] = eb.seq
		eb.clients[r.rid.CID] = true
	}
	if len(eb.pending) == 0 {
		eb.firstAdmit = now
	}
	eb.pending = append(eb.pending, r)
	w.stagedOps++
}

// dispatch seals the head epoch and hands it to the applier. Only called
// when the applier is idle, so the buffered send cannot block.
func (w *shardWorker) dispatch() {
	eb := w.staged[0]
	w.staged = w.staged[1:]
	w.stagedOps -= len(eb.pending)
	eb.batch.LogicalOps = len(eb.pending)
	w.sealKernel(eb)
	w.sealAdvances(eb)
	eb.sealedAt = time.Now()
	w.inflight = eb
	w.hFill.Observe(int64(len(eb.pending)))
	w.dispatchCh <- eb
}

// sealKernel synthesizes the epoch's kernel mutation ops from its staged
// slot images: at most one op per touched slot, no matter how many logical
// mutations squashed onto it. A slot whose final image equals its base
// still gets a no-op kernel op (an idempotent rewrite, or a DEL of a key
// known absent) so a mutation-bearing epoch always runs the full persist
// path — its dedup advances, version rows, and oracle reservation must
// commit inside a transaction window. SetIDs/DelIDs stay nil: the apply
// tally runs off the version rows for squashed epochs.
func (w *shardWorker) sealKernel(eb *epochBatch) {
	if len(eb.batch.VerKeys) == 0 {
		return
	}
	slots := make([]int, 0, len(eb.slots))
	for slot := range eb.slots {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	b := &eb.batch
	for _, slot := range slots {
		st := eb.slots[slot]
		switch {
		case st.key == st.baseKey && st.val == st.baseVal:
			if st.baseKey != 0 {
				b.SetKeys = append(b.SetKeys, st.baseKey)
				b.SetVals = append(b.SetVals, st.baseVal)
			} else {
				b.DelKeys = append(b.DelKeys, st.firstKey)
			}
		case st.key != 0:
			b.SetKeys = append(b.SetKeys, st.key)
			b.SetVals = append(b.SetVals, st.val)
		default:
			b.DelKeys = append(b.DelKeys, st.baseKey)
		}
	}
	b.OracleHWM = w.oracle.reserve()
}

// sealAdvances flattens the epoch's per-client high-water-mark advances
// (max seq per cid across its identified riders) into the batch, sorted by
// cid so the PM journal and table writes are deterministic.
func (w *shardWorker) sealAdvances(eb *epochBatch) {
	if len(eb.clients) == 0 {
		return
	}
	adv := make(map[uint64]uint64, len(eb.clients))
	for _, r := range eb.pending {
		if !r.rid.Zero() && r.rid.Seq > adv[r.rid.CID] {
			adv[r.rid.CID] = r.rid.Seq
		}
	}
	cids := make([]uint64, 0, len(adv))
	for cid := range adv {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for _, cid := range cids {
		eb.batch.DedupCID = append(eb.batch.DedupCID, cid)
		eb.batch.DedupSeq = append(eb.batch.DedupSeq, adv[cid])
	}
}

// onCommit retires a finished epoch: per-slot and per-client ordering
// state whose horizon was this epoch is released, the dedup filter
// windows (or aborts) each identified rider, and the controller learns
// the apply cost. After a crash-restart the filter is first resynced from
// the PM-recovered high-water marks the applier snapshotted.
func (w *shardWorker) onCommit(eb *epochBatch) {
	w.inflight = nil
	w.ctrl.observeApply(eb.applyWall)
	rolledBack := eb.resync != nil && !eb.committed
	if eb.resync != nil {
		w.dedup.resync(eb.resync)
		w.cRestarts.Inc()
	}
	for i, r := range eb.pending {
		if r.rid.Zero() {
			continue
		}
		if eb.ok {
			w.dedup.commit(r, eb.replies[i])
		} else {
			w.dedup.abort(r, eb.replies[i])
			if rolledBack && r.op != 'G' {
				// The crash rolled this epoch's transaction back: its
				// mutations are holes in their clients' otherwise-contiguous
				// seq sequences. No later mutation of these clients may
				// commit (or be hwm-acked) until the hole's retry re-commits
				// — otherwise the advancing high-water mark would absorb the
				// retry of a mutation that never happened: an acknowledged
				// lost update. Rolled-back reads need no hole: they
				// re-execute on retry.
				w.dedup.addHole(r.rid)
			}
		}
	}
	if rolledBack {
		// Epochs staged behind the crashed one would commit seqs ABOVE the
		// holes just opened. Only one epoch is ever in the applier's hands,
		// so all of them are still batcher-owned: flush the whole staged
		// pipeline and let clients resend in seq order behind the holes.
		w.flushStaged()
	}
	// The epoch's commit units are stable (committed or rolled back): the
	// oracle floor may advance past their timestamps. This runs AFTER the
	// applier folded the batch into the version chains, so a new snapshot
	// can never miss a version below its floor. Duplicate rows of one
	// transaction share a ts; the extra releases are no-ops.
	for _, ts := range eb.batch.VerTS {
		w.oracle.release(ts)
	}
	for slot := range eb.slots {
		if w.lastMut[slot] == eb.seq {
			delete(w.lastMut, slot)
		}
	}
	for slot := range eb.read {
		if w.lastRead[slot] == eb.seq {
			delete(w.lastRead, slot)
		}
	}
	for cid := range eb.clients {
		if w.lastCli[cid] == eb.seq {
			delete(w.lastCli, cid)
		}
	}
	w.commits++
	if w.commits%mvccGCEvery == 0 {
		wm := w.oracle.snapshot()
		if smin, ok := w.snaps.min(); ok && smin < wm {
			wm = smin
		}
		w.shard.MVCCGC(wm)
	}
}

// mvccGCEvery is the epoch cadence of version-chain garbage collection.
const mvccGCEvery = 16

// flushStaged aborts every epoch still staged behind a rolled-back
// crash-restart: identified riders are told to retry (and become holes, so
// their re-admission order is enforced), unidentified riders get the same
// outcome-unknown error as riders of the crashed epoch itself. Per-slot
// and per-client ordering state is rebuilt empty — it only ever described
// the epochs just flushed.
func (w *shardWorker) flushStaged() {
	for _, eb := range w.staged {
		for _, ts := range eb.batch.VerTS {
			w.oracle.release(ts) // flushed units are stable: never applied
		}
		for _, r := range eb.pending {
			var line string
			if r.rid.Zero() {
				line = "ERR shard restarted; outcome unknown"
			} else {
				line = r.line("RETRY")
				w.dedup.abort(r, line)
				if r.op != 'G' {
					w.dedup.addHole(r.rid)
				}
			}
			r.done <- line
			w.cFlushed.Inc()
		}
	}
	w.staged = nil
	w.stagedOps = 0
	w.lastMut = make(map[int]uint64)
	w.lastRead = make(map[int]uint64)
	w.lastCli = make(map[uint64]uint64)
}

// run is the batcher: it drains the admission queue into staged epochs,
// dispatches the head epoch when the applier is free and the controller
// agrees, and exits once the queue is closed and the pipeline is empty.
func (w *shardWorker) run() {
	defer close(w.done)
	go w.applyLoop()
	for {
		// Absorb everything already queued without blocking: this is what
		// fills epoch N+1 while epoch N is on the device.
		for !w.reqsClosed && w.stagedOps < w.cfg.QueueDepth {
			select {
			case r, ok := <-w.reqs:
				if !ok {
					w.reqsClosed = true
				} else {
					w.admit(r)
					continue
				}
			default:
			}
			break
		}
		w.gQueue.Set(int64(len(w.reqs)))
		w.gStaged.Set(int64(len(w.staged)))
		w.gTarget.Set(int64(w.ctrl.target()))

		// Dispatch when the device is idle. The controller only gets a say
		// in holding the head epoch open when nothing else is staged
		// behind it — a conflict chain or overflow epoch waiting is load,
		// and load means dispatch now.
		var timer *time.Timer
		var timerC <-chan time.Time
		if w.inflight == nil && len(w.staged) > 0 {
			hold := time.Duration(0)
			if !w.drained && len(w.staged) == 1 {
				head := w.staged[0]
				hold = w.ctrl.hold(time.Now(), head.firstAdmit, head.batch.Ops())
			}
			if hold <= 0 {
				w.dispatch()
			} else {
				timer = time.NewTimer(hold)
				timerC = timer.C
			}
		}

		if w.reqsClosed && w.inflight == nil && len(w.staged) == 0 {
			close(w.dispatchCh)
			<-w.applierDone
			return
		}

		var recvCh chan *request
		if !w.reqsClosed && w.stagedOps < w.cfg.QueueDepth {
			recvCh = w.reqs
		}
		drainCh := w.drainCh
		if w.drained {
			drainCh = nil
		}
		select {
		case r, ok := <-recvCh:
			if !ok {
				w.reqsClosed = true
			} else {
				w.admit(r)
			}
		case eb := <-w.commitCh:
			w.onCommit(eb)
		case <-timerC:
			// Hold expired with no arrival: the next pass dispatches.
		case <-drainCh:
			w.drained = true
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// buildTrace assembles one sampled request's pipeline trace: stage points
// are microsecond offsets from the client-enqueue instant, placed at the
// instant each pipeline stage finished with the request. Apply's internal
// boundaries (stage/kernel/persist) come from the wall durations it
// reports, anchored at the applier's dispatch-receive instant.
func (w *shardWorker) buildTrace(r *request, eb *epochBatch, res *BatchResult, applyStart, reply time.Time, reason string) obs.ReqTrace {
	us := func(t time.Time) float64 { return float64(t.Sub(r.enq)) / 1e3 }
	stageEnd := applyStart.Add(res.WallStage)
	kernelEnd := stageEnd.Add(res.WallKernel)
	persistEnd := kernelEnd.Add(res.WallPersist)
	stages := make([]obs.StagePoint, 0, 7)
	stages = append(stages, obs.StagePoint{Stage: "admit", OffsetUS: us(r.admitted)})
	if r.op == 'C' {
		// Conflict validation happens inside admission; the distinct stage
		// point makes transaction traces self-describing.
		stages = append(stages, obs.StagePoint{Stage: "txn-validate", OffsetUS: us(r.admitted)})
	}
	stages = append(stages,
		obs.StagePoint{Stage: "seal", OffsetUS: us(eb.sealedAt)},
		obs.StagePoint{Stage: "stage", OffsetUS: us(stageEnd)},
		obs.StagePoint{Stage: "kernel", OffsetUS: us(kernelEnd)},
		obs.StagePoint{Stage: "persist", OffsetUS: us(persistEnd)},
		obs.StagePoint{Stage: "commit", OffsetUS: us(reply)},
	)
	return obs.ReqTrace{
		ID: r.id, Shard: w.shard.ID(), Op: opName(r.op), Key: r.key,
		Epoch: eb.seq, Reason: reason, Start: r.enq,
		TotalUS: us(reply),
		Stages:  stages,
	}
}

// handleCrash services a planned power failure that fired inside Apply:
// every rider is told to retry (the crash severed the ack path whether or
// not its batch committed — exactly the ambiguity the dedup window
// resolves), the shard is recovered per its fired plan (nested re-crashes,
// PM fault filtering), the hot cache starts cold, and the batcher is
// handed the PM-recovered high-water-mark snapshot to resync admission
// from. eb.ok stays false: riders leave the pipeline unwindowed, so their
// retries consult the recovered marks, not volatile leftovers. committed
// says whether the batch transaction survived the cut (CrashBeforeReply)
// or rolled back — the batcher flushes the staged pipeline and opens
// dedup holes only for a rollback.
func (w *shardWorker) handleCrash(eb *epochBatch, committed bool) {
	eb.committed = committed
	for i, r := range eb.pending {
		if r.rid.Zero() {
			eb.replies[i] = "ERR shard restarted; outcome unknown"
		} else {
			eb.replies[i] = r.line("RETRY")
		}
	}
	if err := w.shard.RecoverFromPlan(); err != nil {
		// Unrecoverable: leave the shard down; later epochs fail fast with
		// plain errors and clients give up through their retry caps.
		w.cErrors.Inc()
	} else {
		// Resume the oracle past the shard's durable reservation (a no-op
		// while the in-process oracle outlives the crash, but the honest
		// path), then rebuild the version chains from the recovered mirror:
		// every live key gets one version at the rebuild timestamp, and the
		// MVCC read floor rises so pre-crash snapshots answer "snapshot too
		// old" instead of reading chains the crash discarded.
		w.oracle.advanceTo(w.shard.RecoveredOracleHWM())
		w.shard.MVCCReset(w.oracle.current())
	}
	w.cache.Reset()
	eb.resync = w.shard.DedupSnapshot()
	// Notify the batcher before releasing replies: by the time a client can
	// act on a RETRY, admission has (usually) already resynced to the
	// recovered marks. A retry that still races in early just attaches to
	// its pending original and is re-RETRYed when the abort lands.
	w.commitCh <- eb
	for i, r := range eb.pending {
		r.done <- eb.replies[i]
	}
}

// applyLoop is the applier: one epoch at a time through the shard's
// stage -> kernel -> persist path, then group-commit — every reply in the
// epoch is released the moment the epoch is durable, and the hot cache is
// refreshed from committed state.
func (w *shardWorker) applyLoop() {
	defer close(w.applierDone)
	for eb := range w.dispatchCh {
		start := time.Now()
		res, err := w.shard.Apply(&eb.batch)
		eb.applyWall = time.Since(start)
		eb.replies = make([]string, len(eb.pending))
		if err != nil {
			var down *ShardDownError
			if errors.As(err, &down) {
				w.handleCrash(eb, down.Committed)
				continue
			}
			w.cErrors.Inc()
			for i, r := range eb.pending {
				eb.replies[i] = r.line("ERR " + err.Error())
				r.done <- eb.replies[i]
			}
			w.commitCh <- eb
			continue
		}
		eb.ok = true
		now := time.Now()
		for i, r := range eb.pending {
			switch {
			case r.op == 'C':
				eb.replies[i] = r.line("COMMITTED " + strconv.FormatUint(r.txn.cts, 10))
				w.cTxnCommits.Inc()
			case r.op != 'G':
				eb.replies[i] = r.line("OK")
			case eb.getPos[i] == -2:
				eb.replies[i] = r.pre // staged-image read, resolved at admission
			case res.GetVals[eb.getPos[i]] != 0:
				eb.replies[i] = r.line("VALUE " + strconv.FormatUint(res.GetVals[eb.getPos[i]], 10))
			default:
				eb.replies[i] = r.line("NOTFOUND")
			}
			r.done <- eb.replies[i]
			w.hReqUS.Observe(int64(now.Sub(r.enq) / time.Microsecond))
			if tr := w.cfg.Trace; tr != nil {
				if reason, ok := tr.ShouldCapture(r.id, now.Sub(r.enq)); ok {
					tr.Add(w.buildTrace(r, eb, res, start, now, reason))
				}
			}
		}
		w.hEpochLag.Observe(int64(now.Sub(eb.sealedAt) / time.Microsecond))
		w.gOccupancy.Set(int64(len(eb.pending)))
		w.hBatchSim.ObserveMicros(res.SimTime)
		w.cBatches.Inc()
		w.cOps.Add(int64(len(eb.pending)))

		// Cache maintenance, committed state only: every mutated slot that
		// is cached gets refreshed (or dropped), and slots of hot batched
		// GETs are filled so the next read skips the kernel.
		for slot := range eb.slots {
			k, v := w.shard.ModelPair(slot)
			w.cache.CommitSlot(slot, k, v)
		}
		for _, key := range eb.batch.GetKeys {
			if w.cache.Hot(key) {
				slot := w.shard.SlotOf(key)
				k, v := w.shard.ModelPair(slot)
				w.cache.CommitSlot(slot, k, v)
				w.cCacheFills.Inc()
			}
		}
		w.gHotSlots.Set(int64(w.cache.Len()))
		w.commitCh <- eb
	}
}
